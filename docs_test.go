package sdt_test

// The docs link checker: every relative link in the repo's markdown
// files must point at a file that exists, and same-repo markdown
// anchors must resolve to a real heading. This is the CI docs job's
// teeth — WORKLOADS.md/DESIGN.md/EXPERIMENTS.md cross-reference each
// other, and a rename must not rot them silently.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) links; images ([!...]) share the form.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// heading matches ATX headings for anchor extraction.
var heading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// slugify reduces a heading to its GitHub anchor: lowercase, spaces to
// hyphens, punctuation dropped.
func slugify(h string) string {
	h = strings.ToLower(h)
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf extracts the anchor set of one markdown file.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, m := range heading.FindAllStringSubmatch(string(data), -1) {
		out[slugify(m[1])] = true
	}
	return out
}

func TestDocLinks(t *testing.T) {
	mds, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(mds) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			file, anchor, _ := strings.Cut(target, "#")
			if file == "" {
				file = md // same-file anchor
			}
			file = filepath.Join(filepath.Dir(md), file)
			if _, err := os.Stat(file); err != nil {
				t.Errorf("%s: broken link %q: %v", md, target, err)
				continue
			}
			if anchor != "" && strings.HasSuffix(file, ".md") {
				if !anchorsOf(t, file)[anchor] {
					t.Errorf("%s: link %q: no heading for anchor %q in %s", md, target, anchor, file)
				}
			}
		}
	}
}

// The catalogue and design docs must exist and cross-reference each
// other — the docs satellite's contract.
func TestDocCrossReferences(t *testing.T) {
	refs := map[string][]string{
		"DESIGN.md":      {"WORKLOADS.md", "EXPERIMENTS.md"},
		"EXPERIMENTS.md": {"WORKLOADS.md"},
		"WORKLOADS.md":   {"DESIGN.md", "EXPERIMENTS.md"},
	}
	for doc, wants := range refs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s missing: %v", doc, err)
		}
		for _, want := range wants {
			if !strings.Contains(string(data), want) {
				t.Errorf("%s does not reference %s", doc, want)
			}
		}
	}
}
