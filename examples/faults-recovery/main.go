// Faults recovery: run seeded open-loop traffic on a fat-tree while a
// core link fails mid-run, let the controller reroute repair the live
// FIB around the outage, and print the recovery metrics — packets lost
// to the dead link, the fault→first-repaired-delivery reconvergence
// time, and the route churn of the patch and the restore. Rerunning
// with the same seed reproduces every number.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	sdt "repro"
)

func main() {
	topo := sdt.FatTree(4)
	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo})
	if err != nil {
		log.Fatal(err)
	}

	// A seeded open-loop workload: 16 endpoints, uniform pairs, 64 kB
	// flows at 40% load.
	linkBps := sdt.DefaultSimConfig().LinkBps
	fs, err := sdt.LoadSpec{
		Ranks: 16, Load: 0.4, Flows: 400, Seed: 7,
		Pattern: sdt.PatternUniform(), Sizes: sdt.FixedSize(64 << 10),
		LinkBps: linkBps,
	}.Generate()
	if err != nil {
		log.Fatal(err)
	}
	window := fs.Flows[len(fs.Flows)-1].Start

	// Fail one seeded core link (switch-switch, so every host stays
	// attached) for the middle half of the injection window. The
	// controller notices after RepairLatency and patches the live FIB
	// around the outage; when the link heals, the original strategy
	// routes come back.
	link := sdt.PickCoreEdges(topo, 1, 7)[0]
	spec := &sdt.FaultSpec{
		Events: []sdt.FaultEvent{
			{At: window / 4, Kind: sdt.FaultLinkDown, Elem: link},
			{At: 3 * window / 4, Kind: sdt.FaultLinkUp, Elem: link},
		},
		RepairLatency: window / 16,
	}

	res, err := sdt.Run(context.Background(), tb, sdt.Scenario{
		Topo:   topo,
		Flows:  fs.Flows,
		Mode:   sdt.ModeFullTestbed,
		Faults: spec,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("link e%d down %.0f–%.0f us of a %.0f us window\n",
		link,
		float64(window/4)/float64(sdt.Microsecond),
		float64(3*window/4)/float64(sdt.Microsecond),
		float64(window)/float64(sdt.Microsecond))
	fmt.Printf("flows: %d total, %d completed; ACT %.3f ms; lost to the outage: %d packets\n\n",
		len(fs.Flows), len(fs.Flows)-res.Incomplete,
		float64(res.ACT)/float64(sdt.Millisecond), res.FaultDrops)
	res.Recovery.Format(os.Stdout)

	// The same schedule on a healthy fabric, for the FCT penalty.
	healthy := sdt.LoadSpec{
		Ranks: 16, Load: 0.4, Flows: 400, Seed: 7,
		Pattern: sdt.PatternUniform(), Sizes: sdt.FixedSize(64 << 10),
		LinkBps: linkBps,
	}.MustGenerate()
	base, err := sdt.Run(context.Background(), tb, sdt.Scenario{
		Topo: topo, Flows: healthy.Flows, Mode: sdt.ModeFullTestbed,
	})
	if err != nil {
		log.Fatal(err)
	}
	faulted := sdt.MeasureFCT(fs.Flows, linkBps, 0, nil)
	clean := sdt.MeasureFCT(healthy.Flows, linkBps, 0, nil)
	fmt.Printf("\nhealthy rerun: ACT %.3f ms, all %d flows complete\n",
		float64(base.ACT)/float64(sdt.Millisecond), len(healthy.Flows))
	if len(faulted.Buckets) > 0 && len(clean.Buckets) > 0 {
		fb, cb := pick(faulted), pick(clean)
		fmt.Printf("p99 slowdown: %.2fx under the fault vs %.2fx healthy\n", fb, cb)
	}
}

// pick returns the p99 slowdown of the (single populated) 64 kB bucket.
func pick(rep *sdt.FCTReport) float64 {
	for _, b := range rep.Buckets {
		if b.Count > 0 {
			return b.P99
		}
	}
	return 0
}
