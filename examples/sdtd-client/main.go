// sdtd quickstart: drive the simulation service programmatically —
// submit a seeded loadgen sweep, wait for the result, submit the
// identical spec again, and watch the second one come back from the
// content-addressed cache without a simulation running.
//
// By default the example starts an sdtd instance in-process on a
// loopback port, so it is self-contained:
//
//	go run ./examples/sdtd-client
//
// Point it at an already-running daemon instead with:
//
//	sdtd &
//	go run ./examples/sdtd-client -daemon 127.0.0.1:7390
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/service"
)

func main() {
	daemon := flag.String("daemon", "", "address of a running sdtd (empty = start one in-process)")
	flag.Parse()
	ctx := context.Background()

	addr := *daemon
	if addr == "" {
		// Self-contained mode: an in-process daemon on a loopback port.
		srv, err := service.New(service.Config{QueueCap: 16})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv.Handler())
		defer func() {
			dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			srv.Drain(dctx)
		}()
		addr = ln.Addr().String()
		fmt.Printf("started in-process sdtd on %s\n\n", addr)
	}
	c := service.NewClient(addr)

	// 1. The job: a seeded loadgen FCT sweep, small enough to finish in
	//    about a second. The spec's content hash is its cache identity —
	//    same spec, same bytes, no re-simulation.
	spec := service.JobSpec{Scenario: "loadgen-sweep", Seed: 7, Flows: 24, Workers: 0}

	// 2. Submit and wait. Submit returns immediately with the queued
	//    job's id; Wait polls until it turns terminal.
	st, err := c.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (state %s)\n", st.ID, st.State)
	if st, err = c.Wait(ctx, st.ID, 100*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	body, _, err := c.Result(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %.0f ms, %d bytes:\n\n", st.WallMs, len(body))
	os.Stdout.Write(body[:min(len(body), 400)])
	fmt.Println("...")

	// 3. The identical spec again: born done, served from the cache.
	st2, err := c.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresubmitted: %s is already %s (cached=%v)\n", st2.ID, st2.State, st2.Cached)
	body2, _, err := c.Result(ctx, st2.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("byte-identical result: %v\n", string(body2) == string(body))

	// 4. The daemon's own accounting agrees: one execution, one hit.
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statsz: %d submitted, %d executed, cache %d hit / %d miss\n",
		stats.Submitted, stats.RunsByScenario["loadgen-sweep"],
		stats.Cache.Hits, stats.Cache.Misses)
}
