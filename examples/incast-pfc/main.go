// Incast example (Fig. 12 scenario): seven nodes send iperf-style TCP
// traffic to node 4 on an 8-switch chain. The run compares PFC on vs
// off and SDT vs full testbed, printing per-node bandwidth with the
// paper's hop/congestion-point annotations.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
)

func main() {
	ctx := context.Background()
	dur := 800 * netsim.Millisecond
	for _, pfc := range []bool{true, false} {
		for _, mode := range []core.Mode{core.SDT, core.FullTestbed} {
			res, err := experiments.Fig12(ctx, mode, pfc, dur)
			if err != nil {
				log.Fatal(err)
			}
			res.Format(os.Stdout)
			// A tiny textual bandwidth-over-time chart per node.
			for _, f := range res.Flows {
				fmt.Printf("  n%d ", f.Node)
				for _, s := range f.Samples {
					fmt.Print(string(spark(s.Gbps)))
				}
				fmt.Println()
			}
		}
	}
	fmt.Println("\nObservations (cf. §VI-B2):")
	fmt.Println(" - with PFC on, nodes with the same hop count get matching shares on SDT and the full testbed")
	fmt.Println(" - with PFC off, drops appear and TCP window dynamics set the shares; trends still match")
}

// spark maps a bandwidth sample onto a single character.
func spark(gbps float64) byte {
	levels := []byte(" .:-=+*#%@")
	i := int(gbps / 10.0 * float64(len(levels)))
	if i >= len(levels) {
		i = len(levels) - 1
	}
	if i < 0 {
		i = 0
	}
	return levels[i]
}
