// Remote-controller example: the SDT controller driving switch agents
// over the OpenFlow-style wire protocol (the paper's Ryu-to-H3C path).
// Three switch agents listen on loopback TCP; the controller plans a
// projection locally, pushes the flow tables over the wire with
// barriers, polls port statistics, and finally tears the topology down
// by cookie — all remotely.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/ofproto"
	"repro/internal/openflow"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	// The "hardware": three switch agents on loopback TCP.
	specs := []projection.PhysicalSwitch{
		projection.Commodity64("sw-a"), projection.Commodity64("sw-b"), projection.Commodity64("sw-c"),
	}
	remote := make([]*openflow.Switch, len(specs))
	clients := make([]*ofproto.Client, len(specs))
	for i, spec := range specs {
		remote[i] = openflow.NewSwitch(spec.ID, spec.Ports, spec.TableCap)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		agent := ofproto.NewAgent(uint64(i+1), remote[i])
		go func() { _ = agent.ListenAndServe(l) }()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		clients[i], err = ofproto.Connect(conn)
		if err != nil {
			log.Fatal(err)
		}
		f := clients[i].Features()
		fmt.Printf("connected to datapath %d: %d ports, table capacity %d\n",
			f.DatapathID, f.NumPorts, f.TableCap)
	}

	// Plan and compile the projection locally (controller side).
	g := topology.FatTree(4)
	cab, err := projection.PlanCabling(specs, []*topology.Graph{g}, partition.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := projection.Project(g, cab, partition.Options{})
	if err != nil {
		log.Fatal(err)
	}
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := routing.VerifyDeadlockFree(routes); err != nil {
		log.Fatal(err)
	}
	const cookie = 0xC10C
	compiled, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{Cookie: cookie})
	if err != nil {
		log.Fatal(err)
	}

	// Push over the wire, barrier-synchronised.
	total := 0
	for i, sw := range compiled {
		if err := clients[i].InstallTable(sw); err != nil {
			log.Fatalf("installing on %s: %v", specs[i].ID, err)
		}
		total += sw.Table.Len()
	}
	fmt.Printf("\ndeployed %s: %d flow entries pushed over TCP\n", g.Name, total)

	// Drive a packet through the REMOTE tables and poll stats.
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	ref := plan.HostAttach[src]
	tag := 0
	for hop := 0; hop < 32; hop++ {
		fwd := remote[ref.Switch].Process(openflow.PacketMeta{
			InPort: ref.Port, SrcHost: src, DstHost: dst, Tag: tag, Bytes: 1500,
		})
		if !fwd.Matched || fwd.Dropped {
			log.Fatalf("packet dropped at hop %d", hop)
		}
		tag = fwd.Tag
		out := projection.PortRef{Switch: ref.Switch, Port: fwd.OutPort}
		if out == plan.HostAttach[dst] {
			fmt.Printf("packet %s -> %s delivered after %d crossbar hops\n",
				g.Vertices[src].Label, g.Vertices[dst].Label, hop+1)
			break
		}
		nxt, ok := plan.CableAt(out)
		if !ok {
			log.Fatalf("dangling port %v", out)
		}
		ref = nxt
	}

	for i, c := range clients {
		stats, err := c.PortStats()
		if err != nil {
			log.Fatal(err)
		}
		rx := uint64(0)
		for _, s := range stats {
			rx += s.RxPackets
		}
		ts, err := c.TableStats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d packets seen, %d/%d table entries\n", specs[i].ID, rx, ts.Entries, ts.Capacity)
	}

	// Remote teardown by cookie.
	for _, c := range clients {
		if err := c.RemoveCookie(cookie); err != nil {
			log.Fatal(err)
		}
	}
	left := 0
	for _, sw := range remote {
		left += sw.Table.Len()
	}
	fmt.Printf("\nteardown by cookie 0x%X: %d entries remain (expect 0)\n", cookie, left)
}
