// Dragonfly adaptive-routing example (§VI-E): run a skewed Alltoall on
// a Dragonfly(4,9,2) with minimal routing, let the Network Monitor
// measure link loads, switch to UGAL active routing, and show the ACT
// improvement — the controller's Routing Strategy + Network Monitor
// modules working together.
package main

import (
	"fmt"
	"log"

	"repro/internal/controller"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	g := topology.Dragonfly(4, 9, 2, 1)
	fmt.Printf("topology: %v\n", g)

	// Adversarial placement: all ranks in the first two groups, so
	// minimal routing funnels everything over one global link.
	const nodes = 8
	hosts := g.Hosts()[:nodes]
	tr := workload.Alltoall(nodes, 256*1024, 4)

	run := func(name string, routes *routing.Routes) netsim.Time {
		net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), netsim.DefaultConfig(), nil, false)
		if err != nil {
			log.Fatal(err)
		}
		app := netsim.NewApp(net, hosts, tr.Programs, nil)
		app.Start()
		net.Sim.Run(0)
		act := app.ACT()
		fmt.Printf("%-28s ACT %8.3f ms  (drops %d, pauses %d)\n",
			name, float64(act)/float64(netsim.Millisecond), net.TotalDrops, net.PausesSent)
		// Feed the monitor for the next round.
		lastNet = net
		return act
	}

	minimal, err := routing.DragonflyMinimal{}.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	actMin := run("minimal routing", minimal)

	mon := controller.NewMonitor()
	mon.CollectSim(lastNet)
	fmt.Println("\nNetwork Monitor: most loaded logical links after the minimal run:")
	fmt.Print(indent(mon.TopLoaded(g, 5)))

	active, err := mon.ActiveRouting(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := routing.VerifyDeadlockFree(active); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nactive routing verified deadlock-free (CDG acyclic); rerunning:")
	actUGAL := run("active (UGAL) routing", active)

	fmt.Printf("\nACT reduction from active routing: %.1f%% (paper: active routing reduces the ACT of IMB Alltoall)\n",
		100*float64(actMin-actUGAL)/float64(actMin))
}

var lastNet *netsim.Network

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		if line != "" {
			out += "  " + line + "\n"
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
