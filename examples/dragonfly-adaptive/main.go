// Dragonfly adaptive-routing example (§VI-E): run a skewed Alltoall on
// a Dragonfly(4,9,2) with minimal routing, let the Network Monitor
// measure link loads, switch to UGAL active routing, and show the ACT
// improvement — the controller's Routing Strategy + Network Monitor
// modules working together, driven through the composable Run API with
// telemetry attached as a run observer (no manual Arm/Collect wiring).
package main

import (
	"context"
	"fmt"
	"log"

	sdt "repro"
	"repro/internal/controller"
	"repro/internal/routing"
)

func main() {
	ctx := context.Background()
	g := sdt.Dragonfly(4, 9, 2, 1)
	fmt.Printf("topology: %v\n", g)

	tb, err := sdt.PaperTestbed([]*sdt.Topology{g})
	if err != nil {
		log.Fatal(err)
	}

	// Adversarial placement: all ranks in the first two groups, so
	// minimal routing funnels everything over one global link.
	const nodes = 8
	scenario := sdt.Scenario{
		Topo:  g,
		Trace: sdt.AlltoallTrace(nodes, 256*1024, 4),
		Mode:  sdt.ModeSimulator,
		Hosts: g.Hosts()[:nodes],
	}

	// The run observer captures the finished fabric for the Network
	// Monitor; a telemetry collector samples link loads every 200 us of
	// simulated time *during* the run.
	var lastNet *sdt.Network
	capture := sdt.RunHooks{Finish: func(_ *sdt.RunResult, net *sdt.Network) { lastNet = net }}

	run := func(name string, routes *sdt.Routes, col *sdt.TelemetryCollector) sdt.SimTime {
		opts := []sdt.Option{sdt.WithStrategy(sdt.FixedRoutes{Routes: routes}), sdt.WithObserver(capture)}
		if col != nil {
			opts = append(opts, sdt.WithTelemetry(col))
		}
		res, err := sdt.Run(ctx, tb, scenario, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s ACT %8.3f ms  (drops %d, pauses %d)\n",
			name, float64(res.ACT)/float64(sdt.Millisecond), res.Drops, res.Pauses)
		return res.ACT
	}

	minimal, err := routing.DragonflyMinimal{}.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	col := sdt.NewTelemetryCollector(g, 200*sdt.Microsecond, 0)
	actMin := run("minimal routing", minimal, col)

	fmt.Printf("\ntelemetry (sampled %d epochs during the run): hottest logical links:\n", col.Epochs())
	for _, s := range col.Hottest(5) {
		fmt.Printf("  %s <-> %s: peak %d B/epoch, EWMA %.0f B/epoch\n", s.A, s.B, s.Peak, s.EWMA)
	}

	// Feed the Network Monitor from the finished fabric and derive UGAL
	// active routes.
	mon := controller.NewMonitor()
	mon.CollectSim(lastNet)
	active, err := mon.ActiveRouting(g, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := sdt.VerifyDeadlockFree(active); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nactive routing verified deadlock-free (CDG acyclic); rerunning:")
	actUGAL := run("active (UGAL) routing", active, nil)

	fmt.Printf("\nACT reduction from active routing: %.1f%% (paper: active routing reduces the ACT of IMB Alltoall)\n",
		100*float64(actMin-actUGAL)/float64(actMin))
}
