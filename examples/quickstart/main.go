// Quickstart: build a fat-tree, project it onto three commodity
// switches with SDT Link Projection, run an IMB Pingpong on both the
// full testbed and the SDT projection, and compare — the core workflow
// of the paper in ~60 lines against the public facade, driven through
// the composable Run(ctx, testbed, scenario, ...Option) surface.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sdt "repro"
)

func main() {
	// 1. A logical topology: the paper's running example, fat-tree k=4
	//    (20 switches, 16 hosts, 48 cables — Fig. 1).
	topo := sdt.FatTree(4)
	fmt.Printf("logical topology: %v\n", topo)

	// 2. A testbed: the paper's 3x H3C S6861 cluster. Cabling is planned
	//    once for every topology we intend to evaluate (§IV-B) — here
	//    the fat-tree and the torus we will reconfigure to later.
	torus := sdt.Torus2D(5, 5, 1)
	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo, torus})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the same pingpong three ways through the composable Run
	//    API: one Scenario, the mode varied per run. The context
	//    cancels mid-simulation (here it just carries a generous
	//    wall-clock deadline).
	ctx := context.Background()
	hosts := topo.Hosts()
	scenario := sdt.Scenario{
		Topo:  topo,
		Trace: sdt.PingpongTrace(4096, 100),
		Hosts: []int{hosts[0], hosts[len(hosts)-1]},
	}

	for _, mode := range []sdt.Mode{sdt.ModeFullTestbed, sdt.ModeSDT, sdt.ModeSimulator} {
		scenario.Mode = mode
		res, err := sdt.Run(ctx, tb, scenario, sdt.WithDeadline(time.Now().Add(time.Minute)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s ACT %8.2f us   evaluation time %12v  (events %d)\n",
			mode, float64(res.ACT)/float64(sdt.Microsecond), res.Eval, res.Events)
	}

	// 4. The SDT deployment details: how the topology landed on the
	//    physical switches.
	dep := tb.Ctl.Deployment(topo.Name)
	st := dep.Plan.Stats()
	fmt.Printf("\nSDT deployment of %s:\n", dep.Name)
	fmt.Printf("  physical switches used: %d\n", st.PhysicalSwitches)
	fmt.Printf("  self-links: %d, inter-switch links: %d, host ports: %d\n",
		st.SelfLinks, st.InterLinks, st.Hosts)
	fmt.Printf("  flow entries installed: %d (deploy time %v)\n", dep.Entries, dep.DeployTime)
	fmt.Println("\nreconfiguring to a 5x5 torus — no cables touched:")
	d2, err := tb.Ctl.Reconfigure(topo.Name, torus, sdt.ControllerOptions{RequireDeadlockFree: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s live in %v with %d flow entries\n", d2.Name, d2.DeployTime, d2.Entries)
}
