// Loadgen FCT: synthesize open-loop datacenter-style traffic with the
// loadgen subsystem (seeded Poisson arrivals, a traffic pattern, a
// heavy-tailed flow-size CDF), run it live through the flow-application
// layer on a fat-tree, and print per-size-bucket flow-completion-time
// slowdowns — the workload family WORKLOADS.md catalogues, driven
// through the public facade.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	sdt "repro"
)

func main() {
	topo := sdt.FatTree(4)
	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo})
	if err != nil {
		log.Fatal(err)
	}

	// One seeded schedule per load point: 16 endpoints, hotspot-skewed
	// pairs, scaled web-search sizes. Same seed => byte-identical
	// schedule and, since the engine is deterministic, identical FCTs.
	linkBps := sdt.DefaultSimConfig().LinkBps
	sizes := sdt.ScaleSizes(sdt.WebSearchSizes(), 1.0/16)
	for _, load := range []float64{0.2, 0.5, 0.8} {
		fs, err := sdt.LoadSpec{
			Ranks: 16, Load: load, Flows: 400, Seed: 1,
			Pattern: sdt.PatternHotspot(2, 0.7), Sizes: sizes,
			LinkBps: linkBps,
		}.Generate()
		if err != nil {
			log.Fatal(err)
		}

		// Run the schedule live: flows inject at their arrival times and
		// completion results land back in fs.Flows.
		res, err := sdt.Run(context.Background(), tb, sdt.Scenario{
			Topo:  topo,
			Flows: fs.Flows,
			Mode:  sdt.ModeFullTestbed,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s  load %.1f: %d flows in %.3f ms simulated (drops %d)\n",
			fs.Name, load, len(fs.Flows),
			float64(res.ACT)/float64(sdt.Millisecond), res.Drops)
		sdt.MeasureFCT(fs.Flows, linkBps, 0, nil).Format(os.Stdout)
	}
}
