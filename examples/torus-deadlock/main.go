// Torus deadlock-avoidance example (Table III): contrast a routing
// whose channel dependency graph is cyclic — clockwise routing on a
// ring, the canonical deadlock, which would wedge a lossless (PFC)
// fabric — with the torus dateline virtual-channel scheme (after
// Clue), which the verifier proves acyclic; then demonstrate the
// projected flow tables carry the VC transitions as tag rewrites.
package main

import (
	"fmt"
	"log"

	"repro/internal/openflow"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	g := topology.Torus2D(4, 4, 1)
	fmt.Printf("topology: %v\n\n", g)

	// 1. The canonical deadlock: clockwise routing on a ring. Every
	//    flow holds one channel while waiting for the next, all the way
	//    around — the verifier names the cycle.
	ring := topology.Ring(4, 1)
	cyclic := clockwiseRing(ring)
	if err := routing.VerifyDeadlockFree(cyclic); err != nil {
		fmt.Printf("clockwise ring routing: %v\n\n", err)
	} else {
		fmt.Println("clockwise ring routing: BUG — cycle not detected")
	}

	// 2. Dateline VC routing: provably deadlock-free.
	clue, err := routing.TorusClue{Dims: 2}.Compute(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := routing.VerifyDeadlockFree(clue); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("torus-clue-2d: channel dependency graph ACYCLIC (%d rules, %d VCs)\n\n",
		len(clue.Rules), clue.NumVCs)

	// 3. Project onto one physical switch and show a flow entry that
	//    performs the dateline VC switch as a tag rewrite.
	cab, err := projection.PlanCabling(
		[]projection.PhysicalSwitch{projection.H3CS6861("s6861")},
		[]*topology.Graph{g}, partition.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := projection.Project(g, cab, partition.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tables, err := projection.CompileFlowTables(plan, clue, projection.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected onto %d physical switch(es), %d flow entries total\n",
		plan.Stats().PhysicalSwitches, projection.EntryCount(tables))
	fmt.Println("sample entries carrying a VC (tag) transition:")
	shown := 0
	for _, sw := range tables {
		for _, e := range sw.Table.Entries() {
			if hasSetTag(e) && shown < 5 {
				fmt.Printf("  [%s] %s\n", sw.ID, e)
				shown++
			}
		}
	}
}

// clockwiseRing routes every destination around the ring in one
// direction — correct delivery, guaranteed channel cycle.
func clockwiseRing(g *topology.Graph) *routing.Routes {
	sw := g.Switches()
	r := routing.NewManualRoutes(g, "clockwise-ring", 1)
	for i, s := range sw {
		next := sw[(i+1)%len(sw)]
		for _, d := range g.Hosts() {
			if g.HostSwitch(d) == s {
				r.AddRule(routing.Rule{Switch: s, Dst: d, Tag: openflow.Any,
					OutPort: g.Edges[g.EdgeBetween(s, d)].PortAt(s), NewTag: -1})
			} else {
				r.AddRule(routing.Rule{Switch: s, Dst: d, Tag: openflow.Any,
					OutPort: g.Edges[g.EdgeBetween(s, next)].PortAt(s), NewTag: -1})
			}
		}
	}
	return r
}

func hasSetTag(e *openflow.FlowEntry) bool {
	for _, a := range e.Actions {
		if a.Type == openflow.SetTag {
			return true
		}
	}
	return false
}
