package shard_test

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// fabricFlows builds a seeded open-loop schedule for g.
func fabricFlows(t *testing.T, g *topology.Graph, ranks, flows int, seed int64) []netsim.Flow {
	t.Helper()
	cfg := netsim.DefaultConfig()
	fs, err := loadgen.Spec{
		Ranks: ranks, Pattern: loadgen.Uniform(),
		Sizes: loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/64),
		Load:  0.7, Flows: flows, Seed: seed, LinkBps: cfg.LinkBps,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return fs.Flows
}

// forwarderFor compiles the default routes for g.
func forwarderFor(t *testing.T, g *topology.Graph) netsim.RouteForwarder {
	t.Helper()
	routes, err := routing.ForTopology(g).Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	routes.Prime()
	return netsim.NewRouteForwarder(routes)
}

// fingerprint captures everything a run can differ in: per-flow
// completion stamps plus the merged fabric counters and event count.
type fingerprint struct {
	ends   []netsim.Time
	act    netsim.Time
	events int64
	drops  int64
	pauses int64
	ecn    int64
}

// runSharded executes one flow schedule on a fresh sharded fabric.
func runSharded(t *testing.T, g *topology.Graph, flows []netsim.Flow, k int, opt shard.Options) fingerprint {
	t.Helper()
	sched := make([]netsim.Flow, len(flows))
	copy(sched, flows)
	ex, err := shard.New(g, forwarderFor(t, g), netsim.DefaultConfig(), k, opt)
	if err != nil {
		t.Fatal(err)
	}
	hosts := core.PickSpread(g.Hosts(), ranksOf(sched))
	app := netsim.NewFlowApp(ex.Primary(), hosts, sched, nil)
	app.Start()
	ex.Run()
	if act := app.ACT(); act < 0 {
		t.Fatalf("K=%d run did not complete: %d outstanding", k, app.Outstanding())
	}
	fp := fingerprint{act: app.ACT(), events: ex.Events()}
	for i := range sched {
		fp.ends = append(fp.ends, sched[i].End)
	}
	for _, n := range ex.Nets {
		fp.drops += n.TotalDrops
		fp.pauses += n.PausesSent
		fp.ecn += n.EcnMarks
	}
	return fp
}

func ranksOf(flows []netsim.Flow) int {
	r := 0
	for i := range flows {
		if flows[i].Src >= r {
			r = flows[i].Src + 1
		}
		if flows[i].Dst >= r {
			r = flows[i].Dst + 1
		}
	}
	return r
}

func sameFingerprint(t *testing.T, what string, a, b fingerprint) {
	t.Helper()
	if a.act != b.act || a.events != b.events || a.drops != b.drops ||
		a.pauses != b.pauses || a.ecn != b.ecn {
		t.Fatalf("%s: fingerprints differ: %+v vs %+v",
			what, counters(a), counters(b))
	}
	for i := range a.ends {
		if a.ends[i] != b.ends[i] {
			t.Fatalf("%s: flow %d completion differs: %d vs %d", what, i, a.ends[i], b.ends[i])
		}
	}
}

func counters(f fingerprint) map[string]int64 {
	return map[string]int64{
		"act": int64(f.act), "events": f.events, "drops": f.drops,
		"pauses": f.pauses, "ecn": f.ecn,
	}
}

// TestK1MatchesSerial pins the K=1 half of the determinism contract:
// a one-shard fabric executes event-for-event like netsim.NewNetwork.
func TestK1MatchesSerial(t *testing.T) {
	g := topology.FatTree(4)
	flows := fabricFlows(t, g, 16, 120, 7)

	// Serial reference.
	serial := make([]netsim.Flow, len(flows))
	copy(serial, flows)
	net, err := netsim.NewNetwork(g, forwarderFor(t, g), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := core.PickSpread(g.Hosts(), ranksOf(serial))
	app := netsim.NewFlowApp(net, hosts, serial, nil)
	app.Start()
	net.Sim.Run(0)
	ref := fingerprint{
		act: app.ACT(), events: net.Sim.Events(),
		drops: net.TotalDrops, pauses: net.PausesSent, ecn: net.EcnMarks,
	}
	for i := range serial {
		ref.ends = append(ref.ends, serial[i].End)
	}

	got := runSharded(t, g, flows, 1, shard.Options{})
	sameFingerprint(t, "K=1 vs serial", ref, got)
}

// TestFixedKDeterminism pins the other half: for fixed K>1 the merged
// output is identical across reruns, worker caps, and GOMAXPROCS.
func TestFixedKDeterminism(t *testing.T) {
	g := topology.FatTree(4)
	flows := fabricFlows(t, g, 16, 120, 11)
	for _, k := range []int{2, 4} {
		ref := runSharded(t, g, flows, k, shard.Options{})
		rerun := runSharded(t, g, flows, k, shard.Options{})
		sameFingerprint(t, "rerun", ref, rerun)
		oneWorker := runSharded(t, g, flows, k, shard.Options{Workers: 1})
		sameFingerprint(t, "workers=1", ref, oneWorker)

		prev := runtime.GOMAXPROCS(1)
		serialProcs := runSharded(t, g, flows, k, shard.Options{})
		runtime.GOMAXPROCS(prev)
		sameFingerprint(t, "GOMAXPROCS=1", ref, serialProcs)
	}
}

// TestShardsCompleteAndHandOff checks a K=4 run actually crosses
// shards (a partition of a fat-tree must cut something) and reports
// executor telemetry.
func TestShardsCompleteAndHandOff(t *testing.T) {
	g := topology.FatTree(4)
	flows := fabricFlows(t, g, 16, 120, 13)
	sched := make([]netsim.Flow, len(flows))
	copy(sched, flows)
	ex, err := shard.New(g, forwarderFor(t, g), netsim.DefaultConfig(), 4, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.CutLinks == 0 || ex.Lookahead <= 0 {
		t.Fatalf("expected cut links and positive lookahead, got %d / %v", ex.CutLinks, ex.Lookahead)
	}
	app := netsim.NewFlowApp(ex.Primary(), core.PickSpread(g.Hosts(), ranksOf(sched)), sched, nil)
	app.Start()
	ex.Run()
	if app.ACT() < 0 {
		t.Fatalf("run did not complete")
	}
	if ex.Handoffs() == 0 {
		t.Fatal("no events crossed shards on a cut fat-tree")
	}
	if ex.Windows() == 0 {
		t.Fatal("no windows executed")
	}
}

// TestStopFlag checks engine-deep cancellation: raising the flag stops
// a sharded run mid-flight.
func TestStopFlag(t *testing.T) {
	g := topology.FatTree(4)
	flows := fabricFlows(t, g, 16, 4000, 17)
	ex, err := shard.New(g, forwarderFor(t, g), netsim.DefaultConfig(), 4, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var flag atomic.Bool
	ex.SetStop(&flag)
	app := netsim.NewFlowApp(ex.Primary(), core.PickSpread(g.Hosts(), ranksOf(flows)), flows, nil)
	app.Start()
	go func() {
		time.Sleep(2 * time.Millisecond)
		flag.Store(true)
	}()
	ex.Run()
	if !ex.Stopped() && app.ACT() < 0 {
		t.Fatal("run neither stopped nor completed")
	}
}

// TestCoreRunSharded drives the full core.Run surface: WithShards
// produces a merged result whose effective shard count is reported,
// reruns identically, and cancels through the context.
func TestCoreRunSharded(t *testing.T) {
	g := topology.FatTree(4)
	flows := fabricFlows(t, g, 16, 120, 19)
	tb, err := core.PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *core.RunResult {
		sched := make([]netsim.Flow, len(flows))
		copy(sched, flows)
		res, err := core.Run(context.Background(), tb,
			core.Scenario{Topo: g, Flows: sched, Mode: core.FullTestbed},
			core.WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Shards != 4 {
		t.Fatalf("effective shards = %d, want 4", a.Shards)
	}
	if a.ACT != b.ACT || a.Events != b.Events || a.Drops != b.Drops || a.Pauses != b.Pauses {
		t.Fatalf("sharded core.Run not deterministic: %+v vs %+v", a, b)
	}
	// Cancellation lands mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.Run(ctx, tb,
		core.Scenario{Topo: g, Flows: fabricFlows(t, g, 16, 120, 19), Mode: core.FullTestbed},
		core.WithShards(4)); err == nil {
		t.Fatal("cancelled sharded run returned no error")
	}
}

// TestSerialFallback pins the automatic fallback conditions: scenarios
// the executor cannot shard run serially and say so.
func TestSerialFallback(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := core.PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	// Tick observers (telemetry) force serial.
	col := telemetry.NewCollector(g, netsim.Millisecond, 0.3)
	res, err := core.Run(context.Background(), tb,
		core.Scenario{Topo: g, Flows: fabricFlows(t, g, 16, 60, 23), Mode: core.FullTestbed},
		core.WithShards(4), core.WithTelemetry(col))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Fatalf("telemetry run executed with %d shards, want serial fallback", res.Shards)
	}
	// SDT projection forces serial.
	res, err = core.Run(context.Background(), tb,
		core.Scenario{Topo: g, Flows: fabricFlows(t, g, 16, 60, 23), Mode: core.SDT},
		core.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Fatalf("SDT run executed with %d shards, want serial fallback", res.Shards)
	}
	// Zero propagation delay leaves no lookahead.
	cfg := netsim.DefaultConfig()
	cfg.PropDelay = 0
	res, err = core.Run(context.Background(), tb,
		core.Scenario{Topo: g, Flows: fabricFlows(t, g, 16, 60, 23), Mode: core.FullTestbed},
		core.WithShards(4), core.WithSimConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Fatalf("zero-PropDelay run executed with %d shards, want serial fallback", res.Shards)
	}
}

// TestTelemetryCollectorMerge pins the whole-fabric view from a shard:
// shard networks share one link array, so a collector sampling the
// primary after a sharded run sees the same per-link byte totals a
// serial run records.
func TestTelemetryCollectorMerge(t *testing.T) {
	g := topology.FatTree(4)
	flows := fabricFlows(t, g, 16, 120, 29)

	collect := func(net *netsim.Network) map[int]float64 {
		col := telemetry.NewCollector(g, netsim.Millisecond, 1)
		col.Collect(net)
		return col.Rates()
	}

	serial := make([]netsim.Flow, len(flows))
	copy(serial, flows)
	net, err := netsim.NewNetwork(g, forwarderFor(t, g), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := core.PickSpread(g.Hosts(), ranksOf(serial))
	app := netsim.NewFlowApp(net, hosts, serial, nil)
	app.Start()
	net.Sim.Run(0)
	ref := collect(net)

	sched := make([]netsim.Flow, len(flows))
	copy(sched, flows)
	ex, err := shard.New(g, forwarderFor(t, g), netsim.DefaultConfig(), 1, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app = netsim.NewFlowApp(ex.Primary(), hosts, sched, nil)
	app.Start()
	ex.Run()
	got := collect(ex.Primary())

	if len(ref) != len(got) {
		t.Fatalf("link count differs: %d vs %d", len(ref), len(got))
	}
	for eid, v := range ref {
		if got[eid] != v {
			t.Fatalf("edge %d load differs: %g vs %g", eid, got[eid], v)
		}
	}
}
