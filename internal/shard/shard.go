// Package shard executes one netsim fabric as K parallel discrete-
// event engines under a conservative, null-message-free synchronization
// protocol — the intra-run parallelism that lets a single large
// simulation use more than one core (sweeps were already
// embarrassingly parallel; this parallelises the run itself).
//
// # Protocol
//
// The topology is split by partition.Cut — the same multilevel K-way
// partitioner multi-switch SDT uses for projection — so the links cut
// by the partition (weighted by parallel-link multiplicity, i.e. the
// partition Result's InterSwitchDemand) are as few as possible. Every
// device then lives on exactly one shard engine, and the only
// cross-shard interactions are events travelling over cut links: wire
// arrivals and PFC pause/resume frames. All of these are in flight for
// at least one link propagation delay, so the minimum propagation
// delay across cut links is a global lookahead L: no event executed in
// the window [T, T+L) can schedule work on another shard earlier than
// T+L. The executor therefore advances all shards in lock-step safe
// windows of width L — no null messages, one barrier per window:
//
//  1. inject the previous window's handed-off events, sorted by
//     (time, source shard, hand-off order);
//  2. T = min over shards of the earliest pending event; stop when
//     every queue is empty;
//  3. run every shard concurrently to its local horizon T+L-1 (times
//     are integer picoseconds, so this executes exactly [T, T+L));
//  4. barrier; collect the hand-offs produced during the window.
//
// Hand-offs travel through per-(source, destination) single-producer/
// single-consumer buffers: only the source shard's worker appends
// during a window, and only the coordinator drains between windows, so
// the buffers need no locks — the window barrier is the only
// synchronization.
//
// # Determinism
//
// For a fixed shard count K, a run is byte-identical across reruns and
// across physical worker counts (Options.Workers, GOMAXPROCS): each
// shard's engine is sequential and deterministic within a window, and
// the injection sort order (time, source shard, hand-off order) fixes
// the merged schedule regardless of which worker finished first. K
// itself is part of the determinism key — K=1 is bit-identical to the
// serial engine, while different K>1 values interleave equal-time
// events (and draw per-shard ECN randomness) differently, each
// reproducibly. See DESIGN.md "Conservative sharded execution".
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/topology"
)

// Options tunes the executor. The zero value is usable: the partition
// seed defaults to the partitioner's fixed seed and every shard gets
// its own worker goroutine.
type Options struct {
	// Workers caps how many shards execute concurrently inside one
	// window (0 or >= K means one worker per shard). Lower values trade
	// wall-clock for CPU; the merged output is byte-identical for every
	// setting — physical parallelism is not part of the determinism
	// key.
	Workers int
	// PartSeed overrides the partitioner's tie-breaking seed (0 = the
	// partitioner's fixed default). The seed participates in the
	// determinism key exactly like K: a different partition is a
	// different (deterministic) event interleaving.
	PartSeed int64
}

// handoff is one cross-shard event in flight between windows.
type handoff struct {
	at netsim.Time
	ev engine.Event
}

// doneCell is a worker's per-window completion flag, padded to a cache
// line so worker completions don't false-share.
type doneCell struct {
	seq atomic.Uint64
	_   [56]byte
}

// Executor runs one sharded fabric. Build one with New, drive traffic
// through the shard networks (Nets share the fabric's device arrays,
// so netsim applications bound to any of them reach every host), then
// call Run.
type Executor struct {
	// Nets are the K shard networks over one shared fabric. Nets[0] is
	// the primary: whole-fabric views (LinkLoads, Host lookups) work
	// from any shard, and post-run counter merging sums across all K.
	Nets []*netsim.Network
	// K is the shard count (fixed at New; part of the determinism key).
	K int
	// Part is the partition that assigned devices to shards.
	Part *partition.Result
	// Lookahead is the conservative window width: the minimum link
	// propagation delay across cut links (0 when nothing is cut).
	Lookahead netsim.Time
	// CutLinks counts directed links whose endpoints live on different
	// shards — every cross-shard event crosses one of these.
	CutLinks int

	workers  int
	stopFlag *atomic.Bool
	stopped  bool

	// hand[src][dst] is the SPSC hand-off buffer: appended by shard
	// src's worker during a window, drained by the coordinator at the
	// barrier.
	hand    [][][]handoff
	scratch []handoff

	// Window barrier state: limit/closing are published by the
	// coordinator before the windowSeq increment and read by workers
	// after observing it.
	limit     netsim.Time
	closing   bool
	windowSeq atomic.Uint64
	done      []doneCell
	sem       chan struct{}

	windows  int64
	handoffs int64
}

// New partitions g into k shards and builds the sharded fabric over
// it. The partition minimises cut links (port-balanced, the paper's
// §IV-C objective) with a fixed seed, so the same (g, k, seed) always
// yields the same partition and hence the same execution. k must be at
// least 1 and at most the topology's switch count; k=1 builds a fabric
// bit-identical to netsim.NewNetwork and Run degenerates to the serial
// engine loop.
func New(g *topology.Graph, fwd netsim.Forwarder, cfg netsim.Config, k int, opt Options) (*Executor, error) {
	res, err := partition.Cut(g, k, partition.Options{Seed: opt.PartSeed})
	if err != nil {
		return nil, err
	}
	nets, err := netsim.NewShardedFabric(g, fwd, cfg, res.Assign, k)
	if err != nil {
		return nil, err
	}
	x := &Executor{Nets: nets, K: k, Part: res, workers: opt.Workers}
	x.Lookahead, x.CutLinks = nets[0].CutLookahead()
	if x.CutLinks > 0 && x.Lookahead <= 0 {
		return nil, fmt.Errorf("shard: zero propagation delay across cut links leaves no lookahead")
	}
	if x.workers <= 0 || x.workers > k {
		x.workers = k
	}
	if x.workers < k {
		x.sem = make(chan struct{}, x.workers)
	}
	// Pre-size the SPSC buffers from the partition's inter-shard
	// demand: a pair cut by d logical links rarely has more than a few
	// packets per link in flight within one lookahead.
	demand := res.InterSwitchDemand(g)
	x.hand = make([][][]handoff, k)
	for s := 0; s < k; s++ {
		x.hand[s] = make([][]handoff, k)
		for d := 0; d < k; d++ {
			a, b := s, d
			if a > b {
				a, b = b, a
			}
			if cut := demand[[2]int{a, b}]; cut > 0 {
				x.hand[s][d] = make([]handoff, 0, 4*cut)
			}
		}
	}
	x.done = make([]doneCell, k)
	for i, n := range nets {
		src := i
		n.SetHandoff(func(dst *netsim.Network, at netsim.Time, ev engine.Event) {
			b := &x.hand[src][dst.Shard()]
			*b = append(*b, handoff{at: at, ev: ev})
		})
	}
	return x, nil
}

// Primary returns shard 0's network — the one to hand to netsim
// applications and whole-fabric observers.
func (x *Executor) Primary() *netsim.Network { return x.Nets[0] }

// SetStop installs a cooperative cancellation flag on every shard
// engine (engine-deep: each engine polls it every stop stride, and the
// coordinator additionally checks it at every window barrier). Call
// before Run.
func (x *Executor) SetStop(flag *atomic.Bool) {
	x.stopFlag = flag
	for _, n := range x.Nets {
		n.Sim.SetStop(flag, 0)
	}
}

// Stopped reports whether the last Run ended on the stop flag rather
// than by draining every shard's queue.
func (x *Executor) Stopped() bool { return x.stopped }

// Events returns the total events executed across all shards.
func (x *Executor) Events() int64 {
	var n int64
	for _, net := range x.Nets {
		n += net.Sim.Events()
	}
	return n
}

// Windows reports how many safe windows the last Run executed.
func (x *Executor) Windows() int64 { return x.windows }

// Handoffs reports how many events crossed shards during the last Run.
func (x *Executor) Handoffs() int64 { return x.handoffs }

// Run executes the fabric to quiescence (or until the stop flag
// rises) and returns the latest shard clock. K=1 runs the serial
// engine loop directly.
func (x *Executor) Run() netsim.Time {
	x.stopped = false
	if x.K == 1 {
		t := x.Nets[0].Sim.Run(0)
		x.stopped = x.Nets[0].Sim.Stopped()
		return t
	}
	for i := range x.Nets {
		go x.workerLoop(i)
	}
	for {
		if x.stopFlag != nil && x.stopFlag.Load() {
			x.stopped = true
			break
		}
		x.inject()
		tmin, any := netsim.Time(0), false
		for _, n := range x.Nets {
			if t, ok := n.Sim.NextAt(); ok && (!any || t < tmin) {
				tmin, any = t, true
			}
		}
		if !any {
			break
		}
		// Integer picosecond times: running to T+L-1 executes exactly
		// the half-open window [T, T+L).
		x.window(tmin + x.Lookahead - 1)
		x.windows++
	}
	x.close()
	var m netsim.Time
	for _, n := range x.Nets {
		if t := n.Sim.Now(); t > m {
			m = t
		}
	}
	return m
}

// inject replays the buffered hand-offs into their destination shards,
// sorted by (time, source shard, hand-off order): the buffers are
// concatenated in source-shard order and stably sorted by time, so
// equal-time events keep source order and, within one source, emission
// order. Every injected event is scheduled with the destination
// network as its handler (wire arrivals and PFC frames are all
// Network-dispatched).
func (x *Executor) inject() {
	for d := 0; d < x.K; d++ {
		buf := x.scratch[:0]
		for s := 0; s < x.K; s++ {
			if h := x.hand[s][d]; len(h) > 0 {
				buf = append(buf, h...)
				x.hand[s][d] = h[:0]
			}
		}
		if len(buf) == 0 {
			continue
		}
		sort.SliceStable(buf, func(a, b int) bool { return buf[a].at < buf[b].at })
		dst := x.Nets[d]
		for i := range buf {
			dst.Sim.Schedule(buf[i].at, dst, buf[i].ev)
		}
		x.handoffs += int64(len(buf))
		x.scratch = buf[:0]
	}
}

// window publishes one safe window to the workers and waits for all of
// them at the barrier.
func (x *Executor) window(limit netsim.Time) {
	x.limit = limit
	seq := x.windowSeq.Add(1)
	for i := range x.done {
		spins := 0
		for x.done[i].seq.Load() != seq {
			if spins++; spins > 256 {
				runtime.Gosched()
			}
		}
	}
}

// close retires the worker goroutines after the final window.
func (x *Executor) close() {
	x.closing = true
	seq := x.windowSeq.Add(1)
	for i := range x.done {
		for x.done[i].seq.Load() != seq {
			runtime.Gosched()
		}
	}
	x.closing = false
	x.windowSeq.Store(0)
	for i := range x.done {
		x.done[i].seq.Store(0)
	}
}

// workerLoop is one shard's executor: spin on the window barrier, run
// the shard engine through the published window, report done. The
// spin yields to the scheduler so K workers make progress on any
// GOMAXPROCS.
func (x *Executor) workerLoop(i int) {
	sim := x.Nets[i].Sim
	var local uint64
	for {
		spins := 0
		for x.windowSeq.Load() == local {
			if spins++; spins > 256 {
				runtime.Gosched()
			}
		}
		local++
		if x.closing {
			x.done[i].seq.Store(local)
			return
		}
		limit := x.limit
		if x.sem != nil {
			x.sem <- struct{}{}
		}
		if t, ok := sim.NextAt(); ok && t <= limit {
			sim.Run(limit)
		}
		if x.sem != nil {
			<-x.sem
		}
		x.done[i].seq.Store(local)
	}
}
