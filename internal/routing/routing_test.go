package routing

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/openflow"
	"repro/internal/topology"
)

// checkAllPairs traces every host pair and fails on missing rules,
// loops, or misdelivery. Returns total hops for shape checks.
func checkAllPairs(t *testing.T, r *Routes) int {
	t.Helper()
	hosts := r.Topo.Hosts()
	total := 0
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			path, err := r.TracePath(s, d)
			if err != nil {
				t.Fatalf("%s: %v", r.Strategy, err)
			}
			total += len(path)
		}
	}
	return total
}

func TestShortestPathOnLine(t *testing.T) {
	g := topology.Line(8, 1)
	r, err := ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	// End-to-end path must traverse all 8 switches.
	hosts := g.Hosts()
	path, err := r.TracePath(hosts[0], hosts[7])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 8 {
		t.Errorf("line path length = %d switches, want 8", len(path))
	}
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("line shortest-path should be deadlock-free: %v", err)
	}
}

func TestShortestPathMinimality(t *testing.T) {
	g := topology.Torus2D(4, 4, 1)
	r, err := ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	for _, s := range hosts {
		dist := g.ShortestPaths(g.HostSwitch(s))
		for _, d := range hosts {
			if s == d {
				continue
			}
			path, err := r.TracePath(s, d)
			if err != nil {
				t.Fatal(err)
			}
			want := dist[g.HostSwitch(d)] + 1
			if len(path) != want {
				t.Errorf("path %d->%d: %d switches, want %d", s, d, len(path), want)
			}
		}
	}
}

func TestFatTreeDFS(t *testing.T) {
	g := topology.FatTree(4)
	r, err := FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("up-down routing must be deadlock-free: %v", err)
	}
	// Same-pod same-edge pairs must not leave the edge switch.
	hosts := g.Hosts()
	path, err := r.TracePath(hosts[0], hosts[1]) // h-0-0-0 and h-0-0-1
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Errorf("same-edge pair path = %d switches, want 1", len(path))
	}
	// Cross-pod pairs climb to a core: 5 switches (edge,agg,core,agg,edge).
	last := hosts[len(hosts)-1]
	path, err = r.TracePath(hosts[0], last)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 {
		t.Errorf("cross-pod path = %d switches, want 5", len(path))
	}
}

func TestFatTreeDFSSpreadsCore(t *testing.T) {
	g := topology.FatTree(4)
	r, err := FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	src := hosts[0]
	cores := map[int]bool{}
	for _, d := range hosts[8:] { // other pods
		path, err := r.TracePath(src, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, sw := range path {
			if g.Vertices[sw].Coord[0] == 0 {
				cores[sw] = true
			}
		}
	}
	if len(cores) < 2 {
		t.Errorf("all cross-pod traffic from one host used %d core(s); want spread >= 2", len(cores))
	}
}

func TestDragonflyMinimal(t *testing.T) {
	g := topology.Dragonfly(4, 9, 2, 1)
	r, err := DragonflyMinimal{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if r.NumVCs != 2 {
		t.Errorf("NumVCs = %d, want 2", r.NumVCs)
	}
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("dragonfly minimal with VC change must be deadlock-free: %v", err)
	}
	// Minimal paths: at most 3 switch-switch hops (local, global, local)
	// => at most 4 switches on the path.
	hosts := g.Hosts()
	for _, s := range hosts[:6] {
		for _, d := range hosts {
			if s == d {
				continue
			}
			path, err := r.TracePath(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(path) > 4 {
				t.Errorf("dragonfly path %d->%d has %d switches (> 4)", s, d, len(path))
			}
		}
	}
}

func TestMeshXY(t *testing.T) {
	g := topology.Mesh2D(4, 4, 1)
	r, err := MeshXY{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("XY routing must be deadlock-free: %v", err)
	}
	// XY: X is corrected before Y on every path.
	hosts := g.Hosts()
	for _, s := range hosts[:4] {
		for _, d := range hosts {
			if s == d {
				continue
			}
			path, err := r.TracePath(s, d)
			if err != nil {
				t.Fatal(err)
			}
			yStarted := false
			for i := 1; i < len(path); i++ {
				pc := g.Vertices[path[i-1]].Coord
				cc := g.Vertices[path[i]].Coord
				if pc[1] != cc[1] {
					yStarted = true
				} else if pc[0] != cc[0] && yStarted {
					t.Fatalf("path %d->%d moves in X after Y", s, d)
				}
			}
		}
	}
}

func TestMeshXYZ(t *testing.T) {
	g := topology.Mesh3D(3, 3, 3, 1)
	r, err := MeshXYZ{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("XYZ routing must be deadlock-free: %v", err)
	}
}

func TestTorusClue2D(t *testing.T) {
	g := topology.Torus2D(5, 5, 1)
	r, err := TorusClue{Dims: 2}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if r.NumVCs != 2 {
		t.Errorf("NumVCs = %d, want 2", r.NumVCs)
	}
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("torus dateline routing must be deadlock-free: %v", err)
	}
	// Shortest-way-around: max per-dimension hops is 2 on a 5-ring, so
	// max path = 2+2 switch hops => 5 switches.
	hosts := g.Hosts()
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			path, err := r.TracePath(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(path) > 5 {
				t.Errorf("torus path %d->%d = %d switches (> 5)", s, d, len(path))
			}
		}
	}
}

func TestTorusClue3D(t *testing.T) {
	g := topology.Torus3D(4, 4, 4, 1)
	r, err := TorusClue{Dims: 3}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("3D torus dateline routing must be deadlock-free: %v", err)
	}
}

func TestDeadlockDetectorFindsCycle(t *testing.T) {
	// Hand-built cyclic routes on a 3-switch ring: everything forwarded
	// clockwise, including to non-adjacent destinations — the canonical
	// ring deadlock.
	g := topology.Ring(3, 1)
	sw := g.Switches()
	hosts := g.Hosts()
	r := newRoutes(g, "cyclic", 1)
	for i, s := range sw {
		next := sw[(i+1)%3]
		for _, d := range hosts {
			if g.HostSwitch(d) == s {
				r.add(Rule{Switch: s, Dst: d, Tag: openflow.Any, OutPort: portTo(g, s, d), NewTag: -1})
			} else {
				r.add(Rule{Switch: s, Dst: d, Tag: openflow.Any, OutPort: portTo(g, s, next), NewTag: -1})
			}
		}
	}
	err := VerifyDeadlockFree(r)
	if err == nil {
		t.Fatal("cyclic clockwise ring routing passed the deadlock check")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error does not name the cycle: %v", err)
	}
}

func TestUGALMinimalWhenIdle(t *testing.T) {
	g := topology.Dragonfly(4, 9, 2, 1)
	r, err := DragonflyUGAL{Bias: 1}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("idle UGAL must be deadlock-free: %v", err)
	}
	// With no load, every path must be minimal (<= 4 switches).
	hosts := g.Hosts()
	for _, s := range hosts[:4] {
		for _, d := range hosts {
			if s == d {
				continue
			}
			path, err := r.TracePath(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(path) > 4 {
				t.Errorf("idle UGAL took non-minimal path %d->%d (%d switches)", s, d, len(path))
			}
		}
	}
}

func TestUGALDivertsUnderLoad(t *testing.T) {
	g := topology.Dragonfly(4, 9, 2, 1)
	// Saturate every global link out of group 0 toward group 1.
	loads := map[int]float64{}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		ga, gb := g.Vertices[e.A].Coord[0], g.Vertices[e.B].Coord[0]
		if (ga == 0 && gb == 1) || (ga == 1 && gb == 0) {
			loads[eid] = 1e9
		}
	}
	r, err := DragonflyUGAL{Loads: loads, Bias: 1}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPairs(t, r)
	if err := VerifyDeadlockFree(r); err != nil {
		t.Errorf("loaded UGAL must stay deadlock-free: %v", err)
	}
	// A group-0 host reaching a group-1 host must now detour: > 4 switches.
	var src, dst int = -1, -1
	for _, h := range g.Hosts() {
		grp := g.Vertices[g.HostSwitch(h)].Coord[0]
		if grp == 0 && src < 0 {
			src = h
		}
		if grp == 1 && dst < 0 {
			dst = h
		}
	}
	path, err := r.TracePath(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// The diverted path must transit an intermediate group and must not
	// use any saturated global link.
	sawIntermediate := false
	for _, sw := range path {
		if grp := g.Vertices[sw].Coord[0]; grp != 0 && grp != 1 {
			sawIntermediate = true
		}
	}
	if !sawIntermediate {
		t.Errorf("UGAL did not divert under load: path groups stayed in {0,1}: %v", path)
	}
	for i := 1; i < len(path); i++ {
		eid := g.EdgeBetween(path[i-1], path[i])
		if loads[eid] > 0 {
			t.Errorf("diverted path still crosses saturated edge %d", eid)
		}
	}
}

func TestCompileLogicalTables(t *testing.T) {
	g := topology.Line(4, 1)
	r, err := ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := CompileLogicalTables(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("tables for %d switches, want 4", len(tables))
	}
	// Forward a packet along the line via the flow tables and verify it
	// reaches the destination's host port.
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[3]
	cur := g.HostSwitch(src)
	inPort := g.Edges[g.EdgeBetween(cur, src)].PortAt(cur)
	tag := 0
	for hop := 0; hop < 10; hop++ {
		sw := tables[cur]
		fwd := sw.Process(openflow.PacketMeta{InPort: inPort, SrcHost: src, DstHost: dst, Tag: tag, Bytes: 100})
		if !fwd.Matched || fwd.Dropped {
			t.Fatalf("hop %d: packet dropped at switch %d: %+v", hop, cur, fwd)
		}
		tag = fwd.Tag
		// Resolve the out port.
		found := false
		for _, eid := range g.IncidentEdges(cur) {
			e := g.Edges[eid]
			if e.PortAt(cur) == fwd.OutPort {
				nxt := e.Other(cur)
				if nxt == dst {
					return // delivered
				}
				inPort = e.PortAt(nxt)
				cur = nxt
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("dangling out port %d at switch %d", fwd.OutPort, cur)
		}
	}
	t.Fatal("packet looped")
}

func TestCompileRespectsCapacity(t *testing.T) {
	g := topology.FatTree(4)
	r, err := FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileLogicalTables(r, 1); err == nil {
		t.Error("capacity 1 accepted a fat-tree route set")
	}
}

func TestForTopology(t *testing.T) {
	cases := []struct {
		g    *topology.Graph
		want string
	}{
		{topology.FatTree(4), "fattree-dfs"},
		{topology.Dragonfly(4, 9, 2, 1), "dragonfly-minimal"},
		{topology.Mesh2D(3, 3, 1), "mesh-xy"},
		{topology.Mesh3D(2, 2, 2, 1), "mesh-xyz"},
		{topology.Torus2D(4, 4, 1), "torus-clue-2d"},
		{topology.Torus3D(3, 3, 3, 1), "torus-clue-3d"},
		{topology.Ring(5, 1), "shortest-path"},
	}
	for _, c := range cases {
		if got := ForTopology(c.g).Name(); got != c.want {
			t.Errorf("ForTopology(%s) = %s, want %s", c.g.Name, got, c.want)
		}
	}
}

func TestLookupSpecificity(t *testing.T) {
	g := topology.Line(2, 1)
	r := newRoutes(g, "test", 2)
	sw := g.Switches()[0]
	r.add(Rule{Switch: sw, Dst: 99, Tag: openflow.Any, OutPort: 1, NewTag: -1})
	r.add(Rule{Switch: sw, Dst: 99, Tag: 1, OutPort: 2, NewTag: -1})
	r.add(Rule{Switch: sw, InPort: 3, Dst: 99, Tag: openflow.Any, OutPort: 3, NewTag: -1})
	if got := r.Lookup(sw, 3, 99, 0).OutPort; got != 3 {
		t.Errorf("in-port rule should win, got out %d", got)
	}
	if got := r.Lookup(sw, 1, 99, 1).OutPort; got != 2 {
		t.Errorf("tag rule should win, got out %d", got)
	}
	if got := r.Lookup(sw, 1, 99, 0).OutPort; got != 1 {
		t.Errorf("fallback rule should win, got out %d", got)
	}
	if r.Lookup(sw, 1, 98, 0) != nil {
		t.Error("lookup for unknown dst should miss")
	}
}

// Property: shortest-path routing on random connected WANs always
// completes all pairs with minimal hop counts.
func TestQuickShortestPathComplete(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw)%12
		g := topology.RandomWAN("q", n, n/3, seed)
		r, err := ShortestPath{}.Compute(g)
		if err != nil {
			return false
		}
		hosts := g.Hosts()
		for _, s := range hosts {
			dist := g.ShortestPaths(g.HostSwitch(s))
			for _, d := range hosts {
				if s == d {
					continue
				}
				path, err := r.TracePath(s, d)
				if err != nil {
					return false
				}
				if len(path) != dist[g.HostSwitch(d)]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDragonflyMinimalCompute(b *testing.B) {
	g := topology.Dragonfly(4, 9, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (DragonflyMinimal{}).Compute(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyDeadlockFreeTorus(b *testing.B) {
	g := topology.Torus2D(5, 5, 1)
	r, err := TorusClue{Dims: 2}.Compute(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyDeadlockFree(r); err != nil {
			b.Fatal(err)
		}
	}
}
