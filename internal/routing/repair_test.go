package routing

import (
	"testing"

	"repro/internal/topology"
)

// edgeOf resolves the edge a rule's egress rides (-1 when the port
// leads nowhere, e.g. a rule at an out-of-range switch).
func edgeOf(g *topology.Graph, csr *topology.CSR, r *Rule) int {
	if r.Switch < 0 || r.Switch >= len(g.Vertices) {
		return -1
	}
	lo, hi := csr.Row(r.Switch)
	for e := lo; e < hi; e++ {
		if int(csr.Port[e]) == r.OutPort {
			return int(csr.Edge[e])
		}
	}
	return -1
}

func TestRepairAvoidingReroutesAroundDeadEdge(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.FatTree(4),
		topology.Dragonfly(4, 9, 2, 1),
		topology.Torus2D(4, 4, 1),
	} {
		orig, err := ForTopology(g).Compute(g)
		if err != nil {
			t.Fatal(err)
		}
		csr := g.CSR()
		// Fail the first switch-switch edge some rule actually uses.
		dead := -1
		for i := range orig.Rules {
			e := edgeOf(g, csr, &orig.Rules[i])
			if e < 0 {
				continue
			}
			a, b := g.Edges[e].A, g.Edges[e].B
			if g.Vertices[a].Kind == topology.Switch && g.Vertices[b].Kind == topology.Switch {
				dead = e
				break
			}
		}
		if dead < 0 {
			t.Fatalf("%s: no core edge in use", g.Name)
		}
		out := Outage{Edge: map[int]bool{dead: true}, Switch: map[int]bool{}}
		rules, patched := RepairAvoiding(orig, out)
		if len(patched) == 0 {
			t.Fatalf("%s: nothing patched for a used edge", g.Name)
		}
		for i := range rules {
			if e := edgeOf(g, csr, &rules[i]); e == dead {
				t.Fatalf("%s: repaired rule %+v still uses dead edge %d", g.Name, rules[i], dead)
			}
		}
		// Patched destinations must remain reachable: walk the repaired
		// rule set from every host toward every patched destination.
		repaired := orig.Clone()
		repaired.ReplaceRules(rules)
		for _, dst := range patched {
			for _, src := range g.Hosts() {
				if src == dst {
					continue
				}
				if !walkDelivers(t, g, csr, repaired, src, dst, out) {
					t.Fatalf("%s: %d -> %d unreachable after repair", g.Name, src, dst)
				}
			}
		}
		// Unpatched destinations keep their original rules verbatim.
		patchedSet := map[int]bool{}
		for _, d := range patched {
			patchedSet[d] = true
		}
		count := func(rs []Rule) map[int]int {
			m := map[int]int{}
			for i := range rs {
				if !patchedSet[rs[i].Dst] {
					m[rs[i].Dst]++
				}
			}
			return m
		}
		oldN, newN := count(orig.Rules), count(rules)
		for d, n := range oldN {
			if newN[d] != n {
				t.Fatalf("%s: healthy dst %d rule count changed %d -> %d", g.Name, d, n, newN[d])
			}
		}
		// Recovery restores the original rules exactly.
		restored, rp := RepairAvoiding(orig, Outage{})
		if len(rp) != 0 || len(restored) != len(orig.Rules) {
			t.Fatalf("%s: empty outage did not restore", g.Name)
		}
		for i := range restored {
			if restored[i] != orig.Rules[i] {
				t.Fatalf("%s: restored rule %d differs", g.Name, i)
			}
		}
	}
}

// walkDelivers follows the rule set hop by hop from src's switch and
// reports whether the packet reaches dst without loops, table misses,
// or traversing a dead element.
func walkDelivers(t *testing.T, g *topology.Graph, csr *topology.CSR, r *Routes, src, dst int, down Outage) bool {
	t.Helper()
	sw := g.HostSwitch(src)
	tag := 0
	inPort := 0
	for hops := 0; hops < len(g.Vertices)+1; hops++ {
		if down.Switch[sw] {
			return false
		}
		rule := r.Lookup(sw, inPort, dst, tag)
		if rule == nil {
			return false
		}
		if rule.NewTag >= 0 {
			tag = rule.NewTag
		}
		lo, hi := csr.Row(sw)
		next, edge := -1, -1
		for e := lo; e < hi; e++ {
			if int(csr.Port[e]) == rule.OutPort {
				next, edge = int(csr.Nbr[e]), int(csr.Edge[e])
				break
			}
		}
		if next < 0 || down.Edge[edge] {
			return false
		}
		if next == dst {
			return true
		}
		if g.Vertices[next].Kind != topology.Switch {
			return false
		}
		// Ingress port at the next switch.
		inPort = g.Edges[edge].PortAt(next)
		sw = next
	}
	return false // loop
}

func TestRepairAvoidingDeadSwitchAndUnreachable(t *testing.T) {
	g := topology.FatTree(4)
	orig, err := ForTopology(g).Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	csr := g.CSR()
	// Kill an edge (ToR) switch: its hosts become unreachable, every
	// other destination stays reachable.
	var tor int = -1
	for _, sw := range g.Switches() {
		for _, h := range g.Hosts() {
			if g.HostSwitch(h) == sw {
				tor = sw
				break
			}
		}
		if tor >= 0 {
			break
		}
	}
	var attached []int
	for _, h := range g.Hosts() {
		if g.HostSwitch(h) == tor {
			attached = append(attached, h)
		}
	}
	if tor < 0 || len(attached) == 0 {
		t.Fatal("no ToR with hosts found")
	}
	out := Outage{Edge: map[int]bool{}, Switch: map[int]bool{tor: true}}
	rules, patched := RepairAvoiding(orig, out)
	if len(patched) == 0 {
		t.Fatal("dead ToR patched nothing")
	}
	repaired := orig.Clone()
	repaired.ReplaceRules(rules)
	isAttached := map[int]bool{}
	for _, h := range attached {
		isAttached[h] = true
	}
	// Hosts behind the dead ToR have no rules at live switches pointing
	// anywhere useful: no rule for them may remain at any live switch
	// that would reach the dead ToR... simply: they are unreachable.
	for _, dst := range attached {
		for _, src := range g.Hosts() {
			if src == dst || isAttached[src] {
				continue
			}
			if walkDelivers(t, g, csr, repaired, src, dst, out) {
				t.Fatalf("host %d behind dead ToR still reachable from %d", dst, src)
			}
		}
	}
	// Every other pair still delivers.
	for _, dst := range g.Hosts() {
		if isAttached[dst] {
			continue
		}
		for _, src := range g.Hosts() {
			if src == dst || isAttached[src] {
				continue
			}
			if !walkDelivers(t, g, csr, repaired, src, dst, out) {
				t.Fatalf("%d -> %d broken by unrelated ToR death", src, dst)
			}
		}
	}
}

// TestRepairAvoidingParallelEdges: with two parallel edges between the
// same switches, cutting the lower-ID one must reroute over the
// surviving parallel edge — not re-emit the dead port (the lowest-ID
// default of CSR.PortTo).
func TestRepairAvoidingParallelEdges(t *testing.T) {
	g := topology.New("parallel")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	h1 := g.AddHost("h1")
	h2 := g.AddHost("h2")
	eLow := g.Connect(s1, s2)
	eHigh := g.Connect(s1, s2)
	g.Connect(s1, h1)
	g.Connect(s2, h2)
	orig, err := ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	csr := g.CSR()
	out := Outage{Edge: map[int]bool{eLow: true}, Switch: map[int]bool{}}
	rules, patched := RepairAvoiding(orig, out)
	if len(patched) == 0 {
		t.Fatal("cutting the in-use parallel edge patched nothing")
	}
	for i := range rules {
		if e := edgeOf(g, csr, &rules[i]); e == eLow {
			t.Fatalf("repaired rule %+v rides the dead parallel edge %d", rules[i], eLow)
		}
	}
	repaired := orig.Clone()
	repaired.ReplaceRules(rules)
	for _, pair := range [][2]int{{h1, h2}, {h2, h1}} {
		if !walkDelivers(t, g, csr, repaired, pair[0], pair[1], out) {
			t.Fatalf("%d -> %d unreachable despite the healthy parallel edge %d",
				pair[0], pair[1], eHigh)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := topology.FatTree(4)
	orig, err := ForTopology(g).Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	orig.Prime()
	c := orig.Clone()
	if len(c.Rules) != len(orig.Rules) || c.Strategy != orig.Strategy || c.NumVCs != orig.NumVCs {
		t.Fatal("clone lost fields")
	}
	before := len(orig.Rules)
	c.ReplaceRules(append([]Rule(nil), c.Rules[:10]...))
	if len(orig.Rules) != before {
		t.Fatal("mutating the clone touched the original")
	}
	// The original's FIB still answers like before.
	if orig.FIB() == nil || c.FIB() == nil {
		t.Fatal("FIB lost")
	}
	if orig.FIB() == c.FIB() {
		t.Fatal("clone shares the compiled FIB")
	}
}
