package routing

import (
	"fmt"
	"sort"

	"repro/internal/openflow"
	"repro/internal/topology"
)

// DragonflyUGAL is the "active routing" of §VI-E: it extends Dragonfly
// minimal routing by estimating congestion from the Network Monitor's
// per-link statistics and diverting flows onto non-minimal (Valiant)
// paths through a lightly loaded intermediate group when the minimal
// global link is congested (UGAL, after Rahman et al.'s topology-custom
// UGAL on Dragonfly).
//
// Virtual channels: tag 0 = source-group local hop of a minimal path,
// tag 3 = source-group local hop toward a non-minimal gateway, tag 1 =
// after the first global hop, tag 2 = after the second global hop.
// Classes are strictly increasing along any path, so the CDG stays
// acyclic (verified in tests).
type DragonflyUGAL struct {
	// Loads estimates per-logical-link load (e.g. bytes/s from the
	// Network Monitor), keyed by edge ID. Missing entries mean idle.
	Loads map[int]float64
	// Bias is added to the non-minimal cost so minimal wins when the
	// network is idle (UGAL's hysteresis).
	Bias float64
}

// Name implements Strategy.
func (DragonflyUGAL) Name() string { return "dragonfly-ugal" }

// Compute implements Strategy.
func (u DragonflyUGAL) Compute(g *topology.Graph) (*Routes, error) {
	df, err := indexDragonfly(g)
	if err != nil {
		return nil, err
	}
	load := func(eid int) float64 {
		if u.Loads == nil {
			return 0
		}
		return u.Loads[eid]
	}
	numGroups := len(df.groups)
	r := newRoutes(g, "dragonfly-ugal", 4)

	for _, dst := range g.Hosts() {
		D := g.HostSwitch(dst)
		gd := g.Vertices[D].Coord[0]

		// Destination-group rules: deliver or one local hop; accept any
		// tag (1 from minimal, 2 from non-minimal, 0 intra-group).
		for _, s := range df.groups[gd] {
			if s == D {
				r.add(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
					OutPort: portTo(g, s, dst), NewTag: -1})
			} else {
				r.add(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
					OutPort: portTo(g, s, D), NewTag: -1})
			}
		}

		for gs := 0; gs < numGroups; gs++ {
			if gs == gd {
				continue
			}
			gwMin, _, ok := df.gateway(gs, gd)
			if !ok {
				return nil, fmt.Errorf("routing: ugal: no global link %d->%d", gs, gd)
			}
			minEdge := g.EdgeBetween(gwMin, df.globalPeer(gwMin, gd))

			// Group-wide intermediate choice for this destination: the
			// least-loaded two-global-hop detour. Choosing per group
			// (not per source) keeps gateway flow tables consistent.
			// Tie-breaking rotates with the destination so idle-network
			// detours spread across intermediate groups instead of
			// piling onto one.
			bestMid, bestCost := -1, 0.0
			for i := 0; i < numGroups; i++ {
				mid := (dst + i) % numGroups
				if mid == gs || mid == gd {
					continue
				}
				gw1, _, ok1 := df.gateway(gs, mid)
				gw2, _, ok2 := df.gateway(mid, gd)
				if !ok1 || !ok2 {
					continue
				}
				e1 := g.EdgeBetween(gw1, df.globalPeer(gw1, mid))
				e2 := g.EdgeBetween(gw2, df.globalPeer(gw2, gd))
				cost := load(e1) + load(e2)
				if bestMid < 0 || cost < bestCost {
					bestMid, bestCost = mid, cost
				}
			}
			// UGAL decision: minimal unless it costs more than twice
			// the detour plus bias (queue-proportional comparison).
			useNonMin := bestMid >= 0 && load(minEdge) > 2*bestCost+u.Bias

			if !useNonMin {
				for _, s := range df.groups[gs] {
					if s == gwMin {
						peer := df.globalPeer(s, gd)
						r.add(Rule{Switch: s, Dst: dst, Tag: 0,
							OutPort: portTo(g, s, peer), NewTag: 1})
					} else {
						r.add(Rule{Switch: s, Dst: dst, Tag: 0,
							OutPort: portTo(g, s, gwMin), NewTag: -1})
					}
				}
				continue
			}

			gw1, _, _ := df.gateway(gs, bestMid)
			// Source-group rules: head for gw1 on the tag-3 class, then
			// cross to the intermediate group on tag 1.
			for _, s := range df.groups[gs] {
				if s == gw1 {
					peer := df.globalPeer(s, bestMid)
					r.add(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
						OutPort: portTo(g, s, peer), NewTag: 1})
				} else {
					r.add(Rule{Switch: s, Dst: dst, Tag: 0,
						OutPort: portTo(g, s, gw1), NewTag: 3})
					r.add(Rule{Switch: s, Dst: dst, Tag: 3,
						OutPort: portTo(g, s, gw1), NewTag: -1})
				}
			}
			// Intermediate-group rules (tag 1): local to the gd gateway,
			// then cross on tag 2.
			gw2, _, _ := df.gateway(bestMid, gd)
			for _, s := range df.groups[bestMid] {
				if s == gw2 {
					peer := df.globalPeer(s, gd)
					r.add(Rule{Switch: s, Dst: dst, Tag: 1,
						OutPort: portTo(g, s, peer), NewTag: 2})
				} else {
					r.add(Rule{Switch: s, Dst: dst, Tag: 1,
						OutPort: portTo(g, s, gw2), NewTag: -1})
				}
			}
		}
	}
	dedupeRules(r)
	sortRules(r)
	return r, nil
}

// dedupeRules removes exact duplicates produced by overlapping group
// roles (a switch can be intermediate for many destinations).
func dedupeRules(r *Routes) {
	sort.SliceStable(r.Rules, func(i, j int) bool {
		a, b := r.Rules[i], r.Rules[j]
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		if a.InPort != b.InPort {
			return a.InPort < b.InPort
		}
		if a.OutPort != b.OutPort {
			return a.OutPort < b.OutPort
		}
		return a.NewTag < b.NewTag
	})
	out := r.Rules[:0]
	for i, rule := range r.Rules {
		if i == 0 || rule != r.Rules[i-1] {
			out = append(out, rule)
		}
	}
	r.Rules = out
	r.invalidate()
}
