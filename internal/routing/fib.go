package routing

import (
	"fmt"
	"sort"

	"repro/internal/openflow"
)

// FIB is a compiled forwarding table: Routes flattened into one dense
// per-(switch, destination) slot array so the per-hop forwarding
// decision — the hottest operation in the whole simulator — is a single
// array load instead of a map probe over rule indices.
//
// Layout: slot (sw, dst) lives at slots[sw*stride+dst], stride =
// len(Topo.Vertices). The common case — a single fully wildcarded rule
// (InPort: any, Tag: any), which is what every Table III strategy
// installs for most (switch, dst) pairs — packs into one uint32:
//
//	bits  0..15  out port (0 = empty slot / table miss)
//	bits 16..30  new tag + 1 (0 = keep the packet's tag)
//	bit  31      spill flag
//
// Slots whose rule set includes port- or tag-qualified rules (the
// Dragonfly/Torus VC transitions) or a rule whose fields overflow the
// packed encoding carry the spill flag; bits 0..30 then index a small
// per-slot spill list holding the full rules in Lookup's
// most-specific-first order. Forward is branch-light and
// allocation-free on both paths.
//
// A FIB is immutable once compiled and safe for concurrent readers; it
// must agree with Routes.Lookup on every (switch, inPort, dst, tag)
// tuple — Lookup stays as the reference implementation and the
// differential tests in fib_test.go enforce the equivalence.
type FIB struct {
	routes *Routes
	stride int
	slots  []uint32
	// ruleIdx mirrors slots for fast entries: the index into
	// routes.Rules of the packed rule (-1 when empty or spilled). The
	// reactive controller needs the matched *Rule, not just the action.
	ruleIdx []int32
	// Spill storage in CSR form: spill group k holds
	// spillRules[spillOff[k]:spillOff[k+1]].
	spillOff   []int32
	spillRules []spillRule
	// extra holds slots whose switch or destination ID falls outside
	// the dense array — only manual rule sets referencing IDs beyond
	// the vertex range produce these. Always compiled as spill groups.
	extra map[[2]int]uint32
}

// spillRule is one qualified (or encoding-overflowing) rule in a spill
// list, stored unpacked so arbitrary manual rule sets round-trip.
type spillRule struct {
	inPort int32 // 0 = any
	tag    int32 // openflow.Any = any
	out    int32
	newTag int32 // -1 = keep
	rule   int32 // index into routes.Rules
}

const fibSpill = uint32(1) << 31

// fibPackable reports whether a rule's action fits the packed fast
// encoding (port- and tag-wildcarded, fields in range).
func fibPackable(r *Rule) bool {
	return r.InPort == 0 && r.Tag == openflow.Any &&
		r.OutPort > 0 && r.OutPort <= 0xffff && r.NewTag < 0x7ffe
}

func fibPack(r *Rule) uint32 {
	v := uint32(r.OutPort)
	if r.NewTag >= 0 {
		v |= uint32(r.NewTag+1) << 16
	}
	return v
}

// Compile flattens the route set into a FIB. The result snapshots the
// current rules: adding rules afterwards requires recompiling (the
// memoized accessor FIB invalidates automatically, exactly like the
// lookup index).
func (r *Routes) Compile() *FIB {
	r.buildIndex()
	n := len(r.Topo.Vertices)
	f := &FIB{
		routes:   r,
		stride:   n,
		slots:    make([]uint32, n*n),
		ruleIdx:  make([]int32, n*n),
		spillOff: []int32{0},
	}
	for i := range f.ruleIdx {
		f.ruleIdx[i] = -1
	}
	// Deterministic slot order keeps the spill arrays (and therefore
	// the whole FIB) reproducible independent of map iteration.
	for sw := 0; sw < n; sw++ {
		for dst := 0; dst < n; dst++ {
			idx := r.index[[2]int{sw, dst}]
			if len(idx) == 0 {
				continue
			}
			slot := sw*n + dst
			// Fast path only when every rule after the first can never
			// win: the first rule is fully wildcarded (most specific
			// first means the rest are too, so they are shadowed) and
			// its action packs.
			if first := &r.Rules[idx[0]]; fibPackable(first) {
				f.slots[slot] = fibPack(first)
				f.ruleIdx[slot] = int32(idx[0])
				continue
			}
			f.slots[slot] = f.spillGroup(r, idx)
		}
	}
	// Manual rule sets may reference switch/destination IDs beyond the
	// vertex range; those slots go to the overflow map (sorted keys
	// keep the spill arrays deterministic).
	var oor [][2]int
	for key := range r.index {
		if uint(key[0]) >= uint(n) || uint(key[1]) >= uint(n) {
			oor = append(oor, key)
		}
	}
	if len(oor) > 0 {
		sort.Slice(oor, func(i, j int) bool {
			if oor[i][0] != oor[j][0] {
				return oor[i][0] < oor[j][0]
			}
			return oor[i][1] < oor[j][1]
		})
		f.extra = make(map[[2]int]uint32, len(oor))
		for _, key := range oor {
			f.extra[key] = f.spillGroup(r, r.index[key])
		}
	}
	return f
}

// spillGroup appends the indexed rules (already most-specific-first) as
// a new spill group and returns its slot word.
func (f *FIB) spillGroup(r *Routes, idx []int) uint32 {
	k := len(f.spillOff) - 1
	for _, ri := range idx {
		rule := &r.Rules[ri]
		f.spillRules = append(f.spillRules, spillRule{
			inPort: int32(rule.InPort),
			tag:    int32(rule.Tag),
			out:    int32(rule.OutPort),
			newTag: int32(rule.NewTag),
			rule:   int32(ri),
		})
	}
	f.spillOff = append(f.spillOff, int32(len(f.spillRules)))
	return fibSpill | uint32(k)
}

// Forward returns the egress port and the packet's resulting tag for a
// packet on switch sw arriving on inPort with the given destination and
// current tag. ok is false on a table miss. It performs no allocation
// and, on the fast path, a single array load.
func (f *FIB) Forward(sw, inPort, dst, tag int) (outPort, newTag int, ok bool) {
	var v uint32
	if uint(sw) < uint(f.stride) && uint(dst) < uint(f.stride) {
		v = f.slots[sw*f.stride+dst]
	} else if f.extra != nil {
		v = f.extra[[2]int{sw, dst}]
	}
	if v == 0 {
		return 0, 0, false
	}
	if v&fibSpill == 0 {
		nt := int(v >> 16)
		if nt == 0 {
			return int(v & 0xffff), tag, true
		}
		return int(v & 0xffff), nt - 1, true
	}
	if sr := f.spillMatch(v, inPort, tag); sr != nil {
		if sr.newTag >= 0 {
			return int(sr.out), int(sr.newTag), true
		}
		return int(sr.out), tag, true
	}
	return 0, 0, false
}

// spillMatch scans slot word v's spill group for the first entry —
// they are stored most-specific-first — matching (inPort, tag). The
// single match loop shared by Forward and Rule; allocation-free.
func (f *FIB) spillMatch(v uint32, inPort, tag int) *spillRule {
	k := v &^ fibSpill
	rules := f.spillRules[f.spillOff[k]:f.spillOff[k+1]]
	for i := range rules {
		sr := &rules[i]
		if sr.inPort != 0 && int(sr.inPort) != inPort {
			continue
		}
		if sr.tag != openflow.Any && int(sr.tag) != tag {
			continue
		}
		return sr
	}
	return nil
}

// Rule returns the matched rule itself — the same *Rule Lookup would
// return — for callers that need rule granularity (the reactive
// controller keys installed flows by the rule's wildcard shape). nil on
// a miss.
func (f *FIB) Rule(sw, inPort, dst, tag int) *Rule {
	var v uint32
	inRange := uint(sw) < uint(f.stride) && uint(dst) < uint(f.stride)
	if inRange {
		v = f.slots[sw*f.stride+dst]
	} else if f.extra != nil {
		v = f.extra[[2]int{sw, dst}]
	}
	if v == 0 {
		return nil
	}
	if v&fibSpill == 0 {
		// Fast-packed slots only exist in the dense array (overflow
		// slots always spill), so ruleIdx is addressable here.
		return &f.routes.Rules[f.ruleIdx[sw*f.stride+dst]]
	}
	if sr := f.spillMatch(v, inPort, tag); sr != nil {
		return &f.routes.Rules[sr.rule]
	}
	return nil
}

// Routes returns the rule set this FIB was compiled from.
func (f *FIB) Routes() *Routes { return f.routes }

// Stats summarises the compiled layout for dumps and DESIGN.md's
// accounting: how many slots take the packed fast path vs a spill list.
func (f *FIB) Stats() (fast, spilled, spillRules int) {
	for _, v := range f.slots {
		switch {
		case v == 0:
		case v&fibSpill == 0:
			fast++
		default:
			spilled++
		}
	}
	return fast, spilled, len(f.spillRules)
}

// String renders a one-line layout summary.
func (f *FIB) String() string {
	fast, spilled, rules := f.Stats()
	return fmt.Sprintf("FIB{%s: %d fast slots, %d spill slots (%d rules)}",
		f.routes.Strategy, fast, spilled, rules)
}
