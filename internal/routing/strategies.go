package routing

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/openflow"
	"repro/internal/topology"
)

// FatTreeDFS is the paper's Table III routing for Fat-Tree: up-down
// (DFS) routing. Packets climb toward a deterministic core chosen by
// hashing the destination (spreading load across the core layer), then
// descend along the unique down path. Up-down routing is deadlock-free
// with a single VC because channel dependencies only turn down.
type FatTreeDFS struct{}

// Name implements Strategy.
func (FatTreeDFS) Name() string { return "fattree-dfs" }

// Compute implements Strategy.
func (FatTreeDFS) Compute(g *topology.Graph) (*Routes, error) {
	return computeStrategy(g, "fattree-dfs", 1, nil, fatTreeBuilder)
}

// ComputeFor implements DstComputer.
func (FatTreeDFS) ComputeFor(g *topology.Graph, dsts []int) (*Routes, error) {
	return computeStrategy(g, "fattree-dfs", 1, dsts, fatTreeBuilder)
}

// fatTreeBuilder validates fat-tree coordinates once and returns the
// per-destination up-down rule build.
func fatTreeBuilder(g *topology.Graph) (func(dst int, emit func(Rule)) error, error) {
	// Index vertices by coordinates set by topology.FatTree.
	type key struct{ layer, a, b int }
	byCoord := map[key]int{}
	k := 0
	for _, s := range g.Switches() {
		c := g.Vertices[s].Coord
		if len(c) != 3 {
			return nil, fmt.Errorf("routing: %s: switch %d lacks fat-tree coords", g.Name, s)
		}
		byCoord[key{c[0], c[1], c[2]}] = s
		if c[0] == 1 && c[2]+1 > k/2 { // agg index range gives k/2
			k = (c[2] + 1) * 2
		}
	}
	half := k / 2
	if half == 0 {
		return nil, fmt.Errorf("routing: %s is not a fat-tree", g.Name)
	}
	csr := g.CSR()
	return func(dst int, emit func(Rule)) error {
		hc := g.Vertices[dst].Coord // {3, pod, edge, slot}
		if len(hc) != 4 {
			return fmt.Errorf("routing: host %d lacks fat-tree coords", dst)
		}
		dPod, dEdge := hc[1], hc[2]
		spread := dst // deterministic hash: spread by destination ID
		dstEdgeSw := byCoord[key{2, dPod, dEdge}]
		for _, s := range g.Switches() {
			c := g.Vertices[s].Coord
			var nxt int
			switch c[0] {
			case 2: // edge switch
				if c[1] == dPod && c[2] == dEdge {
					emit(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
						OutPort: csr.PortTo(s, dst), NewTag: -1})
					continue
				}
				// Up to aggregation chosen by destination hash.
				nxt = byCoord[key{1, c[1], spread % half}]
			case 1: // aggregation switch
				if c[1] == dPod {
					nxt = dstEdgeSw // down
				} else {
					// Up to core row c[2], column by hash.
					nxt = byCoord[key{0, c[2], (spread / half) % half}]
				}
			case 0: // core switch: down to the destination pod's agg in this row
				nxt = byCoord[key{1, dPod, c[1]}]
			default:
				return fmt.Errorf("routing: unknown fat-tree layer %d", c[0])
			}
			out := csr.PortTo(s, nxt)
			if out == 0 {
				return fmt.Errorf("routing: fat-tree: no link %d->%d", s, nxt)
			}
			emit(Rule{Switch: s, Dst: dst, Tag: openflow.Any, OutPort: out, NewTag: -1})
		}
		return nil
	}, nil
}

// DragonflyMinimal is Table III's Dragonfly routing: minimal paths
// (local, global, local) with deadlock avoidance by changing VC after
// the global hop (Dally & Aoki / Kim et al.): tag 0 in the source
// group, tag 1 once inside the destination group.
type DragonflyMinimal struct{}

// Name implements Strategy.
func (DragonflyMinimal) Name() string { return "dragonfly-minimal" }

// Compute implements Strategy.
func (DragonflyMinimal) Compute(g *topology.Graph) (*Routes, error) {
	return computeStrategy(g, "dragonfly-minimal", 2, nil, dragonflyBuilder)
}

// ComputeFor implements DstComputer.
func (DragonflyMinimal) ComputeFor(g *topology.Graph, dsts []int) (*Routes, error) {
	return computeStrategy(g, "dragonfly-minimal", 2, dsts, dragonflyBuilder)
}

// dragonflyBuilder indexes the group structure once and returns the
// per-destination minimal-path rule build.
func dragonflyBuilder(g *topology.Graph) (func(dst int, emit func(Rule)) error, error) {
	df, err := indexDragonfly(g)
	if err != nil {
		return nil, err
	}
	csr := g.CSR()
	return func(dst int, emit func(Rule)) error {
		D := g.HostSwitch(dst)
		gd := g.Vertices[D].Coord[0]
		for _, s := range g.Switches() {
			gs := g.Vertices[s].Coord[0]
			if gs == gd {
				// Inside destination group: deliver or one local hop.
				// Tag Any covers both intra-group traffic (tag 0) and
				// arrivals from the global hop (tag 1).
				if s == D {
					emit(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
						OutPort: csr.PortTo(s, dst), NewTag: -1})
				} else {
					emit(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
						OutPort: csr.PortTo(s, D), NewTag: -1})
				}
				continue
			}
			gw, _, ok := df.gateway(gs, gd)
			if !ok {
				return fmt.Errorf("routing: no global link %d->%d", gs, gd)
			}
			if s == gw {
				// Cross the global link, switching to VC 1.
				peer := df.globalPeer(s, gd)
				emit(Rule{Switch: s, Dst: dst, Tag: 0,
					OutPort: csr.PortTo(s, peer), NewTag: 1})
			} else {
				emit(Rule{Switch: s, Dst: dst, Tag: 0,
					OutPort: csr.PortTo(s, gw), NewTag: -1})
			}
		}
		return nil
	}, nil
}

// dragonflyIndex caches group structure for dragonfly strategies.
type dragonflyIndex struct {
	g        *topology.Graph
	groups   [][]int        // group -> routers
	gateRtr  map[[2]int]int // (srcGroup, dstGroup) -> gateway router in srcGroup
	gatePeer map[[2]int]int // (router, dstGroup) -> peer router across the global link
}

func indexDragonfly(g *topology.Graph) (*dragonflyIndex, error) {
	df := &dragonflyIndex{g: g, gateRtr: map[[2]int]int{}, gatePeer: map[[2]int]int{}}
	maxGroup := -1
	for _, s := range g.Switches() {
		c := g.Vertices[s].Coord
		if len(c) != 2 {
			return nil, fmt.Errorf("routing: %s: switch %d lacks dragonfly coords", g.Name, s)
		}
		if c[0] > maxGroup {
			maxGroup = c[0]
		}
	}
	df.groups = make([][]int, maxGroup+1)
	for _, s := range g.Switches() {
		grp := g.Vertices[s].Coord[0]
		df.groups[grp] = append(df.groups[grp], s)
	}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		ga, gb := g.Vertices[e.A].Coord[0], g.Vertices[e.B].Coord[0]
		if ga == gb {
			continue
		}
		df.gateRtr[[2]int{ga, gb}] = e.A
		df.gateRtr[[2]int{gb, ga}] = e.B
		df.gatePeer[[2]int{e.A, gb}] = e.B
		df.gatePeer[[2]int{e.B, ga}] = e.A
	}
	return df, nil
}

// gateway returns the router in srcGroup owning the global link toward
// dstGroup.
func (df *dragonflyIndex) gateway(srcGroup, dstGroup int) (router, peer int, ok bool) {
	r, ok := df.gateRtr[[2]int{srcGroup, dstGroup}]
	if !ok {
		return 0, 0, false
	}
	return r, df.gatePeer[[2]int{r, dstGroup}], true
}

func (df *dragonflyIndex) globalPeer(router, dstGroup int) int {
	return df.gatePeer[[2]int{router, dstGroup}]
}

// MeshXY is Table III's 2D-Mesh strategy: dimension-order X-Y routing,
// deadlock-free by routing ("by routing" in the paper — XY forbids the
// deadlocking turns). Single VC.
type MeshXY struct{}

// Name implements Strategy.
func (MeshXY) Name() string { return "mesh-xy" }

// Compute implements Strategy.
func (MeshXY) Compute(g *topology.Graph) (*Routes, error) {
	return dimensionOrder(g, 2, false, "mesh-xy", nil)
}

// ComputeFor implements DstComputer.
func (MeshXY) ComputeFor(g *topology.Graph, dsts []int) (*Routes, error) {
	return dimensionOrder(g, 2, false, "mesh-xy", dsts)
}

// MeshXYZ is Table III's 3D-Mesh strategy: X-Y-Z dimension order.
type MeshXYZ struct{}

// Name implements Strategy.
func (MeshXYZ) Name() string { return "mesh-xyz" }

// Compute implements Strategy.
func (MeshXYZ) Compute(g *topology.Graph) (*Routes, error) {
	return dimensionOrder(g, 3, false, "mesh-xyz", nil)
}

// ComputeFor implements DstComputer.
func (MeshXYZ) ComputeFor(g *topology.Graph, dsts []int) (*Routes, error) {
	return dimensionOrder(g, 3, false, "mesh-xyz", dsts)
}

// TorusClue is Table III's 2D/3D-Torus strategy, after Clue (Xiang &
// Luo): dimension-order routing with shortest wrap-around direction and
// deadlock avoidance "by routing and changing VC" — a dateline VC per
// dimension: packets start each dimension on VC 0 and switch to VC 1
// after crossing the wrap link.
type TorusClue struct {
	Dims int // 2 or 3
}

// Name implements Strategy.
func (t TorusClue) Name() string { return fmt.Sprintf("torus-clue-%dd", t.dims()) }

func (t TorusClue) dims() int {
	if t.Dims == 3 {
		return 3
	}
	return 2
}

// Compute implements Strategy.
func (t TorusClue) Compute(g *topology.Graph) (*Routes, error) {
	return dimensionOrder(g, t.dims(), true, t.Name(), nil)
}

// ComputeFor implements DstComputer.
func (t TorusClue) ComputeFor(g *topology.Graph, dsts []int) (*Routes, error) {
	return dimensionOrder(g, t.dims(), true, t.Name(), dsts)
}

// dimensionOrder implements XY/XYZ (mesh) and dateline-VC dimension
// order (torus) over the given destinations (nil = every host). Switch
// coordinates must be dims-long grid positions.
func dimensionOrder(g *topology.Graph, dims int, torus bool, name string, dsts []int) (*Routes, error) {
	vcs := 1
	if torus {
		vcs = 2
	}
	return computeStrategy(g, name, vcs, dsts, func(g *topology.Graph) (func(dst int, emit func(Rule)) error, error) {
		return dimensionOrderBuilder(g, dims, torus)
	})
}

// dimensionOrderBuilder validates grid coordinates and precomputes the
// coordinate index and per-dimension port lists once, returning the
// per-destination rule build.
func dimensionOrderBuilder(g *topology.Graph, dims int, torus bool) (func(dst int, emit func(Rule)) error, error) {
	size := make([]int, dims)
	for _, s := range g.Switches() {
		c := g.Vertices[s].Coord
		if len(c) < dims {
			return nil, fmt.Errorf("routing: %s: switch %d lacks %dD coords", g.Name, s, dims)
		}
		for d := 0; d < dims; d++ {
			if c[d]+1 > size[d] {
				size[d] = c[d] + 1
			}
		}
	}
	// Dense integer coordinate index (replaces a per-lookup fmt.Sprint
	// string key): lin(c) = (c[0]*size[1] + c[1])*size[2] + c[2].
	lin := func(c []int) int {
		k := 0
		for d := 0; d < dims; d++ {
			k = k*size[d] + c[d]
		}
		return k
	}
	span := 1
	for d := 0; d < dims; d++ {
		span *= size[d]
	}
	byCoord := make([]int32, span)
	for i := range byCoord {
		byCoord[i] = -1
	}
	for _, s := range g.Switches() {
		byCoord[lin(g.Vertices[s].Coord)] = int32(s)
	}
	// Hoist the per-dimension port lists out of the destination loop:
	// they depend only on (switch, dimension), and recomputing them per
	// (destination, switch) was the torus strategies' dominant cost.
	var dimPorts [][][]int
	if torus {
		dimPorts = make([][][]int, len(g.Vertices))
		for _, s := range g.Switches() {
			dp := make([][]int, dims)
			for d := 0; d < dims; d++ {
				dp[d] = dimensionPorts(g, s, d, dims)
			}
			dimPorts[s] = dp
		}
	}
	csr := g.CSR()

	return func(dst int, emit func(Rule)) error {
		D := g.HostSwitch(dst)
		dc := g.Vertices[D].Coord
		for _, s := range g.Switches() {
			sc := g.Vertices[s].Coord
			if s == D {
				emit(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
					OutPort: csr.PortTo(s, dst), NewTag: -1})
				continue
			}
			// First differing dimension in X..Z order.
			dim := -1
			for d := 0; d < dims; d++ {
				if sc[d] != dc[d] {
					dim = d
					break
				}
			}
			// Step direction: mesh moves straight toward the target;
			// torus takes the shorter way around (ties positive).
			step := 1
			n := size[dim]
			if torus {
				if fwd := (dc[dim] - sc[dim] + n) % n; fwd > n-fwd {
					step = -1
				}
			} else if dc[dim] < sc[dim] {
				step = -1
			}
			var coordBuf [3]int
			nxtCoord := coordBuf[:dims]
			copy(nxtCoord, sc[:dims])
			nxtCoord[dim] = sc[dim] + step
			wrap := false
			if torus {
				if nxtCoord[dim] < 0 {
					nxtCoord[dim] = n - 1
					wrap = true
				} else if nxtCoord[dim] >= n {
					nxtCoord[dim] = 0
					wrap = true
				}
			}
			nxt := int32(-1)
			if nxtCoord[dim] >= 0 && nxtCoord[dim] < n {
				nxt = byCoord[lin(nxtCoord)]
			}
			if nxt < 0 {
				return fmt.Errorf("routing: %s: no switch at %v", g.Name, nxtCoord)
			}
			out := csr.PortTo(s, int(nxt))
			if out == 0 {
				return fmt.Errorf("routing: %s: missing link %v->%v", g.Name, sc, nxtCoord)
			}
			if !torus {
				emit(Rule{Switch: s, Dst: dst, Tag: openflow.Any, OutPort: out, NewTag: -1})
				continue
			}
			// Torus: the outgoing VC depends on whether the packet is
			// entering this dimension (reset to 0) or continuing
			// (keep), and whether this hop crosses the dateline (set
			// 1). Entry vs continuation is distinguished by ingress
			// port: arrivals from the same dimension are continuations.
			newTagEnter := 0
			if wrap {
				newTagEnter = 1
			}
			newTagCont := -1
			if wrap {
				newTagCont = 1
			}
			// Continuation rules (specific in-ports, keep/flip tag).
			for _, p := range dimPorts[s][dim] {
				emit(Rule{Switch: s, InPort: p, Dst: dst, Tag: openflow.Any,
					OutPort: out, NewTag: newTagCont})
			}
			// Entry rule (any other ingress: host injection or a
			// previous dimension): reset VC.
			emit(Rule{Switch: s, Dst: dst, Tag: openflow.Any,
				OutPort: out, NewTag: newTagEnter})
		}
		return nil
	}, nil
}

// dimensionPorts returns s's logical ports whose links travel along
// dimension dim (neighbour differs only in coordinate dim).
func dimensionPorts(g *topology.Graph, s, dim, dims int) []int {
	var ports []int
	sc := g.Vertices[s].Coord
	for _, eid := range g.IncidentEdges(s) {
		e := g.Edges[eid]
		o := e.Other(s)
		if g.Vertices[o].Kind != topology.Switch {
			continue
		}
		oc := g.Vertices[o].Coord
		diff := -1
		same := true
		for d := 0; d < dims; d++ {
			if oc[d] != sc[d] {
				if diff >= 0 {
					same = false
					break
				}
				diff = d
			}
		}
		if same && diff == dim {
			ports = append(ports, e.PortAt(s))
		}
	}
	sort.Ints(ports)
	return ports
}

// ForTopology returns the Table III strategy for a generated topology,
// recognised by its generator name prefix; anything unrecognised falls
// back to shortest-path.
func ForTopology(g *topology.Graph) Strategy {
	name := g.Name
	switch {
	case strings.HasPrefix(name, "fattree"):
		return FatTreeDFS{}
	case strings.HasPrefix(name, "dragonfly"):
		return DragonflyMinimal{}
	case strings.HasPrefix(name, "mesh2d"):
		return MeshXY{}
	case strings.HasPrefix(name, "mesh3d"):
		return MeshXYZ{}
	case strings.HasPrefix(name, "torus2d"):
		return TorusClue{Dims: 2}
	case strings.HasPrefix(name, "torus3d"):
		return TorusClue{Dims: 3}
	default:
		return ShortestPath{}
	}
}
