package routing

// Fault repair: recompute forwarding around dead links and switches.
//
// RepairAvoiding is the route-computation half of the reactive
// controller's failure handling (controller.Rerouter): given the
// original strategy's rule set and the currently-down elements, it
// returns a patched rule list in which only the *broken* destinations
// — those whose original tree traverses a dead element — are rerouted,
// via per-destination BFS on the surviving subgraph. Healthy
// destinations keep their strategy rules verbatim (including VC
// transitions), so repair churn stays proportional to the blast radius
// of the fault, and an element coming back up restores the original
// strategy rules for the destinations it had broken.
//
// Repaired destinations run on single-VC shortest paths: the original
// strategy's deadlock-avoidance tagging is not re-derived for the
// degraded fabric. A destination with no surviving path gets no rules
// (packets toward it table-miss and drop).
//
// The patch is deterministic: original rule order is preserved for
// healthy destinations, repaired destinations append in ascending
// destination order, and the BFS tie-breaks by vertex ID exactly like
// ShortestPath.

import (
	"sort"

	"repro/internal/openflow"
	"repro/internal/topology"
)

// Outage is the set of currently-failed elements.
type Outage struct {
	// Edge marks down logical edge IDs.
	Edge map[int]bool
	// Switch marks down switch vertex IDs.
	Switch map[int]bool
}

// Empty reports whether nothing is down.
func (o Outage) Empty() bool { return len(o.Edge) == 0 && len(o.Switch) == 0 }

// ruleBroken reports whether a rule forwards into a down element: its
// egress edge is cut, or the device at the far end of that edge is a
// dead switch. A rule merely *hosted* on a dead switch is not breakage
// by itself — every destination has rules at every switch, and the
// paths that actually reach the dead switch are caught by the
// incoming-edge rules of its live neighbours.
func ruleBroken(g *topology.Graph, csr *topology.CSR, r *Rule, down Outage) bool {
	if r.Switch < 0 || r.Switch >= len(g.Vertices) {
		return false // manual out-of-range rule; nothing to check
	}
	lo, hi := csr.Row(r.Switch)
	for e := lo; e < hi; e++ {
		if int(csr.Port[e]) != r.OutPort {
			continue
		}
		if down.Edge[int(csr.Edge[e])] {
			return true
		}
		far := int(csr.Nbr[e])
		if g.Vertices[far].Kind == topology.Switch && down.Switch[far] {
			return true
		}
		return false
	}
	return false
}

// RepairAvoiding returns the patched rule list for the original route
// set under the given outage, plus the destinations it rerouted (in
// ascending order). With an empty outage it returns the original rules
// unchanged (restoring the strategy exactly).
func RepairAvoiding(orig *Routes, down Outage) (rules []Rule, patched []int) {
	if down.Empty() {
		return orig.Rules, nil
	}
	g := orig.Topo
	csr := g.CSR()
	broken := map[int]bool{}
	for i := range orig.Rules {
		r := &orig.Rules[i]
		if !broken[r.Dst] && ruleBroken(g, csr, r, down) {
			broken[r.Dst] = true
		}
	}
	if len(broken) == 0 {
		return orig.Rules, nil
	}
	rules = make([]Rule, 0, len(orig.Rules))
	for _, r := range orig.Rules {
		if !broken[r.Dst] {
			rules = append(rules, r)
		}
	}
	for dst := range broken {
		patched = append(patched, dst)
	}
	sort.Ints(patched)
	for _, dst := range patched {
		rules = appendDegradedTree(rules, g, csr, dst, down)
	}
	return rules, patched
}

// appendDegradedTree emits single-VC shortest-path rules toward dst on
// the surviving subgraph (BFS rooted at dst's switch, skipping down
// elements; ties break by vertex ID as in ShortestPath). An
// unreachable destination — dead root switch or cut host link — emits
// nothing.
func appendDegradedTree(rules []Rule, g *topology.Graph, csr *topology.CSR, dst int, down Outage) []Rule {
	root := g.HostSwitch(dst)
	if root < 0 || down.Switch[root] {
		return rules
	}
	// The host needs a surviving attachment edge (a multi-homed host
	// may lose one of parallel attachments and keep another).
	hostPort, _ := alivePortTo(csr, root, dst, down)
	if hostPort == 0 {
		return rules
	}
	nv := len(g.Vertices)
	next := make([]int32, nv)
	for i := range next {
		next[i] = -1
	}
	queue := make([]int32, 1, nv)
	next[root] = int32(root)
	queue[0] = int32(root)
	for qi := 0; qi < len(queue); qi++ {
		v := int(queue[qi])
		lo, hi := csr.Row(v)
		for e := lo; e < hi; e++ {
			o := csr.Nbr[e]
			if g.Vertices[o].Kind != topology.Switch || next[o] >= 0 {
				continue
			}
			if down.Edge[int(csr.Edge[e])] || down.Switch[int(o)] {
				continue
			}
			next[o] = int32(v)
			queue = append(queue, o)
		}
	}
	for sw := 0; sw < nv; sw++ {
		if next[sw] < 0 {
			continue
		}
		var out int
		if sw == root {
			out = hostPort
		} else {
			// The port must ride an edge that is itself alive: with
			// parallel edges the BFS may have admitted the neighbour
			// via the healthy one while the lowest-ID edge is cut.
			out, _ = alivePortTo(csr, sw, int(next[sw]), down)
		}
		if out == 0 {
			continue
		}
		rules = append(rules, Rule{Switch: sw, Dst: dst, Tag: openflow.Any, OutPort: out, NewTag: -1})
	}
	return rules
}

// alivePortTo returns the port and edge ID of a half-edge from vertex
// `from` to neighbour `to` (0, -1 when not adjacent), considering only
// edges that survive the outage. With parallel healthy edges the
// lowest edge ID wins, matching CSR.PortTo.
func alivePortTo(csr *topology.CSR, from, to int, down Outage) (port, edge int) {
	lo, hi := csr.Row(from)
	best := int32(-1)
	for e := lo; e < hi; e++ {
		if int(csr.Nbr[e]) != to || down.Edge[int(csr.Edge[e])] {
			continue
		}
		if best < 0 || csr.Edge[e] < csr.Edge[best] {
			best = e
		}
	}
	if best < 0 {
		return 0, -1
	}
	return int(csr.Port[best]), int(csr.Edge[best])
}

// Churn counts the symmetric difference between two rule sets — the
// number of flow-mods (adds + removals) a controller would push to move
// the fabric from old to new. Both the reactive fault rerouter and the
// reconfiguration protocol report it as their rule-churn column.
func Churn(old, new []Rule) int {
	seen := make(map[Rule]int, len(old))
	for _, r := range old {
		seen[r]++
	}
	churn := 0
	for _, r := range new {
		if seen[r] > 0 {
			seen[r]--
		} else {
			churn++ // added
		}
	}
	for _, n := range seen {
		churn += n // removed
	}
	return churn
}

// Clone returns an independent copy of the route set sharing the
// topology but owning its rules and derived structures — the private
// working set a fault run mutates mid-simulation without touching the
// strategy's (possibly shared) original.
func (r *Routes) Clone() *Routes {
	c := &Routes{
		Topo:     r.Topo,
		Strategy: r.Strategy,
		NumVCs:   r.NumVCs,
		Rules:    append([]Rule(nil), r.Rules...),
	}
	return c
}

// ReplaceRules swaps the whole rule set and invalidates the derived
// lookup index and compiled FIB, which rebuild on next use — the
// mid-run repair path. Single-threaded with respect to forwarding: the
// engine's event loop both forwards packets and applies repairs.
func (r *Routes) ReplaceRules(rules []Rule) {
	r.Rules = rules
	r.invalidate()
}
