package routing

// FuzzFIBLookup: the compiled FIB must agree with the reference
// Routes.Lookup on EVERY (switch, inPort, dst, tag) tuple — including
// hostile ones (negative IDs, out-of-range vertices, absurd tags) —
// across every Table III strategy and a manual rule set exercising the
// spill and overflow paths. The differential tests in fib_test.go pin
// the reachable tuples; the fuzzer hunts the unreachable corners.
// CI runs this as a smoke (`go test -fuzz=FuzzFIBLookup -fuzztime=10s`).

import (
	"sync"
	"testing"

	"repro/internal/openflow"
	"repro/internal/topology"
)

// fuzzCtx is one (topology, routes) pair with its FIB pre-compiled.
type fuzzCtx struct {
	name   string
	routes *Routes
}

var (
	fuzzOnce sync.Once
	fuzzCtxs []fuzzCtx
)

func fuzzContexts(f *testing.F) []fuzzCtx {
	fuzzOnce.Do(func() {
		for _, g := range []*topology.Graph{
			topology.FatTree(4),
			topology.Dragonfly(4, 9, 2, 1),
			topology.Torus2D(4, 4, 1),
			topology.Mesh2D(3, 3, 1),
		} {
			r, err := ForTopology(g).Compute(g)
			if err != nil {
				f.Fatal(err)
			}
			r.Prime()
			fuzzCtxs = append(fuzzCtxs, fuzzCtx{name: g.Name, routes: r})
		}
		// A manual set with qualified rules (spill path) and rules whose
		// IDs fall outside the dense FIB array (overflow map).
		g := topology.Line(4, 1)
		m := NewManualRoutes(g, "fuzz-manual", 2)
		m.AddRule(Rule{Switch: 0, Dst: 4, Tag: openflow.Any, OutPort: 1, NewTag: -1})
		m.AddRule(Rule{Switch: 0, InPort: 2, Dst: 4, Tag: openflow.Any, OutPort: 3, NewTag: -1})
		m.AddRule(Rule{Switch: 1, Dst: 5, Tag: 1, OutPort: 2, NewTag: 0})
		m.AddRule(Rule{Switch: 1, Dst: 5, Tag: openflow.Any, OutPort: 4, NewTag: 1})
		m.AddRule(Rule{Switch: 99, Dst: 120, Tag: openflow.Any, OutPort: 7, NewTag: -1})
		m.AddRule(Rule{Switch: -3, Dst: 2, Tag: openflow.Any, OutPort: 9, NewTag: -1})
		m.Prime()
		fuzzCtxs = append(fuzzCtxs, fuzzCtx{name: "manual", routes: m})
	})
	return fuzzCtxs
}

func FuzzFIBLookup(f *testing.F) {
	ctxs := fuzzContexts(f)
	f.Add(uint8(0), 0, 0, 5, 0)
	f.Add(uint8(1), 3, 1, 40, 1)
	f.Add(uint8(2), 7, 2, 17, 2)
	f.Add(uint8(3), 4, 0, 9, 0)
	f.Add(uint8(4), 99, 0, 120, 5)
	f.Add(uint8(4), -3, -1, 2, -7)
	f.Fuzz(func(t *testing.T, sel uint8, sw, inPort, dst, tag int) {
		ctx := ctxs[int(sel)%len(ctxs)]
		r := ctx.routes
		rule := r.Lookup(sw, inPort, dst, tag)
		out, newTag, ok := r.FIB().Forward(sw, inPort, dst, tag)
		if rule == nil {
			if ok {
				t.Fatalf("%s: FIB forwards (%d,%d,%d,%d) -> (%d,%d) but Lookup misses",
					ctx.name, sw, inPort, dst, tag, out, newTag)
			}
			return
		}
		if !ok {
			t.Fatalf("%s: Lookup hits rule %+v for (%d,%d,%d,%d) but FIB misses",
				ctx.name, *rule, sw, inPort, dst, tag)
		}
		wantTag := tag
		if rule.NewTag >= 0 {
			wantTag = rule.NewTag
		}
		if out != rule.OutPort || newTag != wantTag {
			t.Fatalf("%s: (%d,%d,%d,%d): FIB (%d,%d) != Lookup (%d,%d)",
				ctx.name, sw, inPort, dst, tag, out, newTag, rule.OutPort, wantTag)
		}
		// FIB.Rule must return the very rule Lookup matched.
		if got := r.FIB().Rule(sw, inPort, dst, tag); got != rule {
			t.Fatalf("%s: FIB.Rule returned %+v, Lookup %+v", ctx.name, got, rule)
		}
	})
}
