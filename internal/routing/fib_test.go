package routing

import (
	"testing"

	"repro/internal/openflow"
	"repro/internal/topology"
)

// fibCases is the differential matrix of the compiled-FIB acceptance
// criterion: every built-in strategy on the paper's topology families
// (fat-tree, dragonfly, torus — plus the mesh and generic strategies
// that share code paths with them).
func fibCases(t testing.TB) []*Routes {
	t.Helper()
	type tc struct {
		strat Strategy
		g     *topology.Graph
	}
	cases := []tc{
		{FatTreeDFS{}, topology.FatTree(4)},
		{DragonflyMinimal{}, topology.Dragonfly(4, 9, 2, 1)},
		{DragonflyUGAL{Bias: 1}, topology.Dragonfly(4, 9, 2, 1)},
		{TorusClue{Dims: 2}, topology.Torus2D(5, 5, 1)},
		{TorusClue{Dims: 3}, topology.Torus3D(3, 3, 3, 1)},
		{MeshXY{}, topology.Mesh2D(4, 4, 1)},
		{MeshXYZ{}, topology.Mesh3D(3, 3, 3, 1)},
		{ShortestPath{}, topology.FatTree(4)},
		{ShortestPath{}, topology.Torus2D(4, 4, 1)},
	}
	var out []*Routes
	for _, c := range cases {
		r, err := c.strat.Compute(c.g)
		if err != nil {
			t.Fatalf("%s on %s: %v", c.strat.Name(), c.g.Name, err)
		}
		out = append(out, r)
	}
	return out
}

// TestFIBMatchesLookupExhaustive checks FIB.Forward and FIB.Rule
// against the Routes.Lookup reference on EVERY (switch, inPort, dst,
// tag) tuple: all switches, all logical ports (0 = injection, plus one
// past the radix), all host destinations plus an unknown one, and all
// tags 0..NumVCs (one past the used range included).
func TestFIBMatchesLookupExhaustive(t *testing.T) {
	for _, r := range fibCases(t) {
		g := r.Topo
		fib := r.Compile()
		maxPort := g.Radix() + 1
		dsts := append(append([]int(nil), g.Hosts()...), len(g.Vertices)) // unknown dst probes the miss path
		tuples := 0
		for _, sw := range g.Switches() {
			for _, dst := range dsts {
				for inPort := 0; inPort <= maxPort; inPort++ {
					for tag := 0; tag <= r.NumVCs; tag++ {
						tuples++
						want := r.Lookup(sw, inPort, dst, tag)
						gotRule := fib.Rule(sw, inPort, dst, tag)
						if want != gotRule {
							t.Fatalf("%s on %s: Rule(%d,%d,%d,%d) = %+v, Lookup = %+v",
								r.Strategy, g.Name, sw, inPort, dst, tag, gotRule, want)
						}
						out, newTag, ok := fib.Forward(sw, inPort, dst, tag)
						if want == nil {
							if ok {
								t.Fatalf("%s on %s: Forward(%d,%d,%d,%d) hit (out=%d), Lookup missed",
									r.Strategy, g.Name, sw, inPort, dst, tag, out)
							}
							continue
						}
						wantTag := tag
						if want.NewTag >= 0 {
							wantTag = want.NewTag
						}
						if !ok || out != want.OutPort || newTag != wantTag {
							t.Fatalf("%s on %s: Forward(%d,%d,%d,%d) = (%d,%d,%v), want (%d,%d,true)",
								r.Strategy, g.Name, sw, inPort, dst, tag, out, newTag, ok, want.OutPort, wantTag)
						}
					}
				}
			}
		}
		if tuples == 0 {
			t.Fatalf("%s on %s: empty differential", r.Strategy, g.Name)
		}
	}
}

// TestFIBManualRoutesSpecificity exercises the spill path directly:
// overlapping wildcard shapes on one (switch, dst) slot must resolve in
// Lookup's most-specific-first order, and out-of-encoding-range fields
// must round-trip through the unpacked spill entries.
func TestFIBManualRoutesSpecificity(t *testing.T) {
	g := topology.Line(2, 1)
	r := NewManualRoutes(g, "manual", 2)
	sw := g.Switches()[0]
	r.AddRule(Rule{Switch: sw, Dst: 99, Tag: openflow.Any, OutPort: 1, NewTag: -1})
	r.AddRule(Rule{Switch: sw, Dst: 99, Tag: 1, OutPort: 2, NewTag: 0})
	r.AddRule(Rule{Switch: sw, InPort: 3, Dst: 99, Tag: openflow.Any, OutPort: 3, NewTag: -1})
	r.AddRule(Rule{Switch: sw, InPort: 3, Dst: 99, Tag: 1, OutPort: 4, NewTag: -1})
	// A fully wildcarded rule whose port overflows the packed encoding
	// (its own slot must spill rather than truncate).
	r.AddRule(Rule{Switch: sw, Dst: 98, Tag: openflow.Any, OutPort: 1 << 20, NewTag: -1})
	fib := r.Compile()
	for _, probe := range [][2]int{{1, 0}, {1, 1}, {3, 0}, {3, 1}, {2, 0}} {
		inPort, tag := probe[0], probe[1]
		for _, dst := range []int{98, 99, 97} {
			want := r.Lookup(sw, inPort, dst, tag)
			if got := fib.Rule(sw, inPort, dst, tag); got != want {
				t.Errorf("Rule(%d,%d,%d,%d) = %+v, want %+v", sw, inPort, dst, tag, got, want)
			}
			out, _, ok := fib.Forward(sw, inPort, dst, tag)
			if (want != nil) != ok || (want != nil && out != want.OutPort) {
				t.Errorf("Forward(%d,%d,%d,%d) = (%d,%v) disagrees with Lookup %+v",
					sw, inPort, dst, tag, out, ok, want)
			}
		}
	}
	// Mutating the rule set must invalidate the memoized FIB.
	old := r.FIB()
	r.AddRule(Rule{Switch: sw, Dst: 97, Tag: openflow.Any, OutPort: 5, NewTag: -1})
	if r.FIB() == old {
		t.Fatal("FIB not invalidated by AddRule")
	}
	if out, _, ok := r.FIB().Forward(sw, 1, 97, 0); !ok || out != 5 {
		t.Fatalf("recompiled FIB missed new rule: out=%d ok=%v", out, ok)
	}
}

// TestFIBStats sanity-checks the layout accounting: single-VC
// strategies must compile entirely into fast slots, VC-transition
// strategies must have spill slots exactly where qualified rules live.
func TestFIBStats(t *testing.T) {
	sp, err := ShortestPath{}.Compute(topology.FatTree(4))
	if err != nil {
		t.Fatal(err)
	}
	fast, spilled, _ := sp.Compile().Stats()
	if spilled != 0 || fast == 0 {
		t.Errorf("shortest-path on fat-tree: fast=%d spilled=%d, want all fast", fast, spilled)
	}
	tor, err := TorusClue{Dims: 2}.Compute(topology.Torus2D(5, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	fast, spilled, _ = tor.Compile().Stats()
	if spilled == 0 {
		t.Error("torus dateline routing compiled with no spill slots; in-port rules lost?")
	}
	if fast == 0 {
		t.Error("torus routing has fast-path slots (delivery rules); none compiled")
	}
}

// TestComputeParallelDeterminism recomputes every differential case
// serially and with a forced 4-worker fan-out: the rule slices must be
// deeply identical (the per-destination buckets merge in destination
// order, so scheduling must not leak into the output). Run under -race
// this also proves the builds only read shared graph state.
func TestComputeParallelDeterminism(t *testing.T) {
	defer func() { computeWorkers = 0 }()
	computeWorkers = 1
	serial := fibCases(t)
	computeWorkers = 4
	parallel := fibCases(t)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if len(s.Rules) != len(p.Rules) {
			t.Fatalf("%s on %s: %d rules serial, %d parallel", s.Strategy, s.Topo.Name, len(s.Rules), len(p.Rules))
		}
		for j := range s.Rules {
			if s.Rules[j] != p.Rules[j] {
				t.Fatalf("%s on %s: rule %d differs: serial %+v parallel %+v",
					s.Strategy, s.Topo.Name, j, s.Rules[j], p.Rules[j])
			}
		}
	}
}

// BenchmarkForward measures the per-hop forwarding decision on the
// compiled FIB — the per-packet hot path — mixing fast-slot (fat-tree)
// and spill-slot (torus VC transition) lookups. Must report 0
// allocs/op: this is the acceptance criterion the CI bench smoke
// enforces.
func BenchmarkForward(b *testing.B) {
	type probe struct{ sw, inPort, dst, tag int }
	mk := func(strat Strategy, g *topology.Graph) (*FIB, []probe) {
		r, err := strat.Compute(g)
		if err != nil {
			b.Fatal(err)
		}
		fib := r.Compile()
		var ps []probe
		hosts := g.Hosts()
		for i, sw := range g.Switches() {
			dst := hosts[i%len(hosts)]
			ps = append(ps, probe{sw, 1 + i%g.Radix(), dst, i % r.NumVCs})
		}
		return fib, ps
	}
	ftFib, ftProbes := mk(FatTreeDFS{}, topology.FatTree(8))
	toFib, toProbes := mk(TorusClue{Dims: 3}, topology.Torus3D(4, 4, 4, 1))
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		p := ftProbes[i%len(ftProbes)]
		out, _, _ := ftFib.Forward(p.sw, p.inPort, p.dst, p.tag)
		q := toProbes[i%len(toProbes)]
		out2, _, _ := toFib.Forward(q.sw, q.inPort, q.dst, q.tag)
		sink += out + out2
	}
	if sink < 0 {
		b.Fatal("unreachable")
	}
}

// BenchmarkLookupReference is the same probe mix through the
// Routes.Lookup reference path, for the DESIGN.md fast-path comparison.
func BenchmarkLookupReference(b *testing.B) {
	r, err := FatTreeDFS{}.Compute(topology.FatTree(8))
	if err != nil {
		b.Fatal(err)
	}
	r.Prime()
	g := r.Topo
	hosts := g.Hosts()
	sws := g.Switches()
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sw := sws[i%len(sws)]
		if rule := r.Lookup(sw, 1, hosts[i%len(hosts)], 0); rule != nil {
			sink += rule.OutPort
		}
	}
	if sink < 0 {
		b.Fatal("unreachable")
	}
}

// BenchmarkRouteCompute measures a full strategy build at Fig. 13
// scale (Dragonfly a=4 g=9 h=2 — the evaluation's largest routed
// fabric), allocation-reported for the BENCH_*.json perf trajectory.
func BenchmarkRouteCompute(b *testing.B) {
	g := topology.Dragonfly(4, 9, 2, 1)
	g.CSR()
	g.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (DragonflyMinimal{}).Compute(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteComputeTorus tracks the dimension-order builder (the
// strategy that lost the per-(dst, switch) port-list recomputation).
func BenchmarkRouteComputeTorus(b *testing.B) {
	g := topology.Torus3D(4, 4, 4, 1)
	g.CSR()
	g.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (TorusClue{Dims: 3}).Compute(g); err != nil {
			b.Fatal(err)
		}
	}
}
