package routing

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Channel is one unidirectional virtual channel of a logical link:
// edge Edge traversed from From, on virtual channel VC.
type Channel struct {
	Edge int
	From int
	VC   int
}

// String renders the channel for cycle reports.
func (c Channel) String() string {
	return fmt.Sprintf("e%d@%d/vc%d", c.Edge, c.From, c.VC)
}

// DependencyGraph is the channel dependency graph (CDG) induced by a
// route set: an edge ch1 -> ch2 whenever some packet may hold ch1 while
// requesting ch2 (Dally & Seitz). In a lossless (PFC) network, a cycle
// in this graph is a potential deadlock.
type DependencyGraph struct {
	Channels []Channel
	index    map[Channel]int
	adj      [][]int
}

func newDependencyGraph() *DependencyGraph {
	return &DependencyGraph{index: map[Channel]int{}}
}

func (d *DependencyGraph) id(c Channel) int {
	if i, ok := d.index[c]; ok {
		return i
	}
	i := len(d.Channels)
	d.Channels = append(d.Channels, c)
	d.index[c] = i
	d.adj = append(d.adj, nil)
	return i
}

func (d *DependencyGraph) addDep(a, b Channel) {
	ia, ib := d.id(a), d.id(b)
	for _, x := range d.adj[ia] {
		if x == ib {
			return
		}
	}
	d.adj[ia] = append(d.adj[ia], ib)
}

// FindCycle returns a channel cycle if one exists, else nil.
func (d *DependencyGraph) FindCycle() []Channel {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(d.Channels))
	parent := make([]int, len(d.Channels))
	for i := range parent {
		parent[i] = -1
	}
	// Sorted neighbour order keeps cycle reports deterministic. Rows
	// are sorted once in place up front — addDep order carries no
	// meaning — instead of cloning and re-sorting on every DFS visit.
	for i := range d.adj {
		sort.Ints(d.adj[i])
	}
	var cycleAt, cycleTo int = -1, -1
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = grey
		for _, w := range d.adj[v] {
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case grey:
				cycleAt, cycleTo = v, w
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := range d.Channels {
		if color[v] == white && dfs(v) {
			var cyc []Channel
			for x := cycleAt; x != cycleTo; x = parent[x] {
				cyc = append(cyc, d.Channels[x])
			}
			cyc = append(cyc, d.Channels[cycleTo])
			// Reverse into traversal order.
			for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
				cyc[i], cyc[j] = cyc[j], cyc[i]
			}
			return cyc
		}
	}
	return nil
}

// BuildCDG traces every host pair's path under r and accumulates the
// channel dependency graph. It fails if any pair has no complete,
// loop-free route (which is itself a routing bug worth surfacing here).
func BuildCDG(r *Routes) (*DependencyGraph, error) {
	g := r.Topo
	d := newDependencyGraph()
	hosts := g.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			chans, err := traceChannels(r, src, dst)
			if err != nil {
				return nil, err
			}
			for i := 0; i+1 < len(chans); i++ {
				d.addDep(chans[i], chans[i+1])
			}
		}
	}
	return d, nil
}

// traceChannels walks the path src->dst, returning the switch-switch
// channels traversed (injection and ejection links are excluded, as
// they cannot participate in routing deadlocks).
func traceChannels(r *Routes, src, dst int) ([]Channel, error) {
	g := r.Topo
	cur := g.HostSwitch(src)
	if cur < 0 {
		return nil, fmt.Errorf("routing: host %d unattached", src)
	}
	tag := 0
	inPort := portTo(g, cur, src)
	var chans []Channel
	limit := len(g.Vertices)*maxInt(r.NumVCs, 1) + 2
	for steps := 0; ; steps++ {
		if steps > limit {
			return nil, fmt.Errorf("routing: %s: loop tracing %d->%d", r.Strategy, src, dst)
		}
		rule := r.Lookup(cur, inPort, dst, tag)
		if rule == nil {
			return nil, fmt.Errorf("routing: %s: no rule at switch %d for dst %d tag %d", r.Strategy, cur, dst, tag)
		}
		if rule.NewTag >= 0 {
			tag = rule.NewTag
		}
		var edge topology.Edge
		found := false
		for _, eid := range g.IncidentEdges(cur) {
			if g.Edges[eid].PortAt(cur) == rule.OutPort {
				edge = g.Edges[eid]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("routing: %s: dangling out port %d on switch %d", r.Strategy, rule.OutPort, cur)
		}
		nxt := edge.Other(cur)
		if nxt == dst {
			return chans, nil
		}
		if g.Vertices[nxt].Kind != topology.Switch {
			return nil, fmt.Errorf("routing: %s: misdelivery of %d->%d at host %d", r.Strategy, src, dst, nxt)
		}
		chans = append(chans, Channel{Edge: edge.ID, From: cur, VC: tag})
		inPort = edge.PortAt(nxt)
		cur = nxt
	}
}

// VerifyDeadlockFree builds the CDG for r and returns an error naming a
// channel cycle if the route set can deadlock under lossless operation.
func VerifyDeadlockFree(r *Routes) error {
	d, err := BuildCDG(r)
	if err != nil {
		return err
	}
	if cyc := d.FindCycle(); cyc != nil {
		return fmt.Errorf("routing: %s: channel dependency cycle: %v", r.Strategy, cyc)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
