// Package routing implements the SDT controller's Routing Strategy
// module (§V-2) and the deadlock-avoidance schemes of Table III.
//
// A Strategy computes, for a logical topology, a set of forwarding
// Rules: per logical switch, destination host (and optionally ingress
// port and virtual-channel tag) → output port and next tag. Rules are
// substrate-independent; they compile either onto the logical topology
// (full-testbed simulation) or through a projection Plan onto physical
// OpenFlow switches (SDT).
//
// Deadlock freedom for lossless (PFC) operation is verified by building
// the channel dependency graph over (link, direction, VC) channels and
// checking it is acyclic (Dally & Seitz). Strategies that need VC
// transitions (Dragonfly, Torus) express them through the Tag field.
package routing

import (
	"fmt"
	"sort"

	"repro/internal/openflow"
	"repro/internal/par"
	"repro/internal/topology"
)

// Rule is one forwarding decision on a logical switch.
type Rule struct {
	Switch  int // logical switch vertex ID
	InPort  int // logical ingress port; 0 = any
	Dst     int // destination host vertex ID
	Tag     int // required VC tag; openflow.Any = any
	OutPort int // logical egress port
	NewTag  int // -1 = keep tag, else rewrite
}

// Routes is the output of a Strategy.
type Routes struct {
	Topo     *topology.Graph
	Strategy string
	NumVCs   int // number of distinct VC tags used (>=1)
	Rules    []Rule

	index map[[2]int][]int // (switch, dst) -> rule indices, most specific first
	fib   *FIB             // compiled fast path, memoized by FIB()
}

// Strategy computes routes for a topology.
type Strategy interface {
	Name() string
	Compute(g *topology.Graph) (*Routes, error)
}

// Fixed adapts an already-computed route set into a Strategy — the
// bridge that lets a run Scenario carry routes produced outside a
// strategy, such as the Network Monitor's UGAL active routes.
type Fixed struct{ Routes *Routes }

// Name reports the wrapped route set's strategy name.
func (f Fixed) Name() string {
	if f.Routes == nil {
		return "fixed"
	}
	return f.Routes.Strategy
}

// Compute returns the wrapped routes, rejecting a topology mismatch
// (rules reference vertex IDs of the topology they were computed for).
func (f Fixed) Compute(g *topology.Graph) (*Routes, error) {
	if f.Routes == nil {
		return nil, fmt.Errorf("routing: Fixed with nil Routes")
	}
	if f.Routes.Topo != g {
		return nil, fmt.Errorf("routing: fixed routes were computed for topology %q, not %q",
			f.Routes.Topo.Name, g.Name)
	}
	return f.Routes, nil
}

func newRoutes(g *topology.Graph, name string, vcs int) *Routes {
	return &Routes{Topo: g, Strategy: name, NumVCs: vcs}
}

// NewManualRoutes starts an empty route set for a user-defined routing
// strategy ("users can develop their routing strategy ... with the SDT
// controller", §I). Add rules with AddRule; verify with
// VerifyDeadlockFree before deploying on a lossless fabric.
func NewManualRoutes(g *topology.Graph, name string, numVCs int) *Routes {
	return newRoutes(g, name, numVCs)
}

// AddRule appends a forwarding rule to a manual route set.
func (r *Routes) AddRule(rule Rule) { r.add(rule) }

func (r *Routes) add(rule Rule) {
	r.Rules = append(r.Rules, rule)
	r.invalidate()
}

// invalidate drops the derived lookup structures after a rule mutation.
func (r *Routes) invalidate() {
	r.index = nil
	r.fib = nil
}

func (r *Routes) buildIndex() {
	if r.index != nil {
		return
	}
	r.index = make(map[[2]int][]int)
	for i := range r.Rules {
		key := [2]int{r.Rules[i].Switch, r.Rules[i].Dst}
		r.index[key] = append(r.index[key], i)
	}
	spec := func(i int) int {
		s := 0
		if r.Rules[i].InPort != 0 {
			s += 2
		}
		if r.Rules[i].Tag != openflow.Any {
			s++
		}
		return s
	}
	for key := range r.index {
		idx := r.index[key]
		sort.SliceStable(idx, func(a, b int) bool { return spec(idx[a]) > spec(idx[b]) })
	}
}

// Prime eagerly builds the lookup index and the compiled FIB so the
// route set can be shared read-only across concurrent simulations.
// Lookup and FIB otherwise build their structures lazily on first use,
// and two goroutines racing on that first build is a data race: a
// Routes shared across goroutines MUST be Primed (or have FIB/Lookup
// called once) before the fan-out. The parallel experiment sweeps do
// this serially up front and the race-tested suite
// (go test -race ./internal/core ./internal/experiments) runs every
// sweep at multiple worker counts to keep that contract honest.
func (r *Routes) Prime() {
	r.buildIndex()
	r.FIB()
}

// FIB returns the compiled forwarding table for this rule set, building
// it on first use. The result is invalidated (and recompiled on next
// call) whenever rules are added. See Prime for the concurrency
// contract around the lazy build.
func (r *Routes) FIB() *FIB {
	if r.fib == nil {
		r.fib = r.Compile()
	}
	return r.fib
}

// Lookup finds the most specific rule on switch sw for a packet
// arriving on logical port inPort with the given destination and tag.
// It returns nil when no rule applies.
//
// This is the reference implementation the compiled FIB is
// differential-tested against; the forwarding hot paths use
// FIB.Forward. The index nil-check is inlined here (rather than calling
// buildIndex) so the already-built case — every call after the first on
// a Primed route set — pays no function-call overhead in the fallback
// paths that still probe rule granularity.
func (r *Routes) Lookup(sw, inPort, dst, tag int) *Rule {
	idx := r.index
	if idx == nil {
		r.buildIndex()
		idx = r.index
	}
	for _, i := range idx[[2]int{sw, dst}] {
		rule := &r.Rules[i]
		if rule.InPort != 0 && rule.InPort != inPort {
			continue
		}
		if rule.Tag != openflow.Any && rule.Tag != tag {
			continue
		}
		return rule
	}
	return nil
}

// portTo returns the logical port on switch `from` that leads to
// neighbour vertex `to`, or 0 if they are not adjacent.
func portTo(g *topology.Graph, from, to int) int {
	eid := g.EdgeBetween(from, to)
	if eid < 0 {
		return 0
	}
	return g.Edges[eid].PortAt(from)
}

// addPathRules installs dst-directed rules along a switch path
// path[0..n-1] terminating at host dst attached to path[n-1]. vcAt
// returns the VC tag a packet must carry when *leaving* hop i; pass nil
// for single-VC routing. Rules are tag-matched so multi-VC strategies
// stay consistent.
func addPathRules(r *Routes, g *topology.Graph, path []int, dst int, vcAt func(i int) int) {
	vc := func(i int) int {
		if vcAt == nil {
			return 0
		}
		return vcAt(i)
	}
	for i := 0; i < len(path); i++ {
		var out int
		if i == len(path)-1 {
			out = portTo(g, path[i], dst) // deliver to host
		} else {
			out = portTo(g, path[i], path[i+1])
		}
		inTag := 0
		if i > 0 {
			inTag = vc(i - 1)
		}
		outTag := inTag
		if i < len(path)-1 {
			outTag = vc(i)
		}
		newTag := -1
		if outTag != inTag {
			newTag = outTag
		}
		rule := Rule{Switch: path[i], InPort: 0, Dst: dst, Tag: inTag, OutPort: out, NewTag: newTag}
		// Avoid exact duplicates from overlapping dst trees.
		dup := false
		for _, ex := range r.Rules {
			if ex == rule {
				dup = true
				break
			}
		}
		if !dup {
			r.add(rule)
		}
	}
}

// computeWorkers is the worker count for per-destination route builds
// (0 = GOMAXPROCS, 1 = serial). The determinism test forces it above 1
// so the fan-out is exercised under -race even on single-CPU machines.
var computeWorkers = 0

// computeForDsts fans a strategy's rule builds over an explicit
// destination set: the per-destination builds run on the worker pool
// and merge deterministically —
// each destination gets its own rule bucket (built by `build` calling
// emit), and the buckets are concatenated in dsts order, so the merged
// rule list is independent of scheduling. Callers follow with
// sortRules, which is stable, keeping the final route set byte-
// identical to a serial build.
//
// build runs concurrently and must only read shared state; the graph's
// lazy caches (adjacency, CSR, host/switch lists) are primed here
// before the fan-out.
func computeForDsts(r *Routes, g *topology.Graph, dsts []int, build func(dst int, emit func(Rule)) error) error {
	g.CSR()
	g.Hosts()
	perDst := make([][]Rule, len(dsts))
	err := par.For(computeWorkers, len(dsts), func(hi int) error {
		// Each job owns exactly its destination's bucket element.
		return build(dsts[hi], func(rule Rule) { perDst[hi] = append(perDst[hi], rule) })
	})
	if err != nil {
		return err
	}
	n := 0
	for _, rs := range perDst {
		n += len(rs)
	}
	r.Rules = make([]Rule, 0, n)
	for _, rs := range perDst {
		r.Rules = append(r.Rules, rs...)
	}
	r.invalidate()
	return nil
}

// DstComputer is a Strategy whose route build is an independent pure
// function per destination host — true of every Table III strategy —
// letting callers compute rules for a *subset* of destinations.
// ComputeFor(g, subset) returns exactly the full route set restricted
// to those destinations (pinned by TestComputeForMatchesSubset); on
// fabrics too large to route in full — route sets grow as
// switches × hosts, ~GBs on a 10k-host fat-tree — a flow-level run
// needs rules only for the hosts that actually receive traffic, which
// is what keeps internal/flowsim's path resolution affordable there.
type DstComputer interface {
	Strategy
	// ComputeFor computes routes toward the given destination hosts
	// only. Destinations are deduplicated and sorted, so equal sets
	// produce byte-identical rule lists regardless of input order.
	ComputeFor(g *topology.Graph, dsts []int) (*Routes, error)
}

// dstBuilder is the per-strategy factory behind the shared compute
// driver: it validates the topology once and returns the
// per-destination rule build.
type dstBuilder func(g *topology.Graph) (build func(dst int, emit func(Rule)) error, err error)

// computeStrategy runs one strategy's per-destination builder over the
// given destinations (nil = every host) and finalises the route set.
func computeStrategy(g *topology.Graph, name string, vcs int, dsts []int, mk dstBuilder) (*Routes, error) {
	if dsts == nil {
		dsts = g.Hosts()
	} else {
		var err error
		if dsts, err = canonicalDsts(g, dsts); err != nil {
			return nil, fmt.Errorf("routing: %s: %w", name, err)
		}
	}
	build, err := mk(g)
	if err != nil {
		return nil, err
	}
	r := newRoutes(g, name, vcs)
	if err := computeForDsts(r, g, dsts, build); err != nil {
		return nil, err
	}
	sortRules(r)
	return r, nil
}

// canonicalDsts validates a destination subset (host vertices of g) and
// returns it sorted and deduplicated.
func canonicalDsts(g *topology.Graph, dsts []int) ([]int, error) {
	out := make([]int, 0, len(dsts))
	for _, d := range dsts {
		if d < 0 || d >= len(g.Vertices) || g.Vertices[d].Kind != topology.Host {
			return nil, fmt.Errorf("destination %d is not a host of %s", d, g.Name)
		}
		out = append(out, d)
	}
	sort.Ints(out)
	n := 0
	for i, d := range out {
		if i == 0 || d != out[i-1] {
			out[n] = d
			n++
		}
	}
	return out[:n], nil
}

// ShortestPath is the generic strategy: BFS trees rooted at every
// destination host's switch, deterministic tie-breaking by vertex ID.
// Single VC; deadlock-free only on acyclic-channel topologies (trees,
// fat-trees via up/down shape) — use VerifyDeadlockFree to check.
type ShortestPath struct{}

// Name implements Strategy.
func (ShortestPath) Name() string { return "shortest-path" }

// Compute implements Strategy.
func (ShortestPath) Compute(g *topology.Graph) (*Routes, error) {
	return computeStrategy(g, "shortest-path", 1, nil, shortestPathBuilder)
}

// ComputeFor implements DstComputer.
func (ShortestPath) ComputeFor(g *topology.Graph, dsts []int) (*Routes, error) {
	return computeStrategy(g, "shortest-path", 1, dsts, shortestPathBuilder)
}

// shortestPathBuilder returns the per-destination BFS-tree rule build.
func shortestPathBuilder(g *topology.Graph) (func(dst int, emit func(Rule)) error, error) {
	csr := g.CSR()
	nv := len(g.Vertices)
	return func(dst int, emit func(Rule)) error {
		root := g.HostSwitch(dst)
		if root < 0 {
			return fmt.Errorf("routing: host %d has no switch", dst)
		}
		// BFS from root over switches on the CSR view; next[v] = the
		// neighbour of v one hop closer to root. CSR rows are pre-
		// sorted by vertex ID, preserving the deterministic tie-break
		// without the per-dequeue clone+sort of the neighbour slice.
		next := make([]int32, nv)
		for i := range next {
			next[i] = -1
		}
		queue := make([]int32, 1, nv)
		next[root] = int32(root)
		queue[0] = int32(root)
		for qi := 0; qi < len(queue); qi++ {
			v := int(queue[qi])
			lo, hi := csr.Row(v)
			for e := lo; e < hi; e++ {
				o := csr.Nbr[e]
				if g.Vertices[o].Kind != topology.Switch || next[o] >= 0 {
					continue
				}
				next[o] = int32(v)
				queue = append(queue, o)
			}
		}
		for sw := 0; sw < nv; sw++ {
			if next[sw] < 0 {
				continue
			}
			var out int
			if sw == root {
				out = csr.PortTo(sw, dst)
			} else {
				out = csr.PortTo(sw, int(next[sw]))
			}
			if out == 0 {
				return fmt.Errorf("routing: no port from %d toward %d", sw, dst)
			}
			emit(Rule{Switch: sw, Dst: dst, Tag: openflow.Any, OutPort: out, NewTag: -1})
		}
		return nil
	}, nil
}

func sortRules(r *Routes) {
	sort.SliceStable(r.Rules, func(i, j int) bool {
		a, b := r.Rules[i], r.Rules[j]
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		return a.InPort < b.InPort
	})
	r.invalidate()
}

// CompileLogicalTables instantiates one OpenFlow switch per logical
// switch and installs the routes as flow entries — the configuration of
// a "full testbed" where every logical switch is a real switch. Port
// numbering follows the logical topology's ports. tableCap of 0 means
// unlimited.
func CompileLogicalTables(r *Routes, tableCap int) (map[int]*openflow.Switch, error) {
	g := r.Topo
	out := make(map[int]*openflow.Switch, g.NumSwitches())
	for _, s := range g.Switches() {
		maxPort := 0
		for _, eid := range g.IncidentEdges(s) {
			if p := g.Edges[eid].PortAt(s); p > maxPort {
				maxPort = p
			}
		}
		out[s] = openflow.NewSwitch(g.Vertices[s].Label, maxPort, tableCap)
	}
	for _, rule := range r.Rules {
		sw := out[rule.Switch]
		if sw == nil {
			return nil, fmt.Errorf("routing: rule references non-switch vertex %d", rule.Switch)
		}
		var actions []openflow.Action
		if rule.NewTag >= 0 {
			actions = append(actions, openflow.Action{Type: openflow.SetTag, Tag: rule.NewTag})
		}
		actions = append(actions, openflow.Action{Type: openflow.Output, Port: rule.OutPort})
		prio := 10
		if rule.InPort != 0 {
			prio += 4
		}
		if rule.Tag != openflow.Any {
			prio += 2
		}
		err := sw.Table.Add(openflow.FlowEntry{
			Priority: prio,
			Match: openflow.Match{
				InPort:  rule.InPort,
				SrcHost: openflow.Any,
				DstHost: rule.Dst,
				Tag:     rule.Tag,
			},
			Actions: actions,
		})
		if err != nil {
			return nil, err
		}
	}
	// Prime the lookup indices so the compiled tables can be probed
	// concurrently (the lazy first build is a write).
	for _, sw := range out {
		sw.Table.Prime()
	}
	return out, nil
}

// TracePath walks the rules from src host to dst host and returns the
// sequence of (switch, vc) hops, verifying termination. It is the
// loop/completeness checker used by tests and the deadlock verifier.
func (r *Routes) TracePath(src, dst int) ([]int, error) {
	g := r.Topo
	if src == dst {
		return nil, nil
	}
	cur := g.HostSwitch(src)
	if cur < 0 {
		return nil, fmt.Errorf("routing: source host %d unattached", src)
	}
	tag := 0
	inPort := portTo(g, cur, src)
	var path []int
	limit := len(g.Vertices)*r.NumVCs + 2
	for steps := 0; ; steps++ {
		if steps > limit {
			return nil, fmt.Errorf("routing: path %d->%d exceeds %d hops (loop?)", src, dst, limit)
		}
		path = append(path, cur)
		rule := r.Lookup(cur, inPort, dst, tag)
		if rule == nil {
			return nil, fmt.Errorf("routing: no rule on switch %d for dst %d tag %d", cur, dst, tag)
		}
		if rule.NewTag >= 0 {
			tag = rule.NewTag
		}
		// Find what the out port leads to.
		nxt := -1
		nxtPort := 0
		for _, eid := range g.IncidentEdges(cur) {
			e := g.Edges[eid]
			if e.PortAt(cur) == rule.OutPort {
				nxt = e.Other(cur)
				nxtPort = e.PortAt(nxt)
				break
			}
		}
		if nxt < 0 {
			return nil, fmt.Errorf("routing: switch %d out port %d dangling", cur, rule.OutPort)
		}
		if nxt == dst {
			return path, nil
		}
		if g.Vertices[nxt].Kind != topology.Switch {
			return nil, fmt.Errorf("routing: path %d->%d delivered to wrong host %d", src, dst, nxt)
		}
		cur = nxt
		inPort = nxtPort
	}
}
