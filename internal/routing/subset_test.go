package routing

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// subsetCases pairs every DstComputer strategy with a topology it
// routes, for the subset-vs-full equivalence sweep.
func subsetCases() []struct {
	name     string
	strategy DstComputer
	graph    *topology.Graph
} {
	return []struct {
		name     string
		strategy DstComputer
		graph    *topology.Graph
	}{
		{"fattree", FatTreeDFS{}, topology.FatTree(4)},
		{"dragonfly", DragonflyMinimal{}, topology.Dragonfly(4, 9, 2, 1)},
		{"mesh2d", MeshXY{}, topology.Mesh2D(4, 4, 1)},
		{"mesh3d", MeshXYZ{}, topology.Mesh3D(3, 3, 3, 1)},
		{"torus2d", TorusClue{Dims: 2}, topology.Torus2D(4, 4, 1)},
		{"torus3d", TorusClue{Dims: 3}, topology.Torus3D(3, 3, 3, 1)},
		{"shortest-path", ShortestPath{}, topology.Line(6, 2)},
	}
}

// TestComputeForMatchesSubset pins the DstComputer contract: for every
// strategy, ComputeFor(g, subset) returns exactly the full Compute(g)
// route set restricted to those destinations — same rules, same order.
func TestComputeForMatchesSubset(t *testing.T) {
	for _, tc := range subsetCases() {
		t.Run(tc.name, func(t *testing.T) {
			full, err := tc.strategy.Compute(tc.graph)
			if err != nil {
				t.Fatal(err)
			}
			hosts := tc.graph.Hosts()
			// Every third host, plus the last one, fed in scrambled
			// order with a duplicate — ComputeFor must canonicalise.
			var subset []int
			for i := len(hosts) - 1; i >= 0; i -= 3 {
				subset = append(subset, hosts[i])
			}
			subset = append(subset, subset[0])
			sub, err := tc.strategy.ComputeFor(tc.graph, subset)
			if err != nil {
				t.Fatal(err)
			}
			if sub.Strategy != full.Strategy || sub.NumVCs != full.NumVCs {
				t.Fatalf("metadata mismatch: %q/%d vs %q/%d",
					sub.Strategy, sub.NumVCs, full.Strategy, full.NumVCs)
			}
			inSubset := map[int]bool{}
			for _, d := range subset {
				inSubset[d] = true
			}
			var want []Rule
			for _, rule := range full.Rules {
				if inSubset[rule.Dst] {
					want = append(want, rule)
				}
			}
			if len(sub.Rules) != len(want) {
				t.Fatalf("ComputeFor: %d rules, want %d", len(sub.Rules), len(want))
			}
			for i := range want {
				if sub.Rules[i] != want[i] {
					t.Fatalf("rule %d: %+v, want %+v", i, sub.Rules[i], want[i])
				}
			}
			// Subset routes must deliver between subset hosts.
			for _, s := range subset {
				for _, d := range subset {
					if s == d {
						continue
					}
					if _, err := sub.TracePath(s, d); err != nil {
						t.Fatalf("trace %d->%d: %v", s, d, err)
					}
				}
			}
		})
	}
}

// TestComputeForRejectsNonHosts pins the validation error: ComputeFor
// with a switch vertex or an out-of-range ID fails loudly.
func TestComputeForRejectsNonHosts(t *testing.T) {
	g := topology.FatTree(4)
	sw := g.Switches()[0]
	cases := [][]int{{sw}, {-1}, {len(g.Vertices)}}
	for _, bad := range cases {
		if _, err := (FatTreeDFS{}).ComputeFor(g, bad); err == nil {
			t.Errorf("ComputeFor(%v): want error, got nil", bad)
		} else if !strings.Contains(err.Error(), "not a host") {
			t.Errorf("ComputeFor(%v): error %q does not name the bad destination", bad, err)
		}
	}
}

// TestComputeForNilIsFull pins the nil-destinations convenience: a nil
// subset computes the full route set.
func TestComputeForNilIsFull(t *testing.T) {
	g := topology.FatTree(4)
	full, err := FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	all, err := FatTreeDFS{}.ComputeFor(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rules) != len(full.Rules) {
		t.Fatalf("ComputeFor(nil): %d rules, want %d", len(all.Rules), len(full.Rules))
	}
}

// TestForTopologyStrategiesAreDstComputers keeps every registered
// Table III strategy inside the DstComputer contract — flowsim's
// subset routing depends on it for all generated topologies.
func TestForTopologyStrategiesAreDstComputers(t *testing.T) {
	for _, g := range []*topology.Graph{
		topology.FatTree(4),
		topology.Dragonfly(4, 9, 2, 1),
		topology.Mesh2D(3, 3, 1),
		topology.Mesh3D(3, 3, 3, 1),
		topology.Torus2D(4, 4, 1),
		topology.Torus3D(3, 3, 3, 1),
		topology.Line(4, 1),
	} {
		if _, ok := ForTopology(g).(DstComputer); !ok {
			t.Errorf("ForTopology(%s) = %T is not a DstComputer", g.Name, ForTopology(g))
		}
	}
}
