package ofproto

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/openflow"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello sdt")
	if err := WriteMessage(&buf, TypeEchoRequest, 42, payload); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Type != TypeEchoRequest || m.Header.XID != 42 {
		t.Errorf("header = %+v", m.Header)
	}
	if string(m.Payload) != string(payload) {
		t.Errorf("payload = %q", m.Payload)
	}
}

func TestMessageBadVersion(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0x99, 0, 0, 8, 0, 0, 0, 1})
	if _, err := ReadMessage(buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	fm := &FlowMod{
		Command: FlowAdd, Cookie: 0xdeadbeef, Priority: 20,
		InPort: 3, SrcHost: -1, DstHost: 77, Tag: 5, Proto: 0,
		Actions: []FlowAction{{Type: WireSetTag, Arg: 9}, {Type: WireOutput, Arg: 12}},
	}
	got, err := parseFlowMod(fm.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cookie != fm.Cookie || got.Priority != fm.Priority ||
		got.InPort != fm.InPort || got.SrcHost != fm.SrcHost ||
		got.DstHost != fm.DstHost || got.Tag != fm.Tag {
		t.Errorf("round trip changed fields: %+v vs %+v", got, fm)
	}
	if len(got.Actions) != 2 || got.Actions[0] != fm.Actions[0] || got.Actions[1] != fm.Actions[1] {
		t.Errorf("actions changed: %+v", got.Actions)
	}
}

// Property: FlowMod marshal/parse is lossless for arbitrary fields.
func TestQuickFlowModRoundTrip(t *testing.T) {
	f := func(cookie uint64, prio int16, inPort uint8, dst int32, tag int8, nAct uint8) bool {
		fm := &FlowMod{
			Command: FlowAdd, Cookie: cookie, Priority: int32(prio),
			InPort: int32(inPort), SrcHost: -1, DstHost: dst, Tag: int32(tag),
		}
		for i := 0; i < int(nAct%5); i++ {
			fm.Actions = append(fm.Actions, FlowAction{Type: WireOutput, Arg: int32(i)})
		}
		got, err := parseFlowMod(fm.marshal())
		if err != nil {
			return false
		}
		if got.Cookie != fm.Cookie || got.Priority != fm.Priority || got.DstHost != fm.DstHost ||
			got.Tag != fm.Tag || len(got.Actions) != len(fm.Actions) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPortStatsRoundTrip(t *testing.T) {
	in := []PortStat{
		{Port: 1, RxPackets: 10, TxPackets: 20, RxBytes: 1000, TxBytes: 2000, Drops: 3},
		{Port: 2, RxPackets: 99},
	}
	got, err := parsePortStats(marshalPortStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Errorf("round trip changed stats: %+v", got)
	}
}

// pipePair connects an agent and a client over loopback TCP (the
// transport the protocol is designed for; fully synchronous in-memory
// pipes would deadlock on unsolicited error writes, as real OpenFlow
// over TCP does not).
func pipePair(t *testing.T, sw *openflow.Switch) *Client {
	t.Helper()
	agent := NewAgent(7, sw)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = agent.ListenAndServe(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close(); l.Close() })
	return client
}

func TestHandshakeAndFeatures(t *testing.T) {
	sw := openflow.NewSwitch("s1", 48, 1000)
	c := pipePair(t, sw)
	f := c.Features()
	if f.DatapathID != 7 || f.NumPorts != 48 || f.TableCap != 1000 {
		t.Errorf("features = %+v", f)
	}
	if err := c.Echo([]byte("ping")); err != nil {
		t.Error(err)
	}
}

func TestInstallAndRemoveOverWire(t *testing.T) {
	sw := openflow.NewSwitch("s1", 8, 0)
	c := pipePair(t, sw)
	e := &openflow.FlowEntry{
		Priority: 10, Cookie: 5,
		Match:   openflow.Match{InPort: 1, SrcHost: openflow.Any, DstHost: 42, Tag: openflow.Any},
		Actions: []openflow.Action{{Type: openflow.SetTag, Tag: 3}, {Type: openflow.Output, Port: 4}},
	}
	if err := c.InstallEntry(e); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if sw.Table.Len() != 1 {
		t.Fatalf("remote table len = %d", sw.Table.Len())
	}
	fwd := sw.Process(openflow.PacketMeta{InPort: 1, DstHost: 42, Bytes: 100})
	if !fwd.Matched || fwd.OutPort != 4 || fwd.Tag != 3 {
		t.Errorf("forwarding through wire-installed entry: %+v", fwd)
	}
	if err := c.RemoveCookie(5); err != nil {
		t.Fatal(err)
	}
	if sw.Table.Len() != 0 {
		t.Errorf("cookie removal left %d entries", sw.Table.Len())
	}
}

func TestTableFullSurfacesAtBarrier(t *testing.T) {
	sw := openflow.NewSwitch("tiny", 4, 1)
	c := pipePair(t, sw)
	e := &openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll, Actions: []openflow.Action{{Type: openflow.Drop}}}
	if err := c.InstallEntry(e); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallEntry(e); err != nil {
		t.Fatal(err)
	}
	err := c.Barrier()
	if err == nil {
		t.Fatal("table overflow not reported")
	}
	if !strings.Contains(err.Error(), "full") {
		t.Errorf("error = %v", err)
	}
}

func TestPortAndTableStats(t *testing.T) {
	sw := openflow.NewSwitch("s1", 4, 100)
	_ = sw.Table.Add(openflow.FlowEntry{Priority: 1, Match: openflow.MatchAll,
		Actions: []openflow.Action{{Type: openflow.Output, Port: 2}}})
	sw.Process(openflow.PacketMeta{InPort: 1, Bytes: 500})
	c := pipePair(t, sw)
	stats, err := c.PortStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("ports = %d", len(stats))
	}
	if stats[0].RxBytes != 500 || stats[1].TxBytes != 500 {
		t.Errorf("counters = %+v", stats[:2])
	}
	ts, err := c.TableStats()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Entries != 1 || ts.Capacity != 100 {
		t.Errorf("table stats = %+v", ts)
	}
}

// TestDeployFatTreeOverTCP pushes a full compiled SDT deployment to
// remote agents over real TCP sockets and verifies packets forward
// through the remotely installed tables — the paper's controller-to-
// switch path end to end.
func TestDeployFatTreeOverTCP(t *testing.T) {
	g := topology.FatTree(4)
	switches := []projection.PhysicalSwitch{
		projection.Commodity64("a"), projection.Commodity64("b"), projection.Commodity64("c"),
	}
	cab, err := projection.PlanCabling(switches, []*topology.Graph{g}, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := projection.Project(g, cab, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{Cookie: 9})
	if err != nil {
		t.Fatal(err)
	}

	// Remote side: empty switches behind TCP agents.
	remote := make([]*openflow.Switch, len(switches))
	clients := make([]*Client, len(switches))
	for i, spec := range switches {
		remote[i] = openflow.NewSwitch(spec.ID, spec.Ports, spec.TableCap)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		agent := NewAgent(uint64(i+1), remote[i])
		go func() { _ = agent.ListenAndServe(l) }()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close(); l.Close() })
		clients[i], err = Connect(conn)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, sw := range compiled {
		if err := clients[i].InstallTable(sw); err != nil {
			t.Fatalf("switch %d: %v", i, err)
		}
	}
	for i := range compiled {
		if remote[i].Table.Len() != compiled[i].Table.Len() {
			t.Errorf("switch %d: remote %d entries, local %d", i, remote[i].Table.Len(), compiled[i].Table.Len())
		}
	}
	// Walk a packet host->host through the REMOTE tables.
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[15]
	ref := plan.HostAttach[src]
	tag := 0
	delivered := false
	for hop := 0; hop < 32; hop++ {
		fwd := remote[ref.Switch].Process(openflow.PacketMeta{
			InPort: ref.Port, SrcHost: src, DstHost: dst, Tag: tag, Bytes: 800,
		})
		if !fwd.Matched || fwd.Dropped {
			t.Fatalf("hop %d: dropped", hop)
		}
		tag = fwd.Tag
		out := projection.PortRef{Switch: ref.Switch, Port: fwd.OutPort}
		if out == plan.HostAttach[dst] {
			delivered = true
			break
		}
		nxt, ok := plan.CableAt(out)
		if !ok {
			t.Fatalf("dangling port %v", out)
		}
		ref = nxt
	}
	if !delivered {
		t.Fatal("packet not delivered through remote tables")
	}
	// Tear down by cookie over the wire.
	for _, c := range clients {
		if err := c.RemoveCookie(9); err != nil {
			t.Fatal(err)
		}
	}
	for i := range remote {
		if remote[i].Table.Len() != 0 {
			t.Errorf("switch %d not empty after teardown", i)
		}
	}
}

func BenchmarkFlowModMarshal(b *testing.B) {
	fm := &FlowMod{
		Command: FlowAdd, Cookie: 1, Priority: 10,
		InPort: 1, SrcHost: -1, DstHost: 42, Tag: 0,
		Actions: []FlowAction{{Type: WireSetTag, Arg: 3}, {Type: WireOutput, Arg: 4}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseFlowMod(fm.marshal()); err != nil {
			b.Fatal(err)
		}
	}
}
