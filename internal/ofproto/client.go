package ofproto

import (
	"fmt"
	"io"

	"repro/internal/openflow"
)

// Client is the controller-side endpoint for one switch agent.
type Client struct {
	conn     io.ReadWriter
	features *FeaturesReply
	nextXID  uint32
}

// Connect performs the Hello handshake and features discovery on an
// established connection. The agent speaks first; reading its Hello
// before sending ours keeps the handshake deadlock-free even over
// fully synchronous transports (net.Pipe).
func Connect(conn io.ReadWriter) (*Client, error) {
	c := &Client{conn: conn}
	hello, err := ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	if hello.Header.Type != TypeHello {
		return nil, fmt.Errorf("ofproto: expected hello, got type %d", hello.Header.Type)
	}
	if err := WriteMessage(conn, TypeHello, c.xid(), nil); err != nil {
		return nil, err
	}
	fxid := c.xid()
	if err := WriteMessage(conn, TypeFeaturesRequest, fxid, nil); err != nil {
		return nil, err
	}
	m, err := c.readReply(TypeFeaturesReply, fxid)
	if err != nil {
		return nil, err
	}
	c.features, err = parseFeaturesReply(m.Payload)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) xid() uint32 { c.nextXID++; return c.nextXID }

// readReply reads until the reply matching (want, xid) arrives,
// converting remote errors and discarding stale replies from earlier
// exchanges that already failed (replies are strictly ordered, so a
// mismatched XID can only belong to a superseded request).
func (c *Client) readReply(want MsgType, xid uint32) (*Message, error) {
	for {
		m, err := ReadMessage(c.conn)
		if err != nil {
			return nil, err
		}
		switch {
		case m.Header.Type == want && m.Header.XID == xid:
			return m, nil
		case m.Header.Type == TypeError:
			return nil, parseError(m.Payload)
		case m.Header.Type == TypeEchoRequest:
			if err := WriteMessage(c.conn, TypeEchoReply, m.Header.XID, m.Payload); err != nil {
				return nil, err
			}
		case m.Header.XID < xid:
			// Stale reply to a superseded request; skip.
		default:
			return nil, fmt.Errorf("ofproto: unexpected type %d xid %d (want %d/%d)",
				m.Header.Type, m.Header.XID, want, xid)
		}
	}
}

// Features returns the agent's advertised capabilities.
func (c *Client) Features() FeaturesReply { return *c.features }

// Echo round-trips an opaque payload (liveness probe).
func (c *Client) Echo(payload []byte) error {
	xid := c.xid()
	if err := WriteMessage(c.conn, TypeEchoRequest, xid, payload); err != nil {
		return err
	}
	m, err := c.readReply(TypeEchoReply, xid)
	if err != nil {
		return err
	}
	if string(m.Payload) != string(payload) {
		return fmt.Errorf("ofproto: echo mismatch")
	}
	return nil
}

// InstallEntry sends one FlowAdd for an openflow entry.
func (c *Client) InstallEntry(e *openflow.FlowEntry) error {
	fm := FlowMod{
		Command:  FlowAdd,
		Cookie:   e.Cookie,
		Priority: int32(e.Priority),
		InPort:   int32(e.Match.InPort),
		SrcHost:  int32(e.Match.SrcHost),
		DstHost:  int32(e.Match.DstHost),
		Tag:      int32(e.Match.Tag),
		Proto:    int32(e.Match.Proto),
	}
	for _, a := range e.Actions {
		switch a.Type {
		case openflow.Output:
			fm.Actions = append(fm.Actions, FlowAction{Type: WireOutput, Arg: int32(a.Port)})
		case openflow.SetTag:
			fm.Actions = append(fm.Actions, FlowAction{Type: WireSetTag, Arg: int32(a.Tag)})
		case openflow.Drop:
			fm.Actions = append(fm.Actions, FlowAction{Type: WireDrop})
		}
	}
	return WriteMessage(c.conn, TypeFlowMod, c.xid(), fm.marshal())
}

// InstallTable pushes every entry of a compiled switch table, followed
// by a barrier so errors (e.g. table-full) surface before return —
// the deployment function's bulk path.
func (c *Client) InstallTable(sw *openflow.Switch) error {
	for _, e := range sw.Table.Entries() {
		if err := c.InstallEntry(e); err != nil {
			return err
		}
	}
	return c.Barrier()
}

// RemoveCookie deletes all entries of one deployment.
func (c *Client) RemoveCookie(cookie uint64) error {
	fm := FlowMod{Command: FlowDeleteCookie, Cookie: cookie}
	if err := WriteMessage(c.conn, TypeFlowMod, c.xid(), fm.marshal()); err != nil {
		return err
	}
	return c.Barrier()
}

// Clear empties the remote table.
func (c *Client) Clear() error {
	fm := FlowMod{Command: FlowClear}
	if err := WriteMessage(c.conn, TypeFlowMod, c.xid(), fm.marshal()); err != nil {
		return err
	}
	return c.Barrier()
}

// Barrier blocks until all preceding messages are processed; a remote
// error raised by any of them is returned here.
func (c *Client) Barrier() error {
	xid := c.xid()
	if err := WriteMessage(c.conn, TypeBarrierRequest, xid, nil); err != nil {
		return err
	}
	_, err := c.readReply(TypeBarrierReply, xid)
	return err
}

// PortStats polls the agent's port counters (Network Monitor).
func (c *Client) PortStats() ([]PortStat, error) {
	xid := c.xid()
	if err := WriteMessage(c.conn, TypeStatsRequest, xid, []byte{byte(StatsPorts)}); err != nil {
		return nil, err
	}
	m, err := c.readReply(TypeStatsReply, xid)
	if err != nil {
		return nil, err
	}
	return parsePortStats(m.Payload)
}

// TableStats polls flow-table occupancy (§VII-C's resource check).
func (c *Client) TableStats() (*TableStat, error) {
	xid := c.xid()
	if err := WriteMessage(c.conn, TypeStatsRequest, xid, []byte{byte(StatsTable)}); err != nil {
		return nil, err
	}
	m, err := c.readReply(TypeStatsReply, xid)
	if err != nil {
		return nil, err
	}
	if len(m.Payload) < 8 {
		return nil, fmt.Errorf("ofproto: short table stats")
	}
	return &TableStat{
		Entries:  uint32(m.Payload[0])<<24 | uint32(m.Payload[1])<<16 | uint32(m.Payload[2])<<8 | uint32(m.Payload[3]),
		Capacity: uint32(m.Payload[4])<<24 | uint32(m.Payload[5])<<16 | uint32(m.Payload[6])<<8 | uint32(m.Payload[7]),
	}, nil
}
