package ofproto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/openflow"
)

// Agent is the switch-side endpoint: it owns one openflow.Switch and
// serves controller connections, applying FlowMods and answering
// statistics requests — the firmware role of the commodity switch in
// the paper's prototype.
type Agent struct {
	DatapathID uint64
	Switch     *openflow.Switch

	mu sync.Mutex // serialises table access across connections
}

// NewAgent wraps a switch model as a protocol agent.
func NewAgent(dpid uint64, sw *openflow.Switch) *Agent {
	return &Agent{DatapathID: dpid, Switch: sw}
}

// Serve handles one controller connection until EOF or error. The
// handshake is Hello (both directions) followed by request/response.
func (a *Agent) Serve(conn io.ReadWriter) error {
	if err := WriteMessage(conn, TypeHello, 0, nil); err != nil {
		return err
	}
	hello, err := ReadMessage(conn)
	if err != nil {
		return err
	}
	if hello.Header.Type != TypeHello {
		return fmt.Errorf("ofproto: expected hello, got type %d", hello.Header.Type)
	}
	for {
		m, err := ReadMessage(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := a.handle(conn, m); err != nil {
			return err
		}
	}
}

func (a *Agent) handle(conn io.Writer, m *Message) error {
	xid := m.Header.XID
	switch m.Header.Type {
	case TypeEchoRequest:
		return WriteMessage(conn, TypeEchoReply, xid, m.Payload)

	case TypeFeaturesRequest:
		a.mu.Lock()
		fr := FeaturesReply{
			DatapathID: a.DatapathID,
			NumPorts:   uint32(a.Switch.NumPorts),
			TableCap:   uint32(a.Switch.Table.Capacity),
		}
		a.mu.Unlock()
		return WriteMessage(conn, TypeFeaturesReply, xid, fr.marshal())

	case TypeFlowMod:
		fm, err := parseFlowMod(m.Payload)
		if err != nil {
			return writeError(conn, xid, ErrCodeBadFlow, err.Error())
		}
		if err := a.applyFlowMod(fm); err != nil {
			code := ErrCodeBadFlow
			var full *openflow.ErrTableFull
			if errors.As(err, &full) {
				code = ErrCodeTableFull
			}
			return writeError(conn, xid, code, err.Error())
		}
		return nil // flow mods are unacknowledged; barrier synchronises

	case TypeBarrierRequest:
		return WriteMessage(conn, TypeBarrierReply, xid, nil)

	case TypeStatsRequest:
		if len(m.Payload) < 1 {
			return writeError(conn, xid, ErrCodeBadType, "empty stats request")
		}
		switch StatsKind(m.Payload[0]) {
		case StatsPorts:
			a.mu.Lock()
			stats := make([]PortStat, 0, a.Switch.NumPorts)
			for p := 1; p <= a.Switch.NumPorts; p++ {
				c := a.Switch.Ports[p]
				stats = append(stats, PortStat{
					Port:      uint32(p),
					RxPackets: c.RxPackets, TxPackets: c.TxPackets,
					RxBytes: c.RxBytes, TxBytes: c.TxBytes, Drops: c.Drops,
				})
			}
			a.mu.Unlock()
			return WriteMessage(conn, TypeStatsReply, xid, marshalPortStats(stats))
		case StatsTable:
			a.mu.Lock()
			b := make([]byte, 0, 8)
			b = be32(b, uint32(a.Switch.Table.Len()))
			b = be32(b, uint32(a.Switch.Table.Capacity))
			a.mu.Unlock()
			return WriteMessage(conn, TypeStatsReply, xid, b)
		default:
			return writeError(conn, xid, ErrCodeBadType, "unknown stats kind")
		}

	default:
		return writeError(conn, xid, ErrCodeBadType, fmt.Sprintf("unsupported type %d", m.Header.Type))
	}
}

func (a *Agent) applyFlowMod(fm *FlowMod) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch fm.Command {
	case FlowAdd:
		entry := openflow.FlowEntry{
			Priority: int(fm.Priority),
			Cookie:   fm.Cookie,
			Match: openflow.Match{
				InPort:  int(fm.InPort),
				SrcHost: int(fm.SrcHost),
				DstHost: int(fm.DstHost),
				Tag:     int(fm.Tag),
				Proto:   int(fm.Proto),
			},
		}
		for _, a := range fm.Actions {
			switch a.Type {
			case WireOutput:
				entry.Actions = append(entry.Actions, openflow.Action{Type: openflow.Output, Port: int(a.Arg)})
			case WireSetTag:
				entry.Actions = append(entry.Actions, openflow.Action{Type: openflow.SetTag, Tag: int(a.Arg)})
			case WireDrop:
				entry.Actions = append(entry.Actions, openflow.Action{Type: openflow.Drop})
			default:
				return fmt.Errorf("ofproto: unknown action type %d", a.Type)
			}
		}
		return a.Switch.Table.Add(entry)
	case FlowDeleteCookie:
		a.Switch.Table.RemoveCookie(fm.Cookie)
		return nil
	case FlowClear:
		a.Switch.Table.Clear()
		return nil
	default:
		return fmt.Errorf("ofproto: unknown flow-mod command %d", fm.Command)
	}
}

func writeError(conn io.Writer, xid uint32, code uint16, text string) error {
	e := ErrorMsg{Code: code, Text: text}
	return WriteMessage(conn, TypeError, xid, e.marshal())
}

// ListenAndServe accepts controller connections on l, one goroutine
// each, until the listener closes.
func (a *Agent) ListenAndServe(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = a.Serve(conn)
		}()
	}
}
