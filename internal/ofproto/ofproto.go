// Package ofproto implements the controller-to-switch wire protocol of
// the SDT prototype: an OpenFlow-1.3-style binary message layer over
// TCP. The paper's controller is built on Ryu talking to commodity
// OpenFlow switches (§V); this package provides the equivalent
// channel so the SDT controller can drive *remote* switch agents —
// handshake, flow-mod installation with barriers, cookie-based
// removal, and the port/table statistics the Network Monitor polls.
//
// The framing follows OpenFlow conventions (fixed 8-byte header with
// version/type/length/xid, big-endian), with a compact match/action
// encoding mirroring internal/openflow's model.
package ofproto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is this protocol's version byte (0x04 = OpenFlow 1.3's wire
// version, kept for familiarity).
const Version = 0x04

// MsgType enumerates message types (values follow OpenFlow 1.3 where a
// counterpart exists).
type MsgType uint8

// Message types.
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypeFlowMod         MsgType = 14
	TypeBarrierRequest  MsgType = 20
	TypeBarrierReply    MsgType = 21
	TypeStatsRequest    MsgType = 18
	TypeStatsReply      MsgType = 19
)

// Header is the fixed OpenFlow message header.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16 // total message length including header
	XID     uint32
}

const headerLen = 8

// maxMsgLen bounds a message (headroom over the uint16 length field).
const maxMsgLen = 1 << 16

// Message is a decoded wire message: header plus raw payload.
type Message struct {
	Header  Header
	Payload []byte
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, t MsgType, xid uint32, payload []byte) error {
	if headerLen+len(payload) > maxMsgLen {
		return fmt.Errorf("ofproto: message too large (%d bytes)", len(payload))
	}
	var hdr [headerLen]byte
	hdr[0] = Version
	hdr[1] = byte(t)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(headerLen+len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], xid)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	m := &Message{Header: Header{
		Version: hdr[0],
		Type:    MsgType(hdr[1]),
		Length:  binary.BigEndian.Uint16(hdr[2:4]),
		XID:     binary.BigEndian.Uint32(hdr[4:8]),
	}}
	if m.Header.Version != Version {
		return nil, fmt.Errorf("ofproto: unsupported version 0x%02x", m.Header.Version)
	}
	if m.Header.Length < headerLen {
		return nil, fmt.Errorf("ofproto: bad length %d", m.Header.Length)
	}
	if n := int(m.Header.Length) - headerLen; n > 0 {
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// FeaturesReply describes a switch agent.
type FeaturesReply struct {
	DatapathID uint64
	NumPorts   uint32
	TableCap   uint32
}

func (f *FeaturesReply) marshal() []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b[0:8], f.DatapathID)
	binary.BigEndian.PutUint32(b[8:12], f.NumPorts)
	binary.BigEndian.PutUint32(b[12:16], f.TableCap)
	return b
}

func parseFeaturesReply(p []byte) (*FeaturesReply, error) {
	if len(p) < 16 {
		return nil, fmt.Errorf("ofproto: short features reply (%d bytes)", len(p))
	}
	return &FeaturesReply{
		DatapathID: binary.BigEndian.Uint64(p[0:8]),
		NumPorts:   binary.BigEndian.Uint32(p[8:12]),
		TableCap:   binary.BigEndian.Uint32(p[12:16]),
	}, nil
}

// FlowModCommand selects the FlowMod operation.
type FlowModCommand uint8

// FlowMod commands.
const (
	FlowAdd FlowModCommand = iota
	// FlowDeleteCookie removes all entries with the given cookie.
	FlowDeleteCookie
	// FlowClear removes everything.
	FlowClear
)

// FlowMod installs or removes flow entries.
type FlowMod struct {
	Command  FlowModCommand
	Cookie   uint64
	Priority int32
	// Match fields; -1 wildcards SrcHost/DstHost/Tag, 0 wildcards
	// InPort/Proto (mirroring internal/openflow).
	InPort, SrcHost, DstHost, Tag, Proto int32
	Actions                              []FlowAction
}

// FlowActionType mirrors openflow.ActionType on the wire.
type FlowActionType uint8

// Wire action types.
const (
	WireOutput FlowActionType = iota
	WireSetTag
	WireDrop
)

// FlowAction is one action in a FlowMod.
type FlowAction struct {
	Type FlowActionType
	Arg  int32 // port for Output, tag for SetTag
}

func (fm *FlowMod) marshal() []byte {
	b := make([]byte, 0, 40+5*len(fm.Actions))
	b = append(b, byte(fm.Command))
	b = be64(b, fm.Cookie)
	b = be32(b, uint32(fm.Priority))
	for _, v := range []int32{fm.InPort, fm.SrcHost, fm.DstHost, fm.Tag, fm.Proto} {
		b = be32(b, uint32(v))
	}
	b = be32(b, uint32(len(fm.Actions)))
	for _, a := range fm.Actions {
		b = append(b, byte(a.Type))
		b = be32(b, uint32(a.Arg))
	}
	return b
}

func parseFlowMod(p []byte) (*FlowMod, error) {
	const fixed = 1 + 8 + 4 + 5*4 + 4
	if len(p) < fixed {
		return nil, fmt.Errorf("ofproto: short flow mod (%d bytes)", len(p))
	}
	fm := &FlowMod{Command: FlowModCommand(p[0])}
	fm.Cookie = binary.BigEndian.Uint64(p[1:9])
	fm.Priority = int32(binary.BigEndian.Uint32(p[9:13]))
	off := 13
	dst := []*int32{&fm.InPort, &fm.SrcHost, &fm.DstHost, &fm.Tag, &fm.Proto}
	for _, d := range dst {
		*d = int32(binary.BigEndian.Uint32(p[off : off+4]))
		off += 4
	}
	n := int(binary.BigEndian.Uint32(p[off : off+4]))
	off += 4
	if n < 0 || n > 64 || len(p) < off+5*n {
		return nil, fmt.Errorf("ofproto: bad action count %d", n)
	}
	for i := 0; i < n; i++ {
		fm.Actions = append(fm.Actions, FlowAction{
			Type: FlowActionType(p[off]),
			Arg:  int32(binary.BigEndian.Uint32(p[off+1 : off+5])),
		})
		off += 5
	}
	return fm, nil
}

// StatsKind selects a statistics request.
type StatsKind uint8

// Statistics kinds.
const (
	StatsPorts StatsKind = iota
	StatsTable
)

// PortStat is one port's counters in a stats reply.
type PortStat struct {
	Port                 uint32
	RxPackets, TxPackets uint64
	RxBytes, TxBytes     uint64
	Drops                uint64
}

// TableStat reports flow-table occupancy.
type TableStat struct {
	Entries  uint32
	Capacity uint32
}

func marshalPortStats(stats []PortStat) []byte {
	b := make([]byte, 0, 4+44*len(stats))
	b = be32(b, uint32(len(stats)))
	for _, s := range stats {
		b = be32(b, s.Port)
		for _, v := range []uint64{s.RxPackets, s.TxPackets, s.RxBytes, s.TxBytes, s.Drops} {
			b = be64(b, v)
		}
	}
	return b
}

func parsePortStats(p []byte) ([]PortStat, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("ofproto: short port stats")
	}
	n := int(binary.BigEndian.Uint32(p[0:4]))
	const rec = 4 + 5*8
	if n < 0 || len(p) < 4+n*rec {
		return nil, fmt.Errorf("ofproto: bad port stats count %d", n)
	}
	out := make([]PortStat, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		s := PortStat{Port: binary.BigEndian.Uint32(p[off : off+4])}
		off += 4
		for _, d := range []*uint64{&s.RxPackets, &s.TxPackets, &s.RxBytes, &s.TxBytes, &s.Drops} {
			*d = binary.BigEndian.Uint64(p[off : off+8])
			off += 8
		}
		out = append(out, s)
	}
	return out, nil
}

// ErrorMsg is the wire error report.
type ErrorMsg struct {
	Code uint16
	Text string
}

// Error codes.
const (
	ErrCodeTableFull uint16 = 1
	ErrCodeBadFlow   uint16 = 2
	ErrCodeBadType   uint16 = 3
)

func (e *ErrorMsg) Error() string {
	return fmt.Sprintf("ofproto: remote error %d: %s", e.Code, e.Text)
}

func (e *ErrorMsg) marshal() []byte {
	b := make([]byte, 2, 2+len(e.Text))
	binary.BigEndian.PutUint16(b, e.Code)
	return append(b, e.Text...)
}

func parseError(p []byte) *ErrorMsg {
	if len(p) < 2 {
		return &ErrorMsg{Code: 0, Text: "malformed error"}
	}
	return &ErrorMsg{Code: binary.BigEndian.Uint16(p[0:2]), Text: string(p[2:])}
}

func be32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.BigEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func be64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}
