package ofproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/topology"
)

// Failure injection: the agent and parsers must reject malformed input
// without panicking or corrupting switch state.

func TestReadMessageTruncatedHeader(t *testing.T) {
	for n := 0; n < headerLen; n++ {
		buf := bytes.NewBuffer(make([]byte, n))
		if _, err := ReadMessage(buf); err == nil {
			t.Errorf("truncated header (%d bytes) accepted", n)
		}
	}
}

func TestReadMessageTruncatedPayload(t *testing.T) {
	var full bytes.Buffer
	if err := WriteMessage(&full, TypeEchoRequest, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := headerLen; cut < len(raw); cut++ {
		if _, err := ReadMessage(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncated payload (%d of %d bytes) accepted", cut, len(raw))
		}
	}
}

func TestReadMessageLengthSmallerThanHeader(t *testing.T) {
	raw := make([]byte, headerLen)
	raw[0] = Version
	binary.BigEndian.PutUint16(raw[2:4], 4) // < headerLen
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Error("undersized length accepted")
	}
}

func TestParseFlowModGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		make([]byte, 10),
		// Fixed part with absurd action count.
		func() []byte {
			fm := FlowMod{Command: FlowAdd}
			b := fm.marshal()
			binary.BigEndian.PutUint32(b[len(b)-4:], 1<<30)
			return b
		}(),
	}
	for i, p := range cases {
		if _, err := parseFlowMod(p); err == nil {
			t.Errorf("case %d: garbage flow mod accepted", i)
		}
	}
}

func TestParsePortStatsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0},
		func() []byte { // count says 5, body has 1
			b := marshalPortStats([]PortStat{{Port: 1}})
			binary.BigEndian.PutUint32(b[0:4], 5)
			return b
		}(),
	}
	for i, p := range cases {
		if _, err := parsePortStats(p); err == nil {
			t.Errorf("case %d: garbage port stats accepted", i)
		}
	}
}

func TestWriteMessageTooLarge(t *testing.T) {
	if err := WriteMessage(io.Discard, TypeEchoRequest, 1, make([]byte, maxMsgLen)); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestAgentSurvivesBadFlowModOverWire(t *testing.T) {
	sw := openflow.NewSwitch("s1", 4, 0)
	c := pipePair(t, sw)
	// Hand-craft a FlowMod with an unknown action type.
	fm := FlowMod{Command: FlowAdd, Actions: []FlowAction{{Type: 99, Arg: 1}}}
	if err := WriteMessage(connOf(c), TypeFlowMod, 1, fm.marshal()); err != nil {
		t.Fatal(err)
	}
	err := c.Barrier()
	if err == nil {
		t.Fatal("bad action accepted")
	}
	// The connection and switch stay usable.
	if err := c.Echo([]byte("still alive")); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
	if sw.Table.Len() != 0 {
		t.Errorf("bad flow mod left %d entries", sw.Table.Len())
	}
}

func TestAgentRejectsUnknownMessageType(t *testing.T) {
	sw := openflow.NewSwitch("s1", 4, 0)
	c := pipePair(t, sw)
	if err := WriteMessage(connOf(c), MsgType(200), 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err == nil {
		t.Error("unknown type not reported")
	}
	if err := c.Echo([]byte("x")); err != nil {
		t.Fatalf("connection dead: %v", err)
	}
}

func TestAgentUnknownFlowModCommand(t *testing.T) {
	sw := openflow.NewSwitch("s1", 4, 0)
	c := pipePair(t, sw)
	fm := FlowMod{Command: FlowModCommand(77)}
	if err := WriteMessage(connOf(c), TypeFlowMod, 1, fm.marshal()); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestAgentClosesCleanOnEOF(t *testing.T) {
	sw := openflow.NewSwitch("s1", 4, 0)
	agent := NewAgent(1, sw)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		done <- agent.Serve(conn)
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	_ = client
	conn.Close()
	if err := <-done; err != nil && err != io.EOF {
		t.Errorf("Serve returned %v on clean close", err)
	}
}

// connOf exposes the client's transport for raw injections.
func connOf(c *Client) io.ReadWriter { return c.conn }

// TestMonitorNoticesFaultScheduledDisconnects drives the control
// channel through a fault schedule: a faults.Spec expands into the
// deterministic down/up sequence, each LinkDown severs the agent's TCP
// connection and each LinkUp redials, and a controller-side monitor
// tick (an Echo probe, the §V-3 liveness poll) runs after every
// transition. The monitor must observe the failure on the FIRST tick
// after each disconnect — no hang, no stale success — and recover on
// the first tick after each reconnect. This closes the coverage gap
// where the failure paths above only ever saw synthetically corrupted
// frames, never an actual dead peer.
func TestMonitorNoticesFaultScheduledDisconnects(t *testing.T) {
	// The control channel modelled as a 1-edge topology, so the fault
	// subsystem validates and orders the schedule.
	g := topology.New("control-channel")
	a := g.AddSwitch("controller")
	b := g.AddSwitch("agent")
	g.Connect(a, b)
	channel := g.EdgeBetween(a, b)
	spec := &faults.Spec{Events: []faults.Event{
		{At: 1 * netsim.Millisecond, Kind: faults.LinkDown, Elem: channel},
		{At: 2 * netsim.Millisecond, Kind: faults.LinkUp, Elem: channel},
		{At: 3 * netsim.Millisecond, Kind: faults.LinkDown, Elem: channel},
		{At: 4 * netsim.Millisecond, Kind: faults.LinkUp, Elem: channel},
	}}
	sched, err := spec.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}

	sw := openflow.NewSwitch("s1", 4, 0)
	agent := NewAgent(1, sw)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = agent.ListenAndServe(l) }()

	dial := func() (net.Conn, *Client) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		client, err := Connect(conn)
		if err != nil {
			t.Fatal(err)
		}
		return conn, client
	}
	conn, client := dial()
	defer func() { conn.Close() }()

	// One monitor tick: a liveness Echo with a bounded deadline, so a
	// dead peer surfaces as an error within the tick instead of a hang.
	tick := func() error {
		conn.SetDeadline(time.Now().Add(200 * time.Millisecond))
		defer conn.SetDeadline(time.Time{})
		return client.Echo([]byte("monitor"))
	}

	if err := tick(); err != nil {
		t.Fatalf("monitor tick on a healthy channel: %v", err)
	}
	for _, ev := range sched {
		switch ev.Kind {
		case faults.LinkDown:
			conn.Close() // the wire is cut
			if err := tick(); err == nil {
				t.Fatalf("monitor missed the disconnect at %v", ev.At)
			}
		case faults.LinkUp:
			conn, client = dial()
			if err := tick(); err != nil {
				t.Fatalf("monitor still failing after reconnect at %v: %v", ev.At, err)
			}
			// The restored channel is fully functional, not just echoing.
			if err := client.Barrier(); err != nil {
				t.Fatalf("barrier after reconnect: %v", err)
			}
		}
	}
}
