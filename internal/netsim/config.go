package netsim

// Config sets fabric and protocol parameters. DefaultConfig matches the
// paper's testbed: 10 Gbps links, RoCEv2-class latencies, PFC and
// DCQCN available, cut-through switching.
type Config struct {
	// LinkBps is link bandwidth in bits/s.
	LinkBps float64
	// PropDelay is per-link propagation (cable + PHY).
	PropDelay Time
	// SwitchLatency is the fixed pipeline latency per switch traversal.
	SwitchLatency Time
	// HostLatency is NIC/driver latency applied at injection and
	// delivery.
	HostLatency Time
	// MTU is the maximum payload bytes per packet.
	MTU int
	// HeaderBytes is per-packet header overhead.
	HeaderBytes int
	// CutThrough lets a switch begin forwarding after the header
	// arrives instead of the full packet.
	CutThrough bool

	// PFC (priority flow control / lossless ethernet).
	PFC     bool
	PFCXoff int // ingress bytes that trigger PAUSE
	PFCXon  int // ingress bytes that trigger RESUME

	// QueueCap bounds each egress queue when PFC is off; overflow drops.
	QueueCap int

	// ECN marking at egress queues (RED-like ramp).
	ECN     bool
	ECNKmin int
	ECNKmax int
	ECNPmax float64

	// CC selects the RoCE congestion-control policy: CCDCQCN,
	// CCTimely (delay-based), or CCPFabric (size-priority scheduling
	// at line rate). Empty defers to the legacy DCQCN flag below, so
	// existing configurations keep their exact behaviour.
	CC string

	// DCQCN end-to-end congestion control for RoCE flows.
	DCQCN bool
	// DCQCNGain is the alpha EWMA gain g.
	DCQCNGain float64
	// DCQCNAIRate is the additive-increase step in bits/s.
	DCQCNAIRate float64
	// DCQCNTimer is the rate-increase period.
	DCQCNTimer Time
	// CNPInterval is the minimum gap between CNPs per flow at the
	// notification point.
	CNPInterval Time

	// Timely (CC = CCTimely) delay-based control parameters: below
	// TimelyTLow RTT the rate grows additively by TimelyAddBps, above
	// TimelyTHigh it decreases multiplicatively by TimelyBeta, and in
	// between the normalised RTT gradient (EWMA weight TimelyAlpha,
	// denominator TimelyMinRTT) steers it.
	TimelyTLow   Time
	TimelyTHigh  Time
	TimelyAddBps float64
	TimelyBeta   float64
	TimelyAlpha  float64
	TimelyMinRTT Time

	// CrossbarBps is the internal crossbar bandwidth of one physical
	// switch (shared by all sub-switches under SDT).
	CrossbarBps float64
	// SDTPerHopExtra is the extra pipeline latency of a projected hop
	// (longer flow tables, tag rewriting) — the source of the paper's
	// 0.03–2 % deviation (Fig. 11).
	SDTPerHopExtra Time

	// Seed drives ECN probabilistic marking and any tie-breaking.
	Seed int64
}

// DefaultConfig returns the testbed-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		LinkBps:       10e9,
		PropDelay:     100 * Nanosecond,
		SwitchLatency: 400 * Nanosecond,
		HostLatency:   850 * Nanosecond,
		MTU:           4096,
		HeaderBytes:   66,
		CutThrough:    true,

		PFC:     true,
		PFCXoff: 80 * 1024,
		PFCXon:  60 * 1024,

		QueueCap: 512 * 1024,

		// ECN thresholds sit well below the PFC Xoff so DCQCN reacts
		// before pauses trigger — the whole point of running DCQCN on
		// lossless fabrics (Zhu et al., SIGCOMM'15).
		ECN:     false,
		ECNKmin: 16 * 1024,
		ECNKmax: 80 * 1024,
		ECNPmax: 0.25,

		DCQCN:       false,
		DCQCNGain:   1.0 / 16,
		DCQCNAIRate: 40e6,
		DCQCNTimer:  55 * Microsecond,
		CNPInterval: 50 * Microsecond,

		// Timely thresholds sit just above the fabric's unloaded RTT
		// (a few µs) and below the RTT a full PFC-Xoff queue adds
		// (~64 µs at 10 Gbps), so the gradient zone covers the
		// operating range PFC would otherwise police.
		TimelyTLow:   25 * Microsecond,
		TimelyTHigh:  250 * Microsecond,
		TimelyAddBps: 50e6,
		TimelyBeta:   0.8,
		TimelyAlpha:  0.875,
		TimelyMinRTT: 10 * Microsecond,

		CrossbarBps:    640e9,
		SDTPerHopExtra: 8 * Nanosecond,

		Seed: 1,
	}
}

// serTime returns the serialisation time of n bytes at bps.
func serTime(n int, bps float64) Time {
	return Time(float64(n*8) / bps * float64(Second))
}
