package netsim

import (
	"fmt"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// fibEquivDigest runs an all-to-one RoCE incast plus a TCP flow on the
// given forwarder and returns a byte-exact digest of everything the
// experiments derive their outputs from: delivery counters, drop/
// pause/ECN totals, per-host goodput, final simulated time, and the
// engine's event count.
func fibEquivDigest(t *testing.T, g *topology.Graph, fwd Forwarder, pfc bool) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PFC = pfc
	cfg.ECN = true
	net, err := NewNetwork(g, fwd, cfg, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	target := hosts[len(hosts)/2]
	for i, h := range hosts {
		if h == target {
			continue
		}
		// Spread tags across VCs to exercise tag-qualified rules.
		net.Host(h).Send(target, i%2, 64<<10)
	}
	net.StartTCP(hosts[0], hosts[len(hosts)-1], 256<<10, nil)
	net.Sim.Run(50 * Millisecond)
	out := fmt.Sprintf("t=%d ev=%d delivered=%d drops=%d pauses=%d ecn=%d\n",
		net.Sim.Now(), net.Sim.Events(), net.DeliveredPkt, net.TotalDrops, net.PausesSent, net.EcnMarks)
	for _, h := range hosts {
		out += fmt.Sprintf("h%d=%d\n", h, net.Host(h).DeliveredBytes)
	}
	return out
}

// TestRouteForwarderTracksRuleMutations pins the manual-strategy
// workflow: rules added AFTER the forwarder (and network) are
// constructed must be visible to forwarding — the forwarder must not
// pin a stale FIB snapshot.
func TestRouteForwarderTracksRuleMutations(t *testing.T) {
	g := topology.Line(2, 1)
	hosts := g.Hosts()
	sws := g.Switches()
	r := routing.NewManualRoutes(g, "mutable", 1)
	// Initially only host 0 -> host 1 is routed.
	addPath := func(src, dst int) {
		sSrc, sDst := g.HostSwitch(src), g.HostSwitch(dst)
		eid := g.EdgeBetween(sSrc, sDst)
		r.AddRule(routing.Rule{Switch: sSrc, Dst: dst, Tag: -1,
			OutPort: g.Edges[eid].PortAt(sSrc), NewTag: -1})
		eh := g.EdgeBetween(sDst, dst)
		r.AddRule(routing.Rule{Switch: sDst, Dst: dst, Tag: -1,
			OutPort: g.Edges[eh].PortAt(sDst), NewTag: -1})
	}
	addPath(hosts[0], hosts[1])
	fwd := NewRouteForwarder(r)
	pkt := &Packet{Dst: hosts[0]}
	if _, _, _, ok := fwd.Forward(sws[1], 1, pkt); ok {
		t.Fatal("reverse path routed before its rules exist")
	}
	addPath(hosts[1], hosts[0])
	if _, _, _, ok := fwd.Forward(sws[1], 1, pkt); !ok {
		t.Fatal("rule added after NewRouteForwarder is invisible to Forward")
	}
}

// TestFIBForwarderMatchesLookup is the whole-simulation differential:
// the compiled-FIB RouteForwarder and the Routes.Lookup reference
// forwarder must produce byte-identical simulations at the same seed on
// every topology family of the evaluation — fat-tree, dragonfly
// (VC transition on the global hop), and torus (in-port-qualified
// dateline rules) — with PFC both on and off.
func TestFIBForwarderMatchesLookup(t *testing.T) {
	cases := []struct {
		g     *topology.Graph
		strat routing.Strategy
	}{
		{topology.FatTree(4), routing.FatTreeDFS{}},
		{topology.Dragonfly(4, 9, 2, 1), routing.DragonflyMinimal{}},
		{topology.Torus2D(4, 4, 1), routing.TorusClue{Dims: 2}},
	}
	for _, c := range cases {
		routes, err := c.strat.Compute(c.g)
		if err != nil {
			t.Fatal(err)
		}
		routes.Prime()
		for _, pfc := range []bool{true, false} {
			ref := fibEquivDigest(t, c.g, LookupForwarder{Routes: routes}, pfc)
			fib := fibEquivDigest(t, c.g, NewRouteForwarder(routes), pfc)
			if ref != fib {
				t.Errorf("%s (pfc=%v): FIB simulation diverged from Lookup reference:\n--- lookup ---\n%s--- fib ---\n%s",
					c.g.Name, pfc, ref, fib)
			}
		}
	}
}
