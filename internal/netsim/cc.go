package netsim

// Pluggable congestion control for the RoCE host plane. Each queue
// pair owns one ccPolicy instance that decides the pacing rate from
// the signals the fabric feeds back — ECN echoes (CNPs), delay echoes
// (acks carrying the send stamp), and timer ticks. The policies:
//
//   - dcqcnCC:    the DCQCN rate law (Zhu et al., SIGCOMM'15) that used
//     to be hard-coded in roceQP — alpha-EWMA multiplicative
//     decrease on CNP, timed additive increase toward line rate.
//   - timelyCC:   delay-based control in the style of TIMELY (Mittal et
//     al., SIGCOMM'15): the receiver acks every data packet
//     echoing its send timestamp, and the sender adjusts rate
//     off the RTT gradient.
//   - lineRateCC: no rate adaptation (legacy DCQCN-off behaviour, and
//     the rate side of pFabric, whose congestion response is
//     size-priority scheduling — see sizePrioClass).
//
// The rate laws proper (dcqcnState.increase/decrease, timelyCC.sample)
// are pure state-machine steps with no engine access, so unit tests
// and the FuzzCCPolicy target drive them directly.

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// Selectable congestion-control policy names (Config.CC).
const (
	// CCDCQCN is ECN-driven DCQCN (requires ECN marking to act).
	CCDCQCN = "dcqcn"
	// CCTimely is delay-based CC off per-packet RTT echoes.
	CCTimely = "timely"
	// CCPFabric is size-aware priority scheduling at line rate.
	CCPFabric = "pfabric"
)

// CCPolicies lists the selectable congestion-control policies.
func CCPolicies() []string { return []string{CCDCQCN, CCTimely, CCPFabric} }

// ccKind is the resolved policy of one fabric.
type ccKind int

const (
	ccNone ccKind = iota
	ccDCQCN
	ccTimely
	ccPFabric
)

// ccKindOf resolves Config.CC, deferring to the legacy DCQCN flag when
// the string knob is unset so existing configurations keep their exact
// behaviour.
func ccKindOf(cfg *Config) (ccKind, error) {
	switch cfg.CC {
	case "":
		if cfg.DCQCN {
			return ccDCQCN, nil
		}
		return ccNone, nil
	case CCDCQCN:
		return ccDCQCN, nil
	case CCTimely:
		return ccTimely, nil
	case CCPFabric:
		return ccPFabric, nil
	}
	return ccNone, fmt.Errorf("netsim: unknown congestion-control policy %q (valid: %s)",
		cfg.CC, strings.Join(CCPolicies(), ", "))
}

// ccPolicy is the per-QP congestion-control seam. The QP calls Wake
// before reading Rate for an emission (so parked timer state can catch
// up), Sent after scheduling one, and routes fabric signals to CNP /
// Ack / Tick. Implementations may schedule evQPTick events on q.
type ccPolicy interface {
	// Wake runs when the QP is about to emit after possible idleness.
	Wake(q *roceQP, now Time)
	// Rate returns the current pacing rate in bits/s.
	Rate() float64
	// Sent runs after each data-packet emission is scheduled.
	Sent(q *roceQP, now Time)
	// CNP handles an ECN congestion-notification packet.
	CNP(q *roceQP, now Time)
	// Ack handles a delay echo; rtt is the measured send→ack latency.
	Ack(q *roceQP, now Time, rtt Time)
	// Tick handles the policy's evQPTick timer event.
	Tick(q *roceQP, now Time)
}

// newQPCC builds the fabric's configured policy for one QP.
func (n *Network) newQPCC() ccPolicy {
	cfg := &n.Cfg
	switch n.cc {
	case ccDCQCN:
		return &dcqcnCC{dcqcnState: newDCQCNState(cfg), period: cfg.DCQCNTimer}
	case ccTimely:
		return newTimelyCC(cfg)
	default:
		return lineRateCC{line: cfg.LinkBps}
	}
}

// lineRateCC paces at line rate and ignores every signal: the policy
// for CC off, and for pFabric (rate stays at line; the congestion
// response is the strict-priority scheduling of size-stamped classes).
type lineRateCC struct{ line float64 }

func (c lineRateCC) Wake(*roceQP, Time)      {}
func (c lineRateCC) Rate() float64           { return c.line }
func (c lineRateCC) Sent(*roceQP, Time)      {}
func (c lineRateCC) CNP(*roceQP, Time)       {}
func (c lineRateCC) Ack(*roceQP, Time, Time) {}
func (c lineRateCC) Tick(*roceQP, Time)      {}

// dcqcnState is the pure DCQCN rate law: current rate, the target the
// increase steps recover toward, and the alpha congestion estimate.
type dcqcnState struct {
	line   float64 // link rate, the cap
	gain   float64 // alpha EWMA gain g
	ai     float64 // additive-increase step, bits/s
	rate   float64
	target float64
	alpha  float64
}

func newDCQCNState(cfg *Config) dcqcnState {
	return dcqcnState{
		line: cfg.LinkBps, gain: cfg.DCQCNGain, ai: cfg.DCQCNAIRate,
		rate: cfg.LinkBps, target: cfg.LinkBps, alpha: 1,
	}
}

// decrease applies the CNP reaction: bump alpha toward 1, remember the
// pre-cut rate as the recovery target, cut multiplicatively, and floor
// at 1% of line so a flow can always probe its way back.
func (s *dcqcnState) decrease() {
	s.alpha = (1-s.gain)*s.alpha + s.gain
	s.target = s.rate
	s.rate *= 1 - s.alpha/2
	if min := s.line / 100; s.rate < min {
		s.rate = min
	}
}

// increase applies one rate-increase tick: additive target growth
// clamped at line, rate averaged halfway toward it, alpha decayed.
func (s *dcqcnState) increase() {
	s.target += s.ai
	if s.target > s.line {
		s.target = s.line
	}
	s.rate = (s.rate + s.target) / 2
	s.alpha *= 1 - s.gain
}

// recovered reports whether an idle QP's timer may disarm: rate is
// back within 1% of line.
func (s *dcqcnState) recovered() bool { return s.rate >= s.line*0.99 }

// dcqcnCC runs the DCQCN law on the engine's evQPTick timer, with the
// idle fix: when the QP has nothing to send, the timer parks instead
// of self-rescheduling every period until recovery (which burned one
// event per 55µs per idle QP). Parked state records the absolute next
// tick time; Wake replays the elided ticks on the next emission or
// CNP, so the rate trajectory is exactly what the real events would
// have produced.
type dcqcnCC struct {
	dcqcnState
	period  Time
	timerOn bool
	// parked: timerOn is logically true but no event is scheduled;
	// nextTick is the absolute time the next virtual tick fires.
	parked   bool
	nextTick Time
}

func (c *dcqcnCC) Rate() float64 { return c.rate }

func (c *dcqcnCC) Wake(q *roceQP, now Time) { c.catchUp(q, now) }

// catchUp replays ticks elided while parked. Ticks strictly before now
// apply immediately (a tick at exactly now would, as a real event,
// fire after the currently executing handler, so it stays pending); if
// the QP is still below recovery the real timer re-arms at the
// original phase, otherwise it disarms just as a real tick would have.
func (c *dcqcnCC) catchUp(q *roceQP, now Time) {
	if !c.parked {
		return
	}
	for c.nextTick < now {
		c.increase()
		if c.recovered() {
			c.parked = false
			c.timerOn = false
			return
		}
		c.nextTick += c.period
	}
	c.parked = false
	q.h.net.Sim.Schedule(c.nextTick, q, engine.Event{Kind: evQPTick})
}

func (c *dcqcnCC) Sent(q *roceQP, now Time) { c.arm(q) }

func (c *dcqcnCC) arm(q *roceQP) {
	if c.timerOn {
		return
	}
	c.timerOn = true
	q.h.net.Sim.ScheduleAfter(c.period, q, engine.Event{Kind: evQPTick})
}

func (c *dcqcnCC) CNP(q *roceQP, now Time) {
	c.catchUp(q, now)
	c.decrease()
	c.arm(q)
}

func (c *dcqcnCC) Ack(*roceQP, Time, Time) {}

func (c *dcqcnCC) Tick(q *roceQP, now Time) {
	c.increase()
	if len(q.msgs) == 0 {
		if c.recovered() {
			c.timerOn = false
			return
		}
		// Idle but still below line: park instead of rescheduling —
		// Wake replays the ticks the engine never has to run.
		c.parked = true
		c.nextTick = now + c.period
		return
	}
	q.h.net.Sim.ScheduleAfter(c.period, q, engine.Event{Kind: evQPTick})
}

// timelyCC is delay-based congestion control in the style of TIMELY:
// the receiver echoes every data packet's send stamp on a control-class
// ack, and the sender steers rate off the RTT and its gradient —
// additive increase below TLow, multiplicative decrease above THigh,
// and gradient-proportional decrease (or hyperactive increase after a
// run of negative gradients) in between.
type timelyCC struct {
	line   float64
	tLow   Time
	tHigh  Time
	add    float64 // additive step, bits/s
	beta   float64 // multiplicative decrease factor
	ewma   float64 // RTT-gradient EWMA weight
	minRTT Time    // gradient normalisation denominator

	rate    float64
	prevRTT Time
	rttDiff float64
	negRun  int // consecutive non-positive gradients (HAI trigger)
}

func newTimelyCC(cfg *Config) *timelyCC {
	return &timelyCC{
		line: cfg.LinkBps,
		tLow: cfg.TimelyTLow, tHigh: cfg.TimelyTHigh,
		add: cfg.TimelyAddBps, beta: cfg.TimelyBeta,
		ewma: cfg.TimelyAlpha, minRTT: cfg.TimelyMinRTT,
		rate: cfg.LinkBps,
	}
}

// sample applies the gradient law to one RTT measurement. Pure (no
// engine access): the boundary tests and FuzzCCPolicy drive it with
// arbitrary RTT sequences.
func (c *timelyCC) sample(rtt Time) {
	if rtt <= 0 {
		return
	}
	if c.prevRTT == 0 {
		c.prevRTT = rtt
		return
	}
	diff := float64(rtt - c.prevRTT)
	c.prevRTT = rtt
	c.rttDiff = (1-c.ewma)*c.rttDiff + c.ewma*diff
	grad := c.rttDiff / float64(c.minRTT)
	switch {
	case rtt < c.tLow:
		c.negRun = 0
		c.rate += c.add
	case rtt > c.tHigh:
		c.negRun = 0
		c.rate *= 1 - c.beta*(1-float64(c.tHigh)/float64(rtt))
	case grad <= 0:
		c.negRun++
		step := c.add
		if c.negRun >= 5 {
			step = 5 * c.add // hyperactive increase
		}
		c.rate += step
	default:
		c.negRun = 0
		if grad > 1 {
			grad = 1
		}
		c.rate *= 1 - c.beta*grad
	}
	if c.rate > c.line {
		c.rate = c.line
	}
	if min := c.line / 100; c.rate < min {
		c.rate = min
	}
}

func (c *timelyCC) Wake(*roceQP, Time) {}
func (c *timelyCC) Rate() float64      { return c.rate }
func (c *timelyCC) Sent(*roceQP, Time) {}
func (c *timelyCC) CNP(*roceQP, Time)  {}
func (c *timelyCC) Ack(q *roceQP, now Time, rtt Time) {
	c.sample(rtt)
}
func (c *timelyCC) Tick(*roceQP, Time) {}

// sizePrioClass maps a message's remaining bytes (current packet
// included) to a PFC data class, pFabric-style: the less left to
// send, the higher the class, so strict-priority dequeue approximates
// shortest-remaining-first. Buckets are powers of 4 of the MTU across
// the data classes (ctrlClass-1 down to 0); control traffic keeps its
// own unpaused top class. This replaces VC-tag class separation, so it
// suits up/down-routed fabrics (fat-tree) whose deadlock freedom does
// not rely on VC transitions.
func sizePrioClass(remaining, mtu int) int {
	cls := ctrlClass - 1
	for thresh := mtu; cls > 0 && remaining > thresh; cls-- {
		thresh *= 4
	}
	return cls
}
