package netsim

// The flow application layer drives open-loop synthetic traffic:
// individually timed flows injected at absolute simulation times,
// independent of any completion (the datacenter-workload model, in
// contrast to the closed-loop MPI trace replay of app.go). A FlowApp
// never materialises per-op rank programs — one schedule entry per
// flow — so million-flow runs cost O(flows) memory, and it records
// per-flow completion times for FCT analysis.

import (
	"sort"

	"repro/internal/engine"
)

// Flow is one open-loop transfer. Src and Dst are rank indices into
// the FlowApp's host list (exactly like Op.Peer in trace replay). The
// End/Completed fields are results, written in place by the FlowApp
// that runs the schedule.
type Flow struct {
	Src, Dst int
	Bytes    int
	// Start is the absolute injection time.
	Start Time
	// Tag is the message tag carried on the wire; it must be unique
	// per (Src, Dst) pair so concurrent flows cannot be confused at
	// the receiver's mailbox. Generators use the flow index.
	Tag int

	// End is the completion time at the receiver (valid if Completed).
	End Time
	// Completed reports whether the flow finished delivery.
	Completed bool
}

// FCT returns the flow completion time, or -1 if incomplete.
func (f *Flow) FCT() Time {
	if !f.Completed {
		return -1
	}
	return f.End - f.Start
}

// FlowApp injects an open-loop flow schedule into a network and
// records completions. It writes results into the caller's Flow slice,
// so the schedule can be inspected (and bucketed into FCT statistics)
// after the run.
type FlowApp struct {
	net    *Network
	hosts  []int
	flows  []Flow
	order  []int32 // flow indices sorted by start time
	next   int     // next entry of order to schedule
	nDone  int
	last   Time
	onDone func(last Time)
}

// NewFlowApp binds a flow schedule to hosts. hosts[i] is the vertex of
// rank i; every flow's Src/Dst must be a valid rank. The flows slice
// is retained and its result fields are written during the run.
func NewFlowApp(n *Network, hosts []int, flows []Flow, onDone func(last Time)) *FlowApp {
	a := &FlowApp{net: n, hosts: hosts, flows: flows, onDone: onDone}
	type matchKey struct{ src, dst, tag int }
	seen := make(map[matchKey]struct{}, len(flows))
	for i := range flows {
		f := &flows[i]
		if f.Src < 0 || f.Src >= len(hosts) || f.Dst < 0 || f.Dst >= len(hosts) {
			panic("netsim: flow rank out of range")
		}
		if f.Src == f.Dst {
			panic("netsim: flow sends to itself")
		}
		if n.Host(hosts[f.Src]) == nil || n.Host(hosts[f.Dst]) == nil {
			panic("netsim: flow host vertex is not a host")
		}
		// The receiver's mailbox matches on (src, tag): a duplicate
		// would silently swap the two flows' completion records.
		k := matchKey{f.Src, f.Dst, f.Tag}
		if _, dup := seen[k]; dup {
			panic("netsim: duplicate flow (src, dst, tag)")
		}
		seen[k] = struct{}{}
		f.End, f.Completed = 0, false
	}
	// Injection order is by start time; ties break by flow index so
	// the schedule is deterministic regardless of input order.
	a.order = make([]int32, len(flows))
	for i := range a.order {
		a.order[i] = int32(i)
	}
	sort.SliceStable(a.order, func(x, y int) bool {
		return flows[a.order[x]].Start < flows[a.order[y]].Start
	})
	return a
}

// Start registers every flow's receive continuation and arms the first
// injection. Only one injection event is pending at a time — the chain
// schedules its successor — so the event heap stays O(1) in the flow
// count.
func (a *FlowApp) Start() {
	for i := range a.flows {
		i := i
		f := &a.flows[i]
		dst := a.net.Host(a.hosts[f.Dst])
		dst.Recv(a.hosts[f.Src], f.Tag, func() { a.complete(i) })
	}
	a.armNext()
}

// armNext schedules the next pending injection (flows already due
// inject in order at the current time).
func (a *FlowApp) armNext() {
	if a.next >= len(a.order) {
		return
	}
	f := &a.flows[a.order[a.next]]
	at := f.Start
	if now := a.net.Sim.Now(); at < now {
		at = now
	}
	a.net.Sim.Schedule(at, a, engine.Event{Kind: evFlowStart, A: int64(a.next)})
}

// OnEvent injects the due flow and chains to the next one.
func (a *FlowApp) OnEvent(now Time, ev engine.Event) {
	if ev.Kind != evFlowStart {
		return
	}
	f := &a.flows[a.order[ev.A]]
	a.net.Host(a.hosts[f.Src]).Send(a.hosts[f.Dst], f.Tag, f.Bytes)
	a.next++
	a.armNext()
}

// complete records one flow's delivery.
func (a *FlowApp) complete(i int) {
	f := &a.flows[i]
	if f.Completed {
		return
	}
	f.Completed = true
	f.End = a.net.Sim.Now()
	a.nDone++
	if f.End > a.last {
		a.last = f.End
	}
	if a.nDone == len(a.flows) && a.onDone != nil {
		a.onDone(a.last)
	}
}

// Completed reports how many flows have finished.
func (a *FlowApp) Completed() int { return a.nDone }

// Outstanding reports how many flows have not finished.
func (a *FlowApp) Outstanding() int { return len(a.flows) - a.nDone }

// LastCompletion returns the time of the latest completed flow (0 when
// none completed) regardless of whether the whole schedule finished —
// the partial-completion ACT a fault run reports when packet loss
// leaves flows incomplete.
func (a *FlowApp) LastCompletion() Time { return a.last }

// ACT returns the time the last flow completed, or -1 while any flow
// is outstanding — the same contract as App.ACT, so the run loop
// treats trace replay and flow schedules uniformly. An empty schedule
// is complete at time 0.
func (a *FlowApp) ACT() Time {
	if a.nDone < len(a.flows) {
		return -1
	}
	return a.last
}
