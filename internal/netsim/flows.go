package netsim

// The flow application layer drives open-loop synthetic traffic:
// individually timed flows injected at absolute simulation times,
// independent of any completion (the datacenter-workload model, in
// contrast to the closed-loop MPI trace replay of app.go). A FlowApp
// never materialises per-op rank programs — one schedule entry per
// flow — so million-flow runs cost O(flows) memory, and it records
// per-flow completion times for FCT analysis.

import (
	"sort"
	"sync/atomic"

	"repro/internal/engine"
)

// Flow is one open-loop transfer. Src and Dst are rank indices into
// the FlowApp's host list (exactly like Op.Peer in trace replay). The
// End/Completed fields are results, written in place by the FlowApp
// that runs the schedule.
type Flow struct {
	Src, Dst int
	Bytes    int
	// Start is the absolute injection time.
	Start Time
	// Tag is the message tag carried on the wire; it must be unique
	// per (Src, Dst) pair so concurrent flows cannot be confused at
	// the receiver's mailbox. Generators use the flow index.
	Tag int

	// End is the completion time at the receiver (valid if Completed).
	End Time
	// Completed reports whether the flow finished delivery.
	Completed bool
}

// FCT returns the flow completion time, or -1 if incomplete.
func (f *Flow) FCT() Time {
	if !f.Completed {
		return -1
	}
	return f.End - f.Start
}

// FlowApp injects an open-loop flow schedule into a network and
// records completions. It writes results into the caller's Flow slice,
// so the schedule can be inspected (and bucketed into FCT statistics)
// after the run.
//
// In a sharded fabric injections split into one chain per shard (each
// flow injects on its source host's engine) and completions land on
// the destination host's engine; per-flow result fields are only ever
// written by the destination shard, and the shared completion tallies
// (nDone, last) are atomic.
type FlowApp struct {
	net    *Network
	hosts  []int
	flows  []Flow
	order  []int32 // flow indices sorted by start time
	chains []*flowChain
	nDone  atomic.Int64
	last   atomic.Int64 // Time of the latest completion
	onDone func(last Time)
}

// flowChain is one shard's injection chain: the slice of the sorted
// start order whose source hosts live on chain.net, injected by a
// self-chaining event so each engine holds at most one pending
// injection. A serial fabric has exactly one chain over the full
// order, reproducing the pre-shard schedule event-for-event.
type flowChain struct {
	app   *FlowApp
	net   *Network
	order []int32
	next  int
}

// NewFlowApp binds a flow schedule to hosts. hosts[i] is the vertex of
// rank i; every flow's Src/Dst must be a valid rank. The flows slice
// is retained and its result fields are written during the run.
func NewFlowApp(n *Network, hosts []int, flows []Flow, onDone func(last Time)) *FlowApp {
	a := &FlowApp{net: n, hosts: hosts, flows: flows, onDone: onDone}
	type matchKey struct{ src, dst, tag int }
	seen := make(map[matchKey]struct{}, len(flows))
	for i := range flows {
		f := &flows[i]
		if f.Src < 0 || f.Src >= len(hosts) || f.Dst < 0 || f.Dst >= len(hosts) {
			panic("netsim: flow rank out of range")
		}
		if f.Src == f.Dst {
			panic("netsim: flow sends to itself")
		}
		if n.Host(hosts[f.Src]) == nil || n.Host(hosts[f.Dst]) == nil {
			panic("netsim: flow host vertex is not a host")
		}
		// The receiver's mailbox matches on (src, tag): a duplicate
		// would silently swap the two flows' completion records.
		k := matchKey{f.Src, f.Dst, f.Tag}
		if _, dup := seen[k]; dup {
			panic("netsim: duplicate flow (src, dst, tag)")
		}
		seen[k] = struct{}{}
		f.End, f.Completed = 0, false
	}
	// Injection order is by start time; ties break by flow index so
	// the schedule is deterministic regardless of input order.
	a.order = make([]int32, len(flows))
	for i := range a.order {
		a.order[i] = int32(i)
	}
	sort.SliceStable(a.order, func(x, y int) bool {
		return flows[a.order[x]].Start < flows[a.order[y]].Start
	})
	return a
}

// Start registers every flow's receive continuation and arms the first
// injection of every chain. Only one injection event is pending per
// engine at a time — each chain schedules its successor — so the event
// heap stays O(1) in the flow count.
func (a *FlowApp) Start() {
	for i := range a.flows {
		i := i
		f := &a.flows[i]
		dst := a.net.Host(a.hosts[f.Dst])
		dst.Recv(a.hosts[f.Src], f.Tag, func() { a.complete(i, dst) })
	}
	// Group the sorted order into per-engine chains (first-appearance
	// order, deterministic). One shard => one chain over the whole
	// order, identical to the pre-shard single-chain schedule.
	for _, fi := range a.order {
		src := a.net.Host(a.hosts[a.flows[fi].Src]).net
		var c *flowChain
		for _, cc := range a.chains {
			if cc.net == src {
				c = cc
				break
			}
		}
		if c == nil {
			c = &flowChain{app: a, net: src}
			a.chains = append(a.chains, c)
		}
		c.order = append(c.order, fi)
	}
	for _, c := range a.chains {
		c.armNext()
	}
}

// armNext schedules the chain's next pending injection (flows already
// due inject in order at the current time).
func (c *flowChain) armNext() {
	if c.next >= len(c.order) {
		return
	}
	f := &c.app.flows[c.order[c.next]]
	at := f.Start
	if now := c.net.Sim.Now(); at < now {
		at = now
	}
	c.net.Sim.Schedule(at, c, engine.Event{Kind: evFlowStart, A: int64(c.next)})
}

// OnEvent injects the due flow and chains to the next one.
func (c *flowChain) OnEvent(now Time, ev engine.Event) {
	if ev.Kind != evFlowStart {
		return
	}
	a := c.app
	f := &a.flows[c.order[ev.A]]
	a.net.Host(a.hosts[f.Src]).Send(a.hosts[f.Dst], f.Tag, f.Bytes)
	c.next++
	c.armNext()
}

// complete records one flow's delivery at its destination host (whose
// engine's clock stamps the completion).
func (a *FlowApp) complete(i int, dst *Host) {
	f := &a.flows[i]
	if f.Completed {
		return
	}
	f.Completed = true
	f.End = dst.net.Sim.Now()
	for {
		cur := a.last.Load()
		if int64(f.End) <= cur || a.last.CompareAndSwap(cur, int64(f.End)) {
			break
		}
	}
	if a.nDone.Add(1) == int64(len(a.flows)) && a.onDone != nil {
		a.onDone(Time(a.last.Load()))
	}
}

// Completed reports how many flows have finished.
func (a *FlowApp) Completed() int { return int(a.nDone.Load()) }

// Outstanding reports how many flows have not finished.
func (a *FlowApp) Outstanding() int { return len(a.flows) - a.Completed() }

// LastCompletion returns the time of the latest completed flow (0 when
// none completed) regardless of whether the whole schedule finished —
// the partial-completion ACT a fault run reports when packet loss
// leaves flows incomplete.
func (a *FlowApp) LastCompletion() Time { return Time(a.last.Load()) }

// ACT returns the time the last flow completed, or -1 while any flow
// is outstanding — the same contract as App.ACT, so the run loop
// treats trace replay and flow schedules uniformly. An empty schedule
// is complete at time 0.
func (a *FlowApp) ACT() Time {
	if a.Completed() < len(a.flows) {
		return -1
	}
	return Time(a.last.Load())
}
