package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestZeroByteMessageDelivers(t *testing.T) {
	net, g := buildLine(t, 2, 1, DefaultConfig())
	hosts := g.Hosts()
	done := false
	net.Host(hosts[0]).Send(hosts[1], 42, 0)
	net.Host(hosts[1]).Recv(hosts[0], 42, func() { done = true })
	net.Sim.Run(0)
	if !done {
		t.Fatal("zero-byte message never delivered")
	}
}

func TestMessagesOrderedPerQP(t *testing.T) {
	// Messages on one QP (same src/dst) must complete in send order.
	net, g := buildLine(t, 2, 1, DefaultConfig())
	hosts := g.Hosts()
	var order []int
	for i := 0; i < 5; i++ {
		tag := 100 + i
		net.Host(hosts[0]).Send(hosts[1], tag, 64*1024)
	}
	for i := 0; i < 5; i++ {
		tag := 100 + i
		idx := i
		net.Host(hosts[1]).Recv(hosts[0], tag, func() { order = append(order, idx) })
	}
	net.Sim.Run(0)
	if len(order) != 5 {
		t.Fatalf("delivered %d of 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v, want FIFO", order)
		}
	}
}

func TestBidirectionalFullDuplex(t *testing.T) {
	// Full-duplex links: simultaneous opposite transfers must each run
	// near line rate (no shared-medium artefact).
	net, g := buildLine(t, 2, 1, DefaultConfig())
	hosts := g.Hosts()
	const bytes = 4 << 20
	var doneA, doneB Time
	net.Host(hosts[0]).Send(hosts[1], 1, bytes)
	net.Host(hosts[1]).Send(hosts[0], 2, bytes)
	net.Host(hosts[1]).Recv(hosts[0], 1, func() { doneA = net.Sim.Now() })
	net.Host(hosts[0]).Recv(hosts[1], 2, func() { doneB = net.Sim.Now() })
	net.Sim.Run(0)
	if doneA == 0 || doneB == 0 {
		t.Fatal("transfers incomplete")
	}
	// Each direction alone takes ~3.4 ms; full duplex should not double it.
	limit := 5 * Millisecond
	if doneA > limit || doneB > limit {
		t.Errorf("duplex transfers too slow: %v / %v", doneA, doneB)
	}
}

func TestManyQPFanOut(t *testing.T) {
	// One host sending to 7 receivers: egress serialises, everything
	// arrives, aggregate equals what one 10G NIC can emit.
	net, g := buildLine(t, 8, 1, DefaultConfig())
	hosts := g.Hosts()
	const per = 1 << 20
	for i := 1; i < 8; i++ {
		net.Host(hosts[0]).Send(hosts[i], 9, per)
	}
	end := net.Sim.Run(0)
	var total int64
	for i := 1; i < 8; i++ {
		total += net.Host(hosts[i]).DeliveredBytes
	}
	if total != 7*per {
		t.Fatalf("delivered %d, want %d", total, 7*per)
	}
	// 7 MiB through one 10G NIC needs at least ~5.9 ms.
	if end < 5*Millisecond {
		t.Errorf("fan-out finished implausibly fast: %v", end)
	}
}

func TestPFCHysteresis(t *testing.T) {
	// Xoff must exceed Xon or the fabric flaps; with defaults the
	// incast must pause and then fully resume (all bytes delivered).
	cfg := DefaultConfig()
	if cfg.PFCXoff <= cfg.PFCXon {
		t.Fatal("default thresholds not hysteretic")
	}
	net, g := buildLine(t, 4, 2, cfg)
	hosts := g.Hosts()
	target := hosts[0]
	var sent int64
	for _, h := range hosts[1:] {
		net.Host(h).Send(target, 5, 3<<20)
		sent += 3 << 20
	}
	net.Sim.Run(0)
	if net.PausesSent == 0 {
		t.Error("no pauses under 7:1 incast")
	}
	if got := net.Host(target).DeliveredBytes; got != sent {
		t.Errorf("delivered %d of %d after pause/resume cycles", got, sent)
	}
}

func TestCrossbarTransitsCounted(t *testing.T) {
	net, g := buildLine(t, 3, 1, DefaultConfig())
	hosts := g.Hosts()
	net.Host(hosts[0]).Send(hosts[2], 1, 4096+100) // 2 packets
	net.Sim.Run(0)
	total := int64(0)
	for _, v := range g.Switches() {
		total += net.Switch(v).crossbar.Transits
	}
	// 2 packets x 3 switches.
	if total != 6 {
		t.Errorf("crossbar transits = %d, want 6", total)
	}
}

func TestConfigVariantsStillDeliver(t *testing.T) {
	base := DefaultConfig()
	variants := []func(*Config){
		func(c *Config) { c.CutThrough = false },
		func(c *Config) { c.PFC = false },
		func(c *Config) { c.ECN = true; c.DCQCN = true },
		func(c *Config) { c.MTU = 1500 },
		func(c *Config) { c.PropDelay = 5 * Microsecond },
	}
	for i, v := range variants {
		cfg := base
		v(&cfg)
		net, g := buildLine(t, 4, 1, cfg)
		hosts := g.Hosts()
		net.Host(hosts[0]).Send(hosts[3], 1, 1<<20)
		net.Sim.Run(0)
		if net.Host(hosts[3]).DeliveredBytes != 1<<20 {
			t.Errorf("variant %d: delivered %d", i, net.Host(hosts[3]).DeliveredBytes)
		}
	}
}

// Property: any message size and hop count delivers exactly its bytes
// on a lossless line.
func TestQuickDeliveryExact(t *testing.T) {
	f := func(szRaw uint32, hopsRaw uint8) bool {
		size := int(szRaw % (1 << 20))
		hops := 2 + int(hopsRaw)%6
		g := topology.Line(hops, 1)
		routes, err := routing.ShortestPath{}.Compute(g)
		if err != nil {
			return false
		}
		net, err := NewNetwork(g, NewRouteForwarder(routes), DefaultConfig(), nil, false)
		if err != nil {
			return false
		}
		hosts := g.Hosts()
		net.Host(hosts[0]).Send(hosts[hops-1], 1, size)
		net.Sim.Run(0)
		return net.Host(hosts[hops-1]).DeliveredBytes == int64(size) && net.TotalDrops == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: RTT is monotone non-decreasing in message size on a fixed
// path.
func TestQuickRTTMonotoneInSize(t *testing.T) {
	g := topology.Line(4, 1)
	routes, _ := routing.ShortestPath{}.Compute(g)
	rtt := func(bytes int) Time {
		net, err := NewNetwork(g, NewRouteForwarder(routes), DefaultConfig(), nil, false)
		if err != nil {
			return -1
		}
		hosts := g.Hosts()
		return MeanRTT(MeasurePingpong(net, hosts[0], hosts[3], bytes, 3))
	}
	prev := Time(-1)
	for _, b := range []int{0, 64, 1024, 16 << 10, 256 << 10} {
		r := rtt(b)
		if r < prev {
			t.Fatalf("RTT decreased from %v to %v at %dB", prev, r, b)
		}
		prev = r
	}
}
