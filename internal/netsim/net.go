package netsim

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/engine"
	"repro/internal/routing"
	"repro/internal/topology"
)

// PktKind distinguishes packet roles.
type PktKind int

const (
	// Data carries flow payload.
	Data PktKind = iota
	// Ack is a transport acknowledgement (TCP cumulative or RoCE msg).
	Ack
	// Cnp is a DCQCN congestion notification packet.
	Cnp
)

// Packet is the unit of simulation.
type Packet struct {
	ID   int64
	Kind PktKind
	Src  int // source host vertex ID
	Dst  int // destination host vertex ID
	Size int // bytes on the wire (payload + header)
	Tag  int // virtual-channel tag, rewritten by rules
	Prio int // PFC priority class: 0 = lossless data, 1 = control
	ECN  bool
	Flow int64 // flow / message identifier
	Seq  int64 // byte offset within the flow

	Len int // payload bytes

	// AppTag is the application (MPI) tag for message matching; unlike
	// Tag it is never rewritten in flight.
	AppTag int
	// Last marks the final packet of a message; MsgBytes carries the
	// message's total payload size for reassembly.
	Last     bool
	MsgBytes int

	// TS is the send timestamp stamped at QP emission and echoed back
	// on delay-CC acks; the sender derives its RTT sample from it.
	TS Time

	inPort   int // bookkeeping: ingress port at current switch
	arrClass int // bookkeeping: wire class the packet arrived with
	AckSeq   int64
	AckECN   bool
}

// packetPool recycles Packet records across the whole process —
// simulations running in parallel workers share it safely.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// allocPacket returns a pooled Packet. Every creation site fully
// reassigns the struct (`*p = Packet{...}`), so no stale field leaks.
func allocPacket() *Packet { return packetPool.Get().(*Packet) }

// release returns a packet to the pool. Only terminal owners call it:
// the arrival handler after host delivery, and the two drop sites.
func (p *Packet) release() { packetPool.Put(p) }

// Crossbar models the internal switching fabric of one physical switch.
// Under SDT several sub-switches share one crossbar, so its (slight)
// serialisation and the projected pipeline overhead are the physical
// source of the Fig. 11 deviation.
type Crossbar struct {
	bps       float64
	extra     Time
	busyUntil Time
	// Transits counts crossbar passes (telemetry).
	Transits int64
}

// delay returns the crossbar contribution for a packet of n bytes
// arriving now, advancing the busy horizon.
func (x *Crossbar) delay(now Time, n int) Time {
	svc := serTime(n, x.bps)
	start := now
	if x.busyUntil > start {
		start = x.busyUntil
	}
	x.busyUntil = start + svc
	x.Transits++
	return (start - now) + svc + x.extra
}

// DirLink is one direction of a full-duplex cable.
type DirLink struct {
	id        int
	to        deviceRef
	bps       float64
	prop      Time
	busyUntil Time
	// TxBytes accumulates transmitted payloadful bytes (Network Monitor).
	TxBytes int64
	// EdgeID is the logical edge this link realises.
	EdgeID int
	// src is the OutPort feeding this link (flushed when the link is
	// cut).
	src *OutPort
	// down marks a failed link: packets entering or traversing it are
	// dropped into Network.FaultDrops.
	down bool
	// remote is the receiving device's shard network when this link is
	// a cut edge of a sharded fabric (nil in serial fabrics and for
	// shard-local links): wire arrivals on it travel through the
	// shard hand-off instead of the local event queue.
	remote *Network
}

type deviceRef struct {
	host   *Host // exactly one of host/sw set
	sw     *SimSwitch
	inPort int // ingress port at the receiving device
}

// fifo is a byte-accounted packet queue over a power-of-two ring
// buffer: pops release the head slot immediately (no backing-array
// retention) and steady-state push/pop allocates nothing.
type fifo struct {
	ring  []*Packet // power-of-two capacity
	head  int
	n     int
	bytes int
}

func (q *fifo) push(p *Packet) {
	if q.n == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = p
	q.n++
	q.bytes += p.Size
}

func (q *fifo) grow() {
	ncap := len(q.ring) * 2
	if ncap == 0 {
		ncap = 8
	}
	next := make([]*Packet, ncap)
	for i := 0; i < q.n; i++ {
		next[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
	}
	q.ring = next
	q.head = 0
}

func (q *fifo) pop() *Packet {
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.n--
	q.bytes -= p.Size
	return p
}

func (q *fifo) empty() bool { return q.n == 0 }

// nPrio is the number of PFC traffic classes. Data packets travel in
// the class of their current VC tag (classes 0..nPrio-2) — on real
// RoCE fabrics, virtual channels map to PFC priorities, and deadlock
// avoidance by "changing VC" (Table III) only works when each VC has
// its own lossless buffer. The top class carries control traffic
// (ACK/CNP) and is never paused.
const nPrio = 8

// Event payloads pack the priority class into 4 bits (the `<<4 | cls`
// encodings in tryTransmit and switch receive); this guard breaks the
// build if nPrio ever outgrows that field.
var _ [16 - nPrio]struct{}

// ctrlClass is the unpaused control class.
const ctrlClass = nPrio - 1

// pfcClass maps a packet to its traffic class from its current tag.
func pfcClass(pkt *Packet) int {
	if pkt.Kind != Data {
		return ctrlClass
	}
	c := pkt.Tag
	if c < 0 {
		c = 0
	}
	if c > nPrio-2 {
		c = c % (nPrio - 1)
	}
	return c
}

// OutPort is an egress port with per-priority queues feeding a link.
type OutPort struct {
	link    *DirLink
	queues  [nPrio]fifo
	paused  [nPrio]bool
	sending bool
	// ownerCache is the switch owning this port (nil for host NICs);
	// used for PFC ingress accounting on dequeue.
	ownerCache *SimSwitch
	// hostOwner is the host owning this NIC port (nil for switch
	// ports); its QPs are kicked when the queue drains so DCQCN pacing
	// is enforced at the wire, not just at enqueue.
	hostOwner *Host
	// net is the shard network owning this port's device. In a serial
	// fabric it is the one Network; in a sharded fabric PFC pause and
	// resume events addressed to this port must execute on this
	// network's engine.
	net *Network
	// Drops counts tail drops (PFC off).
	Drops int64
}

func (o *OutPort) queuedBytes() int {
	n := 0
	for i := range o.queues {
		n += o.queues[i].bytes
	}
	return n
}

// queuedDataBytes returns queued bytes across the pausable data
// classes only (control excluded) — the NIC backlog the QP self-clock
// watches, whichever class size-priority stamping routed packets to.
func (o *OutPort) queuedDataBytes() int {
	n := 0
	for i := 0; i < ctrlClass; i++ {
		n += o.queues[i].bytes
	}
	return n
}

// SimSwitch is one logical switch in the simulated fabric.
type SimSwitch struct {
	vertex   int // topology vertex ID
	net      *Network
	crossbar *Crossbar
	// outPorts indexed by logical port number (1-based; 0 unused).
	outPorts []*OutPort
	// upstream maps ingress port -> the OutPort at the far device that
	// feeds it (for PFC pause signalling).
	upstream []*OutPort
	// ingressBytes tracks buffered bytes per (ingress port, priority)
	// for PFC thresholds.
	ingressBytes [][nPrio]int
	// pfcPaused remembers which upstream ports we paused.
	pfcSent [][nPrio]bool

	// down marks a failed switch: packets arriving at it, inside its
	// crossbar, or queued on its egress ports are dropped into
	// Network.FaultDrops.
	down bool

	// Drops counts table-miss drops.
	Drops int64
}

// Host is a simulated compute node: one NIC port plus transports.
type Host struct {
	vertex int
	net    *Network
	out    *OutPort
	// upstream is the switch-side OutPort feeding this host (for PFC
	// from host; hosts also honour pause on their own out port).
	upstream *OutPort

	roce *roceEngine
	tcp  map[int64]*TCPConn // by flow ID (receiver and sender side)

	// DeliveredBytes counts payload bytes received (goodput).
	DeliveredBytes int64
	// deliver hooks message completions into the app layer.
	mailbox *mailbox
}

// Forwarder decides forwarding at a logical switch.
type Forwarder interface {
	// Forward returns the logical egress port and new tag for a packet
	// arriving at switch vertex sw on logical port inPort, plus an
	// extra pipeline delay (0 for an installed entry; reactive
	// controllers charge the flow-setup round trip here). ok=false
	// drops the packet (table miss).
	Forward(sw, inPort int, pkt *Packet) (outPort, newTag int, delay Time, ok bool)
}

// RouteForwarder forwards using a routing rule set (control plane
// compiled from the same rules that fill the OpenFlow tables) with
// every entry pre-installed (proactive deployment). The per-hop
// decision runs on the compiled FIB — a dense array load — rather than
// the rule-index probe of Routes.Lookup; the two are
// differential-tested to agree on every tuple.
//
// Every Forward goes through the route set's memoized FIB accessor —
// never a snapshot — so rules added later (the manual-strategy
// workflow) invalidate and recompile transparently, exactly as the
// Lookup-based forwarder behaved. Construct with NewRouteForwarder
// where possible: it compiles the FIB eagerly, so a route set handed
// to concurrent simulations afterwards is already built (an un-Primed
// Routes shared across goroutines races on the lazy first build — see
// routing.Prime).
type RouteForwarder struct {
	Routes *routing.Routes
}

// NewRouteForwarder eagerly compiles the route set's FIB and returns a
// forwarder over it.
func NewRouteForwarder(r *routing.Routes) RouteForwarder {
	r.FIB()
	return RouteForwarder{Routes: r}
}

// Forward implements Forwarder.
func (rf RouteForwarder) Forward(sw, inPort int, pkt *Packet) (int, int, Time, bool) {
	out, tag, ok := rf.Routes.FIB().Forward(sw, inPort, pkt.Dst, pkt.Tag)
	return out, tag, 0, ok
}

// LookupForwarder is the uncompiled reference Forwarder backed by
// Routes.Lookup. It exists as the oracle the FIB fast path is verified
// against (equivalence tests run full simulations both ways and demand
// identical outputs); simulations should use RouteForwarder.
type LookupForwarder struct {
	Routes *routing.Routes
}

// Forward implements Forwarder.
func (lf LookupForwarder) Forward(sw, inPort int, pkt *Packet) (int, int, Time, bool) {
	rule := lf.Routes.Lookup(sw, inPort, pkt.Dst, pkt.Tag)
	if rule == nil {
		return 0, 0, 0, false
	}
	tag := pkt.Tag
	if rule.NewTag >= 0 {
		tag = rule.NewTag
	}
	return rule.OutPort, tag, 0, true
}

// Network is a simulated fabric: the logical topology's switches and
// hosts joined by directed links.
type Network struct {
	Sim    *Sim
	Topo   *topology.Graph
	Cfg    Config
	Fwd    Forwarder
	rng    *rand.Rand
	nextID int64

	// switches and hosts are dense slices indexed by topology vertex ID
	// (nil where the vertex is the other kind).
	switches []*SimSwitch
	hosts    []*Host
	links    []*DirLink

	// Stats
	TotalDrops   int64
	PausesSent   int64
	EcnMarks     int64
	DeliveredPkt int64
	// FaultDrops counts packets lost to dead links and switches
	// (separate from TotalDrops, which stays the congestion/table-miss
	// count).
	FaultDrops int64

	// OnDeliver, when set, observes every RoCE payload delivery (the
	// flow-application data path) at its simulated time — the recovery
	// tracker uses it to timestamp the first delivery after a repair.
	// Nil outside fault runs.
	OnDeliver func(now Time)

	// cc is the resolved congestion-control policy of this fabric
	// (identical on every shard of a sharded fabric).
	cc ccKind

	// shard is this network's index within a sharded fabric (0 in a
	// serial fabric). A sharded fabric is K Networks sharing the same
	// device arrays: each device belongs to exactly one shard and all
	// its events execute on that shard's engine.
	shard int
	// xfer, installed by a sharded executor (SetHandoff), transfers an
	// event produced by this shard's handlers onto another shard's
	// engine. Nil in serial fabrics, where every destination is local.
	xfer func(dst *Network, at Time, ev engine.Event)
}

// Shard returns this network's shard index within its fabric (always 0
// for a fabric built with NewNetwork).
func (n *Network) Shard() int { return n.shard }

// SetHandoff installs the cross-shard event transfer used by a sharded
// executor. Events handed off are always dispatched to the destination
// Network's OnEvent (the three cross-shard kinds — wire arrivals and
// PFC pause/resume — are all Network-handled); the executor must
// schedule them on dst.Sim with dst as the handler, after sorting by
// (time, source shard, hand-off order) so injection is deterministic.
func (n *Network) SetHandoff(f func(dst *Network, at Time, ev engine.Event)) { n.xfer = f }

// schedTo schedules a Network-handled event on the shard owning dst,
// routing through the shard hand-off when dst lives on a different
// engine. In a serial fabric dst is always n itself.
func (n *Network) schedTo(dst *Network, at Time, ev engine.Event) {
	if dst == n {
		n.Sim.Schedule(at, dst, ev)
		return
	}
	n.xfer(dst, at, ev)
}

// shardSeed derives shard i's RNG seed from the fabric seed. Shard 0
// keeps the seed unchanged, so a K=1 sharded fabric is bit-identical
// to a serial NewNetwork fabric; higher shards get decorrelated
// streams through a splitmix64 finalizer. This is one of the reasons
// the shard count is part of the determinism key: the same seed under
// different K yields different (each individually deterministic) ECN
// sampling streams.
func shardSeed(seed int64, shard int) int64 {
	if shard == 0 {
		return seed
	}
	z := uint64(seed) + uint64(shard)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NewNetwork builds the fabric for a logical topology. crossbarOf maps
// each switch vertex to a crossbar group: identity for a full testbed,
// the projection plan's physical switch for SDT. sdtExtra applies the
// per-hop projection overhead to every switch in a shared group.
func NewNetwork(g *topology.Graph, fwd Forwarder, cfg Config, crossbarOf func(v int) int, sdtExtra bool) (*Network, error) {
	nets, err := newFabric(g, fwd, cfg, crossbarOf, sdtExtra, nil, 1)
	if err != nil {
		return nil, err
	}
	return nets[0], nil
}

// NewShardedFabric builds one logical fabric split across k shard
// networks for conservative parallel execution (internal/shard).
// assign maps every topology vertex to a shard in [0, k); each device
// lives on — and fires all its events on — its shard's engine, while
// the device, link, and port arrays are shared so whole-fabric views
// (LinkLoads, Host/Switch accessors) work from any shard. Links whose
// endpoints land in different shards are marked as hand-off points;
// an executor must install the transfer with SetHandoff on every shard
// before running. Shard 0's RNG stream equals a serial fabric's, so
// k=1 (all-zero assign) is bit-identical to NewNetwork.
//
// Crossbar sharing (SDT projection) is incompatible with sharding: a
// shared crossbar serialises sub-switches that may live on different
// engines, so only serial fabrics may project.
func NewShardedFabric(g *topology.Graph, fwd Forwarder, cfg Config, assign []int, k int) ([]*Network, error) {
	return newFabric(g, fwd, cfg, nil, false, assign, k)
}

// newFabric is the shared fabric builder: k engines over one set of
// devices. Serial construction (k=1, nil assign) takes the identical
// code path with every device on shard 0.
func newFabric(g *topology.Graph, fwd Forwarder, cfg Config, crossbarOf func(v int) int, sdtExtra bool, assign []int, k int) ([]*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cc, err := ccKindOf(&cfg)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("netsim: fabric needs k >= 1 shards, got %d", k)
	}
	if k > 1 && crossbarOf != nil {
		return nil, fmt.Errorf("netsim: crossbar sharing (SDT projection) cannot be sharded")
	}
	if k > 1 {
		if len(assign) != len(g.Vertices) {
			return nil, fmt.Errorf("netsim: shard assignment covers %d of %d vertices", len(assign), len(g.Vertices))
		}
		for v, s := range assign {
			if s < 0 || s >= k {
				return nil, fmt.Errorf("netsim: vertex %d assigned to shard %d, want [0,%d)", v, s, k)
			}
		}
	}
	switches := make([]*SimSwitch, len(g.Vertices))
	hosts := make([]*Host, len(g.Vertices))
	nets := make([]*Network, k)
	for i := range nets {
		nets[i] = &Network{
			Sim:      NewSim(),
			Topo:     g,
			Cfg:      cfg,
			Fwd:      fwd,
			cc:       cc,
			shard:    i,
			rng:      rand.New(rand.NewSource(shardSeed(cfg.Seed, i))),
			switches: switches,
			hosts:    hosts,
		}
	}
	netOf := func(v int) *Network {
		if k == 1 {
			return nets[0]
		}
		return nets[assign[v]]
	}

	// Crossbars per group.
	xbars := map[int]*Crossbar{}
	extra := Time(0)
	if sdtExtra {
		extra = cfg.SDTPerHopExtra
	}
	getXbar := func(v int) *Crossbar {
		gid := v
		if crossbarOf != nil {
			gid = crossbarOf(v)
		}
		if x, ok := xbars[gid]; ok {
			return x
		}
		x := &Crossbar{bps: cfg.CrossbarBps, extra: extra}
		xbars[gid] = x
		return x
	}

	for _, v := range g.Switches() {
		maxPort := 0
		for _, eid := range g.IncidentEdges(v) {
			if p := g.Edges[eid].PortAt(v); p > maxPort {
				maxPort = p
			}
		}
		switches[v] = &SimSwitch{
			vertex:       v,
			net:          netOf(v),
			crossbar:     getXbar(v),
			outPorts:     make([]*OutPort, maxPort+1),
			upstream:     make([]*OutPort, maxPort+1),
			ingressBytes: make([][nPrio]int, maxPort+1),
			pfcSent:      make([][nPrio]bool, maxPort+1),
		}
	}
	for _, v := range g.Hosts() {
		hosts[v] = &Host{vertex: v, net: netOf(v), mailbox: newMailbox(), tcp: map[int64]*TCPConn{}}
	}

	// Links: two directed channels per edge. A link belongs to its
	// transmitting device's shard; when the receiving device lives on a
	// different shard the link records that remote network so arrivals
	// are handed off rather than scheduled locally.
	var links []*DirLink
	for _, e := range g.Edges {
		mk := func(from, fromPort, to, toPort int) *DirLink {
			l := &DirLink{id: len(links), bps: cfg.LinkBps, prop: cfg.PropDelay, EdgeID: e.ID}
			if h := hosts[to]; h != nil {
				l.to = deviceRef{host: h, inPort: toPort}
			} else {
				l.to = deviceRef{sw: switches[to], inPort: toPort}
			}
			if dstNet := netOf(to); dstNet != netOf(from) {
				l.remote = dstNet
			}
			links = append(links, l)
			op := &OutPort{link: l, net: netOf(from)}
			l.src = op
			if h := hosts[from]; h != nil {
				op.hostOwner = h
				h.out = op
			} else {
				op.ownerCache = switches[from]
				switches[from].outPorts[fromPort] = op
			}
			return l
		}
		mk(e.A, e.APort, e.B, e.BPort)
		mk(e.B, e.BPort, e.A, e.APort)
	}
	for _, nn := range nets {
		nn.links = links
	}
	// Wire upstream references for PFC.
	for _, e := range g.Edges {
		setUp := func(at, atPort, far, farPort int) {
			var farOut *OutPort
			if h := hosts[far]; h != nil {
				farOut = h.out
			} else {
				farOut = switches[far].outPorts[farPort]
			}
			if sw := switches[at]; sw != nil {
				sw.upstream[atPort] = farOut
			} else {
				hosts[at].upstream = farOut
			}
		}
		setUp(e.A, e.APort, e.B, e.BPort)
		setUp(e.B, e.BPort, e.A, e.APort)
	}
	for _, h := range hosts {
		if h != nil {
			h.roce = newRoceEngine(h)
		}
	}
	return nets, nil
}

// CutLookahead returns the minimum propagation delay across this
// fabric's cut links — the conservative executor's global lookahead —
// and the number of directed cut links. A serial (or K=1) fabric has
// no cut links and reports (0, 0).
func (n *Network) CutLookahead() (lk Time, cut int) {
	for _, l := range n.links {
		if l.remote != nil {
			if cut == 0 || l.prop < lk {
				lk = l.prop
			}
			cut++
		}
	}
	return lk, cut
}

// Host returns the host device for a topology host vertex (nil when v
// is out of range or a switch).
func (n *Network) Host(v int) *Host {
	if v < 0 || v >= len(n.hosts) {
		return nil
	}
	return n.hosts[v]
}

// Switch returns the switch device for a topology switch vertex (nil
// when v is out of range or a host).
func (n *Network) Switch(v int) *SimSwitch {
	if v < 0 || v >= len(n.switches) {
		return nil
	}
	return n.switches[v]
}

func (n *Network) pktID() int64 { n.nextID++; return n.nextID }

// OnEvent dispatches fabric-level events: transmit completions, wire
// arrivals, and PFC pause/resume.
func (n *Network) OnEvent(now Time, ev engine.Event) {
	switch ev.Kind {
	case evTxDone:
		o := ev.Ptr.(*OutPort)
		o.sending = false
		n.onDequeued(o, int(ev.A>>4), int(ev.A&0xf), int(ev.B))
		n.tryTransmit(o)
	case evArrive:
		pkt := ev.Ptr.(*Packet)
		l := n.links[ev.A]
		to := l.to
		if l.down || (to.sw != nil && to.sw.down) {
			// The wire was cut (or the far switch died) while the
			// packet was in flight.
			n.FaultDrops++
			pkt.release()
			return
		}
		pkt.inPort = to.inPort
		if to.sw != nil {
			to.sw.receive(pkt)
		} else {
			to.host.receive(pkt)
			pkt.release() // terminal: host consumed it synchronously
		}
	case evPfcPause:
		ev.Ptr.(*OutPort).paused[ev.A] = true
	case evPfcResume:
		o := ev.Ptr.(*OutPort)
		o.paused[ev.A] = false
		n.tryTransmit(o)
	}
}

// tryTransmit starts transmission on an output port if idle, honouring
// PFC pause state per priority (highest priority first). A dead link
// (or a dead owning switch) transmits nothing: queued packets drain as
// fault drops, with the same dequeue accounting a completed
// transmission would have performed, so PFC state unwinds and the
// fabric recovers cleanly when the element comes back.
func (n *Network) tryTransmit(o *OutPort) {
	if o.sending {
		return
	}
	var pkt *Packet
	for {
		var q *fifo
		for p := nPrio - 1; p >= 0; p-- {
			if !o.queues[p].empty() && !o.paused[p] {
				q = &o.queues[p]
				break
			}
		}
		if q == nil {
			return
		}
		pkt = q.pop()
		if o.link.down || (o.ownerCache != nil && o.ownerCache.down) {
			n.FaultDrops++
			n.onDequeued(o, pkt.inPort, pkt.arrClass, pkt.Size)
			pkt.release()
			continue
		}
		break
	}
	o.sending = true
	l := o.link
	ser := serTime(pkt.Size, l.bps)
	start := n.Sim.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	l.busyUntil = start + ser
	l.TxBytes += int64(pkt.Size)
	// Capture ingress accounting keys now: pkt.inPort is rewritten by
	// the downstream arrival, which under cut-through fires before our
	// serialisation completes. PFC accounting uses the class the packet
	// ARRIVED with (the wire class its upstream transmits on) — pausing
	// the post-rewrite class would backpressure the wrong queue and can
	// wedge VC-based deadlock avoidance.
	// Sender frees after serialisation.
	n.Sim.Schedule(start+ser, n, engine.Event{
		Kind: evTxDone, Ptr: o,
		A: int64(pkt.inPort)<<4 | int64(pkt.arrClass), B: int64(pkt.Size),
	})
	// Receiver processing starts at header (cut-through) or tail. The
	// arrival is always at least one propagation delay in the future
	// (arr >= now + prop), which is what makes prop the safe lookahead
	// of the sharded executor: a cut-edge arrival handed off here can
	// never land inside the window that produced it.
	arr := start + l.prop + ser
	if n.Cfg.CutThrough {
		hdr := serTime(minInt(pkt.Size, n.Cfg.HeaderBytes+64), l.bps)
		arr = start + l.prop + hdr
	}
	if l.remote != nil {
		n.xfer(l.remote, arr, engine.Event{Kind: evArrive, Ptr: pkt, A: int64(l.id)})
		return
	}
	n.Sim.Schedule(arr, n, engine.Event{Kind: evArrive, Ptr: pkt, A: int64(l.id)})
}

// onDequeued updates PFC ingress accounting at the switch that owned
// the queue (if any) when a packet leaves it, and kicks host QP pumps
// when a NIC queue drains.
func (n *Network) onDequeued(o *OutPort, inPort, prio, size int) {
	if o.hostOwner != nil {
		o.hostOwner.nicDrained()
		return
	}
	sw := n.ownerOf(o)
	if sw == nil {
		return
	}
	if inPort <= 0 || inPort >= len(sw.ingressBytes) {
		return
	}
	sw.ingressBytes[inPort][prio] -= size
	if n.Cfg.PFC && sw.pfcSent[inPort][prio] && sw.ingressBytes[inPort][prio] <= n.Cfg.PFCXon {
		sw.pfcSent[inPort][prio] = false
		up := sw.upstream[inPort]
		if up != nil {
			// Resume after control-frame propagation. The upstream port
			// may live on another shard; the frame's >= PropDelay flight
			// time keeps the hand-off outside the current safe window.
			n.schedTo(up.net, n.Sim.Now()+n.Cfg.PropDelay+500*Nanosecond, engine.Event{
				Kind: evPfcResume, Ptr: up, A: int64(prio),
			})
		}
	}
}

// ownerOf returns the switch owning an out port (nil for host NICs).
func (n *Network) ownerOf(o *OutPort) *SimSwitch { return o.ownerCache }

// SetLinkDown fails (or restores) both directions of a logical edge.
// Cutting a link flushes the queues feeding it — every queued packet
// drops into FaultDrops — and drops in-flight packets at their arrival
// instant. It reports whether the edge exists in this fabric.
func (n *Network) SetLinkDown(edge int, down bool) bool {
	found := false
	for _, l := range n.links {
		if l.EdgeID != edge {
			continue
		}
		found = true
		l.down = down
		// On a cut, drain the feeding queue as fault drops; on a
		// restore, restart transmission (both are no-ops on an idle
		// healthy port).
		n.tryTransmit(l.src)
	}
	return found
}

// SetSwitchDown fails (or restores) a switch: packets arriving at it,
// traversing its crossbar, or queued on its egress ports are dropped
// into FaultDrops. It reports whether v is a switch in this fabric.
func (n *Network) SetSwitchDown(v int, down bool) bool {
	sw := n.Switch(v)
	if sw == nil {
		return false
	}
	sw.down = down
	for _, o := range sw.outPorts {
		if o != nil {
			n.tryTransmit(o)
		}
	}
	return true
}

// LinkIsDown reports whether any direction of a logical edge is
// currently failed.
func (n *Network) LinkIsDown(edge int) bool {
	for _, l := range n.links {
		if l.EdgeID == edge && l.down {
			return true
		}
	}
	return false
}

// SwitchIsDown reports whether switch vertex v is currently failed.
func (n *Network) SwitchIsDown(v int) bool {
	sw := n.Switch(v)
	return sw != nil && sw.down
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
