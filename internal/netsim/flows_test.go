package netsim

import "testing"

// lineNet builds a small line fabric for flow tests.
func lineNet(t *testing.T, n int) (*Network, []int) {
	t.Helper()
	net, g := buildLine(t, n, 1, DefaultConfig())
	return net, g.Hosts()
}

// FlowApp must inject at the scheduled times, complete every flow, and
// report the last completion as ACT.
func TestFlowAppBasic(t *testing.T) {
	net, hosts := lineNet(t, 3)
	flows := []Flow{
		{Src: 0, Dst: 1, Bytes: 4 * 1024, Start: 0, Tag: 0},
		{Src: 1, Dst: 2, Bytes: 8 * 1024, Start: 50 * Microsecond, Tag: 1},
		{Src: 2, Dst: 0, Bytes: 2 * 1024, Start: 10 * Microsecond, Tag: 2},
	}
	var done Time
	app := NewFlowApp(net, hosts[:3], flows, func(last Time) { done = last })
	if app.ACT() >= 0 {
		t.Fatal("ACT complete before Start")
	}
	app.Start()
	net.Sim.Run(0)
	if app.Completed() != len(flows) {
		t.Fatalf("completed %d/%d", app.Completed(), len(flows))
	}
	var last Time
	for i := range flows {
		f := &flows[i]
		if !f.Completed {
			t.Fatalf("flow %d incomplete", i)
		}
		if f.End <= f.Start {
			t.Fatalf("flow %d: end %v <= start %v", i, f.End, f.Start)
		}
		if f.End > last {
			last = f.End
		}
	}
	if app.ACT() != last || done != last {
		t.Fatalf("ACT %v, onDone %v, want %v", app.ACT(), done, last)
	}
	// The delayed flow cannot complete before its injection time.
	if flows[1].End < 50*Microsecond {
		t.Fatalf("flow 1 completed at %v, before its start", flows[1].End)
	}
}

// An empty schedule is trivially complete at time zero.
func TestFlowAppEmpty(t *testing.T) {
	net, hosts := lineNet(t, 2)
	app := NewFlowApp(net, hosts[:2], nil, nil)
	app.Start()
	net.Sim.Run(0)
	if app.ACT() != 0 {
		t.Fatalf("empty schedule ACT %v", app.ACT())
	}
}

// Out-of-order start times must be injected in time order.
func TestFlowAppOrdering(t *testing.T) {
	net, hosts := lineNet(t, 2)
	flows := []Flow{
		{Src: 0, Dst: 1, Bytes: 1024, Start: 30 * Microsecond, Tag: 0},
		{Src: 0, Dst: 1, Bytes: 1024, Start: 10 * Microsecond, Tag: 1},
		{Src: 0, Dst: 1, Bytes: 1024, Start: 20 * Microsecond, Tag: 2},
	}
	app := NewFlowApp(net, hosts[:2], flows, nil)
	app.Start()
	net.Sim.Run(0)
	if app.ACT() < 0 {
		t.Fatal("did not complete")
	}
	if !(flows[1].End < flows[2].End && flows[2].End < flows[0].End) {
		t.Fatalf("completions out of order: %v %v %v", flows[0].End, flows[1].End, flows[2].End)
	}
}

// Duplicate (src, dst, tag) keys would be indistinguishable at the
// receiver's mailbox; construction must reject them.
func TestFlowAppRejectsDuplicateMatchKey(t *testing.T) {
	net, hosts := lineNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate (src, dst, tag) accepted")
		}
	}()
	NewFlowApp(net, hosts[:2], []Flow{
		{Src: 0, Dst: 1, Bytes: 1, Tag: 7},
		{Src: 0, Dst: 1, Bytes: 2, Tag: 7},
	}, nil)
}
