package netsim

import "repro/internal/engine"

// receive runs the switch pipeline on an arriving packet: forwarding
// lookup, crossbar transfer, egress enqueue with ECN marking, and PFC
// threshold checks.
func (s *SimSwitch) receive(pkt *Packet) {
	n := s.net
	out, newTag, fwdDelay, ok := n.Fwd.Forward(s.vertex, pkt.inPort, pkt)
	if !ok || out <= 0 || out >= len(s.outPorts) || s.outPorts[out] == nil {
		s.Drops++
		n.TotalDrops++
		pkt.release()
		return
	}
	// The PFC class the packet arrived with (before any VC rewrite):
	// this is what the upstream transmitted on and what a pause must
	// name. Under pFabric, data travels on its stamped size class.
	arrCls := pfcClass(pkt)
	if n.cc == ccPFabric && pkt.Kind == Data {
		arrCls = pkt.Prio
	}
	pkt.Tag = newTag
	d := n.Cfg.SwitchLatency + fwdDelay + s.crossbar.delay(n.Sim.Now(), pkt.Size)
	n.Sim.ScheduleAfter(d, s, engine.Event{
		Kind: evSwEnqueue, Ptr: pkt,
		A: int64(out), B: int64(pkt.inPort)<<4 | int64(arrCls),
	})
}

// OnEvent dispatches switch events (crossbar-traversal completions).
func (s *SimSwitch) OnEvent(now Time, ev engine.Event) {
	if ev.Kind == evSwEnqueue {
		if s.down {
			// The switch died while the packet crossed its crossbar.
			s.net.FaultDrops++
			ev.Ptr.(*Packet).release()
			return
		}
		s.enqueue(s.outPorts[ev.A], int(ev.B>>4), int(ev.B&0xf), ev.Ptr.(*Packet))
	}
}

// isData reports whether the class carries pausable data traffic.
func isData(class int) bool { return class < ctrlClass }

// enqueue places the packet on the egress queue, applying tail drop
// (lossy mode), ECN marking, and PFC pause generation.
func (s *SimSwitch) enqueue(o *OutPort, inPort, arrCls int, pkt *Packet) {
	n := s.net
	// The egress traffic class follows the packet's (possibly
	// rewritten) VC; ingress accounting keeps the arrival class. Under
	// pFabric the sender's size-priority stamp IS the class and rides
	// the packet end to end, so strict-priority dequeue approximates
	// shortest-remaining-first at every hop.
	if n.cc != ccPFabric || pkt.Kind != Data {
		pkt.Prio = pfcClass(pkt)
	}
	pkt.arrClass = arrCls
	if !n.Cfg.PFC && isData(pkt.Prio) && o.queuedBytes()+pkt.Size > n.Cfg.QueueCap {
		o.Drops++
		n.TotalDrops++
		pkt.release()
		return
	}
	// ECN marking (RED-style ramp on egress occupancy), data class only.
	if n.Cfg.ECN && isData(pkt.Prio) {
		q := o.queuedBytes()
		if q > n.Cfg.ECNKmax {
			pkt.ECN = true
			n.EcnMarks++
		} else if q > n.Cfg.ECNKmin {
			p := n.Cfg.ECNPmax * float64(q-n.Cfg.ECNKmin) / float64(n.Cfg.ECNKmax-n.Cfg.ECNKmin)
			if n.rng.Float64() < p {
				pkt.ECN = true
				n.EcnMarks++
			}
		}
	}
	pkt.inPort = inPort
	o.queues[pkt.Prio].push(pkt)
	// PFC ingress accounting per (ingress port, arrival class): the
	// pause frame names the class the upstream transmits.
	if inPort > 0 && inPort < len(s.ingressBytes) {
		s.ingressBytes[inPort][arrCls] += pkt.Size
		if n.Cfg.PFC && isData(arrCls) && !s.pfcSent[inPort][arrCls] &&
			s.ingressBytes[inPort][arrCls] > n.Cfg.PFCXoff {
			s.pfcSent[inPort][arrCls] = true
			up := s.upstream[inPort]
			if up != nil {
				n.PausesSent++
				// The pause frame flies >= PropDelay, so a cross-shard
				// upstream port receives it via the hand-off outside the
				// current safe window.
				n.schedTo(up.net, n.Sim.Now()+n.Cfg.PropDelay+500*Nanosecond, engine.Event{
					Kind: evPfcPause, Ptr: up, A: int64(arrCls),
				})
			}
		}
	}
	n.tryTransmit(o)
}
