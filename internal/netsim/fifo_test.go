package netsim

import "testing"

func fifoTestPacket(size int) *Packet {
	p := allocPacket()
	*p = Packet{Size: size}
	return p
}

func TestFifoOrderAndByteAccountingAcrossWrap(t *testing.T) {
	var q fifo
	next := 0
	push := func() { q.push(fifoTestPacket(next + 1)); next++ }
	popWant := func(want int) {
		t.Helper()
		p := q.pop()
		if p.Size != want+1 {
			t.Fatalf("popped size %d, want %d", p.Size, want+1)
		}
	}
	// Drive head/tail around the ring several times.
	for i := 0; i < 5; i++ {
		push()
	}
	popWant(0)
	popWant(1)
	for i := 0; i < 20; i++ { // forces growth and wrap-around
		push()
	}
	bytes := 0
	for i := 2; i < next; i++ {
		bytes += i + 1
	}
	if q.bytes != bytes {
		t.Fatalf("bytes = %d, want %d", q.bytes, bytes)
	}
	for i := 2; i < next; i++ {
		popWant(i)
	}
	if !q.empty() || q.bytes != 0 {
		t.Fatalf("queue not empty after draining: n=%d bytes=%d", q.n, q.bytes)
	}
}

// TestFifoPopReleasesSlots guards the seed bug where pop kept the head
// of the backing array alive (`q.pkts = q.pkts[1:]` never nil'd the
// slot): after draining, the ring must hold no packet references.
func TestFifoPopReleasesSlots(t *testing.T) {
	var q fifo
	for i := 0; i < 13; i++ {
		q.push(fifoTestPacket(64))
	}
	for !q.empty() {
		q.pop().release()
	}
	for i, p := range q.ring {
		if p != nil {
			t.Fatalf("ring slot %d still references a packet after drain", i)
		}
	}
}

// TestFifoSteadyStateAllocatesNothing is the alloc-count check the
// ring-buffer conversion was verified with: the seed's slice-append
// queue allocated on every push cycle because the backing array could
// never be reused.
func TestFifoSteadyStateAllocatesNothing(t *testing.T) {
	var q fifo
	p := fifoTestPacket(100)
	// Warm to working-set capacity.
	for i := 0; i < 4; i++ {
		q.push(fifoTestPacket(100))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		q.push(p)
		q.pop()
	})
	if allocs > 0 {
		t.Errorf("steady-state push/pop allocates %.1f allocs/run, want 0", allocs)
	}
}
