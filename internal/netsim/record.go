package netsim

// Trace recording: the paper's simulator replays "traces collected from
// running an HPC application on real computing nodes" (§VI-A2). The
// Recorder captures a live App run — sends, receives, and the measured
// gaps between operations — as per-rank operation lists that replay
// elsewhere (e.g. record on the full testbed, replay on SDT).

// RecordedOp mirrors Op with the observed timing.
type RecordedOp struct {
	Op Op
	// At is the simulation time the operation was issued/completed.
	At Time
}

// Recorder accumulates per-rank operation streams from an App run.
type Recorder struct {
	ranks   int
	ops     [][]RecordedOp
	lastAct []Time
}

// NewRecorder prepares recording for an application with n ranks.
func NewRecorder(n int) *Recorder {
	return &Recorder{ranks: n, ops: make([][]RecordedOp, n), lastAct: make([]Time, n)}
}

// Attach subscribes the recorder to an App's operation stream.
// Explicit compute phases are recorded as issued; *implicit* gaps
// (time a rank spent blocked in a receive) are measured from the
// timestamps and re-inserted as compute on reconstruction — exactly
// how trace collection on real nodes perceives application think time.
func (rec *Recorder) Attach(app *App) {
	app.OnOp = func(rank int, op Op, at Time) {
		rec.ops[rank] = append(rec.ops[rank], RecordedOp{Op: op, At: at})
	}
}

// Programs reconstructs replayable per-rank programs from the
// recording. Gaps between consecutive operation issues that exceed the
// pure transport time are folded into explicit compute ops, preserving
// the application's temporal structure without simulating computation.
func (rec *Recorder) Programs() [][]Op {
	out := make([][]Op, rec.ranks)
	for r := range rec.ops {
		var prog []Op
		var prevAt Time = -1
		prevKind := OpCompute
		for _, ro := range rec.ops[r] {
			if prevAt >= 0 {
				gap := ro.At - prevAt
				// A gap after a receive is message wait — the replay's
				// own messaging reproduces it. Gaps after sends or
				// computes are application think time: fold them into
				// an explicit compute op.
				if prevKind != OpRecv && gap > 0 {
					prog = append(prog, Op{Kind: OpCompute, Dur: gap})
				}
			}
			prevAt = ro.At
			prevKind = ro.Op.Kind
			if ro.Op.Kind != OpCompute { // compute re-derived from gaps
				prog = append(prog, ro.Op)
			}
		}
		out[r] = prog
	}
	return out
}

// Ops reports the raw recorded operations of one rank.
func (rec *Recorder) Ops(rank int) []RecordedOp { return rec.ops[rank] }
