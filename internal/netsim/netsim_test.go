package netsim

import (
	"math"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.At(10, func() { got = append(got, 11) }) // same time: scheduling order
	s.Run(0)
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("final time = %d", s.Now())
	}
}

func TestSimRunLimit(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(100, func() { fired = true })
	s.Run(50)
	if fired {
		t.Error("event beyond limit fired")
	}
	if s.Now() != 50 {
		t.Errorf("now = %d, want 50", s.Now())
	}
}

func buildLine(t testing.TB, n, hostsPer int, cfg Config) (*Network, *topology.Graph) {
	t.Helper()
	g := topology.Line(n, hostsPer)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(g, NewRouteForwarder(routes), cfg, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return net, g
}

func TestPingpongLatencyScalesWithHops(t *testing.T) {
	cfg := DefaultConfig()
	// RTT over more switches must be larger, roughly linearly.
	rtt := func(switches int) Time {
		net, g := buildLine(t, switches, 1, cfg)
		hosts := g.Hosts()
		rtts := MeasurePingpong(net, hosts[0], hosts[switches-1], 64, 20)
		if len(rtts) != 20 {
			t.Fatalf("got %d rtts", len(rtts))
		}
		return MeanRTT(rtts)
	}
	r2, r8 := rtt(2), rtt(8)
	if r8 <= r2 {
		t.Fatalf("8-switch RTT %v <= 2-switch RTT %v", r8, r2)
	}
	// The paper: 10-hop RTT below 10µs for small messages; our 8-switch
	// chain should land in single-digit microseconds too.
	if r8 > 40*Microsecond {
		t.Errorf("8-switch RTT = %v, implausibly large", r8)
	}
	if r2 < 1*Microsecond {
		t.Errorf("2-switch RTT = %v, implausibly small", r2)
	}
}

func TestPingpongLatencyGrowsWithSize(t *testing.T) {
	cfg := DefaultConfig()
	net, g := buildLine(t, 8, 1, cfg)
	hosts := g.Hosts()
	small := MeanRTT(MeasurePingpong(net, hosts[0], hosts[7], 64, 10))
	net2, g2 := buildLine(t, 8, 1, cfg)
	hosts2 := g2.Hosts()
	big := MeanRTT(MeasurePingpong(net2, hosts2[0], hosts2[7], 1<<20, 5))
	if big <= small {
		t.Fatalf("1MB RTT %v <= 64B RTT %v", big, small)
	}
	// 1MB at 10Gbps serialises in 800µs one way; RTT must exceed 1.6ms.
	if big < 1600*Microsecond {
		t.Errorf("1MB RTT = %v, below serialisation floor", big)
	}
}

func TestSingleFlowSaturatesLink(t *testing.T) {
	cfg := DefaultConfig()
	net, g := buildLine(t, 2, 1, cfg)
	hosts := g.Hosts()
	const bytes = 10 << 20 // 10 MiB
	start := net.Sim.Now()
	net.Host(hosts[0]).roce.Send(hosts[1], 1, bytes)
	var done Time
	net.Host(hosts[1]).Recv(hosts[0], 1, func() { done = net.Sim.Now() })
	net.Sim.Run(0)
	if done == 0 {
		t.Fatal("message never delivered")
	}
	gbps := float64(bytes*8) / (done - start).Seconds() / 1e9
	if gbps < 8.5 || gbps > 10.01 {
		t.Errorf("goodput = %.2f Gbps, want near 10", gbps)
	}
}

func TestPFCPreventsDropsInIncast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFC = true
	net, g := buildLine(t, 8, 1, cfg)
	hosts := g.Hosts()
	// Everyone blasts host 3 (node 4), Fig. 12 style, with RoCE.
	for i, h := range hosts {
		if i == 3 {
			continue
		}
		net.Host(h).roce.Send(hosts[3], 1, 2<<20)
	}
	net.Sim.Run(0)
	if net.TotalDrops != 0 {
		t.Errorf("PFC on: %d drops, want 0", net.TotalDrops)
	}
	if net.PausesSent == 0 {
		t.Error("incast produced no PFC pauses")
	}
	if net.Host(hosts[3]).DeliveredBytes != int64(7*(2<<20)) {
		t.Errorf("delivered %d bytes, want %d", net.Host(hosts[3]).DeliveredBytes, 7*(2<<20))
	}
}

func TestLossyIncastDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFC = false
	cfg.QueueCap = 64 * 1024
	net, g := buildLine(t, 8, 1, cfg)
	hosts := g.Hosts()
	for i, h := range hosts {
		if i == 3 {
			continue
		}
		net.Host(h).roce.Send(hosts[3], 1, 2<<20)
	}
	net.Sim.Run(0)
	if net.TotalDrops == 0 {
		t.Error("lossy incast produced no drops")
	}
}

func TestTCPIncastSharesBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFC = false
	cfg.QueueCap = 256 * 1024
	net, g := buildLine(t, 8, 1, cfg)
	hosts := g.Hosts()
	var conns []*TCPConn
	for i, h := range hosts {
		if i == 3 {
			continue
		}
		conns = append(conns, net.StartTCP(h, hosts[3], -1, nil))
	}
	net.Sim.Run(200 * Millisecond)
	var total float64
	for _, c := range conns {
		gbps := float64(c.RcvBytes*8) / net.Sim.Now().Seconds() / 1e9
		total += gbps
		if c.RcvBytes == 0 {
			t.Error("a TCP flow starved completely")
		}
	}
	if total < 6 || total > 10.5 {
		t.Errorf("aggregate TCP goodput = %.2f Gbps, want near link rate", total)
	}
}

func TestTCPFiniteFlowCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFC = false
	net, g := buildLine(t, 3, 1, cfg)
	hosts := g.Hosts()
	var fct Time
	net.StartTCP(hosts[0], hosts[2], 1<<20, func(d Time) { fct = d })
	net.Sim.Run(time500ms())
	if fct == 0 {
		t.Fatal("TCP flow never completed")
	}
	// 1 MiB at 10 Gbps is ~0.84 ms minimum.
	if fct < 800*Microsecond || fct > 100*Millisecond {
		t.Errorf("FCT = %v, out of plausible range", fct)
	}
}

func time500ms() Time { return 500 * Millisecond }

func TestDCQCNReducesPauses(t *testing.T) {
	run := func(dcqcn bool) int64 {
		cfg := DefaultConfig()
		cfg.PFC = true
		cfg.ECN = true
		cfg.DCQCN = dcqcn
		net, g := buildLine(t, 8, 1, cfg)
		hosts := g.Hosts()
		for i, h := range hosts {
			if i == 3 {
				continue
			}
			net.Host(h).roce.Send(hosts[3], 1, 4<<20)
		}
		net.Sim.Run(0)
		if net.TotalDrops != 0 {
			t.Fatalf("lossless run dropped %d", net.TotalDrops)
		}
		return net.PausesSent
	}
	off := run(false)
	on := run(true)
	if on >= off {
		t.Errorf("DCQCN on: %d pauses, off: %d; DCQCN should delay PFC (paper §VI-E)", on, off)
	}
}

func TestAppAlltoallCompletes(t *testing.T) {
	cfg := DefaultConfig()
	g := topology.Torus2D(3, 3, 1)
	routes, err := routing.TorusClue{Dims: 2}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(g, NewRouteForwarder(routes), cfg, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	nRanks := len(hosts)
	programs := make([][]Op, nRanks)
	for r := 0; r < nRanks; r++ {
		var prog []Op
		for p := 0; p < nRanks; p++ {
			if p != r {
				prog = append(prog, Op{Kind: OpSend, Peer: p, Bytes: 64 * 1024, MTag: 100 + r})
			}
		}
		for p := 0; p < nRanks; p++ {
			if p != r {
				prog = append(prog, Op{Kind: OpRecv, Peer: p, MTag: 100 + p})
			}
		}
		programs[r] = prog
	}
	app := NewApp(net, hosts, programs, nil)
	app.Start()
	net.Sim.Run(0)
	act := app.ACT()
	if act <= 0 {
		t.Fatal("alltoall did not complete")
	}
	// 9 ranks x 8 x 64KB: per-host egress 512KB at 10 Gbps is ~410 µs
	// minimum; with contention the ACT lands in the ms range.
	if act < 400*Microsecond || act > 100*Millisecond {
		t.Errorf("ACT = %v, out of plausible range", act)
	}
	if net.TotalDrops != 0 {
		t.Errorf("lossless alltoall dropped %d packets", net.TotalDrops)
	}
}

func TestComputeOpAdvancesTime(t *testing.T) {
	cfg := DefaultConfig()
	net, g := buildLine(t, 2, 1, cfg)
	hosts := g.Hosts()
	programs := [][]Op{
		{{Kind: OpCompute, Dur: 5 * Millisecond}, {Kind: OpSend, Peer: 1, Bytes: 100, MTag: 1}},
		{{Kind: OpRecv, Peer: 0, MTag: 1}},
	}
	app := NewApp(net, hosts[:2], programs, nil)
	app.Start()
	net.Sim.Run(0)
	if act := app.ACT(); act < 5*Millisecond {
		t.Errorf("ACT = %v, want >= 5ms compute", act)
	}
}

func TestSDTSharedCrossbarOverheadSmall(t *testing.T) {
	// The Fig. 11 property in miniature: SDT (one shared crossbar +
	// per-hop extra) must add positive but tiny latency vs the full
	// testbed, shrinking relatively as messages grow.
	g := topology.Line(8, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	rtt := func(sdt bool, bytes int) Time {
		var xof func(v int) int
		if sdt {
			xof = func(v int) int { return 0 } // all sub-switches on one physical switch
		}
		net, err := NewNetwork(g, NewRouteForwarder(routes), cfg, xof, sdt)
		if err != nil {
			t.Fatal(err)
		}
		hosts := g.Hosts()
		return MeanRTT(MeasurePingpong(net, hosts[0], hosts[7], bytes, 10))
	}
	for _, bytes := range []int{64, 4096, 1 << 20} {
		full := rtt(false, bytes)
		sdt := rtt(true, bytes)
		if sdt <= full {
			t.Errorf("bytes=%d: SDT RTT %v <= full %v; projection must cost something", bytes, sdt, full)
		}
		over := float64(sdt-full) / float64(full)
		if over > 0.02 {
			t.Errorf("bytes=%d: overhead %.3f%% exceeds the paper's 2%% bound", bytes, over*100)
		}
	}
	// Relative overhead decreases with message size.
	small := float64(rtt(true, 64)-rtt(false, 64)) / float64(rtt(false, 64))
	large := float64(rtt(true, 1<<20)-rtt(false, 1<<20)) / float64(rtt(false, 1<<20))
	if large >= small {
		t.Errorf("overhead grew with size: %.4f%% -> %.4f%%", small*100, large*100)
	}
}

func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	g := topology.Line(8, 1)
	routes, _ := routing.ShortestPath{}.Compute(g)
	rtt := func(ct bool) Time {
		cfg := DefaultConfig()
		cfg.CutThrough = ct
		net, err := NewNetwork(g, NewRouteForwarder(routes), cfg, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		hosts := g.Hosts()
		return MeanRTT(MeasurePingpong(net, hosts[0], hosts[7], 4096, 10))
	}
	ctRTT, sfRTT := rtt(true), rtt(false)
	if ctRTT >= sfRTT {
		t.Errorf("cut-through RTT %v >= store-and-forward %v", ctRTT, sfRTT)
	}
}

func TestTableMissDrops(t *testing.T) {
	g := topology.Line(2, 1)
	routes, _ := routing.ShortestPath{}.Compute(g)
	cfg := DefaultConfig()
	net, err := NewNetwork(g, NewRouteForwarder(routes), cfg, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// Destination 9999 has no rules anywhere.
	net.Host(hosts[0]).roce.Send(9999, 1, 100)
	// Sending to an unknown host: the injection switch misses.
	net.Sim.Run(0)
	if net.TotalDrops == 0 {
		t.Error("packet to unknown destination not dropped")
	}
}

func TestLinkLoadsTelemetry(t *testing.T) {
	cfg := DefaultConfig()
	net, g := buildLine(t, 3, 1, cfg)
	hosts := g.Hosts()
	net.Host(hosts[0]).roce.Send(hosts[2], 1, 1<<20)
	net.Sim.Run(0)
	loads := net.LinkLoads()
	nonzero := 0
	for _, v := range loads {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 4 { // 2 host links + 2 switch links on the path
		t.Errorf("only %d loaded edges, want >= 4", nonzero)
	}
	net.ResetLinkLoads()
	for eid, v := range net.LinkLoads() {
		if v != 0 {
			t.Errorf("edge %d load %v after reset", eid, v)
		}
	}
}

func TestGoodputSampling(t *testing.T) {
	cfg := DefaultConfig()
	net, g := buildLine(t, 2, 1, cfg)
	hosts := g.Hosts()
	net.Host(hosts[0]).roce.Send(hosts[1], 1, 8<<20)
	samples := SampleGoodput(net, []int{hosts[1]}, 1*Millisecond, 20*Millisecond)
	net.Sim.Run(21 * Millisecond)
	ss := samples[hosts[1]]
	if len(ss) < 5 {
		t.Fatalf("only %d samples", len(ss))
	}
	peak := 0.0
	for _, s := range ss {
		if s.Gbps > peak {
			peak = s.Gbps
		}
	}
	if math.Abs(peak-9.8) > 1.5 {
		t.Errorf("peak goodput = %.2f Gbps, want ~10", peak)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Time, int64) {
		cfg := DefaultConfig()
		cfg.ECN = true
		cfg.DCQCN = true
		net, g := buildLine(t, 8, 1, cfg)
		hosts := g.Hosts()
		for i, h := range hosts {
			if i == 3 {
				continue
			}
			net.Host(h).roce.Send(hosts[3], 1, 1<<20)
		}
		end := net.Sim.Run(0)
		return end, net.Sim.Events()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
}

func BenchmarkPingpong64B(b *testing.B) {
	g := topology.Line(8, 1)
	routes, _ := routing.ShortestPath{}.Compute(g)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, _ := NewNetwork(g, NewRouteForwarder(routes), cfg, nil, false)
		hosts := g.Hosts()
		MeasurePingpong(net, hosts[0], hosts[7], 64, 10)
	}
}

func BenchmarkIncastPFC(b *testing.B) {
	g := topology.Line(8, 1)
	routes, _ := routing.ShortestPath{}.Compute(g)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, _ := NewNetwork(g, NewRouteForwarder(routes), cfg, nil, false)
		hosts := g.Hosts()
		for j, h := range hosts {
			if j == 3 {
				continue
			}
			net.Host(h).roce.Send(hosts[3], 1, 1<<20)
		}
		net.Sim.Run(0)
	}
}
