package netsim

import (
	"repro/internal/engine"
	"repro/internal/topology"
)

// MeasurePingpong runs an IMB-style Pingpong between hosts a and b:
// reps round trips of a message of the given payload size, returning
// the RTT of each repetition (§VI-B1's latency methodology).
func MeasurePingpong(n *Network, a, b int, bytes, reps int) []Time {
	rtts := make([]Time, 0, reps)
	ha, hb := n.Host(a), n.Host(b)
	const tag = 7001

	// Responder: echo forever. (Measurement harness, cold path: the
	// closure convenience API is fine here.)
	var echo func()
	echo = func() {
		hb.mailbox.recv(n.Sim, a, tag, engine.FuncCB(func() {
			hb.roce.Send(a, tag, bytes)
			echo()
		}))
	}
	echo()

	var start Time
	var ping func(i int)
	ping = func(i int) {
		if i >= reps {
			return
		}
		start = n.Sim.Now()
		ha.roce.Send(b, tag, bytes)
		ha.mailbox.recv(n.Sim, b, tag, engine.FuncCB(func() {
			rtts = append(rtts, n.Sim.Now()-start)
			ping(i + 1)
		}))
	}
	n.Sim.After(0, func() { ping(0) })
	n.Sim.Run(0)
	return rtts
}

// MeanRTT averages a sample set.
func MeanRTT(rtts []Time) Time {
	if len(rtts) == 0 {
		return 0
	}
	var s Time
	for _, r := range rtts {
		s += r
	}
	return s / Time(len(rtts))
}

// GoodputSample is one per-host bandwidth measurement bin.
type GoodputSample struct {
	At   Time
	Gbps float64
}

// SampleGoodput arranges periodic sampling of each listed host's
// delivered bytes, returning a live map that fills as the simulation
// runs. Call before Run; read after.
func SampleGoodput(n *Network, hosts []int, interval, until Time) map[int][]GoodputSample {
	out := map[int][]GoodputSample{}
	last := map[int]int64{}
	var tick func(at Time)
	tick = func(at Time) {
		n.Sim.At(at, func() {
			for _, hv := range hosts {
				h := n.Host(hv)
				d := h.DeliveredBytes - last[hv]
				last[hv] = h.DeliveredBytes
				gbps := float64(d*8) / interval.Seconds() / 1e9
				out[hv] = append(out[hv], GoodputSample{At: at, Gbps: gbps})
			}
			if at+interval <= until {
				tick(at + interval)
			}
		})
	}
	tick(interval)
	return out
}

// LinkLoads snapshots transmitted bytes per logical edge (both
// directions summed) — the Network Monitor feed for adaptive routing.
func (n *Network) LinkLoads() map[int]float64 {
	out := map[int]float64{}
	for _, l := range n.links {
		out[l.EdgeID] += float64(l.TxBytes)
	}
	return out
}

// ResetLinkLoads zeroes the per-link byte counters (telemetry epoch).
func (n *Network) ResetLinkLoads() {
	for _, l := range n.links {
		l.TxBytes = 0
	}
}

// HostsOf is a convenience returning the topology's host vertex IDs.
func HostsOf(g *topology.Graph) []int { return g.Hosts() }
