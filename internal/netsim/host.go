package netsim

import "repro/internal/engine"

// mailbox matches arrived messages with posted receives, MPI-style
// (exact source + tag matching, FIFO per key). Continuations are stored
// as typed engine callbacks, so the app layer stays closure-free.
type mailbox struct {
	arrived map[msgKey]int
	waiting map[msgKey][]engine.Callback
}

type msgKey struct {
	src int
	tag int
}

func newMailbox() *mailbox {
	return &mailbox{arrived: map[msgKey]int{}, waiting: map[msgKey][]engine.Callback{}}
}

func (m *mailbox) deliver(sim *Sim, src, tag int) {
	k := msgKey{src, tag}
	if ws := m.waiting[k]; len(ws) > 0 {
		cont := ws[0]
		m.waiting[k] = ws[1:]
		sim.Post(sim.Now(), cont)
		return
	}
	m.arrived[k]++
}

func (m *mailbox) recv(sim *Sim, src, tag int, cont engine.Callback) {
	k := msgKey{src, tag}
	if m.arrived[k] > 0 {
		m.arrived[k]--
		sim.Post(sim.Now(), cont)
		return
	}
	m.waiting[k] = append(m.waiting[k], cont)
}

// roceMsg is one in-flight RDMA message.
type roceMsg struct {
	id    int64
	dst   int
	tag   int
	bytes int
	sent  int
}

// roceQP is a per-destination queue pair with DCQCN rate control.
type roceQP struct {
	h          *Host
	dst        int
	rate       float64 // current rate, bits/s
	target     float64
	alpha      float64
	msgs       []*roceMsg
	pumping    bool
	nextSendAt Time
	timerOn    bool
}

// roceEngine manages QPs and message reassembly for one host.
type roceEngine struct {
	h      *Host
	qps    map[int]*roceQP
	qpList []*roceQP // creation order, for deterministic kicks
	// reassembly: (src, msgID) -> bytes still missing.
	rx map[rxKey]*rxState
	// np: last CNP time per source (congestion notification point).
	np map[int]Time
	// nextMsg allocates message IDs.
	nextMsg int64
}

type rxKey struct {
	src int
	msg int64
}

type rxState struct {
	got   int
	total int // -1 until the final packet announces it
	tag   int
}

func newRoceEngine(h *Host) *roceEngine {
	return &roceEngine{h: h, qps: map[int]*roceQP{}, rx: map[rxKey]*rxState{}, np: map[int]Time{}}
}

func (e *roceEngine) qp(dst int) *roceQP {
	if q, ok := e.qps[dst]; ok {
		return q
	}
	line := e.h.net.Cfg.LinkBps
	q := &roceQP{h: e.h, dst: dst, rate: line, target: line, alpha: 1}
	e.qps[dst] = q
	e.qpList = append(e.qpList, q)
	return q
}

// Send queues an RDMA message toward dst. Message boundaries are
// preserved; completion is signalled at the receiver's mailbox.
func (e *roceEngine) Send(dst, tag, bytes int) {
	e.nextMsg++
	m := &roceMsg{id: e.nextMsg<<16 | int64(e.h.vertex&0xffff), dst: dst, tag: tag, bytes: bytes}
	q := e.qp(dst)
	q.msgs = append(q.msgs, m)
	q.pump()
}

// pump emits packets of the head message, paced by the DCQCN rate and
// self-clocked against the NIC queue: while more than two packets wait
// on the wire queue, emission pauses until the NIC drains (nicDrained
// kicks it). This enforces the rate at the wire even across PFC
// pauses.
func (q *roceQP) pump() {
	if q.pumping || len(q.msgs) == 0 {
		return
	}
	n := q.h.net
	if q.h.out.queues[0].bytes > 2*(n.Cfg.MTU+n.Cfg.HeaderBytes) {
		return // NIC backlogged; resume on drain
	}
	q.pumping = true
	now := n.Sim.Now()
	at := now + n.Cfg.HostLatency
	if q.nextSendAt > at {
		at = q.nextSendAt
	}
	m := q.msgs[0]
	payload := n.Cfg.MTU
	if rem := m.bytes - m.sent; rem < payload {
		payload = rem
	}
	if payload < 0 {
		payload = 0
	}
	size := payload + n.Cfg.HeaderBytes
	last := m.sent+payload >= m.bytes
	pkt := allocPacket()
	*pkt = Packet{
		ID: n.pktID(), Kind: Data, Src: q.h.vertex, Dst: m.dst,
		Size: size, Len: payload, Flow: m.id, Seq: int64(m.sent),
		Tag: 0, Prio: 0, AppTag: m.tag, Last: last, MsgBytes: m.bytes,
	}
	m.sent += payload
	if last {
		q.msgs = q.msgs[1:]
	}
	gap := serTime(size, q.rate)
	n.Sim.Schedule(at, q, engine.Event{Kind: evQPSend, Ptr: pkt, A: int64(gap)})
	q.armTimer()
}

// OnEvent dispatches QP events: paced packet injection and the DCQCN
// rate-increase timer.
func (q *roceQP) OnEvent(now Time, ev engine.Event) {
	n := q.h.net
	switch ev.Kind {
	case evQPSend:
		q.h.inject(ev.Ptr.(*Packet))
		q.nextSendAt = now + Time(ev.A)
		q.pumping = false
		q.pump()
	case evQPTick:
		// Additive increase toward line rate, alpha decay.
		line := n.Cfg.LinkBps
		q.target += n.Cfg.DCQCNAIRate
		if q.target > line {
			q.target = line
		}
		q.rate = (q.rate + q.target) / 2
		q.alpha *= 1 - n.Cfg.DCQCNGain
		if len(q.msgs) == 0 && q.rate >= line*0.99 {
			q.timerOn = false
			return
		}
		n.Sim.ScheduleAfter(n.Cfg.DCQCNTimer, q, engine.Event{Kind: evQPTick})
	}
}

// armTimer starts the DCQCN rate-increase timer if congestion control
// is enabled.
func (q *roceQP) armTimer() {
	n := q.h.net
	if !n.Cfg.DCQCN || q.timerOn {
		return
	}
	q.timerOn = true
	n.Sim.ScheduleAfter(n.Cfg.DCQCNTimer, q, engine.Event{Kind: evQPTick})
}

// onCNP applies the DCQCN rate-decrease law.
func (q *roceQP) onCNP() {
	n := q.h.net
	g := n.Cfg.DCQCNGain
	q.alpha = (1-g)*q.alpha + g
	q.target = q.rate
	q.rate *= 1 - q.alpha/2
	if min := n.Cfg.LinkBps / 100; q.rate < min {
		q.rate = min
	}
	q.armTimer()
}

// Send posts an RDMA message from this host toward host vertex dst
// with an application tag — the public messaging entry point.
func (h *Host) Send(dst, tag, bytes int) { h.roce.Send(dst, tag, bytes) }

// Recv registers cont to run when a message with (src, tag) completes
// delivery at this host (matching is MPI-style, counted per key).
func (h *Host) Recv(src, tag int, cont func()) {
	h.mailbox.recv(h.net.Sim, src, tag, engine.FuncCB(cont))
}

// Vertex returns the topology vertex ID of this host.
func (h *Host) Vertex() int { return h.vertex }

// inject hands a packet to the host NIC egress queue.
func (h *Host) inject(pkt *Packet) {
	pkt.Prio = pfcClass(pkt)
	pkt.arrClass = pkt.Prio // NIC-originated: arrival class = wire class
	h.out.queues[pkt.Prio].push(pkt)
	h.net.tryTransmit(h.out)
}

// nicDrained is called when a packet leaves the NIC wire queue; it
// resumes any QP pump that deferred on backlog.
func (h *Host) nicDrained() {
	for _, q := range h.roce.qpList {
		q.pump()
	}
}

// OnEvent dispatches host events (delayed application delivery).
func (h *Host) OnEvent(now Time, ev engine.Event) {
	if ev.Kind == evDeliver {
		h.mailbox.deliver(h.net.Sim, int(ev.A), int(ev.B))
	}
}

// receive handles a packet arriving at the host NIC. The caller owns
// the packet and releases it afterwards; nothing here may retain it.
func (h *Host) receive(pkt *Packet) {
	switch pkt.Kind {
	case Data:
		if tc, ok := h.tcp[pkt.Flow]; ok {
			tc.onData(pkt)
			return
		}
		h.roceData(pkt)
	case Ack:
		if tc, ok := h.tcp[pkt.Flow]; ok {
			tc.onAck(pkt)
		}
	case Cnp:
		h.roce.qp(pkt.Src).onCNP()
	}
}

// roceData reassembles RDMA messages and runs the DCQCN notification
// point (CNP on ECN-marked arrivals, rate-limited per source).
func (h *Host) roceData(pkt *Packet) {
	n := h.net
	e := h.roce
	h.DeliveredBytes += int64(pkt.Len)
	n.DeliveredPkt++
	if n.OnDeliver != nil {
		n.OnDeliver(n.Sim.Now())
	}
	if pkt.ECN && n.Cfg.DCQCN {
		if last, ok := e.np[pkt.Src]; !ok || n.Sim.Now()-last >= n.Cfg.CNPInterval {
			e.np[pkt.Src] = n.Sim.Now()
			cnp := allocPacket()
			*cnp = Packet{
				ID: n.pktID(), Kind: Cnp, Src: h.vertex, Dst: pkt.Src,
				Size: 64, Prio: 1,
			}
			h.inject(cnp)
		}
	}
	key := rxKey{pkt.Src, pkt.Flow}
	st, ok := e.rx[key]
	if !ok {
		st = &rxState{total: -1}
		e.rx[key] = st
	}
	st.got += pkt.Len
	st.tag = pkt.AppTag
	if pkt.Last {
		st.total = pkt.MsgBytes
	}
	if st.total >= 0 && st.got >= st.total {
		delete(e.rx, key)
		// NIC/driver delivery latency before the application sees it.
		n.Sim.ScheduleAfter(n.Cfg.HostLatency, h, engine.Event{
			Kind: evDeliver, A: int64(pkt.Src), B: int64(st.tag),
		})
	}
}
