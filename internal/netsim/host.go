package netsim

import "repro/internal/engine"

// mailbox matches arrived messages with posted receives, MPI-style
// (exact source + tag matching, FIFO per key). Continuations are stored
// as typed engine callbacks, so the app layer stays closure-free.
type mailbox struct {
	arrived map[msgKey]int
	waiting map[msgKey][]engine.Callback
}

type msgKey struct {
	src int
	tag int
}

func newMailbox() *mailbox {
	return &mailbox{arrived: map[msgKey]int{}, waiting: map[msgKey][]engine.Callback{}}
}

func (m *mailbox) deliver(sim *Sim, src, tag int) {
	k := msgKey{src, tag}
	if ws := m.waiting[k]; len(ws) > 0 {
		cont := ws[0]
		m.waiting[k] = ws[1:]
		sim.Post(sim.Now(), cont)
		return
	}
	m.arrived[k]++
}

func (m *mailbox) recv(sim *Sim, src, tag int, cont engine.Callback) {
	k := msgKey{src, tag}
	if m.arrived[k] > 0 {
		m.arrived[k]--
		sim.Post(sim.Now(), cont)
		return
	}
	m.waiting[k] = append(m.waiting[k], cont)
}

// roceMsg is one in-flight RDMA message.
type roceMsg struct {
	id    int64
	dst   int
	tag   int
	bytes int
	sent  int
}

// roceQP is a per-destination queue pair; its ccPolicy paces emission
// (DCQCN, Timely, line rate — see cc.go).
type roceQP struct {
	h          *Host
	dst        int
	cc         ccPolicy
	msgs       []*roceMsg
	pumping    bool
	nextSendAt Time
}

// roceEngine manages QPs and message reassembly for one host.
type roceEngine struct {
	h      *Host
	qps    map[int]*roceQP
	qpList []*roceQP // creation order, for deterministic kicks
	// reassembly: (src, msgID) -> bytes still missing.
	rx map[rxKey]*rxState
	// np: last CNP time per flow (congestion notification point).
	// Entries are dropped when the flow's message completes.
	np map[int64]Time
	// nextMsg allocates message IDs.
	nextMsg int64
}

type rxKey struct {
	src int
	msg int64
}

type rxState struct {
	got   int
	total int // -1 until the final packet announces it
	tag   int
}

func newRoceEngine(h *Host) *roceEngine {
	return &roceEngine{h: h, qps: map[int]*roceQP{}, rx: map[rxKey]*rxState{}, np: map[int64]Time{}}
}

func (e *roceEngine) qp(dst int) *roceQP {
	if q, ok := e.qps[dst]; ok {
		return q
	}
	q := &roceQP{h: e.h, dst: dst, cc: e.h.net.newQPCC()}
	e.qps[dst] = q
	e.qpList = append(e.qpList, q)
	return q
}

// roceFlowID packs (source vertex, per-host message counter) into one
// fabric-unique flow ID: the vertex in the low 32 bits — wide enough
// for any in-memory topology (the k=64 fat-tree's ~65k vertices
// overflowed the 16-bit packing this replaces) — and the counter
// above, staying clear of bit 62, which namespaces TCP flow IDs.
func roceFlowID(vertex int, msg int64) int64 {
	return msg<<32 | int64(uint32(vertex))
}

// Send queues an RDMA message toward dst. Message boundaries are
// preserved; completion is signalled at the receiver's mailbox.
func (e *roceEngine) Send(dst, tag, bytes int) {
	e.nextMsg++
	m := &roceMsg{id: roceFlowID(e.h.vertex, e.nextMsg), dst: dst, tag: tag, bytes: bytes}
	q := e.qp(dst)
	q.msgs = append(q.msgs, m)
	q.pump()
}

// pump emits packets of the head message, paced by the CC policy's
// rate and self-clocked against the NIC queue: while more than two
// packets wait on the wire's data queues, emission pauses until the
// NIC drains (nicDrained kicks it). This enforces the rate at the
// wire even across PFC pauses.
func (q *roceQP) pump() {
	if q.pumping || len(q.msgs) == 0 {
		return
	}
	n := q.h.net
	if q.h.out.queuedDataBytes() > 2*(n.Cfg.MTU+n.Cfg.HeaderBytes) {
		return // NIC backlogged; resume on drain
	}
	q.pumping = true
	now := n.Sim.Now()
	q.cc.Wake(q, now)
	at := now + n.Cfg.HostLatency
	if q.nextSendAt > at {
		at = q.nextSendAt
	}
	m := q.msgs[0]
	payload := n.Cfg.MTU
	if rem := m.bytes - m.sent; rem < payload {
		payload = rem
	}
	if payload < 0 {
		payload = 0
	}
	size := payload + n.Cfg.HeaderBytes
	last := m.sent+payload >= m.bytes
	pkt := allocPacket()
	*pkt = Packet{
		ID: n.pktID(), Kind: Data, Src: q.h.vertex, Dst: m.dst,
		Size: size, Len: payload, Flow: m.id, Seq: int64(m.sent),
		Tag: 0, Prio: 0, AppTag: m.tag, Last: last, MsgBytes: m.bytes,
		TS: at,
	}
	if n.cc == ccPFabric {
		// pFabric: stamp the wire class from the bytes still unsent
		// (this packet included) — the less left, the higher the
		// class; inject and the switches keep the stamp.
		pkt.Prio = sizePrioClass(m.bytes-m.sent, n.Cfg.MTU)
	}
	m.sent += payload
	if last {
		q.msgs = q.msgs[1:]
	}
	gap := serTime(size, q.cc.Rate())
	n.Sim.Schedule(at, q, engine.Event{Kind: evQPSend, Ptr: pkt, A: int64(gap)})
	q.cc.Sent(q, now)
}

// OnEvent dispatches QP events: paced packet injection and the CC
// policy's timer.
func (q *roceQP) OnEvent(now Time, ev engine.Event) {
	switch ev.Kind {
	case evQPSend:
		q.h.inject(ev.Ptr.(*Packet))
		q.nextSendAt = now + Time(ev.A)
		q.pumping = false
		q.pump()
	case evQPTick:
		q.cc.Tick(q, now)
	}
}

// onCNP routes a congestion notification to the CC policy.
func (q *roceQP) onCNP() { q.cc.CNP(q, q.h.net.Sim.Now()) }

// onAck routes a delay echo to the CC policy: the ack carries the data
// packet's send stamp, so now minus the stamp is the RTT sample.
func (q *roceQP) onAck(pkt *Packet) {
	now := q.h.net.Sim.Now()
	q.cc.Ack(q, now, now-pkt.TS)
}

// Send posts an RDMA message from this host toward host vertex dst
// with an application tag — the public messaging entry point.
func (h *Host) Send(dst, tag, bytes int) { h.roce.Send(dst, tag, bytes) }

// Recv registers cont to run when a message with (src, tag) completes
// delivery at this host (matching is MPI-style, counted per key).
func (h *Host) Recv(src, tag int, cont func()) {
	h.mailbox.recv(h.net.Sim, src, tag, engine.FuncCB(cont))
}

// Vertex returns the topology vertex ID of this host.
func (h *Host) Vertex() int { return h.vertex }

// inject hands a packet to the host NIC egress queue. Under pFabric a
// data packet keeps the size-priority class the QP stamped; every
// other packet derives its class from its VC tag as usual.
func (h *Host) inject(pkt *Packet) {
	if h.net.cc != ccPFabric || pkt.Kind != Data {
		pkt.Prio = pfcClass(pkt)
	}
	pkt.arrClass = pkt.Prio // NIC-originated: arrival class = wire class
	h.out.queues[pkt.Prio].push(pkt)
	h.net.tryTransmit(h.out)
}

// nicDrained is called when a packet leaves the NIC wire queue; it
// resumes any QP pump that deferred on backlog.
func (h *Host) nicDrained() {
	for _, q := range h.roce.qpList {
		q.pump()
	}
}

// OnEvent dispatches host events (delayed application delivery).
func (h *Host) OnEvent(now Time, ev engine.Event) {
	if ev.Kind == evDeliver {
		h.mailbox.deliver(h.net.Sim, int(ev.A), int(ev.B))
	}
}

// receive handles a packet arriving at the host NIC. The caller owns
// the packet and releases it afterwards; nothing here may retain it.
func (h *Host) receive(pkt *Packet) {
	switch pkt.Kind {
	case Data:
		if tc, ok := h.tcp[pkt.Flow]; ok {
			tc.onData(pkt)
			return
		}
		h.roceData(pkt)
	case Ack:
		if tc, ok := h.tcp[pkt.Flow]; ok {
			tc.onAck(pkt)
			return
		}
		// RoCE delay-CC ack: the echoed stamp yields the RTT sample.
		h.roce.qp(pkt.Src).onAck(pkt)
	case Cnp:
		h.roce.qp(pkt.Src).onCNP()
	}
}

// roceData reassembles RDMA messages and runs the receiver half of
// the CC policy: the DCQCN notification point (CNP on ECN-marked
// arrivals, rate-limited per flow) or the Timely delay echo (an ack
// per data packet carrying the send stamp back to the source).
func (h *Host) roceData(pkt *Packet) {
	n := h.net
	e := h.roce
	h.DeliveredBytes += int64(pkt.Len)
	n.DeliveredPkt++
	if n.OnDeliver != nil {
		n.OnDeliver(n.Sim.Now())
	}
	switch n.cc {
	case ccDCQCN:
		if pkt.ECN {
			// Throttle per flow (CNPInterval documents exactly this),
			// so concurrent flows from one source each keep their own
			// congestion signal instead of starving each other's.
			if last, ok := e.np[pkt.Flow]; !ok || n.Sim.Now()-last >= n.Cfg.CNPInterval {
				e.np[pkt.Flow] = n.Sim.Now()
				cnp := allocPacket()
				*cnp = Packet{
					ID: n.pktID(), Kind: Cnp, Src: h.vertex, Dst: pkt.Src,
					Size: 64, Prio: 1,
				}
				h.inject(cnp)
			}
		}
	case ccTimely:
		ack := allocPacket()
		*ack = Packet{
			ID: n.pktID(), Kind: Ack, Src: h.vertex, Dst: pkt.Src,
			Size: 64, Flow: pkt.Flow, TS: pkt.TS,
		}
		h.inject(ack)
	}
	key := rxKey{pkt.Src, pkt.Flow}
	st, ok := e.rx[key]
	if !ok {
		st = &rxState{total: -1}
		e.rx[key] = st
	}
	st.got += pkt.Len
	st.tag = pkt.AppTag
	if pkt.Last {
		st.total = pkt.MsgBytes
	}
	if st.total >= 0 && st.got >= st.total {
		delete(e.rx, key)
		delete(e.np, pkt.Flow) // release the per-flow CNP throttle slot
		// NIC/driver delivery latency before the application sees it.
		n.Sim.ScheduleAfter(n.Cfg.HostLatency, h, engine.Event{
			Kind: evDeliver, A: int64(pkt.Src), B: int64(st.tag),
		})
	}
}
