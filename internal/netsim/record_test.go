package netsim

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// runApp executes programs on a fresh line network and returns the app
// plus the ACT.
func runApp(t *testing.T, programs [][]Op, rec *Recorder) Time {
	t.Helper()
	g := topology.Line(4, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(g, NewRouteForwarder(routes), DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(net, g.Hosts(), programs, nil)
	if rec != nil {
		rec.Attach(app)
	}
	app.Start()
	net.Sim.Run(0)
	act := app.ACT()
	if act < 0 {
		t.Fatal("app did not complete")
	}
	return act
}

func fourRankProgram() [][]Op {
	// Rank 0 computes, sends to 1 and 3; ranks 1,3 echo back; rank 2
	// relays a message on to 3 — a mix of think time and dependencies.
	return [][]Op{
		{
			{Kind: OpCompute, Dur: 2 * Millisecond},
			{Kind: OpSend, Peer: 1, Bytes: 64 * 1024, MTag: 1},
			{Kind: OpSend, Peer: 3, Bytes: 32 * 1024, MTag: 2},
			{Kind: OpRecv, Peer: 1, MTag: 3},
			{Kind: OpRecv, Peer: 3, MTag: 4},
		},
		{
			{Kind: OpRecv, Peer: 0, MTag: 1},
			{Kind: OpCompute, Dur: 500 * Microsecond},
			{Kind: OpSend, Peer: 0, Bytes: 8 * 1024, MTag: 3},
			{Kind: OpSend, Peer: 2, Bytes: 16 * 1024, MTag: 5},
		},
		{
			{Kind: OpRecv, Peer: 1, MTag: 5},
			{Kind: OpSend, Peer: 3, Bytes: 16 * 1024, MTag: 6},
		},
		{
			{Kind: OpRecv, Peer: 0, MTag: 2},
			{Kind: OpSend, Peer: 0, Bytes: 8 * 1024, MTag: 4},
			{Kind: OpRecv, Peer: 2, MTag: 6},
		},
	}
}

func TestRecorderCapturesAllOps(t *testing.T) {
	programs := fourRankProgram()
	rec := NewRecorder(len(programs))
	runApp(t, programs, rec)
	for r, prog := range programs {
		if got := len(rec.Ops(r)); got != len(prog) {
			t.Errorf("rank %d: recorded %d ops, ran %d", r, got, len(prog))
		}
	}
	// Issue times must be non-decreasing per rank.
	for r := range programs {
		ops := rec.Ops(r)
		for i := 1; i < len(ops); i++ {
			if ops[i].At < ops[i-1].At {
				t.Errorf("rank %d: op %d issued before op %d", r, i, i-1)
			}
		}
	}
}

func TestRecordedTraceReplaysWithMatchingACT(t *testing.T) {
	// Record a run, reconstruct programs (compute re-derived from
	// gaps), replay — the ACT must match closely, the property that
	// makes trace-driven evaluation sound (§VI-A2).
	programs := fourRankProgram()
	rec := NewRecorder(len(programs))
	actOrig := runApp(t, programs, rec)
	replayProgs := rec.Programs()
	actReplay := runApp(t, replayProgs, nil)
	diff := actReplay - actOrig
	if diff < 0 {
		diff = -diff
	}
	if float64(diff)/float64(actOrig) > 0.02 {
		t.Errorf("replay ACT %v deviates from original %v by >2%%", actReplay, actOrig)
	}
}

func TestRecordedProgramsValid(t *testing.T) {
	programs := fourRankProgram()
	rec := NewRecorder(len(programs))
	runApp(t, programs, rec)
	replay := rec.Programs()
	// Sends/recvs must be balanced exactly as in the original.
	count := func(progs [][]Op, kind OpKind) int {
		n := 0
		for _, p := range progs {
			for _, op := range p {
				if op.Kind == kind {
					n++
				}
			}
		}
		return n
	}
	if count(replay, OpSend) != count(programs, OpSend) {
		t.Errorf("sends: %d vs %d", count(replay, OpSend), count(programs, OpSend))
	}
	if count(replay, OpRecv) != count(programs, OpRecv) {
		t.Errorf("recvs: %d vs %d", count(replay, OpRecv), count(programs, OpRecv))
	}
	// Explicit computes were consumed and re-derived.
	if count(replay, OpCompute) == 0 {
		t.Error("no compute gaps reconstructed")
	}
}

func TestRecordThenReplayAcrossPlatforms(t *testing.T) {
	// The paper's workflow: collect the trace once (their real nodes;
	// here the full-testbed engine), then replay it on SDT. The
	// replayed ACT on an identical fabric must match the original.
	g := topology.Line(4, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	run := func(programs [][]Op, sdt bool, rec *Recorder) Time {
		var xof func(int) int
		if sdt {
			xof = func(int) int { return 0 }
		}
		net, err := NewNetwork(g, NewRouteForwarder(routes), DefaultConfig(), xof, sdt)
		if err != nil {
			t.Fatal(err)
		}
		app := NewApp(net, g.Hosts(), programs, nil)
		if rec != nil {
			rec.Attach(app)
		}
		app.Start()
		net.Sim.Run(0)
		return app.ACT()
	}
	programs := fourRankProgram()
	rec := NewRecorder(len(programs))
	full := run(programs, false, rec)
	sdtACT := run(rec.Programs(), true, nil)
	over := float64(sdtACT-full) / float64(full)
	if over < 0 || over > 0.03 {
		t.Errorf("trace replayed on SDT deviates %.4f from full-testbed recording", over)
	}
}
