package netsim

import (
	"testing"

	"repro/internal/topology"
)

// --- DCQCN rate-law boundaries (pure state, via the CCPolicy seam) ---

func TestDCQCNDecreaseFloor(t *testing.T) {
	cfg := DefaultConfig()
	s := newDCQCNState(&cfg)
	floor := cfg.LinkBps / 100
	for i := 0; i < 200; i++ {
		s.decrease()
		if s.rate < floor {
			t.Fatalf("decrease %d: rate %.3g below the LinkBps/100 floor %.3g", i, s.rate, floor)
		}
	}
	if s.rate != floor {
		t.Errorf("after sustained CNPs rate = %.6g, want pinned at the floor %.6g", s.rate, floor)
	}
}

func TestDCQCNAlphaConvergence(t *testing.T) {
	cfg := DefaultConfig()
	s := newDCQCNState(&cfg)
	// Sustained congestion: alpha EWMA must rise monotonically toward 1.
	prev := s.alpha
	for i := 0; i < 300; i++ {
		s.decrease()
		if s.alpha < prev || s.alpha > 1 {
			t.Fatalf("decrease %d: alpha %.6g not monotone in (%.6g, 1]", i, s.alpha, prev)
		}
		prev = s.alpha
	}
	if 1-s.alpha > 1e-6 {
		t.Errorf("alpha converged to %.8g, want ~1 under sustained CNPs", s.alpha)
	}
	// Quiet period: alpha must decay toward 0 by (1-g) per tick.
	for i := 0; i < 600; i++ {
		s.increase()
	}
	if s.alpha > 1e-6 {
		t.Errorf("alpha decayed to %.8g, want ~0 after a long quiet period", s.alpha)
	}
}

func TestDCQCNTargetClampAtLine(t *testing.T) {
	cfg := DefaultConfig()
	s := newDCQCNState(&cfg)
	s.decrease() // knock the rate off line so recovery has work to do
	for i := 0; i < 500; i++ {
		s.increase()
		if s.target > s.line {
			t.Fatalf("increase %d: target %.6g above line %.6g", i, s.target, s.line)
		}
		if s.rate > s.line {
			t.Fatalf("increase %d: rate %.6g above line %.6g", i, s.rate, s.line)
		}
	}
	if s.target != s.line {
		t.Errorf("target = %.6g, want clamped at line %.6g", s.target, s.line)
	}
	if !s.recovered() {
		t.Errorf("rate = %.6g did not recover to 99%% of line %.6g", s.rate, s.line)
	}
}

// --- Timely gradient law ---

func TestTimelyGradientLaw(t *testing.T) {
	cfg := DefaultConfig()
	line := cfg.LinkBps
	fresh := func(rate float64) *timelyCC {
		c := newTimelyCC(&cfg)
		c.rate = rate
		c.sample(cfg.TimelyMinRTT) // prime prevRTT
		return c
	}

	// Below TLow: additive increase regardless of gradient.
	c := fresh(line / 2)
	before := c.rate
	c.sample(cfg.TimelyTLow / 2)
	if c.rate != before+cfg.TimelyAddBps {
		t.Errorf("low RTT: rate %.6g, want additive step to %.6g", c.rate, before+cfg.TimelyAddBps)
	}

	// Above THigh: multiplicative decrease.
	c = fresh(line)
	before = c.rate
	c.sample(2 * cfg.TimelyTHigh)
	if c.rate >= before {
		t.Errorf("high RTT: rate %.6g did not decrease from %.6g", c.rate, before)
	}

	// Gradient zone, rising RTTs: decrease proportional to the gradient.
	c = fresh(line)
	mid := (cfg.TimelyTLow + cfg.TimelyTHigh) / 2
	c.sample(mid)
	before = c.rate
	c.sample(mid + 20*Microsecond)
	if c.rate >= before {
		t.Errorf("rising RTT gradient: rate %.6g did not decrease from %.6g", c.rate, before)
	}

	// Gradient zone, falling RTTs: additive increase.
	c = fresh(line / 2)
	c.sample(mid + 40*Microsecond)
	before = c.rate
	c.sample(mid)
	if c.rate <= before {
		t.Errorf("falling RTT gradient: rate %.6g did not increase from %.6g", c.rate, before)
	}

	// Clamps: sustained quiet never exceeds line, sustained congestion
	// never drops below the floor.
	c = fresh(line)
	for i := 0; i < 1000; i++ {
		c.sample(cfg.TimelyTLow / 4)
		if c.rate > line {
			t.Fatalf("sample %d: rate %.6g above line", i, c.rate)
		}
	}
	for i := 0; i < 1000; i++ {
		c.sample(10 * cfg.TimelyTHigh)
		if c.rate < line/100 {
			t.Fatalf("sample %d: rate %.6g below the floor", i, c.rate)
		}
	}
}

// --- pFabric size-priority mapping ---

func TestSizePrioClass(t *testing.T) {
	mtu := 4096
	cases := []struct {
		remaining int
		want      int
	}{
		{0, ctrlClass - 1},
		{1, ctrlClass - 1},
		{mtu, ctrlClass - 1},
		{mtu + 1, ctrlClass - 2},
		{4 * mtu, ctrlClass - 2},
		{4*mtu + 1, ctrlClass - 3},
		{16 * mtu, ctrlClass - 3},
		{64 * mtu, ctrlClass - 4},
		{256 * mtu, ctrlClass - 5},
		{1024 * mtu, ctrlClass - 6},
		{1024*mtu + 1, 0},
		{1 << 30, 0},
	}
	for _, c := range cases {
		if got := sizePrioClass(c.remaining, mtu); got != c.want {
			t.Errorf("sizePrioClass(%d) = %d, want %d", c.remaining, got, c.want)
		}
	}
	// Every class must stay inside the pausable data range.
	for rem := 0; rem < 1<<22; rem += 997 {
		if cls := sizePrioClass(rem, mtu); cls < 0 || cls >= ctrlClass {
			t.Fatalf("sizePrioClass(%d) = %d outside data classes [0, %d)", rem, cls, ctrlClass)
		}
	}
}

// --- Config seam ---

func TestUnknownCCPolicyRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CC = "bbr"
	g := topology.Line(2, 1)
	if _, err := NewNetwork(g, dropForwarder{}, cfg, nil, false); err == nil {
		t.Fatal("unknown CC policy accepted")
	}
}

// dropForwarder drops everything at the first switch — enough for
// host-plane tests that never need delivery.
type dropForwarder struct{ seen map[int]int64 }

func (d dropForwarder) Forward(sw, inPort int, pkt *Packet) (int, int, Time, bool) {
	if d.seen != nil {
		d.seen[pkt.Src] = pkt.Flow
	}
	return 0, 0, 0, false
}

// --- Satellite: flow-ID packing across >= 65k vertices ---

func TestFlowIDsDistinctAcross65kVertices(t *testing.T) {
	// A star big enough that two host vertices differ by exactly 65536
	// — the pair the old 16-bit packing (msg<<16 | vertex&0xffff)
	// collided on.
	g := topology.Star(33000, 1) // 1 hub + 33000 leaves + 33000 hosts
	if n := len(g.Vertices); n < 1<<16 {
		t.Fatalf("topology has %d vertices, need >= %d", n, 1<<16)
	}
	hosts := g.Hosts()
	a, b := -1, -1
	for _, h := range hosts {
		if h+1<<16 < len(g.Vertices) && g.Vertices[h+1<<16].Kind == topology.Host {
			a, b = h, h+1<<16
			break
		}
	}
	if a < 0 {
		t.Fatalf("no host pair with vertex IDs 65536 apart in %d hosts", len(hosts))
	}
	fwd := dropForwarder{seen: map[int]int64{}}
	net, err := NewNetwork(g, fwd, DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	net.Host(a).Send(b, 1, 100)
	net.Host(b).Send(a, 1, 100)
	net.Sim.Run(0)
	fa, oka := fwd.seen[a]
	fb, okb := fwd.seen[b]
	if !oka || !okb {
		t.Fatalf("packets not observed: a=%v b=%v", oka, okb)
	}
	if fa == fb {
		t.Fatalf("flow IDs collide across vertices %d and %d: both %#x", a, b, fa)
	}
	if fa != roceFlowID(a, 1) || fb != roceFlowID(b, 1) {
		t.Errorf("flow IDs %#x/%#x do not match the packing for vertices %d/%d", fa, fb, a, b)
	}
}

// --- Satellite: CNP throttled per flow, not per source ---

func TestCNPThrottledPerFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DCQCN = true
	net, g := buildLine(t, 2, 1, cfg)
	hosts := g.Hosts()
	rx := net.Host(hosts[0])
	src := hosts[1]
	mk := func(flow int64) *Packet {
		pkt := allocPacket()
		*pkt = Packet{Kind: Data, Src: src, Dst: hosts[0], Size: 1000, Len: 934, Flow: flow, ECN: true}
		return pkt
	}
	feed := func(flow int64) {
		pkt := mk(flow)
		rx.receive(pkt)
		pkt.release()
	}

	// Two concurrent flows from ONE source, both ECN-marked: each must
	// get its own CNP (the old per-source throttle starved the second).
	before := net.nextID
	feed(roceFlowID(src, 1))
	feed(roceFlowID(src, 2))
	if got := net.nextID - before; got != 2 {
		t.Fatalf("two marked flows from one source produced %d CNPs, want 2", got)
	}

	// The same flow twice inside CNPInterval: still throttled to one.
	before = net.nextID
	feed(roceFlowID(src, 3))
	feed(roceFlowID(src, 3))
	if got := net.nextID - before; got != 1 {
		t.Fatalf("same flow twice inside CNPInterval produced %d CNPs, want 1", got)
	}
}

// --- Satellite: DCQCN timer disarms on idle QPs ---

func TestDCQCNIdleTimerDisarms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DCQCN = true
	net, g := buildLine(t, 2, 1, cfg)
	hosts := g.Hosts()
	src := net.Host(hosts[0])
	var delivered Time
	net.Host(hosts[1]).Recv(hosts[0], 1, func() { delivered = net.Sim.Now() })
	src.Send(hosts[1], 1, 8*1024)
	// Collapse the rate so recovery needs many timer periods.
	q := src.roce.qp(hosts[1])
	for i := 0; i < 8; i++ {
		q.onCNP()
	}
	cc := q.cc.(*dcqcnCC)
	if cc.recovered() {
		t.Fatal("rate did not collapse")
	}

	end := net.Sim.Run(0)
	if delivered == 0 {
		t.Fatal("message not delivered")
	}
	// The engine must go quiescent within a couple of timer periods of
	// the delivery: the old code self-rescheduled every DCQCNTimer on
	// the idle QP until the rate crawled back to 99% of line (~10 ms of
	// pure timer events here).
	if idle := end - delivered; idle > 3*cfg.DCQCNTimer {
		t.Errorf("engine ran %v past the last delivery, want <= %v (idle timer not disarmed)",
			idle, 3*cfg.DCQCNTimer)
	}

	// Event-count pin: a long idle gap fires no QP events at all.
	ev0 := net.Sim.Events()
	net.Sim.At(net.Sim.Now()+20*Millisecond, func() {})
	net.Sim.Run(0)
	if d := net.Sim.Events() - ev0; d != 1 {
		t.Errorf("idle gap fired %d events, want exactly the 1 probe", d)
	}

	// The next Send replays the parked ticks: after 20 ms (>= ~360
	// periods) the QP must wake fully recovered.
	src.Send(hosts[1], 1, 1024)
	if !cc.recovered() {
		t.Errorf("rate %.6g after long idle, want recovered to >= 99%% of %.6g", cc.rate, cc.line)
	}
	net.Sim.Run(0)
}

// --- End-to-end behaviour per policy ---

// ccIncast runs the 7-senders-to-one incast of TestDCQCNReducesPauses
// under an arbitrary CC config and reports (pauses, end time).
func ccIncast(t *testing.T, cfg Config, bytes int) (int64, Time) {
	t.Helper()
	net, g := buildLine(t, 8, 1, cfg)
	hosts := g.Hosts()
	for i, h := range hosts {
		if i == 3 {
			continue
		}
		net.Host(h).roce.Send(hosts[3], 1, bytes)
	}
	end := net.Sim.Run(0)
	if net.TotalDrops != 0 {
		t.Fatalf("lossless run dropped %d", net.TotalDrops)
	}
	return net.PausesSent, end
}

func TestTimelyReducesPauses(t *testing.T) {
	base := DefaultConfig()
	off, _ := ccIncast(t, base, 4<<20)
	cfg := DefaultConfig()
	cfg.CC = CCTimely
	on, _ := ccIncast(t, cfg, 4<<20)
	if on >= off {
		t.Errorf("timely on: %d pauses, off: %d; delay CC should back off before PFC", on, off)
	}
}

func TestCCDeterminism(t *testing.T) {
	for _, cc := range []string{CCTimely, CCPFabric} {
		run := func() (Time, int64) {
			cfg := DefaultConfig()
			cfg.CC = cc
			net, g := buildLine(t, 8, 1, cfg)
			hosts := g.Hosts()
			for i, h := range hosts {
				if i == 3 {
					continue
				}
				net.Host(h).roce.Send(hosts[3], 1, 1<<20)
			}
			end := net.Sim.Run(0)
			return end, net.Sim.Events()
		}
		t1, e1 := run()
		t2, e2 := run()
		if t1 != t2 || e1 != e2 {
			t.Errorf("%s non-deterministic: (%v,%d) vs (%v,%d)", cc, t1, e1, t2, e2)
		}
	}
}

// TestPFabricPrioritizesShortFlows pins the point of size-priority
// scheduling: a short message contending with a long one on the same
// path finishes far sooner when its packets ride a higher class.
func TestPFabricPrioritizesShortFlows(t *testing.T) {
	mouse := func(cc string) Time {
		cfg := DefaultConfig()
		cfg.CC = cc
		net, g := buildLine(t, 2, 2, cfg)
		hosts := g.Hosts() // h0,h1 on switch 0; h2,h3 on switch 1
		var mouseAt Time
		net.Host(hosts[3]).Recv(hosts[1], 2, func() { mouseAt = net.Sim.Now() })
		// Elephant first so the shared link is already backlogged.
		net.Host(hosts[0]).Send(hosts[3], 1, 8<<20)
		net.Sim.At(100*Microsecond, func() {
			net.Host(hosts[1]).Send(hosts[3], 2, 64*1024)
		})
		net.Sim.Run(0)
		if mouseAt == 0 {
			t.Fatalf("%s: mouse never delivered", cc)
		}
		return mouseAt
	}
	fifo := mouse("")
	prio := mouse(CCPFabric)
	if prio >= fifo {
		t.Errorf("pfabric mouse FCT %v >= FIFO %v; size priority should cut short-flow latency", prio, fifo)
	}
}

// FuzzCCPolicy drives the pure rate laws with arbitrary signal
// sequences and checks the rate invariants every policy must hold:
// never negative, never above line, floored at line/100 once any
// signal has arrived, never NaN, and pFabric classes always inside the
// data range.
func FuzzCCPolicy(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 1})
	f.Add([]byte{2, 2, 2, 2, 1, 1, 1, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		cfg := DefaultConfig()
		line := cfg.LinkBps
		d := newDCQCNState(&cfg)
		tc := newTimelyCC(&cfg)
		check := func(name string, rate float64) {
			if rate != rate { // NaN
				t.Fatalf("%s rate is NaN", name)
			}
			if rate < line/100-1e-9 || rate > line+1e-9 {
				t.Fatalf("%s rate %.6g outside [%.6g, %.6g]", name, rate, line/100, line)
			}
		}
		for i, op := range ops {
			switch op % 4 {
			case 0:
				d.decrease()
			case 1:
				d.increase()
			case 2:
				// RTT from the next byte: spans negative, zero, tiny,
				// and way past THigh.
				var raw int64 = -1
				if i+1 < len(ops) {
					raw = int64(ops[i+1])*20*int64(Microsecond) - 50*int64(Microsecond)
				}
				tc.sample(Time(raw))
			case 3:
				rem := int(op) * int(op) * 1024
				if cls := sizePrioClass(rem, cfg.MTU); cls < 0 || cls >= ctrlClass {
					t.Fatalf("sizePrioClass(%d) = %d outside data classes", rem, cls)
				}
			}
			check("dcqcn", d.rate)
			check("timely", tc.rate)
			if d.target > line || d.target != d.target {
				t.Fatalf("dcqcn target %.6g above line or NaN", d.target)
			}
			if d.alpha < 0 || d.alpha > 1 || d.alpha != d.alpha {
				t.Fatalf("dcqcn alpha %.6g outside [0,1] or NaN", d.alpha)
			}
		}
	})
}
