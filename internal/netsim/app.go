package netsim

// The application layer executes MPI-like rank programs over RoCE
// messaging: ordered per-rank operation lists with blocking receives,
// non-blocking (eager) sends, and compute phases — the trace-replay
// model the paper's simulator uses (§VI-A2: "the simulator uses the
// traces collected from running an HPC application on real computing
// nodes").

import (
	"sync/atomic"

	"repro/internal/engine"
)

// OpKind enumerates trace operations.
type OpKind int

const (
	// OpSend posts a message to Peer (non-blocking, eager).
	OpSend OpKind = iota
	// OpRecv blocks until a message with (Peer, MTag) arrives.
	OpRecv
	// OpCompute advances local time by Dur.
	OpCompute
)

// Op is one trace operation.
type Op struct {
	Kind  OpKind
	Peer  int // rank index
	Bytes int
	MTag  int
	Dur   Time
}

// Rank binds a rank program to a host.
type Rank struct {
	Index      int
	host       *Host
	prog       []Op
	pc         int
	FinishedAt Time
	Done       bool
}

// App is a running distributed application: one rank per host.
//
// In a sharded fabric each rank executes on its host's shard engine:
// all per-rank state stays shard-local, and the only cross-shard
// fields (nDone) are atomic, so concurrent window execution is safe.
type App struct {
	net    *Network
	Ranks  []*Rank
	nDone  atomic.Int64
	onDone func(act Time)
	// OnOp, when set, observes every operation as it is issued
	// (rank index, the op, issue time) — the trace-recording hook.
	// Serial runs only: sharded executors run ranks concurrently, so a
	// recording hook would race.
	OnOp func(rank int, op Op, at Time)
}

// NewApp installs rank programs onto hosts. hosts[i] runs programs[i];
// Op.Peer refers to rank indices, mapped here to host vertices.
func NewApp(n *Network, hosts []int, programs [][]Op, onDone func(act Time)) *App {
	if len(hosts) != len(programs) {
		panic("netsim: hosts/programs length mismatch")
	}
	app := &App{net: n, onDone: onDone}
	for i, hv := range hosts {
		h := n.Host(hv)
		if h == nil {
			panic("netsim: app host vertex is not a host")
		}
		app.Ranks = append(app.Ranks, &Rank{Index: i, host: h, prog: programs[i]})
	}
	return app
}

// Start launches all ranks at the current simulation time, each on its
// own host's engine (one shared engine in a serial fabric).
func (a *App) Start() {
	for _, r := range a.Ranks {
		r.host.net.Sim.ScheduleAfter(0, a, engine.Event{Kind: evAppStep, Ptr: r})
	}
}

// OnEvent resumes a rank's program (trace replay is closure-free).
func (a *App) OnEvent(now Time, ev engine.Event) {
	if ev.Kind == evAppStep {
		a.step(ev.Ptr.(*Rank))
	}
}

// hostOf maps a rank index to its host vertex.
func (a *App) hostOf(rank int) int { return a.Ranks[rank].host.vertex }

// step runs ops until the rank blocks or finishes. All engine access
// goes through the rank's host network, so a rank scheduled on shard i
// never touches another shard's clock or queue.
func (a *App) step(r *Rank) {
	n := r.host.net
	for r.pc < len(r.prog) {
		op := r.prog[r.pc]
		r.pc++
		if a.OnOp != nil {
			a.OnOp(r.Index, op, n.Sim.Now())
		}
		switch op.Kind {
		case OpSend:
			r.host.roce.Send(a.hostOf(op.Peer), op.MTag, op.Bytes)
		case OpRecv:
			src := a.hostOf(op.Peer)
			cont := engine.Callback{H: a, Ev: engine.Event{Kind: evAppStep, Ptr: r}}
			r.host.mailbox.recv(n.Sim, src, op.MTag, cont)
			return
		case OpCompute:
			n.Sim.ScheduleAfter(op.Dur, a, engine.Event{Kind: evAppStep, Ptr: r})
			return
		}
	}
	if !r.Done {
		r.Done = true
		r.FinishedAt = n.Sim.Now()
		if a.nDone.Add(1) == int64(len(a.Ranks)) && a.onDone != nil {
			a.onDone(n.Sim.Now())
		}
	}
}

// ACT returns the application completion time (latest rank finish).
func (a *App) ACT() Time {
	var m Time
	for _, r := range a.Ranks {
		if !r.Done {
			return -1
		}
		if r.FinishedAt > m {
			m = r.FinishedAt
		}
	}
	return m
}
