// Package netsim is an event-driven, packet-level network simulator in
// the style of BookSim and SST/Macro (§VI-A2 of the paper): it supports
// PFC lossless operation, ECN marking, DCQCN rate control, a Reno-style
// TCP, cut-through forwarding, and trace replay of MPI-like
// applications.
//
// The same engine plays two roles in the reproduction:
//
//   - as the paper's *simulator baseline* (its wall-clock execution time
//     is what Fig. 13 compares against), and
//   - as the substrate standing in for physical hardware: the "full
//     testbed" is the engine run on the logical topology with one
//     crossbar per switch, while "SDT" is the same logical topology
//     whose sub-switches share the crossbars of their physical hosts
//     (plus the flow-table pipeline overhead), so the *difference*
//     between the two runs isolates exactly the projection overhead the
//     paper measures in Figs. 11–12.
package netsim

import (
	"container/heap"
)

// Time is simulation time in picoseconds. Integer picoseconds make
// 10 Gbps arithmetic exact (0.8 ns/byte = 800 ps/byte) and cover ~106
// days in an int64.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a Time to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event scheduler. Events at equal times run in
// scheduling order (deterministic).
type Sim struct {
	now    Time
	seq    int64
	events eventHeap
	count  int64
}

// NewSim returns a scheduler at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Events returns the number of events executed so far.
func (s *Sim) Events() int64 { return s.count }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.count++
	e.fn()
	return true
}

// Run executes events until the queue drains or the time limit passes
// (limit 0 = no limit). It returns the final simulation time.
func (s *Sim) Run(limit Time) Time {
	for len(s.events) > 0 {
		if limit > 0 && s.events[0].at > limit {
			s.now = limit
			break
		}
		s.Step()
	}
	return s.now
}
