// Package netsim is an event-driven, packet-level network simulator in
// the style of BookSim and SST/Macro (§VI-A2 of the paper): it supports
// PFC lossless operation, ECN marking, DCQCN rate control, a Reno-style
// TCP, cut-through forwarding, and trace replay of MPI-like
// applications.
//
// The same engine plays two roles in the reproduction:
//
//   - as the paper's *simulator baseline* (its wall-clock execution time
//     is what Fig. 13 compares against), and
//   - as the substrate standing in for physical hardware: the "full
//     testbed" is the engine run on the logical topology with one
//     crossbar per switch, while "SDT" is the same logical topology
//     whose sub-switches share the crossbars of their physical hosts
//     (plus the flow-table pipeline overhead), so the *difference*
//     between the two runs isolates exactly the projection overhead the
//     paper measures in Figs. 11–12.
//
// Scheduling is delegated to internal/engine: a zero-allocation,
// cancellable discrete-event core. Every hot-path event in this package
// is a typed record dispatched through OnEvent handlers (see the ev*
// kinds below); closures survive only on cold measurement paths.
package netsim

import (
	"repro/internal/engine"
)

// Time is simulation time in picoseconds (see engine.Time).
type Time = engine.Time

// Common durations.
const (
	Picosecond  = engine.Picosecond
	Nanosecond  = engine.Nanosecond
	Microsecond = engine.Microsecond
	Millisecond = engine.Millisecond
	Second      = engine.Second
)

// Sim is the discrete-event scheduler driving one Network. Events at
// equal times run in scheduling order (deterministic).
type Sim = engine.Engine

// NewSim returns a scheduler at time zero.
func NewSim() *Sim { return engine.New() }

// Typed event kinds. Each handler type switches on its own subset; the
// payload conventions are documented at the scheduling sites.
const (
	// Network events.
	evTxDone    int32 = iota // Ptr=*OutPort, A=inPort<<4|prio, B=size
	evArrive                 // Ptr=*Packet, A=link index
	evPfcPause               // Ptr=*OutPort, A=priority class
	evPfcResume              // Ptr=*OutPort, A=priority class
	// SimSwitch events.
	evSwEnqueue // Ptr=*Packet, A=out port, B=inPort<<4|arrival class
	// roceQP events.
	evQPSend // Ptr=*Packet, A=pacing gap (Time)
	evQPTick // CC policy timer (DCQCN rate increase)
	// Host events.
	evDeliver // A=src vertex, B=app tag
	// TCPConn events.
	evRTO // retransmission timeout (cancellable handle)
	// App events.
	evAppStep // Ptr=*Rank
	// FlowApp events.
	evFlowStart // A=index into the sorted start order
)
