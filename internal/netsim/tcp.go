package netsim

import "repro/internal/engine"

// TCPConn is a Reno-style TCP connection used for the iperf incast
// experiment (Fig. 12): slow start, congestion avoidance, fast
// retransmit on three duplicate ACKs, a coarse RTO, and ECN response.
// Both endpoints share the struct; the sender side lives at src, the
// receiver side at dst.
type TCPConn struct {
	net  *Network
	flow int64
	src  int
	dst  int
	mss  int

	// Sender state.
	sndNxt, sndUna int64
	cwnd, ssthresh float64
	maxCwnd        float64
	limit          int64 // total bytes to send; <0 = unlimited
	dupacks        int
	inRecovery     bool
	recoverSeq     int64
	ecnGuard       int64         // no further ECN reaction until sndUna passes this
	rto            engine.Handle // pending RTO event; cancelled on progress
	done           func(fct Time)
	startAt        Time
	stopped        bool

	// Receiver state.
	rcvNxt   int64
	ooo      map[int64]int // seq -> len
	RcvBytes int64         // cumulative goodput at the receiver
}

// tcpRTO is the coarse retransmission timeout.
const tcpRTO = 2 * Millisecond

// StartTCP opens a TCP flow from src to dst sending `limit` bytes
// (limit < 0 streams until StopTCP). done, if non-nil, fires at the
// sender when the last byte is cumulatively acknowledged.
func (n *Network) StartTCP(src, dst int, limit int64, done func(fct Time)) *TCPConn {
	n.nextID++
	c := &TCPConn{
		net: n, flow: n.nextID | 1<<62, src: src, dst: dst,
		mss:  n.Cfg.MTU,
		cwnd: float64(n.Cfg.MTU) * 10, ssthresh: 1 << 20, maxCwnd: 1 << 20,
		limit: limit, ooo: map[int64]int{}, done: done,
		startAt: n.Sim.Now(),
	}
	n.hosts[src].tcp[c.flow] = c
	n.hosts[dst].tcp[c.flow] = c
	c.trySend()
	c.armRTO()
	return c
}

// StopTCP ends an unlimited flow (no more new data).
func (c *TCPConn) StopTCP() { c.stopped = true }

func (c *TCPConn) remaining() int64 {
	if c.limit < 0 {
		if c.stopped {
			return 0
		}
		return 1 << 60
	}
	return c.limit - c.sndNxt
}

// trySend emits new segments while the window allows.
func (c *TCPConn) trySend() {
	for c.sndNxt-c.sndUna < int64(c.cwnd) && c.remaining() > 0 {
		l := int64(c.mss)
		if r := c.remaining(); r < l {
			l = r
		}
		c.emit(c.sndNxt, int(l))
		c.sndNxt += l
	}
}

func (c *TCPConn) emit(seq int64, l int) {
	n := c.net
	pkt := allocPacket()
	*pkt = Packet{
		ID: n.pktID(), Kind: Data, Src: c.src, Dst: c.dst,
		Size: l + n.Cfg.HeaderBytes, Len: l, Flow: c.flow, Seq: seq, Prio: 0,
	}
	n.hosts[c.src].inject(pkt)
}

// onData runs at the receiver: cumulative reassembly plus an immediate
// ACK carrying the ECN echo.
func (c *TCPConn) onData(pkt *Packet) {
	n := c.net
	if pkt.Seq == c.rcvNxt {
		c.rcvNxt += int64(pkt.Len)
		for {
			l, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.rcvNxt += int64(l)
		}
	} else if pkt.Seq > c.rcvNxt {
		c.ooo[pkt.Seq] = pkt.Len
	}
	c.RcvBytes = c.rcvNxt
	n.hosts[c.dst].DeliveredBytes += int64(pkt.Len)
	ack := allocPacket()
	*ack = Packet{
		ID: n.pktID(), Kind: Ack, Src: c.dst, Dst: c.src,
		Size: 64, Flow: c.flow, Prio: 1,
		AckSeq: c.rcvNxt, AckECN: pkt.ECN,
	}
	n.hosts[c.dst].inject(ack)
}

// onAck runs at the sender: window evolution per Reno.
func (c *TCPConn) onAck(pkt *Packet) {
	mss := float64(c.mss)
	if pkt.AckECN && c.sndUna >= c.ecnGuard {
		// ECN: halve once per window.
		c.ssthresh = c.cwnd / 2
		if c.ssthresh < mss {
			c.ssthresh = mss
		}
		c.cwnd = c.ssthresh
		c.ecnGuard = c.sndNxt
	}
	if pkt.AckSeq > c.sndUna {
		c.sndUna = pkt.AckSeq
		c.dupacks = 0
		c.armRTO()
		if c.inRecovery && c.sndUna >= c.recoverSeq {
			c.inRecovery = false
			c.cwnd = c.ssthresh
		}
		if !c.inRecovery {
			if c.cwnd < c.ssthresh {
				c.cwnd += mss // slow start
			} else {
				c.cwnd += mss * mss / c.cwnd // congestion avoidance
			}
			if c.cwnd > c.maxCwnd {
				c.cwnd = c.maxCwnd
			}
		}
		if c.limit >= 0 && c.sndUna >= c.limit && c.done != nil {
			d := c.done
			c.done = nil
			d(c.net.Sim.Now() - c.startAt)
		}
	} else if pkt.AckSeq == c.sndUna {
		c.dupacks++
		if c.dupacks == 3 && !c.inRecovery {
			// Fast retransmit.
			c.ssthresh = c.cwnd / 2
			if c.ssthresh < mss {
				c.ssthresh = mss
			}
			c.cwnd = c.ssthresh + 3*mss
			c.inRecovery = true
			c.recoverSeq = c.sndNxt
			l := int64(c.mss)
			if c.limit >= 0 && c.limit-c.sndUna < l {
				l = c.limit - c.sndUna
			}
			if l > 0 {
				c.emit(c.sndUna, int(l))
			}
		} else if c.inRecovery {
			c.cwnd += mss // inflate
		}
	}
	c.trySend()
	// Everything acknowledged and no more data coming (finite flow done
	// or stopped stream drained): retire the timer instead of letting
	// it fire one last no-op.
	if c.sndUna >= c.sndNxt && c.remaining() == 0 {
		c.net.Sim.Cancel(c.rto)
		c.rto = engine.Handle{}
	}
}

// armRTO (re)arms the retransmission timer: the pending timeout, if
// any, is cancelled outright — no stale timers ever fire.
func (c *TCPConn) armRTO() {
	sim := c.net.Sim
	sim.Cancel(c.rto)
	c.rto = sim.ScheduleAfter(tcpRTO, c, engine.Event{Kind: evRTO})
}

// OnEvent fires the retransmission timeout. Cancellation guarantees
// the timer is current: no epoch counters or progress re-checks are
// needed, only the is-anything-outstanding guard.
func (c *TCPConn) OnEvent(now Time, ev engine.Event) {
	if ev.Kind != evRTO {
		return
	}
	c.rto = engine.Handle{}
	if c.sndUna >= c.sndNxt || (c.limit >= 0 && c.sndUna >= c.limit) {
		return // nothing outstanding
	}
	// Timeout: collapse to slow start and retransmit.
	mss := float64(c.mss)
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < mss {
		c.ssthresh = mss
	}
	c.cwnd = mss
	c.inRecovery = false
	c.dupacks = 0
	l := int64(c.mss)
	if c.limit >= 0 && c.limit-c.sndUna < l {
		l = c.limit - c.sndUna
	}
	if l > 0 {
		c.emit(c.sndUna, int(l))
	}
	c.armRTO()
}
