package loadgen

// FuzzPattern: the traffic-pattern invariants the FlowApp relies on —
// every generated pair stays inside [0, ranks) with src != dst, a
// permutation's mapping is a fixed-point-free bijection, and incast
// concentrates on one victim with exactly min(fanin, ranks-1) distinct
// senders — must hold for EVERY (seed, ranks, fanin), not just the
// hand-picked values of the unit tests. CI runs this as a smoke
// (`go test -fuzz=FuzzPattern -fuzztime=10s`).

import "testing"

func FuzzPattern(f *testing.F) {
	f.Add(int64(1), 16, 8)
	f.Add(int64(0), 2, 1)
	f.Add(int64(-7), 3, 99)
	f.Add(int64(12345), 128, 15)
	f.Fuzz(func(t *testing.T, seed int64, ranks, fanin int) {
		// Clamp to the documented domains; the clamping itself must not
		// panic for any input.
		if ranks < 2 {
			ranks = 2
		}
		if ranks > 256 {
			ranks = 2 + ranks%255
		}
		if fanin < 1 {
			fanin = 1
		}
		const draws = 512

		check := func(name string, pair PairFn) (pairs [][2]int) {
			for i := 0; i < draws; i++ {
				src, dst := pair(i)
				if src < 0 || src >= ranks || dst < 0 || dst >= ranks {
					t.Fatalf("%s(ranks=%d): pair (%d,%d) out of range", name, ranks, src, dst)
				}
				if src == dst {
					t.Fatalf("%s(ranks=%d): self-pair %d", name, ranks, src)
				}
				pairs = append(pairs, [2]int{src, dst})
			}
			return pairs
		}

		check("uniform", Uniform().Instantiate(NewRNG(seed), ranks))

		// Permutation: functional (one image per source), injective over
		// the observed sources, and fixed-point-free.
		perm := check("permutation", Permutation().Instantiate(NewRNG(seed), ranks))
		img := map[int]int{}
		pre := map[int]int{}
		for _, p := range perm {
			src, dst := p[0], p[1]
			if prev, ok := img[src]; ok && prev != dst {
				t.Fatalf("permutation: src %d maps to both %d and %d", src, prev, dst)
			}
			img[src] = dst
			if prev, ok := pre[dst]; ok && prev != src {
				t.Fatalf("permutation: dst %d has preimages %d and %d", dst, prev, src)
			}
			pre[dst] = src
		}

		// Incast: one victim, exact fan-in.
		inc := check("incast", Incast(fanin).Instantiate(NewRNG(seed), ranks))
		victim := inc[0][1]
		senders := map[int]bool{}
		for _, p := range inc {
			if p[1] != victim {
				t.Fatalf("incast: second victim %d (first %d)", p[1], victim)
			}
			senders[p[0]] = true
		}
		wantSenders := fanin
		if wantSenders > ranks-1 {
			wantSenders = ranks - 1
		}
		// All draws land on the sender set; with draws >> senders every
		// sender appears (each is drawn uniformly, 512 draws over <= 256
		// senders makes a miss astronomically unlikely — and any miss
		// would be deterministic for the failing seed).
		if len(senders) > wantSenders {
			t.Fatalf("incast: %d distinct senders, want <= %d", len(senders), wantSenders)
		}
		if senders[victim] {
			t.Fatal("incast: the victim sends to itself")
		}

		// Outcast mirrors incast: one source fanning out.
		out := check("outcast", Outcast().Instantiate(NewRNG(seed), ranks))
		src0 := out[0][0]
		for _, p := range out {
			if p[0] != src0 {
				t.Fatalf("outcast: second source %d (first %d)", p[0], src0)
			}
		}

		// A generated schedule over these patterns must satisfy the
		// FlowApp's constructor invariants (unique (src,dst,tag), ranks
		// in range) — Generate panicking or emitting an invalid flow
		// would crash every scenario using the pattern.
		fs, err := Spec{
			Ranks: ranks, Pattern: Incast(fanin), Sizes: FixedSize(1024),
			Load: 0.5, Flows: 32, Seed: seed,
		}.Generate()
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		for i := range fs.Flows {
			fl := &fs.Flows[i]
			if fl.Src < 0 || fl.Src >= ranks || fl.Dst < 0 || fl.Dst >= ranks || fl.Src == fl.Dst {
				t.Fatalf("flow %d: bad endpoints %+v", i, fl)
			}
			if fl.Bytes <= 0 || fl.Start < 0 {
				t.Fatalf("flow %d: bad size/start %+v", i, fl)
			}
			if i > 0 && fl.Start < fs.Flows[i-1].Start {
				t.Fatalf("flow %d: schedule not time-sorted", i)
			}
		}
	})
}
