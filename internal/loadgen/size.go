package loadgen

import "fmt"

// SizeDist draws flow sizes in bytes. Mean must return the analytic
// mean of the distribution — the load calculation uses it to convert a
// target load factor into a Poisson arrival rate, so a wrong mean
// shifts the offered load.
type SizeDist interface {
	Name() string
	Mean() float64
	Sample(r *RNG) int
}

// fixedSize draws a constant.
type fixedSize int

// FixedSize returns a distribution that always draws `bytes`.
func FixedSize(bytes int) SizeDist {
	if bytes < 1 {
		panic("loadgen: FixedSize needs bytes >= 1")
	}
	return fixedSize(bytes)
}

func (f fixedSize) Name() string    { return fmt.Sprintf("fixed-%dB", int(f)) }
func (f fixedSize) Mean() float64   { return float64(f) }
func (f fixedSize) Sample(*RNG) int { return int(f) }

// CDFPoint is one point of an empirical flow-size CDF: Frac of flows
// are of size <= Bytes.
type CDFPoint struct {
	Bytes int
	Frac  float64
}

// CDF is an empirical flow-size distribution sampled by inverse
// transform with linear interpolation between points — the standard
// way datacenter-workload CDFs (web-search, data-mining) are replayed.
type CDF struct {
	name string
	pts  []CDFPoint
	mean float64
}

// NewCDF builds an empirical distribution. Points must be strictly
// increasing in both Bytes and Frac, and the last Frac must be 1. A
// leading implicit point at (0, 0) anchors the first segment.
func NewCDF(name string, pts []CDFPoint) *CDF {
	if len(pts) == 0 {
		panic("loadgen: empty CDF")
	}
	prev := CDFPoint{Bytes: 0, Frac: 0}
	mean := 0.0
	for _, p := range pts {
		if p.Bytes <= prev.Bytes || p.Frac <= prev.Frac || p.Frac > 1 {
			panic(fmt.Sprintf("loadgen: CDF %s not strictly increasing at %+v", name, p))
		}
		// Sizes are uniform within a segment, so the segment contributes
		// its midpoint weighted by its probability mass.
		mean += (p.Frac - prev.Frac) * float64(p.Bytes+prev.Bytes) / 2
		prev = p
	}
	if prev.Frac != 1 {
		panic(fmt.Sprintf("loadgen: CDF %s must end at Frac=1, got %g", name, prev.Frac))
	}
	return &CDF{name: name, pts: pts, mean: mean}
}

func (c *CDF) Name() string  { return c.name }
func (c *CDF) Mean() float64 { return c.mean }

// Sample inverts the CDF at a uniform variate.
func (c *CDF) Sample(r *RNG) int {
	u := r.Float64()
	prev := CDFPoint{Bytes: 0, Frac: 0}
	for _, p := range c.pts {
		if u <= p.Frac {
			span := p.Frac - prev.Frac
			t := (u - prev.Frac) / span
			b := float64(prev.Bytes) + t*float64(p.Bytes-prev.Bytes)
			if b < 1 {
				b = 1
			}
			return int(b)
		}
		prev = p
	}
	return c.pts[len(c.pts)-1].Bytes
}

// WebSearch is the DCTCP web-search flow-size distribution (Alizadeh
// et al., SIGCOMM'10): mostly short query/response flows with a heavy
// tail of multi-megabyte background transfers. Analytic mean
// (piecewise-linear interpolation between the points) ≈ 0.5 MB.
func WebSearch() *CDF {
	return NewCDF("web-search", []CDFPoint{
		{6 * 1024, 0.15}, {13 * 1024, 0.3}, {19 * 1024, 0.45},
		{33 * 1024, 0.6}, {53 * 1024, 0.7}, {133 * 1024, 0.8},
		{667 * 1024, 0.9}, {1397 * 1024, 0.95}, {6998 * 1024, 0.98},
		{20 << 20, 1},
	})
}

// DataMining is the VL2 data-mining distribution (Greenberg et al.,
// SIGCOMM'09): over half the flows under 1 kB with a tail out to
// 100 MB. Far heavier-tailed than WebSearch; analytic mean ≈ 2.2 MB.
func DataMining() *CDF {
	return NewCDF("data-mining", []CDFPoint{
		{100, 0.5}, {1 * 1024, 0.6}, {10 * 1024, 0.7},
		{100 * 1024, 0.8}, {1 << 20, 0.9}, {10 << 20, 0.97},
		{100 << 20, 1},
	})
}

// scaled shrinks/stretches another distribution by a constant factor.
type scaled struct {
	d SizeDist
	f float64
}

// ScaleSizes multiplies every draw of d by factor (minimum 1 byte) —
// the standard scale knob for keeping a heavy-tailed catalogue shape
// while bounding simulation cost (the registered sweeps use
// ScaleSizes(WebSearch(), 1.0/64)).
func ScaleSizes(d SizeDist, factor float64) SizeDist {
	if factor <= 0 {
		panic("loadgen: ScaleSizes needs factor > 0")
	}
	return scaled{d: d, f: factor}
}

func (s scaled) Name() string  { return fmt.Sprintf("%s/x%g", s.d.Name(), s.f) }
func (s scaled) Mean() float64 { return s.d.Mean() * s.f }
func (s scaled) Sample(r *RNG) int {
	b := int(float64(s.d.Sample(r)) * s.f)
	if b < 1 {
		b = 1
	}
	return b
}
