package loadgen

import "fmt"

// PairFn returns the (src, dst) ranks of the i-th flow. Implementations
// draw from the RNG they were instantiated with, so the pair sequence
// is part of the seeded schedule.
type PairFn func(i int) (src, dst int)

// Pattern chooses communicating pairs for an open-loop schedule.
// Instantiate binds the pattern to a rank count and an RNG (fixing any
// per-schedule structure: the permutation's bijection, incast's victim
// and sender set, hotspot's hot set) and returns the per-flow pair
// function.
type Pattern interface {
	Name() string
	// Instantiate fixes the pattern's structure for n ranks.
	Instantiate(r *RNG, n int) PairFn
	// Bottlenecks reports how many host links the pattern loads in
	// aggregate — the unit count the load factor multiplies. Spreading
	// patterns (uniform, permutation, hotspot, rack-local) inject on
	// all n host links; funnel patterns (incast, outcast) are limited
	// by a single link, the victim's or the sender's.
	Bottlenecks(n int) int
}

// uniformPat picks independent uniform (src, dst) pairs, src != dst.
type uniformPat struct{}

// Uniform is all-to-all random traffic: every flow an independent
// uniform (src, dst) pair.
func Uniform() Pattern { return uniformPat{} }

func (uniformPat) Name() string          { return "uniform" }
func (uniformPat) Bottlenecks(n int) int { return n }
func (uniformPat) Instantiate(r *RNG, n int) PairFn {
	return func(int) (int, int) {
		src := r.Intn(n)
		dst := r.Intn(n - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}
}

// permutationPat fixes a seeded fixed-point-free bijection; each flow
// picks a uniform source and sends to its image.
type permutationPat struct{}

// Permutation fixes a random bijection p (with no fixed points) over
// the ranks; every flow from src goes to p[src]. Each host link then
// carries exactly one destination's traffic — the classic worst-case
// pattern for oblivious routing.
func Permutation() Pattern { return permutationPat{} }

func (permutationPat) Name() string          { return "permutation" }
func (permutationPat) Bottlenecks(n int) int { return n }
func (permutationPat) Instantiate(r *RNG, n int) PairFn {
	if n < 2 {
		panic("loadgen: permutation needs >= 2 ranks")
	}
	// A uniform cyclic shift of a random permutation: p[π(i)] = π(i+1).
	// Bijective by construction and fixed-point-free for n >= 2.
	pi := r.Perm(n)
	p := make([]int, n)
	for i := 0; i < n; i++ {
		p[pi[i]] = pi[(i+1)%n]
	}
	return func(int) (int, int) {
		src := r.Intn(n)
		return src, p[src]
	}
}

// incastPat funnels Fanin senders into one victim.
type incastPat struct{ fanin int }

// Incast is the N:1 pattern: a fixed victim receives from a fixed set
// of `fanin` distinct senders (0 or >= n means all other ranks). The
// load factor is measured at the victim's link — the bottleneck.
func Incast(fanin int) Pattern { return incastPat{fanin: fanin} }

func (p incastPat) Name() string {
	if p.fanin <= 0 {
		return "incast"
	}
	return fmt.Sprintf("incast-%d", p.fanin)
}
func (incastPat) Bottlenecks(int) int { return 1 }
func (p incastPat) Instantiate(r *RNG, n int) PairFn {
	if n < 2 {
		panic("loadgen: incast needs >= 2 ranks")
	}
	victim := r.Intn(n)
	fanin := p.fanin
	if fanin <= 0 || fanin > n-1 {
		fanin = n - 1
	}
	// Senders: the first `fanin` non-victim ranks of a seeded shuffle.
	var senders []int
	for _, v := range r.Perm(n) {
		if v != victim && len(senders) < fanin {
			senders = append(senders, v)
		}
	}
	return func(int) (int, int) {
		return senders[r.Intn(len(senders))], victim
	}
}

// outcastPat fans one source out to everyone else.
type outcastPat struct{}

// Outcast is the 1:N mirror of incast: one fixed source scatters to
// uniform destinations. The load factor is measured at the source's
// link.
func Outcast() Pattern { return outcastPat{} }

func (outcastPat) Name() string        { return "outcast" }
func (outcastPat) Bottlenecks(int) int { return 1 }
func (outcastPat) Instantiate(r *RNG, n int) PairFn {
	if n < 2 {
		panic("loadgen: outcast needs >= 2 ranks")
	}
	src := r.Intn(n)
	return func(int) (int, int) {
		dst := r.Intn(n - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}
}

// hotspotPat skews a uniform mix toward a small hot destination set.
type hotspotPat struct {
	hotRanks int
	hotFrac  float64
}

// Hotspot sends `hotFrac` of the flows to a fixed set of `hotRanks`
// hot destinations and the rest uniformly — the skewed mix that
// stresses adaptive routing. hotRanks <= 0 defaults to max(1, n/8);
// hotFrac <= 0 defaults to 0.7.
func Hotspot(hotRanks int, hotFrac float64) Pattern {
	return hotspotPat{hotRanks: hotRanks, hotFrac: hotFrac}
}

func (p hotspotPat) Name() string {
	if p.hotRanks <= 0 && p.hotFrac <= 0 {
		return "hotspot"
	}
	return fmt.Sprintf("hotspot-k%d-f%g", p.hotRanks, p.hotFrac)
}
func (hotspotPat) Bottlenecks(n int) int { return n }
func (p hotspotPat) Instantiate(r *RNG, n int) PairFn {
	if n < 2 {
		panic("loadgen: hotspot needs >= 2 ranks")
	}
	k := p.hotRanks
	if k <= 0 {
		k = n / 8
		if k < 1 {
			k = 1
		}
	}
	if k > n {
		k = n
	}
	frac := p.hotFrac
	if frac <= 0 || frac > 1 {
		frac = 0.7
	}
	hot := r.Perm(n)[:k]
	return func(int) (int, int) {
		src := r.Intn(n)
		for {
			var dst int
			if r.Float64() < frac {
				dst = hot[r.Intn(k)]
			} else {
				dst = r.Intn(n)
			}
			if dst != src {
				return src, dst
			}
		}
	}
}

// rackLocalPat keeps a fraction of traffic inside the source's rack.
type rackLocalPat struct {
	rackSize int
	locality float64
}

// RackLocal groups ranks into racks of `rackSize` consecutive ranks;
// each flow stays inside its source's rack with probability `locality`
// and otherwise picks a uniform remote destination — the skewed
// rack-local mix of datacenter traffic studies. rackSize <= 1 defaults
// to 4; locality <= 0 defaults to 0.8.
func RackLocal(rackSize int, locality float64) Pattern {
	return rackLocalPat{rackSize: rackSize, locality: locality}
}

func (p rackLocalPat) Name() string {
	if p.rackSize <= 1 && p.locality <= 0 {
		return "rack-local"
	}
	return fmt.Sprintf("rack-local-r%d-p%g", p.rackSize, p.locality)
}
func (rackLocalPat) Bottlenecks(n int) int { return n }
func (p rackLocalPat) Instantiate(r *RNG, n int) PairFn {
	if n < 2 {
		panic("loadgen: rack-local needs >= 2 ranks")
	}
	size := p.rackSize
	if size <= 1 {
		size = 4
	}
	loc := p.locality
	if loc <= 0 || loc > 1 {
		loc = 0.8
	}
	return func(int) (int, int) {
		src := r.Intn(n)
		rack := src / size
		lo := rack * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if r.Float64() < loc && hi-lo > 1 {
			// Stay in the rack.
			dst := lo + r.Intn(hi-lo-1)
			if dst >= src {
				dst++
			}
			return src, dst
		}
		for {
			dst := r.Intn(n)
			if dst != src {
				return src, dst
			}
		}
	}
}

// PatternByName resolves a catalogue pattern by its WORKLOADS.md name,
// with each family's default parameters.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform(), nil
	case "permutation":
		return Permutation(), nil
	case "incast":
		return Incast(0), nil
	case "outcast":
		return Outcast(), nil
	case "hotspot":
		return Hotspot(0, 0), nil
	case "rack-local":
		return RackLocal(0, 0), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown pattern %q (have uniform, permutation, incast, outcast, hotspot, rack-local)", name)
	}
}
