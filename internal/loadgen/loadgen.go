// Package loadgen synthesizes open-loop datacenter-style traffic: flow
// arrivals drawn from a seeded Poisson process at a target load factor,
// communicating pairs chosen by a pluggable pattern (uniform-random,
// permutation, incast N:1, outcast, hotspot, rack-local), and flow
// sizes drawn from a configurable distribution (fixed, or the
// web-search / data-mining heavy-tailed CDFs).
//
// This is the non-MPI half of the workload catalogue (WORKLOADS.md):
// where package workload replays closed-loop rank programs, loadgen
// produces an open-loop schedule — flows inject at their arrival times
// regardless of completions, the arrival model under which flow
// completion time (FCT) and slowdown are defined.
//
// A generated FlowSet can run two ways:
//
//   - live, through the netsim flow-application layer (core.Scenario
//     with Flows set): one schedule entry per flow, so million-flow
//     runs never materialise per-op programs; or
//   - compiled into a replayable workload.Trace (FlowSet.Trace) for
//     anything that consumes traces — including the JSON-lines trace
//     file format of workload/trace.go.
//
// Everything is a pure function of the Spec: the same seed produces a
// byte-identical schedule (and compiled trace) on every run.
package loadgen

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/workload"
)

// Spec describes one synthetic workload.
type Spec struct {
	// Ranks is the number of traffic endpoints (>= 2).
	Ranks int
	// Pattern chooses communicating pairs (nil = Uniform).
	Pattern Pattern
	// Sizes draws flow sizes (nil = WebSearch).
	Sizes SizeDist
	// Load is the offered load as a fraction of the bottleneck link
	// capacity, in (0, 1]: flow arrivals form a Poisson process with
	// aggregate rate Load × Bottlenecks × LinkBps / (8 × mean size).
	Load float64
	// Flows is how many flows to synthesize (> 0).
	Flows int
	// Seed drives every random draw. Equal specs generate byte-equal
	// schedules.
	Seed int64
	// LinkBps is the host link rate the load is offered against
	// (0 = 10 Gb/s, the testbed default).
	LinkBps float64
}

// FlowSet is a generated schedule: the spec it came from plus the
// synthesized flows, ordered by start time. Flow Src/Dst are rank
// indices (netsim.FlowApp and core.Scenario map them onto hosts).
type FlowSet struct {
	Spec  Spec
	Name  string
	Flows []netsim.Flow
}

// Generate synthesizes the flow schedule for a spec.
func (s Spec) Generate() (*FlowSet, error) {
	if s.Ranks < 2 {
		return nil, fmt.Errorf("loadgen: need >= 2 ranks, got %d", s.Ranks)
	}
	if s.Flows <= 0 {
		return nil, fmt.Errorf("loadgen: need > 0 flows, got %d", s.Flows)
	}
	if s.Load <= 0 || s.Load > 1 {
		return nil, fmt.Errorf("loadgen: load %g outside (0, 1]", s.Load)
	}
	if s.Pattern == nil {
		s.Pattern = Uniform()
	}
	if s.Sizes == nil {
		s.Sizes = WebSearch()
	}
	if s.LinkBps == 0 {
		s.LinkBps = 10e9
	}
	if s.LinkBps < 0 {
		return nil, fmt.Errorf("loadgen: negative link rate %g", s.LinkBps)
	}
	r := NewRNG(s.Seed)
	pair := s.Pattern.Instantiate(r, s.Ranks)
	mean := s.Sizes.Mean()
	// Aggregate arrival rate in flows/second: the load factor times the
	// bottleneck capacity, divided by the mean flow size in bits.
	lambda := s.Load * float64(s.Pattern.Bottlenecks(s.Ranks)) * s.LinkBps / (8 * mean)
	fs := &FlowSet{
		Spec: s,
		Name: fmt.Sprintf("loadgen-%s-%s-l%g-s%d", s.Pattern.Name(), s.Sizes.Name(), s.Load, s.Seed),
	}
	fs.Flows = make([]netsim.Flow, s.Flows)
	t := 0.0 // seconds
	for i := range fs.Flows {
		t += r.Exp() / lambda
		src, dst := pair(i)
		fs.Flows[i] = netsim.Flow{
			Src: src, Dst: dst,
			Bytes: s.Sizes.Sample(r),
			Start: netsim.Time(t * float64(netsim.Second)),
			Tag:   i,
		}
	}
	return fs, nil
}

// MustGenerate is Generate for callers that prefer a panic.
func (s Spec) MustGenerate() *FlowSet {
	fs, err := s.Generate()
	if err != nil {
		panic(err)
	}
	return fs
}

// Span returns the arrival window: the start time of the last flow.
func (fs *FlowSet) Span() netsim.Time {
	if len(fs.Flows) == 0 {
		return 0
	}
	return fs.Flows[len(fs.Flows)-1].Start
}

// TotalBytes sums the schedule's flow sizes.
func (fs *FlowSet) TotalBytes() int64 {
	var n int64
	for i := range fs.Flows {
		n += int64(fs.Flows[i].Bytes)
	}
	return n
}

// Trace compiles the schedule into a replayable workload.Trace: per
// rank, compute gaps recreate each outbound flow's start time followed
// by an eager send, then one matching receive per inbound flow. All of
// a rank's sends precede its receives so replay never blocks an
// injection on an arrival — the open-loop timing is preserved exactly
// (sends are non-blocking in the app layer) and a run replaying the
// trace completes at the same simulated time as running the FlowSet
// live. The cost is one op per send/recv — prefer running the FlowSet
// live (core.Scenario.Flows) for very large schedules.
func (fs *FlowSet) Trace() *workload.Trace {
	sends := make([][]netsim.Op, fs.Spec.Ranks)
	recvs := make([][]netsim.Op, fs.Spec.Ranks)
	// Per-source local time so compute gaps sum to absolute starts.
	clock := make([]netsim.Time, fs.Spec.Ranks)
	for i := range fs.Flows {
		f := &fs.Flows[i]
		if gap := f.Start - clock[f.Src]; gap > 0 {
			sends[f.Src] = append(sends[f.Src], netsim.Op{Kind: netsim.OpCompute, Dur: gap})
			clock[f.Src] = f.Start
		}
		sends[f.Src] = append(sends[f.Src], netsim.Op{
			Kind: netsim.OpSend, Peer: f.Dst, Bytes: f.Bytes, MTag: f.Tag,
		})
		recvs[f.Dst] = append(recvs[f.Dst], netsim.Op{
			Kind: netsim.OpRecv, Peer: f.Src, MTag: f.Tag,
		})
	}
	progs := make([][]netsim.Op, fs.Spec.Ranks)
	for r := range progs {
		progs[r] = append(sends[r], recvs[r]...)
	}
	return &workload.Trace{Name: fs.Name, Ranks: fs.Spec.Ranks, Programs: progs}
}

// PairCounts tallies flows per (src, dst) pair — the balance view the
// pattern invariants are tested against.
func (fs *FlowSet) PairCounts() map[[2]int]int {
	out := map[[2]int]int{}
	for i := range fs.Flows {
		out[[2]int{fs.Flows[i].Src, fs.Flows[i].Dst}]++
	}
	return out
}

// Catalogue returns the pattern names of the generator family in
// documentation order (the WORKLOADS.md loadgen table).
func Catalogue() []string {
	return []string{"uniform", "permutation", "incast", "outcast", "hotspot", "rack-local"}
}
