package loadgen

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64).
// Every generator in this package draws from one of these, so a flow
// schedule is a pure function of its Spec — including the seed — and is
// byte-identical across runs, platforms, and Go versions (unlike
// math/rand, whose stream is only fixed per Go release).
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Equal seeds produce equal streams.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// Uint64 returns the next 64 uniform bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("loadgen: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential variate with mean 1 (inter-arrival draws
// divide by the rate).
func (r *RNG) Exp() float64 {
	// 1-Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// Perm returns a uniform permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
