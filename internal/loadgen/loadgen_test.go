package loadgen

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/netsim"
)

func spec(pat Pattern) Spec {
	return Spec{Ranks: 16, Pattern: pat, Sizes: WebSearch(), Load: 0.5, Flows: 400, Seed: 42}
}

// Same seed => byte-identical schedule and compiled trace; different
// seed => different schedule.
func TestDeterminism(t *testing.T) {
	a := spec(Uniform()).MustGenerate()
	b := spec(Uniform()).MustGenerate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different schedules")
	}
	var ba, bb bytes.Buffer
	if err := a.Trace().Write(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Trace().Write(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("same spec compiled to different trace bytes")
	}
	s := spec(Uniform())
	s.Seed = 43
	c := s.MustGenerate()
	if reflect.DeepEqual(a.Flows, c.Flows) {
		t.Fatal("different seeds generated identical schedules")
	}
}

// Arrivals must be strictly ordered and Poisson at roughly the target
// rate implied by the load factor.
func TestArrivalProcess(t *testing.T) {
	s := Spec{Ranks: 16, Sizes: FixedSize(100 * 1024), Load: 0.5, Flows: 4000, Seed: 7}
	fs := s.MustGenerate()
	prev := netsim.Time(-1)
	for i := range fs.Flows {
		if fs.Flows[i].Start <= prev {
			t.Fatalf("flow %d start %v not after %v", i, fs.Flows[i].Start, prev)
		}
		prev = fs.Flows[i].Start
	}
	// Expected aggregate rate: 0.5 * 16 * 10e9 / (8 * 100KiB) flows/s.
	lambda := 0.5 * 16 * 10e9 / (8 * 100 * 1024)
	want := float64(s.Flows) / lambda // seconds
	got := fs.Span().Seconds()
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("arrival window %.4fs, want ~%.4fs", got, want)
	}
}

// Pattern-independent invariants: ranks in range, no self-flows,
// positive sizes.
func TestPatternInvariants(t *testing.T) {
	pats := []Pattern{
		Uniform(), Permutation(), Incast(0), Incast(5), Outcast(),
		Hotspot(0, 0), Hotspot(3, 0.9), RackLocal(0, 0), RackLocal(4, 0.5),
	}
	for _, p := range pats {
		fs := spec(p).MustGenerate()
		for i := range fs.Flows {
			f := &fs.Flows[i]
			if f.Src < 0 || f.Src >= 16 || f.Dst < 0 || f.Dst >= 16 {
				t.Fatalf("%s: flow %d endpoint out of range: %+v", p.Name(), i, f)
			}
			if f.Src == f.Dst {
				t.Fatalf("%s: flow %d sends to itself", p.Name(), i)
			}
			if f.Bytes < 1 {
				t.Fatalf("%s: flow %d has %d bytes", p.Name(), i, f.Bytes)
			}
		}
	}
}

// The permutation pattern must be a fixed-point-free bijection: every
// source maps to exactly one destination and no two sources share one.
func TestPermutationBijection(t *testing.T) {
	fs := spec(Permutation()).MustGenerate()
	img := map[int]int{}
	for i := range fs.Flows {
		f := &fs.Flows[i]
		if d, ok := img[f.Src]; ok && d != f.Dst {
			t.Fatalf("src %d maps to both %d and %d", f.Src, d, f.Dst)
		}
		img[f.Src] = f.Dst
	}
	seen := map[int]bool{}
	for src, dst := range img {
		if src == dst {
			t.Fatalf("fixed point at %d", src)
		}
		if seen[dst] {
			t.Fatalf("destination %d has two sources", dst)
		}
		seen[dst] = true
	}
	// 400 flows over 16 ranks: every rank should have appeared.
	if len(img) != 16 {
		t.Fatalf("only %d/16 sources injected", len(img))
	}
}

// Incast fan-in must be exact: one victim, exactly N distinct senders.
func TestIncastFanIn(t *testing.T) {
	const fanin = 5
	fs := spec(Incast(fanin)).MustGenerate()
	victims := map[int]bool{}
	senders := map[int]bool{}
	for i := range fs.Flows {
		victims[fs.Flows[i].Dst] = true
		senders[fs.Flows[i].Src] = true
	}
	if len(victims) != 1 {
		t.Fatalf("incast has %d victims, want 1", len(victims))
	}
	if len(senders) != fanin {
		t.Fatalf("incast has %d senders, want %d", len(senders), fanin)
	}
	for v := range victims {
		if senders[v] {
			t.Fatal("victim is also a sender")
		}
	}
}

// Outcast is the mirror: one source.
func TestOutcastFanOut(t *testing.T) {
	fs := spec(Outcast()).MustGenerate()
	srcs := map[int]bool{}
	for i := range fs.Flows {
		srcs[fs.Flows[i].Src] = true
	}
	if len(srcs) != 1 {
		t.Fatalf("outcast has %d sources, want 1", len(srcs))
	}
}

// Rack-local traffic must stay in-rack at roughly the configured rate.
func TestRackLocality(t *testing.T) {
	s := spec(RackLocal(4, 0.8))
	s.Flows = 4000
	fs := s.MustGenerate()
	local := 0
	for i := range fs.Flows {
		if fs.Flows[i].Src/4 == fs.Flows[i].Dst/4 {
			local++
		}
	}
	frac := float64(local) / float64(len(fs.Flows))
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("rack-local fraction %.3f, want ~0.8", frac)
	}
}

// Hotspot traffic must concentrate on the hot set.
func TestHotspotSkew(t *testing.T) {
	s := spec(Hotspot(2, 0.7))
	s.Flows = 4000
	fs := s.MustGenerate()
	counts := map[int]int{}
	for i := range fs.Flows {
		counts[fs.Flows[i].Dst]++
	}
	// The two hottest destinations should carry roughly 70% of flows.
	max1, max2 := 0, 0
	for _, c := range counts {
		if c > max1 {
			max1, max2 = c, max1
		} else if c > max2 {
			max2 = c
		}
	}
	frac := float64(max1+max2) / float64(len(fs.Flows))
	if frac < 0.6 || frac > 0.85 {
		t.Fatalf("hot fraction %.3f, want ~0.7", frac)
	}
}

// The compiled trace must validate and preserve volume and timing.
func TestTraceCompile(t *testing.T) {
	fs := spec(RackLocal(0, 0)).MustGenerate()
	tr := fs.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.TotalBytes(), fs.TotalBytes(); got != want {
		t.Fatalf("trace carries %d bytes, schedule %d", got, want)
	}
	// Per source, compute gaps must reconstruct each send's start time.
	clock := make([]netsim.Time, fs.Spec.Ranks)
	starts := map[int]netsim.Time{} // tag -> reconstructed start
	for r, prog := range tr.Programs {
		for _, op := range prog {
			switch op.Kind {
			case netsim.OpCompute:
				clock[r] += op.Dur
			case netsim.OpSend:
				starts[op.MTag] = clock[r]
			}
		}
	}
	for i := range fs.Flows {
		f := &fs.Flows[i]
		if starts[f.Tag] != f.Start {
			t.Fatalf("flow %d replays at %v, scheduled %v", i, starts[f.Tag], f.Start)
		}
	}
}

// CDF sanity: samples within support, mean matches the analytic mean.
func TestSizeDistributions(t *testing.T) {
	for _, d := range []SizeDist{WebSearch(), DataMining(), ScaleSizes(WebSearch(), 1.0/64)} {
		r := NewRNG(1)
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			b := d.Sample(r)
			if b < 1 {
				t.Fatalf("%s sampled %d", d.Name(), b)
			}
			sum += float64(b)
		}
		got := sum / n
		if math.Abs(got-d.Mean())/d.Mean() > 0.1 {
			t.Fatalf("%s empirical mean %.0f, analytic %.0f", d.Name(), got, d.Mean())
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Ranks: 1, Load: 0.5, Flows: 10},
		{Ranks: 8, Load: 0, Flows: 10},
		{Ranks: 8, Load: 1.5, Flows: 10},
		{Ranks: 8, Load: 0.5, Flows: 0},
	}
	for _, s := range bad {
		if _, err := s.Generate(); err == nil {
			t.Fatalf("spec %+v generated without error", s)
		}
	}
}

func TestPatternByName(t *testing.T) {
	for _, name := range Catalogue() {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name && name != "incast" { // incast(0) keeps the family name
			t.Fatalf("PatternByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PatternByName("nope"); err == nil {
		t.Fatal("unknown pattern resolved")
	}
}
