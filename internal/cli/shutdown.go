// Package cli holds the small pieces the sdt* commands share: the
// graceful-shutdown signal context and the exit-code convention.
// sdtbench uses it for Ctrl-C (cancel in-flight simulations mid-run,
// exit 130); sdtd uses it for SIGTERM (drain running jobs, exit 0 on a
// clean drain, 130 when the grace period forced a hard cancel).
package cli

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM —
// the interactive and the orchestrated shutdown signal respectively.
// A second signal while the first is being handled kills the process
// the default way (signal.NotifyContext unregisters on cancellation),
// so a stuck drain can always be overridden from the keyboard.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ExitCode maps a command's terminal error to its exit status:
// 0 for success, 130 for an interrupted run (context cancelled or a
// drain grace period expired — the shell convention for "stopped by
// signal"), 1 for everything else.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 130
	default:
		return 1
	}
}
