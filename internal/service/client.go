package service

// Client is the thin HTTP client for a running sdtd daemon — the
// programmatic face of `sdtctl -daemon` and examples/sdtd-client. It
// speaks only the wire types in this package, so a client build pulls
// no engine code beyond the registry the types reference.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to one daemon.
type Client struct {
	// Base is the daemon's root URL, e.g. "http://127.0.0.1:7390".
	Base string
	// HTTP overrides the transport (nil: http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base (scheme optional:
// "host:port" is promoted to http://host:port).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes a JSON response into out (unless
// out is nil). Non-2xx responses decode the error envelope.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e apiError
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a spec and returns the admission status (terminal
// immediately on a cache hit).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job fetches a job's status + telemetry snapshot.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel aborts a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a done job's result body. While the job is still in
// flight it returns (nil, status, nil): poll again or use Wait.
func (c *Client) Result(ctx context.Context, id string) ([]byte, JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, JobStatus{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, JobStatus{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return data, JobStatus{ID: id, State: StateDone, Cached: resp.Header.Get("X-SDT-Cache") == "hit"}, nil
	case http.StatusAccepted, http.StatusConflict:
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, JobStatus{}, err
		}
		if resp.StatusCode == http.StatusConflict {
			return nil, st, fmt.Errorf("job %s is %s: %s", id, st.State, st.Error)
		}
		return nil, st, nil
	default:
		var e apiError
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, JobStatus{}, fmt.Errorf("result %s: %s (HTTP %d)", id, e.Error, resp.StatusCode)
		}
		return nil, JobStatus{}, fmt.Errorf("result %s: HTTP %d", id, resp.StatusCode)
	}
}

// Wait polls until the job reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Scenarios lists the daemon's registry with param schemas.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	var out []ScenarioInfo
	err := c.do(ctx, http.MethodGet, "/v1/scenarios", nil, &out)
	return out, err
}

// Stats fetches /v1/statsz.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/statsz", nil, &st)
	return st, err
}
