package service

// The service-cache scenario set: an end-to-end exercise of the
// daemon over a loopback HTTP server — submit a small fig12 job cold,
// submit the identical spec again, and report the cache-hit latency
// against the cold run. It records the service_cache_* metrics the
// BENCH_<pr>.json perf trajectory tracks.
//
// This runner lives in the service package but is REGISTERED by
// cmd/sdtbench, not by an init here: internal/service imports
// internal/experiments (registry, spec), so an in-registry
// registration would cycle. The CLI sits above both and wires them
// together (see cmd/sdtbench's service.go).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
)

// CacheBenchSchema is the param schema for the registered set.
var CacheBenchSchema = []experiments.Field{experiments.FieldSeed, experiments.FieldDur}

// CacheBench is the experiments.Runner for "service-cache".
func CacheBench(ctx context.Context, p experiments.Params, w io.Writer) error {
	srv, err := New(Config{Workers: 1, QueueCap: 4, CacheBytes: 8 << 20})
	if err != nil {
		return err
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(dctx)
	}()
	client := NewClient(hs.URL)

	// A small fig12 panel sweep: ~tens of ms cold, so the experiment
	// stays cheap inside `sdtbench -exp all` while leaving a cold/hit
	// gap of several orders of magnitude for the trajectory to track.
	durMs := 10.0
	if p.Duration > 0 {
		durMs = float64(p.Duration) / float64(netsim.Millisecond) / 100
	}
	spec := JobSpec{Scenario: "fig12", DurMs: durMs, Seed: p.Seed}

	run := func() (JobStatus, []byte, time.Duration, error) {
		start := time.Now()
		st, err := client.Submit(ctx, spec)
		if err != nil {
			return st, nil, 0, err
		}
		if st, err = client.Wait(ctx, st.ID, 2*time.Millisecond); err != nil {
			return st, nil, 0, err
		}
		body, st2, err := client.Result(ctx, st.ID)
		if err != nil {
			return st, nil, 0, err
		}
		st.Cached = st.Cached || st2.Cached
		return st, body, time.Since(start), nil
	}

	cold, coldBody, coldDur, err := run()
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	hit, hitBody, hitDur, err := run()
	if err != nil {
		return fmt.Errorf("hit run: %w", err)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}

	identical := bytes.Equal(coldBody, hitBody)
	executions := stats.RunsByScenario["fig12"]
	speedup := float64(coldDur) / float64(hitDur)
	experiments.RecordMetric("service_cache_cold_ms", float64(coldDur.Microseconds())/1000)
	experiments.RecordMetric("service_cache_hit_ms", float64(hitDur.Microseconds())/1000)
	experiments.RecordMetric("service_cache_speedup", speedup)

	fmt.Fprintf(w, "service-cache: sdtd end-to-end over loopback HTTP (spec %s)\n", cold.Key[:12])
	fmt.Fprintf(w, "  %-28s %v\n", "cold submit -> result", coldDur.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-28s %v (%.0fx)\n", "cached submit -> result", hitDur.Round(time.Microsecond), speedup)
	fmt.Fprintf(w, "  %-28s executions=%d hits=%d misses=%d\n", "one execution, one hit:",
		executions, stats.Cache.Hits, stats.Cache.Misses)
	fmt.Fprintf(w, "  %-28s %v (%d bytes)\n", "bodies byte-identical:", identical, len(coldBody))
	if !identical || executions != 1 || !hit.Cached || cold.Cached {
		return fmt.Errorf("service-cache: cache contract violated: identical=%v executions=%d coldCached=%v hitCached=%v",
			identical, executions, cold.Cached, hit.Cached)
	}
	return nil
}
