package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	body := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 40) }
	c.Put("a", body(1))
	c.Put("b", body(2))
	// 80/100 bytes resident; touching "a" makes "b" the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be resident")
	}
	c.Put("c", body(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (was MRU at eviction time)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be resident")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 || st.Evictions != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if st.Budget != 100 {
		t.Fatalf("budget: %+v", st)
	}
}

func TestCacheOversizedBodyNotAdmitted(t *testing.T) {
	c, err := NewCache(10, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("small", []byte("ok"))
	c.Put("big", bytes.Repeat([]byte{1}, 11))
	if _, ok := c.Get("big"); ok {
		t.Fatal("a body larger than the whole budget must not be admitted")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("an oversized Put must not evict resident entries")
	}
}

func TestCacheSameKeyRefreshesRecency(t *testing.T) {
	c, err := NewCache(100, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", bytes.Repeat([]byte{1}, 40))
	c.Put("b", bytes.Repeat([]byte{2}, 40))
	c.Put("a", bytes.Repeat([]byte{1}, 40)) // refresh, not duplicate
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("re-Put of a resident key must not duplicate: %+v", st)
	}
	c.Put("c", bytes.Repeat([]byte{3}, 40))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be the eviction victim after a's refresh")
	}
}

func TestCacheDiskStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("persisted result body\n")
	if err := c1.Put("deadbeef", want); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory — the restart — serves the
	// entry from disk and promotes it back into memory.
	c2, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("deadbeef")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("disk hit after restart: ok=%v got=%q", ok, got)
	}
	st := c2.Stats()
	if st.Hits != 1 || st.DiskHits != 1 || st.Entries != 1 {
		t.Fatalf("disk-hit counters: %+v", st)
	}
	// Second Get is a pure memory hit.
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Fatal("promoted entry should be memory-resident")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("promotion should keep later hits off disk: %+v", st)
	}
}

func TestCacheDiskWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("body")); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "k" {
			t.Fatalf("leftover temp file %q in cache dir", e.Name())
		}
	}
	if b, err := os.ReadFile(filepath.Join(dir, "k")); err != nil || string(b) != "body" {
		t.Fatalf("on-disk entry: %q err=%v", b, err)
	}
}

func TestCacheMissCounters(t *testing.T) {
	c, _ := NewCache(100, "")
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(fmt.Sprintf("nope-%d", i)); ok {
			t.Fatal("unexpected hit")
		}
	}
	if st := c.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("miss counters: %+v", st)
	}
}
