package service

// End-to-end tests of the daemon over loopback HTTP, plus the
// lifecycle edges (cancel, queue-full, drain) that are easier to pin
// against the Server directly. Two test-only scenario sets are
// registered for precise control: an instant deterministic echo and a
// gated runner that blocks until released or cancelled — the real
// golden-harness-backed path is exercised with fig12.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

var (
	slowGate = make(chan struct{})
	slowRuns atomic.Int64
)

func init() {
	experiments.Register(9000, "svc-test-echo", "test-only: instant deterministic echo",
		func(ctx context.Context, p experiments.Params, w io.Writer) error {
			fmt.Fprintf(w, "echo seed=%d flows=%d\n", p.Seed, p.Flows)
			return nil
		}, experiments.FieldSeed, experiments.FieldFlows)
	experiments.Register(9001, "svc-test-slow", "test-only: blocks until released or cancelled",
		func(ctx context.Context, p experiments.Params, w io.Writer) error {
			slowRuns.Add(1)
			fmt.Fprintf(w, "slow started seed=%d\n", p.Seed)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-slowGate:
				fmt.Fprintf(w, "slow done seed=%d\n", p.Seed)
				return nil
			}
		}, experiments.FieldSeed)
}

// newTestServer builds a server + loopback HTTP client and tears both
// down at test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		hs.Close()
	})
	return srv, NewClient(hs.URL)
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// waitState polls until the job reaches want.
func waitState(t *testing.T, c *Client, id string, want State) JobStatus {
	t.Helper()
	ctx := testCtx(t)
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q) while waiting for %s", id, st.State, st.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE2ESecondSubmitIsCacheHit is the PR's acceptance scenario: the
// same spec submitted twice yields ONE execution; the second submission
// is a cache hit with a byte-identical result body, and /v1/statsz
// reports the hit. The result is also checked against a fresh direct
// run through the golden harness's scrubber.
func TestE2ESecondSubmitIsCacheHit(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	ctx := testCtx(t)
	spec := JobSpec{Scenario: "fig12", DurMs: 5, Workers: 2}

	st1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State.Terminal() || st1.Cached {
		t.Fatalf("cold submit must queue, got %+v", st1)
	}
	if st1.Key != spec.Hash() {
		t.Fatalf("job key %s != spec hash %s", st1.Key, spec.Hash())
	}
	if st1, err = c.Wait(ctx, st1.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st1.State != StateDone {
		t.Fatalf("cold run: %+v", st1)
	}
	body1, r1, err := c.Result(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || len(body1) == 0 {
		t.Fatalf("cold result: cached=%v len=%d", r1.Cached, len(body1))
	}

	// Second submission: born done, no second execution.
	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached || st2.ID == st1.ID {
		t.Fatalf("warm submit must be a terminal cache hit under a new id, got %+v", st2)
	}
	body2, r2, err := c.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("warm result must carry X-SDT-Cache: hit")
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit body differs from fresh run (%d vs %d bytes)", len(body1), len(body2))
	}

	// Golden-harness check: the served bytes match a fresh direct run
	// of the registered runner under the same scrubbing the golden
	// files use.
	e, _ := experiments.Lookup("fig12")
	var fresh bytes.Buffer
	if err := e.Run(ctx, spec.Params(), &fresh); err != nil {
		t.Fatal(err)
	}
	if experiments.Scrub("fig12", string(body2)) != experiments.Scrub("fig12", fresh.String()) {
		t.Fatal("cached result diverges from a fresh run after scrubbing")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.RunsByScenario["fig12"]; got != 1 {
		t.Fatalf("want exactly 1 execution, statsz says %d", got)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache counters: %+v", stats.Cache)
	}
	if stats.Submitted != 2 || stats.Deduped != 0 {
		t.Fatalf("submit counters: %+v", stats)
	}
}

// TestSingleflightDedup: an identical spec submitted while the first is
// still running adopts the in-flight job instead of executing twice.
func TestSingleflightDedup(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ctx := testCtx(t)
	before := slowRuns.Load()
	spec := JobSpec{Scenario: "svc-test-slow", Seed: 41}

	st1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st1.ID, StateRunning)

	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Dedup || st2.ID != st1.ID || st2.Waiters != 1 {
		t.Fatalf("second submit must adopt the in-flight job, got %+v", st2)
	}

	slowGate <- struct{}{}
	st, err := c.Wait(ctx, st1.ID, time.Millisecond)
	if err != nil || st.State != StateDone {
		t.Fatalf("after release: %+v err=%v", st, err)
	}
	if got := slowRuns.Load() - before; got != 1 {
		t.Fatalf("want 1 execution for 2 submissions, got %d", got)
	}
	stats, _ := c.Stats(ctx)
	if stats.Deduped != 1 {
		t.Fatalf("statsz deduped: %+v", stats)
	}
}

// TestCancelRunningFreesSlot: cancelling a running job aborts it
// promptly (the runner observes its context) and frees the worker slot
// for the next job.
func TestCancelRunningFreesSlot(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ctx := testCtx(t)
	st, err := c.Submit(ctx, JobSpec{Scenario: "svc-test-slow", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning)

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("after cancel: %+v err=%v", st, err)
	}
	if _, _, err := c.Result(ctx, st.ID); err == nil ||
		!strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("result of a cancelled job must 409, got err=%v", err)
	}

	// The slot is free: an instant job completes on the same worker.
	st2, err := c.Submit(ctx, JobSpec{Scenario: "svc-test-echo", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = c.Wait(ctx, st2.ID, time.Millisecond); err != nil || st2.State != StateDone {
		t.Fatalf("post-cancel job: %+v err=%v", st2, err)
	}
	body, _, err := c.Result(ctx, st2.ID)
	if err != nil || string(body) != "echo seed=7 flows=0\n" {
		t.Fatalf("post-cancel result %q err=%v", body, err)
	}
}

// TestCancelQueued: a job cancelled before a worker picks it up turns
// terminal immediately and is skipped at dequeue.
func TestCancelQueued(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ctx := testCtx(t)
	blocker, err := c.Submit(ctx, JobSpec{Scenario: "svc-test-slow", Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, blocker.ID, StateRunning)

	queued, err := c.Submit(ctx, JobSpec{Scenario: "svc-test-echo", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(ctx, queued.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancel queued: %+v err=%v", st, err)
	}
	// Unblock the worker; the cancelled job must stay cancelled (not
	// run off the queue).
	if _, err := c.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	c.Wait(ctx, blocker.ID, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	if st, _ := c.Job(ctx, queued.ID); st.State != StateCancelled {
		t.Fatalf("cancelled-while-queued job ran anyway: %+v", st)
	}
}

// TestQueueFullRejects: the bounded queue rejects with 429 once the
// backlog is at capacity, and counts the rejection.
func TestQueueFullRejects(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	ctx := testCtx(t)
	running, err := c.Submit(ctx, JobSpec{Scenario: "svc-test-slow", Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, StateRunning)
	backlog, err := c.Submit(ctx, JobSpec{Scenario: "svc-test-slow", Seed: 45})
	if err != nil {
		t.Fatalf("backlog slot: %v", err)
	}

	_, err = c.Submit(ctx, JobSpec{Scenario: "svc-test-slow", Seed: 46})
	if err == nil || !strings.Contains(err.Error(), "queue full") ||
		!strings.Contains(err.Error(), "429") {
		t.Fatalf("want HTTP 429 queue-full, got %v", err)
	}
	stats, _ := c.Stats(ctx)
	if stats.Rejected != 1 || stats.QueueDepth != 1 || stats.Jobs[StateQueued] != 1 {
		t.Fatalf("statsz after rejection: %+v", stats)
	}
	// Cleanup: cancel both admitted jobs so Drain returns promptly
	// (the backlog job may already be running once the blocker dies).
	c.Cancel(ctx, running.ID)
	c.Cancel(ctx, backlog.ID)
}

// TestDrain: draining cancels the queued backlog, then hard-cancels
// still-running jobs when the drain context expires.
func TestDrain(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	running, err := srv.Submit(JobSpec{Scenario: "svc-test-slow", Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, _ := srv.Job(running.ID)
		if st.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := srv.Submit(JobSpec{Scenario: "svc-test-echo", Seed: 48})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The gated runner is never released: the clean phase cannot
	// finish, so Drain must fall back to the engine-deep hard cancel.
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := srv.Job(queued.ID); st.State != StateCancelled {
		t.Fatalf("backlog job after drain: %+v", st)
	}
	if st, _ := srv.Job(running.ID); st.State != StateCancelled {
		t.Fatalf("running job after hard drain: %+v", st)
	}
	if _, err := srv.Submit(JobSpec{Scenario: "svc-test-echo"}); err != ErrDraining {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestDiskCacheSurvivesRestart: with CacheDir set, a result computed by
// one server is a cache hit on a fresh server over the same directory.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)
	spec := JobSpec{Scenario: "svc-test-echo", Seed: 5, Flows: 3}

	srv1, c1 := newTestServer(t, Config{Workers: 1, QueueCap: 4, CacheDir: dir})
	st, err := c1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c1.Wait(ctx, st.ID, time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("first run: %+v err=%v", st, err)
	}
	body1, _, err := c1.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	srv1.Drain(dctx)

	_, c2 := newTestServer(t, Config{Workers: 1, QueueCap: 4, CacheDir: dir})
	st2, err := c2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("restarted server must hit the disk store, got %+v", st2)
	}
	body2, _, err := c2.Result(ctx, st2.ID)
	if err != nil || !bytes.Equal(body1, body2) {
		t.Fatalf("disk-hit body differs: %q vs %q (err %v)", body1, body2, err)
	}
	stats, _ := c2.Stats(ctx)
	if stats.Cache.DiskHits != 1 {
		t.Fatalf("disk-hit counter: %+v", stats.Cache)
	}
}

// TestHTTPSurface covers the small endpoints and error mappings.
func TestHTTPSurface(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ctx := testCtx(t)

	resp, err := http.Get(c.Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(b) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b)
	}

	scens, err := c.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range scens {
		if s.Name == "fig12" {
			found = true
			if len(s.Params) == 0 || s.Params[0].Name != "dur_ms" {
				t.Fatalf("fig12 schema: %+v", s.Params)
			}
		}
	}
	if !found {
		t.Fatal("scenarios listing is missing fig12")
	}

	if _, err := c.Job(ctx, "j9999-missing"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job: %v", err)
	}
	if _, err := c.Submit(ctx, JobSpec{Scenario: "no-such-scenario"}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown scenario: %v", err)
	}
	if _, err := c.Submit(ctx, JobSpec{Scenario: "svc-test-echo", Load: 2}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("invalid load: %v", err)
	}

	// Unknown JSON fields are rejected — a misspelt knob must not
	// silently hash to a different (default-valued) spec.
	resp, err = http.Post(c.Base+"/v1/jobs", "application/json",
		strings.NewReader(`{"scenario":"svc-test-echo","sead":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d", resp.StatusCode)
	}

	if srv.Stats().Workers != 1 {
		t.Fatalf("stats workers: %+v", srv.Stats())
	}
}

// TestCacheBench runs the registered service-cache benchmark runner
// end to end (it asserts the cache contract internally).
func TestCacheBench(t *testing.T) {
	var out bytes.Buffer
	if err := CacheBench(testCtx(t), experiments.Params{Seed: 3}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "bodies byte-identical:") {
		t.Fatalf("bench output:\n%s", out.String())
	}
}
