package service

// The HTTP/JSON surface of the daemon (all under /v1):
//
//	POST   /v1/jobs         submit a JobSpec        → JobStatus
//	GET    /v1/jobs/{id}    status + telemetry      → JobStatus
//	GET    /v1/jobs/{id}/result   result body       → text/plain
//	DELETE /v1/jobs/{id}    cancel                  → JobStatus
//	GET    /v1/scenarios    registry + param schema → []ScenarioInfo
//	GET    /v1/healthz      liveness                → 200 "ok"
//	GET    /v1/statsz       cache/queue/run stats   → Stats
//
// Status mapping on submit: 200 for a cache hit (the job is born
// done), 202 for queued and for singleflight adoption, 400 for an
// invalid spec, 429 when the bounded queue is full, 503 while
// draining. Results: 200 with the table body, 202 with a JobStatus
// while the job is still in flight, 409 for failed/cancelled jobs.

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/experiments"
)

// JobStatus is a job's wire-visible snapshot: lifecycle state plus the
// in-flight telemetry the daemon can report without perturbing the
// simulation (timestamps, wall clock so far, bytes of output
// produced). BytesWritten grows while the job runs; ResultBytes is
// final.
type JobStatus struct {
	ID    string  `json:"id"`
	Key   string  `json:"key"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	// Cached: the result came straight from the content-addressed
	// cache; no simulation ran for this submission.
	Cached bool `json:"cached,omitempty"`
	// Dedup: this submission adopted an identical in-flight job
	// (set only on the submit response).
	Dedup bool `json:"dedup,omitempty"`
	// Waiters counts submissions sharing this execution beyond the
	// first.
	Waiters int    `json:"waiters,omitempty"`
	Error   string `json:"error,omitempty"`

	QueuedAt   time.Time `json:"queued_at,omitzero"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// WallMs is the execution wall clock: running so far, or final.
	WallMs float64 `json:"wall_ms,omitempty"`
	// BytesWritten is the output produced so far (snapshot).
	BytesWritten int64 `json:"bytes_written,omitempty"`
	// ResultBytes is the completed result's size.
	ResultBytes int64 `json:"result_bytes,omitempty"`
}

// status snapshots a job.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.id, Key: j.key, Spec: j.spec, State: j.state,
		Cached: j.cached, Waiters: j.waiters, Error: j.err,
		QueuedAt: j.queuedAt, StartedAt: j.startedAt, FinishedAt: j.finishedAt,
	}
	switch j.state {
	case StateRunning:
		st.WallMs = float64(time.Since(j.startedAt).Microseconds()) / 1000
		st.BytesWritten = j.out.len()
	case StateDone:
		if !j.cached {
			st.WallMs = float64(j.finishedAt.Sub(j.startedAt).Microseconds()) / 1000
		}
		st.ResultBytes = int64(len(j.result))
		st.BytesWritten = st.ResultBytes
	case StateFailed, StateCancelled:
		if !j.startedAt.IsZero() {
			st.WallMs = float64(j.finishedAt.Sub(j.startedAt).Microseconds()) / 1000
		}
		st.BytesWritten = j.out.len()
	}
	return st
}

// ScenarioInfo is one registry entry in the /v1/scenarios listing.
type ScenarioInfo struct {
	Name   string              `json:"name"`
	Desc   string              `json:"desc"`
	Params []experiments.Field `json:"params,omitempty"`
}

// Scenarios lists the registry with its machine-readable param
// schemas.
func Scenarios() []ScenarioInfo {
	var out []ScenarioInfo
	for _, e := range experiments.All() {
		out = append(out, ScenarioInfo{Name: e.Name, Desc: e.Desc, Params: e.Schema})
	}
	return out
}

// Stats is the /v1/statsz document.
type Stats struct {
	Cache      CacheStats `json:"cache"`
	QueueDepth int        `json:"queue_depth"`
	QueueCap   int        `json:"queue_cap"`
	Workers    int        `json:"workers"`
	Running    int        `json:"running"`
	// Jobs counts tracked job records by state.
	Jobs map[State]int `json:"jobs"`
	// RunsByScenario counts completed executions per scenario set —
	// cache hits and deduped submissions do NOT increment it, which is
	// what makes "one execution for two identical submits" observable.
	RunsByScenario map[string]int64 `json:"runs_by_scenario,omitempty"`
	Submitted      int64            `json:"submitted"`
	Deduped        int64            `json:"deduped"`
	Rejected       int64            `json:"rejected_queue_full"`
	Draining       bool             `json:"draining,omitempty"`
	UptimeSec      float64          `json:"uptime_sec"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Cache:      s.cache.Stats(),
		QueueDepth: len(s.queue), QueueCap: s.cfg.QueueCap,
		Workers:   s.cfg.Workers,
		Jobs:      map[State]int{},
		Submitted: s.submitted, Deduped: s.deduped, Rejected: s.rejected,
		Draining:  s.draining,
		UptimeSec: time.Since(s.start).Seconds(),
	}
	if len(s.runsByScenario) > 0 {
		st.RunsByScenario = make(map[string]int64, len(s.runsByScenario))
		for k, v := range s.runsByScenario {
			st.RunsByScenario[k] = v
		}
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		st.Jobs[j.state]++
		if j.state == StateRunning {
			st.Running++
		}
		j.mu.Unlock()
	}
	return st
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Scenarios())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
	case st.State.Terminal():
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	body, st, err := s.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
	case err != nil && !st.State.Terminal():
		writeJSON(w, http.StatusAccepted, st) // still queued/running: poll again
	case err != nil:
		writeJSON(w, http.StatusConflict, st) // failed or cancelled
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-SDT-Job", st.ID)
		w.Header().Set("X-SDT-Cache", map[bool]string{true: "hit", false: "miss"}[st.Cached])
		w.Write(body)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}
