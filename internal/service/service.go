// Package service is the long-running simulation service behind
// cmd/sdtd: the scenario registry (internal/experiments) exposed as a
// job-submission API with a content-addressed result cache and a
// bounded, worker-pooled scheduler.
//
// A job is a canonical experiments.JobSpec — scenario name plus knobs
// — whose content hash doubles as cache key and dedup identity (runs
// are byte-stable pure functions of the spec, the contract PRs 4–5
// enforce through the golden harness). Submission resolves in order:
//
//  1. cache hit — a completed job record is returned immediately, no
//     simulation runs;
//  2. singleflight — an identical spec already queued or running
//     adopts the submitter (one execution, any number of waiters);
//  3. admission — the job enters the bounded queue, or is rejected
//     with ErrQueueFull when the backlog is at capacity.
//
// Jobs move submit → queued → running → done/failed/cancelled. Each
// runs under its own context chained off the server's: cancellation —
// a DELETE, or a draining daemon — reaches the engine's event loop
// within one stop stride (the PR 3 contract), so aborting a running
// simulation is cheap and frees its worker slot promptly. Drain stops
// admission, discards the backlog, and waits for running jobs.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiments"
)

// JobSpec is the canonical job description (and cache identity); see
// experiments.JobSpec.
type JobSpec = experiments.JobSpec

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transition can occur.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Config sizes a Server.
type Config struct {
	// Workers is the number of simulations executed concurrently
	// (<= 0: GOMAXPROCS). Each job may additionally fan out or shard
	// internally via its spec's workers/shards knobs.
	Workers int
	// QueueCap bounds the admitted-but-not-running backlog (<= 0: 64).
	// Submissions beyond it fail with ErrQueueFull rather than queueing
	// unboundedly — the admission-control half of "absorb heavy
	// traffic".
	QueueCap int
	// CacheBytes is the in-memory result-cache budget (<= 0: 64 MiB).
	CacheBytes int64
	// CacheDir, when non-empty, persists results on disk so cache hits
	// survive restarts.
	CacheDir string
}

// Errors the admission path returns; the HTTP layer maps them to
// status codes.
var (
	ErrQueueFull  = errors.New("service: job queue full")
	ErrDraining   = errors.New("service: draining, not accepting jobs")
	ErrUnknownJob = errors.New("service: unknown job id")
)

// Server owns the cache, the queue, and the worker pool. Create with
// New, expose over HTTP via Handler, stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job // by id
	inflight map[string]*job // by spec hash: queued or running
	queue    chan *job
	draining bool
	seq      int64

	// Counters for /v1/statsz.
	submitted, deduped, rejected int64
	runsByScenario               map[string]int64

	wg sync.WaitGroup
}

// job is one tracked execution. Mutable fields are guarded by mu;
// result is written once before state turns terminal.
type job struct {
	id   string
	spec JobSpec
	key  string

	ctx    context.Context
	cancel context.CancelFunc
	out    *countWriter

	mu         sync.Mutex
	state      State
	err        string
	cached     bool
	waiters    int
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	result     []byte
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg, cache: cache, start: time.Now(),
		baseCtx: ctx, baseCancel: cancel,
		jobs: map[string]*job{}, inflight: map[string]*job{},
		queue:          make(chan *job, cfg.QueueCap),
		runsByScenario: map[string]int64{},
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit admits one spec. The returned status is the job's view at
// admission time: terminal already for a cache hit, queued otherwise;
// Dedup marks adoption by an identical in-flight job. Errors:
// validation failures, ErrQueueFull, ErrDraining.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	key := spec.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	s.submitted++
	// Singleflight: adopt the identical queued/running job.
	if j, ok := s.inflight[key]; ok {
		s.deduped++
		j.mu.Lock()
		j.waiters++
		j.mu.Unlock()
		st := j.status()
		st.Dedup = true
		return st, nil
	}
	// Content-addressed hit: a completed record, no execution.
	if body, ok := s.cache.Get(key); ok {
		j := s.newJobLocked(spec, key)
		now := time.Now()
		j.state, j.cached, j.result = StateDone, true, body
		j.startedAt, j.finishedAt = now, now
		j.cancel()
		return j.status(), nil
	}
	j := s.newJobLocked(spec, key)
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		j.cancel()
		s.rejected++
		return JobStatus{}, ErrQueueFull
	}
	s.inflight[key] = j
	return j.status(), nil
}

// newJobLocked allocates and registers a job record. Requires s.mu.
func (s *Server) newJobLocked(spec JobSpec, key string) *job {
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:   fmt.Sprintf("j%04d-%s", s.seq, key[:8]),
		spec: spec, key: key,
		ctx: ctx, cancel: cancel, out: &countWriter{},
		state: StateQueued, queuedAt: time.Now(),
	}
	s.jobs[j.id] = j
	return j
}

// worker drains the queue until it closes (Drain).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one dequeued job through its registered runner.
func (s *Server) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		s.retire(j)
		return
	}
	j.state = StateRunning
	j.startedAt = time.Now()
	j.mu.Unlock()

	e, ok := experiments.Lookup(j.spec.Scenario)
	var err error
	if !ok {
		// Validate pinned the name at submit; an unregistered name here
		// is a programming error, reported as a failed job.
		err = fmt.Errorf("service: scenario %q vanished from the registry", j.spec.Scenario)
	} else {
		err = e.Run(j.ctx, j.spec.Params(), j.out)
	}

	j.mu.Lock()
	j.finishedAt = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = j.out.bytes()
	case errors.Is(err, context.Canceled) || errors.Is(j.ctx.Err(), context.Canceled):
		j.state = StateCancelled
		j.err = context.Canceled.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	done := j.state == StateDone
	j.mu.Unlock()
	j.cancel()

	if done {
		// Persist before retiring so a same-spec submit races into
		// either the inflight record or the cache line, never a gap.
		s.cache.Put(j.key, j.result)
		s.mu.Lock()
		s.runsByScenario[j.spec.Scenario]++
		s.mu.Unlock()
	}
	s.retire(j)
}

// retire removes a terminal job from the singleflight index.
func (s *Server) retire(j *job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// Job returns a job's current status snapshot.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Result returns a done job's result body.
func (s *Server) Result(id string) ([]byte, JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, JobStatus{}, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, j.statusLocked(), fmt.Errorf("service: job %s is %s, no result", id, j.state)
	}
	return j.result, j.statusLocked(), nil
}

// Cancel aborts a job: a queued job is marked cancelled and skipped at
// dequeue; a running job's context cancellation reaches the engine
// within one stop stride. Terminal jobs are left as they are (cancel
// is idempotent). Note a cancelled job cancels for every deduped
// submitter sharing it.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.err = context.Canceled.Error()
		j.finishedAt = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	s.retire(j)
	return j.status(), nil
}

// Drain stops admission, cancels the queued backlog, and waits for
// running jobs to finish. ctx bounds the wait: when it expires the
// survivors are hard-cancelled engine-deep (and waited for — workers
// return within one stop stride). Returns nil on a clean drain,
// ctx.Err() when the hard cancel fired. After Drain the server is
// stopped for good.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already draining")
	}
	s.draining = true
	// Discard the backlog: queued jobs become cancelled without
	// running. Workers exit once the closed queue empties.
	for {
		select {
		case j := <-s.queue:
			j.mu.Lock()
			if j.state == StateQueued {
				j.state = StateCancelled
				j.err = "cancelled: server draining"
				j.finishedAt = time.Now()
			}
			j.mu.Unlock()
			j.cancel()
			if s.inflight[j.key] == j {
				delete(s.inflight, j.key)
			}
			continue
		default:
		}
		break
	}
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // engine-deep: every running job stops mid-stride
		<-done
		return ctx.Err()
	}
}

// countWriter collects a running job's output and publishes the byte
// count for in-flight telemetry snapshots. The runner goroutine is the
// only writer; readers only touch the atomic length.
type countWriter struct {
	mu  sync.Mutex
	buf []byte
}

func (w *countWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf = append(w.buf, p...)
	w.mu.Unlock()
	return len(p), nil
}

func (w *countWriter) len() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(len(w.buf))
}

func (w *countWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf
}
