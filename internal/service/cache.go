package service

// The content-addressed result cache. Keys are JobSpec content hashes
// (experiments.JobSpec.Hash) — sound cache keys because every
// registered scenario set's output is a byte-stable pure function of
// its spec (wall-clock columns excepted; see experiments.Scrub). The
// cache is a byte-budgeted in-memory LRU, optionally backed by an
// on-disk store so results survive daemon restarts: a memory miss
// falls through to the directory, and a disk hit is re-admitted to
// memory. Entries larger than the whole memory budget are served and
// persisted but never resident.

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"
)

// CacheStats is the /v1/statsz view of the cache.
type CacheStats struct {
	// Hits counts Gets served (from memory or disk); DiskHits is the
	// subset that had to touch the directory. Misses ran a simulation.
	Hits, Misses, DiskHits uint64
	// Evictions counts entries the LRU pushed out of memory (disk
	// copies, when configured, survive eviction).
	Evictions uint64
	// Entries/Bytes describe current memory residency against Budget.
	Entries int
	Bytes   int64
	Budget  int64
}

// Cache is the content-addressed result store. Safe for concurrent
// use. Stored bodies are owned by the cache: callers must not mutate
// a returned slice.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	idx    map[string]*list.Element
	dir    string

	hits, misses, diskHits, evictions uint64
}

type centry struct {
	key  string
	body []byte
}

// NewCache returns a cache holding up to budget bytes of result
// bodies in memory. dir, when non-empty, enables the on-disk store
// (created if missing); an empty dir keeps the cache memory-only.
func NewCache(budget int64, dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Cache{budget: budget, ll: list.New(), idx: map[string]*list.Element{}, dir: dir}, nil
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key) }

// Get returns the cached result body for a spec hash. A memory miss
// consults the disk store; a disk hit is promoted back into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		body := el.Value.(*centry).body
		c.mu.Unlock()
		return body, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		c.miss()
		return nil, false
	}
	body, err := os.ReadFile(c.path(key))
	if err != nil {
		c.miss()
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.diskHits++
	c.admit(key, body)
	c.mu.Unlock()
	return body, true
}

func (c *Cache) miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Put stores a result body under its spec hash, in memory and — when
// configured — on disk (written atomically via rename, so a crashed
// daemon never leaves a truncated entry). Disk errors are returned but
// leave the memory cache updated: a full disk degrades persistence,
// not serving.
func (c *Cache) Put(key string, body []byte) error {
	c.mu.Lock()
	if el, ok := c.idx[key]; ok {
		// Identical by construction (same spec hash ⇒ same bytes);
		// refresh recency only.
		c.ll.MoveToFront(el)
	} else {
		c.admit(key, body)
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// admit inserts an entry at the MRU position and evicts from the LRU
// tail until the budget holds. Requires c.mu. Bodies larger than the
// whole budget are not admitted (they would immediately evict
// everything and then themselves).
func (c *Cache) admit(key string, body []byte) {
	if int64(len(body)) > c.budget {
		return
	}
	c.idx[key] = c.ll.PushFront(&centry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.idx, e.key)
		c.bytes -= int64(len(e.body))
		c.evictions++
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits,
		Evictions: c.evictions,
		Entries:   c.ll.Len(), Bytes: c.bytes, Budget: c.budget,
	}
}
