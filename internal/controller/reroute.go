package controller

// Rerouter is the reactive controller's failure-handling loop: it
// observes fault events on a running fabric (a faults.Observer), waits
// the modelled detection + recompute + install latency, and then
// patches the live route set around the outage — the routing repair of
// §V-2's reactive flow setup applied to failures instead of new flows.
//
// The repair is routing.RepairAvoiding: destinations whose original
// strategy tree forwards into a dead element are rerouted over
// single-VC shortest paths on the surviving subgraph; healthy
// destinations keep their strategy rules, and recovered elements
// restore the original rules for the destinations they had broken. The
// live Routes object is mutated in place (ReplaceRules), so the
// fabric's RouteForwarder — which re-fetches the memoized FIB on every
// Forward — recompiles the fast path once, on the first packet after
// the repair lands.
//
// The live route set MUST be private to the run (routing.Routes.Clone
// in the fault-run setup): repairs mutate it mid-simulation, and a
// rule set shared with concurrent runs would race.

import (
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Repair records one executed route repair.
type Repair struct {
	// FaultAt is the simulated time of the triggering fault event.
	FaultAt netsim.Time
	// At is the simulated time the repaired routes went live.
	At netsim.Time
	// RulesChanged is the route churn: rules added plus rules removed
	// versus the rule set live before this repair.
	RulesChanged int
	// PatchedDsts is how many destinations run on repair (shortest-
	// path) routes after this repair.
	PatchedDsts int
}

// Rerouter repairs a live route set as faults arrive. Create with
// NewRerouter and register it as a faults.Bind observer. All methods
// run inside the engine thread.
type Rerouter struct {
	// Latency is the detection→install delay between a fault event and
	// its repair going live.
	Latency netsim.Time
	// OnRepair, when set, observes each executed repair (the recovery
	// tracker hooks reconvergence measurement here).
	OnRepair func(rep Repair)

	topo *topology.Graph
	live *routing.Routes // mutated in place; private to the run
	orig []routing.Rule  // the strategy's rules, the repair baseline
	down routing.Outage
	// repairs executed, in order.
	Repairs []Repair
}

// NewRerouter builds a repair loop over a run-private route set.
func NewRerouter(g *topology.Graph, live *routing.Routes, latency netsim.Time) *Rerouter {
	return &Rerouter{
		Latency: latency,
		topo:    g,
		live:    live,
		orig:    append([]routing.Rule(nil), live.Rules...),
		down: routing.Outage{
			Edge:   map[int]bool{},
			Switch: map[int]bool{},
		},
	}
}

// OnFault implements faults.Observer: it updates the outage view
// immediately (the controller's port-status notification) and arms the
// repair after the modelled latency.
func (r *Rerouter) OnFault(net *netsim.Network, ev faults.Event) {
	switch ev.Kind {
	case faults.LinkDown:
		r.down.Edge[ev.Elem] = true
	case faults.LinkUp:
		delete(r.down.Edge, ev.Elem)
	case faults.SwitchDown:
		r.down.Switch[ev.Elem] = true
	case faults.SwitchUp:
		delete(r.down.Switch, ev.Elem)
	}
	faultAt := net.Sim.Now()
	net.Sim.After(r.Latency, func() { r.repair(net, faultAt) })
}

// repair recomputes the patched rule set against the outage as of now
// (later faults already folded in are simply re-confirmed with zero
// churn) and swaps it live.
func (r *Rerouter) repair(net *netsim.Network, faultAt netsim.Time) {
	base := &routing.Routes{Topo: r.topo, Strategy: r.live.Strategy, NumVCs: r.live.NumVCs, Rules: r.orig}
	rules, patched := routing.RepairAvoiding(base, r.down)
	rep := Repair{
		FaultAt:      faultAt,
		At:           net.Sim.Now(),
		RulesChanged: ruleChurn(r.live.Rules, rules),
		PatchedDsts:  len(patched),
	}
	r.live.ReplaceRules(append([]routing.Rule(nil), rules...))
	r.Repairs = append(r.Repairs, rep)
	if r.OnRepair != nil {
		r.OnRepair(rep)
	}
}

// TotalChurn sums rule changes across every executed repair.
func (r *Rerouter) TotalChurn() int {
	n := 0
	for _, rep := range r.Repairs {
		n += rep.RulesChanged
	}
	return n
}

// ruleChurn counts the flow-mods moving the fabric from old to new
// (routing.Churn; kept as a local name for the call sites above).
func ruleChurn(old, new []routing.Rule) int {
	return routing.Churn(old, new)
}
