package controller

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestReactiveFirstPacketPaysSetup(t *testing.T) {
	g := topology.Line(4, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	re := NewReactive(routes, netsim.Millisecond)
	net, err := netsim.NewNetwork(g, re, netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	rtts := netsim.MeasurePingpong(net, hosts[0], hosts[3], 64, 10)
	if len(rtts) != 10 {
		t.Fatalf("rtts = %d", len(rtts))
	}
	// First round trip crosses 4+4 switches, each paying 1 ms setup in
	// each direction once; subsequent RTTs are line rate.
	if rtts[0] < 8*netsim.Millisecond {
		t.Errorf("first RTT %v does not include flow setup", rtts[0])
	}
	for i := 1; i < 10; i++ {
		if rtts[i] > netsim.Millisecond {
			t.Errorf("RTT %d = %v; entries should be installed", i, rtts[i])
		}
	}
	if re.Installs == 0 || re.Installs != re.Misses {
		t.Errorf("installs = %d, misses = %d", re.Installs, re.Misses)
	}
	// Exactly one entry per (switch, dst) pair in each direction: 4
	// switches x 2 destinations touched.
	if re.Installs != 8 {
		t.Errorf("installs = %d, want 8", re.Installs)
	}
}

func TestReactiveResetReinstalls(t *testing.T) {
	g := topology.Line(3, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	re := NewReactive(routes, 0) // default latency
	net, err := netsim.NewNetwork(g, re, netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	netsim.MeasurePingpong(net, hosts[0], hosts[2], 64, 2)
	before := re.Installs
	re.Reset()
	netsim.MeasurePingpong(net, hosts[0], hosts[2], 64, 2)
	if re.Installs != 2*before {
		t.Errorf("installs after reset = %d, want %d", re.Installs, 2*before)
	}
}

func TestReactiveTableMissStillDrops(t *testing.T) {
	g := topology.Line(2, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	re := NewReactive(routes, 0)
	net, err := netsim.NewNetwork(g, re, netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	net.Host(g.Hosts()[0]).Send(99999, 1, 100)
	net.Sim.Run(0)
	if net.TotalDrops == 0 {
		t.Error("unknown destination not dropped under reactive mode")
	}
}
