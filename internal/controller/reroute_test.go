package controller

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestRerouterRepairsLiveRoutes drives a Rerouter through a link
// down/up cycle on a live network and checks the route set the
// forwarder reads is patched after the latency and restored after
// recovery.
func TestRerouterRepairsLiveRoutes(t *testing.T) {
	g := topology.FatTree(4)
	orig, err := routing.ForTopology(g).Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	live := orig.Clone()
	live.Prime()
	net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(live), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRerouter(g, live, 100*netsim.Microsecond)
	var repairs []Repair
	rr.OnRepair = func(rep Repair) { repairs = append(repairs, rep) }

	dead := faults.PickCoreEdges(g, 1, 5)[0]
	sched, err := (&faults.Spec{Events: []faults.Event{
		{At: 10 * netsim.Microsecond, Kind: faults.LinkDown, Elem: dead},
		{At: 500 * netsim.Microsecond, Kind: faults.LinkUp, Elem: dead},
	}}).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	faults.Bind(net, sched, rr)

	// Between repair (110us) and recovery repair (600us) the live rules
	// must avoid the dead edge.
	csr := g.CSR()
	usesDead := func() bool {
		for i := range live.Rules {
			r := &live.Rules[i]
			lo, hi := csr.Row(r.Switch)
			for e := lo; e < hi; e++ {
				if int(csr.Port[e]) == r.OutPort && int(csr.Edge[e]) == dead {
					return true
				}
			}
		}
		return false
	}
	checked := 0
	net.Sim.At(300*netsim.Microsecond, func() {
		checked++
		if usesDead() {
			t.Error("live routes still use the dead edge after repair")
		}
	})
	net.Sim.At(800*netsim.Microsecond, func() {
		checked++
		if !usesDead() {
			t.Error("recovery did not restore the original routes")
		}
		if len(live.Rules) != len(orig.Rules) {
			t.Errorf("restored %d rules, want %d", len(live.Rules), len(orig.Rules))
		}
	})
	net.Sim.Run(0)

	if checked != 2 {
		t.Fatalf("%d probes ran", checked)
	}
	if len(repairs) != 2 {
		t.Fatalf("%d repairs, want 2", len(repairs))
	}
	if repairs[0].At != 110*netsim.Microsecond || repairs[1].At != 600*netsim.Microsecond {
		t.Fatalf("repair times %v, %v", repairs[0].At, repairs[1].At)
	}
	if repairs[0].RulesChanged == 0 || repairs[0].PatchedDsts == 0 {
		t.Fatal("first repair changed nothing")
	}
	// Symmetric churn: the restore undoes exactly the patch.
	if repairs[1].RulesChanged != repairs[0].RulesChanged {
		t.Fatalf("restore churn %d != patch churn %d",
			repairs[1].RulesChanged, repairs[0].RulesChanged)
	}
	if rr.TotalChurn() != repairs[0].RulesChanged*2 {
		t.Fatalf("TotalChurn %d", rr.TotalChurn())
	}
	// The rerouter mutated only its private set, never the strategy's.
	fresh, err := routing.ForTopology(g).Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Rules) != len(orig.Rules) {
		t.Fatal("strategy recompute drifted")
	}
	for i := range orig.Rules {
		if orig.Rules[i] != fresh.Rules[i] {
			t.Fatal("original routes were mutated by the rerouter")
		}
	}
}

// TestRuleChurn pins the symmetric-difference accounting.
func TestRuleChurn(t *testing.T) {
	a := routing.Rule{Switch: 1, Dst: 2, OutPort: 3, NewTag: -1}
	b := routing.Rule{Switch: 1, Dst: 2, OutPort: 4, NewTag: -1}
	c := routing.Rule{Switch: 2, Dst: 2, OutPort: 1, NewTag: -1}
	cases := []struct {
		old, new []routing.Rule
		want     int
	}{
		{nil, nil, 0},
		{[]routing.Rule{a}, []routing.Rule{a}, 0},
		{[]routing.Rule{a}, []routing.Rule{b}, 2},
		{[]routing.Rule{a, c}, []routing.Rule{a}, 1},
		{[]routing.Rule{a}, []routing.Rule{a, b, c}, 2},
		{[]routing.Rule{a, a}, []routing.Rule{a}, 1}, // duplicates count
	}
	for i, cse := range cases {
		if got := ruleChurn(cse.old, cse.new); got != cse.want {
			t.Errorf("case %d: churn %d, want %d", i, got, cse.want)
		}
	}
}
