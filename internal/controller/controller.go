// Package controller implements the SDT controller of §V — the Ryu
// replacement — with its four modules:
//
//   - Topology Customization: checks user-defined topologies against
//     the testbed's cabling (§V-1's checking function) and runs the TP
//     process automatically (deployment function).
//   - Routing Strategy: computes flow tables per Table III or a
//     user-supplied strategy.
//   - Deadlock Avoidance: verifies lossless route sets against channel
//     dependency cycles before deployment.
//   - Network Monitor: collects per-port statistics and feeds adaptive
//     (active) routing.
//
// The controller drives reconfiguration entirely through flow-table
// updates: deploying a new topology config never touches a cable.
package controller

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/costmodel"
	"repro/internal/openflow"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Controller manages one SDT testbed: a fixed cabling over physical
// OpenFlow switches plus the currently deployed logical topologies.
type Controller struct {
	Cabling  *projection.Cabling
	Physical []*openflow.Switch

	alloc       *projection.Allocation
	deployments map[string]*Deployment
	nextCookie  uint64
	nextTagBase int
	partOpts    partition.Options
}

// Deployment is one live logical topology on the testbed.
type Deployment struct {
	Name    string
	Topo    *topology.Graph
	Plan    *projection.Plan
	Routes  *routing.Routes
	Cookie  uint64
	TagBase int
	Entries int
	// DeployTime is the modelled reconfiguration time (controller
	// planning + flow-mod installation), per the cost model.
	DeployTime time.Duration
}

// New builds a controller over a planned cabling.
func New(cab *projection.Cabling) *Controller {
	c := &Controller{
		Cabling:     cab,
		alloc:       projection.NewAllocation(cab),
		deployments: map[string]*Deployment{},
	}
	for _, spec := range cab.Switches {
		c.Physical = append(c.Physical, openflow.NewSwitch(spec.ID, spec.Ports, spec.TableCap))
	}
	return c
}

// NewFromTopologies plans a cabling able to host every given topology
// (the §IV-B pre-planning workflow) and returns a controller over it.
func NewFromTopologies(switches []projection.PhysicalSwitch, topos []*topology.Graph) (*Controller, error) {
	cab, err := projection.PlanCabling(switches, topos, partition.Options{})
	if err != nil {
		return nil, err
	}
	return New(cab), nil
}

// Options tunes one deployment.
type Options struct {
	// Strategy overrides Table III auto-selection.
	Strategy routing.Strategy
	// RequireDeadlockFree rejects route sets whose channel dependency
	// graph is cyclic (mandatory for lossless/PFC operation).
	RequireDeadlockFree bool
	// Encoding selects the flow-table encoding (default TagEncoded).
	Encoding projection.Encoding
}

// Check is the Topology Customization module's checking function: it
// validates the topology and verifies it fits the testbed, returning a
// descriptive error naming the necessary modification otherwise.
func (c *Controller) Check(g *topology.Graph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("controller: topology rejected: %w", err)
	}
	probe := projection.NewAllocation(c.Cabling)
	// Copy current usage so the check reflects co-hosted topologies.
	for name := range c.deployments {
		d := c.deployments[name]
		if _, err := projection.ProjectInto(d.Topo, c.Cabling, probe, c.partOpts); err != nil {
			// Should not happen (it deployed before), but stay honest.
			return fmt.Errorf("controller: internal allocation drift: %v", err)
		}
	}
	if _, err := projection.ProjectInto(g, c.Cabling, probe, c.partOpts); err != nil {
		return err
	}
	return nil
}

// Deploy projects and installs a topology, returning the deployment
// record with its modelled reconfiguration time.
func (c *Controller) Deploy(g *topology.Graph, opt Options) (*Deployment, error) {
	if _, dup := c.deployments[g.Name]; dup {
		return nil, fmt.Errorf("controller: topology %q already deployed", g.Name)
	}
	plan, err := projection.ProjectInto(g, c.Cabling, c.alloc, c.partOpts)
	if err != nil {
		return nil, err
	}
	strat := opt.Strategy
	if strat == nil {
		strat = routing.ForTopology(g)
	}
	routes, err := strat.Compute(g)
	if err != nil {
		plan.Release(c.alloc)
		return nil, err
	}
	if opt.RequireDeadlockFree {
		if err := routing.VerifyDeadlockFree(routes); err != nil {
			plan.Release(c.alloc)
			return nil, err
		}
	}
	cookie := c.nextCookie + 1
	tagBase := c.nextTagBase
	switches, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{
		Encoding: opt.Encoding,
		Cookie:   cookie,
		TagBase:  tagBase,
		Into:     c.Physical,
	})
	if err != nil {
		plan.Release(c.alloc)
		// Roll back any partially installed entries.
		for _, sw := range c.Physical {
			sw.Table.RemoveCookie(cookie)
		}
		return nil, err
	}
	c.nextCookie = cookie
	c.nextTagBase = tagBase + projection.TagSpace(plan, routes)
	// The deployment's routes and the physical flow tables are shared
	// read-only by every simulation of this topology; build the lookup
	// index + FIB and the tables' dst indices before any of them race.
	routes.Prime()
	for _, sw := range c.Physical {
		sw.Table.Prime()
	}
	entries := 0
	for _, sw := range switches {
		for _, e := range sw.Table.Entries() {
			if e.Cookie == cookie {
				entries++
			}
		}
	}
	req := projection.Requirement{Method: projection.MethodSDT}
	d := &Deployment{
		Name: g.Name, Topo: g, Plan: plan, Routes: routes,
		Cookie: cookie, TagBase: tagBase, Entries: entries,
		DeployTime: costmodel.ReconfigTime(req, entries),
	}
	c.deployments[g.Name] = d
	return d, nil
}

// Teardown removes a deployed topology: its flow entries (by cookie)
// and its physical link allocation.
func (c *Controller) Teardown(name string) error {
	d, ok := c.deployments[name]
	if !ok {
		return fmt.Errorf("controller: topology %q not deployed", name)
	}
	for _, sw := range c.Physical {
		sw.Table.RemoveCookie(d.Cookie)
	}
	d.Plan.Release(c.alloc)
	delete(c.deployments, name)
	return nil
}

// Reconfigure atomically replaces one deployed topology with another —
// the headline operation of the paper ("the topology (re)configuration
// can be finished in a short time", §I). The returned deployment's
// DeployTime is the modelled reconfiguration latency.
func (c *Controller) Reconfigure(old string, g *topology.Graph, opt Options) (*Deployment, error) {
	if err := c.Teardown(old); err != nil {
		return nil, err
	}
	return c.Deploy(g, opt)
}

// Deployments lists live deployments sorted by name.
func (c *Controller) Deployments() []*Deployment {
	names := make([]string, 0, len(c.deployments))
	for n := range c.deployments {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Deployment, 0, len(names))
	for _, n := range names {
		out = append(out, c.deployments[n])
	}
	return out
}

// Deployment returns a live deployment by topology name.
func (c *Controller) Deployment(name string) *Deployment {
	return c.deployments[name]
}

// EntryCount reports the total installed flow entries on the cluster.
func (c *Controller) EntryCount() int {
	n := 0
	for _, sw := range c.Physical {
		n += sw.Table.Len()
	}
	return n
}
