package controller

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Monitor is the Network Monitor module (§V-3): it periodically
// collects per-port statistics and derives per-logical-link loads for
// adaptive routing ("the collected data can be further used to
// calculate the load of each logical switch in the case of adaptive
// routing").
type Monitor struct {
	// Loads is the latest per-logical-edge byte count.
	Loads map[int]float64
	// Epochs counts collection rounds.
	Epochs int
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor { return &Monitor{Loads: map[int]float64{}} }

// CollectSim snapshots link loads from a running simulation (the
// stand-in for polling hardware port counters over OpenFlow) and
// resets the counters for the next epoch.
func (m *Monitor) CollectSim(net *netsim.Network) {
	m.Loads = net.LinkLoads()
	net.ResetLinkLoads()
	m.Epochs++
}

// ActiveRouting recomputes Dragonfly routes with UGAL using the
// monitor's current loads — §VI-E's active routing built from the
// Routing Strategy and Network Monitor modules.
func (m *Monitor) ActiveRouting(g *topology.Graph, bias float64) (*routing.Routes, error) {
	return routing.DragonflyUGAL{Loads: m.Loads, Bias: bias}.Compute(g)
}

// TopLoaded formats the k most loaded logical edges for operators.
func (m *Monitor) TopLoaded(g *topology.Graph, k int) string {
	type le struct {
		eid  int
		load float64
	}
	var all []le
	for eid, l := range m.Loads {
		all = append(all, le{eid, l})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].load != all[j].load {
			return all[i].load > all[j].load
		}
		return all[i].eid < all[j].eid
	})
	if k > len(all) {
		k = len(all)
	}
	var b strings.Builder
	for _, x := range all[:k] {
		e := g.Edges[x.eid]
		fmt.Fprintf(&b, "%s<->%s: %.0f bytes\n",
			g.Vertices[e.A].Label, g.Vertices[e.B].Label, x.load)
	}
	return b.String()
}
