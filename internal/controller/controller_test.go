package controller

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

func testbed(t *testing.T, topos ...*topology.Graph) *Controller {
	t.Helper()
	switches := []projection.PhysicalSwitch{
		projection.H3CS6861("s6861-a"),
		projection.H3CS6861("s6861-b"),
		projection.H3CS6861("s6861-c"),
	}
	c, err := NewFromTopologies(switches, topos)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeployAndTeardown(t *testing.T) {
	ft := topology.FatTree(4)
	c := testbed(t, ft)
	d, err := c.Deploy(ft, Options{RequireDeadlockFree: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Entries == 0 || c.EntryCount() != d.Entries {
		t.Errorf("entries = %d, cluster = %d", d.Entries, c.EntryCount())
	}
	if d.DeployTime <= 0 || d.DeployTime > 5*time.Second {
		t.Errorf("deploy time = %v, implausible", d.DeployTime)
	}
	if len(c.Deployments()) != 1 {
		t.Errorf("deployments = %d", len(c.Deployments()))
	}
	if err := c.Teardown(ft.Name); err != nil {
		t.Fatal(err)
	}
	if c.EntryCount() != 0 {
		t.Errorf("entries after teardown = %d", c.EntryCount())
	}
	if err := c.Teardown(ft.Name); err == nil {
		t.Error("double teardown accepted")
	}
}

func TestReconfigureBetweenTopologies(t *testing.T) {
	// The paper's core claim: multiple topologies on the same hardware,
	// reconfigured by flow tables only.
	ft := topology.FatTree(4)
	df := topology.Dragonfly(4, 9, 2, 1)
	torus := topology.Torus2D(5, 5, 1)
	c := testbed(t, ft, df, torus)
	if _, err := c.Deploy(ft, Options{RequireDeadlockFree: true}); err != nil {
		t.Fatal(err)
	}
	d2, err := c.Reconfigure(ft.Name, df, Options{RequireDeadlockFree: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != df.Name {
		t.Errorf("reconfigured to %q", d2.Name)
	}
	d3, err := c.Reconfigure(df.Name, torus, Options{RequireDeadlockFree: true})
	if err != nil {
		t.Fatal(err)
	}
	// Reconfiguration must be fast — subseconds, not SP's manual hours.
	if d3.DeployTime > 10*time.Second {
		t.Errorf("reconfig time = %v", d3.DeployTime)
	}
	if len(c.Deployments()) != 1 {
		t.Errorf("deployments = %d, want 1", len(c.Deployments()))
	}
}

func TestCheckRejectsOversized(t *testing.T) {
	small := topology.Line(4, 1)
	c := testbed(t, small)
	big := topology.FatTree(8)
	if err := c.Check(big); err == nil {
		t.Error("oversized topology passed Check")
	}
	if err := c.Check(small); err != nil {
		t.Errorf("planned topology failed Check: %v", err)
	}
	bad := topology.New("bad")
	bad.AddSwitch("x")
	bad.AddSwitch("x")
	if err := c.Check(bad); err == nil {
		t.Error("invalid topology passed Check")
	}
}

func TestDeployRejectsDeadlockableRoutes(t *testing.T) {
	ring := topology.Ring(6, 1)
	c := testbed(t, ring)
	// Shortest-path on an even ring creates a channel cycle.
	_, err := c.Deploy(ring, Options{
		Strategy:            routing.ShortestPath{},
		RequireDeadlockFree: true,
	})
	if err == nil {
		t.Skip("shortest-path on this ring happens to be acyclic; acceptable")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("unexpected error: %v", err)
	}
	// Without the lossless requirement it deploys.
	if _, err := c.Deploy(ring, Options{Strategy: routing.ShortestPath{}}); err != nil {
		t.Errorf("lossy deploy failed: %v", err)
	}
}

func TestDuplicateDeployRejected(t *testing.T) {
	ft := topology.FatTree(4)
	c := testbed(t, ft)
	if _, err := c.Deploy(ft, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(ft, Options{}); err == nil {
		t.Error("duplicate deploy accepted")
	}
}

func TestCoHostedDeployments(t *testing.T) {
	a := topology.Line(3, 1)
	b := topology.Ring(4, 1)
	// Plan for a combined workload: a line with enough spare links.
	c := testbed(t, topology.Line(10, 4))
	da, err := c.Deploy(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.Deploy(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if da.Cookie == db.Cookie {
		t.Error("co-hosted deployments share a cookie")
	}
	if db.TagBase <= da.TagBase {
		t.Error("tag bases not disjoint")
	}
	if err := c.Teardown(a.Name); err != nil {
		t.Fatal(err)
	}
	// B must survive A's teardown.
	if c.Deployment(b.Name) == nil || c.EntryCount() == 0 {
		t.Error("B disturbed by A teardown")
	}
}

func TestMonitorActiveRouting(t *testing.T) {
	g := topology.Dragonfly(4, 9, 2, 1)
	routes, err := routing.DragonflyMinimal{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Drive traffic between groups 0 and 1 to load their global link.
	hosts := g.Hosts()
	var g0, g1 []int
	for _, h := range hosts {
		switch g.Vertices[g.HostSwitch(h)].Coord[0] {
		case 0:
			g0 = append(g0, h)
		case 1:
			g1 = append(g1, h)
		}
	}
	for i := range g0 {
		net.Host(g0[i]).Send(g1[i%len(g1)], 5, 1<<20)
	}
	net.Sim.Run(0)
	m := NewMonitor()
	m.CollectSim(net)
	if m.Epochs != 1 || len(m.Loads) == 0 {
		t.Fatalf("monitor collected nothing: %+v", m)
	}
	active, err := m.ActiveRouting(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.VerifyDeadlockFree(active); err != nil {
		t.Errorf("active routing not deadlock-free: %v", err)
	}
	top := m.TopLoaded(g, 3)
	if top == "" {
		t.Error("TopLoaded empty")
	}
}

func TestEntriesMatchDirectCompile(t *testing.T) {
	ft := topology.FatTree(4)
	c := testbed(t, ft)
	d, err := c.Deploy(ft, Options{})
	if err != nil {
		t.Fatal(err)
	}
	switches, err := projection.CompileFlowTables(d.Plan, d.Routes, projection.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if projection.EntryCount(switches) != d.Entries {
		t.Errorf("controller entries %d != direct compile %d", d.Entries, projection.EntryCount(switches))
	}
}
