package controller

import (
	"repro/internal/netsim"
	"repro/internal/routing"
)

// Reactive implements §V-2's reactive flow setup: "when a new flow
// comes, the SDT controller calculates the paths on the logical
// topology according to the strategies and then delivers the
// corresponding flow tables to the proper OpenFlow switches". The
// first packet of each (switch, destination, tag) flow pays a
// control-plane round trip (PacketIn → FlowMod); subsequent packets
// hit the installed entry at line rate.
type Reactive struct {
	Routes *routing.Routes
	// SetupLatency is the PacketIn→FlowMod round trip charged to the
	// first packet of each flow at each switch (controller RTT plus
	// rule computation; ~0.5 ms is typical for a LAN controller).
	SetupLatency netsim.Time

	installed map[reactiveKey]bool
	// Installs counts flow-mods pushed (telemetry for the evaluation).
	Installs int
	// Misses counts PacketIn events (>= Installs when multiple packets
	// of one flow race to the controller; equal here because the model
	// installs synchronously).
	Misses int
}

type reactiveKey struct {
	sw, inPort, dst, tag int
}

// NewReactive wraps a route set as a reactive controller.
func NewReactive(routes *routing.Routes, setup netsim.Time) *Reactive {
	if setup <= 0 {
		setup = 500 * netsim.Microsecond
	}
	routes.FIB() // eager compile; Forward reuses the memoized table
	return &Reactive{Routes: routes, SetupLatency: setup, installed: map[reactiveKey]bool{}}
}

// Forward implements netsim.Forwarder. The per-packet rule match runs
// on the route set's memoized FIB (re-fetched each call so later
// AddRule mutations stay visible); the rule granularity (wildcard
// shape) comes from the matched *Rule, which FIB.Rule returns
// identically to Routes.Lookup.
func (r *Reactive) Forward(sw, inPort int, pkt *netsim.Packet) (int, int, netsim.Time, bool) {
	rule := r.Routes.FIB().Rule(sw, inPort, pkt.Dst, pkt.Tag)
	if rule == nil {
		return 0, 0, 0, false
	}
	tag := pkt.Tag
	if rule.NewTag >= 0 {
		tag = rule.NewTag
	}
	// The installed-entry key mirrors the rule granularity: wildcarded
	// fields share one entry.
	key := reactiveKey{sw, rule.InPort, rule.Dst, rule.Tag}
	if r.installed[key] {
		return rule.OutPort, tag, 0, true
	}
	r.Misses++
	r.Installs++
	r.installed[key] = true
	return rule.OutPort, tag, r.SetupLatency, true
}

// Reset clears installed state (e.g. after an idle-timeout sweep).
func (r *Reactive) Reset() {
	r.installed = map[reactiveKey]bool{}
}
