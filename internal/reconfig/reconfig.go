// Package reconfig executes live topology reconfiguration under
// traffic: a Spec of timed transitions (fat-tree → dragonfly, fabric
// growth, oversubscription changes) is expanded into a deterministic
// stage schedule and each transition runs as a staged robustness
// protocol against a running netsim fabric —
//
//  1. drain: the logical links of the running topology whose physical
//     cables the incoming target will claim are marked down
//     (netsim.Network.SetLinkDown — in-flight packets account as fault
//     drops with PFC unwind), and after the spec's patch latency the
//     controller swaps degraded routes around the drained set
//     (routing.RepairAvoiding + ReplaceRules, invalidating the memoized
//     FIB);
//  2. transition: the current plan is Released from the run's
//     projection Allocation, the target is projected with
//     projection.ProjectInto, verified with Plan.Check plus the
//     transition's optional Validate hook, its routes compiled into
//     flow tables for the entry count, and the costmodel's
//     reconfiguration downtime and hardware cost derived; any failure —
//     projection, check, compile, or the modelled install time
//     exceeding Spec.StageTimeout — aborts to rollback: the previous
//     plan is re-Acquired, drained links restored, and the original
//     rules swapped back, so the run completes on the old topology;
//  3. reconverge: after the install window the drained links come back
//     up and the full original rules are restored; the caller's hooks
//     (wired to telemetry.RecoveryTracker by the core run loop) stamp
//     packets lost, reconvergence time, and rule churn.
//
// The evaluation fabric keeps executing the running topology's workload
// throughout — the measured quantity is the *disruption* a transition
// inflicts on traffic, while the target deployment is fully modelled at
// the control plane (allocation, plan check, flow-table compile, cost
// columns). Everything is deterministic: stage times come from the
// spec, drained sets from the deterministic projection, and all
// schedules are byte-identical for equal (spec, topology, cabling)
// inputs — the property the golden harness and the worker-count
// invariance tests pin.
package reconfig

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/costmodel"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Stage-window defaults, applied when a Transition leaves the
// corresponding field zero.
const (
	// DefaultDrain is the drain window: drain start → transition commit.
	DefaultDrain = 500 * netsim.Microsecond
	// DefaultInstall is the install window: commit → links restored.
	DefaultInstall = 500 * netsim.Microsecond
	// DefaultPatchLatency is the controller delay between drain start
	// and the degraded routes going live.
	DefaultPatchLatency = 125 * netsim.Microsecond
)

// Transition is one timed topology change.
type Transition struct {
	// At is the absolute simulated time the drain stage starts.
	At netsim.Time
	// Target is the topology being transitioned to.
	Target *topology.Graph
	// Drain is the drain-window length (0 = DefaultDrain): the time
	// between links going down and the transition commit.
	Drain netsim.Time
	// Install is the install-window length (0 = DefaultInstall): the
	// time between a successful commit and the drained links coming
	// back up (reconvergence starts there).
	Install netsim.Time
	// Validate, when set, is an extra admission check on the projected
	// target plan, run after Plan.Check at commit time. Returning an
	// error aborts the transition to rollback — the fault-injection
	// hook the rollback tests and scenario sets use.
	Validate func(*projection.Plan) error
}

// Spec describes one reconfiguration workload. The zero Spec is valid
// and empty (no transitions); equal specs expand to identical stage
// schedules.
type Spec struct {
	// Transitions execute in order; their stage windows must not
	// overlap.
	Transitions []Transition
	// PatchLatency is the drain→degraded-routes delay (0 =
	// DefaultPatchLatency). Negative disables the degraded patch:
	// traffic toward drained links keeps dropping until reconverge.
	// A latency at or beyond the drain window also disables it (the
	// degraded rules would go live after the commit already decided).
	PatchLatency netsim.Time
	// StageTimeout, when positive, bounds the modelled controller
	// install time (costmodel.ReconfigTime) of a committing target:
	// exceeding it aborts the transition to rollback.
	StageTimeout time.Duration
}

// Patch resolves the spec's effective patch latency (< 0 = disabled).
func (s *Spec) Patch() netsim.Time {
	if s.PatchLatency == 0 {
		return DefaultPatchLatency
	}
	return s.PatchLatency
}

// Stage outcomes (Stage.Outcome prefixes; the full string carries the
// reject/rollback reason after ": ").
const (
	OutcomeCommitted  = "committed"
	OutcomeRolledBack = "rolled-back"
	OutcomeRejected   = "rejected"
)

// Stage is one transition resolved against a topology and cabling:
// absolute stage times, the drained link set, and — after the run — the
// outcome and the committed target's cost columns.
type Stage struct {
	Transition
	// Desc names the transition (e.g. "fat-tree-4->dragonfly @500us").
	Desc string
	// DrainAt/CommitAt/RestoreAt are the resolved stage boundaries.
	DrainAt, CommitAt, RestoreAt netsim.Time
	// PatchAt is when the degraded routes go live (-1 = patch disabled).
	PatchAt netsim.Time
	// Drained lists the running topology's logical edge IDs taken down
	// for this transition (ascending): the edges whose physical cables
	// the target's projection claims.
	Drained []int
	// Outcome is "" before the stage decides, else OutcomeCommitted, or
	// OutcomeRejected/OutcomeRolledBack followed by ": <reason>". A
	// stage whose target cannot be projected at all is rejected before
	// drain and never touches the fabric.
	Outcome string
	// Entries, ReconfigTime, HardwareCost are the committed target's
	// flow-table entry count and costmodel-derived downtime and
	// hardware price (zero unless committed).
	Entries      int
	ReconfigTime time.Duration
	HardwareCost float64
}

// Schedule validates the spec's shape against the running topology and
// resolves the stage times. It is the pure-time half of New: no cabling
// is consulted, so drained sets and reject decisions are not filled in.
func (s *Spec) Schedule(g *topology.Graph) ([]Stage, error) {
	var out []Stage
	prevEnd := netsim.Time(-1)
	for i, t := range s.Transitions {
		if t.Target == nil {
			return nil, fmt.Errorf("reconfig: transition %d: nil target", i)
		}
		if err := t.Target.Validate(); err != nil {
			return nil, fmt.Errorf("reconfig: transition %d: invalid target %q: %w", i, t.Target.Name, err)
		}
		if t.At <= 0 {
			return nil, fmt.Errorf("reconfig: transition %d: non-positive time %d", i, t.At)
		}
		drain, install := t.Drain, t.Install
		if drain == 0 {
			drain = DefaultDrain
		}
		if install == 0 {
			install = DefaultInstall
		}
		if drain < 0 || install < 0 {
			return nil, fmt.Errorf("reconfig: transition %d: negative stage window", i)
		}
		if t.At <= prevEnd {
			return nil, fmt.Errorf("reconfig: transition %d: starts at %d inside the previous transition's window (ends %d)", i, t.At, prevEnd)
		}
		st := Stage{
			Transition: t,
			Desc:       fmt.Sprintf("%s->%s @%dus", g.Name, t.Target.Name, int64(t.At/netsim.Microsecond)),
			DrainAt:    t.At,
			CommitAt:   t.At + drain,
			RestoreAt:  t.At + drain + install,
			PatchAt:    -1,
		}
		if p := s.Patch(); p >= 0 && p < drain {
			st.PatchAt = t.At + p
		}
		prevEnd = st.RestoreAt
		out = append(out, st)
	}
	return out, nil
}

// Digest renders a stage schedule one line per stage — the byte-stable
// form the determinism tests compare.
func Digest(stages []Stage) string {
	var b []byte
	for i := range stages {
		st := &stages[i]
		line := fmt.Sprintf("%s drain=%d commit@%dus restore@%dus", st.Desc, len(st.Drained),
			int64(st.CommitAt/netsim.Microsecond), int64(st.RestoreAt/netsim.Microsecond))
		if st.Outcome != "" {
			line += " " + st.Outcome
		}
		b = append(b, line...)
		b = append(b, '\n')
	}
	return string(b)
}

// Reconfigurer executes one spec's transitions against one running
// fabric. Create with New, set the hooks, then Bind before the
// simulation starts. All stage execution happens inside the engine
// thread; the Reconfigurer owns a run-private Allocation over the
// testbed's cabling, so concurrent sweep siblings never contend.
type Reconfigurer struct {
	// Spec is the validated input.
	Spec *Spec
	// Stages is the resolved schedule; outcomes and cost columns fill
	// in as the run executes. Stages rejected at New time (target does
	// not project onto the cabling) carry their Outcome up front.
	Stages []Stage

	g     *topology.Graph
	cab   *projection.Cabling
	opt   partition.Options
	alloc *projection.Allocation
	base  *projection.Plan // the running topology's plan: drain mapping + rollback target
	cur   *projection.Plan // currently committed plan (base, or a committed target's)
	live  *routing.Routes  // run-private; mutated by patch/restore
	orig  []routing.Rule   // the strategy's full rules, the restore baseline

	// Lifecycle hooks, all optional, called inside the engine thread.
	// i indexes Stages.
	OnDrain    func(now netsim.Time, i int, drained []int)
	OnPatch    func(now netsim.Time, i int, churn int)
	OnCommit   func(now netsim.Time, i int, entries int, reconfigTime time.Duration, hwCost float64)
	OnRollback func(now netsim.Time, i int, reason string)
	OnRestore  func(now netsim.Time, i int, churn int)
	OnReject   func(now netsim.Time, i int, reason string)
}

// New resolves a spec against the running topology g, the testbed's
// cabling, and the run-private live route set. It projects g into a
// fresh allocation (the modelled current deployment), probes every
// target's projection to compute the drained link sets, and rejects —
// without error — transitions whose target cannot be projected at all:
// those stages never touch the fabric. Schedule-shape problems (nil or
// invalid targets, overlapping windows) are errors.
//
// live must be private to the run (routing.Routes.Clone): patch and
// restore mutate it mid-simulation. Target graphs must not be shared
// with concurrent runs either — projection and route compilation build
// their lazy caches.
func New(g *topology.Graph, cab *projection.Cabling, live *routing.Routes, spec *Spec, opt partition.Options) (*Reconfigurer, error) {
	stages, err := spec.Schedule(g)
	if err != nil {
		return nil, err
	}
	alloc := projection.NewAllocation(cab)
	base, err := projection.ProjectInto(g, cab, alloc, opt)
	if err != nil {
		return nil, fmt.Errorf("reconfig: running topology: %w", err)
	}
	r := &Reconfigurer{
		Spec: spec, Stages: stages,
		g: g, cab: cab, opt: opt,
		alloc: alloc, base: base, cur: base,
		live: live, orig: append([]routing.Rule(nil), live.Rules...),
	}
	for i := range r.Stages {
		st := &r.Stages[i]
		probe, perr := projection.Project(st.Target, cab, opt)
		if perr != nil {
			st.Outcome = OutcomeRejected + ": " + perr.Error()
			continue
		}
		st.Drained = drainSet(base, probe)
	}
	return r, nil
}

// drainSet returns the running topology's logical edges (ascending)
// whose physical self- or inter-links the probe plan claims — the links
// that must be vacated before the target can be cabled in.
func drainSet(base, probe *projection.Plan) []int {
	self := map[int]bool{}
	inter := map[int]bool{}
	for _, pl := range probe.EdgeLink {
		if pl.SelfLink >= 0 {
			self[pl.SelfLink] = true
		}
		if pl.InterLink >= 0 {
			inter[pl.InterLink] = true
		}
	}
	var out []int
	for eid, pl := range base.EdgeLink {
		if (pl.SelfLink >= 0 && self[pl.SelfLink]) || (pl.InterLink >= 0 && inter[pl.InterLink]) {
			out = append(out, eid)
		}
	}
	sort.Ints(out)
	return out
}

// Bind arms the stage schedule on a network. Call before the simulation
// runs. Rejected stages only notify OnReject at their drain time.
func (r *Reconfigurer) Bind(net *netsim.Network) {
	for i := range r.Stages {
		i := i
		st := &r.Stages[i]
		if st.Outcome != "" {
			net.Sim.At(st.DrainAt, func() {
				if r.OnReject != nil {
					r.OnReject(net.Sim.Now(), i, r.Stages[i].Outcome)
				}
			})
			continue
		}
		net.Sim.At(st.DrainAt, func() { r.drain(net, i) })
		if st.PatchAt >= 0 {
			net.Sim.At(st.PatchAt, func() { r.patch(net, i) })
		}
		net.Sim.At(st.CommitAt, func() { r.commit(net, i) })
	}
}

// drain takes the stage's link set down; in-flight packets on those
// links account as fault drops with PFC unwind.
func (r *Reconfigurer) drain(net *netsim.Network, i int) {
	st := &r.Stages[i]
	for _, e := range st.Drained {
		net.SetLinkDown(e, true)
	}
	if r.OnDrain != nil {
		r.OnDrain(net.Sim.Now(), i, st.Drained)
	}
}

// patch swaps degraded routes around the drained set: destinations
// whose trees ride drained links move to shortest paths on the
// surviving subgraph, everything else keeps its strategy rules.
func (r *Reconfigurer) patch(net *netsim.Network, i int) {
	st := &r.Stages[i]
	if len(st.Drained) == 0 {
		return // disjoint physical resources: nothing to route around
	}
	down := routing.Outage{Edge: map[int]bool{}}
	for _, e := range st.Drained {
		down.Edge[e] = true
	}
	base := &routing.Routes{Topo: r.g, Strategy: r.live.Strategy, NumVCs: r.live.NumVCs, Rules: r.orig}
	rules, _ := routing.RepairAvoiding(base, down)
	churn := routing.Churn(r.live.Rules, rules)
	r.live.ReplaceRules(append([]routing.Rule(nil), rules...))
	if r.OnPatch != nil {
		r.OnPatch(net.Sim.Now(), i, churn)
	}
}

// commit runs the control-plane switchover and either schedules the
// reconverge stage (success) or rolls back immediately (failure): the
// previous plan re-acquired, links restored, original rules swapped
// back — the run completes on the old topology.
func (r *Reconfigurer) commit(net *netsim.Network, i int) {
	st := &r.Stages[i]
	now := net.Sim.Now()
	entries, rt, hw, err := r.switchover(st)
	if err != nil {
		st.Outcome = OutcomeRolledBack + ": " + err.Error()
		if r.OnRollback != nil {
			r.OnRollback(now, i, err.Error())
		}
		r.restore(net, i)
		return
	}
	st.Outcome = OutcomeCommitted
	st.Entries, st.ReconfigTime, st.HardwareCost = entries, rt, hw
	if r.OnCommit != nil {
		r.OnCommit(now, i, entries, rt, hw)
	}
	net.Sim.At(st.RestoreAt, func() { r.restore(net, i) })
}

// switchover is the control-plane half of commit: release the current
// plan, project and verify the target, compile its flow tables for the
// entry count, and derive the costmodel columns. On any failure the
// previous plan is re-acquired before returning, so the allocation is
// never left with leaked or double-booked ports.
func (r *Reconfigurer) switchover(st *Stage) (entries int, rt time.Duration, hw float64, err error) {
	prev := r.cur
	prev.Release(r.alloc)
	rollback := func(cause error) (int, time.Duration, float64, error) {
		if aerr := prev.Acquire(r.alloc); aerr != nil {
			// Cannot happen while the run owns its allocation (Release
			// just freed exactly these ports), but never mask it.
			return 0, 0, 0, fmt.Errorf("%v (rollback failed: %v)", cause, aerr)
		}
		return 0, 0, 0, cause
	}
	plan, perr := projection.ProjectInto(st.Target, r.cab, r.alloc, r.opt)
	if perr != nil {
		return rollback(perr)
	}
	fail := func(cause error) (int, time.Duration, float64, error) {
		plan.Release(r.alloc)
		return rollback(cause)
	}
	if cerr := plan.Check(); cerr != nil {
		return fail(cerr)
	}
	if st.Validate != nil {
		if verr := st.Validate(plan); verr != nil {
			return fail(verr)
		}
	}
	routes, rerr := routing.ForTopology(st.Target).Compute(st.Target)
	if rerr != nil {
		return fail(rerr)
	}
	switches, serr := projection.CompileFlowTables(plan, routes, projection.CompileOptions{Cookie: 1})
	if serr != nil {
		return fail(serr)
	}
	entries = projection.EntryCount(switches)
	req := projection.Requirement{Method: projection.MethodSDT, Switches: plan.Stats().PhysicalSwitches, BandwidthFactor: 1}
	rt = costmodel.ReconfigTime(req, entries)
	hw = costmodel.HardwareCost(req)
	if r.Spec.StageTimeout > 0 && rt > r.Spec.StageTimeout {
		return fail(fmt.Errorf("reconfig: modelled install %v exceeds stage timeout %v", rt, r.Spec.StageTimeout))
	}
	r.cur = plan
	return entries, rt, hw, nil
}

// restore is the reconverge stage (and the fabric half of rollback):
// drained links come back up and the original full rules are swapped
// in, invalidating the memoized FIB.
func (r *Reconfigurer) restore(net *netsim.Network, i int) {
	st := &r.Stages[i]
	for _, e := range st.Drained {
		net.SetLinkDown(e, false)
	}
	churn := routing.Churn(r.live.Rules, r.orig)
	if churn != 0 {
		r.live.ReplaceRules(append([]routing.Rule(nil), r.orig...))
	}
	if r.OnRestore != nil {
		r.OnRestore(net.Sim.Now(), i, churn)
	}
}

// Plan returns the currently committed projection plan: the running
// topology's until a transition commits, then the last committed
// target's.
func (r *Reconfigurer) Plan() *projection.Plan { return r.cur }

// Allocation exposes the run-private allocation (the fuzz target checks
// its leak invariants against the resident plan).
func (r *Reconfigurer) Allocation() *projection.Allocation { return r.alloc }
