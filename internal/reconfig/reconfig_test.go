package reconfig

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

// fixture builds a paper-style cabling hosting both topologies, the
// running fabric's route clone, and a network with no traffic — enough
// to drive the full stage protocol through the engine.
func fixture(t *testing.T, g, target *topology.Graph) (*projection.Cabling, *routing.Routes, *netsim.Network) {
	t.Helper()
	switches := []projection.PhysicalSwitch{
		projection.H3CS6861("s6861-a"),
		projection.H3CS6861("s6861-b"),
		projection.H3CS6861("s6861-c"),
	}
	topos := []*topology.Graph{g}
	if target != nil {
		topos = append(topos, target)
	}
	cab, err := projection.PlanCabling(switches, topos, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routes, err := routing.ForTopology(g).Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	live := routes.Clone()
	live.Prime()
	net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(live), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return cab, live, net
}

// allocCounts asserts the run-private allocation books exactly the
// resident plan's resources — no leaks, no double-booking.
func allocCounts(t *testing.T, r *Reconfigurer, plan *projection.Plan) {
	t.Helper()
	self, inter, host := r.Allocation().UsedCounts()
	if self != plan.SelfUsed || inter != plan.InterUsed || host != len(plan.HostAttach) {
		t.Fatalf("allocation books (self=%d inter=%d host=%d), resident plan %q needs (%d, %d, %d)",
			self, inter, host, plan.Topo.Name, plan.SelfUsed, plan.InterUsed, len(plan.HostAttach))
	}
}

func TestScheduleValidation(t *testing.T) {
	g := topology.FatTree(4)
	tgt := topology.Torus2D(4, 4, 1)
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"nil target", Spec{Transitions: []Transition{{At: netsim.Millisecond}}}, "nil target"},
		{"non-positive time", Spec{Transitions: []Transition{{At: 0, Target: tgt}}}, "non-positive time"},
		{"negative window", Spec{Transitions: []Transition{{At: netsim.Millisecond, Target: tgt, Drain: -1}}}, "negative stage window"},
		{"overlap", Spec{Transitions: []Transition{
			{At: netsim.Millisecond, Target: tgt},
			{At: netsim.Millisecond + DefaultDrain, Target: tgt},
		}}, "inside the previous"},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Schedule(g); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	// A valid spec resolves defaulted stage times deterministically.
	spec := &Spec{Transitions: []Transition{{At: 2 * netsim.Millisecond, Target: tgt}}}
	stages, err := spec.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	st := stages[0]
	if st.CommitAt != st.DrainAt+DefaultDrain || st.RestoreAt != st.CommitAt+DefaultInstall {
		t.Fatalf("stage times = %+v", st)
	}
	if st.PatchAt != st.DrainAt+DefaultPatchLatency {
		t.Fatalf("patch at %d, want drain+%d", st.PatchAt, DefaultPatchLatency)
	}
	if a, b := Digest(stages), Digest(stages); a != b || a == "" {
		t.Fatalf("digest unstable: %q vs %q", a, b)
	}

	// Patch disabled by a negative latency or one at/past the drain
	// window.
	for _, s := range []*Spec{
		{Transitions: spec.Transitions, PatchLatency: -1},
		{Transitions: spec.Transitions, PatchLatency: DefaultDrain},
	} {
		stages, err := s.Schedule(g)
		if err != nil {
			t.Fatal(err)
		}
		if stages[0].PatchAt != -1 {
			t.Fatalf("PatchLatency %d: patch not disabled", s.PatchLatency)
		}
	}

	// The zero spec is valid and schedules nothing.
	if stages, err := (&Spec{}).Schedule(g); err != nil || len(stages) != 0 {
		t.Fatalf("zero spec: %v, %d stages", err, len(stages))
	}
}

// TestCommitProtocol drives a fat-tree → torus transition through the
// engine and checks every stage effect: links drained then restored,
// degraded rules swapped then the originals back, the target committed
// with cost columns, and the allocation left booking exactly the
// target's plan.
func TestCommitProtocol(t *testing.T) {
	g := topology.FatTree(4)
	target := topology.Torus2D(4, 4, 1)
	cab, live, net := fixture(t, g, target)
	spec := &Spec{Transitions: []Transition{{At: netsim.Millisecond, Target: target}}}
	rc, err := New(g, cab, live, spec, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := &rc.Stages[0]
	if st.Outcome != "" {
		t.Fatalf("pre-rejected: %s", st.Outcome)
	}
	if len(st.Drained) == 0 {
		t.Fatal("no drained links: the target claims none of the running topology's cables")
	}

	var drainedDown, patchChurn, restoreChurn int
	rc.OnDrain = func(_ netsim.Time, _ int, drained []int) {
		for _, e := range drained {
			if net.LinkIsDown(e) {
				drainedDown++
			}
		}
	}
	rc.OnPatch = func(_ netsim.Time, _ int, churn int) { patchChurn = churn }
	rc.OnRestore = func(_ netsim.Time, _ int, churn int) { restoreChurn = churn }
	rc.Bind(net)
	net.Sim.Run(0)

	if drainedDown != len(st.Drained) {
		t.Fatalf("%d/%d drained links down", drainedDown, len(st.Drained))
	}
	if patchChurn == 0 || restoreChurn == 0 {
		t.Fatalf("no rule churn: patch=%d restore=%d", patchChurn, restoreChurn)
	}
	if st.Outcome != OutcomeCommitted {
		t.Fatalf("outcome = %q", st.Outcome)
	}
	if st.Entries <= 0 || st.ReconfigTime <= 0 || st.HardwareCost <= 0 {
		t.Fatalf("cost columns = %d entries, %v, $%v", st.Entries, st.ReconfigTime, st.HardwareCost)
	}
	if rc.Plan().Topo != target {
		t.Fatalf("committed plan is for %q", rc.Plan().Topo.Name)
	}
	allocCounts(t, rc, rc.Plan())
	for _, e := range st.Drained {
		if net.LinkIsDown(e) {
			t.Fatalf("link %d still down after reconverge", e)
		}
	}
	if churn := routing.Churn(live.Rules, freshRules(t, g)); churn != 0 {
		t.Fatalf("live rules differ from the strategy's after restore: churn=%d", churn)
	}
}

// freshRules recomputes the strategy rules for comparison.
func freshRules(t *testing.T, g *topology.Graph) []routing.Rule {
	t.Helper()
	r, err := routing.ForTopology(g).Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	return r.Rules
}

// TestRollbackOnValidateFailure: an injected Plan.Check-stage failure
// aborts the transition; the fabric and allocation return to the old
// topology and the run completes.
func TestRollbackOnValidateFailure(t *testing.T) {
	g := topology.FatTree(4)
	target := topology.Torus2D(4, 4, 1)
	cab, live, net := fixture(t, g, target)
	injected := errors.New("injected plan-check failure")
	spec := &Spec{Transitions: []Transition{{
		At: netsim.Millisecond, Target: target,
		Validate: func(*projection.Plan) error { return injected },
	}}}
	rc, err := New(g, cab, live, spec, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rollbackReason string
	rc.OnRollback = func(_ netsim.Time, _ int, reason string) { rollbackReason = reason }
	rc.Bind(net)
	net.Sim.Run(0)

	st := &rc.Stages[0]
	if !strings.HasPrefix(st.Outcome, OutcomeRolledBack) || !strings.Contains(rollbackReason, "injected") {
		t.Fatalf("outcome = %q, reason = %q", st.Outcome, rollbackReason)
	}
	if rc.Plan().Topo != g {
		t.Fatalf("plan after rollback is for %q, want the old topology", rc.Plan().Topo.Name)
	}
	allocCounts(t, rc, rc.Plan())
	for _, e := range st.Drained {
		if net.LinkIsDown(e) {
			t.Fatalf("link %d still down after rollback", e)
		}
	}
	if churn := routing.Churn(live.Rules, freshRules(t, g)); churn != 0 {
		t.Fatalf("live rules not restored after rollback: churn=%d", churn)
	}
}

// TestStageTimeoutRollback: a modelled install time beyond the spec's
// stage timeout aborts to rollback.
func TestStageTimeoutRollback(t *testing.T) {
	g := topology.FatTree(4)
	target := topology.Torus2D(4, 4, 1)
	cab, live, net := fixture(t, g, target)
	spec := &Spec{
		Transitions:  []Transition{{At: netsim.Millisecond, Target: target}},
		StageTimeout: time.Nanosecond,
	}
	rc, err := New(g, cab, live, spec, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc.Bind(net)
	net.Sim.Run(0)
	if !strings.Contains(rc.Stages[0].Outcome, "stage timeout") {
		t.Fatalf("outcome = %q", rc.Stages[0].Outcome)
	}
	allocCounts(t, rc, rc.Plan())
}

// TestRejectBeforeDrain: a target that cannot be projected at all is
// rejected at New time and never touches the fabric.
func TestRejectBeforeDrain(t *testing.T) {
	g := topology.FatTree(4)
	cab, live, net := fixture(t, g, nil) // cabling planned for g only
	spec := &Spec{Transitions: []Transition{{At: netsim.Millisecond, Target: topology.FatTree(8)}}}
	rc, err := New(g, cab, live, spec, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := &rc.Stages[0]
	if !strings.HasPrefix(st.Outcome, OutcomeRejected) || len(st.Drained) != 0 {
		t.Fatalf("outcome = %q, drained = %v", st.Outcome, st.Drained)
	}
	rejected := false
	rc.OnReject = func(_ netsim.Time, _ int, _ string) { rejected = true }
	rc.Bind(net)
	net.Sim.Run(0)
	if !rejected {
		t.Fatal("OnReject never fired")
	}
	for eid := range g.Edges {
		if net.LinkIsDown(eid) {
			t.Fatalf("rejected transition drained link %d", eid)
		}
	}
	allocCounts(t, rc, rc.Plan())
}

// TestDrainSetDeterministic: equal inputs give byte-identical schedules
// and drained sets across repeated construction.
func TestDrainSetDeterministic(t *testing.T) {
	g := topology.FatTree(4)
	target := topology.Dragonfly(4, 9, 2, 1)
	var digests []string
	for rep := 0; rep < 2; rep++ {
		cab, live, _ := fixture(t, g, target)
		spec := &Spec{Transitions: []Transition{{At: netsim.Millisecond, Target: target}}}
		rc, err := New(g, cab, live, spec, partition.Options{})
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, Digest(rc.Stages))
	}
	if digests[0] != digests[1] {
		t.Fatalf("drain schedule diverged:\n%s\nvs\n%s", digests[0], digests[1])
	}
}
