package reconfig

// FuzzReconfigPlan: an arbitrary transition spec must either be
// rejected before any link drains (Schedule/New validation, or a
// per-stage pre-drain rejection) or execute the full staged protocol
// leaving the system consistent — the resident plan passes Plan.Check,
// and the run-private allocation books exactly that plan's resources:
// nothing leaked by a Release, nothing double-booked by a rollback
// re-Acquire. CI runs this as a smoke
// (`go test -fuzz=FuzzReconfigPlan -fuzztime=10s`).

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

var (
	fuzzOnce    sync.Once
	fuzzCab     *projection.Cabling
	errInjected = errors.New("injected validation failure")
)

// fuzzCabling plans one cabling able to host the fat-tree and the small
// torus (targets outside that set exercise the rejection path). The
// cabling is immutable after planning — helpers are pure loops — so one
// instance serves every fuzz iteration.
func fuzzCabling(f *testing.F) *projection.Cabling {
	fuzzOnce.Do(func() {
		cab, err := projection.PlanCabling(
			[]projection.PhysicalSwitch{
				projection.H3CS6861("s6861-a"),
				projection.H3CS6861("s6861-b"),
				projection.H3CS6861("s6861-c"),
			},
			[]*topology.Graph{topology.FatTree(4), topology.Torus2D(4, 4, 1)},
			partition.Options{})
		if err != nil {
			f.Fatal(err)
		}
		fuzzCab = cab
	})
	return fuzzCab
}

func FuzzReconfigPlan(f *testing.F) {
	fuzzCabling(f)
	f.Add(uint8(0), int64(netsim.Millisecond), int64(5*netsim.Millisecond), int64(0), int64(0), int64(0), int64(0), false)
	f.Add(uint8(1), int64(netsim.Millisecond), int64(0), int64(netsim.Microsecond), int64(netsim.Microsecond), int64(-1), int64(0), false)
	f.Add(uint8(2), int64(netsim.Millisecond), int64(0), int64(0), int64(0), int64(0), int64(0), true)
	f.Add(uint8(0), int64(0), int64(-5), int64(-1), int64(7), int64(1<<40), int64(1), false)
	f.Add(uint8(3), int64(netsim.Millisecond), int64(2*netsim.Millisecond), int64(0), int64(0), int64(0), int64(time.Millisecond), true)
	f.Fuzz(func(t *testing.T, targetSel uint8, at1, at2, drain, install, patch, timeout int64, inject bool) {
		g := topology.FatTree(4)
		newTarget := func() *topology.Graph {
			switch targetSel % 4 {
			case 0:
				return topology.Torus2D(4, 4, 1) // fits
			case 1:
				return topology.FatTree(4) // fits (self-transition)
			case 2:
				return topology.Dragonfly(4, 9, 2, 1) // not in the cabling: rejected
			default:
				return topology.FatTree(8) // far too large: rejected
			}
		}
		spec := &Spec{
			Transitions:  []Transition{{At: netsim.Time(at1), Target: newTarget(), Drain: netsim.Time(drain), Install: netsim.Time(install)}},
			PatchLatency: netsim.Time(patch),
			StageTimeout: time.Duration(timeout),
		}
		if at2 != 0 {
			spec.Transitions = append(spec.Transitions,
				Transition{At: netsim.Time(at2), Target: newTarget(), Drain: netsim.Time(drain), Install: netsim.Time(install)})
		}
		if inject {
			spec.Transitions[0].Validate = func(*projection.Plan) error {
				return errInjected
			}
		}

		routes, err := routing.ForTopology(g).Compute(g)
		if err != nil {
			t.Fatal(err)
		}
		live := routes.Clone()
		live.Prime()
		net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(live), netsim.DefaultConfig(), nil, false)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := New(g, fuzzCab, live, spec, partition.Options{})
		if err != nil {
			// Rejected before drain: the spec never touched anything.
			return
		}
		rc.Bind(net)
		net.Sim.Run(0)

		for i := range rc.Stages {
			st := &rc.Stages[i]
			switch {
			case st.Outcome == OutcomeCommitted,
				strings.HasPrefix(st.Outcome, OutcomeRolledBack),
				strings.HasPrefix(st.Outcome, OutcomeRejected):
			case st.Outcome == "":
				// Legal only if the engine never reached the stage, which
				// cannot happen here: Run(0) drains the whole queue.
				t.Fatalf("stage %d never resolved: %+v", i, st)
			default:
				t.Fatalf("stage %d has unknown outcome %q", i, st.Outcome)
			}
			if strings.HasPrefix(st.Outcome, OutcomeRejected) && len(st.Drained) != 0 {
				t.Fatalf("stage %d rejected but drained %v", i, st.Drained)
			}
		}
		// The resident plan — whatever committed last, or the original —
		// must be internally consistent and must be exactly what the
		// allocation books.
		plan := rc.Plan()
		if err := plan.Check(); err != nil {
			t.Fatalf("resident plan fails check: %v", err)
		}
		self, inter, host := rc.Allocation().UsedCounts()
		if self != plan.SelfUsed || inter != plan.InterUsed || host != len(plan.HostAttach) {
			t.Fatalf("allocation books (%d, %d, %d), resident plan %q needs (%d, %d, %d)",
				self, inter, host, plan.Topo.Name, plan.SelfUsed, plan.InterUsed, len(plan.HostAttach))
		}
		// Every link must be back up: the protocol restores the fabric
		// whatever the outcome.
		for eid := range g.Edges {
			if net.LinkIsDown(eid) {
				t.Fatalf("link %d left down after the run", eid)
			}
		}
	})
}
