package projection

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/topology"
)

// Method enumerates the Topology Projection methods compared in
// Table II.
type Method int

const (
	// MethodSDT is this paper's Link Projection on OpenFlow switches.
	MethodSDT Method = iota
	// MethodSP is Switch Projection with manual cabling (§III-B).
	MethodSP
	// MethodSPOS is SP with a MEMS optical switch doing the recabling
	// (§III-C).
	MethodSPOS
	// MethodTurboNet is TurboNet's Port Mapper on a P4 switch: logical
	// links realised by loopback ports, halving usable port bandwidth.
	MethodTurboNet
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case MethodSDT:
		return "SDT"
	case MethodSP:
		return "SP"
	case MethodSPOS:
		return "SP-OS"
	case MethodTurboNet:
		return "TurboNet(PM)"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Requirement is what a method needs to project one topology.
type Requirement struct {
	Method   Method
	Switches int // physical (OpenFlow/P4) switches
	// OpticalPorts is the MEMS optical switch port count (SP-OS only):
	// every physical switch port is patched through the optical switch.
	OpticalPorts int
	// ManualCables is the number of cables a human must (re)connect on
	// every reconfiguration (SP only).
	ManualCables int
	// BandwidthFactor is the fraction of nominal port bandwidth
	// available to the experiment (TurboNet's loopback halves it).
	BandwidthFactor float64
}

// Requirements computes the minimal hardware for projecting g with
// method m using switches of the given spec, considering at most
// maxSwitches. It fails when the topology cannot fit.
func Requirements(g *topology.Graph, spec PhysicalSwitch, m Method, maxSwitches int) (Requirement, error) {
	req := Requirement{Method: m, BandwidthFactor: 1}
	effSpec := spec
	if m == MethodTurboNet {
		// Each logical link is realised through loopback ports, which
		// halves the switch's usable external port count and the
		// per-port bandwidth available to the emulated topology [35].
		effSpec.Ports = spec.Ports / 2
		req.BandwidthFactor = 0.5
	}
	if effSpec.Ports < 1 {
		return req, fmt.Errorf("projection: %s: switch spec has no usable ports", m)
	}
	k, err := minSwitches(g, effSpec, maxSwitches)
	if err != nil {
		return req, fmt.Errorf("projection: %s: %w", m, err)
	}
	req.Switches = k
	switch m {
	case MethodSPOS:
		// All ports of every physical switch are patched into the
		// optical switch so any reconfiguration is remote (§III-C).
		req.OpticalPorts = k * spec.Ports
	case MethodSP:
		// Every switch-switch logical link plus every host link is a
		// manual cable to move on reconfiguration.
		req.ManualCables = len(g.SwitchSwitchEdges()) + g.HostFacingPorts()
	}
	return req, nil
}

// minSwitches finds the smallest k <= maxSwitches such that a k-way
// partition of g fits on k switches of the given spec.
func minSwitches(g *topology.Graph, spec PhysicalSwitch, maxSwitches int) (int, error) {
	if maxSwitches < 1 {
		maxSwitches = 1
	}
	var lastErr error
	for k := 1; k <= maxSwitches && k <= g.NumSwitches(); k++ {
		specs := make([]PhysicalSwitch, k)
		for i := range specs {
			specs[i] = spec
			specs[i].ID = fmt.Sprintf("%s-%d", spec.ID, i)
		}
		parts, err := partition.Cut(g, k, partition.Options{})
		if err != nil {
			return 0, err
		}
		d := demandsFor(g, parts)
		if err := fitParts(d, specs); err != nil {
			lastErr = err
			continue
		}
		return k, nil
	}
	return 0, fmt.Errorf("does not fit on %d switches of %d ports: %v", maxSwitches, spec.Ports, lastErr)
}

// Projectable reports whether method m can realise g with at most
// maxSwitches switches of the given spec — the Table II scalability
// metric over the topology zoo.
func Projectable(g *topology.Graph, spec PhysicalSwitch, m Method, maxSwitches int) bool {
	_, err := Requirements(g, spec, m, maxSwitches)
	return err == nil
}
