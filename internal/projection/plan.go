package projection

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/topology"
)

// Allocation tracks which physical links and ports of a cabling are in
// use, so several logical topologies can be co-hosted on one testbed
// (the hardware-isolation scenario of §VI-B).
type Allocation struct {
	cab       *Cabling
	selfUsed  []bool
	interUsed []bool
	hostUsed  []bool
}

// NewAllocation returns an empty allocation over cab.
func NewAllocation(cab *Cabling) *Allocation {
	return &Allocation{
		cab:       cab,
		selfUsed:  make([]bool, len(cab.SelfLinks)),
		interUsed: make([]bool, len(cab.InterLinks)),
		hostUsed:  make([]bool, len(cab.HostPorts)),
	}
}

// FreeSelf reports unused self-links on switch s.
func (a *Allocation) FreeSelf(s int) int {
	n := 0
	for _, i := range a.cab.selfOn(s) {
		if !a.selfUsed[i] {
			n++
		}
	}
	return n
}

// FreeInter reports unused inter-links between switches s1 and s2.
func (a *Allocation) FreeInter(s1, s2 int) int {
	n := 0
	for _, i := range a.cab.interBetween(s1, s2) {
		if !a.interUsed[i] {
			n++
		}
	}
	return n
}

// FreeHostPorts reports unused host ports on switch s.
func (a *Allocation) FreeHostPorts(s int) int {
	n := 0
	for _, i := range a.cab.hostPortsOn(s) {
		if !a.hostUsed[i] {
			n++
		}
	}
	return n
}

// PortKey names a logical port: vertex ID and 1-based port number.
type PortKey struct {
	Vertex int
	Port   int
}

// Plan is the result of projecting one logical topology onto a cabling:
// the complete logical-to-physical port mapping.
type Plan struct {
	Topo    *topology.Graph
	Cabling *Cabling
	Parts   *partition.Result

	// PartToSwitch maps partition parts to physical switch indices.
	PartToSwitch []int
	// Ports maps every logical switch port to its physical port.
	Ports map[PortKey]PortRef
	// HostAttach maps each host vertex to the physical port its NIC
	// plugs into.
	HostAttach map[int]PortRef
	// EdgeLink records, per logical switch-switch edge ID, the physical
	// realisation: either a self-link or an inter-link.
	EdgeLink map[int]PhysLink

	SelfUsed, InterUsed int
}

// PhysLink is the physical realisation of one logical link.
type PhysLink struct {
	SelfLink  int // index into Cabling.SelfLinks, or -1
	InterLink int // index into Cabling.InterLinks, or -1
}

// IsInter reports whether the logical link crosses physical switches.
func (p PhysLink) IsInter() bool { return p.InterLink >= 0 }

// CrossbarOf returns the physical switch index hosting logical switch v
// — the crossbar its sub-switch shares with co-projected sub-switches.
func (p *Plan) CrossbarOf(v int) int {
	return p.PartToSwitch[p.Parts.Assign[v]]
}

// SubSwitchPorts returns the physical ports grouped into the sub-switch
// of logical switch v (host-facing ports included), sorted.
func (p *Plan) SubSwitchPorts(v int) []PortRef {
	var out []PortRef
	for key, ref := range p.Ports {
		if key.Vertex == v {
			out = append(out, ref)
		}
	}
	sortPortRefs(out)
	return out
}

func sortPortRefs(s []PortRef) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].Switch < s[j-1].Switch || (s[j].Switch == s[j-1].Switch && s[j].Port < s[j-1].Port)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Project runs SDT Link Projection of g onto cab using a fresh
// allocation (the whole testbed dedicated to this topology).
func Project(g *topology.Graph, cab *Cabling, opt partition.Options) (*Plan, error) {
	return ProjectInto(g, cab, NewAllocation(cab), opt)
}

// ProjectInto runs Link Projection, drawing physical links from alloc
// so multiple topologies can share one cabling. It prefers the fewest
// physical switches, retrying with more parts when the cabling's
// reserved links for a smaller split are exhausted. On success the
// consumed links are marked used in alloc.
func ProjectInto(g *topology.Graph, cab *Cabling, alloc *Allocation, opt partition.Options) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("projection: invalid topology: %w", err)
	}
	var lastErr error
	for k := 1; k <= maxK(g, cab.Switches); k++ {
		md, err := mapDemands(g, cab.Switches, k, opt)
		if err != nil {
			lastErr = err
			continue
		}
		plan, err := projectMapped(g, cab, alloc, md)
		if err != nil {
			lastErr = err
			continue
		}
		return plan, nil
	}
	return nil, fmt.Errorf("projection: cannot project %q onto cabling: %v", g.Name, lastErr)
}

// projectMapped assigns physical links for one concrete part mapping,
// committing to alloc only on success.
func projectMapped(g *topology.Graph, cab *Cabling, alloc *Allocation, md *mappedDemands) (*Plan, error) {
	parts := md.parts
	partToSwitch := md.partToSwitch

	plan := &Plan{
		Topo:         g,
		Cabling:      cab,
		Parts:        parts,
		PartToSwitch: partToSwitch,
		Ports:        map[PortKey]PortRef{},
		HostAttach:   map[int]PortRef{},
		EdgeLink:     map[int]PhysLink{},
	}

	// Stage the allocation so failures leave alloc untouched.
	selfTaken := map[int]bool{}
	interTaken := map[int]bool{}
	hostTaken := map[int]bool{}
	nextSelf := func(s int) (int, bool) {
		for _, i := range cab.selfOn(s) {
			if !alloc.selfUsed[i] && !selfTaken[i] {
				selfTaken[i] = true
				return i, true
			}
		}
		return 0, false
	}
	nextInter := func(s1, s2 int) (int, bool) {
		for _, i := range cab.interBetween(s1, s2) {
			if !alloc.interUsed[i] && !interTaken[i] {
				interTaken[i] = true
				return i, true
			}
		}
		return 0, false
	}
	nextHost := func(s int) (int, bool) {
		for _, i := range cab.hostPortsOn(s) {
			if !alloc.hostUsed[i] && !hostTaken[i] {
				hostTaken[i] = true
				return i, true
			}
		}
		return 0, false
	}

	// Project links (the LP step): logical switch-switch edges first.
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		sa := partToSwitch[parts.Assign[e.A]]
		sb := partToSwitch[parts.Assign[e.B]]
		if sa == sb {
			idx, ok := nextSelf(sa)
			if !ok {
				return nil, fmt.Errorf("projection: %s: out of self-links on switch %s (edge %d); add cables or re-plan cabling",
					g.Name, cab.Switches[sa].ID, eid)
			}
			sl := cab.SelfLinks[idx]
			plan.Ports[PortKey{e.A, e.APort}] = PortRef{sa, sl.PortA}
			plan.Ports[PortKey{e.B, e.BPort}] = PortRef{sa, sl.PortB}
			plan.EdgeLink[eid] = PhysLink{SelfLink: idx, InterLink: -1}
			plan.SelfUsed++
		} else {
			idx, ok := nextInter(sa, sb)
			if !ok {
				return nil, fmt.Errorf("projection: %s: out of inter-switch links between %s and %s (edge %d); reserve more (§VII-A)",
					g.Name, cab.Switches[sa].ID, cab.Switches[sb].ID, eid)
			}
			il := cab.InterLinks[idx]
			refA, refB := il.A, il.B
			if refA.Switch != sa {
				refA, refB = refB, refA
			}
			plan.Ports[PortKey{e.A, e.APort}] = refA
			plan.Ports[PortKey{e.B, e.BPort}] = refB
			plan.EdgeLink[eid] = PhysLink{SelfLink: -1, InterLink: idx}
			plan.InterUsed++
		}
	}
	// Attach hosts.
	for _, h := range g.Hosts() {
		sw := g.HostSwitch(h)
		if sw < 0 {
			continue
		}
		s := partToSwitch[parts.Assign[sw]]
		idx, ok := nextHost(s)
		if !ok {
			return nil, fmt.Errorf("projection: %s: out of host ports on switch %s for host %q",
				g.Name, cab.Switches[s].ID, g.Vertices[h].Label)
		}
		ref := cab.HostPorts[idx].Ref
		plan.HostAttach[h] = ref
		eid := g.EdgeBetween(sw, h)
		plan.Ports[PortKey{sw, g.Edges[eid].PortAt(sw)}] = ref
	}

	// Commit.
	for i := range selfTaken {
		alloc.selfUsed[i] = true
	}
	for i := range interTaken {
		alloc.interUsed[i] = true
	}
	for i := range hostTaken {
		alloc.hostUsed[i] = true
	}
	return plan, nil
}

// Release returns the plan's physical links to the allocation (topology
// teardown during reconfiguration).
func (p *Plan) Release(alloc *Allocation) {
	for _, pl := range p.EdgeLink {
		if pl.SelfLink >= 0 {
			alloc.selfUsed[pl.SelfLink] = false
		}
		if pl.InterLink >= 0 {
			alloc.interUsed[pl.InterLink] = false
		}
	}
	for h := range p.HostAttach {
		ref := p.HostAttach[h]
		for i, hp := range p.Cabling.HostPorts {
			if hp.Ref == ref {
				alloc.hostUsed[i] = false
			}
		}
	}
}

// Acquire marks the plan's physical links and host ports used in alloc
// — the exact inverse of Release, used to restore a previously released
// deployment during reconfiguration rollback. It fails without mutating
// alloc if any of the plan's resources is already booked, so a rollback
// can never double-book ports.
func (p *Plan) Acquire(alloc *Allocation) error {
	var selfIdx, interIdx, hostIdx []int
	for eid, pl := range p.EdgeLink {
		if pl.SelfLink >= 0 {
			if alloc.selfUsed[pl.SelfLink] {
				return fmt.Errorf("projection: %s: self-link %d (edge %d) already in use", p.Topo.Name, pl.SelfLink, eid)
			}
			selfIdx = append(selfIdx, pl.SelfLink)
		}
		if pl.InterLink >= 0 {
			if alloc.interUsed[pl.InterLink] {
				return fmt.Errorf("projection: %s: inter-link %d (edge %d) already in use", p.Topo.Name, pl.InterLink, eid)
			}
			interIdx = append(interIdx, pl.InterLink)
		}
	}
	for h, ref := range p.HostAttach {
		for i, hp := range p.Cabling.HostPorts {
			if hp.Ref == ref {
				if alloc.hostUsed[i] {
					return fmt.Errorf("projection: %s: host port %v (host %d) already in use", p.Topo.Name, ref, h)
				}
				hostIdx = append(hostIdx, i)
			}
		}
	}
	for _, i := range selfIdx {
		alloc.selfUsed[i] = true
	}
	for _, i := range interIdx {
		alloc.interUsed[i] = true
	}
	for _, i := range hostIdx {
		alloc.hostUsed[i] = true
	}
	return nil
}

// UsedCounts reports how many self-links, inter-links, and host ports
// the allocation currently has booked — the leak/double-book invariant
// the reconfiguration fuzzer checks against the resident plan.
func (a *Allocation) UsedCounts() (self, inter, host int) {
	for _, u := range a.selfUsed {
		if u {
			self++
		}
	}
	for _, u := range a.interUsed {
		if u {
			inter++
		}
	}
	for _, u := range a.hostUsed {
		if u {
			host++
		}
	}
	return self, inter, host
}

// Check verifies the plan's internal consistency: every logical
// switch-switch edge is realised by a physical cable whose two ports
// map back to the edge's two logical ports, and no physical port is
// used twice. This is the Topology Customization module's checking
// function (§V-1) applied to the plan output.
func (p *Plan) Check() error {
	g := p.Topo
	seen := map[PortRef]PortKey{}
	for key, ref := range p.Ports {
		if prev, dup := seen[ref]; dup {
			return fmt.Errorf("projection: physical port %v mapped to both %v and %v", ref, prev, key)
		}
		seen[ref] = key
	}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		pl, ok := p.EdgeLink[eid]
		if !ok {
			return fmt.Errorf("projection: edge %d not realised", eid)
		}
		ra, okA := p.Ports[PortKey{e.A, e.APort}]
		rb, okB := p.Ports[PortKey{e.B, e.BPort}]
		if !okA || !okB {
			return fmt.Errorf("projection: edge %d missing port mapping", eid)
		}
		var pa, pb PortRef
		if pl.SelfLink >= 0 {
			sl := p.Cabling.SelfLinks[pl.SelfLink]
			pa, pb = PortRef{sl.Switch, sl.PortA}, PortRef{sl.Switch, sl.PortB}
		} else {
			il := p.Cabling.InterLinks[pl.InterLink]
			pa, pb = il.A, il.B
		}
		if !((ra == pa && rb == pb) || (ra == pb && rb == pa)) {
			return fmt.Errorf("projection: edge %d maps to %v/%v but cable is %v/%v", eid, ra, rb, pa, pb)
		}
	}
	for h, ref := range p.HostAttach {
		sw := g.HostSwitch(h)
		if sw < 0 {
			return fmt.Errorf("projection: host %d unattached in topology", h)
		}
		if p.CrossbarOf(sw) != ref.Switch {
			return fmt.Errorf("projection: host %d on switch %d but its logical switch is on %d",
				h, ref.Switch, p.CrossbarOf(sw))
		}
	}
	return nil
}

// CableAt returns the physical port at the far end of the cable plugged
// into ref, distinguishing self-links, inter-links and host ports.
func (p *Plan) CableAt(ref PortRef) (PortRef, bool) {
	for _, sl := range p.Cabling.SelfLinks {
		if sl.Switch == ref.Switch && sl.PortA == ref.Port {
			return PortRef{sl.Switch, sl.PortB}, true
		}
		if sl.Switch == ref.Switch && sl.PortB == ref.Port {
			return PortRef{sl.Switch, sl.PortA}, true
		}
	}
	for _, il := range p.Cabling.InterLinks {
		if il.A == ref {
			return il.B, true
		}
		if il.B == ref {
			return il.A, true
		}
	}
	return PortRef{}, false
}

// Stats summarises a plan for reports and Table II.
type PlanStats struct {
	PhysicalSwitches int
	SelfLinks        int
	InterLinks       int
	Hosts            int
}

// Stats computes the plan summary.
func (p *Plan) Stats() PlanStats {
	used := map[int]bool{}
	for _, s := range p.PartToSwitch {
		used[s] = true
	}
	return PlanStats{
		PhysicalSwitches: len(used),
		SelfLinks:        p.SelfUsed,
		InterLinks:       p.InterUsed,
		Hosts:            len(p.HostAttach),
	}
}
