// Package projection implements Topology Projection (TP) — the paper's
// core contribution — projecting logical topologies onto a small set of
// commodity OpenFlow switches.
//
// SDT's Link Projection (LP, §IV): physical cabling is fixed once
// (pairs of adjacent ports joined into "self-links", a reserve of
// cables between physical switches as "inter-switch links", and ports
// wired to hosts). To realise a logical topology, each logical link is
// assigned to a physical link; the physical ports then inherit the
// logical port labels, logical switches become sub-switches (groups of
// physical ports), and OpenFlow flow tables confine forwarding to each
// sub-switch's domain. Reconfiguration = rewriting flow tables only.
//
// The package also models the baselines of Table II: SP (manual
// recabling), SP-OS (MEMS optical switch does the recabling) and
// TurboNet's Port-Mapper mode (loopback ports at half bandwidth).
package projection

import (
	"fmt"
	"sort"

	"repro/internal/partition"
	"repro/internal/topology"
)

// PhysicalSwitch describes one commodity OpenFlow switch.
type PhysicalSwitch struct {
	ID       string
	Ports    int // usable front-panel ports
	TableCap int // flow-table entries; 0 = unlimited
}

// H3CS6861 mirrors the paper's testbed switch: 64 10G SFP+ ports plus
// 6 40G QSFP+ ports split 4-way into 24 more 10G ports — 88 usable
// ports. The flow-table budget reflects the exact-match table
// (commodity silicon holds tens of thousands of exact-match entries;
// the 4k figure usually quoted is the wildcard TCAM).
func H3CS6861(id string) PhysicalSwitch {
	return PhysicalSwitch{ID: id, Ports: 88, TableCap: 16384}
}

// Commodity64 is a generic 64-port OpenFlow switch used in scalability
// sweeps.
func Commodity64(id string) PhysicalSwitch {
	return PhysicalSwitch{ID: id, Ports: 64, TableCap: 4096}
}

// PortRef names one physical port: switch index (into the cabling's
// switch list) and 1-based port number.
type PortRef struct {
	Switch int
	Port   int
}

func (p PortRef) String() string { return fmt.Sprintf("sw%d.p%d", p.Switch, p.Port) }

// SelfLink is a cable joining two ports of the same physical switch
// ("the switch's upper and lower adjacent ports are connected", §IV-A).
type SelfLink struct {
	Switch int
	PortA  int
	PortB  int
}

// InterLink is a cable joining ports on two different physical switches
// (§IV-B), reserved for logical links that cross sub-topologies.
type InterLink struct {
	A PortRef
	B PortRef
}

// HostPort is a physical port wired to a compute node.
type HostPort struct {
	Ref PortRef
}

// Cabling is the fixed physical wiring of an SDT deployment. Once
// built, any topology whose demands fit these reserves can be deployed
// or re-deployed without touching a cable.
type Cabling struct {
	Switches   []PhysicalSwitch
	SelfLinks  []SelfLink
	InterLinks []InterLink
	HostPorts  []HostPort
}

// selfOn returns indices of self-links on physical switch s.
func (c *Cabling) selfOn(s int) []int {
	var out []int
	for i, sl := range c.SelfLinks {
		if sl.Switch == s {
			out = append(out, i)
		}
	}
	return out
}

// interBetween returns indices of inter-links joining switches a and b.
func (c *Cabling) interBetween(a, b int) []int {
	var out []int
	for i, il := range c.InterLinks {
		if (il.A.Switch == a && il.B.Switch == b) || (il.A.Switch == b && il.B.Switch == a) {
			out = append(out, i)
		}
	}
	return out
}

// hostPortsOn returns indices of host ports on switch s.
func (c *Cabling) hostPortsOn(s int) []int {
	var out []int
	for i, hp := range c.HostPorts {
		if hp.Ref.Switch == s {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks that the cabling uses each port at most once and
// stays within each switch's port count.
func (c *Cabling) Validate() error {
	used := map[PortRef]string{}
	claim := func(r PortRef, what string) error {
		if r.Switch < 0 || r.Switch >= len(c.Switches) {
			return fmt.Errorf("projection: %s references switch %d out of range", what, r.Switch)
		}
		if r.Port < 1 || r.Port > c.Switches[r.Switch].Ports {
			return fmt.Errorf("projection: %s references port %v out of range", what, r)
		}
		if prev, dup := used[r]; dup {
			return fmt.Errorf("projection: port %v used by both %s and %s", r, prev, what)
		}
		used[r] = what
		return nil
	}
	for i, sl := range c.SelfLinks {
		what := fmt.Sprintf("self-link %d", i)
		if sl.PortA == sl.PortB {
			return fmt.Errorf("projection: self-link %d joins a port to itself", i)
		}
		if err := claim(PortRef{sl.Switch, sl.PortA}, what); err != nil {
			return err
		}
		if err := claim(PortRef{sl.Switch, sl.PortB}, what); err != nil {
			return err
		}
	}
	for i, il := range c.InterLinks {
		what := fmt.Sprintf("inter-link %d", i)
		if il.A.Switch == il.B.Switch {
			return fmt.Errorf("projection: inter-link %d stays on one switch", i)
		}
		if err := claim(il.A, what); err != nil {
			return err
		}
		if err := claim(il.B, what); err != nil {
			return err
		}
	}
	for i, hp := range c.HostPorts {
		if err := claim(hp.Ref, fmt.Sprintf("host port %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// Demands summarises what one topology requires of a cabling after
// partitioning: per-part self-links and host ports, and pairwise
// inter-switch links (Eq. 1–2 of the paper).
type Demands struct {
	K         int
	Self      []int          // per part
	Host      []int          // per part
	Inter     map[[2]int]int // per unordered part pair
	PartPorts []int          // total physical ports needed per part
}

// demandsFor computes link demands for a k-way partition of g.
func demandsFor(g *topology.Graph, parts *partition.Result) *Demands {
	d := &Demands{
		K:     parts.K,
		Self:  make([]int, parts.K),
		Host:  make([]int, parts.K),
		Inter: map[[2]int]int{},
	}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		pa, pb := parts.Assign[e.A], parts.Assign[e.B]
		if pa == pb {
			d.Self[pa]++
		} else {
			if pa > pb {
				pa, pb = pb, pa
			}
			d.Inter[[2]int{pa, pb}]++
		}
	}
	for _, h := range g.Hosts() {
		if s := g.HostSwitch(h); s >= 0 {
			d.Host[parts.Assign[s]]++
		}
	}
	d.PartPorts = make([]int, parts.K)
	for p := 0; p < parts.K; p++ {
		d.PartPorts[p] = 2*d.Self[p] + d.Host[p]
	}
	for pair, n := range d.Inter {
		d.PartPorts[pair[0]] += n
		d.PartPorts[pair[1]] += n
	}
	return d
}

// mappedDemands partitions g into k parts and maps parts onto physical
// switches (heaviest part to the largest switch), returning per-switch
// self-link/host-port demand and per-switch-pair inter-link demand.
type mappedDemands struct {
	parts        *partition.Result
	partToSwitch []int
	self, host   []int          // indexed by physical switch
	inter        map[[2]int]int // unordered physical switch pair
}

func mapDemands(g *topology.Graph, switches []PhysicalSwitch, k int, opt partition.Options) (*mappedDemands, error) {
	parts, err := partition.Cut(g, k, opt)
	if err != nil {
		return nil, err
	}
	d := demandsFor(g, parts)
	if err := fitParts(d, switches); err != nil {
		return nil, err
	}
	order := partOrder(d)
	swOrder := switchOrder(switches)
	md := &mappedDemands{
		parts:        parts,
		partToSwitch: make([]int, d.K),
		self:         make([]int, len(switches)),
		host:         make([]int, len(switches)),
		inter:        map[[2]int]int{},
	}
	for i, p := range order {
		md.partToSwitch[p] = swOrder[i]
	}
	for p := 0; p < d.K; p++ {
		s := md.partToSwitch[p]
		md.self[s] += d.Self[p]
		md.host[s] += d.Host[p]
	}
	for pair, n := range d.Inter {
		a, b := md.partToSwitch[pair[0]], md.partToSwitch[pair[1]]
		if a > b {
			a, b = b, a
		}
		md.inter[[2]int{a, b}] += n
	}
	return md, nil
}

// maxK bounds the useful part count for g on the given switch set.
func maxK(g *topology.Graph, switches []PhysicalSwitch) int {
	k := len(switches)
	if n := g.NumSwitches(); n < k {
		k = n
	}
	return k
}

// fitParts checks the per-part port demand against switch port counts,
// assigning the heaviest parts to the largest switches.
func fitParts(d *Demands, switches []PhysicalSwitch) error {
	order := partOrder(d)
	swOrder := switchOrder(switches)
	for i, p := range order {
		if i >= len(swOrder) {
			return fmt.Errorf("more parts than switches")
		}
		sw := switches[swOrder[i]]
		if d.PartPorts[p] > sw.Ports {
			return fmt.Errorf("part %d needs %d ports, switch %s has %d", p, d.PartPorts[p], sw.ID, sw.Ports)
		}
	}
	return nil
}

// partOrder returns part indices sorted by descending port demand
// (stable on index).
func partOrder(d *Demands) []int {
	order := make([]int, d.K)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return d.PartPorts[order[a]] > d.PartPorts[order[b]] })
	return order
}

// switchOrder returns switch indices sorted by descending port count
// (stable on index).
func switchOrder(switches []PhysicalSwitch) []int {
	order := make([]int, len(switches))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return switches[order[a]].Ports > switches[order[b]].Ports })
	return order
}

// reservation is the running union of link demands during cabling
// planning.
type reservation struct {
	self, host []int
	inter      map[[2]int]int
}

func newReservation(n int) *reservation {
	return &reservation{self: make([]int, n), host: make([]int, n), inter: map[[2]int]int{}}
}

// union merges md into a copy of r.
func (r *reservation) union(md *mappedDemands) *reservation {
	out := newReservation(len(r.self))
	copy(out.self, r.self)
	copy(out.host, r.host)
	for k, v := range r.inter {
		out.inter[k] = v
	}
	for s := range md.self {
		if md.self[s] > out.self[s] {
			out.self[s] = md.self[s]
		}
		if md.host[s] > out.host[s] {
			out.host[s] = md.host[s]
		}
	}
	for pair, n := range md.inter {
		if n > out.inter[pair] {
			out.inter[pair] = n
		}
	}
	return out
}

// portsUsed computes per-switch port consumption of the reservation.
func (r *reservation) portsUsed(n int) []int {
	used := make([]int, n)
	for s := 0; s < n; s++ {
		used[s] = 2*r.self[s] + r.host[s]
	}
	for pair, cnt := range r.inter {
		used[pair[0]] += cnt
		used[pair[1]] += cnt
	}
	return used
}

// fits reports whether the reservation stays within switch port counts.
func (r *reservation) fits(switches []PhysicalSwitch) bool {
	for s, used := range r.portsUsed(len(switches)) {
		if used > switches[s].Ports {
			return false
		}
	}
	return true
}

func (r *reservation) totalPorts(n int) int {
	t := 0
	for _, u := range r.portsUsed(n) {
		t += u
	}
	return t
}

// PlanCabling computes a fixed physical wiring able to host every
// topology in topos (§IV-B: "we generally divide the topologies in
// advance ... the reserved inter-switch links usually come from the
// maximum inter-switch links among all topologies"). Larger topologies
// are reserved first; each subsequent topology picks the part count
// whose demands add the fewest new ports to the reservation, which
// keeps inter-switch links "about the same" across switch pairs as the
// paper recommends. Port layout per switch: host ports first, then
// self-link pairs on adjacent ports, then inter-link ports.
func PlanCabling(switches []PhysicalSwitch, topos []*topology.Graph, opt partition.Options) (*Cabling, error) {
	if len(topos) == 0 {
		return nil, fmt.Errorf("projection: no topologies to plan for")
	}
	if len(switches) == 0 {
		return nil, fmt.Errorf("projection: no physical switches")
	}
	n := len(switches)
	// Biggest topologies first: they constrain the layout.
	order := make([]int, len(topos))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return topos[order[a]].SwitchPortCount() > topos[order[b]].SwitchPortCount()
	})
	res := newReservation(n)
	for _, ti := range order {
		g := topos[ti]
		bestCost := -1
		var bestRes *reservation
		var lastErr error
		for k := 1; k <= maxK(g, switches); k++ {
			md, err := mapDemands(g, switches, k, opt)
			if err != nil {
				lastErr = err
				continue
			}
			cand := res.union(md)
			if !cand.fits(switches) {
				lastErr = fmt.Errorf("k=%d reservation exceeds port budget", k)
				continue
			}
			cost := cand.totalPorts(n) - res.totalPorts(n)
			if bestCost < 0 || cost < bestCost {
				bestCost, bestRes = cost, cand
			}
			if cost == 0 {
				break // free under the existing reservation
			}
		}
		if bestRes == nil {
			return nil, fmt.Errorf("projection: topology %q does not fit on %d switch(es): %v",
				g.Name, len(switches), lastErr)
		}
		res = bestRes
	}
	maxSelf, maxHost, maxInter := res.self, res.host, res.inter
	cab := &Cabling{Switches: append([]PhysicalSwitch(nil), switches...)}
	next := make([]int, n) // next free port per switch
	for i := range next {
		next[i] = 1
	}
	take := func(s int) (int, error) {
		if next[s] > switches[s].Ports {
			return 0, fmt.Errorf("projection: switch %s out of ports while reserving cabling", switches[s].ID)
		}
		p := next[s]
		next[s]++
		return p, nil
	}
	for s := 0; s < n; s++ {
		for i := 0; i < maxHost[s]; i++ {
			p, err := take(s)
			if err != nil {
				return nil, err
			}
			cab.HostPorts = append(cab.HostPorts, HostPort{Ref: PortRef{s, p}})
		}
		for i := 0; i < maxSelf[s]; i++ {
			pa, err := take(s)
			if err != nil {
				return nil, err
			}
			pb, err := take(s)
			if err != nil {
				return nil, err
			}
			cab.SelfLinks = append(cab.SelfLinks, SelfLink{Switch: s, PortA: pa, PortB: pb})
		}
	}
	pairs := make([][2]int, 0, len(maxInter))
	for pair := range maxInter {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pair := range pairs {
		for i := 0; i < maxInter[pair]; i++ {
			pa, err := take(pair[0])
			if err != nil {
				return nil, err
			}
			pb, err := take(pair[1])
			if err != nil {
				return nil, err
			}
			cab.InterLinks = append(cab.InterLinks, InterLink{A: PortRef{pair[0], pa}, B: PortRef{pair[1], pb}})
		}
	}
	if err := cab.Validate(); err != nil {
		return nil, err
	}
	return cab, nil
}
