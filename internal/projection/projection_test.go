package projection

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/openflow"
	"repro/internal/partition"
	"repro/internal/routing"
	"repro/internal/topology"
)

func threeSwitches() []PhysicalSwitch {
	return []PhysicalSwitch{H3CS6861("s6861-a"), H3CS6861("s6861-b"), H3CS6861("s6861-c")}
}

func mustPlan(t *testing.T, g *topology.Graph, switches []PhysicalSwitch) (*Plan, *Cabling) {
	t.Helper()
	cab, err := PlanCabling(switches, []*topology.Graph{g}, partition.Options{})
	if err != nil {
		t.Fatalf("PlanCabling(%s): %v", g.Name, err)
	}
	plan, err := Project(g, cab, partition.Options{})
	if err != nil {
		t.Fatalf("Project(%s): %v", g.Name, err)
	}
	if err := plan.Check(); err != nil {
		t.Fatalf("plan.Check(%s): %v", g.Name, err)
	}
	return plan, cab
}

func TestProjectLineSingleSwitch(t *testing.T) {
	g := topology.Line(8, 1) // Fig. 10 topology: 14 switch ports + 8 hosts = 22 <= 64
	plan, _ := mustPlan(t, g, threeSwitches()[:1])
	st := plan.Stats()
	if st.PhysicalSwitches != 1 {
		t.Errorf("physical switches = %d, want 1", st.PhysicalSwitches)
	}
	if st.SelfLinks != 7 || st.InterLinks != 0 {
		t.Errorf("links = %d self, %d inter; want 7, 0", st.SelfLinks, st.InterLinks)
	}
	if st.Hosts != 8 {
		t.Errorf("hosts = %d, want 8", st.Hosts)
	}
}

func TestProjectFatTreeTwoSwitches(t *testing.T) {
	// §VII-C: fat-tree k=4 (32 switch links + 16 hosts = 80 ports) needs
	// 2 of the 64-port switches.
	g := topology.FatTree(4)
	plan, _ := mustPlan(t, g, []PhysicalSwitch{Commodity64("a"), Commodity64("b"), Commodity64("c")})
	st := plan.Stats()
	if st.PhysicalSwitches != 2 {
		t.Errorf("physical switches = %d, want 2", st.PhysicalSwitches)
	}
	if st.SelfLinks+st.InterLinks != 32 {
		t.Errorf("self+inter = %d, want 32 logical links", st.SelfLinks+st.InterLinks)
	}
	if st.InterLinks == 0 {
		t.Error("two-switch projection has no inter-switch links")
	}
}

func TestProjectTorus4x4MatchesFig7(t *testing.T) {
	// Fig. 6/7: 4x4 2D-torus (32 links) on two 32-port... the paper uses
	// 64-port switches with >32 ports occupied per half: 12 self + 8
	// inter per switch.
	g := topology.Torus2D(4, 4, 0)
	sw := []PhysicalSwitch{{ID: "a", Ports: 40}, {ID: "b", Ports: 40}}
	cab, err := PlanCabling(sw, []*topology.Graph{g}, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Project(g, cab, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st.PhysicalSwitches != 2 {
		t.Fatalf("physical switches = %d, want 2", st.PhysicalSwitches)
	}
	if st.InterLinks != 8 {
		t.Errorf("inter-switch links = %d, want 8 (Fig. 6)", st.InterLinks)
	}
	if st.SelfLinks != 24 {
		t.Errorf("self links = %d, want 24 (12 per switch)", st.SelfLinks)
	}
}

func TestCablingValidate(t *testing.T) {
	bad := &Cabling{
		Switches:  []PhysicalSwitch{{ID: "a", Ports: 4}},
		SelfLinks: []SelfLink{{Switch: 0, PortA: 1, PortB: 2}, {Switch: 0, PortA: 2, PortB: 3}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("double-used port accepted")
	}
	bad2 := &Cabling{
		Switches:  []PhysicalSwitch{{ID: "a", Ports: 4}},
		SelfLinks: []SelfLink{{Switch: 0, PortA: 1, PortB: 9}},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range port accepted")
	}
	bad3 := &Cabling{
		Switches:   []PhysicalSwitch{{ID: "a", Ports: 8}, {ID: "b", Ports: 8}},
		InterLinks: []InterLink{{A: PortRef{0, 1}, B: PortRef{0, 2}}},
	}
	if err := bad3.Validate(); err == nil {
		t.Error("same-switch inter-link accepted")
	}
}

func TestProjectFailsWhenTooBig(t *testing.T) {
	g := topology.FatTree(8) // 256 switch links + 128 hosts: way over 3x64 ports
	_, err := PlanCabling(threeSwitches(), []*topology.Graph{g}, partition.Options{})
	if err == nil {
		t.Fatal("oversized topology accepted")
	}
	if !strings.Contains(err.Error(), "does not fit") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestMultiTopologyCablingReservesMax(t *testing.T) {
	topos := []*topology.Graph{
		topology.Torus2D(4, 4, 1),
		topology.FatTree(4),
		topology.Dragonfly(4, 9, 2, 1),
	}
	cab, err := PlanCabling(threeSwitches(), topos, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every topology must project onto the shared cabling (sequentially,
	// each with a fresh allocation — reconfiguration reuses links).
	for _, g := range topos {
		plan, err := Project(g, cab, partition.Options{})
		if err != nil {
			t.Errorf("%s does not project onto shared cabling: %v", g.Name, err)
			continue
		}
		if err := plan.Check(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestCoHostedTopologiesShareCabling(t *testing.T) {
	// Two disjoint topologies simultaneously (isolation scenario §VI-B):
	// allocate both from one allocation; links must not collide.
	a := topology.Line(3, 2)
	b := topology.Ring(4, 1)
	// Plan a cabling big enough for both at once.
	combined := topology.New("combined")
	// Merge: simplest is to plan for a synthetic topology with the sum
	// of demands; instead reserve via both separately then double.
	_ = combined
	sw := []PhysicalSwitch{{ID: "big", Ports: 64, TableCap: 4096}}
	cab, err := PlanCabling(sw, []*topology.Graph{topology.Line(8, 4)}, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alloc := NewAllocation(cab)
	planA, err := ProjectInto(a, cab, alloc, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	planB, err := ProjectInto(b, cab, alloc, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No physical port shared between the two plans.
	used := map[PortRef]bool{}
	for _, ref := range planA.Ports {
		used[ref] = true
	}
	for _, ref := range planA.HostAttach {
		used[ref] = true
	}
	for _, ref := range planB.Ports {
		if used[ref] {
			t.Errorf("port %v used by both co-hosted plans", ref)
		}
	}
	for _, ref := range planB.HostAttach {
		if used[ref] {
			t.Errorf("host port %v used by both co-hosted plans", ref)
		}
	}
	// Releasing plan A frees its links for a third topology.
	planA.Release(alloc)
	if _, err := ProjectInto(topology.Line(3, 2), cab, alloc, partition.Options{}); err != nil {
		t.Errorf("released links not reusable: %v", err)
	}
}

// walkPhysical forwards a packet through compiled physical tables from
// src to dst, returning the number of crossbar traversals, or -1 on
// drop/loop.
func walkPhysical(t *testing.T, plan *Plan, switches []*openflow.Switch, src, dst int) int {
	t.Helper()
	ref := plan.HostAttach[src]
	tag := 0
	hops := 0
	for ; hops < 100; hops++ {
		sw := switches[ref.Switch]
		fwd := sw.Process(openflow.PacketMeta{
			InPort: ref.Port, SrcHost: src, DstHost: dst, Tag: tag, Bytes: 1000,
		})
		if !fwd.Matched || fwd.Dropped {
			return -1
		}
		tag = fwd.Tag
		out := PortRef{ref.Switch, fwd.OutPort}
		if out == plan.HostAttach[dst] {
			return hops + 1
		}
		nxt, ok := plan.CableAt(out)
		if !ok {
			t.Fatalf("out port %v has no cable", out)
		}
		ref = nxt
	}
	return -1
}

func TestCompiledTablesForwardEndToEnd(t *testing.T) {
	for _, enc := range []Encoding{TagEncoded, PerInPort} {
		g := topology.Torus2D(3, 3, 1)
		plan, _ := mustPlan(t, g, threeSwitches()[:1])
		routes, err := routing.TorusClue{Dims: 2}.Compute(g)
		if err != nil {
			t.Fatal(err)
		}
		switches, err := CompileFlowTables(plan, routes, CompileOptions{Encoding: enc})
		if err != nil {
			t.Fatalf("encoding %d: %v", enc, err)
		}
		hosts := g.Hosts()
		for _, s := range hosts {
			for _, d := range hosts {
				if s == d {
					continue
				}
				hops := walkPhysical(t, plan, switches, s, d)
				if hops < 0 {
					t.Fatalf("encoding %d: packet %d->%d lost", enc, s, d)
				}
				// Crossbar traversals must equal logical switch hops.
				path, err := routes.TracePath(s, d)
				if err != nil {
					t.Fatal(err)
				}
				if hops != len(path) {
					t.Errorf("encoding %d: %d->%d crossed %d crossbars, logical path %d switches",
						enc, s, d, hops, len(path))
				}
			}
		}
	}
}

func TestCompiledTablesMultiSwitchForward(t *testing.T) {
	g := topology.FatTree(4)
	plan, _ := mustPlan(t, g, threeSwitches())
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	switches, err := CompileFlowTables(plan, routes, CompileOptions{Encoding: TagEncoded})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			if hops := walkPhysical(t, plan, switches, s, d); hops < 0 {
				t.Fatalf("packet %d->%d lost on multi-switch SDT", s, d)
			}
		}
	}
}

func TestEntryCountFatTreeMatchesPaper(t *testing.T) {
	// §VII-C: "when we project a Fat-Tree with k=4 ... to 2 OpenFlow
	// switches, each switch requires about only 300 flow table entries".
	g := topology.FatTree(4)
	plan, _ := mustPlan(t, g, []PhysicalSwitch{Commodity64("a"), Commodity64("b"), Commodity64("c")})
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	switches, err := CompileFlowTables(plan, routes, CompileOptions{Encoding: TagEncoded})
	if err != nil {
		t.Fatal(err)
	}
	perSwitch := 0
	n := 0
	for _, sw := range switches {
		if sw.Table.Len() > 0 {
			n++
			if sw.Table.Len() > perSwitch {
				perSwitch = sw.Table.Len()
			}
		}
	}
	if n != 2 {
		t.Fatalf("entries landed on %d switches, want 2", n)
	}
	if perSwitch < 150 || perSwitch > 450 {
		t.Errorf("max entries per switch = %d, want ~300 (paper §VII-C)", perSwitch)
	}
	// The merged encoding must beat the naive per-in-port encoding.
	naive, err := CompileFlowTables(plan, routes, CompileOptions{Encoding: PerInPort})
	if err != nil {
		t.Fatal(err)
	}
	if EntryCount(naive) <= EntryCount(switches) {
		t.Errorf("per-in-port %d entries <= tag-encoded %d; merging should win",
			EntryCount(naive), EntryCount(switches))
	}
}

func TestTableCapacityEnforced(t *testing.T) {
	g := topology.FatTree(4)
	small := []PhysicalSwitch{
		{ID: "tiny-a", Ports: 64, TableCap: 50},
		{ID: "tiny-b", Ports: 64, TableCap: 50},
		{ID: "tiny-c", Ports: 64, TableCap: 50},
	}
	plan, _ := mustPlan(t, g, small)
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CompileFlowTables(plan, routes, CompileOptions{Encoding: TagEncoded})
	if err == nil {
		t.Fatal("50-entry tables accepted a fat-tree route set")
	}
	var full *openflow.ErrTableFull
	if !strings.Contains(err.Error(), "full") && !errorsAs(err, &full) {
		t.Errorf("unexpected error: %v", err)
	}
}

func errorsAs(err error, target interface{}) bool {
	switch t := target.(type) {
	case **openflow.ErrTableFull:
		e, ok := err.(*openflow.ErrTableFull)
		if ok {
			*t = e
		}
		return ok
	}
	return false
}

func TestIsolationBetweenCoHostedTopologies(t *testing.T) {
	// §VI-B: two unconnected topologies in one SDT; the client's port
	// must not receive packets from nodes of the other topology.
	sw := []PhysicalSwitch{{ID: "big", Ports: 64, TableCap: 4096}}
	cab, err := PlanCabling(sw, []*topology.Graph{topology.Line(8, 4)}, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alloc := NewAllocation(cab)
	a := topology.Line(3, 1)
	b := topology.Line(3, 1)
	planA, err := ProjectInto(a, cab, alloc, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	planB, err := ProjectInto(b, cab, alloc, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routesA, _ := routing.ShortestPath{}.Compute(a)
	routesB, _ := routing.ShortestPath{}.Compute(b)
	switches, err := CompileFlowTables(planA, routesA, CompileOptions{Encoding: TagEncoded, Cookie: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = CompileFlowTables(planB, routesB, CompileOptions{
		Encoding: TagEncoded, Cookie: 2, TagBase: TagSpace(planA, routesA), Into: switches,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Traffic within each topology flows.
	if walkPhysical(t, planA, switches, a.Hosts()[0], a.Hosts()[2]) < 0 {
		t.Error("topology A traffic lost")
	}
	if walkPhysical(t, planB, switches, b.Hosts()[0], b.Hosts()[2]) < 0 {
		t.Error("topology B traffic lost")
	}
	// Cross-topology traffic must be dropped at the ingress switch:
	// inject from an A host toward a B host ID.
	refA := planA.HostAttach[a.Hosts()[0]]
	fwd := switches[refA.Switch].Process(openflow.PacketMeta{
		InPort: refA.Port, SrcHost: a.Hosts()[0], DstHost: b.Hosts()[2] + 1000, Tag: 0, Bytes: 100,
	})
	if fwd.Matched && !fwd.Dropped {
		t.Error("cross-topology packet was forwarded; isolation violated")
	}
	// Teardown by cookie removes exactly one topology's entries.
	before := EntryCount(switches)
	removed := 0
	for _, s := range switches {
		removed += s.Table.RemoveCookie(1)
	}
	if removed == 0 || EntryCount(switches) != before-removed {
		t.Errorf("cookie teardown removed %d of %d entries", removed, before)
	}
	if walkPhysical(t, planB, switches, b.Hosts()[0], b.Hosts()[2]) < 0 {
		t.Error("topology B broken by topology A teardown")
	}
}

func TestRequirements(t *testing.T) {
	spec := Commodity64("c64")
	ft := topology.FatTree(4)
	sdt, err := Requirements(ft, spec, MethodSDT, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sdt.Switches != 2 {
		t.Errorf("SDT switches = %d, want 2", sdt.Switches)
	}
	spos, err := Requirements(ft, spec, MethodSPOS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if spos.OpticalPorts != spos.Switches*64 {
		t.Errorf("SP-OS optical ports = %d, want %d", spos.OpticalPorts, spos.Switches*64)
	}
	sp, err := Requirements(ft, spec, MethodSP, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp.ManualCables != 48 {
		t.Errorf("SP manual cables = %d, want 48 (§I)", sp.ManualCables)
	}
	tn, err := Requirements(ft, spec, MethodTurboNet, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tn.BandwidthFactor != 0.5 {
		t.Errorf("TurboNet bandwidth factor = %v, want 0.5", tn.BandwidthFactor)
	}
	if tn.Switches <= sdt.Switches {
		t.Errorf("TurboNet should need more switches than SDT (%d vs %d)", tn.Switches, sdt.Switches)
	}
}

func TestProjectableZooSDTBeatsTurboNet(t *testing.T) {
	spec := Commodity64("s")
	zoo := topology.Zoo(7)[:60] // subset for test speed
	sdtCount, tnCount := 0, 0
	for _, g := range zoo {
		if Projectable(g, spec, MethodSDT, 3) {
			sdtCount++
		}
		if Projectable(g, spec, MethodTurboNet, 3) {
			tnCount++
		}
	}
	if sdtCount <= tnCount {
		t.Errorf("SDT projects %d zoo WANs, TurboNet %d; SDT must cover more (Table II)", sdtCount, tnCount)
	}
}

// Property: for random WANs that fit, a projection plan always passes
// Check and realises every logical link exactly once.
func TestQuickProjectionSound(t *testing.T) {
	switches := threeSwitches()
	f := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw)%20
		g := topology.RandomWAN("q", n, n/4, seed)
		cab, err := PlanCabling(switches, []*topology.Graph{g}, partition.Options{Seed: seed})
		if err != nil {
			return true // legitimately too big — skip
		}
		plan, err := Project(g, cab, partition.Options{Seed: seed})
		if err != nil {
			return false
		}
		if plan.Check() != nil {
			return false
		}
		return len(plan.EdgeLink) == len(g.SwitchSwitchEdges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkProjectFatTree(b *testing.B) {
	g := topology.FatTree(4)
	switches := []PhysicalSwitch{Commodity64("a"), Commodity64("b"), Commodity64("c")}
	cab, err := PlanCabling(switches, []*topology.Graph{g}, partition.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Project(g, cab, partition.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileFlowTables(b *testing.B) {
	g := topology.FatTree(4)
	switches := []PhysicalSwitch{Commodity64("a"), Commodity64("b"), Commodity64("c")}
	cab, _ := PlanCabling(switches, []*topology.Graph{g}, partition.Options{})
	plan, _ := Project(g, cab, partition.Options{})
	routes, _ := routing.FatTreeDFS{}.Compute(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileFlowTables(plan, routes, CompileOptions{Encoding: TagEncoded}); err != nil {
			b.Fatal(err)
		}
	}
}
