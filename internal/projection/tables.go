package projection

import (
	"fmt"

	"repro/internal/openflow"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Encoding selects how sub-switch identity is expressed in flow tables.
type Encoding int

const (
	// TagEncoded carries (sub-switch, VC) in the packet tag, rewritten
	// at every hop. One entry per routing rule plus injection entries —
	// the merged scheme that yields the paper's ~300 entries per switch
	// for a k=4 fat-tree on two switches (§VII-C).
	TagEncoded Encoding = iota
	// PerInPort matches the physical ingress port to identify the
	// sub-switch, expanding wildcard-ingress rules over every port of
	// the sub-switch — the unmerged baseline scheme of §III-B.
	PerInPort
)

// CompileOptions tunes flow-table synthesis.
type CompileOptions struct {
	Encoding Encoding
	// Cookie groups this topology's entries for later removal
	// (reconfiguration tears down by cookie).
	Cookie uint64
	// TagBase offsets encoded tags so co-hosted topologies never share
	// tag space (hardware isolation). Ignored by PerInPort.
	TagBase int
	// Into, when non-nil, installs into existing switch objects (one
	// per cabling switch) instead of fresh ones — used when several
	// topologies share the testbed.
	Into []*openflow.Switch
}

// TagSpace returns the number of tag values a plan consumes under
// TagEncoded — the next topology's TagBase should advance by this.
// (+1 because tag 0 is reserved for untagged host traffic.)
func TagSpace(p *Plan, r *routing.Routes) int {
	return p.Topo.NumSwitches()*maxInt(r.NumVCs, 1) + 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CompileFlowTables converts a route set into flow entries on the
// physical switches according to the plan's port mapping. The returned
// slice has one switch per cabling switch (indices align).
func CompileFlowTables(p *Plan, r *routing.Routes, opt CompileOptions) ([]*openflow.Switch, error) {
	g := p.Topo
	if r.Topo != g {
		return nil, fmt.Errorf("projection: routes computed for %q, plan for %q", r.Topo.Name, g.Name)
	}
	switches := opt.Into
	if switches == nil {
		switches = make([]*openflow.Switch, len(p.Cabling.Switches))
		for i, spec := range p.Cabling.Switches {
			switches[i] = openflow.NewSwitch(spec.ID, spec.Ports, spec.TableCap)
		}
	} else if len(switches) != len(p.Cabling.Switches) {
		return nil, fmt.Errorf("projection: Into has %d switches, cabling has %d", len(switches), len(p.Cabling.Switches))
	}

	vcs := maxInt(r.NumVCs, 1)
	subIdx := map[int]int{}
	for i, s := range g.Switches() {
		subIdx[s] = i
	}
	// Tag 0 is reserved for untagged host traffic, so encoded values
	// start at TagBase+1.
	enc := func(logicalSwitch, vc int) int {
		return opt.TagBase + 1 + subIdx[logicalSwitch]*vcs + vc
	}
	physPort := func(v, logicalPort int) (PortRef, error) {
		ref, ok := p.Ports[PortKey{v, logicalPort}]
		if !ok {
			return PortRef{}, fmt.Errorf("projection: no physical port for logical %d.%d", v, logicalPort)
		}
		return ref, nil
	}
	// outInfo resolves a rule's egress: physical port, whether it leads
	// to a host, and the logical switch at the far end otherwise.
	outInfo := func(rule routing.Rule) (ref PortRef, toHost bool, peer int, err error) {
		ref, err = physPort(rule.Switch, rule.OutPort)
		if err != nil {
			return
		}
		for _, eid := range g.IncidentEdges(rule.Switch) {
			e := g.Edges[eid]
			if e.PortAt(rule.Switch) != rule.OutPort {
				continue
			}
			o := e.Other(rule.Switch)
			if g.Vertices[o].Kind == topology.Host {
				return ref, true, 0, nil
			}
			return ref, false, o, nil
		}
		return ref, false, 0, fmt.Errorf("projection: rule egress port %d.%d dangling", rule.Switch, rule.OutPort)
	}

	add := func(sw int, e openflow.FlowEntry) error {
		e.Cookie = opt.Cookie
		return switches[sw].Table.Add(e)
	}

	for _, rule := range r.Rules {
		ref, toHost, peer, err := outInfo(rule)
		if err != nil {
			return nil, err
		}
		outVC := func(inVC int) int {
			if rule.NewTag >= 0 {
				return rule.NewTag
			}
			return inVC
		}
		switch opt.Encoding {
		case TagEncoded:
			vcIn := []int{}
			if rule.Tag == openflow.Any {
				for v := 0; v < vcs; v++ {
					vcIn = append(vcIn, v)
				}
			} else {
				vcIn = append(vcIn, rule.Tag)
			}
			for _, vc := range vcIn {
				m := openflow.Match{
					InPort:  0,
					SrcHost: openflow.Any,
					DstHost: rule.Dst,
					Tag:     enc(rule.Switch, vc),
				}
				prio := 10
				if rule.InPort != 0 {
					inRef, err := physPort(rule.Switch, rule.InPort)
					if err != nil {
						return nil, err
					}
					m.InPort = inRef.Port
					prio += 4
				}
				var actions []openflow.Action
				if toHost {
					actions = []openflow.Action{{Type: openflow.SetTag, Tag: 0}, {Type: openflow.Output, Port: ref.Port}}
				} else {
					actions = []openflow.Action{
						{Type: openflow.SetTag, Tag: enc(peer, outVC(vc))},
						{Type: openflow.Output, Port: ref.Port},
					}
				}
				if err := add(ref.Switch, openflow.FlowEntry{Priority: prio, Match: m, Actions: actions}); err != nil {
					return nil, err
				}
			}
		case PerInPort:
			var inPorts []PortRef
			if rule.InPort != 0 {
				inRef, err := physPort(rule.Switch, rule.InPort)
				if err != nil {
					return nil, err
				}
				inPorts = []PortRef{inRef}
			} else {
				inPorts = p.SubSwitchPorts(rule.Switch)
			}
			for _, inRef := range inPorts {
				if inRef == ref {
					continue // never hairpin back out the ingress port
				}
				m := openflow.Match{
					InPort:  inRef.Port,
					SrcHost: openflow.Any,
					DstHost: rule.Dst,
					Tag:     rule.Tag,
				}
				prio := 10
				if rule.InPort != 0 {
					prio += 4
				}
				if rule.Tag != openflow.Any {
					prio += 2
				}
				var actions []openflow.Action
				if rule.NewTag >= 0 {
					actions = append(actions, openflow.Action{Type: openflow.SetTag, Tag: rule.NewTag})
				}
				if toHost {
					actions = append(actions, openflow.Action{Type: openflow.SetTag, Tag: 0})
				}
				actions = append(actions, openflow.Action{Type: openflow.Output, Port: ref.Port})
				if err := add(ref.Switch, openflow.FlowEntry{Priority: prio, Match: m, Actions: actions}); err != nil {
					return nil, err
				}
			}
		}
	}

	if opt.Encoding == TagEncoded {
		// Injection entries: untagged packets from host NIC ports are
		// classified into their sub-switch's tag space and forwarded by
		// the source switch's rule for VC 0.
		for _, h := range g.Hosts() {
			sw := g.HostSwitch(h)
			if sw < 0 {
				continue
			}
			attach := p.HostAttach[h]
			hostEdge := g.EdgeBetween(sw, h)
			logicalIn := g.Edges[hostEdge].PortAt(sw)
			for _, dst := range g.Hosts() {
				if dst == h {
					continue
				}
				rule := r.Lookup(sw, logicalIn, dst, 0)
				if rule == nil {
					return nil, fmt.Errorf("projection: no injection route %d->%d at switch %d", h, dst, sw)
				}
				ref, toHost, peer, err := outInfo(*rule)
				if err != nil {
					return nil, err
				}
				vcOut := 0
				if rule.NewTag >= 0 {
					vcOut = rule.NewTag
				}
				var actions []openflow.Action
				if toHost {
					actions = []openflow.Action{{Type: openflow.Output, Port: ref.Port}}
				} else {
					actions = []openflow.Action{
						{Type: openflow.SetTag, Tag: enc(peer, vcOut)},
						{Type: openflow.Output, Port: ref.Port},
					}
				}
				err = add(attach.Switch, openflow.FlowEntry{
					Priority: 20,
					Match: openflow.Match{
						InPort:  attach.Port,
						SrcHost: openflow.Any,
						DstHost: dst,
						Tag:     0,
					},
					Actions: actions,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return switches, nil
}

// EntryCount sums installed entries across switches — the §VII-C
// resource metric.
func EntryCount(switches []*openflow.Switch) int {
	n := 0
	for _, s := range switches {
		if s != nil {
			n += s.Table.Len()
		}
	}
	return n
}
