package telemetry

// Reconfiguration telemetry: the graceful-degradation record of one
// drain→transition→reconverge protocol run. The core run loop wires a
// RecoveryTracker to the reconfigurer's stage hooks; the tracker stamps
// each stage boundary, counts the packets lost inside the disruption
// window, and measures reconvergence exactly as it does for faults —
// via netsim.Network.OnDeliver, installed only while a restored
// transition awaits its first delivery.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/netsim"
)

// TransitionRecord is the lifecycle of one topology transition.
type TransitionRecord struct {
	// Desc names the transition (e.g. "fat-tree-4->dragonfly @500us").
	Desc string
	// Rejected marks a transition refused before drain (target does not
	// project); no other stage fields are stamped.
	Rejected bool
	// Committed reports whether the switchover succeeded; false with a
	// non-empty Reason after a rollback.
	Committed bool
	// Reason carries the reject or rollback cause ("" when committed).
	Reason string
	// DrainAt is when the drain stage took the links down.
	DrainAt netsim.Time
	// DrainedLinks is how many logical links were drained.
	DrainedLinks int
	// PatchAt is when the degraded routes went live (-1 if the patch
	// was disabled or nothing was drained).
	PatchAt netsim.Time
	// PatchChurn is the degraded swap's rule churn.
	PatchChurn int
	// DecisionAt is when the commit or rollback executed (-1 if the run
	// ended inside the drain window).
	DecisionAt netsim.Time
	// RestoreAt is when the drained links came back up — at the end of
	// the install window (committed) or at the decision (rolled back);
	// -1 if the run ended first.
	RestoreAt netsim.Time
	// RestoreChurn is the restore swap's rule churn.
	RestoreChurn int
	// FirstDeliveryAfter is the first payload delivery at or after
	// RestoreAt (-1 if none landed); drain→delivery is the transition's
	// reconvergence time.
	FirstDeliveryAfter netsim.Time
	// LostBefore/LostAfter snapshot the fabric's fault-drop counter at
	// drain and at restore; the difference is the packets the
	// transition cost.
	LostBefore, LostAfter int64
	// Entries, ReconfigTime, HardwareCost are the committed target's
	// flow-table entry count and costmodel downtime/price columns.
	Entries      int
	ReconfigTime time.Duration
	HardwareCost float64
}

// Reconvergence returns the drain→first-restored-delivery time, or -1
// when the fabric never delivered after the restore.
func (e *TransitionRecord) Reconvergence() netsim.Time {
	if e.RestoreAt < 0 || e.FirstDeliveryAfter < 0 {
		return -1
	}
	return e.FirstDeliveryAfter - e.DrainAt
}

// PacketsLost counts the packets dropped inside this transition's
// disruption window (drain → restore), or -1 if the window never
// closed.
func (e *TransitionRecord) PacketsLost() int64 {
	if e.Rejected {
		return 0
	}
	if e.RestoreAt < 0 {
		return -1
	}
	return e.LostAfter - e.LostBefore
}

// TotalChurn is the transition's full rule churn: the degraded patch
// plus the restore swap.
func (e *TransitionRecord) TotalChurn() int { return e.PatchChurn + e.RestoreChurn }

// ReconfigReport is the reconfiguration-run summary.
type ReconfigReport struct {
	Transitions []TransitionRecord
	// PacketsLost counts all packets dropped by drained (or otherwise
	// dead) elements over the whole run.
	PacketsLost int64
	// Incomplete counts workload flows that never finished.
	Incomplete int
}

// Committed counts transitions whose switchover succeeded.
func (r *ReconfigReport) Committed() int {
	n := 0
	for i := range r.Transitions {
		if r.Transitions[i].Committed {
			n++
		}
	}
	return n
}

// TotalChurn sums rule churn over all transitions.
func (r *ReconfigReport) TotalChurn() int {
	n := 0
	for i := range r.Transitions {
		n += r.Transitions[i].TotalChurn()
	}
	return n
}

// MeanReconvergence averages drain→first-delivery over the transitions
// that reconverged, also reporting how many did.
func (r *ReconfigReport) MeanReconvergence() (mean netsim.Time, n int) {
	var sum netsim.Time
	for i := range r.Transitions {
		if d := r.Transitions[i].Reconvergence(); d >= 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return -1, 0
	}
	return sum / netsim.Time(n), n
}

// Format prints the per-transition protocol table.
func (r *ReconfigReport) Format(w io.Writer) {
	fmt.Fprintf(w, "%-32s %-10s %6s %5s %6s %10s %8s %10s %10s\n",
		"transition", "outcome", "links", "lost", "churn", "reconv", "entries", "reconfig", "hw-cost")
	for i := range r.Transitions {
		e := &r.Transitions[i]
		outcome := "committed"
		if e.Rejected {
			outcome = "rejected"
		} else if !e.Committed {
			outcome = "rolled-back"
		}
		reconv, entries, reconf, hw := "-", "-", "-", "-"
		if d := e.Reconvergence(); d >= 0 {
			reconv = fmt.Sprintf("%.0fus", float64(d)/float64(netsim.Microsecond))
		}
		if e.Committed {
			entries = fmt.Sprintf("%d", e.Entries)
			reconf = fmt.Sprintf("%.1fms", float64(e.ReconfigTime)/float64(time.Millisecond))
			hw = fmt.Sprintf("$%.0f", e.HardwareCost)
		}
		lost := "-"
		if n := e.PacketsLost(); n >= 0 {
			lost = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(w, "%-32s %-10s %6d %5s %6d %10s %8s %10s %10s\n",
			e.Desc, outcome, e.DrainedLinks, lost, e.TotalChurn(), reconv, entries, reconf, hw)
	}
	fmt.Fprintf(w, "packets lost to reconfiguration: %d, flows incomplete: %d\n", r.PacketsLost, r.Incomplete)
}

// TransitionDrain records a drain stage taking effect now and returns
// the record index the later stage calls key on.
func (t *RecoveryTracker) TransitionDrain(now netsim.Time, desc string, drainedLinks int) int {
	t.trans = append(t.trans, TransitionRecord{
		Desc: desc, DrainAt: now, DrainedLinks: drainedLinks,
		PatchAt: -1, DecisionAt: -1, RestoreAt: -1, FirstDeliveryAfter: -1,
		LostBefore: t.net.FaultDrops,
	})
	return len(t.trans) - 1
}

// TransitionReject records a transition refused before drain.
func (t *RecoveryTracker) TransitionReject(now netsim.Time, desc, reason string) {
	t.trans = append(t.trans, TransitionRecord{
		Desc: desc, Rejected: true, Reason: reason,
		DrainAt: now, PatchAt: -1, DecisionAt: -1, RestoreAt: -1, FirstDeliveryAfter: -1,
	})
}

// TransitionPatch stamps the degraded routes going live.
func (t *RecoveryTracker) TransitionPatch(i int, now netsim.Time, churn int) {
	t.trans[i].PatchAt = now
	t.trans[i].PatchChurn = churn
}

// TransitionCommit stamps a successful switchover and its cost columns.
func (t *RecoveryTracker) TransitionCommit(i int, now netsim.Time, entries int, reconfig time.Duration, hwCost float64) {
	e := &t.trans[i]
	e.DecisionAt = now
	e.Committed = true
	e.Entries, e.ReconfigTime, e.HardwareCost = entries, reconfig, hwCost
}

// TransitionRollback stamps an aborted switchover.
func (t *RecoveryTracker) TransitionRollback(i int, now netsim.Time, reason string) {
	e := &t.trans[i]
	e.DecisionAt = now
	e.Committed = false
	e.Reason = reason
}

// TransitionRestore stamps the drained links coming back up and arms
// first-delivery capture for the reconvergence measurement.
func (t *RecoveryTracker) TransitionRestore(i int, now netsim.Time, churn int) {
	e := &t.trans[i]
	e.RestoreAt = now
	e.RestoreChurn = churn
	e.LostAfter = t.net.FaultDrops
	t.transPending++
	if t.net.OnDeliver == nil {
		t.net.OnDeliver = t.onDeliver
	}
}

// ReconfigReport finalises and returns the reconfiguration summary.
func (t *RecoveryTracker) ReconfigReport(incomplete int) *ReconfigReport {
	return &ReconfigReport{
		Transitions: t.trans,
		PacketsLost: t.net.FaultDrops,
		Incomplete:  incomplete,
	}
}
