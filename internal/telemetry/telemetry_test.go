package telemetry

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

func lineNet(t *testing.T) (*netsim.Network, *topology.Graph) {
	t.Helper()
	g := topology.Line(4, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return net, g
}

func TestCollectorSamplesPeriodically(t *testing.T) {
	net, g := lineNet(t)
	col := NewCollector(g, netsim.Millisecond, 0.5)
	hosts := g.Hosts()
	net.Host(hosts[0]).Send(hosts[3], 1, 8<<20) // ~6.7 ms at 10G
	col.Arm(net, 10*netsim.Millisecond)
	net.Sim.Run(11 * netsim.Millisecond)
	if col.Epochs() < 8 {
		t.Fatalf("epochs = %d, want ~10", col.Epochs())
	}
	series := col.Series()
	if len(series) == 0 {
		t.Fatal("no link series")
	}
	// The s0-s1 link must be hot; an unused link (s2-s3 is used too on
	// the path... host3's own link) has traffic; an off-path host link
	// (host at s1) must be idle.
	hot := col.Hottest(1)[0]
	if hot.Peak == 0 || hot.EWMA == 0 {
		t.Errorf("hottest link has no load: %+v", hot)
	}
	idleFound := false
	for _, s := range series {
		if s.Peak == 0 {
			idleFound = true
		}
	}
	if !idleFound {
		t.Error("no idle link found; expected off-path host links idle")
	}
}

func TestCollectorRates(t *testing.T) {
	net, g := lineNet(t)
	col := NewCollector(g, netsim.Millisecond, 1.0) // no smoothing
	hosts := g.Hosts()
	net.Host(hosts[0]).Send(hosts[3], 1, 4<<20)
	col.Arm(net, 3*netsim.Millisecond)
	net.Sim.Run(3500 * netsim.Microsecond)
	rates := col.Rates()
	peak := 0.0
	for _, r := range rates {
		if r > peak {
			peak = r
		}
	}
	// A saturated 10 Gbps link moves 1.25e9 bytes/s.
	if peak < 0.9e9 || peak > 1.4e9 {
		t.Errorf("peak rate = %.3g B/s, want ~1.25e9", peak)
	}
}

func TestCollectorFeedsUGAL(t *testing.T) {
	g := topology.Dragonfly(4, 9, 2, 1)
	routes, err := routing.DragonflyMinimal{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	for i := 0; i < 4; i++ {
		net.Host(hosts[i]).Send(hosts[4+i], 1, 2<<20) // group 0 -> group 1
	}
	col := NewCollector(g, netsim.Millisecond, 0.5)
	col.Arm(net, 5*netsim.Millisecond)
	net.Sim.Run(0)
	ugal := routing.DragonflyUGAL{Loads: col.Rates(), Bias: 1}
	r, err := ugal.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.VerifyDeadlockFree(r); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	net, g := lineNet(t)
	col := NewCollector(g, netsim.Millisecond, 0.5)
	hosts := g.Hosts()
	net.Host(hosts[0]).Send(hosts[3], 1, 2<<20)
	col.Arm(net, 3*netsim.Millisecond)
	net.Sim.Run(0)
	var buf bytes.Buffer
	if err := col.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	links, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != len(col.Series()) {
		t.Errorf("round trip changed link count: %d vs %d", len(links), len(col.Series()))
	}
	for i, s := range col.Series() {
		if links[i].EdgeID != s.EdgeID || links[i].Peak != s.Peak || len(links[i].Bytes) != len(s.Bytes) {
			t.Errorf("link %d changed in round trip", i)
		}
	}
}

func TestCollectorDefaults(t *testing.T) {
	g := topology.Line(2, 1)
	c := NewCollector(g, 0, 0)
	if c.Period != netsim.Millisecond || c.Alpha != 0.3 {
		t.Errorf("defaults = %v/%v", c.Period, c.Alpha)
	}
	if _, err := ReadJSON(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
