package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// fabricForRecovery builds a minimal network the tracker can hang off.
func fabricForRecovery(t *testing.T) *netsim.Network {
	t.Helper()
	g := topology.Line(2, 1)
	net, err := netsim.NewNetwork(g, dropAll{}, netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

type dropAll struct{}

func (dropAll) Forward(sw, inPort int, pkt *netsim.Packet) (int, int, netsim.Time, bool) {
	return 0, 0, 0, false
}

func TestRecoveryTrackerLifecycle(t *testing.T) {
	net := fabricForRecovery(t)
	tr := NewRecoveryTracker(net)

	tr.Fault(100, "link-down e1 @0us")
	tr.Fault(200, "link-down e2 @0us")
	if net.OnDeliver != nil {
		t.Fatal("hook installed before any repair")
	}

	// First repair resolves the earliest fault; a delivery before the
	// second repair must not stamp the second fault.
	tr.Repaired(600, 10)
	if net.OnDeliver == nil {
		t.Fatal("repair did not install the delivery hook")
	}
	net.OnDeliver(650)
	if net.OnDeliver != nil {
		t.Fatal("hook not detached once nothing is pending")
	}
	tr.Repaired(700, 4)
	net.OnDeliver(900)

	rep := tr.Report(3)
	if len(rep.Events) != 2 {
		t.Fatalf("%d events", len(rep.Events))
	}
	e0, e1 := &rep.Events[0], &rep.Events[1]
	if e0.RepairAt != 600 || e0.FirstDeliveryAfter != 650 || e0.RulesChanged != 10 {
		t.Fatalf("event 0 = %+v", e0)
	}
	if e0.Reconvergence() != 550 {
		t.Fatalf("reconvergence 0 = %d", e0.Reconvergence())
	}
	if e1.RepairAt != 700 || e1.FirstDeliveryAfter != 900 || e1.RulesChanged != 4 {
		t.Fatalf("event 1 = %+v", e1)
	}
	if e1.Reconvergence() != 700 {
		t.Fatalf("reconvergence 1 = %d", e1.Reconvergence())
	}
	if rep.TotalChurn() != 14 || rep.Incomplete != 3 {
		t.Fatalf("churn=%d incomplete=%d", rep.TotalChurn(), rep.Incomplete)
	}
	mean, n := rep.MeanReconvergence()
	if n != 2 || mean != (550+700)/2 {
		t.Fatalf("mean=%d n=%d", mean, n)
	}

	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	for _, want := range []string{"link-down e1", "link-down e2", "flows incomplete: 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format output missing %q:\n%s", want, out)
		}
	}
}

func TestRecoveryUnrepairedFault(t *testing.T) {
	net := fabricForRecovery(t)
	tr := NewRecoveryTracker(net)
	tr.Fault(100, "switch-down v1 @0us")
	rep := tr.Report(0)
	e := &rep.Events[0]
	if e.RepairAt != -1 || e.Reconvergence() != -1 {
		t.Fatalf("unrepaired event = %+v", e)
	}
	if mean, n := rep.MeanReconvergence(); n != 0 || mean != -1 {
		t.Fatalf("mean=%d n=%d", mean, n)
	}
}
