package telemetry

// Recovery metrics for fault runs: per fault event, when the
// controller's repair went live, when the first payload delivery after
// that repair landed (the reconvergence signal), and how many rules
// the repair churned; plus the run-wide packets-lost count.
//
// A RecoveryTracker is wired by the core run loop: it observes fault
// events (timestamps), repairs (via the rerouter's OnRepair hook), and
// deliveries (via netsim.Network.OnDeliver, installed only while a
// repair awaits its first delivery, so the hook costs nothing once the
// fabric has reconverged). Everything runs inside the engine thread of
// one simulation; a tracker is per-run and needs no locking.

import (
	"fmt"
	"io"

	"repro/internal/netsim"
)

// RecoveryEvent is the lifecycle of one fault.
type RecoveryEvent struct {
	// Desc names the fault (e.g. "link-down e12 @2000us").
	Desc string
	// FaultAt is when the fault took effect.
	FaultAt netsim.Time
	// RepairAt is when the repaired routes went live (-1 if the run
	// ended first or repair is disabled).
	RepairAt netsim.Time
	// FirstDeliveryAfter is the first payload delivery at or after
	// RepairAt (-1 if none landed) — fault→delivery is the
	// reconvergence time.
	FirstDeliveryAfter netsim.Time
	// RulesChanged is the repair's route churn.
	RulesChanged int
}

// Reconvergence returns the fault→first-repaired-delivery time, or -1
// when the fabric never delivered after the repair.
func (e *RecoveryEvent) Reconvergence() netsim.Time {
	if e.RepairAt < 0 || e.FirstDeliveryAfter < 0 {
		return -1
	}
	return e.FirstDeliveryAfter - e.FaultAt
}

// Recovery is the fault-run summary.
type Recovery struct {
	Events []RecoveryEvent
	// PacketsLost counts packets dropped by dead elements
	// (netsim.Network.FaultDrops).
	PacketsLost int64
	// Incomplete counts workload flows that never finished.
	Incomplete int
}

// TotalChurn sums route churn over all repairs.
func (r *Recovery) TotalChurn() int {
	n := 0
	for _, e := range r.Events {
		n += e.RulesChanged
	}
	return n
}

// MeanReconvergence averages the fault→first-delivery times over the
// faults that reconverged, also reporting how many did.
func (r *Recovery) MeanReconvergence() (mean netsim.Time, n int) {
	var sum netsim.Time
	for i := range r.Events {
		if d := r.Events[i].Reconvergence(); d >= 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return -1, 0
	}
	return sum / netsim.Time(n), n
}

// Format prints the per-fault recovery table.
func (r *Recovery) Format(w io.Writer) {
	fmt.Fprintf(w, "%-24s %10s %10s %10s %6s\n", "fault", "at", "repair", "reconv", "churn")
	for i := range r.Events {
		e := &r.Events[i]
		repair, reconv := "-", "-"
		if e.RepairAt >= 0 {
			repair = fmt.Sprintf("%.0fus", float64(e.RepairAt)/float64(netsim.Microsecond))
		}
		if d := e.Reconvergence(); d >= 0 {
			reconv = fmt.Sprintf("%.0fus", float64(d)/float64(netsim.Microsecond))
		}
		fmt.Fprintf(w, "%-24s %9.0fus %10s %10s %6d\n",
			e.Desc, float64(e.FaultAt)/float64(netsim.Microsecond), repair, reconv, e.RulesChanged)
	}
	fmt.Fprintf(w, "packets lost to faults: %d, flows incomplete: %d\n", r.PacketsLost, r.Incomplete)
}

// RecoveryTracker accumulates recovery metrics during one fault or
// reconfiguration run (the Transition* methods in reconfig.go record
// the latter; both share the first-delivery capture below).
type RecoveryTracker struct {
	rec          Recovery
	trans        []TransitionRecord
	net          *netsim.Network
	pending      int // repairs awaiting their first delivery
	transPending int // restored transitions awaiting their first delivery
}

// NewRecoveryTracker builds a tracker for one network.
func NewRecoveryTracker(net *netsim.Network) *RecoveryTracker {
	return &RecoveryTracker{net: net}
}

// Fault records a fault event taking effect now.
func (t *RecoveryTracker) Fault(now netsim.Time, desc string) {
	t.rec.Events = append(t.rec.Events, RecoveryEvent{
		Desc: desc, FaultAt: now, RepairAt: -1, FirstDeliveryAfter: -1,
	})
}

// Repaired marks the earliest not-yet-repaired fault as repaired now
// (repairs execute in fault order) and arms first-delivery capture.
func (t *RecoveryTracker) Repaired(now netsim.Time, rulesChanged int) {
	for i := range t.rec.Events {
		e := &t.rec.Events[i]
		if e.RepairAt < 0 {
			e.RepairAt = now
			e.RulesChanged = rulesChanged
			t.pending++
			break
		}
	}
	if t.net.OnDeliver == nil {
		t.net.OnDeliver = t.onDeliver
	}
}

// onDeliver stamps every repaired-but-unconfirmed fault and every
// restored-but-unconfirmed transition whose repair/restore time has
// passed, then detaches once nothing is pending.
func (t *RecoveryTracker) onDeliver(now netsim.Time) {
	for i := range t.rec.Events {
		e := &t.rec.Events[i]
		if e.RepairAt >= 0 && e.FirstDeliveryAfter < 0 && now >= e.RepairAt {
			e.FirstDeliveryAfter = now
			t.pending--
		}
	}
	for i := range t.trans {
		e := &t.trans[i]
		if e.RestoreAt >= 0 && e.FirstDeliveryAfter < 0 && now >= e.RestoreAt {
			e.FirstDeliveryAfter = now
			t.transPending--
		}
	}
	if t.pending == 0 && t.transPending == 0 {
		t.net.OnDeliver = nil
	}
}

// Report finalises and returns the recovery summary (lost-packet count
// read from the network, incomplete flow count supplied by the run
// loop).
func (t *RecoveryTracker) Report(incomplete int) *Recovery {
	t.rec.PacketsLost = t.net.FaultDrops
	t.rec.Incomplete = incomplete
	return &t.rec
}
