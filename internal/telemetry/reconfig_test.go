package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestTransitionRecordSemantics pins the sentinel arithmetic: rejected
// transitions lose nothing, unclosed windows report -1, and closed ones
// difference the drop snapshots.
func TestTransitionRecordSemantics(t *testing.T) {
	rejected := TransitionRecord{Rejected: true, RestoreAt: -1, FirstDeliveryAfter: -1}
	if rejected.PacketsLost() != 0 || rejected.Reconvergence() != -1 {
		t.Fatalf("rejected: lost=%d reconv=%d", rejected.PacketsLost(), rejected.Reconvergence())
	}
	open := TransitionRecord{DrainAt: 100, RestoreAt: -1, FirstDeliveryAfter: -1, LostBefore: 3}
	if open.PacketsLost() != -1 || open.Reconvergence() != -1 {
		t.Fatalf("open window: lost=%d reconv=%d", open.PacketsLost(), open.Reconvergence())
	}
	closed := TransitionRecord{
		DrainAt: 100, RestoreAt: 300, FirstDeliveryAfter: 450,
		LostBefore: 3, LostAfter: 10, PatchChurn: 4, RestoreChurn: 6,
	}
	if closed.PacketsLost() != 7 || closed.Reconvergence() != 350 || closed.TotalChurn() != 10 {
		t.Fatalf("closed window: lost=%d reconv=%d churn=%d",
			closed.PacketsLost(), closed.Reconvergence(), closed.TotalChurn())
	}
}

// TestReconfigReportAggregates checks the report-level rollups and the
// formatted table's outcome column.
func TestReconfigReportAggregates(t *testing.T) {
	r := &ReconfigReport{
		Transitions: []TransitionRecord{
			{Desc: "a->b @10us", Committed: true, DrainAt: 0, RestoreAt: 100, FirstDeliveryAfter: 120,
				PatchChurn: 2, RestoreChurn: 3, Entries: 40, ReconfigTime: time.Millisecond, HardwareCost: 18000},
			{Desc: "a->c @20us", Reason: "injected", DrainAt: 200, RestoreAt: 250, FirstDeliveryAfter: 290, RestoreChurn: 5},
			{Desc: "a->d @30us", Rejected: true, Reason: "no fit", RestoreAt: -1, FirstDeliveryAfter: -1},
		},
		PacketsLost: 9, Incomplete: 2,
	}
	if r.Committed() != 1 || r.TotalChurn() != 10 {
		t.Fatalf("committed=%d churn=%d", r.Committed(), r.TotalChurn())
	}
	if mean, n := r.MeanReconvergence(); n != 2 || mean != (120+90)/2 {
		t.Fatalf("mean reconvergence = %d over %d", mean, n)
	}
	var b strings.Builder
	r.Format(&b)
	out := b.String()
	for _, want := range []string{"committed", "rolled-back", "rejected",
		"packets lost to reconfiguration: 9, flows incomplete: 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// TestTrackerTransitionLifecycle drives the tracker's stage calls
// against a live fabric and checks the delivery hook detaches once the
// reconvergence capture lands.
func TestTrackerTransitionLifecycle(t *testing.T) {
	net, g := lineNet(t)
	tr := NewRecoveryTracker(net)
	i := tr.TransitionDrain(0, "line->line @0us", 2)
	tr.TransitionPatch(i, 10, 4)
	tr.TransitionCommit(i, 20, 40, time.Millisecond, 18000)
	tr.TransitionRestore(i, 30, 4)
	if net.OnDeliver == nil {
		t.Fatal("restore did not arm delivery capture")
	}
	hosts := g.Hosts()
	net.Host(hosts[0]).Send(hosts[len(hosts)-1], 1, 1<<10)
	net.Sim.Run(0)
	rep := tr.ReconfigReport(0)
	e := &rep.Transitions[0]
	if !e.Committed || e.FirstDeliveryAfter < e.RestoreAt || e.Reconvergence() < 0 {
		t.Fatalf("lifecycle record = %+v", e)
	}
	if net.OnDeliver != nil {
		t.Fatal("delivery hook still attached after capture")
	}
}
