// Package telemetry is the data plane of the SDT controller's Network
// Monitor module (§V-3): "the SDT controller periodically collects
// statistics data in each port of OpenFlow switches through provided
// API. The collected data can be further used to calculate the load of
// each logical switch in the case of adaptive routing."
//
// A Collector samples per-logical-link byte counters on a fixed period
// inside a running simulation, maintaining instantaneous rates, EWMA
// smoothed rates, and peak tracking per link — the inputs adaptive
// (UGAL) routing consumes — and exports the series as JSON for offline
// analysis.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// LinkSeries is the sampled history of one logical link.
type LinkSeries struct {
	EdgeID int `json:"edge"`
	// Labels of the link endpoints.
	A string `json:"a_label,omitempty"`
	B string `json:"b_label,omitempty"`
	// Samples of bytes transferred in each period (both directions).
	Bytes []int64 `json:"bytes"`
	// Peak period bytes seen.
	Peak int64 `json:"peak"`
	// EWMA of the per-period byte counts.
	EWMA float64 `json:"ewma"`
}

// Collector samples a simulation's link counters periodically. One
// collector may observe several runs — even concurrent ones (a
// parallel Sweep shares one via WithTelemetry): all methods are
// mutex-guarded, and the cumulative-counter baseline is kept per
// network, so interleaved samples from different simulations diff
// against the right run's counters. A shared collector's series are
// then a sweep-wide aggregate; sample order across concurrent runs is
// scheduling-dependent, so read order-sensitive fields (EWMA) from
// serial runs.
type Collector struct {
	Period netsim.Time
	// Alpha is the EWMA smoothing factor in (0,1]; 1 = no smoothing.
	Alpha float64

	mu     sync.Mutex
	topo   *topology.Graph
	series map[int]*LinkSeries
	epochs int
	last   map[*netsim.Network]map[int]float64
}

// NewCollector builds a collector for a topology with the given period
// (0 means 1 ms) and EWMA alpha (0 means 0.3).
func NewCollector(g *topology.Graph, period netsim.Time, alpha float64) *Collector {
	if period <= 0 {
		period = netsim.Millisecond
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &Collector{
		Period: period, Alpha: alpha,
		topo: g, series: map[int]*LinkSeries{}, last: map[*netsim.Network]map[int]float64{},
	}
}

// Arm schedules periodic collection on the network until the given
// horizon (0 = a single sample at one period). Call before Run.
func (c *Collector) Arm(net *netsim.Network, until netsim.Time) {
	var tick func(at netsim.Time)
	tick = func(at netsim.Time) {
		net.Sim.At(at, func() {
			c.Collect(net)
			if at+c.Period <= until {
				tick(at + c.Period)
			}
		})
	}
	tick(c.Period)
}

// Collect takes one sample immediately (cumulative counters diffed
// against this network's previous epoch).
func (c *Collector) Collect(net *netsim.Network) {
	loads := net.LinkLoads()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs++
	last := c.last[net]
	if last == nil {
		last = map[int]float64{}
		c.last[net] = last
	}
	for eid, cum := range loads {
		s := c.series[eid]
		if s == nil {
			s = &LinkSeries{EdgeID: eid}
			if eid >= 0 && eid < len(c.topo.Edges) {
				e := c.topo.Edges[eid]
				s.A = c.topo.Vertices[e.A].Label
				s.B = c.topo.Vertices[e.B].Label
			}
			c.series[eid] = s
		}
		delta := int64(cum - last[eid])
		last[eid] = cum
		s.Bytes = append(s.Bytes, delta)
		if delta > s.Peak {
			s.Peak = delta
		}
		s.EWMA = c.Alpha*float64(delta) + (1-c.Alpha)*s.EWMA
	}
}

// Detach drops the per-network counter baseline once a run is over,
// releasing the reference to the finished fabric (WithTelemetry calls
// this from the run's Finish hook).
func (c *Collector) Detach(net *netsim.Network) {
	c.mu.Lock()
	delete(c.last, net)
	c.mu.Unlock()
}

// Epochs reports how many samples were taken.
func (c *Collector) Epochs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs
}

// Rates returns the latest smoothed per-link load in bytes/second —
// the map adaptive routing strategies consume.
func (c *Collector) Rates() map[int]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]float64, len(c.series))
	per := c.Period.Seconds()
	for eid, s := range c.series {
		out[eid] = s.EWMA / per
	}
	return out
}

// Series returns the recorded link series sorted by edge ID. The
// returned values are the live series records; read them after the
// runs feeding the collector have finished.
func (c *Collector) Series() []*LinkSeries {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*LinkSeries, 0, len(c.series))
	for _, s := range c.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EdgeID < out[j].EdgeID })
	return out
}

// Hottest returns the n links with the highest EWMA load, descending.
func (c *Collector) Hottest(n int) []*LinkSeries {
	all := c.Series()
	sort.SliceStable(all, func(i, j int) bool { return all[i].EWMA > all[j].EWMA })
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// export is the JSON document shape.
type export struct {
	Topology string        `json:"topology"`
	PeriodNs int64         `json:"period_ns"`
	Epochs   int           `json:"epochs"`
	Links    []*LinkSeries `json:"links"`
}

// WriteJSON dumps the collected series.
func (c *Collector) WriteJSON(w io.Writer) error {
	doc := export{
		Topology: c.topo.Name,
		PeriodNs: int64(c.Period / netsim.Nanosecond),
		Epochs:   c.Epochs(),
		Links:    c.Series(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a dump written by WriteJSON.
func ReadJSON(r io.Reader) ([]*LinkSeries, error) {
	var doc export
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return doc.Links, nil
}
