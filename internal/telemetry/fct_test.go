package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netsim"
)

// mkflow builds a completed flow of a given size and FCT.
func mkflow(bytesN int, fct netsim.Time) netsim.Flow {
	return netsim.Flow{Src: 0, Dst: 1, Bytes: bytesN, Start: 0, End: fct, Completed: true}
}

func TestFCTBucketAccounting(t *testing.T) {
	// base 1us, 1KB at 10G serialises in 0.8192us: ideal ~1.8192us.
	base := netsim.Microsecond
	flows := []netsim.Flow{
		mkflow(1024, 2*netsim.Microsecond),             // short bucket
		mkflow(1024, 20*netsim.Microsecond),            // short bucket
		mkflow(50*1024, 100*netsim.Microsecond),        // medium bucket
		mkflow(2<<20, 3*netsim.Millisecond),            // jumbo bucket
		{Src: 0, Dst: 1, Bytes: 512, Completed: false}, // incomplete: excluded
	}
	rep := MeasureFCT(flows, 10e9, base, nil)
	if rep.Total != 5 || rep.Completed != 4 {
		t.Fatalf("total/completed = %d/%d, want 5/4", rep.Total, rep.Completed)
	}
	if len(rep.Buckets) != 4 {
		t.Fatalf("%d buckets, want 4", len(rep.Buckets))
	}
	wantCounts := []int{2, 1, 0, 1}
	for i, want := range wantCounts {
		if rep.Buckets[i].Count != want {
			t.Fatalf("bucket %d count %d, want %d", i, rep.Buckets[i].Count, want)
		}
	}
	// Short bucket: FCTs 2us and 20us -> p50 = 2us, p99 = 20us.
	b := rep.Buckets[0]
	if b.P50FCT != 2*netsim.Microsecond || b.P99FCT != 20*netsim.Microsecond {
		t.Fatalf("short bucket FCT p50/p99 = %v/%v", b.P50FCT, b.P99FCT)
	}
	// Slowdown of the faster short flow: 2us / (1us + 0.8192us).
	wantSlow := float64(2*netsim.Microsecond) / float64(base+netsim.Time(1024*8*100)) // 100 ps/bit at 10G
	if diff := b.P50 - wantSlow; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("short bucket p50 slowdown %.6f, want %.6f", b.P50, wantSlow)
	}
	// A single-sample bucket reports that sample at every percentile.
	j := rep.Buckets[3]
	if j.P50 != j.P99 || j.P50FCT != 3*netsim.Millisecond {
		t.Fatalf("jumbo bucket percentiles %v %v %v", j.P50, j.P99, j.P50FCT)
	}
}

func TestFCTBucketBoundaries(t *testing.T) {
	// A flow exactly at a boundary lands in the upper bucket (Lo <= b < Hi).
	flows := []netsim.Flow{mkflow(10*1024, netsim.Microsecond)}
	rep := MeasureFCT(flows, 10e9, 0, []int{10 * 1024})
	if rep.Buckets[0].Count != 0 || rep.Buckets[1].Count != 1 {
		t.Fatalf("boundary flow in wrong bucket: %+v", rep.Buckets)
	}
}

func TestFCTFormat(t *testing.T) {
	flows := []netsim.Flow{mkflow(1024, 2*netsim.Microsecond), {Bytes: 5, Src: 0, Dst: 1}}
	var buf bytes.Buffer
	MeasureFCT(flows, 10e9, 0, nil).Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "<10K") || !strings.Contains(out, "1/2 flows completed") {
		t.Fatalf("unexpected format output:\n%s", out)
	}
}

// TestFCTZeroCompleted: a schedule with no completions (and the empty
// schedule) must produce a well-formed all-zero report — the flow-
// fidelity differential harness divides by bucket percentiles, so
// empty buckets have to stay identifiably empty (Count 0, zero
// percentiles), never NaN or stale values.
func TestFCTZeroCompleted(t *testing.T) {
	flows := []netsim.Flow{
		{Src: 0, Dst: 1, Bytes: 1024},
		{Src: 1, Dst: 2, Bytes: 50 * 1024},
		{Src: 2, Dst: 3, Bytes: 2 << 20},
	}
	for _, tc := range []struct {
		name  string
		flows []netsim.Flow
		total int
	}{
		{"none-completed", flows, 3},
		{"empty-schedule", nil, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := MeasureFCT(tc.flows, 10e9, 0, nil)
			if rep.Total != tc.total || rep.Completed != 0 {
				t.Fatalf("total/completed = %d/%d, want %d/0", rep.Total, rep.Completed, tc.total)
			}
			if len(rep.Buckets) != 4 {
				t.Fatalf("%d buckets, want 4", len(rep.Buckets))
			}
			for i, b := range rep.Buckets {
				if b.Count != 0 {
					t.Fatalf("bucket %d counted %d flows with none completed", i, b.Count)
				}
				if b.P50 != 0 || b.P95 != 0 || b.P99 != 0 || b.P50FCT != 0 || b.P99FCT != 0 {
					t.Fatalf("empty bucket %d has non-zero percentiles: %+v", i, b)
				}
			}
			var buf bytes.Buffer
			rep.Format(&buf)
			out := buf.String()
			if tc.total > 0 && !strings.Contains(out, "0/3 flows completed") {
				t.Fatalf("format did not report the incomplete count:\n%s", out)
			}
			if strings.Contains(out, "NaN") {
				t.Fatalf("format leaked NaN:\n%s", out)
			}
		})
	}
}

// TestFCTSingleFlowBuckets: one completed flow per bucket — every
// percentile of a one-sample bucket is that sample, for slowdown and
// raw FCT alike.
func TestFCTSingleFlowBuckets(t *testing.T) {
	base := netsim.Microsecond
	flows := []netsim.Flow{
		mkflow(1024, 2*netsim.Microsecond),
		mkflow(50*1024, 100*netsim.Microsecond),
		mkflow(512*1024, netsim.Millisecond),
		mkflow(2<<20, 3*netsim.Millisecond),
	}
	rep := MeasureFCT(flows, 10e9, base, nil)
	if rep.Completed != 4 {
		t.Fatalf("completed %d, want 4", rep.Completed)
	}
	for i, b := range rep.Buckets {
		if b.Count != 1 {
			t.Fatalf("bucket %d count %d, want 1", i, b.Count)
		}
		want := flows[i].FCT()
		if b.P50FCT != want || b.P99FCT != want {
			t.Fatalf("bucket %d FCT p50/p99 = %v/%v, want both %v", i, b.P50FCT, b.P99FCT, want)
		}
		if b.P50 != b.P95 || b.P95 != b.P99 {
			t.Fatalf("bucket %d slowdown percentiles differ on one sample: %+v", i, b)
		}
		ideal := base + netsim.Time(float64(flows[i].Bytes*8)/10e9*float64(netsim.Second))
		wantSlow := float64(want) / float64(ideal)
		if diff := b.P50 - wantSlow; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bucket %d slowdown %.6f, want %.6f", i, b.P50, wantSlow)
		}
	}
}

func TestNearestRank(t *testing.T) {
	// n=100: p50 -> index 49, p99 -> index 98; n=1: everything index 0.
	cases := []struct {
		n    int
		p    float64
		want int
	}{
		{100, 0.50, 49}, {100, 0.95, 94}, {100, 0.99, 98},
		{1, 0.5, 0}, {1, 0.99, 0}, {2, 0.5, 0}, {2, 0.99, 1}, {3, 0.5, 1},
	}
	for _, c := range cases {
		if got := rank(c.n, c.p); got != c.want {
			t.Fatalf("rank(%d, %g) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}
