package telemetry

// Flow completion time (FCT) analysis for open-loop traffic: the
// closed measurement loop over loadgen schedules. Completed flows are
// bucketed by size and each bucket reports FCT and *slowdown*
// percentiles — FCT normalised by the flow's ideal completion time on
// an unloaded path — the standard datacenter-workload metric, robust
// to mixing short and long flows in one distribution.

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/netsim"
)

// DefaultFCTBuckets are the size-bucket boundaries (bytes): short
// (<10 kB), medium (<100 kB), long (<1 MB), jumbo (>= 1 MB).
func DefaultFCTBuckets() []int { return []int{10 * 1024, 100 * 1024, 1 << 20} }

// FCTBucket aggregates the completed flows with Lo <= Bytes < Hi
// (Hi = 0 means unbounded).
type FCTBucket struct {
	Lo, Hi int
	Count  int
	// Slowdown percentiles: FCT / ideal FCT.
	P50, P95, P99 float64
	// Raw FCT percentiles.
	P50FCT, P99FCT netsim.Time
}

// FCTReport is the bucketed FCT summary of one run.
type FCTReport struct {
	Buckets []FCTBucket
	// Total and Completed flow counts (incomplete flows are excluded
	// from every bucket).
	Total, Completed int
}

// MeasureFCT buckets a finished flow schedule. linkBps and base give
// the ideal-FCT model: ideal = base + bytes×8/linkBps, i.e. one
// unloaded store-and-forward traversal with fixed per-path latency
// `base` (use the fabric's end-to-end zero-load latency; 0 picks a
// conservative 2 µs). bounds are ascending size-bucket boundaries
// (nil = DefaultFCTBuckets).
func MeasureFCT(flows []netsim.Flow, linkBps float64, base netsim.Time, bounds []int) *FCTReport {
	if linkBps <= 0 {
		linkBps = 10e9
	}
	if base <= 0 {
		base = 2 * netsim.Microsecond
	}
	if bounds == nil {
		bounds = DefaultFCTBuckets()
	}
	rep := &FCTReport{Total: len(flows)}
	type sample struct {
		slow float64
		fct  netsim.Time
	}
	buckets := make([][]sample, len(bounds)+1)
	for i := range flows {
		f := &flows[i]
		if !f.Completed {
			continue
		}
		rep.Completed++
		fct := f.FCT()
		ideal := base + netsim.Time(float64(f.Bytes*8)/linkBps*float64(netsim.Second))
		b := sort.SearchInts(bounds, f.Bytes+1)
		buckets[b] = append(buckets[b], sample{slow: float64(fct) / float64(ideal), fct: fct})
	}
	for b, ss := range buckets {
		lo, hi := 0, 0
		if b > 0 {
			lo = bounds[b-1]
		}
		if b < len(bounds) {
			hi = bounds[b]
		}
		fb := FCTBucket{Lo: lo, Hi: hi, Count: len(ss)}
		if len(ss) > 0 {
			sort.Slice(ss, func(i, j int) bool { return ss[i].slow < ss[j].slow })
			fb.P50 = ss[rank(len(ss), 0.50)].slow
			fb.P95 = ss[rank(len(ss), 0.95)].slow
			fb.P99 = ss[rank(len(ss), 0.99)].slow
			sort.Slice(ss, func(i, j int) bool { return ss[i].fct < ss[j].fct })
			fb.P50FCT = ss[rank(len(ss), 0.50)].fct
			fb.P99FCT = ss[rank(len(ss), 0.99)].fct
		}
		rep.Buckets = append(rep.Buckets, fb)
	}
	return rep
}

// rank maps a percentile to a nearest-rank index in a sorted sample of
// n (the ceil(p·n) convention, clamped to the sample).
func rank(n int, p float64) int {
	i := int(p*float64(n)+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// label names a bucket's size range.
func (b *FCTBucket) label() string {
	switch {
	case b.Hi == 0:
		return fmt.Sprintf(">=%s", sizeLabel(b.Lo))
	case b.Lo == 0:
		return fmt.Sprintf("<%s", sizeLabel(b.Hi))
	default:
		return fmt.Sprintf("%s-%s", sizeLabel(b.Lo), sizeLabel(b.Hi))
	}
}

// sizeLabel formats a byte count compactly (10K, 1M).
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Format prints the bucketed report as one table.
func (r *FCTReport) Format(w io.Writer) {
	fmt.Fprintf(w, "%10s %7s %9s %9s %9s %12s %12s\n",
		"bucket", "flows", "p50 slow", "p95 slow", "p99 slow", "p50 FCT", "p99 FCT")
	for i := range r.Buckets {
		b := &r.Buckets[i]
		if b.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%10s %7d %8.2fx %8.2fx %8.2fx %10.2fus %10.2fus\n",
			b.label(), b.Count, b.P50, b.P95, b.P99,
			float64(b.P50FCT)/float64(netsim.Microsecond),
			float64(b.P99FCT)/float64(netsim.Microsecond))
	}
	if r.Completed < r.Total {
		fmt.Fprintf(w, "%d/%d flows completed\n", r.Completed, r.Total)
	}
}
