// Package partition implements the topology-cutting step of multi-switch
// SDT (§IV-C of the paper): splitting a logical topology's switch graph
// into k sub-topologies, one per physical switch.
//
// The paper's requirements: (1) minimise the number of inter-switch
// links (edges cut), and (2) balance the number of links/ports assigned
// to each physical switch. The authors use METIS; this package provides
// a from-scratch multilevel k-way partitioner in the METIS style:
// heavy-edge-matching coarsening, greedy region-growing initial
// partitioning, and Fiduccia–Mattheyses-style boundary refinement during
// uncoarsening. A pure min-cut mode (no balance constraint) is provided
// for the Fig. 8 ablation.
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Objective selects the optimisation target.
type Objective int

const (
	// Balanced minimises cut subject to a port-balance constraint —
	// the paper's production objective (α·Cut + β·balance, §IV-C).
	Balanced Objective = iota
	// MinCut ignores balance entirely (the "initial idea" the paper
	// shows misbehaving in Fig. 8).
	MinCut
)

// Options tunes the partitioner. The zero value is usable: Balanced
// objective, 10% imbalance tolerance, deterministic seed.
type Options struct {
	Objective Objective
	// Epsilon is the allowed relative port-weight imbalance for the
	// Balanced objective (0 means the 0.10 default).
	Epsilon float64
	// Seed makes tie-breaking deterministic; 0 means a fixed default.
	Seed int64
	// Refinement passes per uncoarsening level (0 means 4).
	Passes int
}

// Result describes a k-way partition of the switch graph.
type Result struct {
	K int
	// Assign maps every vertex ID (switches and hosts) to a part in
	// [0, K). Hosts inherit the part of their attached switch.
	Assign []int
	// CutEdges is the number of switch-switch edges whose endpoints
	// land in different parts — the inter-switch links the deployment
	// must reserve (Eq. 2).
	CutEdges int
	// PartPorts[p] is the total port weight (switch degree, including
	// host-facing ports) assigned to part p.
	PartPorts []int
	// PartSwitches[p] is the number of logical switches in part p.
	PartSwitches []int
	// Imbalance is max(PartPorts)/mean(PartPorts) - 1.
	Imbalance float64
}

// workGraph is the coarsenable switch-only weighted graph.
type workGraph struct {
	vwgt []int   // vertex weights (ports)
	xadj [][]nbr // adjacency with weights (merged parallel edges)
}

type nbr struct {
	v int
	w int
}

// sortAdj orders every adjacency list by neighbour ID so results are
// independent of map iteration order.
func (g *workGraph) sortAdj() {
	for i := range g.xadj {
		sort.Slice(g.xadj[i], func(a, b int) bool { return g.xadj[i][a].v < g.xadj[i][b].v })
	}
}

// Cut partitions the switch graph of g into k parts. It mirrors the
// paper's Cut(G(E,V), params...) function: input logical topology plus
// switch count, output a partitioning that satisfies the objective.
//
// Cut is deterministic: all randomness flows from Options.Seed (0 maps
// to a fixed default), adjacency lists are sorted so the result is
// independent of map iteration order, and no goroutines are spawned —
// the same (g, k, opt) always yields a byte-identical Result,
// regardless of GOMAXPROCS or rerun count. Downstream consumers rely
// on this: the sharded simulation executor (internal/shard) derives
// its shard assignment and cross-shard queue layout from the Result,
// so a nondeterministic Cut would break the executor's fixed-K
// byte-identity guarantee.
func Cut(g *topology.Graph, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d must be >= 1", k)
	}
	switches := g.Switches()
	if len(switches) == 0 {
		return nil, fmt.Errorf("partition: topology %q has no switches", g.Name)
	}
	if k > len(switches) {
		return nil, fmt.Errorf("partition: k = %d exceeds switch count %d", k, len(switches))
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.10
	}
	if opt.Passes <= 0 {
		opt.Passes = 4
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 12345
	}

	// Dense index over switches.
	idx := make(map[int]int, len(switches))
	for i, s := range switches {
		idx[s] = i
	}
	wg := &workGraph{
		vwgt: make([]int, len(switches)),
		xadj: make([][]nbr, len(switches)),
	}
	for i, s := range switches {
		wg.vwgt[i] = g.Degree(s) // all ports, incl. host-facing (paper balances ports)
	}
	type pairKey struct{ a, b int }
	merged := map[pairKey]int{}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		a, b := idx[e.A], idx[e.B]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		merged[pairKey{a, b}]++
	}
	for pk, w := range merged {
		wg.xadj[pk.a] = append(wg.xadj[pk.a], nbr{pk.b, w})
		wg.xadj[pk.b] = append(wg.xadj[pk.b], nbr{pk.a, w})
	}
	wg.sortAdj() // map iteration order must not leak into results

	var part []int
	if k == 1 {
		part = make([]int, len(switches))
	} else {
		// Multistart: the multilevel heuristic is cheap, so run it
		// several times with derived seeds and keep the best-scoring
		// partition (α·cut + β·imbalance, the paper's objective).
		const restarts = 8
		bestScore := -1.0
		for r := 0; r < restarts; r++ {
			cand := multilevel(wg, k, opt, rand.New(rand.NewSource(seed+int64(r)*7919)))
			s := score(wg, cand, k, opt)
			if bestScore < 0 || s < bestScore {
				bestScore = s
				part = cand
			}
		}
	}

	res := &Result{
		K:            k,
		Assign:       make([]int, len(g.Vertices)),
		PartPorts:    make([]int, k),
		PartSwitches: make([]int, k),
	}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	for i, s := range switches {
		res.Assign[s] = part[i]
		res.PartPorts[part[i]] += wg.vwgt[i]
		res.PartSwitches[part[i]]++
	}
	for _, h := range g.Hosts() {
		if s := g.HostSwitch(h); s >= 0 {
			res.Assign[h] = res.Assign[s]
		}
	}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		if res.Assign[e.A] != res.Assign[e.B] {
			res.CutEdges++
		}
	}
	total := 0
	maxP := 0
	for _, p := range res.PartPorts {
		total += p
		if p > maxP {
			maxP = p
		}
	}
	mean := float64(total) / float64(k)
	if mean > 0 {
		res.Imbalance = float64(maxP)/mean - 1
	}
	return res, nil
}

// multilevel runs coarsen / initial-partition / refine.
func multilevel(wg *workGraph, k int, opt Options, rng *rand.Rand) []int {
	coarseLimit := 4 * k
	if coarseLimit < 32 {
		coarseLimit = 32
	}

	// Coarsening chain.
	graphs := []*workGraph{wg}
	maps := [][]int{} // maps[i]: vertex of graphs[i] -> vertex of graphs[i+1]
	for len(graphs[len(graphs)-1].vwgt) > coarseLimit {
		cur := graphs[len(graphs)-1]
		next, cmap, shrunk := coarsen(cur, rng)
		if !shrunk {
			break
		}
		graphs = append(graphs, next)
		maps = append(maps, cmap)
	}

	coarsest := graphs[len(graphs)-1]
	part := initialPartition(coarsest, k, opt, rng)
	refine(coarsest, part, k, opt, rng)

	// Project back up, refining at each level.
	for lvl := len(maps) - 1; lvl >= 0; lvl-- {
		fine := graphs[lvl]
		cmap := maps[lvl]
		finePart := make([]int, len(fine.vwgt))
		for v := range finePart {
			finePart[v] = part[cmap[v]]
		}
		part = finePart
		refine(fine, part, k, opt, rng)
	}
	return part
}

// coarsen contracts a heavy-edge matching. Returns the coarse graph, the
// fine→coarse map, and whether the graph actually shrank.
func coarsen(g *workGraph, rng *rand.Rand) (*workGraph, []int, bool) {
	n := len(g.vwgt)
	order := rng.Perm(n)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, -1
		for _, nb := range g.xadj[v] {
			if match[nb.v] < 0 && nb.w > bestW {
				best, bestW = nb.v, nb.w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	cmap := make([]int, n)
	nc := 0
	for v := 0; v < n; v++ {
		if match[v] >= v { // representative
			cmap[v] = nc
			if match[v] != v {
				cmap[match[v]] = nc
			}
			nc++
		}
	}
	if nc >= n {
		return nil, nil, false
	}
	coarse := &workGraph{
		vwgt: make([]int, nc),
		xadj: make([][]nbr, nc),
	}
	type pairKey struct{ a, b int }
	acc := map[pairKey]int{}
	for v := 0; v < n; v++ {
		coarse.vwgt[cmap[v]] += g.vwgt[v]
		for _, nb := range g.xadj[v] {
			ca, cb := cmap[v], cmap[nb.v]
			if ca == cb {
				continue
			}
			if ca > cb {
				continue // count each direction once (v<nb side handles it)
			}
			acc[pairKey{ca, cb}] += nb.w
		}
	}
	for pk, w := range acc {
		// Exactly one direction of each fine edge passes the ca<cb
		// filter, so w is the true merged weight.
		coarse.xadj[pk.a] = append(coarse.xadj[pk.a], nbr{pk.b, w})
		coarse.xadj[pk.b] = append(coarse.xadj[pk.b], nbr{pk.a, w})
	}
	coarse.sortAdj()
	return coarse, cmap, true
}

// initialPartition grows k regions greedily from spread-out seeds,
// balancing vertex weight.
func initialPartition(g *workGraph, k int, opt Options, rng *rand.Rand) []int {
	n := len(g.vwgt)
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	total := 0
	for _, w := range g.vwgt {
		total += w
	}
	target := float64(total) / float64(k)

	// Seeds: BFS-farthest spreading.
	seeds := make([]int, 0, k)
	first := rng.Intn(n)
	seeds = append(seeds, first)
	dist := bfsDist(g, first)
	for len(seeds) < k {
		far, farD := -1, -1
		for v := 0; v < n; v++ {
			if dist[v] > farD {
				far, farD = v, dist[v]
			}
		}
		if far < 0 {
			far = rng.Intn(n)
		}
		seeds = append(seeds, far)
		d2 := bfsDist(g, far)
		for v := range dist {
			if d2[v] < dist[v] {
				dist[v] = d2[v]
			}
		}
	}

	weight := make([]int, k)
	type frontierItem struct{ v, p int }
	var frontier []frontierItem
	for p, s := range seeds {
		if part[s] == -1 {
			part[s] = p
			weight[p] += g.vwgt[s]
			for _, nb := range g.xadj[s] {
				frontier = append(frontier, frontierItem{nb.v, p})
			}
		}
	}
	// Greedy growth: repeatedly let the lightest part claim a frontier
	// vertex.
	for {
		// Find lightest part with available frontier.
		progress := false
		sort.SliceStable(frontier, func(i, j int) bool {
			return weight[frontier[i].p] < weight[frontier[j].p]
		})
		var rest []frontierItem
		for _, f := range frontier {
			if part[f.v] != -1 {
				continue
			}
			if float64(weight[f.p]) > target*1.5 && opt.Objective == Balanced {
				rest = append(rest, f)
				continue
			}
			part[f.v] = f.p
			weight[f.p] += g.vwgt[f.v]
			progress = true
			for _, nb := range g.xadj[f.v] {
				if part[nb.v] == -1 {
					rest = append(rest, frontierItem{nb.v, f.p})
				}
			}
		}
		frontier = rest
		if !progress {
			break
		}
	}
	// Orphans (disconnected or squeezed out): assign to lightest part.
	for v := 0; v < n; v++ {
		if part[v] == -1 {
			light := 0
			for p := 1; p < k; p++ {
				if weight[p] < weight[light] {
					light = p
				}
			}
			part[v] = light
			weight[light] += g.vwgt[v]
		}
	}
	return part
}

func bfsDist(g *workGraph, src int) []int {
	n := len(g.vwgt)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = n + 1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.xadj[v] {
			if dist[nb.v] > dist[v]+1 {
				dist[nb.v] = dist[v] + 1
				queue = append(queue, nb.v)
			}
		}
	}
	return dist
}

// score evaluates a partition under the paper's composite objective:
// cut weight plus a balance penalty (zero for MinCut).
func score(g *workGraph, part []int, k int, opt Options) float64 {
	cut := 0
	total := 0
	weight := make([]int, k)
	for v := range g.vwgt {
		weight[part[v]] += g.vwgt[v]
		total += g.vwgt[v]
		for _, nb := range g.xadj[v] {
			if nb.v > v && part[nb.v] != part[v] {
				cut += nb.w
			}
		}
	}
	if opt.Objective == MinCut {
		return float64(cut)
	}
	maxW := 0
	for _, w := range weight {
		if w > maxW {
			maxW = w
		}
	}
	mean := float64(total) / float64(k)
	imb := float64(maxW)/mean - 1
	// β chosen so a 10% imbalance costs about one cut edge on small
	// graphs and scales with graph size on larger ones.
	return float64(cut) + imb*float64(total)*0.25
}

// connTo computes v's edge weight toward each part, returned as a dense
// slice for deterministic iteration.
func connTo(g *workGraph, part []int, v, k int, buf []int) []int {
	if cap(buf) < k {
		buf = make([]int, k)
	}
	buf = buf[:k]
	for i := range buf {
		buf[i] = 0
	}
	for _, nb := range g.xadj[v] {
		buf[part[nb.v]] += nb.w
	}
	return buf
}

// refine runs FM-style passes: move boundary vertices to the neighbour
// part with the best gain, respecting balance for the Balanced
// objective, then explicitly rebalances overweight parts.
func refine(g *workGraph, part []int, k int, opt Options, rng *rand.Rand) {
	n := len(g.vwgt)
	weight := make([]int, k)
	total := 0
	for v := 0; v < n; v++ {
		weight[part[v]] += g.vwgt[v]
		total += g.vwgt[v]
	}
	// The move limit must leave room for at least one vertex move above
	// the mean, or a perfectly balanced partition could never be refined
	// (every single move temporarily overweights the destination).
	maxVwgt := 0
	for _, w := range g.vwgt {
		if w > maxVwgt {
			maxVwgt = w
		}
	}
	mean := float64(total) / float64(k)
	maxAllowed := int(mean * (1 + opt.Epsilon))
	if min := int(mean) + maxVwgt; maxAllowed < min {
		maxAllowed = min
	}
	if opt.Objective == MinCut {
		maxAllowed = total // unconstrained
	}
	partCount := make([]int, k)
	for v := 0; v < n; v++ {
		partCount[part[v]]++
	}
	var conn []int

	type move struct {
		v, from, to int
	}
	locked := make([]bool, n)

	for pass := 0; pass < opt.Passes; pass++ {
		// Classic FM sequence: repeatedly apply the best feasible move
		// (even if its gain is negative), locking each vertex after it
		// moves, then roll back to the prefix with the lowest cut.
		for i := range locked {
			locked[i] = false
		}
		var seq []move
		cumGain := 0
		bestGainAt, bestGainVal := -1, 0
		_ = rng
		for step := 0; step < n; step++ {
			bestV, bestDst := -1, -1
			bestGain := -(1 << 30)
			for v := 0; v < n; v++ {
				if locked[v] {
					continue
				}
				home := part[v]
				if partCount[home] <= 1 {
					continue
				}
				conn = connTo(g, part, v, k, conn)
				for p := 0; p < k; p++ {
					if p == home {
						continue
					}
					if conn[p] == 0 && g.xadj[v] != nil && opt.Objective == Balanced {
						continue // keep parts contiguous when possible
					}
					if weight[p]+g.vwgt[v] > maxAllowed {
						continue
					}
					gain := conn[p] - conn[home]
					if gain > bestGain {
						bestGain, bestV, bestDst = gain, v, p
					}
				}
			}
			if bestV < 0 {
				break
			}
			home := part[bestV]
			weight[home] -= g.vwgt[bestV]
			weight[bestDst] += g.vwgt[bestV]
			partCount[home]--
			partCount[bestDst]++
			part[bestV] = bestDst
			locked[bestV] = true
			seq = append(seq, move{bestV, home, bestDst})
			cumGain += bestGain
			if cumGain > bestGainVal {
				bestGainVal = cumGain
				bestGainAt = len(seq) - 1
			}
			if bestGain < 0 && len(seq) > n/2 {
				break // deep in a losing streak; stop early
			}
		}
		// Roll back moves after the best prefix.
		for i := len(seq) - 1; i > bestGainAt; i-- {
			m := seq[i]
			weight[m.to] -= g.vwgt[m.v]
			weight[m.from] += g.vwgt[m.v]
			partCount[m.to]--
			partCount[m.from]++
			part[m.v] = m.from
		}
		improved := bestGainAt >= 0
		if opt.Objective == Balanced {
			if rebalance(g, part, k, weight, partCount, maxAllowed, &conn) > 0 {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// degSum returns the total incident edge weight of v.
func degSum(g *workGraph, v int) int {
	s := 0
	for _, nb := range g.xadj[v] {
		s += nb.w
	}
	return s
}

// rebalance drains overweight parts by moving their cheapest boundary
// vertices into the lightest adjacent part, even at a cut cost.
func rebalance(g *workGraph, part []int, k int, weight, partCount []int, maxAllowed int, connBuf *[]int) int {
	moved := 0
	for iter := 0; iter < len(part); iter++ {
		// Heaviest over-limit part.
		over := -1
		for p := 0; p < k; p++ {
			if weight[p] > maxAllowed && (over < 0 || weight[p] > weight[over]) {
				over = p
			}
		}
		if over < 0 {
			break
		}
		// Best vertex to evict: smallest cut damage, moved to the
		// lightest part it touches (or the global lightest part).
		bestV, bestDst, bestCost := -1, -1, 1<<30
		for v := 0; v < len(part); v++ {
			if part[v] != over || partCount[over] <= 1 {
				continue
			}
			conn := connTo(g, part, v, k, *connBuf)
			*connBuf = conn
			for p := 0; p < k; p++ {
				// Only move toward parts currently lighter than the
				// overweight source.
				if p == over || weight[p] >= weight[over] {
					continue
				}
				cost := conn[over] - conn[p]
				if cost < bestCost {
					bestV, bestDst, bestCost = v, p, cost
				}
			}
		}
		if bestV < 0 {
			break
		}
		weight[over] -= g.vwgt[bestV]
		weight[bestDst] += g.vwgt[bestV]
		partCount[over]--
		partCount[bestDst]++
		part[bestV] = bestDst
		moved++
	}
	return moved
}

// CutEdgeIDs returns the IDs of switch-switch edges cut by the result —
// the logical links that must become inter-switch links.
func (r *Result) CutEdgeIDs(g *topology.Graph) []int {
	var out []int
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		if r.Assign[e.A] != r.Assign[e.B] {
			out = append(out, eid)
		}
	}
	return out
}

// InterSwitchDemand returns, for each unordered physical-switch pair,
// the number of logical links crossing it. Deployment uses the maximum
// over all planned topologies to reserve physical inter-switch cables
// (§IV-B).
func (r *Result) InterSwitchDemand(g *topology.Graph) map[[2]int]int {
	out := map[[2]int]int{}
	for _, eid := range r.CutEdgeIDs(g) {
		e := g.Edges[eid]
		a, b := r.Assign[e.A], r.Assign[e.B]
		if a > b {
			a, b = b, a
		}
		out[[2]int{a, b}]++
	}
	return out
}
