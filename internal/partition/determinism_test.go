package partition

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/topology"
)

// TestCutDeterministic pins the seeded-RNG contract the sharded
// executor builds on: for a fixed (topology, k, seed) the full Result
// — assignment vector included — is byte-identical across reruns and
// across GOMAXPROCS settings.
func TestCutDeterministic(t *testing.T) {
	topos := []*topology.Graph{
		topology.FatTree(4),
		topology.FatTree(8),
		topology.Dragonfly(4, 9, 2, 1),
		topology.Torus2D(6, 6, 1),
	}
	for _, g := range topos {
		for _, k := range []int{2, 3, 4} {
			for _, opt := range []Options{{}, {Seed: 99}, {Objective: MinCut, Seed: 7}} {
				ref, err := Cut(g, k, opt)
				if err != nil {
					t.Fatalf("%s k=%d: %v", g.Name, k, err)
				}
				for rerun := 0; rerun < 3; rerun++ {
					got, err := Cut(g, k, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("%s k=%d opt=%+v: rerun %d produced a different Result", g.Name, k, opt, rerun)
					}
				}
				prev := runtime.GOMAXPROCS(1)
				got, err := Cut(g, k, opt)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("%s k=%d opt=%+v: GOMAXPROCS=1 produced a different Result", g.Name, k, opt)
				}
			}
		}
	}
}

// TestCutZeroSeedIsFixedDefault pins that Seed 0 means "a fixed
// default", not "random": it must equal some specific non-zero seed's
// behaviour run-to-run (covered above) and, observably, always yield
// the same assignment on a given build.
func TestCutZeroSeedIsFixedDefault(t *testing.T) {
	g := topology.FatTree(4)
	a, err := Cut(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cut(g, 4, Options{Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seed 0 does not behave as the documented fixed default (12345)")
	}
}
