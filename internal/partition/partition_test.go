package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func mustCut(t *testing.T, g *topology.Graph, k int, opt Options) *Result {
	t.Helper()
	r, err := Cut(g, k, opt)
	if err != nil {
		t.Fatalf("Cut(%s, %d): %v", g.Name, k, err)
	}
	return r
}

// checkWellFormed verifies structural invariants of any partition result.
func checkWellFormed(t *testing.T, g *topology.Graph, r *Result) {
	t.Helper()
	for _, s := range g.Switches() {
		if p := r.Assign[s]; p < 0 || p >= r.K {
			t.Fatalf("switch %d assigned to invalid part %d", s, p)
		}
	}
	for _, h := range g.Hosts() {
		s := g.HostSwitch(h)
		if s >= 0 && r.Assign[h] != r.Assign[s] {
			t.Fatalf("host %d in part %d but its switch %d in part %d", h, r.Assign[h], s, r.Assign[s])
		}
	}
	cut := 0
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		if r.Assign[e.A] != r.Assign[e.B] {
			cut++
		}
	}
	if cut != r.CutEdges {
		t.Fatalf("CutEdges = %d but recount = %d", r.CutEdges, cut)
	}
	totalSw := 0
	for p := 0; p < r.K; p++ {
		if r.PartSwitches[p] == 0 {
			t.Fatalf("part %d is empty", p)
		}
		totalSw += r.PartSwitches[p]
	}
	if totalSw != g.NumSwitches() {
		t.Fatalf("switch counts: %d != %d", totalSw, g.NumSwitches())
	}
}

func TestCutK1(t *testing.T) {
	g := topology.FatTree(4)
	r := mustCut(t, g, 1, Options{})
	checkWellFormed(t, g, r)
	if r.CutEdges != 0 {
		t.Errorf("k=1 cut = %d, want 0", r.CutEdges)
	}
}

func TestTorus4x4TwoWay(t *testing.T) {
	// Paper Fig. 7: a 4x4 2D-torus split over 2 switches needs 8
	// inter-switch links (the optimal bisection cuts two torus rings,
	// each contributing 4 wrap+cross links).
	g := topology.Torus2D(4, 4, 0)
	r := mustCut(t, g, 2, Options{})
	checkWellFormed(t, g, r)
	if r.CutEdges != 8 {
		t.Errorf("Torus2D(4,4) 2-way cut = %d, want 8", r.CutEdges)
	}
	if r.Imbalance > 0.01 {
		t.Errorf("imbalance = %.3f, want ~0 for symmetric torus", r.Imbalance)
	}
}

func TestTorus4x4FourWay(t *testing.T) {
	// Fig. 7 right: 4 switches, each holding a 2x2 block with 12
	// self-links... each 2x2 block of a 4x4 torus has 4 internal links,
	// and 8 links leave each block. Total cut = 4 blocks * 8 / 2 = 16.
	g := topology.Torus2D(4, 4, 0)
	r := mustCut(t, g, 4, Options{})
	checkWellFormed(t, g, r)
	if r.CutEdges > 20 { // optimal grid blocking gives 16
		t.Errorf("Torus2D(4,4) 4-way cut = %d, want <= 20 (optimal 16)", r.CutEdges)
	}
	if r.Imbalance > 0.25 {
		t.Errorf("imbalance = %.3f too high", r.Imbalance)
	}
}

func TestFatTreeTwoWay(t *testing.T) {
	// §VII-C: fat-tree k=4 projected onto 2 switches.
	g := topology.FatTree(4)
	r := mustCut(t, g, 2, Options{})
	checkWellFormed(t, g, r)
	if r.CutEdges >= len(g.SwitchSwitchEdges()) {
		t.Errorf("cut %d not better than trivial %d", r.CutEdges, len(g.SwitchSwitchEdges()))
	}
	if r.Imbalance > 0.30 {
		t.Errorf("imbalance = %.3f too high", r.Imbalance)
	}
}

func TestBalancedVsMinCut(t *testing.T) {
	// Fig. 8: a line graph cut into 2. Min-cut alone may produce wildly
	// unbalanced parts; the Balanced objective must keep ports even.
	g := topology.Line(16, 1)
	bal := mustCut(t, g, 2, Options{Objective: Balanced})
	checkWellFormed(t, g, bal)
	if bal.CutEdges != 1 {
		t.Errorf("balanced line cut = %d, want 1", bal.CutEdges)
	}
	if bal.Imbalance > 0.15 {
		t.Errorf("balanced imbalance = %.3f, want <= 0.15", bal.Imbalance)
	}
	mc := mustCut(t, g, 2, Options{Objective: MinCut})
	checkWellFormed(t, g, mc)
	if mc.CutEdges != 1 {
		t.Errorf("min-cut line cut = %d, want 1", mc.CutEdges)
	}
}

func TestBalancedKeepsEpsilon(t *testing.T) {
	g := topology.Dragonfly(4, 9, 2, 1)
	for _, k := range []int{2, 3, 4} {
		r := mustCut(t, g, k, Options{Objective: Balanced, Epsilon: 0.10})
		checkWellFormed(t, g, r)
		if r.Imbalance > 0.35 {
			t.Errorf("k=%d imbalance = %.3f exceeds slack", k, r.Imbalance)
		}
	}
}

func TestCutErrors(t *testing.T) {
	g := topology.Line(3, 0)
	if _, err := Cut(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cut(g, 4, Options{}); err == nil {
		t.Error("k > switches accepted")
	}
	empty := topology.New("empty")
	if _, err := Cut(empty, 1, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := topology.FatTree(6)
	a := mustCut(t, g, 3, Options{Seed: 7})
	b := mustCut(t, g, 3, Options{Seed: 7})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("non-deterministic assignment at vertex %d", i)
		}
	}
}

func TestCutEdgeIDsAndDemand(t *testing.T) {
	g := topology.Torus2D(4, 4, 0)
	r := mustCut(t, g, 2, Options{})
	ids := r.CutEdgeIDs(g)
	if len(ids) != r.CutEdges {
		t.Fatalf("CutEdgeIDs len = %d, want %d", len(ids), r.CutEdges)
	}
	demand := r.InterSwitchDemand(g)
	total := 0
	for pair, n := range demand {
		if pair[0] >= pair[1] {
			t.Errorf("unordered pair %v", pair)
		}
		total += n
	}
	if total != r.CutEdges {
		t.Errorf("demand total = %d, want %d", total, r.CutEdges)
	}
}

func TestLargerTopologies(t *testing.T) {
	for _, tc := range []struct {
		g *topology.Graph
		k int
	}{
		{topology.FatTree(8), 4},
		{topology.Torus3D(4, 4, 4, 1), 4},
		{topology.Dragonfly(4, 9, 2, 1), 3},
		{topology.BCube(4, 1), 2},
	} {
		r := mustCut(t, tc.g, tc.k, Options{})
		checkWellFormed(t, tc.g, r)
		trivialCut := len(tc.g.SwitchSwitchEdges())
		if r.CutEdges >= trivialCut {
			t.Errorf("%s k=%d: cut %d not better than total %d", tc.g.Name, tc.k, r.CutEdges, trivialCut)
		}
	}
}

// Property: partitioning any connected random WAN into k in {2,3} keeps
// all invariants and never cuts more edges than the graph has.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 6 + int(nRaw)%40
		k := 2 + int(kRaw)%2
		g := topology.RandomWAN("q", n, n/4, seed)
		r, err := Cut(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if r.CutEdges > len(g.SwitchSwitchEdges()) {
			return false
		}
		seen := make([]int, k)
		for _, s := range g.Switches() {
			if r.Assign[s] < 0 || r.Assign[s] >= k {
				return false
			}
			seen[r.Assign[s]]++
		}
		for _, c := range seen {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Balanced objective imbalance stays within a loose global
// bound on arbitrary random graphs (heavy vertices can force slack, so
// the bound is generous but finite).
func TestQuickBalance(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 10 + int(nRaw)%40
		g := topology.RandomWAN("q", n, n/3, seed)
		r, err := Cut(g, 2, Options{Objective: Balanced, Seed: seed})
		if err != nil {
			return false
		}
		return r.Imbalance < 0.8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCutFatTree8(b *testing.B) {
	g := topology.FatTree(8)
	for i := 0; i < b.N; i++ {
		if _, err := Cut(g, 4, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutTorus3D(b *testing.B) {
	g := topology.Torus3D(8, 8, 8, 0)
	for i := 0; i < b.N; i++ {
		if _, err := Cut(g, 8, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
