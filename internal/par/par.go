// Package par is the leaf worker-pool primitive shared by the
// experiment sweeps (via core.ParallelFor) and the routing strategies'
// per-destination route builds. It lives below every domain package so
// that routing can fan out without importing core (which imports
// controller, which imports routing).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs jobs 0..n-1 across `workers` goroutines, preserving nothing
// about order except that all started jobs complete before it returns.
// workers <= 0 means GOMAXPROCS; workers == 1 (or n < 2) runs serially
// on the calling goroutine. After a job fails, no further jobs are
// claimed; the lowest-index error observed is returned.
//
// Jobs must be independent: callers satisfy this by giving every job
// its own output slot and priming shared read-only structures
// (topologies, route sets, SDT deployments) before the fan-out.
func For(workers, n int, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   int64 = -1
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		// firstErr keeps the error of the lowest job index so parallel
		// runs fail with the same error a serial run would hit first.
		firstErr    error
		firstErrIdx int
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := job(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil || i < firstErrIdx {
						firstErr, firstErrIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
