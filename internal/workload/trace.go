package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/netsim"
)

// traceHeader is the first JSON line of a trace file.
type traceHeader struct {
	Name  string `json:"name"`
	Ranks int    `json:"ranks"`
}

// traceOp is one serialised operation line.
type traceOp struct {
	Rank  int    `json:"rank"`
	Kind  string `json:"kind"`
	Peer  int    `json:"peer,omitempty"`
	Bytes int    `json:"bytes,omitempty"`
	Tag   int    `json:"tag,omitempty"`
	// DurNs is compute duration in nanoseconds.
	DurNs int64 `json:"dur_ns,omitempty"`
}

// Write serialises the trace as JSON lines: a header followed by one
// line per operation — the on-disk format for collected traces.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Name: t.Name, Ranks: t.Ranks}); err != nil {
		return err
	}
	for r, prog := range t.Programs {
		for _, op := range prog {
			to := traceOp{Rank: r, Peer: op.Peer, Bytes: op.Bytes, Tag: op.MTag}
			switch op.Kind {
			case netsim.OpSend:
				to.Kind = "send"
			case netsim.OpRecv:
				to.Kind = "recv"
			case netsim.OpCompute:
				to.Kind = "compute"
				to.DurNs = int64(op.Dur / netsim.Nanosecond)
			}
			if err := enc.Encode(to); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by Write.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr traceHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if hdr.Ranks < 1 {
		return nil, fmt.Errorf("workload: trace %q has %d ranks", hdr.Name, hdr.Ranks)
	}
	t := &Trace{Name: hdr.Name, Ranks: hdr.Ranks, Programs: make([][]netsim.Op, hdr.Ranks)}
	for {
		var to traceOp
		if err := dec.Decode(&to); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: reading trace op: %w", err)
		}
		if to.Rank < 0 || to.Rank >= hdr.Ranks {
			return nil, fmt.Errorf("workload: op rank %d out of range", to.Rank)
		}
		op := netsim.Op{Peer: to.Peer, Bytes: to.Bytes, MTag: to.Tag}
		switch to.Kind {
		case "send":
			op.Kind = netsim.OpSend
		case "recv":
			op.Kind = netsim.OpRecv
		case "compute":
			op.Kind = netsim.OpCompute
			op.Dur = netsim.Time(to.DurNs) * netsim.Nanosecond
		default:
			return nil, fmt.Errorf("workload: unknown op kind %q", to.Kind)
		}
		t.Programs[to.Rank] = append(t.Programs[to.Rank], op)
	}
	return t, nil
}

// Validate checks structural sanity: peers in range, sends and recvs
// pairwise balanced per (src, dst, tag) so replay cannot deadlock on a
// missing message.
func (t *Trace) Validate() error {
	type key struct{ src, dst, tag int }
	balance := map[key]int{}
	for r, prog := range t.Programs {
		for i, op := range prog {
			if op.Kind == netsim.OpCompute {
				continue
			}
			if op.Peer < 0 || op.Peer >= t.Ranks {
				return fmt.Errorf("workload %s: rank %d op %d peer %d out of range", t.Name, r, i, op.Peer)
			}
			if op.Peer == r {
				return fmt.Errorf("workload %s: rank %d op %d sends to itself", t.Name, r, i)
			}
			switch op.Kind {
			case netsim.OpSend:
				balance[key{r, op.Peer, op.MTag}]++
			case netsim.OpRecv:
				balance[key{op.Peer, r, op.MTag}]--
			}
		}
	}
	for k, v := range balance {
		if v != 0 {
			return fmt.Errorf("workload %s: unmatched message src=%d dst=%d tag=%d (balance %+d)",
				t.Name, k.src, k.dst, k.tag, v)
		}
	}
	return nil
}

// TotalBytes sums payload bytes sent by all ranks — the traffic volume
// driving Fig. 13's simulation-time blowup.
func (t *Trace) TotalBytes() int64 {
	var s int64
	for _, prog := range t.Programs {
		for _, op := range prog {
			if op.Kind == netsim.OpSend {
				s += int64(op.Bytes)
			}
		}
	}
	return s
}

// Ops counts total operations.
func (t *Trace) Ops() int {
	n := 0
	for _, prog := range t.Programs {
		n += len(prog)
	}
	return n
}
