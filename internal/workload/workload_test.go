package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestAllGeneratorsValidate(t *testing.T) {
	traces := []*Trace{
		Pingpong(1024, 5),
		Alltoall(8, 4096, 2),
		AllreduceRing(8, 64*1024, 2, nil),
		HaloExchange2D(16, 8192, 3, netsim.Millisecond),
		MiniGhost(16),
		HPCG(16),
		HPL(16),
		MiniFE(16),
		IMBAlltoall(8),
	}
	for _, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tr.Name, err)
		}
		if tr.Ops() == 0 {
			t.Errorf("%s: empty trace", tr.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range TableIVApps() {
		tr, err := ByName(name, 8)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tr.Ranks != 8 {
			t.Errorf("%s: ranks = %d", name, tr.Ranks)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nosuch", 4); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := HPCG(9)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Ranks != orig.Ranks {
		t.Fatalf("header changed: %s/%d", got.Name, got.Ranks)
	}
	if got.Ops() != orig.Ops() || got.TotalBytes() != orig.TotalBytes() {
		t.Fatalf("ops/bytes changed: %d/%d vs %d/%d", got.Ops(), got.TotalBytes(), orig.Ops(), orig.TotalBytes())
	}
	for r := range orig.Programs {
		for i := range orig.Programs[r] {
			if got.Programs[r][i] != orig.Programs[r][i] {
				t.Fatalf("rank %d op %d changed: %+v vs %+v", r, i, got.Programs[r][i], orig.Programs[r][i])
			}
		}
	}
}

func TestValidateCatchesImbalance(t *testing.T) {
	tr := &Trace{Name: "bad", Ranks: 2, Programs: [][]netsim.Op{
		{{Kind: netsim.OpSend, Peer: 1, Bytes: 10, MTag: 1}},
		{}, // missing recv
	}}
	if err := tr.Validate(); err == nil {
		t.Error("unmatched send accepted")
	}
	tr2 := &Trace{Name: "bad2", Ranks: 2, Programs: [][]netsim.Op{
		{{Kind: netsim.OpSend, Peer: 5, Bytes: 10, MTag: 1}},
		{},
	}}
	if err := tr2.Validate(); err == nil {
		t.Error("out-of-range peer accepted")
	}
}

// replay runs a trace on a fat-tree and returns the ACT.
func replay(t *testing.T, tr *Trace) netsim.Time {
	t.Helper()
	g := topology.FatTree(4)
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), netsim.DefaultConfig(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()[:tr.Ranks]
	app := netsim.NewApp(net, hosts, tr.Programs, nil)
	app.Start()
	net.Sim.Run(0)
	act := app.ACT()
	if act <= 0 {
		t.Fatalf("%s did not complete", tr.Name)
	}
	return act
}

func TestTableIVAppsReplayToCompletion(t *testing.T) {
	for _, name := range TableIVApps() {
		tr, err := ByName(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		act := replay(t, tr)
		// Table IV real ACTs are 0.11–16 s; our scaled-down versions
		// should land between 10 ms and 5 s.
		if act < 10*netsim.Millisecond || act > 5*netsim.Second {
			t.Errorf("%s ACT = %v, outside plausible scaled range", name, act)
		}
	}
}

func TestPingpongReplayRTT(t *testing.T) {
	tr := Pingpong(64, 10)
	act := replay(t, tr)
	// 10 round trips of a tiny message inside one pod: well under 1 ms.
	if act > netsim.Millisecond {
		t.Errorf("pingpong ACT = %v, too slow", act)
	}
}

func TestAlltoallScalesWithBytes(t *testing.T) {
	small := replay(t, Alltoall(8, 4096, 1))
	big := replay(t, Alltoall(8, 256*1024, 1))
	if big <= small {
		t.Errorf("alltoall ACT did not grow with message size: %v vs %v", small, big)
	}
}

func TestGrid2D(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 32: {4, 8}, 9: {3, 3}, 7: {1, 7}, 12: {3, 4}}
	for n, want := range cases {
		px, py := grid2D(n)
		if px*py != n || px != want[0] || py != want[1] {
			t.Errorf("grid2D(%d) = (%d,%d), want %v", n, px, py, want)
		}
	}
}

// Property: alltoall traces always balance for any size/count.
func TestQuickAlltoallBalanced(t *testing.T) {
	f := func(nRaw, bRaw uint8) bool {
		n := 2 + int(nRaw)%10
		b := 1 + int(bRaw)
		tr := Alltoall(n, b, 1)
		return tr.Validate() == nil && tr.TotalBytes() == int64(n*(n-1)*b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: trace round-trip through the file format is lossless.
func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 2 + int(nRaw)%8
		tr := HPL(n)
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		return got.Ops() == tr.Ops() && got.TotalBytes() == tr.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHPCGGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HPCG(32)
	}
}

func BenchmarkTraceWrite(b *testing.B) {
	tr := HPCG(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ByName's error must name the valid applications so a caller can fix
// a typo without reading source.
func TestByNameUnknownListsCandidates(t *testing.T) {
	_, err := ByName("HPrG", 4)
	if err == nil {
		t.Fatal("unknown workload resolved")
	}
	for _, want := range TableIVApps() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %q", err, want)
		}
	}
}
