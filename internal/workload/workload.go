// Package workload generates the MPI-style application traces the
// paper evaluates (§VI-D): IMB Pingpong and Alltoall, HPCG, HPL,
// miniGhost and miniFE. Each generator returns one operation list per
// rank for replay in the netsim application layer — the same
// trace-driven methodology the paper's simulator uses ("the simulator
// uses the traces collected from running an HPC application on real
// computing nodes").
//
// The communication patterns follow the published structure of each
// benchmark; compute phases are synthetic constants calibrated to give
// ACTs in the ranges Table IV reports. Absolute times are not the
// reproduction target — the SDT-vs-simulator ACT agreement and the
// relative evaluation-time blowup are.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
)

// Trace is a complete application: one program per rank.
type Trace struct {
	Name     string
	Ranks    int
	Programs [][]netsim.Op
}

// tagger hands out collision-free MPI tags per logical phase.
type tagger struct{ next int }

func (t *tagger) phase() int {
	t.next += 1 << 12
	return t.next
}

// Pingpong is the IMB Pingpong: reps round trips of `bytes` between
// ranks 0 and 1 (§VI-B1 uses -msglen sweeps of this benchmark).
func Pingpong(bytes, reps int) *Trace {
	var tg tagger
	p0 := []netsim.Op{}
	p1 := []netsim.Op{}
	for i := 0; i < reps; i++ {
		tag := tg.phase()
		p0 = append(p0,
			netsim.Op{Kind: netsim.OpSend, Peer: 1, Bytes: bytes, MTag: tag},
			netsim.Op{Kind: netsim.OpRecv, Peer: 1, MTag: tag + 1},
		)
		p1 = append(p1,
			netsim.Op{Kind: netsim.OpRecv, Peer: 0, MTag: tag},
			netsim.Op{Kind: netsim.OpSend, Peer: 0, Bytes: bytes, MTag: tag + 1},
		)
	}
	return &Trace{Name: fmt.Sprintf("imb-pingpong-%dB", bytes), Ranks: 2, Programs: [][]netsim.Op{p0, p1}}
}

// Alltoall is the IMB Alltoall: reps rounds in which every rank sends
// `bytes` to every other rank (the pure-traffic benchmark of Fig. 13).
func Alltoall(n, bytes, reps int) *Trace {
	var tg tagger
	progs := make([][]netsim.Op, n)
	for rep := 0; rep < reps; rep++ {
		base := tg.phase()
		for r := 0; r < n; r++ {
			for p := 0; p < n; p++ {
				if p == r {
					continue
				}
				progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpSend, Peer: p, Bytes: bytes, MTag: base + r})
			}
		}
		for r := 0; r < n; r++ {
			for p := 0; p < n; p++ {
				if p == r {
					continue
				}
				progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpRecv, Peer: p, MTag: base + p})
			}
		}
	}
	return &Trace{Name: fmt.Sprintf("imb-alltoall-%d", n), Ranks: n, Programs: progs}
}

// AllreduceRing is a ring allreduce of `bytes` (reduce-scatter +
// allgather), the collective underlying HPCG's dot products.
func AllreduceRing(n, bytes, reps int, tg *tagger) *Trace {
	if tg == nil {
		tg = &tagger{}
	}
	progs := make([][]netsim.Op, n)
	if n == 1 {
		return &Trace{Name: "allreduce", Ranks: 1, Programs: progs}
	}
	chunk := bytes / n
	if chunk < 1 {
		chunk = 1
	}
	for rep := 0; rep < reps; rep++ {
		for phase := 0; phase < 2*(n-1); phase++ {
			base := tg.phase()
			for r := 0; r < n; r++ {
				nxt := (r + 1) % n
				prv := (r - 1 + n) % n
				progs[r] = append(progs[r],
					netsim.Op{Kind: netsim.OpSend, Peer: nxt, Bytes: chunk, MTag: base + r},
					netsim.Op{Kind: netsim.OpRecv, Peer: prv, MTag: base + prv},
				)
			}
		}
	}
	return &Trace{Name: fmt.Sprintf("allreduce-%dB", bytes), Ranks: n, Programs: progs}
}

// grid2D arranges n ranks into the most square (px, py) grid.
func grid2D(n int) (int, int) {
	px := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			px = d
		}
	}
	return px, n / px
}

// HaloExchange2D is miniGhost's communication skeleton: iters sweeps of
// 2D nearest-neighbour halo exchange (non-periodic) with a compute
// phase per sweep.
func HaloExchange2D(n, haloBytes, iters int, compute netsim.Time) *Trace {
	px, py := grid2D(n)
	var tg tagger
	progs := make([][]netsim.Op, n)
	rankAt := func(x, y int) int { return y*px + x }
	for it := 0; it < iters; it++ {
		base := tg.phase()
		for y := 0; y < py; y++ {
			for x := 0; x < px; x++ {
				r := rankAt(x, y)
				type nb struct{ peer, dir int }
				var nbs []nb
				if x > 0 {
					nbs = append(nbs, nb{rankAt(x-1, y), 0})
				}
				if x < px-1 {
					nbs = append(nbs, nb{rankAt(x+1, y), 1})
				}
				if y > 0 {
					nbs = append(nbs, nb{rankAt(x, y-1), 2})
				}
				if y < py-1 {
					nbs = append(nbs, nb{rankAt(x, y+1), 3})
				}
				for _, v := range nbs {
					progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpSend, Peer: v.peer, Bytes: haloBytes, MTag: base + r*8 + v.dir})
				}
				for _, v := range nbs {
					// The matching tag is the neighbour's send toward us:
					// direction is mirrored (0<->1, 2<->3).
					progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpRecv, Peer: v.peer, MTag: base + v.peer*8 + (v.dir ^ 1)})
				}
				if compute > 0 {
					progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpCompute, Dur: compute})
				}
			}
		}
	}
	return &Trace{Name: fmt.Sprintf("minighost-%d", n), Ranks: n, Programs: progs}
}

// MiniGhost is the miniGhost proxy app (halo exchange + stencil
// compute) with Table IV-scale defaults.
func MiniGhost(n int) *Trace {
	t := HaloExchange2D(n, 256*1024, 40, 2*netsim.Millisecond)
	t.Name = fmt.Sprintf("miniGhost-%d", n)
	return t
}

// HPCG models the High Performance Conjugate Gradient benchmark: per
// iteration a sparse-matrix halo exchange plus two small allreduces
// (dot products) and a compute phase.
func HPCG(n int) *Trace {
	var tg tagger
	progs := make([][]netsim.Op, n)
	const iters = 30
	for it := 0; it < iters; it++ {
		// Halo exchange (SpMV): re-generate with fresh tags.
		sweep := HaloExchange2D(n, 64*1024, 1, 0)
		shift := tg.phase() * 16
		for r := 0; r < n; r++ {
			for _, op := range sweep.Programs[r] {
				op.MTag += shift
				progs[r] = append(progs[r], op)
			}
			progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpCompute, Dur: 3 * netsim.Millisecond})
		}
		// Two dot-product allreduces.
		for d := 0; d < 2; d++ {
			ar := AllreduceRing(n, 64, 1, &tg)
			for r := 0; r < n; r++ {
				progs[r] = append(progs[r], ar.Programs[r]...)
			}
		}
	}
	return &Trace{Name: fmt.Sprintf("HPCG-%d", n), Ranks: n, Programs: progs}
}

// HPL models High Performance Linpack: steps of panel factorisation
// where the panel owner ring-broadcasts a shrinking panel, everyone
// updates (compute proportional to remaining matrix).
func HPL(n int) *Trace {
	var tg tagger
	progs := make([][]netsim.Op, n)
	const steps = 24
	const panel0 = 2 << 20
	for k := 0; k < steps; k++ {
		root := k % n
		frac := float64(steps-k) / float64(steps)
		bytes := int(float64(panel0) * frac * frac)
		if bytes < 1024 {
			bytes = 1024
		}
		base := tg.phase()
		// Ring broadcast from root: receive from the previous rank,
		// then forward to the next.
		if n > 1 {
			for off := 0; off < n; off++ {
				r := (root + off) % n
				if off > 0 {
					progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpRecv, Peer: (root + off - 1) % n, MTag: base + off - 1})
				}
				if off < n-1 {
					progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpSend, Peer: (root + off + 1) % n, Bytes: bytes, MTag: base + off})
				}
			}
		}
		// Trailing update compute scales with remaining matrix.
		dur := netsim.Time(float64(6*netsim.Millisecond) * frac * frac)
		for r := 0; r < n; r++ {
			progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpCompute, Dur: dur})
		}
	}
	return &Trace{Name: fmt.Sprintf("HPL-%d", n), Ranks: n, Programs: progs}
}

// MiniFE models the miniFE finite-element proxy: a CG solve — like
// HPCG but with a heavier halo and three allreduces per iteration.
func MiniFE(n int) *Trace {
	var tg tagger
	progs := make([][]netsim.Op, n)
	const iters = 20
	for it := 0; it < iters; it++ {
		sweep := HaloExchange2D(n, 128*1024, 1, 0)
		shift := tg.phase() * 16
		for r := 0; r < n; r++ {
			for _, op := range sweep.Programs[r] {
				op.MTag += shift
				progs[r] = append(progs[r], op)
			}
			progs[r] = append(progs[r], netsim.Op{Kind: netsim.OpCompute, Dur: 4 * netsim.Millisecond})
		}
		for d := 0; d < 3; d++ {
			ar := AllreduceRing(n, 64, 1, &tg)
			for r := 0; r < n; r++ {
				progs[r] = append(progs[r], ar.Programs[r]...)
			}
		}
	}
	return &Trace{Name: fmt.Sprintf("miniFE-%d", n), Ranks: n, Programs: progs}
}

// IMBAlltoall is the Fig. 13 benchmark at Table IV scale.
func IMBAlltoall(n int) *Trace {
	t := Alltoall(n, 128*1024, 12)
	t.Name = fmt.Sprintf("IMB-Alltoall-%d", n)
	return t
}

// ByName builds a named Table IV application for n ranks.
func ByName(name string, n int) (*Trace, error) {
	switch name {
	case "HPCG":
		return HPCG(n), nil
	case "HPL":
		return HPL(n), nil
	case "miniGhost":
		return MiniGhost(n), nil
	case "miniFE":
		return MiniFE(n), nil
	case "IMB":
		return IMBAlltoall(n), nil
	default:
		return nil, fmt.Errorf("workload: unknown application %q (valid: %s)",
			name, strings.Join(TableIVApps(), ", "))
	}
}

// ByNameMust is ByName for tests/tools that prefer a panic.
func ByNameMust(name string, n int) *Trace {
	t, err := ByName(name, n)
	if err != nil {
		panic(err)
	}
	return t
}

// TableIVApps lists the applications of Table IV in paper order.
func TableIVApps() []string { return []string{"HPCG", "HPL", "miniGhost", "miniFE", "IMB"} }
