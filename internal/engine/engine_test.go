package engine

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

// recorder collects fired event identifiers.
type recorder struct{ got []int64 }

func (r *recorder) OnEvent(_ Time, ev Event) { r.got = append(r.got, ev.A) }

func TestEqualTimeEventsFireInScheduleOrder(t *testing.T) {
	e := New()
	r := &recorder{}
	e.Schedule(30, r, Event{A: 3})
	e.Schedule(10, r, Event{A: 1})
	e.Schedule(20, r, Event{A: 2})
	e.Schedule(10, r, Event{A: 11}) // same time: scheduling order
	e.Schedule(10, r, Event{A: 12})
	e.Run(0)
	want := []int64{1, 11, 12, 2, 3}
	if len(r.got) != len(want) {
		t.Fatalf("fired %v, want %v", r.got, want)
	}
	for i := range want {
		if r.got[i] != want[i] {
			t.Fatalf("order = %v, want %v", r.got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("final time = %d, want 30", e.Now())
	}
	if e.Events() != 5 {
		t.Errorf("events = %d, want 5", e.Events())
	}
}

func TestCancelledEventsNeverFire(t *testing.T) {
	e := New()
	r := &recorder{}
	h1 := e.Schedule(10, r, Event{A: 1})
	e.Schedule(20, r, Event{A: 2})
	h3 := e.Schedule(30, r, Event{A: 3})
	if !e.Cancel(h1) {
		t.Fatal("cancel of pending event returned false")
	}
	if e.Cancel(h1) {
		t.Error("double cancel returned true")
	}
	e.Run(0)
	if len(r.got) != 2 || r.got[0] != 2 || r.got[1] != 3 {
		t.Fatalf("fired %v, want [2 3]", r.got)
	}
	// Cancelling after firing is a safe no-op.
	if e.Cancel(h3) {
		t.Error("cancel of fired event returned true")
	}
	// The zero Handle is never live.
	if e.Cancel(Handle{}) {
		t.Error("cancel of zero Handle returned true")
	}
}

func TestCancelHandleInvalidatedBySlotReuse(t *testing.T) {
	e := New()
	r := &recorder{}
	h1 := e.Schedule(10, r, Event{A: 1})
	e.Cancel(h1)
	// The slot is recycled for a new event; the old handle must not be
	// able to cancel it.
	e.Schedule(20, r, Event{A: 2})
	if e.Cancel(h1) {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	e.Run(0)
	if len(r.got) != 1 || r.got[0] != 2 {
		t.Fatalf("fired %v, want [2]", r.got)
	}
}

func TestRescheduleMovesAndReorders(t *testing.T) {
	e := New()
	r := &recorder{}
	h1 := e.Schedule(10, r, Event{A: 1})
	e.Schedule(20, r, Event{A: 2})
	if !e.Reschedule(h1, 20) {
		t.Fatal("reschedule of pending event failed")
	}
	// Rescheduling consumes a fresh sequence number: the moved event
	// now fires AFTER the one already at t=20.
	e.Run(0)
	if len(r.got) != 2 || r.got[0] != 2 || r.got[1] != 1 {
		t.Fatalf("fired %v, want [2 1]", r.got)
	}
	if e.Reschedule(h1, 30) {
		t.Error("reschedule of fired event returned true")
	}
}

func TestRunLimitStopsBeforeFutureEvents(t *testing.T) {
	e := New()
	fired := false
	e.At(100, func() { fired = true })
	e.Run(50)
	if fired {
		t.Error("event beyond limit fired")
	}
	if e.Now() != 50 {
		t.Errorf("now = %d, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestCallbacksAndClosures(t *testing.T) {
	e := New()
	var order []string
	cb := FuncCB(func() { order = append(order, "cb") })
	e.Post(5, cb)
	e.After(10, func() { order = append(order, "after") })
	e.Run(0)
	if len(order) != 2 || order[0] != "cb" || order[1] != "after" {
		t.Fatalf("order = %v", order)
	}
}

// TestHeapAgainstReference drives the indexed heap with random
// schedules and cancellations, checking the fired sequence against a
// sorted reference.
func TestHeapAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := New()
	r := &recorder{}
	type ref struct {
		at  Time
		seq int64
		id  int64
	}
	var want []ref
	handles := map[int64]Handle{}
	var id int64
	for i := 0; i < 2000; i++ {
		if rng.Intn(4) == 0 && len(want) > 0 {
			k := rng.Intn(len(want))
			victim := want[k]
			if e.Cancel(handles[victim.id]) {
				want = append(want[:k], want[k+1:]...)
			}
			continue
		}
		id++
		at := Time(rng.Intn(500))
		hd := e.Schedule(at, r, Event{A: id})
		handles[id] = hd
		want = append(want, ref{at: at, seq: int64(i), id: id})
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
	e.Run(0)
	if len(r.got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(r.got), len(want))
	}
	for i := range want {
		if r.got[i] != want[i].id {
			t.Fatalf("position %d: fired %d, want %d", i, r.got[i], want[i].id)
		}
	}
}

// nopHandler reschedules itself n times — the steady-state loop shape.
type nopHandler struct{ e *Engine }

func (h *nopHandler) OnEvent(now Time, ev Event) {
	if ev.A > 0 {
		h.e.ScheduleAfter(10, h, Event{A: ev.A - 1})
	}
}

// TestSteadyStateLoopAllocatesNothing is the zero-allocation guard:
// once the slab and heap have grown to the working set, scheduling,
// firing, cancelling, and rescheduling allocate nothing.
func TestSteadyStateLoopAllocatesNothing(t *testing.T) {
	e := New()
	h := &nopHandler{e: e}
	// Warm the slab/heap/free list.
	e.Schedule(0, h, Event{A: 64})
	e.Run(0)
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(e.Now(), h, Event{A: 256})
		e.Run(0)
		hd := e.ScheduleAfter(5, h, Event{})
		e.Reschedule(hd, e.Now()+9)
		e.Cancel(hd)
	})
	if allocs > 0 {
		t.Errorf("steady-state loop allocates %.1f allocs/run, want 0", allocs)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	e := New()
	h := &nopHandler{e: e}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now(), h, Event{A: 32})
		e.Run(0)
	}
}

func BenchmarkCancel(b *testing.B) {
	e := New()
	h := &nopHandler{e: e}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hd := e.ScheduleAfter(1000, h, Event{})
		e.Cancel(hd)
	}
}

// selfArming reschedules itself forever — the adversarial workload for
// cancellation: without a stop flag, Run(0) would never return.
type selfArming struct {
	e     *Engine
	flag  *atomic.Bool
	raise int64 // raise the flag after this many fired events
}

func (s *selfArming) OnEvent(now Time, ev Event) {
	if s.raise > 0 && s.e.Events() == s.raise {
		s.flag.Store(true)
	}
	s.e.Schedule(now+1, s, Event{})
}

// TestRunStopsWithinStride pins the cancellation contract: once the
// stop flag is raised, Run fires at most one stride of further events
// before returning.
func TestRunStopsWithinStride(t *testing.T) {
	const stride = 64
	e := New()
	var flag atomic.Bool
	h := &selfArming{e: e, flag: &flag, raise: 10}
	e.SetStop(&flag, stride)
	e.Schedule(0, h, Event{})
	e.Run(0)
	if !e.Stopped() {
		t.Fatal("engine does not report a stopped run")
	}
	fired := e.Events() - h.raise
	if fired > stride {
		t.Errorf("fired %d events after the flag was raised, want <= %d", fired, stride)
	}
	if e.Pending() == 0 {
		t.Error("queue drained; the workload should be infinite")
	}
}

// TestRunPresetStopFiresNothing: a flag already raised stops Run
// before the first event.
func TestRunPresetStopFiresNothing(t *testing.T) {
	e := New()
	var flag atomic.Bool
	flag.Store(true)
	h := &selfArming{e: e, flag: &flag}
	e.SetStop(&flag, 0)
	e.Schedule(0, h, Event{})
	e.Run(0)
	if e.Events() != 0 {
		t.Errorf("fired %d events with a pre-raised stop flag", e.Events())
	}
	if !e.Stopped() {
		t.Error("engine does not report a stopped run")
	}
}

// TestRunAfterStopDetached: detaching the flag (SetStop(nil, 0))
// restores plain Run semantics.
func TestRunAfterStopDetached(t *testing.T) {
	e := New()
	var flag atomic.Bool
	flag.Store(true)
	e.SetStop(&flag, 1)
	r := &recorder{}
	e.Schedule(5, r, Event{A: 1})
	e.Run(0)
	if len(r.got) != 0 {
		t.Fatal("event fired under a raised flag")
	}
	e.SetStop(nil, 0)
	e.Run(0)
	if len(r.got) != 1 {
		t.Fatalf("got %d events after detaching the stop flag, want 1", len(r.got))
	}
	if e.Stopped() {
		t.Error("Stopped still true after a drained run")
	}
}
