// Package engine is a zero-allocation, cancellable discrete-event
// scheduler — the execution core under the packet-level simulator.
//
// Design, in the style of high-rate simulators:
//
//   - Events are typed records (a Handler interface plus an inline
//     payload), not heap-allocated closures. Scheduling an event in
//     steady state allocates nothing: records live in a slab recycled
//     through a free list, and the indexed binary heap orders record
//     indices, not records.
//   - Every scheduled event returns a Handle with O(log n) Cancel and
//     Reschedule. Producers that re-arm timers (TCP RTO, rate pacers)
//     cancel the pending record instead of letting stale events fire
//     as no-ops.
//   - Equal-time events fire in scheduling order (time, then a
//     monotonic sequence number), so runs are bit-for-bit
//     deterministic. Reschedule assigns a fresh sequence number,
//     making it semantically identical to Cancel followed by Schedule.
//
// A closure convenience API (At/After) remains for cold paths such as
// measurement sampling; it rides the same typed machinery through an
// internal function-calling handler.
//
// Cancellation: Run can be stopped from outside the event loop via a
// cooperative stop flag (SetStop). The flag is checked every
// StopStride fired events — not per event — so the hot loop stays
// branch-cheap and a cancelled run halts within one stride.
package engine

import "sync/atomic"

// Time is simulation time in picoseconds. Integer picoseconds make
// 10 Gbps arithmetic exact (0.8 ns/byte = 800 ps/byte) and cover ~106
// days in an int64.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a Time to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is the inline payload of a scheduled occurrence. Kind
// discriminates event types within one handler; A and B carry integer
// arguments and Ptr a single reference — enough for every event in the
// simulator without a per-event allocation.
type Event struct {
	Kind int32
	A, B int64
	Ptr  any
}

// Handler consumes fired events. Implementations are long-lived
// simulation objects (a network, a switch, a transport connection), so
// storing one in an event record never allocates.
type Handler interface {
	OnEvent(now Time, ev Event)
}

// Callback is a deferred handler invocation — a (Handler, Event) pair
// that APIs like mailboxes can store and schedule later via Post.
type Callback struct {
	H  Handler
	Ev Event
}

// funcHandler invokes a stored closure; it backs the At/After/FuncCB
// convenience API. The zero-size value boxes without allocating.
type funcHandler struct{}

func (funcHandler) OnEvent(_ Time, ev Event) { ev.Ptr.(func())() }

// FuncCB wraps a closure as a Callback.
func FuncCB(fn func()) Callback { return Callback{H: funcHandler{}, Ev: Event{Ptr: fn}} }

// Handle identifies a pending event for Cancel/Reschedule. The zero
// Handle is never live, so uninitialised fields are safe to cancel.
type Handle struct {
	slot int32
	gen  uint32
}

// record is one slab entry. pos tracks the record's index in the heap
// (-1 when free); gen increments on every release so stale Handles die.
type record struct {
	at  Time
	seq int64
	h   Handler
	ev  Event
	gen uint32
	pos int32
}

// StopStride is the default number of events fired between checks of
// the cooperative stop flag during Run. Large enough that the check is
// free relative to event dispatch, small enough that cancellation
// lands in microseconds of wall clock.
const StopStride = 4096

// Engine is the scheduler. The zero value is ready to use; New exists
// as the conventional constructor.
type Engine struct {
	now   Time
	seq   int64
	fired int64
	recs  []record
	free  []int32
	heap  []int32

	// stop, when non-nil, is polled every stride fired events by Run;
	// a true load makes Run return early (Stopped reports this).
	stop    *atomic.Bool
	stride  int64
	stopped bool
}

// New returns a scheduler at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() int64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.heap) }

// NextAt returns the timestamp of the earliest pending event. ok is
// false when the queue is empty. Conservative parallel executors use
// this to pick the next safe window start without firing anything.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.recs[e.heap[0]].at, true
}

// Schedule arranges for h.OnEvent(ev) to run at absolute time t
// (clamped to now). Equal-time events run in scheduling order.
func (e *Engine) Schedule(t Time, h Handler, ev Event) Handle {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.recs = append(e.recs, record{gen: 1, pos: -1})
		slot = int32(len(e.recs) - 1)
	}
	r := &e.recs[slot]
	r.at, r.seq, r.h, r.ev = t, e.seq, h, ev
	e.heapPush(slot)
	return Handle{slot: slot, gen: r.gen}
}

// ScheduleAfter schedules d after now.
func (e *Engine) ScheduleAfter(d Time, h Handler, ev Event) Handle {
	return e.Schedule(e.now+d, h, ev)
}

// Post schedules a stored Callback at absolute time t.
func (e *Engine) Post(t Time, cb Callback) Handle { return e.Schedule(t, cb.H, cb.Ev) }

// At schedules fn at absolute time t (closure convenience; cold paths).
func (e *Engine) At(t Time, fn func()) { e.Schedule(t, funcHandler{}, Event{Ptr: fn}) }

// After schedules fn d after now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// live reports whether hd names a still-pending event.
func (e *Engine) live(hd Handle) bool {
	return hd.gen != 0 && int(hd.slot) < len(e.recs) &&
		e.recs[hd.slot].gen == hd.gen && e.recs[hd.slot].pos >= 0
}

// Cancel removes a pending event so it never fires. It reports whether
// the event was still pending; cancelling an already-fired, already-
// cancelled, or zero Handle is a safe no-op.
func (e *Engine) Cancel(hd Handle) bool {
	if !e.live(hd) {
		return false
	}
	e.heapRemove(int(e.recs[hd.slot].pos))
	e.release(hd.slot)
	return true
}

// Reschedule moves a pending event to absolute time t with fresh
// equal-time ordering, exactly as if it were cancelled and scheduled
// anew (one sequence number is consumed either way). It reports false
// when the handle is no longer live.
func (e *Engine) Reschedule(hd Handle, t Time) bool {
	if !e.live(hd) {
		return false
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	r := &e.recs[hd.slot]
	r.at, r.seq = t, e.seq
	e.fix(int(r.pos))
	return true
}

// release recycles a slot onto the free list, clearing references so
// the GC can reclaim payloads, and invalidates outstanding handles.
func (e *Engine) release(slot int32) {
	r := &e.recs[slot]
	r.h, r.ev, r.pos = nil, Event{}, -1
	r.gen++
	e.free = append(e.free, slot)
}

// Step runs the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	slot := e.heapRemove(0)
	r := &e.recs[slot]
	e.now = r.at
	h, ev := r.h, r.ev
	e.release(slot)
	e.fired++
	h.OnEvent(e.now, ev)
	return true
}

// SetStop installs a cooperative cancellation flag: Run polls it every
// stride fired events (stride <= 0 means StopStride) and returns early
// once it loads true. A nil flag detaches cancellation. The flag is
// the only engine state ever touched from another goroutine, which is
// what makes an atomic sufficient.
func (e *Engine) SetStop(flag *atomic.Bool, stride int64) {
	if stride <= 0 {
		stride = StopStride
	}
	e.stop, e.stride = flag, stride
}

// Stopped reports whether the last Run returned because the stop flag
// was raised (as opposed to draining the queue or hitting its limit).
// It keeps reporting the last run's outcome after the flag is
// detached.
func (e *Engine) Stopped() bool { return e.stopped }

// Run executes events until the queue drains or the time limit passes
// (limit 0 = no limit). If a stop flag is installed (SetStop), it is
// checked before the first event and then every stride events, so a
// cancelled run halts within one stride. Run returns the final
// simulation time.
func (e *Engine) Run(limit Time) Time {
	e.stopped = false
	if e.stop != nil && e.stop.Load() {
		e.stopped = true
		return e.now
	}
	check := e.fired + e.stride
	for len(e.heap) > 0 {
		if limit > 0 && e.recs[e.heap[0]].at > limit {
			e.now = limit
			break
		}
		e.Step()
		if e.stop != nil && e.fired >= check {
			if e.stop.Load() {
				e.stopped = true
				break
			}
			check = e.fired + e.stride
		}
	}
	return e.now
}

// --- indexed binary heap over record slots --------------------------

func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.recs[a], &e.recs[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

func (e *Engine) swap(i, j int) {
	h := e.heap
	h[i], h[j] = h[j], h[i]
	e.recs[h[i]].pos = int32(i)
	e.recs[h[j]].pos = int32(j)
}

func (e *Engine) heapPush(slot int32) {
	e.heap = append(e.heap, slot)
	i := len(e.heap) - 1
	e.recs[slot].pos = int32(i)
	e.siftUp(i)
}

// heapRemove deletes the element at heap index i, returning its slot.
func (e *Engine) heapRemove(i int) int32 {
	h := e.heap
	n := len(h) - 1
	slot := h[i]
	if i != n {
		h[i] = h[n]
		e.recs[h[i]].pos = int32(i)
	}
	h[n] = 0
	e.heap = h[:n]
	if i < n {
		e.fix(i)
	}
	e.recs[slot].pos = -1
	return slot
}

// fix restores heap order for a changed element at index i.
func (e *Engine) fix(i int) {
	e.siftDown(i)
	e.siftUp(i)
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(h[i], h[p]) {
			break
		}
		e.swap(i, p)
		i = p
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.less(h[r], h[l]) {
			m = r
		}
		if !e.less(h[m], h[i]) {
			break
		}
		e.swap(i, m)
		i = m
	}
}
