package topology

import "fmt"

// FatTree builds a standard k-ary fat-tree (Al-Fares et al., SIGCOMM'08):
// k pods, each with k/2 edge and k/2 aggregation switches, (k/2)^2 core
// switches, and (k/2)^2 * k hosts. k must be even and >= 2.
//
// Coordinates: core switches carry {0, i, j} (core grid position), pod
// switches carry {layer, pod, index} with layer 1 = aggregation and
// layer 2 = edge; hosts carry {3, pod, edge, slot}.
func FatTree(k int) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: FatTree(%d): k must be even and >= 2", k))
	}
	g := New(fmt.Sprintf("fattree-k%d", k))
	half := k / 2

	core := make([][]int, half)
	for i := 0; i < half; i++ {
		core[i] = make([]int, half)
		for j := 0; j < half; j++ {
			core[i][j] = g.AddSwitch(fmt.Sprintf("core-%d-%d", i, j), 0, i, j)
		}
	}
	agg := make([][]int, k)
	edge := make([][]int, k)
	for p := 0; p < k; p++ {
		agg[p] = make([]int, half)
		edge[p] = make([]int, half)
		for i := 0; i < half; i++ {
			agg[p][i] = g.AddSwitch(fmt.Sprintf("agg-%d-%d", p, i), 1, p, i)
			edge[p][i] = g.AddSwitch(fmt.Sprintf("edge-%d-%d", p, i), 2, p, i)
		}
	}
	// Aggregation i in each pod connects to core row i.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				g.Connect(agg[p][i], core[i][j])
			}
			for e := 0; e < half; e++ {
				g.Connect(agg[p][i], edge[p][e])
			}
		}
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for s := 0; s < half; s++ {
				h := g.AddHost(fmt.Sprintf("h-%d-%d-%d", p, e, s), 3, p, e, s)
				g.Connect(edge[p][e], h)
			}
		}
	}
	return g
}

// Dragonfly builds a Dragonfly (Kim et al., ISCA'08) with a routers per
// group, g groups, h global links per router, and p hosts per router.
// Routers within a group form a complete graph; global link l of router
// r in group grp connects toward group (grp + r*h + l + 1) mod g using
// the standard palmtree-style arrangement. g must satisfy g <= a*h + 1;
// when g == a*h+1 the global graph is a complete group graph.
//
// Coordinates: switches carry {group, router}; hosts carry
// {group, router, slot}.
func Dragonfly(a, g, h, p int) *Graph {
	if a < 1 || g < 2 || h < 1 || p < 0 {
		panic(fmt.Sprintf("topology: Dragonfly(%d,%d,%d,%d): invalid parameters", a, g, h, p))
	}
	if g > a*h+1 {
		panic(fmt.Sprintf("topology: Dragonfly: g=%d exceeds a*h+1=%d", g, a*h+1))
	}
	gr := New(fmt.Sprintf("dragonfly-a%d-g%d-h%d", a, g, h))
	routers := make([][]int, g)
	for grp := 0; grp < g; grp++ {
		routers[grp] = make([]int, a)
		for r := 0; r < a; r++ {
			routers[grp][r] = gr.AddSwitch(fmt.Sprintf("r-%d-%d", grp, r), grp, r)
		}
	}
	// Intra-group complete graph.
	for grp := 0; grp < g; grp++ {
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				gr.Connect(routers[grp][i], routers[grp][j])
			}
		}
	}
	// Global links: each unordered pair of groups receives one link.
	// Every group owns a*h global-link slots (h per router); pair
	// (gi, gj) consumes the next free slot on each side, and the slot
	// index determines which router hosts the link (slot/h). With
	// g <= a*h+1 every group has enough slots for its g-1 peers, giving
	// the canonical fully-connected group graph.
	slot := make([]int, g)
	for gi := 0; gi < g; gi++ {
		for gj := gi + 1; gj < g; gj++ {
			ri := slot[gi] / h
			rj := slot[gj] / h
			slot[gi]++
			slot[gj]++
			gr.Connect(routers[gi][ri], routers[gj][rj])
		}
	}
	for grp := 0; grp < g; grp++ {
		for r := 0; r < a; r++ {
			for k := 0; k < p; k++ {
				hn := gr.AddHost(fmt.Sprintf("h-%d-%d-%d", grp, r, k), grp, r, k)
				gr.Connect(routers[grp][r], hn)
			}
		}
	}
	return gr
}

// Mesh2D builds a w x h 2D mesh with hostsPer hosts attached to each
// switch. Switch coordinates are {x, y}; hosts carry {x, y, slot}.
func Mesh2D(w, h, hostsPer int) *Graph {
	g := New(fmt.Sprintf("mesh2d-%dx%d", w, h))
	grid := gridSwitches(g, w, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x+1 < w {
				g.Connect(grid[x][y], grid[x+1][y])
			}
			if y+1 < h {
				g.Connect(grid[x][y], grid[x][y+1])
			}
		}
	}
	attachGridHosts(g, grid, hostsPer)
	return g
}

// Torus2D builds a w x h 2D torus (wrap-around mesh). For w or h equal
// to 2 the wrap link would duplicate the mesh link, so it is skipped,
// matching common practice.
func Torus2D(w, h, hostsPer int) *Graph {
	g := New(fmt.Sprintf("torus2d-%dx%d", w, h))
	grid := gridSwitches(g, w, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			nx := (x + 1) % w
			ny := (y + 1) % h
			if w > 1 && (x+1 < w || w > 2) {
				g.Connect(grid[x][y], grid[nx][y])
			}
			if h > 1 && (y+1 < h || h > 2) {
				g.Connect(grid[x][y], grid[x][ny])
			}
		}
	}
	attachGridHosts(g, grid, hostsPer)
	return g
}

// Mesh3D builds an x*y*z 3D mesh. Switch coordinates are {i, j, k}.
func Mesh3D(x, y, z, hostsPer int) *Graph {
	g := New(fmt.Sprintf("mesh3d-%dx%dx%d", x, y, z))
	grid := grid3D(g, x, y, z)
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					g.Connect(grid[i][j][k], grid[i+1][j][k])
				}
				if j+1 < y {
					g.Connect(grid[i][j][k], grid[i][j+1][k])
				}
				if k+1 < z {
					g.Connect(grid[i][j][k], grid[i][j][k+1])
				}
			}
		}
	}
	attach3DHosts(g, grid, hostsPer)
	return g
}

// Torus3D builds an x*y*z 3D torus (wrap-around in all dimensions, wrap
// skipped on dimensions of size <= 2 as in Torus2D).
func Torus3D(x, y, z, hostsPer int) *Graph {
	g := New(fmt.Sprintf("torus3d-%dx%dx%d", x, y, z))
	grid := grid3D(g, x, y, z)
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if x > 1 && (i+1 < x || x > 2) {
					g.Connect(grid[i][j][k], grid[(i+1)%x][j][k])
				}
				if y > 1 && (j+1 < y || y > 2) {
					g.Connect(grid[i][j][k], grid[i][(j+1)%y][k])
				}
				if z > 1 && (k+1 < z || z > 2) {
					g.Connect(grid[i][j][k], grid[i][j][(k+1)%z])
				}
			}
		}
	}
	attach3DHosts(g, grid, hostsPer)
	return g
}

// BCube builds a BCube(n, k) (Guo et al., SIGCOMM'09): a server-centric
// topology with n^(k+1) hosts and (k+1)*n^k switches. Because BCube
// servers relay traffic, this model inserts a degree-(k+1) "host switch"
// in front of each server so the forwarding role of servers is
// preserved on an OpenFlow substrate; the server itself hangs off its
// host switch. Level-l switch coordinates are {l, index}; host switches
// carry {k+1, serverIndex}.
func BCube(n, k int) *Graph {
	if n < 2 || k < 0 {
		panic(fmt.Sprintf("topology: BCube(%d,%d): need n>=2, k>=0", n, k))
	}
	g := New(fmt.Sprintf("bcube-n%d-k%d", n, k))
	nHosts := pow(n, k+1)
	hostSw := make([]int, nHosts)
	for i := 0; i < nHosts; i++ {
		hostSw[i] = g.AddSwitch(fmt.Sprintf("hsw-%d", i), k+1, i)
	}
	for l := 0; l <= k; l++ {
		numSw := pow(n, k)
		for s := 0; s < numSw; s++ {
			sw := g.AddSwitch(fmt.Sprintf("sw-%d-%d", l, s), l, s)
			// Switch s at level l connects servers whose digit l varies.
			low := s % pow(n, l)
			high := s / pow(n, l)
			for d := 0; d < n; d++ {
				server := high*pow(n, l+1) + d*pow(n, l) + low
				g.Connect(sw, hostSw[server])
			}
		}
	}
	for i := 0; i < nHosts; i++ {
		h := g.AddHost(fmt.Sprintf("h-%d", i), i)
		g.Connect(hostSw[i], h)
	}
	return g
}

// HyperBCube builds a Hyper-BCube-style two-dimensional server-centric
// topology (after Lin et al., ICC'12): n rows by n*l columns of servers,
// each with two NICs. Level-0 switches join n row-adjacent servers into
// cells; level-1 switches join the n rows at each column. To keep every
// switch at radix n while remaining connected for l > 1, the cell
// boundaries in row r are rotated by r columns (a twisted layout — a
// simplified but structurally faithful variant of the published
// wiring). Host switches front each server as in BCube.
func HyperBCube(n, l int) *Graph {
	if n < 2 || l < 1 {
		panic(fmt.Sprintf("topology: HyperBCube(%d,%d): need n>=2, l>=1", n, l))
	}
	g := New(fmt.Sprintf("hyperbcube-n%d-l%d", n, l))
	rows := n
	cols := n * l
	hostSw := make([][]int, rows)
	for r := 0; r < rows; r++ {
		hostSw[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			hostSw[r][c] = g.AddSwitch(fmt.Sprintf("hsw-%d-%d", r, c), r, c)
		}
	}
	// Level-0: row r is split into l cells of n consecutive columns,
	// rotated by r so cells in adjacent rows overlap via the columns.
	for r := 0; r < rows; r++ {
		for cell := 0; cell < l; cell++ {
			sw := g.AddSwitch(fmt.Sprintf("sw0-%d-%d", r, cell), 100, r, cell)
			for i := 0; i < n; i++ {
				g.Connect(sw, hostSw[r][(cell*n+i+r)%cols])
			}
		}
	}
	// Level-1: each column is joined by a switch across rows.
	for c := 0; c < cols; c++ {
		sw := g.AddSwitch(fmt.Sprintf("sw1-%d", c), 101, c)
		for r := 0; r < rows; r++ {
			g.Connect(sw, hostSw[r][c])
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			h := g.AddHost(fmt.Sprintf("h-%d-%d", r, c), r, c)
			g.Connect(hostSw[r][c], h)
		}
	}
	return g
}

// Line builds n switches in a path, hostsPer hosts each. The paper's
// Fig. 10 latency topology is Line(8, 1).
func Line(n, hostsPer int) *Graph {
	g := New(fmt.Sprintf("line-%d", n))
	prev := -1
	for i := 0; i < n; i++ {
		s := g.AddSwitch(fmt.Sprintf("s%d", i), i)
		if prev >= 0 {
			g.Connect(prev, s)
		}
		for h := 0; h < hostsPer; h++ {
			hv := g.AddHost(fmt.Sprintf("h%d-%d", i, h), i, h)
			g.Connect(s, hv)
		}
		prev = s
	}
	return g
}

// Ring builds n switches in a cycle with hostsPer hosts each.
func Ring(n, hostsPer int) *Graph {
	g := New(fmt.Sprintf("ring-%d", n))
	sw := make([]int, n)
	for i := 0; i < n; i++ {
		sw[i] = g.AddSwitch(fmt.Sprintf("s%d", i), i)
	}
	for i := 0; i < n; i++ {
		if n > 1 && (i+1 < n || n > 2) {
			g.Connect(sw[i], sw[(i+1)%n])
		}
	}
	for i := 0; i < n; i++ {
		for h := 0; h < hostsPer; h++ {
			hv := g.AddHost(fmt.Sprintf("h%d-%d", i, h), i, h)
			g.Connect(sw[i], hv)
		}
	}
	return g
}

// Star builds one hub switch with n leaf switches, hostsPer hosts per leaf.
func Star(n, hostsPer int) *Graph {
	g := New(fmt.Sprintf("star-%d", n))
	hub := g.AddSwitch("hub", 0)
	for i := 0; i < n; i++ {
		leaf := g.AddSwitch(fmt.Sprintf("leaf%d", i), i+1)
		g.Connect(hub, leaf)
		for h := 0; h < hostsPer; h++ {
			hv := g.AddHost(fmt.Sprintf("h%d-%d", i, h), i, h)
			g.Connect(leaf, hv)
		}
	}
	return g
}

// FullMesh builds n switches, each pair directly linked, hostsPer hosts each.
func FullMesh(n, hostsPer int) *Graph {
	g := New(fmt.Sprintf("fullmesh-%d", n))
	sw := make([]int, n)
	for i := 0; i < n; i++ {
		sw[i] = g.AddSwitch(fmt.Sprintf("s%d", i), i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Connect(sw[i], sw[j])
		}
	}
	for i := 0; i < n; i++ {
		for h := 0; h < hostsPer; h++ {
			hv := g.AddHost(fmt.Sprintf("h%d-%d", i, h), i, h)
			g.Connect(sw[i], hv)
		}
	}
	return g
}

func gridSwitches(g *Graph, w, h int) [][]int {
	grid := make([][]int, w)
	for x := 0; x < w; x++ {
		grid[x] = make([]int, h)
		for y := 0; y < h; y++ {
			grid[x][y] = g.AddSwitch(fmt.Sprintf("s-%d-%d", x, y), x, y)
		}
	}
	return grid
}

func attachGridHosts(g *Graph, grid [][]int, hostsPer int) {
	for x := range grid {
		for y := range grid[x] {
			for k := 0; k < hostsPer; k++ {
				h := g.AddHost(fmt.Sprintf("h-%d-%d-%d", x, y, k), x, y, k)
				g.Connect(grid[x][y], h)
			}
		}
	}
}

func grid3D(g *Graph, x, y, z int) [][][]int {
	grid := make([][][]int, x)
	for i := 0; i < x; i++ {
		grid[i] = make([][]int, y)
		for j := 0; j < y; j++ {
			grid[i][j] = make([]int, z)
			for k := 0; k < z; k++ {
				grid[i][j][k] = g.AddSwitch(fmt.Sprintf("s-%d-%d-%d", i, j, k), i, j, k)
			}
		}
	}
	return grid
}

func attach3DHosts(g *Graph, grid [][][]int, hostsPer int) {
	for i := range grid {
		for j := range grid[i] {
			for k := range grid[i][j] {
				for n := 0; n < hostsPer; n++ {
					h := g.AddHost(fmt.Sprintf("h-%d-%d-%d-%d", i, j, k, n), i, j, k, n)
					g.Connect(grid[i][j][k], h)
				}
			}
		}
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
