package topology

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFatTreeCounts(t *testing.T) {
	// The paper: a k=4 fat-tree has 20 switches and 16 hosts (Fig. 1, §VII-C).
	cases := []struct {
		k, switches, hosts int
	}{
		{2, 5, 2},
		{4, 20, 16},
		{6, 45, 54},
		{8, 80, 128},
	}
	for _, c := range cases {
		g := FatTree(c.k)
		if got := g.NumSwitches(); got != c.switches {
			t.Errorf("FatTree(%d): switches = %d, want %d", c.k, got, c.switches)
		}
		if got := g.NumHosts(); got != c.hosts {
			t.Errorf("FatTree(%d): hosts = %d, want %d", c.k, got, c.hosts)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("FatTree(%d): %v", c.k, err)
		}
		if g.Radix() != c.k {
			t.Errorf("FatTree(%d): radix = %d, want %d", c.k, g.Radix(), c.k)
		}
	}
}

func TestFatTreeK4Links(t *testing.T) {
	// Standard k=4 fat-tree: 32 switch-switch links + 16 host links = 48
	// cables ("48 cables to deploy a standard Fat-Tree topology", §I).
	g := FatTree(4)
	if got := len(g.Edges); got != 48 {
		t.Errorf("FatTree(4): links = %d, want 48", got)
	}
	if got := len(g.SwitchSwitchEdges()); got != 32 {
		t.Errorf("FatTree(4): switch-switch links = %d, want 32", got)
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FatTree(3) did not panic")
		}
	}()
	FatTree(3)
}

func TestDragonflyStructure(t *testing.T) {
	// Paper's evaluation config: a=4, g=9, h=2.
	g := Dragonfly(4, 9, 2, 1)
	if got := g.NumSwitches(); got != 36 {
		t.Errorf("Dragonfly(4,9,2): switches = %d, want 36", got)
	}
	if got := g.NumHosts(); got != 36 {
		t.Errorf("Dragonfly(4,9,2,1): hosts = %d, want 36", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every pair of groups must be joined by exactly one global link.
	global := map[[2]int]int{}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		ga, gb := g.Vertices[e.A].Coord[0], g.Vertices[e.B].Coord[0]
		if ga == gb {
			continue
		}
		if ga > gb {
			ga, gb = gb, ga
		}
		global[[2]int{ga, gb}]++
	}
	if len(global) != 36 { // C(9,2)
		t.Errorf("Dragonfly group pairs connected = %d, want 36", len(global))
	}
	for pair, n := range global {
		if n != 1 {
			t.Errorf("groups %v joined by %d links, want 1", pair, n)
		}
	}
	// Intra-group: complete graph over a=4 routers -> degree 3 local.
	// Router degree = (a-1) local + at most h global + p hosts.
	for _, s := range g.Switches() {
		if d := g.Degree(s); d > 3+2+1 {
			t.Errorf("router %d degree %d exceeds a-1+h+p", s, d)
		}
	}
}

func TestDragonflyGlobalSlotCapacity(t *testing.T) {
	// No router may carry more than h global links.
	for _, tc := range [][4]int{{4, 9, 2, 1}, {2, 5, 2, 1}, {3, 7, 2, 2}, {4, 4, 1, 1}} {
		g := Dragonfly(tc[0], tc[1], tc[2], tc[3])
		globalPerRouter := map[int]int{}
		for _, eid := range g.SwitchSwitchEdges() {
			e := g.Edges[eid]
			if g.Vertices[e.A].Coord[0] != g.Vertices[e.B].Coord[0] {
				globalPerRouter[e.A]++
				globalPerRouter[e.B]++
			}
		}
		for r, n := range globalPerRouter {
			if n > tc[2] {
				t.Errorf("Dragonfly%v: router %d has %d global links > h=%d", tc, r, n, tc[2])
			}
		}
	}
}

func TestMeshTorusDegrees(t *testing.T) {
	m := Mesh2D(4, 4, 0)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.SwitchSwitchEdges()); got != 24 {
		t.Errorf("Mesh2D(4,4) links = %d, want 24", got)
	}
	tor := Torus2D(4, 4, 0)
	if got := len(tor.SwitchSwitchEdges()); got != 32 {
		t.Errorf("Torus2D(4,4) links = %d, want 32", got)
	}
	for _, s := range tor.Switches() {
		if d := tor.Degree(s); d != 4 {
			t.Errorf("Torus2D(4,4) switch %d degree = %d, want 4", s, d)
		}
	}
	t3 := Torus3D(4, 4, 4, 0)
	if got := t3.NumSwitches(); got != 64 {
		t.Errorf("Torus3D(4,4,4) switches = %d, want 64", got)
	}
	for _, s := range t3.Switches() {
		if d := t3.Degree(s); d != 6 {
			t.Errorf("Torus3D switch %d degree = %d, want 6", s, d)
		}
	}
	// 5x5 2D-Torus (paper Table IV workload).
	t5 := Torus2D(5, 5, 1)
	if got := t5.NumSwitches(); got != 25 {
		t.Errorf("Torus2D(5,5) switches = %d, want 25", got)
	}
	if err := t5.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusSmallDimensionNoParallelEdges(t *testing.T) {
	// Wrap links on dimension of size 2 would duplicate mesh links.
	g := Torus2D(2, 3, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, eid := range g.SwitchSwitchEdges() {
		e := g.Edges[eid]
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if seen[key] {
			t.Errorf("parallel edge between %d and %d", a, b)
		}
		seen[key] = true
	}
}

func TestBCube(t *testing.T) {
	g := BCube(4, 1)
	// BCube(4,1): 16 servers, 2 levels x 4 switches.
	if got := g.NumHosts(); got != 16 {
		t.Errorf("BCube(4,1) hosts = %d, want 16", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.SwitchSubgraphConnected() {
		t.Error("BCube switch subgraph not connected")
	}
}

func TestHyperBCube(t *testing.T) {
	g := HyperBCube(2, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumHosts(); got != 8 {
		t.Errorf("HyperBCube(2,2) hosts = %d, want 8", got)
	}
	if !g.SwitchSubgraphConnected() {
		t.Error("HyperBCube switch subgraph not connected")
	}
}

func TestLineRingStar(t *testing.T) {
	l := Line(8, 1)
	if got := l.Diameter(); got != 7 {
		t.Errorf("Line(8) diameter = %d, want 7", got)
	}
	r := Ring(6, 1)
	if got := r.Diameter(); got != 3 {
		t.Errorf("Ring(6) diameter = %d, want 3", got)
	}
	s := Star(5, 2)
	if got := s.Diameter(); got != 2 {
		t.Errorf("Star(5) diameter = %d, want 2", got)
	}
	f := FullMesh(5, 1)
	if got := f.Diameter(); got != 1 {
		t.Errorf("FullMesh(5) diameter = %d, want 1", got)
	}
}

func TestValidateCatchesPortConflicts(t *testing.T) {
	g := New("bad")
	a := g.AddSwitch("a")
	b := g.AddSwitch("b")
	c := g.AddSwitch("c")
	g.ConnectPorts(a, 1, b, 1)
	g.ConnectPorts(a, 1, c, 1) // port 1 on a reused
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted duplicate port use")
	}
}

func TestValidateCatchesDuplicateLabels(t *testing.T) {
	g := New("bad")
	g.AddSwitch("x")
	g.AddSwitch("x")
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted duplicate labels")
	}
}

func TestValidateCatchesMultiHomedHost(t *testing.T) {
	g := New("bad")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	h := g.AddHost("h")
	g.Connect(s1, h)
	g.Connect(s2, h)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted multi-homed host")
	}
}

func TestHostSwitchAndAttachedHosts(t *testing.T) {
	g := Line(3, 2)
	for _, h := range g.Hosts() {
		s := g.HostSwitch(h)
		if s < 0 {
			t.Fatalf("host %d has no switch", h)
		}
		found := false
		for _, hh := range g.AttachedHosts(s) {
			if hh == h {
				found = true
			}
		}
		if !found {
			t.Errorf("host %d missing from AttachedHosts(%d)", h, s)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New("two-islands")
	a := g.AddSwitch("a")
	b := g.AddSwitch("b")
	c := g.AddSwitch("c")
	d := g.AddSwitch("d")
	g.Connect(a, b)
	g.Connect(c, d)
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if g.SwitchSubgraphConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestShortestPathsAndDiameter(t *testing.T) {
	g := Torus2D(4, 4, 0)
	// Torus 4x4 diameter is 2+2 = 4.
	if got := g.Diameter(); got != 4 {
		t.Errorf("Torus2D(4,4) diameter = %d, want 4", got)
	}
	dist := g.ShortestPaths(g.Switches()[0])
	for _, s := range g.Switches() {
		if dist[s] < 0 || dist[s] > 4 {
			t.Errorf("distance to %d = %d out of range", s, dist[s])
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	orig := FatTree(4)
	var buf bytes.Buffer
	if err := orig.ToConfig().WriteConfig(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSwitches() != orig.NumSwitches() || g.NumHosts() != orig.NumHosts() || len(g.Edges) != len(orig.Edges) {
		t.Errorf("round trip changed shape: %v vs %v", g.Summary(), orig.Summary())
	}
	// Ports must survive exactly.
	for i, e := range g.Edges {
		oe := orig.Edges[i]
		if e.APort != oe.APort || e.BPort != oe.BPort {
			t.Fatalf("edge %d ports changed: %+v vs %+v", i, e, oe)
		}
	}
}

func TestConfigGenerators(t *testing.T) {
	cases := []Config{
		{Name: "ft", Generator: "fattree", Params: []int{4}},
		{Name: "df", Generator: "dragonfly", Params: []int{4, 9, 2, 1}},
		{Name: "t2", Generator: "torus2d", Params: []int{5, 5, 1}},
		{Name: "t3", Generator: "torus3d", Params: []int{4, 4, 4, 1}},
		{Name: "m2", Generator: "mesh2d", Params: []int{3, 3, 1}},
		{Name: "m3", Generator: "mesh3d", Params: []int{2, 2, 2, 1}},
		{Name: "bc", Generator: "bcube", Params: []int{4, 1}},
		{Name: "hb", Generator: "hyperbcube", Params: []int{2, 2}},
		{Name: "ln", Generator: "line", Params: []int{8, 1}},
		{Name: "rg", Generator: "ring", Params: []int{6, 1}},
		{Name: "st", Generator: "star", Params: []int{4, 1}},
		{Name: "fm", Generator: "fullmesh", Params: []int{4, 1}},
	}
	for _, c := range cases {
		g, err := c.Build()
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		if g.Name != c.Name {
			t.Errorf("generator %s: name = %q, want %q", c.Generator, g.Name, c.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []Config{
		{Name: "x", Generator: "nope"},
		{Name: "x", Generator: "fattree", Params: []int{1, 2}},
		{Name: "x", Switches: []string{"a", "a"}},
		{Name: "x", Switches: []string{"a"}, Links: []LinkConfig{{A: "a", B: "zz"}}},
		{Name: "x", Switches: []string{"a", "b"}, Links: []LinkConfig{{A: "a", B: "b", APort: 1}}},
	}
	for i, c := range bad {
		if _, err := c.Build(); err == nil {
			t.Errorf("case %d: Build accepted invalid config", i)
		}
	}
}

func TestZooProperties(t *testing.T) {
	zoo := Zoo(42)
	if len(zoo) != ZooSize {
		t.Fatalf("zoo size = %d, want %d", len(zoo), ZooSize)
	}
	for _, g := range zoo {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !g.SwitchSubgraphConnected() {
			t.Errorf("%s: not connected", g.Name)
		}
		n := g.NumSwitches()
		if n < 4 || n > 196 {
			t.Errorf("%s: %d switches outside zoo range", g.Name, n)
		}
	}
	// Determinism.
	again := Zoo(42)
	for i := range zoo {
		if zoo[i].Summary() != again[i].Summary() {
			t.Fatalf("zoo not deterministic at %d", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := FatTree(4)
	c := g.Clone()
	c.AddSwitch("extra")
	c.Connect(0, len(c.Vertices)-1)
	if len(c.Vertices) == len(g.Vertices) || len(c.Edges) == len(g.Edges) {
		t.Error("clone shares structure with original")
	}
	if g.Vertices[0].Coord != nil && &g.Vertices[0].Coord[0] == &c.Vertices[0].Coord[0] {
		t.Error("clone shares coord storage")
	}
}

// Property: for any random WAN graph, the sum of degrees equals twice the
// edge count, and every edge's ports are consistent under Other/PortAt.
func TestQuickDegreeSum(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := 2 + int(nRaw)%40
		extra := int(extraRaw) % 20
		g := RandomWAN("q", n, extra, seed)
		sum := 0
		for i := range g.Vertices {
			sum += g.Degree(i)
		}
		if sum != 2*len(g.Edges) {
			return false
		}
		for _, e := range g.Edges {
			if e.Other(e.A) != e.B || e.Other(e.B) != e.A {
				return false
			}
			if e.PortAt(e.A) != e.APort || (e.A != e.B && e.PortAt(e.B) != e.BPort) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: RandomWAN is always connected and validates.
func TestQuickRandomWANValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%60
		g := RandomWAN("q", n, n/3, seed)
		return g.Validate() == nil && g.SwitchSubgraphConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: config round-trip preserves the structural summary for
// arbitrary random graphs.
func TestQuickConfigRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%30
		g := RandomWAN("q", n, n/4, seed)
		var buf bytes.Buffer
		if err := g.ToConfig().WriteConfig(&buf); err != nil {
			return false
		}
		c, err := ReadConfig(&buf)
		if err != nil {
			return false
		}
		g2, err := c.Build()
		if err != nil {
			return false
		}
		return g2.Summary() == g.Summary()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSwitchPortCountExcludesHosts(t *testing.T) {
	g := Line(3, 2) // 2 switch links -> 4 switch ports; 6 host links excluded
	if got := g.SwitchPortCount(); got != 4 {
		t.Errorf("SwitchPortCount = %d, want 4", got)
	}
	if got := g.HostFacingPorts(); got != 6 {
		t.Errorf("HostFacingPorts = %d, want 6", got)
	}
}

func TestStringAndSummary(t *testing.T) {
	g := FatTree(4)
	s := g.Summary()
	if s.SwitchPortsUsed != 64 { // 32 switch-switch links x 2 ports
		t.Errorf("SwitchPortsUsed = %d, want 64", s.SwitchPortsUsed)
	}
	str := g.String()
	if str == "" {
		t.Error("empty String()")
	}
}

func TestVertexByLabel(t *testing.T) {
	g := Line(3, 1)
	if id := g.VertexByLabel("s1"); id < 0 || g.Vertices[id].Label != "s1" {
		t.Errorf("VertexByLabel(s1) = %d", id)
	}
	if id := g.VertexByLabel("missing"); id != -1 {
		t.Errorf("VertexByLabel(missing) = %d, want -1", id)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := Ring(5, 0)
	sw := g.Switches()
	if g.EdgeBetween(sw[0], sw[1]) < 0 {
		t.Error("adjacent ring switches not connected")
	}
	if g.EdgeBetween(sw[0], sw[2]) >= 0 {
		t.Error("non-adjacent ring switches reported connected")
	}
}

func ExampleFatTree() {
	g := FatTree(4)
	fmt.Println(g.NumSwitches(), g.NumHosts())
	// Output: 20 16
}

func BenchmarkFatTreeGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FatTree(8)
	}
}

func BenchmarkZooGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Zoo(int64(i))
	}
}

var benchSink int

func BenchmarkShortestPaths(b *testing.B) {
	g := Torus3D(8, 8, 8, 0)
	rng := rand.New(rand.NewSource(1))
	sw := g.Switches()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := g.ShortestPaths(sw[rng.Intn(len(sw))])
		benchSink += d[0]
	}
}
