package topology

import (
	"sort"
	"testing"
)

// TestCSRMatchesAdjacency cross-checks the CSR view against the
// reference accessors on every generated family the strategies route.
func TestCSRMatchesAdjacency(t *testing.T) {
	graphs := []*Graph{
		FatTree(4),
		Dragonfly(4, 9, 2, 1),
		Torus3D(3, 3, 3, 1),
		Mesh2D(4, 4, 2),
		RandomWAN("csr-wan", 12, 4, 42),
	}
	for _, g := range graphs {
		c := g.CSR()
		if got, want := len(c.Start), len(g.Vertices)+1; got != want {
			t.Fatalf("%s: len(Start) = %d, want %d", g.Name, got, want)
		}
		for v := range g.Vertices {
			lo, hi := c.Row(v)
			if int(hi-lo) != g.Degree(v) {
				t.Errorf("%s: row %d has %d half-edges, Degree = %d", g.Name, v, hi-lo, g.Degree(v))
			}
			// Row must be the sorted neighbour multiset with matching ports.
			want := append([]int(nil), g.Neighbors(v)...)
			sort.Ints(want)
			for i := lo; i < hi; i++ {
				if int(c.Nbr[i]) != want[i-lo] {
					t.Fatalf("%s: row %d nbr[%d] = %d, want %d", g.Name, v, i-lo, c.Nbr[i], want[i-lo])
				}
				if i > lo && c.Nbr[i] == c.Nbr[i-1] && c.Edge[i] < c.Edge[i-1] {
					t.Errorf("%s: row %d parallel edges out of order", g.Name, v)
				}
				e := g.Edges[c.Edge[i]]
				if e.Other(v) != int(c.Nbr[i]) || e.PortAt(v) != int(c.Port[i]) {
					t.Errorf("%s: row %d half-edge %d inconsistent with edge %d", g.Name, v, i-lo, e.ID)
				}
			}
			// PortTo must agree with the EdgeBetween-based reference.
			for o := range g.Vertices {
				want := 0
				if eid := g.EdgeBetween(v, o); eid >= 0 {
					want = g.Edges[eid].PortAt(v)
				}
				if got := c.PortTo(v, o); got != want {
					t.Errorf("%s: PortTo(%d,%d) = %d, want %d", g.Name, v, o, got, want)
				}
			}
		}
	}
}

// TestCSRInvalidation: mutating the graph must drop the memoized view.
func TestCSRInvalidation(t *testing.T) {
	g := Line(3, 1)
	c1 := g.CSR()
	if g.CSR() != c1 {
		t.Fatal("CSR not memoized")
	}
	a := g.AddSwitch("x")
	g.Connect(g.Switches()[0], a)
	c2 := g.CSR()
	if c2 == c1 {
		t.Fatal("CSR not invalidated by mutation")
	}
	if int(c2.Start[len(g.Vertices)]) != 2*len(g.Edges) {
		t.Fatalf("rebuilt CSR half-edge count = %d, want %d", c2.Start[len(g.Vertices)], 2*len(g.Edges))
	}
	// Clone must not share the cache with the original.
	cl := g.Clone()
	if cl.CSR() == g.CSR() {
		t.Fatal("Clone shares CSR cache")
	}
}
