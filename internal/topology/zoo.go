package topology

import (
	"fmt"
	"math/rand"
)

// ZooSize is the number of WAN topologies in the synthetic Internet
// Topology Zoo used for Table II. The real zoo snapshot the paper cites
// contains 261 usable graphs; our generator reproduces its size
// distribution (see Zoo).
const ZooSize = 261

// Zoo generates a deterministic synthetic stand-in for the Internet
// Topology Zoo. The real dataset is a collection of operator WAN maps
// with 4–196 nodes and a long-tailed size distribution (median ≈ 21
// nodes, mean degree ≈ 2.3). Each synthetic graph is a random connected
// sparse graph drawn from that distribution: a spanning tree plus a
// binomial number of extra links, which matches the structural
// properties Table II depends on (per-switch port counts and total link
// counts). The generator is seeded, so the 261 graphs are stable across
// runs.
func Zoo(seed int64) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Graph, 0, ZooSize)
	for i := 0; i < ZooSize; i++ {
		n := zooNodeCount(rng)
		extra := int(float64(n) * (0.15 + 0.35*rng.Float64()))
		out = append(out, RandomWAN(fmt.Sprintf("zoo-%03d", i), n, extra, rng.Int63()))
	}
	return out
}

// zooNodeCount draws a node count from a long-tailed distribution
// approximating the zoo: most maps have 5–40 nodes, a few reach ~196.
func zooNodeCount(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.25:
		return 4 + rng.Intn(12) // 4..15
	case u < 0.70:
		return 16 + rng.Intn(25) // 16..40
	case u < 0.93:
		return 41 + rng.Intn(60) // 41..100
	default:
		return 101 + rng.Intn(96) // 101..196
	}
}

// RandomWAN builds a random connected WAN-like topology with n switches:
// a random spanning tree plus `extra` additional random links (parallel
// links and self loops suppressed). One host is attached to every
// switch, modelling a PoP's client side. The same (n, extra, seed)
// always yields the same graph.
func RandomWAN(name string, n, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(name)
	sw := make([]int, n)
	for i := 0; i < n; i++ {
		sw[i] = g.AddSwitch(fmt.Sprintf("s%d", i), i)
	}
	// Random spanning tree: attach vertex i to a uniformly random
	// earlier vertex (random recursive tree).
	for i := 1; i < n; i++ {
		g.Connect(sw[i], sw[rng.Intn(i)])
	}
	// Extra links between distinct, not-yet-adjacent switch pairs.
	for added, tries := 0, 0; added < extra && tries < extra*20+100; tries++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b || g.EdgeBetween(sw[a], sw[b]) >= 0 {
			continue
		}
		g.Connect(sw[a], sw[b])
		added++
	}
	for i := 0; i < n; i++ {
		h := g.AddHost(fmt.Sprintf("h%d", i), i)
		g.Connect(sw[i], h)
	}
	return g
}
