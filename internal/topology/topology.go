// Package topology models logical network topologies for Topology
// Projection (TP).
//
// A Graph holds two kinds of vertices — switches and hosts — joined by
// undirected edges. Every edge occupies one numbered port at each
// endpoint, mirroring how the SDT paper labels logical-switch ports
// before projecting them onto a physical switch (§IV). Generators for
// the topologies evaluated in the paper (Fat-Tree, Dragonfly, Mesh,
// Torus, BCube, HyperBCube and a synthetic Internet Topology Zoo) live
// in generators.go and zoo.go.
package topology

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind distinguishes switch vertices from host (compute node) vertices.
type Kind int

const (
	// Switch vertices forward traffic and are the targets of projection.
	Switch Kind = iota
	// Host vertices terminate traffic (compute nodes / VMs).
	Host
)

// String returns "switch" or "host".
func (k Kind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Vertex is one node of the logical topology.
type Vertex struct {
	ID    int    // dense index into Graph.Vertices
	Kind  Kind   // switch or host
	Label string // human-readable name, unique within the graph
	// Coord carries generator-specific coordinates: mesh/torus positions,
	// Dragonfly (group, router), Fat-Tree (layer, pod, index), etc.
	// Routing strategies consume these coordinates.
	Coord []int
}

// Edge is an undirected logical link. It occupies port APort on vertex A
// and port BPort on vertex B. Ports are numbered from 1 within each
// vertex, matching the paper's port-labelling convention.
type Edge struct {
	ID    int
	A, B  int
	APort int
	BPort int
}

// Other returns the endpoint of e opposite to vertex v.
func (e Edge) Other(v int) int {
	if e.A == v {
		return e.B
	}
	return e.A
}

// PortAt returns the port number edge e occupies on vertex v.
func (e Edge) PortAt(v int) int {
	if e.A == v {
		return e.APort
	}
	return e.BPort
}

// Graph is a logical topology: the input to Topology Projection.
type Graph struct {
	Name     string
	Vertices []Vertex
	Edges    []Edge

	adj       [][]int // vertex -> incident edge IDs
	nextPort  []int   // next free port per vertex
	adjDirty  bool
	switchIDs []int
	hostIDs   []int
	csr       atomic.Pointer[CSR]
}

// New returns an empty topology with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddSwitch appends a switch vertex and returns its ID.
func (g *Graph) AddSwitch(label string, coord ...int) int {
	return g.addVertex(Switch, label, coord)
}

// AddHost appends a host vertex and returns its ID.
func (g *Graph) AddHost(label string, coord ...int) int {
	return g.addVertex(Host, label, coord)
}

func (g *Graph) addVertex(k Kind, label string, coord []int) int {
	id := len(g.Vertices)
	if label == "" {
		label = fmt.Sprintf("%s%d", k, id)
	}
	g.Vertices = append(g.Vertices, Vertex{ID: id, Kind: k, Label: label, Coord: coord})
	g.nextPort = append(g.nextPort, 1)
	g.adjDirty = true
	g.csr.Store(nil)
	return id
}

// Connect adds an undirected edge between vertices a and b, assigning the
// next free port on each side, and returns the edge ID.
func (g *Graph) Connect(a, b int) int {
	pa := g.nextPort[a]
	pb := g.nextPort[b]
	if a == b {
		pb = pa + 1
	}
	return g.ConnectPorts(a, pa, b, pb)
}

// ConnectPorts adds an undirected edge with explicit port numbers.
// It panics if a vertex ID is out of range; port conflicts are caught by
// Validate.
func (g *Graph) ConnectPorts(a, aPort, b, bPort int) int {
	if a < 0 || a >= len(g.Vertices) || b < 0 || b >= len(g.Vertices) {
		panic(fmt.Sprintf("topology: Connect(%d,%d) out of range", a, b))
	}
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{ID: id, A: a, APort: aPort, B: b, BPort: bPort})
	if aPort >= g.nextPort[a] {
		g.nextPort[a] = aPort + 1
	}
	if bPort >= g.nextPort[b] {
		g.nextPort[b] = bPort + 1
	}
	g.adjDirty = true
	g.csr.Store(nil)
	return id
}

func (g *Graph) rebuild() {
	if !g.adjDirty {
		return
	}
	g.adj = make([][]int, len(g.Vertices))
	for _, e := range g.Edges {
		g.adj[e.A] = append(g.adj[e.A], e.ID)
		if e.B != e.A {
			g.adj[e.B] = append(g.adj[e.B], e.ID)
		}
	}
	g.switchIDs = g.switchIDs[:0]
	g.hostIDs = g.hostIDs[:0]
	for _, v := range g.Vertices {
		if v.Kind == Switch {
			g.switchIDs = append(g.switchIDs, v.ID)
		} else {
			g.hostIDs = append(g.hostIDs, v.ID)
		}
	}
	g.adjDirty = false
}

// IncidentEdges returns the IDs of edges incident to vertex v.
func (g *Graph) IncidentEdges(v int) []int {
	g.rebuild()
	return g.adj[v]
}

// Neighbors returns the vertex IDs adjacent to v (with multiplicity for
// parallel edges).
func (g *Graph) Neighbors(v int) []int {
	g.rebuild()
	out := make([]int, 0, len(g.adj[v]))
	for _, eid := range g.adj[v] {
		out = append(out, g.Edges[eid].Other(v))
	}
	return out
}

// CSR is a compressed-sparse-row adjacency view of a Graph: for vertex
// v, the incident half-edges occupy positions Start[v]..Start[v+1]-1 of
// the parallel Nbr/Port/Edge arrays, pre-sorted by neighbour vertex ID
// (ties broken by edge ID, so parallel edges stay deterministic). The
// route-computation hot paths iterate it instead of Graph.Neighbors,
// which clones (and would have to re-sort) the neighbour slice on every
// call.
//
// A CSR is immutable once built; Graph.CSR memoizes it and any graph
// mutation invalidates the cache.
type CSR struct {
	Start []int32 // len(Vertices)+1 row offsets
	Nbr   []int32 // neighbour vertex IDs, ascending within each row
	Port  []int32 // port number at the row vertex for this half-edge
	Edge  []int32 // logical edge ID of this half-edge
}

// Row returns the half-edge index range [lo, hi) for vertex v.
func (c *CSR) Row(v int) (lo, hi int32) { return c.Start[v], c.Start[v+1] }

// PortTo returns the port on `from` leading to neighbour `to`, or 0 if
// they are not adjacent — the O(log deg) equivalent of scanning
// IncidentEdges. With multiple parallel edges the lowest edge ID wins.
func (c *CSR) PortTo(from, to int) int {
	lo, hi := c.Start[from], c.Start[from+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Nbr[mid] < int32(to) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.Start[from+1] && c.Nbr[lo] == int32(to) {
		return int(c.Port[lo])
	}
	return 0
}

// CSR returns the memoized compressed-sparse-row view, building it on
// first use. The cache is an atomic pointer, so concurrent readers that
// race on the first build each construct an identical view without a
// data race (one of them wins the cache slot); mutating the graph while
// CSR is called concurrently is a caller error, as with every other
// lazy accessor.
func (g *Graph) CSR() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	n := len(g.Vertices)
	c := &CSR{Start: make([]int32, n+1)}
	deg := make([]int32, n)
	for _, e := range g.Edges {
		deg[e.A]++
		if e.B != e.A {
			deg[e.B]++
		}
	}
	total := int32(0)
	for v := 0; v < n; v++ {
		c.Start[v] = total
		total += deg[v]
	}
	c.Start[n] = total
	c.Nbr = make([]int32, total)
	c.Port = make([]int32, total)
	c.Edge = make([]int32, total)
	fill := append([]int32(nil), c.Start[:n]...)
	put := func(at, other, port, eid int) {
		i := fill[at]
		fill[at]++
		c.Nbr[i], c.Port[i], c.Edge[i] = int32(other), int32(port), int32(eid)
	}
	for _, e := range g.Edges {
		put(e.A, e.B, e.APort, e.ID)
		if e.B != e.A {
			put(e.B, e.A, e.BPort, e.ID)
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := c.Start[v], c.Start[v+1]
		row := struct{ nbr, port, edge []int32 }{c.Nbr[lo:hi], c.Port[lo:hi], c.Edge[lo:hi]}
		sort.Sort(csrRow(row))
	}
	g.csr.Store(c)
	return c
}

// csrRow sorts one CSR row's parallel slices by (neighbour, edge ID).
type csrRow struct{ nbr, port, edge []int32 }

func (r csrRow) Len() int { return len(r.nbr) }
func (r csrRow) Less(i, j int) bool {
	if r.nbr[i] != r.nbr[j] {
		return r.nbr[i] < r.nbr[j]
	}
	return r.edge[i] < r.edge[j]
}
func (r csrRow) Swap(i, j int) {
	r.nbr[i], r.nbr[j] = r.nbr[j], r.nbr[i]
	r.port[i], r.port[j] = r.port[j], r.port[i]
	r.edge[i], r.edge[j] = r.edge[j], r.edge[i]
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int {
	g.rebuild()
	return len(g.adj[v])
}

// Switches returns the IDs of all switch vertices in ascending order.
func (g *Graph) Switches() []int {
	g.rebuild()
	return g.switchIDs
}

// Hosts returns the IDs of all host vertices in ascending order.
func (g *Graph) Hosts() []int {
	g.rebuild()
	return g.hostIDs
}

// NumSwitches reports the number of switch vertices.
func (g *Graph) NumSwitches() int { return len(g.Switches()) }

// NumHosts reports the number of host vertices.
func (g *Graph) NumHosts() int { return len(g.Hosts()) }

// SwitchPortCount returns the total number of ports occupied on switch
// vertices, excluding ports that face hosts. This is the quantity the
// paper compares against the physical switch port budget (§IV-A): "a
// topology can be appropriately built if the total number of ports in
// the topology is less than or equal to the number of ports on the
// physical switch (excluding the ports connected to the end hosts)".
func (g *Graph) SwitchPortCount() int {
	n := 0
	for _, e := range g.Edges {
		if g.Vertices[e.A].Kind == Switch && g.Vertices[e.B].Kind == Switch {
			n += 2
		}
	}
	return n
}

// HostFacingPorts returns the number of switch ports that face hosts.
func (g *Graph) HostFacingPorts() int {
	n := 0
	for _, e := range g.Edges {
		ka, kb := g.Vertices[e.A].Kind, g.Vertices[e.B].Kind
		if ka != kb {
			n++
		}
	}
	return n
}

// SwitchSwitchEdges returns the IDs of edges whose both endpoints are
// switches (the links projection must realise).
func (g *Graph) SwitchSwitchEdges() []int {
	var out []int
	for _, e := range g.Edges {
		if g.Vertices[e.A].Kind == Switch && g.Vertices[e.B].Kind == Switch {
			out = append(out, e.ID)
		}
	}
	return out
}

// Radix returns the maximum switch degree (ports per logical switch).
func (g *Graph) Radix() int {
	r := 0
	for _, v := range g.Switches() {
		if d := g.Degree(v); d > r {
			r = d
		}
	}
	return r
}

// EdgeBetween returns the ID of an edge joining a and b, or -1.
func (g *Graph) EdgeBetween(a, b int) int {
	g.rebuild()
	for _, eid := range g.adj[a] {
		if g.Edges[eid].Other(a) == b {
			return eid
		}
	}
	return -1
}

// VertexByLabel returns the vertex with the given label, or -1.
func (g *Graph) VertexByLabel(label string) int {
	for _, v := range g.Vertices {
		if v.Label == label {
			return v.ID
		}
	}
	return -1
}

// Validate checks structural invariants: endpoint ranges, port numbers
// positive and unique per vertex, unique labels, and hosts having at
// most one link. A nil return means the topology is projectable input.
func (g *Graph) Validate() error {
	labels := make(map[string]int, len(g.Vertices))
	for _, v := range g.Vertices {
		if prev, dup := labels[v.Label]; dup {
			return fmt.Errorf("topology %q: duplicate label %q on vertices %d and %d", g.Name, v.Label, prev, v.ID)
		}
		labels[v.Label] = v.ID
	}
	ports := make(map[[2]int]int)
	for _, e := range g.Edges {
		if e.A < 0 || e.A >= len(g.Vertices) || e.B < 0 || e.B >= len(g.Vertices) {
			return fmt.Errorf("topology %q: edge %d endpoint out of range", g.Name, e.ID)
		}
		if e.APort < 1 || e.BPort < 1 {
			return fmt.Errorf("topology %q: edge %d has non-positive port", g.Name, e.ID)
		}
		for _, pp := range [][2]int{{e.A, e.APort}, {e.B, e.BPort}} {
			if e.A == e.B && pp[1] == e.APort && pp[0] == e.B && e.APort == e.BPort {
				return fmt.Errorf("topology %q: edge %d is a same-port self loop", g.Name, e.ID)
			}
			if prev, dup := ports[pp]; dup && prev != e.ID {
				return fmt.Errorf("topology %q: port %d on vertex %d used by edges %d and %d",
					g.Name, pp[1], pp[0], prev, e.ID)
			}
			ports[pp] = e.ID
		}
	}
	for _, h := range g.Hosts() {
		if g.Degree(h) > 1 {
			return fmt.Errorf("topology %q: host %d has %d links (max 1)", g.Name, h, g.Degree(h))
		}
	}
	return nil
}

// HostSwitch returns the switch a host is attached to, or -1 for an
// orphan host.
func (g *Graph) HostSwitch(h int) int {
	for _, eid := range g.IncidentEdges(h) {
		o := g.Edges[eid].Other(h)
		if g.Vertices[o].Kind == Switch {
			return o
		}
	}
	return -1
}

// AttachedHosts returns hosts directly connected to switch s, sorted.
func (g *Graph) AttachedHosts(s int) []int {
	var out []int
	for _, eid := range g.IncidentEdges(s) {
		o := g.Edges[eid].Other(s)
		if g.Vertices[o].Kind == Host {
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}

// ConnectedComponents returns one sorted vertex-ID slice per connected
// component, considering all vertices.
func (g *Graph) ConnectedComponents() [][]int {
	g.rebuild()
	seen := make([]bool, len(g.Vertices))
	var comps [][]int
	for start := range g.Vertices {
		if seen[start] {
			continue
		}
		var comp []int
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, eid := range g.adj[v] {
				o := g.Edges[eid].Other(v)
				if !seen[o] {
					seen[o] = true
					queue = append(queue, o)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// SwitchSubgraphConnected reports whether the switch-only subgraph is
// connected (hosts ignored). The projection checker uses this to reject
// accidentally split topologies unless the user asks for isolation.
func (g *Graph) SwitchSubgraphConnected() bool {
	sw := g.Switches()
	if len(sw) <= 1 {
		return true
	}
	seen := make(map[int]bool, len(sw))
	queue := []int{sw[0]}
	seen[sw[0]] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.IncidentEdges(v) {
			o := g.Edges[eid].Other(v)
			if g.Vertices[o].Kind != Switch || seen[o] {
				continue
			}
			seen[o] = true
			queue = append(queue, o)
		}
	}
	return len(seen) == len(sw)
}

// ShortestPaths runs BFS over the switch subgraph from switch src and
// returns hop distances indexed by vertex ID (-1 for unreachable or
// host vertices).
func (g *Graph) ShortestPaths(src int) []int {
	dist := make([]int, len(g.Vertices))
	for i := range dist {
		dist[i] = -1
	}
	if g.Vertices[src].Kind != Switch {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.IncidentEdges(v) {
			o := g.Edges[eid].Other(v)
			if g.Vertices[o].Kind != Switch || dist[o] >= 0 {
				continue
			}
			dist[o] = dist[v] + 1
			queue = append(queue, o)
		}
	}
	return dist
}

// Diameter returns the maximum switch-to-switch hop distance, or 0 for
// graphs with fewer than two switches.
func (g *Graph) Diameter() int {
	d := 0
	for _, s := range g.Switches() {
		for _, x := range g.ShortestPaths(s) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.Name)
	out.Vertices = make([]Vertex, len(g.Vertices))
	for i, v := range g.Vertices {
		cv := v
		cv.Coord = append([]int(nil), v.Coord...)
		out.Vertices[i] = cv
	}
	out.Edges = append([]Edge(nil), g.Edges...)
	out.nextPort = append([]int(nil), g.nextPort...)
	out.adjDirty = true
	return out
}

// Stats is a compact structural summary used in reports and tests.
type Stats struct {
	Switches, Hosts, Links int
	SwitchLinks, HostLinks int
	Radix, Diameter        int
	SwitchPortsUsed        int
}

// Summary computes a Stats for the graph.
func (g *Graph) Summary() Stats {
	return Stats{
		Switches:        g.NumSwitches(),
		Hosts:           g.NumHosts(),
		Links:           len(g.Edges),
		SwitchLinks:     len(g.SwitchSwitchEdges()),
		HostLinks:       g.HostFacingPorts(),
		Radix:           g.Radix(),
		Diameter:        g.Diameter(),
		SwitchPortsUsed: g.SwitchPortCount(),
	}
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	s := g.Summary()
	return fmt.Sprintf("%s{switches:%d hosts:%d links:%d radix:%d}", g.Name, s.Switches, s.Hosts, s.Links, s.Radix)
}
