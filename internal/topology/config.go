package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Config is the JSON topology description accepted by the SDT
// controller ("simply using different topology configuration files at
// the controller", §I). Vertices are named; links reference names and
// may pin explicit port numbers. Generator configs ({"generator":
// "fattree", "params": [4]}) are also accepted so users do not have to
// enumerate large standard topologies by hand.
type Config struct {
	Name      string       `json:"name"`
	Generator string       `json:"generator,omitempty"`
	Params    []int        `json:"params,omitempty"`
	Switches  []string     `json:"switches,omitempty"`
	Hosts     []string     `json:"hosts,omitempty"`
	Links     []LinkConfig `json:"links,omitempty"`
	// Coords optionally carries per-vertex coordinates (by label) so
	// coordinate-based routing strategies (X-Y, Dragonfly groups,
	// fat-tree layers) survive a round trip through the file format.
	Coords map[string][]int `json:"coords,omitempty"`
}

// LinkConfig is one undirected link in a Config. APort/BPort of 0 mean
// "assign the next free port".
type LinkConfig struct {
	A     string `json:"a"`
	B     string `json:"b"`
	APort int    `json:"aport,omitempty"`
	BPort int    `json:"bport,omitempty"`
}

// Build materialises the configuration into a Graph. Explicit vertices
// and links are applied only when no generator is named.
func (c *Config) Build() (*Graph, error) {
	if c.Generator != "" {
		return buildGenerator(c)
	}
	g := New(c.Name)
	ids := make(map[string]int, len(c.Switches)+len(c.Hosts))
	for _, s := range c.Switches {
		if _, dup := ids[s]; dup {
			return nil, fmt.Errorf("topology config %q: duplicate vertex %q", c.Name, s)
		}
		ids[s] = g.AddSwitch(s, c.Coords[s]...)
	}
	for _, h := range c.Hosts {
		if _, dup := ids[h]; dup {
			return nil, fmt.Errorf("topology config %q: duplicate vertex %q", c.Name, h)
		}
		ids[h] = g.AddHost(h, c.Coords[h]...)
	}
	for i, l := range c.Links {
		a, ok := ids[l.A]
		if !ok {
			return nil, fmt.Errorf("topology config %q: link %d references unknown vertex %q", c.Name, i, l.A)
		}
		b, ok := ids[l.B]
		if !ok {
			return nil, fmt.Errorf("topology config %q: link %d references unknown vertex %q", c.Name, i, l.B)
		}
		switch {
		case l.APort > 0 && l.BPort > 0:
			g.ConnectPorts(a, l.APort, b, l.BPort)
		case l.APort == 0 && l.BPort == 0:
			g.Connect(a, b)
		default:
			return nil, fmt.Errorf("topology config %q: link %d must pin both ports or neither", c.Name, i)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func buildGenerator(c *Config) (*Graph, error) {
	need := func(n int) error {
		if len(c.Params) != n {
			return fmt.Errorf("topology config %q: generator %q needs %d params, got %d",
				c.Name, c.Generator, n, len(c.Params))
		}
		return nil
	}
	p := c.Params
	var g *Graph
	var err error
	switch strings.ToLower(c.Generator) {
	case "fattree":
		if err = need(1); err == nil {
			g = FatTree(p[0])
		}
	case "dragonfly":
		if err = need(4); err == nil {
			g = Dragonfly(p[0], p[1], p[2], p[3])
		}
	case "mesh2d":
		if err = need(3); err == nil {
			g = Mesh2D(p[0], p[1], p[2])
		}
	case "mesh3d":
		if err = need(4); err == nil {
			g = Mesh3D(p[0], p[1], p[2], p[3])
		}
	case "torus2d":
		if err = need(3); err == nil {
			g = Torus2D(p[0], p[1], p[2])
		}
	case "torus3d":
		if err = need(4); err == nil {
			g = Torus3D(p[0], p[1], p[2], p[3])
		}
	case "bcube":
		if err = need(2); err == nil {
			g = BCube(p[0], p[1])
		}
	case "hyperbcube":
		if err = need(2); err == nil {
			g = HyperBCube(p[0], p[1])
		}
	case "line":
		if err = need(2); err == nil {
			g = Line(p[0], p[1])
		}
	case "ring":
		if err = need(2); err == nil {
			g = Ring(p[0], p[1])
		}
	case "star":
		if err = need(2); err == nil {
			g = Star(p[0], p[1])
		}
	case "fullmesh":
		if err = need(2); err == nil {
			g = FullMesh(p[0], p[1])
		}
	default:
		return nil, fmt.Errorf("topology config %q: unknown generator %q", c.Name, c.Generator)
	}
	if err != nil {
		return nil, err
	}
	if c.Name != "" {
		g.Name = c.Name
	}
	return g, nil
}

// ToConfig converts a Graph back into an explicit (non-generator)
// Config, suitable for round-tripping through JSON.
func (g *Graph) ToConfig() *Config {
	c := &Config{Name: g.Name}
	for _, v := range g.Vertices {
		if v.Kind == Switch {
			c.Switches = append(c.Switches, v.Label)
		} else {
			c.Hosts = append(c.Hosts, v.Label)
		}
		if len(v.Coord) > 0 {
			if c.Coords == nil {
				c.Coords = map[string][]int{}
			}
			c.Coords[v.Label] = append([]int(nil), v.Coord...)
		}
	}
	for _, e := range g.Edges {
		c.Links = append(c.Links, LinkConfig{
			A: g.Vertices[e.A].Label, APort: e.APort,
			B: g.Vertices[e.B].Label, BPort: e.BPort,
		})
	}
	return c
}

// ReadConfig decodes a Config from JSON.
func ReadConfig(r io.Reader) (*Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("topology: decoding config: %w", err)
	}
	return &c, nil
}

// LoadConfig reads and builds a topology from a JSON file.
func LoadConfig(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := ReadConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c.Build()
}

// WriteConfig encodes the config as indented JSON.
func (c *Config) WriteConfig(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
