package experiments

// The golden-output regression harness: every registered scenario set
// re-runs at a fixed, fast parameter point and its formatted table is
// diffed byte-for-byte against a committed golden
// (testdata/golden/<name>.txt). This turns the "outputs byte-identical
// to the previous PR" check — done by hand in PRs 1–4 — into an
// enforced test: any change that perturbs simulation behaviour shows
// up as a golden diff and must be either fixed or explicitly
// re-recorded with
//
//	go test ./internal/experiments -run TestGolden -update
//
// Wall-clock-derived columns (fig13's sim eval / sim-vs-full factor,
// table4's eval(sim) / speedup) are masked before comparison via Scrub
// (scrub.go — shared with the service cache's hit-vs-fresh-run
// verification); every other byte must match. The parallel pass
// re-runs each set with worker fan-out and demands the same masked
// output, pinning the any-worker-count determinism contract.

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netsim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from this run")

// goldenParams is the fixed parameter point the goldens are recorded
// at — small enough to run in seconds, large enough that every code
// path (sweeps, SDT deployments, loadgen schedules, fault repairs)
// executes.
func goldenParams() Params {
	return Params{
		Ranks:    8,
		Reps:     2,
		Bytes:    64 << 10,
		Zoo:      12,
		Duration: 50 * netsim.Millisecond,
		Workers:  1,
		Seed:     1,
		Flows:    48,
		Load:     0.8,
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

// goldenShardPath is the committed reference for the sharded pass. It
// lives in a sibling directory (not a subdirectory of golden/, which
// the stale-file check walks) because shard counts are part of the
// determinism key: a K=2 run is a different — but equally pinned —
// deterministic schedule than a serial run, so it gets its own
// recorded bytes.
func goldenShardPath(name string) string {
	return filepath.Join("testdata", "golden-shard2", name+".txt")
}

// runGolden executes one registered set at the golden parameter point
// and returns its scrubbed output.
func runGolden(t *testing.T, e Entry, p Params) string {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Run(context.Background(), p, &buf); err != nil {
		t.Fatalf("%s: %v", e.Name, err)
	}
	return Scrub(e.Name, buf.String())
}

func TestGoldenOutputs(t *testing.T) {
	p := goldenParams()
	seen := map[string]bool{}
	for _, e := range All() {
		e := e
		seen[e.Name+".txt"] = true
		t.Run(e.Name, func(t *testing.T) {
			got := runGolden(t, e, p)
			path := goldenPath(e.Name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden for %s (run with -update to record): %v", e.Name, err)
			}
			if got != string(want) {
				t.Errorf("%s output diverged from golden (re-record with -update if intended):\n%s",
					e.Name, firstDiff(string(want), got))
			}
		})
	}
	// Stale goldens — files for experiments that no longer exist — are
	// an error too: they would silently stop guarding anything.
	if !*updateGolden {
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatalf("golden dir: %v", err)
		}
		for _, ent := range entries {
			if !seen[ent.Name()] {
				t.Errorf("stale golden %s: no experiment registers this name", ent.Name())
			}
		}
	}
}

// TestGoldenOutputsParallel re-runs every set with full worker fan-out
// and demands the same scrubbed bytes: simulated results must not
// depend on the worker count.
func TestGoldenOutputsParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are recorded from the serial pass")
	}
	p := goldenParams()
	p.Workers = 0 // all cores
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			got := runGolden(t, e, p)
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("no golden for %s: %v", e.Name, err)
			}
			if got != string(want) {
				t.Errorf("%s parallel output differs from the serial golden:\n%s",
					e.Name, firstDiff(string(want), got))
			}
		})
	}
}

// TestGoldenShard2 re-runs every registered scenario set with two-way
// intra-run sharding (Params.Shards = 2 → core.WithShards(2) on every
// sweep job) and diffs the scrubbed output against its own committed
// golden (testdata/golden-shard2). This is the fixed-K byte-identity
// gate: for a fixed shard count the conservative executor must produce
// the same bytes on every rerun, machine, and worker count. Sets that
// hand-drive their networks or fall back to serial (faults, SDT-mode
// jobs) simply pin that their output is unchanged by the option.
func TestGoldenShard2(t *testing.T) {
	p := goldenParams()
	p.Shards = 2
	seen := map[string]bool{}
	for _, e := range All() {
		e := e
		seen[e.Name+".txt"] = true
		t.Run(e.Name, func(t *testing.T) {
			got := runGolden(t, e, p)
			path := goldenShardPath(e.Name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no shard-2 golden for %s (run with -update to record): %v", e.Name, err)
			}
			if got != string(want) {
				t.Errorf("%s sharded output diverged from golden (re-record with -update if intended):\n%s",
					e.Name, firstDiff(string(want), got))
			}
		})
	}
	if !*updateGolden {
		entries, err := os.ReadDir(filepath.Join("testdata", "golden-shard2"))
		if err != nil {
			t.Fatalf("shard golden dir: %v", err)
		}
		for _, ent := range entries {
			if !seen[ent.Name()] {
				t.Errorf("stale shard golden %s: no experiment registers this name", ent.Name())
			}
		}
	}
}

// firstDiff renders the first differing line with context.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: want %d, got %d", len(wl), len(gl))
}
