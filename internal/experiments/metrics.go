package experiments

// A tiny named-metric side channel for scalar results that matter to
// the perf trajectory but do not fit the wall/alloc columns sdtbench's
// -json mode measures itself — e.g. shard-scale's speedup factors.
// Experiments record metrics as they run; the CLI drains them into the
// JSON report after each experiment.

import "sync"

var (
	metricsMu sync.Mutex
	metrics   = map[string]float64{}
)

// RecordMetric publishes a named scalar from an experiment run,
// overwriting any previous value. Safe for concurrent use.
func RecordMetric(name string, v float64) {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	metrics[name] = v
}

// TakeMetrics returns all metrics recorded since the last call and
// resets the registry.
func TakeMetrics() map[string]float64 {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	out := metrics
	metrics = map[string]float64{}
	return out
}
