package experiments

// The scenario registry: every figure/table registers itself here as a
// named scenario set, so CLIs (cmd/sdtbench), benchmarks, and
// downstream callers drive the paper's whole evaluation through one
// lookup instead of hand-wired per-figure plumbing. Registration
// happens in each experiment file's init; All returns entries in the
// paper's presentation order.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/netsim"
)

// Params carries the CLI-level knobs a registered scenario set
// understands. Zero values mean each experiment's default; every
// experiment reads only the fields that apply to it (mirroring the
// sdtbench flags).
type Params struct {
	// Ranks is the MPI rank count (table4).
	Ranks int
	// Reps is the repetition count (fig11 pingpongs, fig13 rounds).
	Reps int
	// Bytes is the message size (fig13, active routing).
	Bytes int
	// Zoo limits the Topology-Zoo subset (table2; 0 = all 261).
	Zoo int
	// Duration is the simulated measurement window (fig12).
	Duration netsim.Time
	// Workers fans sweep experiments out one simulation per worker
	// (0 = all cores, 1 = serial).
	Workers int
	// Seed drives the loadgen schedules (0 = 1). Equal seeds rerun
	// byte-identical sweeps.
	Seed int64
	// Flows is the loadgen flow count per grid cell (0 = each
	// experiment's default).
	Flows int
	// Load is the loadgen-incast victim load factor in (0, 1]
	// (0 = 0.8).
	Load float64
	// Faults overrides faults-sweep's fault-count axis (0 = the
	// default {1, 2, 4} grid).
	Faults int
	// MTBF overrides faults-flap's MTBF axis (0 = the default
	// {1, 2, 4, 8} ms grid; MTTR follows as MTBF/4).
	MTBF netsim.Time
	// Reconfig selects reconfig-under-load's transition target:
	// "dragonfly" (the default) or "torus".
	Reconfig string
	// Shards runs each simulation across k parallel shard engines
	// (core.WithShards; 0 or 1 = serial). Scenario sets that hand-drive
	// their networks (fig11, fig12, table2) ignore it, and runs the
	// executor cannot shard fall back to serial automatically.
	Shards int
	// CC restricts cc-shootout to one congestion-control policy
	// (netsim.CCPolicies; "" = all policies).
	CC string
}

// Runner executes one registered scenario set, writing its formatted
// table to w. Cancellation propagates into the engine loop of every
// simulation the runner starts.
type Runner func(ctx context.Context, p Params, w io.Writer) error

// Field is one machine-readable parameter a scenario set reads: its
// wire name (the JobSpec JSON key / sdtbench flag), its type, and the
// default the experiment applies when the field is zero. Registered
// schemas feed `sdtbench -list -json` and the service's /v1/scenarios
// listing, so clients can discover a set's knobs without reading code.
type Field struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Default string `json:"default"`
	Desc    string `json:"desc,omitempty"`
}

// The canonical field descriptors: every registration reuses these so
// the same knob carries the same name/type everywhere. Defaults mirror
// the Params documentation (and the sdtbench flag defaults where the
// experiment defers to the CLI).
var (
	FieldRanks    = Field{"ranks", "int", "16", "MPI rank count"}
	FieldReps     = Field{"reps", "int", "8", "repetitions (pingpongs / alltoall rounds)"}
	FieldBytes    = Field{"bytes", "int", "262144", "message size in bytes"}
	FieldZoo      = Field{"zoo", "int", "0", "Topology-Zoo subset size (0 = all 261)"}
	FieldDur      = Field{"dur_ms", "float64", "1000", "simulated measurement window in ms"}
	FieldWorkers  = Field{"workers", "int", "1", "sweep fan-out, one simulation per worker (0 = all cores)"}
	FieldSeed     = Field{"seed", "int64", "1", "loadgen schedule seed (equal seeds rerun byte-identical)"}
	FieldFlows    = Field{"flows", "int", "0", "loadgen flows per grid cell (0 = experiment default)"}
	FieldLoad     = Field{"load", "float64", "0.8", "loadgen victim load factor in (0, 1]"}
	FieldFaults   = Field{"faults", "int", "0", "link-failure count per cell (0 = the {1,2,4} grid)"}
	FieldMTBF     = Field{"mtbf_ms", "float64", "0", "link MTBF in ms, MTTR = MTBF/4 (0 = the {1,2,4,8} ms grid)"}
	FieldReconfig = Field{"reconfig", "string", "dragonfly", "transition target topology: dragonfly|torus"}
	FieldShards   = Field{"shards", "int", "0", "intra-run shard engines per simulation (0/1 = serial)"}
	FieldCC       = Field{"cc", "string", "", "congestion-control policy: dcqcn|timely|pfabric (empty = all)"}
)

// Entry is one registered scenario set.
type Entry struct {
	// Name is the lookup key (the sdtbench -exp value).
	Name string
	// Desc is a one-line description for CLI listings.
	Desc string
	// Run executes the scenario set.
	Run Runner
	// Schema lists the parameters this set reads (empty = the set is
	// parameter-free; Workers-style execution knobs are listed too, even
	// though they never change simulated results).
	Schema []Field

	order int
}

var registry []Entry

// Register adds a scenario set under a presentation-order index, with
// the machine-readable schema of the Params fields the set reads.
// Duplicate names panic: the registry is wired at init time and a
// collision is a programming error.
func Register(order int, name, desc string, run Runner, schema ...Field) {
	for _, e := range registry {
		if e.Name == name {
			panic("experiments: duplicate registration of " + name)
		}
	}
	registry = append(registry, Entry{Name: name, Desc: desc, Run: run, Schema: schema, order: order})
}

// Lookup finds a scenario set by name.
func Lookup(name string) (Entry, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Select resolves a comma-separated scenario-set list ("fig12,
// shard-scale") to registry entries, in the order given. The literal
// "all" (alone or inside a list) expands to every registered set in
// presentation order; surrounding whitespace per name is ignored, and
// empty elements ("fig12,,fig13", a trailing comma) are errors just
// like unknown names — both report the registry's valid names so a
// typo at the CLI answers itself.
func Select(names string) ([]Entry, error) {
	var out []Entry
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "all" {
			out = append(out, All()...)
			continue
		}
		e, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scenario set %q (valid: %s)",
				name, strings.Join(append(Names(), "all"), ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// All returns every registered scenario set in presentation order.
func All() []Entry {
	out := append([]Entry(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].order < out[j].order })
	return out
}

// Names returns the registered names in presentation order.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	return out
}
