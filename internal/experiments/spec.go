package experiments

// The canonical job spec: the wire-level description of one scenario
// execution — scenario name plus the Params knobs — with a stable
// content hash. The hash is a sound cache key because PRs 4–5 made
// every registered set's output a byte-stable pure function of
// (scenario, params, seed, shards): equal hashes imply byte-identical
// simulated results (wall-clock columns excepted — see Scrub). Two
// deliberate normalisations widen hit rates without weakening that
// soundness:
//
//   - Workers is zeroed before hashing: the worker fan-out never
//     changes simulated results (the golden harness's parallel pass
//     pins this), so a 1-worker and an 8-worker submission of the same
//     scenario share a cache line.
//   - Seed 0 normalises to 1: every seeded set documents and applies
//     "0 = 1", so the two spellings are the same schedule.
//
// Everything else — including per-experiment defaults like Flows —
// hashes as written: an explicit default and a zero field may miss
// each other's cache line, but never alias distinct results.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/netsim"
)

// JobSpec is the canonical description of one scenario-set execution.
// Field names and units mirror the sdtbench flags (durations in
// fractional milliseconds); zero fields mean each experiment's
// documented default, exactly as on the CLI.
type JobSpec struct {
	Scenario string  `json:"scenario"`
	Ranks    int     `json:"ranks,omitempty"`
	Reps     int     `json:"reps,omitempty"`
	Bytes    int     `json:"bytes,omitempty"`
	Zoo      int     `json:"zoo,omitempty"`
	DurMs    float64 `json:"dur_ms,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Flows    int     `json:"flows,omitempty"`
	Load     float64 `json:"load,omitempty"`
	Faults   int     `json:"faults,omitempty"`
	MTBFMs   float64 `json:"mtbf_ms,omitempty"`
	Reconfig string  `json:"reconfig,omitempty"`
	Shards   int     `json:"shards,omitempty"`
	CC       string  `json:"cc,omitempty"`
}

// specHashDomain versions the canonical encoding: bump it if the
// serialization ever changes shape, so stale on-disk cache entries
// can never be misread as current.
const specHashDomain = "sdt-jobspec-v1\n"

// Validate checks the spec names a registered scenario set and carries
// sane knob values.
func (s JobSpec) Validate() error {
	if s.Scenario == "" {
		return fmt.Errorf("spec: missing scenario name")
	}
	if _, ok := Lookup(s.Scenario); !ok {
		return fmt.Errorf("spec: unknown scenario %q", s.Scenario)
	}
	if s.Ranks < 0 || s.Reps < 0 || s.Bytes < 0 || s.Zoo < 0 || s.Flows < 0 ||
		s.Faults < 0 || s.Shards < 0 || s.Workers < 0 {
		return fmt.Errorf("spec: negative counts are invalid")
	}
	if s.DurMs < 0 || s.MTBFMs < 0 || s.Load < 0 || s.Load > 1 {
		return fmt.Errorf("spec: dur_ms/mtbf_ms must be >= 0 and load in [0, 1]")
	}
	if s.CC != "" {
		ok := false
		for _, p := range netsim.CCPolicies() {
			if s.CC == p {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("spec: unknown cc policy %q", s.CC)
		}
	}
	return nil
}

// Params converts the wire spec into the registry's Params.
func (s JobSpec) Params() Params {
	return Params{
		Ranks:    s.Ranks,
		Reps:     s.Reps,
		Bytes:    s.Bytes,
		Zoo:      s.Zoo,
		Duration: netsim.Time(s.DurMs * float64(netsim.Millisecond)),
		Workers:  s.Workers,
		Seed:     s.Seed,
		Flows:    s.Flows,
		Load:     s.Load,
		Faults:   s.Faults,
		MTBF:     netsim.Time(s.MTBFMs * float64(netsim.Millisecond)),
		Reconfig: s.Reconfig,
		Shards:   s.Shards,
		CC:       s.CC,
	}
}

// normalized returns the result-identity form of the spec: Workers
// zeroed (fan-out never changes simulated results) and Seed 0 folded
// into its documented default 1.
func (s JobSpec) normalized() JobSpec {
	s.Workers = 0
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Canonical returns the canonical serialization the content hash
// covers: the normalized spec marshalled with a fixed field order and
// zero fields omitted, so field order in the submitted JSON — and the
// zero-vs-absent spelling of every optional knob — cannot perturb the
// key.
func (s JobSpec) Canonical() []byte {
	b, err := json.Marshal(s.normalized())
	if err != nil {
		// Marshalling a flat struct of scalars cannot fail.
		panic("spec: canonical encode: " + err.Error())
	}
	return b
}

// Hash returns the spec's content hash (hex SHA-256 over the
// domain-separated canonical encoding) — the service's cache key and
// dedup identity. Stable across processes, machines, and field
// reordering of the submitted JSON; distinct whenever any
// result-relevant field (seed and shards included) differs.
func (s JobSpec) Hash() string {
	h := sha256.New()
	h.Write([]byte(specHashDomain))
	h.Write(s.Canonical())
	return hex.EncodeToString(h.Sum(nil))
}
