package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
)

func TestFig11ShapeMatchesPaper(t *testing.T) {
	res, err := Fig11(t.Context(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig11MsgLens()) {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Overhead < 0 {
			t.Errorf("msglen %d: negative overhead %v", p.Bytes, p.Overhead)
		}
	}
	// Headline: overhead always below 2% (paper: 0.03–2%, <=1.6% measured).
	if res.MaxOverhead >= 0.02 {
		t.Errorf("max overhead %.4f >= 2%%", res.MaxOverhead)
	}
	// Overhead at 1MB must be well below overhead at small sizes.
	first, last := res.Points[1], res.Points[len(res.Points)-1]
	if last.Overhead >= first.Overhead {
		t.Errorf("overhead did not shrink with size: %v -> %v", first.Overhead, last.Overhead)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "1MB") {
		t.Error("format missing 1MB row")
	}
}

func TestFig12PFCOnFairnessByHops(t *testing.T) {
	res, err := Fig12(t.Context(), core.FullTestbed, true, 400*netsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 7 {
		t.Fatalf("flows = %d, want 7", len(res.Flows))
	}
	if res.Drops != 0 {
		t.Errorf("PFC on but %d drops", res.Drops)
	}
	// Aggregate should approach the 10G bottleneck.
	if res.AggregateGbps < 6 || res.AggregateGbps > 10.5 {
		t.Errorf("aggregate = %.2f Gbps", res.AggregateGbps)
	}
	// Every flow gets a share.
	for _, f := range res.Flows {
		if f.MeanGbps <= 0.05 {
			t.Errorf("n%d starved: %.3f Gbps", f.Node, f.MeanGbps)
		}
	}
	// Hop labels must match the paper's legend (n1 h:5 ... n8 h:6).
	wantHops := map[int]int{1: 5, 2: 4, 3: 3, 5: 3, 6: 4, 7: 5, 8: 6}
	for _, f := range res.Flows {
		if f.Hops != wantHops[f.Node] {
			t.Errorf("n%d hops = %d, want %d", f.Node, f.Hops, wantHops[f.Node])
		}
	}
}

func TestFig12SDTMatchesFullTestbed(t *testing.T) {
	full, err := Fig12(t.Context(), core.FullTestbed, true, 300*netsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sdt, err := Fig12(t.Context(), core.SDT, true, 300*netsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "the bandwidth allocation for each iperf3 flow aligns with
	// the full testbed". Require each flow within 15% relative.
	for i := range full.Flows {
		f, s := full.Flows[i], sdt.Flows[i]
		if f.MeanGbps <= 0 {
			continue
		}
		rel := (s.MeanGbps - f.MeanGbps) / f.MeanGbps
		if rel > 0.15 || rel < -0.15 {
			t.Errorf("n%d: SDT %.3f vs full %.3f Gbps (%.1f%%)", f.Node, s.MeanGbps, f.MeanGbps, rel*100)
		}
	}
}

func TestFig12PFCOffHasDrops(t *testing.T) {
	res, err := Fig12(t.Context(), core.FullTestbed, false, 300*netsim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Error("PFC off incast produced no drops")
	}
	if res.AggregateGbps < 4 {
		t.Errorf("TCP collapsed: %.2f Gbps aggregate", res.AggregateGbps)
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(t.Context(), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]Table2Row{}
	for _, row := range res.Rows {
		byMethod[row.Method.String()] = row
	}
	sdt := byMethod["SDT"]
	spos := byMethod["SP-OS"]
	tn := byMethod["TurboNet(PM)"]
	if sdt.ZooCoverage < tn.ZooCoverage || sdt.ZooCoverage == 0 {
		t.Errorf("zoo coverage: SDT %d vs TurboNet %d", sdt.ZooCoverage, tn.ZooCoverage)
	}
	if spos.HardwareUSD <= sdt.HardwareUSD {
		t.Errorf("SP-OS cost %.0f <= SDT %.0f", spos.HardwareUSD, sdt.HardwareUSD)
	}
	if tn.BandwidthFactor != 0.5 || sdt.BandwidthFactor != 1 {
		t.Errorf("bandwidth factors: SDT %.2f, TurboNet %.2f", sdt.BandwidthFactor, tn.BandwidthFactor)
	}
	if sdt.Reconfig >= byMethod["SP"].Reconfig {
		t.Error("SDT reconfig not faster than manual SP")
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "SDT") {
		t.Error("format output incomplete")
	}
}

func TestTable3AllDeadlockFree(t *testing.T) {
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.DeadlockFree {
			t.Errorf("%s (%s): channel dependency cycle", row.Topology, row.Strategy)
		}
		if row.Rules == 0 {
			t.Errorf("%s: no rules", row.Topology)
		}
	}
}

func TestTable4SmallScale(t *testing.T) {
	res, err := Table4(t.Context(), 8, []string{"HPCG", "IMB"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 { // 2 apps x 4 topologies
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Paper: ACT deviation <= 3%.
	if res.MaxDeviation > 0.03 {
		t.Errorf("max ACT deviation %.4f > 3%%", res.MaxDeviation)
	}
	for _, c := range res.Cells {
		if c.ACTSDT <= 0 || c.ACTSim <= 0 {
			t.Errorf("%s/%s: non-positive ACT", c.App, c.Topology)
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "HPCG") {
		t.Error("format incomplete")
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(t.Context(), []int{2, 8, 16}, 64*1024, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		// SDT always pays at least the full-testbed time.
		if p.SDTFactor < 1 {
			t.Errorf("nodes=%d: SDT factor %.2f < 1 (deploy time must add)", p.Nodes, p.SDTFactor)
		}
	}
	// Paper shape: the simulator slowdown grows with node count while
	// the SDT factor amortises toward 1 as the ACT grows. (At trivial
	// scale the zero-allocation engine can outpace emulated real time,
	// so the slower-than-real-time claim is asserted only where the
	// figure makes it: at the largest node count.)
	if res.Points[2].SimFactor <= res.Points[0].SimFactor {
		t.Errorf("simulator slowdown did not grow with nodes: %v", res.Points)
	}
	if res.Points[2].SimFactor <= 1 {
		t.Errorf("nodes=%d: simulator factor %.2f <= 1", res.Points[2].Nodes, res.Points[2].SimFactor)
	}
	if res.Points[2].SDTFactor >= res.Points[0].SDTFactor {
		t.Errorf("SDT factor did not amortise: %v", res.Points)
	}
}

func TestIsolation(t *testing.T) {
	res, err := Isolation()
	if err != nil {
		t.Fatal(err)
	}
	if !res.IntraADelivered || !res.IntraBDelivered {
		t.Error("intra-tenant traffic lost")
	}
	if res.CrossDelivered {
		t.Error("cross-tenant packet delivered: isolation violated")
	}
}

func TestActiveRoutingReducesACT(t *testing.T) {
	res, err := ActiveRouting(t.Context(), 8, 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction <= 0 {
		t.Errorf("active routing did not reduce ACT: minimal %v, active %v",
			res.ACTMinimal, res.ACTActive)
	}
}

func TestFlowTableUsage(t *testing.T) {
	res, err := FlowTableUsage()
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 2 {
		t.Fatalf("switches = %d, want 2", res.Switches)
	}
	for i := 0; i < res.Switches; i++ {
		if res.MergedPerSwitch[i] < 150 || res.MergedPerSwitch[i] > 450 {
			t.Errorf("switch %d merged entries = %d, want ~300 (§VII-C)", i, res.MergedPerSwitch[i])
		}
		if res.NaivePerSwitch[i] <= res.MergedPerSwitch[i] {
			t.Errorf("switch %d: naive %d <= merged %d", i, res.NaivePerSwitch[i], res.MergedPerSwitch[i])
		}
	}
}

func TestTable1(t *testing.T) {
	res := Table1()
	var buf bytes.Buffer
	res.Format(&buf)
	for _, want := range []string{"Simulator", "Emulator", "Testbed", "SDT"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table I missing %s", want)
		}
	}
}
