package experiments

// Parallel sweep support: every figure/table whose runs are independent
// simulations fans out one simulation per worker through
// core.ParallelFor (Testbed.RunBatch offers the same fan-out for
// caller-defined job lists via the sdt facade). Each *Par function is
// the real implementation; the original serial entry points delegate
// with workers == 1, which preserves their outputs bit for bit.
//
// Two caveats, both documented in EXPERIMENTS.md:
//
//   - Simulated results are identical at any worker count (every
//     simulation owns its engine and RNG; shared topologies, route
//     sets, and SDT deployments are primed serially before the
//     fan-out).
//   - Wall-clock-derived columns (the simulator evaluation times of
//     Fig. 13 / Table IV) measure contended wall clock when workers >
//     1; reproduce those absolute numbers with workers == 1.

import (
	"repro/internal/core"
	"repro/internal/netsim"
)

// fig12Panels is the panel order of cmd/sdtbench's fig12 output.
func fig12Panels() []struct {
	Mode core.Mode
	PFC  bool
} {
	return []struct {
		Mode core.Mode
		PFC  bool
	}{
		{core.SDT, true}, {core.FullTestbed, true},
		{core.SDT, false}, {core.FullTestbed, false},
	}
}

// Fig12Panels runs the four incast panels (PFC on/off x SDT/full
// testbed), one per worker, in the order sdtbench prints them.
func Fig12Panels(duration netsim.Time, workers int) ([]*Fig12Result, error) {
	panels := fig12Panels()
	out := make([]*Fig12Result, len(panels))
	err := core.ParallelFor(workers, len(panels), func(i int) error {
		r, err := Fig12(panels[i].Mode, panels[i].PFC, duration)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
