// Package experiments regenerates every table and figure of the
// paper's evaluation (§VI). Each experiment returns a structured
// result with a Format method printing rows comparable to the paper's;
// cmd/sdtbench exposes them on the command line and bench_test.go wraps
// them in testing.B benchmarks.
//
// Scale note: the paper's runs last up to 16 real seconds on hardware;
// packet-level simulation of that volume is exactly the cost Fig. 13
// quantifies. The experiments therefore accept a Scale knob (1 = test
// size, larger = closer to paper size). Shapes — who wins, relative
// overheads, trends — are preserved at every scale; EXPERIMENTS.md
// records the mapping.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

// partitionOpts is the shared partitioner configuration for
// experiments (deterministic defaults).
func partitionOpts() partition.Options { return partition.Options{} }

// paperSwitches is the 3x H3C S6861 cluster of §VI-A1.
func paperSwitches() []projection.PhysicalSwitch {
	return []projection.PhysicalSwitch{
		projection.H3CS6861("s6861-a"),
		projection.H3CS6861("s6861-b"),
		projection.H3CS6861("s6861-c"),
	}
}

// fig10Topology is the 8-switch chain with one node per switch used
// for the latency and bandwidth tests (Fig. 10).
func fig10Topology() *topology.Graph { return topology.Line(8, 1) }

// testbedSizedFor returns a testbed with enough H3C-class switches for
// the topology. The paper's 3-switch cluster covers most of Table IV;
// the 4x4x4 torus needs 448 ports (>3x88), so the cluster grows —
// documented as a substitution in EXPERIMENTS.md.
func testbedSizedFor(g *topology.Graph) (*core.Testbed, error) {
	need := g.SwitchPortCount() + g.HostFacingPorts()
	count := (need+87)/88 + 1
	if count < 3 {
		count = 3
	}
	var sw []projection.PhysicalSwitch
	for i := 0; i < count; i++ {
		sw = append(sw, projection.H3CS6861(fmt.Sprintf("s6861-%d", i)))
	}
	return core.NewTestbed(sw, []*topology.Graph{g})
}

// ms renders a duration rounded for tables.
func ms(d time.Duration) string { return d.Round(time.Microsecond).String() }

// pct renders a fraction as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.3f%%", f*100) }

// simSeconds converts simulated Time to float seconds.
func simSeconds(t netsim.Time) float64 { return t.Seconds() }

// buildModeNet constructs full-testbed and SDT networks for one
// topology, sharing a single controller deployment for the SDT side.
func buildModeNet(g *topology.Graph, strat routing.Strategy) (full, sdt func() (*netsim.Network, error), deploy time.Duration, err error) {
	tb, err := core.PaperTestbed([]*topology.Graph{g})
	if err != nil {
		return nil, nil, 0, err
	}
	full = func() (*netsim.Network, error) {
		n, _, e := tb.Network(g, strat, core.FullTestbed)
		return n, e
	}
	sdt = func() (*netsim.Network, error) {
		n, _, e := tb.Network(g, strat, core.SDT)
		return n, e
	}
	// Prime the deployment up front: the deploy time is then known, and
	// later full()/sdt() calls — possibly concurrent under a parallel
	// sweep — only read the controller and topology caches.
	var dep time.Duration
	if _, d, err := tb.Network(g, strat, core.SDT); err != nil {
		return nil, nil, 0, err
	} else if d != nil {
		dep = d.DeployTime
	}
	return full, sdt, dep, nil
}

// writeHeader prints a table title.
func writeHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
