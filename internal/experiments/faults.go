package experiments

// The fault-injection scenario sets: open-loop traffic over fabrics
// that lose links and switches mid-run, with the reactive controller
// repairing routes around each outage. faults-sweep crosses topology ×
// routing strategy × fault count; faults-flap stresses a single
// MTBF/MTTR-flapping link under incast. Everything — flow schedules,
// fault times, failed-element choices — derives from the seed, so
// rerunning with equal seeds is byte-identical at any -parallel worker
// count (the golden harness and the determinism tests pin this).

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func init() {
	Register(120, "faults-sweep", "faults: link failures + controller reroute, topology x strategy x fault count, FCT and recovery",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := FaultSweep(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldFaults, FieldWorkers, FieldShards)
	Register(130, "faults-flap", "faults: single-link MTBF/MTTR flapping under incast, recovery metrics per flap rate",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := FaultFlap(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldMTBF, FieldWorkers, FieldShards)
}

// Sweep fault geometry, relative to the flow schedule's injection
// window: open-loop schedules compress time (the 16-rank uniform grid
// injects its whole load in tens of microseconds), so the sweep scales
// the outage and the controller's detection+install latency with the
// window rather than using wall-realistic constants — each outage lasts
// a quarter of the window and repair lands after a sixteenth, keeping
// the loss→repair→reroute→heal sequence visible inside the traffic at
// any -flows value. faults-flap keeps the realistic default latency:
// its incast window spans tens of milliseconds.
const (
	sweepOutageFrac = 4  // outage = window / sweepOutageFrac
	sweepRepairFrac = 16 // repair latency = window / sweepRepairFrac
)

// FaultSweepCell is one (topology, strategy, fault count) grid point.
type FaultSweepCell struct {
	Topo     string
	Strategy string
	Faults   int
	Flows    int
	// Results.
	Completed  int
	Lost       int64 // packets dropped by dead elements
	Drops      int64 // congestion / table-miss drops (post-repair blackholes)
	Churn      int   // rules added+removed across all repairs
	Reconv     netsim.Time
	ReconvN    int
	P50, P99   float64 // FCT slowdown percentiles over completed flows
	Incomplete int
}

// FaultSweepResult is the full grid.
type FaultSweepResult struct {
	Seed  int64
	Cells []FaultSweepCell
}

// FaultSweep runs seeded uniform open-loop traffic (scaled web-search
// sizes, load 0.3) on fat-tree, dragonfly and 2D torus, under each
// topology's Table III strategy and under generic shortest-path, while
// {1, 2, 4} seeded core links fail one-shot for 1 ms each, spread
// across the flow window; the reactive controller repairs after the
// default detection latency. Params: Seed (0 = 1), Flows (0 = 96 per
// cell), Faults (> 0 replaces the fault-count axis), Workers.
func FaultSweep(ctx context.Context, p Params) (*FaultSweepResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 96
	}
	faultCounts := []int{1, 2, 4}
	if p.Faults > 0 {
		faultCounts = []int{p.Faults}
	}
	topos := []*topology.Graph{
		topology.FatTree(4),
		topology.Dragonfly(4, 9, 2, 1),
		topology.Torus2D(4, 4, 1),
	}
	cfg := netsim.DefaultConfig()
	sizes := loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/64)
	const ranks = 16
	const load = 0.3

	res := &FaultSweepResult{Seed: seed}
	var jobs []core.Job
	var flowSets []*loadgen.FlowSet
	for _, g := range topos {
		tb, err := core.PaperTestbed([]*topology.Graph{g})
		if err != nil {
			return nil, err
		}
		for _, strat := range []routing.Strategy{nil, routing.ShortestPath{}} {
			name := routing.ForTopology(g).Name()
			if strat != nil {
				name = strat.Name()
			}
			for _, nf := range faultCounts {
				cellSeed := seed + int64(len(res.Cells))
				fs, err := loadgen.Spec{
					Ranks: ranks, Pattern: loadgen.Uniform(), Sizes: sizes,
					Load: load, Flows: flows, Seed: cellSeed, LinkBps: cfg.LinkBps,
				}.Generate()
				if err != nil {
					return nil, err
				}
				spec, err := oneShotLinkFaults(g, nf, cellSeed, fs)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, FaultSweepCell{
					Topo: g.Name, Strategy: name, Faults: nf, Flows: flows,
				})
				flowSets = append(flowSets, fs)
				jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
					Topo: g, Flows: fs.Flows, Mode: core.FullTestbed,
					Strategy: strat, Faults: spec,
				}})
			}
		}
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers), core.WithShards(p.Shards))
	if err != nil {
		return nil, err
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		fillFaultCell(c, results[i], flowSets[i], cfg)
	}
	return res, nil
}

// oneShotLinkFaults builds the sweep's fault spec: nf distinct seeded
// core links fail at times evenly spread across the flow schedule's
// injection window, each healing after a quarter of the window; the
// repair latency scales with the window (see the fraction constants).
func oneShotLinkFaults(g *topology.Graph, nf int, seed int64, fs *loadgen.FlowSet) (*faults.Spec, error) {
	edges := faults.PickCoreEdges(g, nf, seed)
	if len(edges) < nf {
		return nil, fmt.Errorf("faults: topology %q has only %d core edges, need %d", g.Name, len(edges), nf)
	}
	window := fs.Flows[len(fs.Flows)-1].Start
	outage := window / sweepOutageFrac
	repair := window / sweepRepairFrac
	if repair < netsim.Microsecond {
		repair = netsim.Microsecond
	}
	if outage <= repair {
		outage = 2 * repair
	}
	spec := &faults.Spec{Seed: seed, RepairLatency: repair}
	for i, e := range edges {
		at := window * netsim.Time(i+1) / netsim.Time(nf+1)
		spec.Events = append(spec.Events,
			faults.Event{At: at, Kind: faults.LinkDown, Elem: e},
			faults.Event{At: at + outage, Kind: faults.LinkUp, Elem: e},
		)
	}
	return spec, nil
}

// fillFaultCell reads one run's fault + FCT results into a cell.
func fillFaultCell(c *FaultSweepCell, r *core.RunResult, fs *loadgen.FlowSet, cfg netsim.Config) {
	rep := telemetry.MeasureFCT(fs.Flows, cfg.LinkBps, idealBase(cfg), []int{})
	c.Completed = rep.Completed
	c.Lost = r.FaultDrops
	c.Drops = r.Drops
	c.Incomplete = r.Incomplete
	if len(rep.Buckets) > 0 && rep.Buckets[0].Count > 0 {
		c.P50, c.P99 = rep.Buckets[0].P50, rep.Buckets[0].P99
	}
	if r.Recovery != nil {
		c.Churn = r.Recovery.TotalChurn()
		c.Reconv, c.ReconvN = r.Recovery.MeanReconvergence()
	}
}

// Format prints the fault sweep grid.
func (r *FaultSweepResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf("faults: link failures with controller reroute (uniform load 0.3, outages window/4, repair window/16, seed %d)", r.Seed))
	fmt.Fprintf(w, "%-16s %-16s %6s %6s %9s %6s %6s %6s %10s %8s %8s\n",
		"topology", "strategy", "faults", "flows", "completed", "lost", "drops", "churn", "reconv", "p50", "p99")
	for i := range r.Cells {
		c := &r.Cells[i]
		reconv := "-"
		if c.ReconvN > 0 {
			reconv = fmt.Sprintf("%.0fus", float64(c.Reconv)/float64(netsim.Microsecond))
		}
		fmt.Fprintf(w, "%-16s %-16s %6d %6d %9d %6d %6d %6d %10s %7.2fx %7.2fx\n",
			c.Topo, c.Strategy, c.Faults, c.Flows, c.Completed,
			c.Lost, c.Drops, c.Churn, reconv, c.P50, c.P99)
	}
}

// FaultFlapRow is one MTBF point of the flap study.
type FaultFlapRow struct {
	MTBF, MTTR netsim.Time
	// Edge is the flapping uplink (the victim is seeded per row, so
	// each row flaps its own victim's ToR uplink).
	Edge      int
	Downs     int // link-down events in the schedule
	Flows     int
	Completed int
	Lost      int64
	Churn     int
	Reconv    netsim.Time
	ReconvN   int
	P99       float64
	Pauses    int64
}

// FaultFlapResult is the §VI-C-style incast study under a flapping
// uplink.
type FaultFlapResult struct {
	Seed int64
	Rows []FaultFlapRow
}

// FaultFlap runs incast 8:1 (64 kB flows, PFC, load 0.8) on the k=4
// fat-tree while one uplink of the victim's ToR flaps with exponential
// MTBF/MTTR (MTTR = MTBF/4), the reactive controller repairing after
// each transition. Rows sweep MTBF over {1, 2, 4, 8} ms. Params: Seed
// (0 = 1), Flows (0 = 96), MTBF (> 0 replaces the MTBF axis), Workers.
func FaultFlap(ctx context.Context, p Params) (*FaultFlapResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 96
	}
	mtbfs := []netsim.Time{netsim.Millisecond, 2 * netsim.Millisecond, 4 * netsim.Millisecond, 8 * netsim.Millisecond}
	if p.MTBF > 0 {
		mtbfs = []netsim.Time{p.MTBF}
	}
	const fanin = 8
	g := topology.FatTree(4)
	cfg := netsim.DefaultConfig()
	tb, err := core.PaperTestbed([]*topology.Graph{g})
	if err != nil {
		return nil, err
	}
	// Explicit rank placement (the same deterministic spread Run would
	// pick) so the victim's host vertex — and with it the flapping
	// uplink — is known before the run.
	hosts := core.PickSpread(g.Hosts(), fanin+1)

	res := &FaultFlapResult{Seed: seed}
	var jobs []core.Job
	var flowSets []*loadgen.FlowSet
	var scheds [][]faults.Event
	for i, mtbf := range mtbfs {
		fs, err := loadgen.Spec{
			Ranks: fanin + 1, Pattern: loadgen.Incast(fanin),
			Sizes: loadgen.FixedSize(64 * 1024),
			Load:  0.8, Flows: flows, Seed: seed + int64(i),
			LinkBps: cfg.LinkBps,
		}.Generate()
		if err != nil {
			return nil, err
		}
		// The flapping link: the lowest-ID uplink of this row's victim.
		victim := hosts[fs.Flows[0].Dst]
		tor := g.HostSwitch(victim)
		edge := -1
		for _, eid := range g.IncidentEdges(tor) {
			e := g.Edges[eid]
			far := e.A
			if far == tor {
				far = e.B
			}
			if g.Vertices[far].Kind == topology.Switch && (edge < 0 || eid < edge) {
				edge = eid
			}
		}
		if edge < 0 {
			return nil, fmt.Errorf("faults-flap: victim ToR %d has no uplink", tor)
		}
		spec := &faults.Spec{
			Flaps:   []faults.Flap{faults.LinkFlap(edge, mtbf, mtbf/4)},
			Horizon: fs.Flows[len(fs.Flows)-1].Start,
			Seed:    seed + int64(i),
		}
		sched, err := spec.Schedule(g)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FaultFlapRow{MTBF: mtbf, MTTR: mtbf / 4, Edge: edge, Flows: flows})
		flowSets = append(flowSets, fs)
		scheds = append(scheds, sched)
		jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
			Topo: g, Flows: fs.Flows, Mode: core.FullTestbed, Hosts: hosts, Faults: spec,
		}})
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers), core.WithShards(p.Shards))
	if err != nil {
		return nil, err
	}
	for i := range res.Rows {
		row := &res.Rows[i]
		for _, ev := range scheds[i] {
			if ev.Kind == faults.LinkDown {
				row.Downs++
			}
		}
		rep := telemetry.MeasureFCT(flowSets[i].Flows, cfg.LinkBps, idealBase(cfg), []int{})
		row.Completed = rep.Completed
		if len(rep.Buckets) > 0 && rep.Buckets[0].Count > 0 {
			row.P99 = rep.Buckets[0].P99
		}
		row.Lost = results[i].FaultDrops
		row.Pauses = results[i].Pauses
		if results[i].Recovery != nil {
			row.Churn = results[i].Recovery.TotalChurn()
			row.Reconv, row.ReconvN = results[i].Recovery.MeanReconvergence()
		}
	}
	return res, nil
}

// Format prints the flap table.
func (r *FaultFlapResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf("faults: incast 8:1 under a flapping ToR uplink (64KB flows, PFC, seed %d)", r.Seed))
	fmt.Fprintf(w, "%8s %8s %5s %6s %6s %9s %6s %6s %10s %9s %8s\n",
		"MTBF", "MTTR", "edge", "downs", "flows", "completed", "lost", "churn", "reconv", "p99 slow", "pauses")
	for i := range r.Rows {
		row := &r.Rows[i]
		reconv := "-"
		if row.ReconvN > 0 {
			reconv = fmt.Sprintf("%.0fus", float64(row.Reconv)/float64(netsim.Microsecond))
		}
		fmt.Fprintf(w, "%6.1fms %6.2fms %5d %6d %6d %9d %6d %6d %10s %8.2fx %8d\n",
			float64(row.MTBF)/float64(netsim.Millisecond),
			float64(row.MTTR)/float64(netsim.Millisecond),
			row.Edge, row.Downs, row.Flows, row.Completed, row.Lost, row.Churn,
			reconv, row.P99, row.Pauses)
	}
}
