package experiments

// The live-reconfiguration scenario sets: open-loop traffic over a
// fabric whose logical topology is swapped mid-run by the staged
// drain→transition→reconverge protocol (internal/reconfig).
// reconfig-sweep crosses transition pairs × routing strategy, including
// a growth step and an injected rollback; reconfig-under-load holds the
// fabric at high load under incast and permutation traffic and buckets
// FCT slowdowns before/during/after the disruption window. Everything
// derives from the seed, so rerunning with equal seeds is
// byte-identical at any -parallel worker count (the golden harness and
// the determinism tests pin this).

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/projection"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func init() {
	Register(150, "reconfig-sweep", "reconfig: live topology transitions (swap/growth/rollback) x strategy, degradation and cost columns",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := ReconfigSweep(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldWorkers, FieldShards)
	Register(160, "reconfig-under-load", "reconfig: fat-tree transition under incast/permutation load, FCT before/during/after the disruption",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := ReconfigUnderLoad(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldLoad, FieldReconfig, FieldWorkers, FieldShards)
}

// Transition geometry, relative to the flow schedule's injection window
// (open-loop schedules compress time, exactly as for the fault sweep):
// the transition fires mid-window, each of the drain and install stages
// spans an eighth of it, and the degraded route patch lands a
// thirty-second in — keeping drain losses, the patched interlude, and
// post-restore reconvergence all visible inside the traffic at any
// -flows value.
const (
	reconfigAtFrac      = 2  // transition at window / reconfigAtFrac
	reconfigStageFrac   = 8  // drain = install = window / reconfigStageFrac
	reconfigPatchFrac   = 32 // patch latency = window / reconfigPatchFrac
	errInjectedRollback = "injected validation failure"
)

// midWindowSpec builds the window-scaled one-transition spec; inject
// adds a validation hook that always fails, forcing a rollback at the
// commit point.
func midWindowSpec(target *topology.Graph, fs *loadgen.FlowSet, inject bool) *reconfig.Spec {
	window := fs.Flows[len(fs.Flows)-1].Start
	tr := reconfig.Transition{
		At:      window / reconfigAtFrac,
		Target:  target,
		Drain:   window / reconfigStageFrac,
		Install: window / reconfigStageFrac,
	}
	if inject {
		tr.Validate = func(*projection.Plan) error { return errors.New(errInjectedRollback) }
	}
	return &reconfig.Spec{
		Transitions:  []reconfig.Transition{tr},
		PatchLatency: window / reconfigPatchFrac,
	}
}

// ReconfigSweepCell is one (transition, strategy) grid point.
type ReconfigSweepCell struct {
	Src, Dst string
	Strategy string
	Inject   bool
	Flows    int
	// Results.
	Outcome    string
	Links      int
	Lost       int64
	Churn      int
	Reconv     netsim.Time // -1 if never reconverged
	Entries    int
	ReconfigMs float64 // modelled controller downtime, ms
	HWCost     float64
	P99        float64 // FCT slowdown over completed flows
	Incomplete int
}

// ReconfigSweepResult is the full grid.
type ReconfigSweepResult struct {
	Seed  int64
	Cells []ReconfigSweepCell
}

// ReconfigSweep runs seeded uniform open-loop traffic (scaled
// web-search sizes, load 0.3) on a fabric transitioning mid-run:
// fat-tree→dragonfly and back (the swap), 4x4→4x6 torus (growth), and
// fat-tree→torus with an injected validation failure (rollback), each
// under the source topology's Table III strategy and under generic
// shortest-path. Params: Seed (0 = 1), Flows (0 = 96 per cell),
// Workers.
func ReconfigSweep(ctx context.Context, p Params) (*ReconfigSweepResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 96
	}
	// Graph constructors, not instances: every cell gets fresh graphs so
	// no lazy topology cache is shared across the sweep's workers.
	pairs := []struct {
		src, dst func() *topology.Graph
		inject   bool
	}{
		{func() *topology.Graph { return topology.FatTree(4) }, func() *topology.Graph { return topology.Dragonfly(4, 9, 2, 1) }, false},
		{func() *topology.Graph { return topology.Dragonfly(4, 9, 2, 1) }, func() *topology.Graph { return topology.FatTree(4) }, false},
		{func() *topology.Graph { return topology.Torus2D(4, 4, 1) }, func() *topology.Graph { return topology.Torus2D(4, 6, 1) }, false},
		{func() *topology.Graph { return topology.FatTree(4) }, func() *topology.Graph { return topology.Torus2D(4, 4, 1) }, true},
	}
	cfg := netsim.DefaultConfig()
	sizes := loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/64)
	const ranks = 16
	const load = 0.3

	res := &ReconfigSweepResult{Seed: seed}
	var jobs []core.Job
	var flowSets []*loadgen.FlowSet
	for _, pair := range pairs {
		for _, generic := range []bool{false, true} {
			g, target := pair.src(), pair.dst()
			tb, err := core.PaperTestbed([]*topology.Graph{g, target})
			if err != nil {
				return nil, err
			}
			var strat routing.Strategy
			name := routing.ForTopology(g).Name()
			if generic {
				strat = routing.ShortestPath{}
				name = strat.Name()
			}
			cellSeed := seed + int64(len(res.Cells))
			fs, err := loadgen.Spec{
				Ranks: ranks, Pattern: loadgen.Uniform(), Sizes: sizes,
				Load: load, Flows: flows, Seed: cellSeed, LinkBps: cfg.LinkBps,
			}.Generate()
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, ReconfigSweepCell{
				Src: g.Name, Dst: target.Name, Strategy: name, Inject: pair.inject, Flows: flows,
			})
			flowSets = append(flowSets, fs)
			jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
				Topo: g, Flows: fs.Flows, Mode: core.FullTestbed,
				Strategy: strat, Reconfig: midWindowSpec(target, fs, pair.inject),
			}})
		}
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers), core.WithShards(p.Shards))
	if err != nil {
		return nil, err
	}
	for i := range res.Cells {
		fillReconfigCell(&res.Cells[i], results[i], flowSets[i], cfg)
	}
	return res, nil
}

// fillReconfigCell reads one run's transition + FCT results into a cell.
func fillReconfigCell(c *ReconfigSweepCell, r *core.RunResult, fs *loadgen.FlowSet, cfg netsim.Config) {
	rep := telemetry.MeasureFCT(fs.Flows, cfg.LinkBps, idealBase(cfg), []int{})
	if len(rep.Buckets) > 0 && rep.Buckets[0].Count > 0 {
		c.P99 = rep.Buckets[0].P99
	}
	c.Incomplete = r.Incomplete
	c.Reconv = -1
	if r.Reconfig == nil || len(r.Reconfig.Transitions) == 0 {
		return
	}
	e := &r.Reconfig.Transitions[0]
	switch {
	case e.Rejected:
		c.Outcome = "rejected"
	case e.Committed:
		c.Outcome = "committed"
	default:
		c.Outcome = "rolled-back"
	}
	c.Links = e.DrainedLinks
	c.Lost = r.Reconfig.PacketsLost
	c.Churn = e.TotalChurn()
	c.Reconv = e.Reconvergence()
	c.Entries = e.Entries
	c.ReconfigMs = e.ReconfigTime.Seconds() * 1e3
	c.HWCost = e.HardwareCost
}

// Format prints the reconfiguration sweep grid.
func (r *ReconfigSweepResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf("reconfig: live topology transitions under uniform load 0.3 (drain window/8, install window/8, patch window/32, seed %d)", r.Seed))
	fmt.Fprintf(w, "%-16s %-16s %-16s %-11s %5s %6s %6s %10s %8s %9s %9s %8s\n",
		"from", "to", "strategy", "outcome", "links", "lost", "churn", "reconv", "entries", "reconfig", "hw-cost", "p99")
	for i := range r.Cells {
		c := &r.Cells[i]
		reconv, entries, reconf, hw := "-", "-", "-", "-"
		if c.Reconv >= 0 {
			reconv = fmt.Sprintf("%.0fus", float64(c.Reconv)/float64(netsim.Microsecond))
		}
		if c.Outcome == "committed" {
			entries = fmt.Sprintf("%d", c.Entries)
			reconf = fmt.Sprintf("%.1fms", c.ReconfigMs)
			hw = fmt.Sprintf("$%.0f", c.HWCost)
		}
		fmt.Fprintf(w, "%-16s %-16s %-16s %-11s %5d %6d %6d %10s %8s %9s %9s %7.2fx\n",
			c.Src, c.Dst, c.Strategy, c.Outcome, c.Links, c.Lost, c.Churn,
			reconv, entries, reconf, hw, c.P99)
	}
}

// ReconfigLoadRow is one (pattern, outcome) row of the under-load study.
type ReconfigLoadRow struct {
	Pattern string
	Inject  bool
	Flows   int
	// Results.
	Outcome    string
	Lost       int64
	Incomplete int
	Reconv     netsim.Time
	Entries    int
	ReconfigMs float64
	// FCT p99 slowdowns over flows started before, during, and after
	// the disruption window (drain → restore); a phase with no completed
	// flows reports 0.
	Before, During, After    float64
	BeforeN, DuringN, AfterN int
}

// ReconfigUnderLoadResult is the §VI-C-style graceful-degradation study.
type ReconfigUnderLoadResult struct {
	Seed   int64
	Target string
	Rows   []ReconfigLoadRow
}

// ReconfigUnderLoad runs incast 8:1 and permutation traffic (64 kB
// flows, PFC, load 0.8) on the k=4 fat-tree while it transitions to the
// -reconfig target (dragonfly by default, or a 4x4 torus) mid-window —
// once committing, once with an injected validation failure forcing a
// rollback — and buckets FCT p99 slowdowns by whether the flow started
// before, during, or after the disruption window. Params: Seed (0 = 1),
// Flows (0 = 96), Load (0 = 0.8), Reconfig ("" = dragonfly), Workers.
func ReconfigUnderLoad(ctx context.Context, p Params) (*ReconfigUnderLoadResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 96
	}
	load := p.Load
	if load == 0 {
		load = 0.8
	}
	newTarget := func() *topology.Graph { return topology.Dragonfly(4, 9, 2, 1) }
	switch p.Reconfig {
	case "", "dragonfly":
	case "torus":
		newTarget = func() *topology.Graph { return topology.Torus2D(4, 4, 1) }
	default:
		return nil, fmt.Errorf("reconfig-under-load: unknown target %q (dragonfly|torus)", p.Reconfig)
	}
	const fanin = 8
	patterns := []struct {
		name  string
		pat   loadgen.Pattern
		ranks int
	}{
		{"incast-8:1", loadgen.Incast(fanin), fanin + 1},
		{"permutation", loadgen.Permutation(), 16},
	}
	cfg := netsim.DefaultConfig()

	res := &ReconfigUnderLoadResult{Seed: seed}
	var jobs []core.Job
	var flowSets []*loadgen.FlowSet
	var specs []*reconfig.Spec
	for _, pt := range patterns {
		for _, inject := range []bool{false, true} {
			g, target := topology.FatTree(4), newTarget()
			res.Target = target.Name
			tb, err := core.PaperTestbed([]*topology.Graph{g, target})
			if err != nil {
				return nil, err
			}
			rowSeed := seed + int64(len(res.Rows))
			fs, err := loadgen.Spec{
				Ranks: pt.ranks, Pattern: pt.pat, Sizes: loadgen.FixedSize(64 * 1024),
				Load: load, Flows: flows, Seed: rowSeed, LinkBps: cfg.LinkBps,
			}.Generate()
			if err != nil {
				return nil, err
			}
			spec := midWindowSpec(target, fs, inject)
			res.Rows = append(res.Rows, ReconfigLoadRow{Pattern: pt.name, Inject: inject, Flows: flows})
			flowSets = append(flowSets, fs)
			specs = append(specs, spec)
			jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
				Topo: g, Flows: fs.Flows, Mode: core.FullTestbed, Reconfig: spec,
			}})
		}
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers), core.WithShards(p.Shards))
	if err != nil {
		return nil, err
	}
	for i := range res.Rows {
		row := &res.Rows[i]
		r := results[i]
		row.Incomplete = r.Incomplete
		row.Reconv = -1
		// Phase boundaries from the actual protocol timestamps, not the
		// spec: a rejected transition would leave the whole run "before".
		drainAt, restoreAt := netsim.Time(-1), netsim.Time(-1)
		if r.Reconfig != nil && len(r.Reconfig.Transitions) > 0 {
			e := &r.Reconfig.Transitions[0]
			switch {
			case e.Rejected:
				row.Outcome = "rejected"
			case e.Committed:
				row.Outcome = "committed"
			default:
				row.Outcome = "rolled-back"
			}
			row.Lost = r.Reconfig.PacketsLost
			row.Reconv = e.Reconvergence()
			row.Entries = e.Entries
			row.ReconfigMs = e.ReconfigTime.Seconds() * 1e3
			if !e.Rejected {
				drainAt, restoreAt = e.DrainAt, e.RestoreAt
			}
		}
		var before, during, after []netsim.Flow
		for _, f := range flowSets[i].Flows {
			switch {
			case drainAt < 0 || f.Start < drainAt:
				before = append(before, f)
			case restoreAt < 0 || f.Start < restoreAt:
				during = append(during, f)
			default:
				after = append(after, f)
			}
		}
		row.Before, row.BeforeN = phaseP99(before, cfg)
		row.During, row.DuringN = phaseP99(during, cfg)
		row.After, row.AfterN = phaseP99(after, cfg)
	}
	return res, nil
}

// phaseP99 measures the p99 FCT slowdown over one phase's flows,
// reporting how many completed.
func phaseP99(flows []netsim.Flow, cfg netsim.Config) (float64, int) {
	if len(flows) == 0 {
		return 0, 0
	}
	rep := telemetry.MeasureFCT(flows, cfg.LinkBps, idealBase(cfg), []int{})
	if len(rep.Buckets) == 0 || rep.Buckets[0].Count == 0 {
		return 0, rep.Completed
	}
	return rep.Buckets[0].P99, rep.Completed
}

// Format prints the under-load degradation table.
func (r *ReconfigUnderLoadResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf("reconfig: fat-tree-4 -> %s under load (64KB flows, PFC, seed %d); FCT p99 by flow start phase", r.Target, r.Seed))
	fmt.Fprintf(w, "%-12s %-11s %6s %6s %10s %10s %8s %9s %12s %12s %12s\n",
		"pattern", "outcome", "flows", "lost", "incompl", "reconv", "entries", "reconfig", "before p99", "during p99", "after p99")
	for i := range r.Rows {
		row := &r.Rows[i]
		reconv, entries, reconf := "-", "-", "-"
		if row.Reconv >= 0 {
			reconv = fmt.Sprintf("%.0fus", float64(row.Reconv)/float64(netsim.Microsecond))
		}
		if row.Outcome == "committed" {
			entries = fmt.Sprintf("%d", row.Entries)
			reconf = fmt.Sprintf("%.1fms", row.ReconfigMs)
		}
		phase := func(p float64, n int) string {
			if n == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx/%d", p, n)
		}
		fmt.Fprintf(w, "%-12s %-11s %6d %6d %10d %10s %8s %9s %12s %12s %12s\n",
			row.Pattern, row.Outcome, row.Flows, row.Lost, row.Incomplete, reconv, entries, reconf,
			phase(row.Before, row.BeforeN), phase(row.During, row.DuringN), phase(row.After, row.AfterN))
	}
}
