package experiments

// Output canonicalisation shared by the golden-output harness
// (golden_test.go) and the service layer's cache verification: a
// scenario set's formatted table is byte-stable *except* for
// wall-clock-derived columns, which vary run to run. Scrub masks
// exactly those columns, so two outputs of the same (scenario, params,
// seed, shards) spec compare equal iff the simulated results match —
// the comparator behind both the committed goldens and the "a cache
// hit is byte-identical to a fresh run" contract.

import (
	"regexp"
	"strconv"
	"strings"
)

// Scrub canonicalises one scenario set's formatted output for
// comparison: wall-clock-derived columns are replaced with "<wall>"
// (and host-dependent header values masked) on the sets that print
// them; every other set's output passes through untouched and must
// match byte-for-byte.
func Scrub(name, out string) string {
	if scrub := outputScrub[name]; scrub != nil {
		return scrub(out)
	}
	return out
}

// outputScrub maps experiment names whose output contains wall-clock-
// derived columns to a canonicalising scrubber. Experiments not listed
// compare byte-for-byte.
var outputScrub = map[string]func(string) string{
	// fig13 data rows: nodes, ACT, full eval, SDT eval, sim eval,
	// SDT/full, sim/full — sim eval (4) and sim/full (6) are wall.
	"fig13": maskColumns(func(f []string) bool {
		if len(f) != 7 {
			return false
		}
		_, err := strconv.Atoi(f[0])
		return err == nil
	}, 4, 6),
	// table4 data rows: app, topology, ranks, ACT(SDT), ACT(sim), dev,
	// eval(SDT), eval(sim), speedup — eval(sim) (7) and speedup (8)
	// are wall.
	"table4": maskColumns(func(f []string) bool {
		if len(f) != 9 {
			return false
		}
		_, err := strconv.Atoi(f[2])
		return err == nil
	}, 7, 8),
	// loadgen-sweep-xl data rows: topology, hosts, pattern, flows,
	// recomputes, 3 bucket columns, wall(ms) — only wall (8) varies;
	// the trailing speedup line is wall-clock on both sides.
	"loadgen-sweep-xl": func(out string) string {
		out = maskColumns(func(f []string) bool {
			if len(f) != 9 {
				return false
			}
			_, err := strconv.Atoi(f[1])
			if err != nil {
				return false
			}
			_, err = strconv.Atoi(f[4])
			return err == nil
		}, 8)(out)
		return flowSpeedupRe.ReplaceAllString(out, "packet <wall> flow <wall> speedup <wall>")
	},
	// shard-scale data rows: K, shards, ACT, drops, events, wall,
	// speedup — wall (5) and speedup (6) are wall-clock-derived; the
	// header also reports the host's CPU count.
	"shard-scale": func(out string) string {
		out = maskColumns(func(f []string) bool {
			if len(f) != 7 {
				return false
			}
			_, err := strconv.Atoi(f[0])
			return err == nil
		}, 5, 6)(out)
		return cpuCountRe.ReplaceAllString(out, "<cpus> CPUs")
	},
}

var cpuCountRe = regexp.MustCompile(`\d+ CPUs`)

var flowSpeedupRe = regexp.MustCompile(`packet \S+ flow \S+ speedup \S+`)

// maskColumns canonicalises whitespace (fields joined by one space, so
// masked values of different widths cannot shift layout) and replaces
// the given field indices with "<wall>" on lines the predicate
// accepts.
func maskColumns(isDataRow func(fields []string) bool, cols ...int) func(string) string {
	return func(out string) string {
		lines := strings.Split(out, "\n")
		for i, line := range lines {
			f := strings.Fields(line)
			if len(f) == 0 {
				continue
			}
			if isDataRow(f) {
				for _, c := range cols {
					f[c] = "<wall>"
				}
			}
			lines[i] = strings.Join(f, " ")
		}
		return strings.Join(lines, "\n")
	}
}
