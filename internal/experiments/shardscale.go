package experiments

// The shard-scale scenario set: the intra-run sharded simulation
// (internal/shard) exercised at a fabric 8x the loadgen sweeps' size,
// with the serial engine as its own baseline. One seeded open-loop
// schedule runs at K ∈ {1, 2, 4} shards; the deterministic columns
// (ACT, drops, events) pin each K's schedule byte-for-byte in the
// golden harness, and the wall-clock/speedup columns record how much
// of the fabric's event rate the conservative windows recover on
// multi-core hosts. The fabric overrides the default config to 100G
// links and 500 ns propagation: lookahead equals the minimum cut-link
// propagation delay, so wider windows and a denser event stream give
// each shard enough work per barrier to amortise synchronisation.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func init() {
	Register(140, "shard-scale", "shard: conservative parallel DES speedup, K=1/2/4 shards on an 8x fat-tree",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := ShardScale(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldLoad)
}

// shardScaleConfig is the fabric the scaling study runs on: 100G links
// (10x the default event density) and 500 ns propagation (5x wider
// conservative windows).
func shardScaleConfig() netsim.Config {
	cfg := netsim.DefaultConfig()
	cfg.LinkBps = 100e9
	cfg.PropDelay = 500 * netsim.Nanosecond
	return cfg
}

// ShardScaleRow is one shard count of the scaling study.
type ShardScaleRow struct {
	// K is the requested shard count; Shards is the effective one the
	// run reports (they differ only if a fallback fired — which this
	// scenario is built to avoid).
	K, Shards int
	ACT       netsim.Time
	Drops     int64
	Events    int64
	// Wall is the engine wall-clock; Speedup normalises to the K=1 row.
	Wall    time.Duration
	Speedup float64
}

// ShardScaleResult is the scaling table.
type ShardScaleResult struct {
	Topo  string
	Seed  int64
	Flows int
	CPUs  int
	Rows  []ShardScaleRow
}

// ShardScale runs one seeded uniform open-loop schedule on the k=8
// fat-tree (128 hosts — 8x the loadgen sweeps) at 1, 2 and 4 shards.
// Params: Seed (0 = 1), Flows (0 = 2500), Load (0 = 0.8). Each K is a
// distinct deterministic schedule (the shard count is part of the
// determinism key), so ACT/drops/events are byte-stable per row;
// wall-clock and speedup are machine-dependent and only meaningful on
// hosts with at least K cores.
func ShardScale(ctx context.Context, p Params) (*ShardScaleResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 2500
	}
	load := p.Load
	if load == 0 {
		load = 0.8
	}
	g := topology.FatTree(8)
	cfg := shardScaleConfig()
	tb, err := testbedSizedFor(g)
	if err != nil {
		return nil, err
	}
	fs, err := loadgen.Spec{
		Ranks:   len(g.Hosts()),
		Pattern: loadgen.Uniform(),
		Sizes:   loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/16),
		Load:    load, Flows: flows, Seed: seed, LinkBps: cfg.LinkBps,
	}.Generate()
	if err != nil {
		return nil, err
	}

	res := &ShardScaleResult{Topo: g.Name, Seed: seed, Flows: flows, CPUs: runtime.NumCPU()}
	for _, k := range []int{1, 2, 4} {
		sched := make([]netsim.Flow, len(fs.Flows))
		copy(sched, fs.Flows)
		r, err := core.Run(ctx, tb,
			core.Scenario{Topo: g, Flows: sched, Mode: core.FullTestbed},
			core.WithSimConfig(cfg), core.WithShards(k))
		if err != nil {
			return nil, err
		}
		row := ShardScaleRow{
			K: k, Shards: r.Shards, ACT: r.ACT,
			Drops: r.Drops, Events: r.Events, Wall: r.Wall,
		}
		if len(res.Rows) == 0 {
			row.Speedup = 1
		} else if r.Wall > 0 {
			row.Speedup = float64(res.Rows[0].Wall) / float64(r.Wall)
		}
		res.Rows = append(res.Rows, row)
		RecordMetric(fmt.Sprintf("shard_scale_speedup_k%d", k), row.Speedup)
	}
	return res, nil
}

// Format prints the scaling table. The wall and speedup columns are
// wall-clock-derived (masked in the golden harness); everything else
// is deterministic per shard count.
func (r *ShardScaleResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf(
		"shard-scale: conservative parallel DES on %s (100G links, 500ns lookahead, %d flows, seed %d, %d CPUs)",
		r.Topo, r.Flows, r.Seed, r.CPUs))
	fmt.Fprintf(w, "%3s %7s %12s %6s %10s %10s %8s\n",
		"K", "shards", "ACT(ms)", "drops", "events", "wall(ms)", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%3d %7d %12.3f %6d %10d %10.1f %8.2f\n",
			row.K, row.Shards, float64(row.ACT)/float64(netsim.Millisecond),
			row.Drops, row.Events,
			float64(row.Wall.Microseconds())/1000, row.Speedup)
	}
}
