package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/netsim"
)

// pinnedSpecHash is the recorded content hash of pinnedSpec below. It
// pins the canonical encoding across process restarts, Go versions,
// and machines: if this test ever fails without a deliberate
// specHashDomain bump, on-disk cache entries written by older builds
// would be misattributed.
const pinnedSpecHash = "e99eddac182c4365434a45282148e3403b1d4ef55dcb80ddcd8d1892cd150577"

func pinnedSpec() JobSpec {
	return JobSpec{
		Scenario: "loadgen-sweep",
		Seed:     7,
		Flows:    48,
		Workers:  3, // excluded from the hash
		Shards:   2,
	}
}

func TestSpecHashPinned(t *testing.T) {
	got := pinnedSpec().Hash()
	if got != pinnedSpecHash {
		t.Fatalf("canonical spec hash changed:\n got %s\nwant %s\n(bump specHashDomain if the encoding changed deliberately)", got, pinnedSpecHash)
	}
}

func TestSpecHashRoundTrip(t *testing.T) {
	s := pinnedSpec()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("spec round-trip mutated the value: %+v vs %+v", back, s)
	}
	if back.Hash() != s.Hash() {
		t.Fatalf("spec round-trip changed the hash")
	}
}

func TestSpecHashFieldOrderIndependent(t *testing.T) {
	// The same spec spelled with fields in two different orders (and
	// with explicit zeros for omitted fields) must hash identically:
	// the hash covers the canonical re-serialization, not the input.
	inputs := []string{
		`{"scenario":"loadgen-sweep","seed":7,"flows":48,"shards":2}`,
		`{"shards":2,"flows":48,"scenario":"loadgen-sweep","seed":7}`,
		`{"seed":7,"scenario":"loadgen-sweep","ranks":0,"flows":48,"shards":2,"load":0}`,
	}
	var want string
	for i, in := range inputs {
		var s JobSpec
		if err := json.Unmarshal([]byte(in), &s); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		h := s.Hash()
		if i == 0 {
			want = h
		} else if h != want {
			t.Errorf("input %d hashed to %s, want %s", i, h, want)
		}
	}
}

func TestSpecHashDistinguishesResults(t *testing.T) {
	base := pinnedSpec()
	seen := map[string]string{base.Hash(): "base"}
	for name, mut := range map[string]func(*JobSpec){
		"seed":     func(s *JobSpec) { s.Seed = 8 },
		"shards":   func(s *JobSpec) { s.Shards = 4 },
		"flows":    func(s *JobSpec) { s.Flows = 96 },
		"scenario": func(s *JobSpec) { s.Scenario = "loadgen-incast" },
		"load":     func(s *JobSpec) { s.Load = 0.5 },
		"dur":      func(s *JobSpec) { s.DurMs = 50 },
		"cc":       func(s *JobSpec) { s.CC = "timely" },
	} {
		s := base
		mut(&s)
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s collided with %s", name, prev)
		}
		seen[h] = name
	}
}

func TestSpecHashNormalization(t *testing.T) {
	// Workers never changes simulated results (golden-pinned), so it
	// must not split the cache; Seed 0 is documented as 1 everywhere.
	base := pinnedSpec()
	w := base
	w.Workers = 0
	if w.Hash() != base.Hash() {
		t.Errorf("workers split the cache key")
	}
	zero, one := base, base
	zero.Seed, one.Seed = 0, 1
	if zero.Hash() != one.Hash() {
		t.Errorf("seed 0 and its documented default 1 hash differently")
	}
}

func TestSpecValidate(t *testing.T) {
	ok := pinnedSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, s := range map[string]JobSpec{
		"empty":    {},
		"unknown":  {Scenario: "no-such-set"},
		"negative": {Scenario: "fig12", Reps: -1},
		"load>1":   {Scenario: "loadgen-incast", Load: 1.5},
		"bad cc":   {Scenario: "cc-shootout", CC: "bbr"},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s spec accepted", name)
		}
	}
}

func TestSpecParamsUnits(t *testing.T) {
	s := JobSpec{Scenario: "fig12", DurMs: 50, MTBFMs: 2.5}
	p := s.Params()
	if p.Duration != 50*netsim.Millisecond {
		t.Errorf("dur_ms 50 -> %v", p.Duration)
	}
	if want := netsim.Time(2.5 * float64(netsim.Millisecond)); p.MTBF != want {
		t.Errorf("mtbf_ms 2.5 -> %v want %v", p.MTBF, want)
	}
}

// TestSchemaRegistered pins that every registered scenario set carries
// a schema naming only canonical field descriptors, and that seeded
// sets declare their seed.
func TestSchemaRegistered(t *testing.T) {
	canon := map[string]Field{}
	for _, f := range []Field{FieldRanks, FieldReps, FieldBytes, FieldZoo, FieldDur,
		FieldWorkers, FieldSeed, FieldFlows, FieldLoad, FieldFaults, FieldMTBF,
		FieldReconfig, FieldShards, FieldCC} {
		canon[f.Name] = f
	}
	for _, e := range All() {
		seen := map[string]bool{}
		for _, f := range e.Schema {
			c, ok := canon[f.Name]
			if !ok {
				t.Errorf("%s: schema field %q is not a canonical descriptor", e.Name, f.Name)
				continue
			}
			if f != c {
				t.Errorf("%s: schema field %q diverges from the canonical descriptor", e.Name, f.Name)
			}
			if seen[f.Name] {
				t.Errorf("%s: schema field %q repeated", e.Name, f.Name)
			}
			seen[f.Name] = true
		}
	}
}
