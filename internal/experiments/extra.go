package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/netsim"
	"repro/internal/openflow"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/workload"
)

func init() {
	Register(0, "table1", "Table I: qualitative comparison of network evaluation tools",
		func(_ context.Context, _ Params, w io.Writer) error {
			Table1().Format(w)
			return nil
		})
	Register(70, "isolation", "§VI-B: hardware isolation between co-hosted topologies",
		func(_ context.Context, _ Params, w io.Writer) error {
			r, err := Isolation()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		})
	Register(80, "active", "§VI-E: UGAL active routing vs minimal routing on Dragonfly",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := ActiveRouting(ctx, 8, p.Bytes)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldBytes)
	Register(90, "tables", "§VII-C: flow-table occupancy, merged vs naive encoding",
		func(_ context.Context, _ Params, w io.Writer) error {
			r, err := FlowTableUsage()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		})
}

// Table1Result wraps the qualitative rubric of Table I.
type Table1Result struct{ Rows []costmodel.ToolRow }

// Table1 returns the paper's Table I.
func Table1() *Table1Result { return &Table1Result{Rows: costmodel.Table1()} }

// Format prints Table I.
func (r *Table1Result) Format(w io.Writer) {
	writeHeader(w, "Table I: comparison of network evaluation tools")
	fmt.Fprintf(w, "%-10s %-8s %-9s %-16s %-12s %-10s\n", "tool", "price", "manpower", "(re)config", "scalability", "efficiency")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-8s %-9s %-16s %-12s %-10s\n",
			row.Tool, row.Price, row.Manpower, row.Reconfig, row.Scalability, row.Efficiency)
	}
}

// IsolationResult is the §VI-B hardware-isolation check: two
// unconnected topologies co-hosted on one SDT must not exchange any
// packet.
type IsolationResult struct {
	IntraADelivered bool
	IntraBDelivered bool
	CrossDelivered  bool // must be false
	EntriesA        int
	EntriesB        int
}

// Isolation deploys two disjoint chains on one physical switch and
// walks packets through the real flow tables (the Wireshark-sniffer
// methodology, §VI-B end).
func Isolation() (*IsolationResult, error) {
	ctl, err := controller.NewFromTopologies(
		[]projection.PhysicalSwitch{projection.H3CS6861("big")},
		[]*topology.Graph{topology.Line(8, 4)},
	)
	if err != nil {
		return nil, err
	}
	a := topology.Line(3, 1)
	a.Name = "tenant-a"
	b := topology.Line(3, 1)
	b.Name = "tenant-b"
	da, err := ctl.Deploy(a, controller.Options{})
	if err != nil {
		return nil, err
	}
	db, err := ctl.Deploy(b, controller.Options{})
	if err != nil {
		return nil, err
	}
	res := &IsolationResult{EntriesA: da.Entries, EntriesB: db.Entries}
	res.IntraADelivered = walkTables(ctl.Physical, da.Plan, a.Hosts()[0], a.Hosts()[2]) > 0
	res.IntraBDelivered = walkTables(ctl.Physical, db.Plan, b.Hosts()[0], b.Hosts()[2]) > 0
	// Cross-tenant: inject from tenant A's host port toward a tenant-B
	// host ID. Any delivery is an isolation violation.
	ref := da.Plan.HostAttach[a.Hosts()[0]]
	fwd := ctl.Physical[ref.Switch].Process(openflow.PacketMeta{
		InPort: ref.Port, SrcHost: a.Hosts()[0], DstHost: b.Hosts()[2] + 1_000_000, Tag: 0, Bytes: 100,
	})
	res.CrossDelivered = fwd.Matched && !fwd.Dropped
	return res, nil
}

// walkTables pushes a packet through physical flow tables following
// the plan's cables; returns crossbar hops to delivery, or -1.
func walkTables(switches []*openflow.Switch, plan *projection.Plan, src, dst int) int {
	ref, ok := plan.HostAttach[src]
	if !ok {
		return -1
	}
	tag := 0
	for hops := 1; hops <= 64; hops++ {
		fwd := switches[ref.Switch].Process(openflow.PacketMeta{
			InPort: ref.Port, SrcHost: src, DstHost: dst, Tag: tag, Bytes: 512,
		})
		if !fwd.Matched || fwd.Dropped {
			return -1
		}
		tag = fwd.Tag
		out := projection.PortRef{Switch: ref.Switch, Port: fwd.OutPort}
		if out == plan.HostAttach[dst] {
			return hops
		}
		nxt, ok := plan.CableAt(out)
		if !ok {
			return -1
		}
		ref = nxt
	}
	return -1
}

// Format prints the isolation verdict.
func (r *IsolationResult) Format(w io.Writer) {
	writeHeader(w, "§VI-B: hardware isolation between co-hosted topologies")
	fmt.Fprintf(w, "tenant A intra-traffic delivered: %v (%d entries)\n", r.IntraADelivered, r.EntriesA)
	fmt.Fprintf(w, "tenant B intra-traffic delivered: %v (%d entries)\n", r.IntraBDelivered, r.EntriesB)
	fmt.Fprintf(w, "cross-tenant packet delivered:    %v (must be false)\n", r.CrossDelivered)
}

// ActiveRoutingResult is §VI-E: UGAL active routing vs minimal routing
// for a skewed Alltoall on Dragonfly.
type ActiveRoutingResult struct {
	Nodes      int
	ACTMinimal netsim.Time
	ACTActive  netsim.Time
	// Reduction is (min-active)/min; positive means active routing
	// reduced the ACT, as the paper reports.
	Reduction float64
	Epochs    int
}

// ActiveRouting runs an alltoall over nodes concentrated in a few
// Dragonfly groups (stressing few global links), first with minimal
// routing, then with UGAL fed by the Network Monitor's measured loads.
func ActiveRouting(ctx context.Context, nodes, bytes int) (*ActiveRoutingResult, error) {
	if nodes <= 0 {
		nodes = 8
	}
	if bytes <= 0 {
		bytes = 256 * 1024
	}
	g := topology.Dragonfly(4, 9, 2, 1)
	// Hosts from the first groups only: adversarial for minimal routing.
	var hosts []int
	for _, h := range g.Hosts() {
		if len(hosts) < nodes {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) < nodes {
		return nil, fmt.Errorf("activerouting: only %d hosts", len(hosts))
	}
	tr := workload.Alltoall(nodes, bytes, 4)

	run := func(routes *routing.Routes) (netsim.Time, *netsim.Network, error) {
		net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), netsim.DefaultConfig(), nil, false)
		if err != nil {
			return 0, nil, err
		}
		app := netsim.NewApp(net, hosts, tr.Programs, nil)
		release := core.WatchCancel(ctx, net.Sim)
		app.Start()
		net.Sim.Run(0)
		release()
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		if app.ACT() < 0 {
			return 0, nil, fmt.Errorf("activerouting: run did not complete (drops=%d)", net.TotalDrops)
		}
		return app.ACT(), net, nil
	}

	minRoutes, err := routing.DragonflyMinimal{}.Compute(g)
	if err != nil {
		return nil, err
	}
	actMin, net1, err := run(minRoutes)
	if err != nil {
		return nil, err
	}
	mon := controller.NewMonitor()
	mon.CollectSim(net1)
	active, err := mon.ActiveRouting(g, 1)
	if err != nil {
		return nil, err
	}
	if err := routing.VerifyDeadlockFree(active); err != nil {
		return nil, err
	}
	actUGAL, _, err := run(active)
	if err != nil {
		return nil, err
	}
	return &ActiveRoutingResult{
		Nodes: nodes, ACTMinimal: actMin, ACTActive: actUGAL,
		Reduction: float64(actMin-actUGAL) / float64(actMin),
		Epochs:    mon.Epochs,
	}, nil
}

// Format prints the §VI-E comparison.
func (r *ActiveRoutingResult) Format(w io.Writer) {
	writeHeader(w, "§VI-E: active (UGAL) routing vs minimal routing on Dragonfly")
	fmt.Fprintf(w, "nodes: %d\n", r.Nodes)
	fmt.Fprintf(w, "Alltoall ACT, minimal routing: %.3f ms\n", float64(r.ACTMinimal)/float64(netsim.Millisecond))
	fmt.Fprintf(w, "Alltoall ACT, active routing:  %.3f ms\n", float64(r.ACTActive)/float64(netsim.Millisecond))
	fmt.Fprintf(w, "ACT reduction: %s (paper: active routing reduces the ACT)\n", pct(r.Reduction))
}

// FlowTableUsageResult is §VII-C: flow-table occupancy for the k=4
// fat-tree on two switches, with and without entry merging.
type FlowTableUsageResult struct {
	Switches        int
	MergedPerSwitch []int // tag-encoded (merged) entries per switch
	NaivePerSwitch  []int // per-in-port entries per switch
	Capacity        int
}

// FlowTableUsage measures both encodings.
func FlowTableUsage() (*FlowTableUsageResult, error) {
	g := topology.FatTree(4)
	switches := []projection.PhysicalSwitch{
		projection.Commodity64("a"), projection.Commodity64("b"), projection.Commodity64("c"),
	}
	cab, err := projection.PlanCabling(switches, []*topology.Graph{g}, partitionOpts())
	if err != nil {
		return nil, err
	}
	plan, err := projection.Project(g, cab, partitionOpts())
	if err != nil {
		return nil, err
	}
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		return nil, err
	}
	res := &FlowTableUsageResult{Capacity: switches[0].TableCap}
	merged, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{Encoding: projection.TagEncoded})
	if err != nil {
		return nil, err
	}
	naive, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{Encoding: projection.PerInPort})
	if err != nil {
		return nil, err
	}
	for i := range merged {
		if merged[i].Table.Len() == 0 && naive[i].Table.Len() == 0 {
			continue
		}
		res.Switches++
		res.MergedPerSwitch = append(res.MergedPerSwitch, merged[i].Table.Len())
		res.NaivePerSwitch = append(res.NaivePerSwitch, naive[i].Table.Len())
	}
	return res, nil
}

// Format prints the §VII-C occupancy.
func (r *FlowTableUsageResult) Format(w io.Writer) {
	writeHeader(w, "§VII-C: flow-table usage, Fat-Tree k=4 on 2 switches")
	for i := 0; i < r.Switches; i++ {
		fmt.Fprintf(w, "switch %d: %d entries merged (tag-encoded), %d naive (per-in-port), capacity %d\n",
			i, r.MergedPerSwitch[i], r.NaivePerSwitch[i], r.Capacity)
	}
	fmt.Fprintf(w, "paper: \"each switch requires about only 300 flow table entries\"\n")
}
