package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/routing"
)

func init() {
	// sdtbench historically scales its -reps flag by 5 for the pingpong
	// count; the registered runner preserves that mapping.
	Register(10, "fig11", "Fig. 11: SDT latency overhead across IMB Pingpong message lengths",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := Fig11(ctx, p.Reps*5, p.Workers)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldReps, FieldWorkers)
}

// Fig11Point is one message length of the latency-overhead sweep.
type Fig11Point struct {
	Bytes    int
	FullRTT  netsim.Time
	SDTRTT   netsim.Time
	Overhead float64 // (sdt-full)/full
}

// Fig11Result reproduces Fig. 11: additional overhead by SDT on the
// 8-switch-chain latency across IMB Pingpong message lengths.
type Fig11Result struct {
	Points []Fig11Point
	// MaxOverhead is the headline number (paper: <= 1.6%, always < 2%).
	MaxOverhead float64
}

// Fig11MsgLens is the paper's -msglen sweep: 0B to 1MB.
func Fig11MsgLens() []int {
	lens := []int{0}
	for b := 1; b <= 1<<20; b <<= 1 {
		lens = append(lens, b)
	}
	return lens
}

// Fig11 runs the latency comparison with `reps` round trips per
// message length (the paper uses 10k; 50 is enough for a deterministic
// simulator), the message-length sweep fanned out one simulation per
// worker (results are identical at any worker count; 1 = serial).
// Cancelling the context stops in-flight pingpong runs mid-simulation.
func Fig11(ctx context.Context, reps, workers int) (*Fig11Result, error) {
	if reps <= 0 {
		reps = 50
	}
	g := fig10Topology()
	full, sdt, _, err := buildModeNet(g, routing.ShortestPath{})
	if err != nil {
		return nil, err
	}
	hosts := g.Hosts()
	a, b := hosts[0], hosts[7]
	lens := Fig11MsgLens()
	points := make([]Fig11Point, len(lens))
	err = core.ForEach(ctx, workers, len(lens), func(i int) error {
		bytes := lens[i]
		measure := func(mk func() (*netsim.Network, error)) (netsim.Time, error) {
			n, err := mk()
			if err != nil {
				return 0, err
			}
			release := core.WatchCancel(ctx, n.Sim)
			rtt := netsim.MeanRTT(netsim.MeasurePingpong(n, a, b, bytes, reps))
			release()
			return rtt, ctx.Err()
		}
		fullRTT, err := measure(full)
		if err != nil {
			return err
		}
		sdtRTT, err := measure(sdt)
		if err != nil {
			return err
		}
		points[i] = Fig11Point{
			Bytes: bytes, FullRTT: fullRTT, SDTRTT: sdtRTT,
			Overhead: float64(sdtRTT-fullRTT) / float64(fullRTT),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Points: points}
	for _, p := range points {
		if p.Overhead > res.MaxOverhead {
			res.MaxOverhead = p.Overhead
		}
	}
	return res, nil
}

// Format prints the figure's series as rows.
func (r *Fig11Result) Format(w io.Writer) {
	writeHeader(w, "Fig. 11: additional overhead by SDT on 8-hop latency")
	fmt.Fprintf(w, "%-10s %14s %14s %12s\n", "msglen", "full RTT", "SDT RTT", "overhead")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %12.3fus %12.3fus %12s\n",
			fmtBytes(p.Bytes),
			float64(p.FullRTT)/float64(netsim.Microsecond),
			float64(p.SDTRTT)/float64(netsim.Microsecond),
			pct(p.Overhead))
	}
	fmt.Fprintf(w, "max overhead: %s (paper: <=1.6%%, always <2%%)\n", pct(r.MaxOverhead))
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
