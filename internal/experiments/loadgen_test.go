package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// smallLoadParams shrinks the loadgen grids for test runtime.
func smallLoadParams() Params {
	return Params{Seed: 9, Flows: 24, Workers: 0}
}

// Both loadgen scenario sets must be registered and rerun
// byte-identically at a fixed seed, at any worker count — the
// acceptance contract of the seeded sweep.
func TestLoadgenScenariosDeterministic(t *testing.T) {
	for _, name := range []string{"loadgen-sweep", "loadgen-incast"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		var a, b, serial bytes.Buffer
		p := smallLoadParams()
		if err := e.Run(context.Background(), p, &a); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(context.Background(), p, &b); err != nil {
			t.Fatal(err)
		}
		ps := p
		ps.Workers = 1
		if err := e.Run(context.Background(), ps, &serial); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: rerun with same seed differs:\n%s\n---\n%s", name, a.String(), b.String())
		}
		if !bytes.Equal(a.Bytes(), serial.Bytes()) {
			t.Fatalf("%s: parallel and serial outputs differ", name)
		}
		if a.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

// A different seed must change the sweep output (the schedules are a
// function of the seed, not a constant).
func TestLoadgenSeedMatters(t *testing.T) {
	e, _ := Lookup("loadgen-sweep")
	var a, b bytes.Buffer
	p := smallLoadParams()
	if err := e.Run(context.Background(), p, &a); err != nil {
		t.Fatal(err)
	}
	p.Seed = 10
	if err := e.Run(context.Background(), p, &b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("different seeds produced identical sweeps")
	}
}

// The sweep must cover the advertised grid: 3 patterns x 5 loads x 3
// topologies, every cell fully completed.
func TestLoadSweepGrid(t *testing.T) {
	r, err := LoadSweep(context.Background(), smallLoadParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 45 {
		t.Fatalf("%d cells, want 45", len(r.Cells))
	}
	topos, pats, loads := map[string]bool{}, map[string]bool{}, map[float64]bool{}
	for i := range r.Cells {
		c := &r.Cells[i]
		topos[c.Topo] = true
		pats[c.Pattern] = true
		loads[c.Load] = true
		if c.FCT == nil || c.FCT.Completed != c.Flows {
			t.Fatalf("cell %s/%s/%.1f incomplete: %+v", c.Topo, c.Pattern, c.Load, c.FCT)
		}
	}
	if len(topos) != 3 || len(pats) != 3 || len(loads) != 5 {
		t.Fatalf("grid %d topos x %d patterns x %d loads, want 3x3x5", len(topos), len(pats), len(loads))
	}
}

// Registry listing must expose names and descriptions (the -list
// surface) with the loadgen sets present.
func TestRegistryListing(t *testing.T) {
	names := Names()
	joined := strings.Join(names, " ")
	for _, want := range []string{"fig11", "table4", "loadgen-sweep", "loadgen-incast"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("registry missing %s: %v", want, names)
		}
	}
	for _, e := range All() {
		if e.Desc == "" {
			t.Fatalf("%s has no description", e.Name)
		}
	}
}

// An out-of-range -load must error, not silently fall back.
func TestLoadIncastRejectsBadLoad(t *testing.T) {
	p := smallLoadParams()
	p.Load = 1.5
	if _, err := LoadIncast(context.Background(), p); err == nil {
		t.Fatal("load 1.5 accepted")
	}
}
