package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func init() {
	Register(60, "fig13", "Fig. 13: evaluation-time scaling, full testbed vs simulator vs SDT",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := Fig13(ctx, nil, p.Bytes, p.Reps, p.Workers, core.WithShards(p.Shards))
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldBytes, FieldReps, FieldWorkers, FieldShards)
}

// Fig13Point is one node count of the evaluation-time scaling study.
type Fig13Point struct {
	Nodes int
	// RealACT is the application completion time on the (full) testbed
	// — the x-axis annotation of Fig. 13.
	RealACT netsim.Time
	// Evaluation times per platform.
	FullEval time.Duration
	SDTEval  time.Duration
	SimEval  time.Duration
	// Normalised to the full testbed (the figure's y-axis).
	SDTFactor float64
	SimFactor float64
}

// Fig13Result reproduces Fig. 13: evaluation times of full testbed,
// simulator and SDT running IMB Alltoall on Dragonfly(4,9,2) as the
// node count grows.
type Fig13Result struct {
	Points []Fig13Point
}

// Fig13 sweeps node counts (paper: 1–32; node counts below 2 exchange
// no traffic, so the sweep starts at 2). bytes/reps scale the alltoall;
// zero means Table IV scale. The three mode runs of every node count
// are jobs of one core.Sweep (one simulation per worker; each point
// owns its testbed so SDT deployments never contend). Simulated
// results are identical at any worker count; the simulator's
// wall-clock column measures contended time when workers > 1, so use
// workers == 1 for absolute Fig. 13 numbers.
// Trailing opts (e.g. core.WithShards) apply to every job of the
// sweep.
func Fig13(ctx context.Context, nodeCounts []int, bytes, reps, workers int, opts ...core.Option) (*Fig13Result, error) {
	if nodeCounts == nil {
		nodeCounts = []int{2, 4, 8, 16, 32}
	}
	if bytes <= 0 {
		bytes = 128 * 1024
	}
	if reps <= 0 {
		reps = 8
	}
	g := topology.Dragonfly(4, 9, 2, 1)
	modes := []core.Mode{core.FullTestbed, core.SDT, core.Simulator}
	var jobs []core.Job
	for _, n := range nodeCounts {
		tr := workload.Alltoall(n, bytes, reps)
		tb, err := core.PaperTestbed([]*topology.Graph{g})
		if err != nil {
			return nil, err
		}
		hosts := g.Hosts()[:n]
		for _, mode := range modes {
			jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
				Topo: g, Trace: tr, Hosts: hosts, Mode: mode,
			}})
		}
	}
	results, err := core.Sweep(ctx, jobs, append([]core.Option{core.WithWorkers(workers)}, opts...)...)
	if err != nil {
		return nil, err
	}
	points := make([]Fig13Point, len(nodeCounts))
	for i, n := range nodeCounts {
		full, sdt, sim := results[3*i], results[3*i+1], results[3*i+2]
		points[i] = Fig13Point{
			Nodes: n, RealACT: full.ACT,
			FullEval: full.Eval, SDTEval: sdt.Eval, SimEval: sim.Eval,
			SDTFactor: float64(sdt.Eval) / float64(full.Eval),
			SimFactor: float64(sim.Eval) / float64(full.Eval),
		}
	}
	return &Fig13Result{Points: points}, nil
}

// Format prints the Fig. 13 series.
func (r *Fig13Result) Format(w io.Writer) {
	writeHeader(w, "Fig. 13: evaluation times — full testbed vs simulator vs SDT (IMB Alltoall on Dragonfly)")
	fmt.Fprintf(w, "%6s %12s %14s %14s %14s %10s %10s\n",
		"nodes", "real ACT", "full eval", "SDT eval", "sim eval", "SDT/full", "sim/full")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6d %10.2fms %14s %14s %14s %9.2fx %9.1fx\n",
			p.Nodes,
			float64(p.RealACT)/float64(netsim.Millisecond),
			p.FullEval.Round(time.Microsecond),
			p.SDTEval.Round(time.Microsecond),
			p.SimEval.Round(time.Microsecond),
			p.SDTFactor, p.SimFactor)
	}
}
