package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Fig13Point is one node count of the evaluation-time scaling study.
type Fig13Point struct {
	Nodes int
	// RealACT is the application completion time on the (full) testbed
	// — the x-axis annotation of Fig. 13.
	RealACT netsim.Time
	// Evaluation times per platform.
	FullEval time.Duration
	SDTEval  time.Duration
	SimEval  time.Duration
	// Normalised to the full testbed (the figure's y-axis).
	SDTFactor float64
	SimFactor float64
}

// Fig13Result reproduces Fig. 13: evaluation times of full testbed,
// simulator and SDT running IMB Alltoall on Dragonfly(4,9,2) as the
// node count grows.
type Fig13Result struct {
	Points []Fig13Point
}

// Fig13 sweeps node counts (paper: 1–32; node counts below 2 exchange
// no traffic, so the sweep starts at 2). bytes/reps scale the alltoall;
// zero means Table IV scale.
func Fig13(nodeCounts []int, bytes, reps int) (*Fig13Result, error) {
	return Fig13Par(nodeCounts, bytes, reps, 1)
}

// Fig13Par is Fig13 with one node count per worker. Simulated results
// (ACTs, deploy-derived evaluation times) are identical at any worker
// count; the simulator's wall-clock column measures contended time
// when workers > 1, so use workers == 1 for absolute Fig. 13 numbers.
func Fig13Par(nodeCounts []int, bytes, reps, workers int) (*Fig13Result, error) {
	if nodeCounts == nil {
		nodeCounts = []int{2, 4, 8, 16, 32}
	}
	if bytes <= 0 {
		bytes = 128 * 1024
	}
	if reps <= 0 {
		reps = 8
	}
	g := topology.Dragonfly(4, 9, 2, 1)
	g.Hosts() // prime the lazy adjacency caches before the fan-out
	points := make([]Fig13Point, len(nodeCounts))
	err := core.ParallelFor(workers, len(nodeCounts), func(i int) error {
		n := nodeCounts[i]
		tr := workload.Alltoall(n, bytes, reps)
		tb, err := core.PaperTestbed([]*topology.Graph{g})
		if err != nil {
			return err
		}
		hosts := g.Hosts()[:n]
		full, err := tb.RunTrace(g, tr, hosts, core.FullTestbed)
		if err != nil {
			return err
		}
		sdt, err := tb.RunTrace(g, tr, hosts, core.SDT)
		if err != nil {
			return err
		}
		sim, err := tb.RunTrace(g, tr, hosts, core.Simulator)
		if err != nil {
			return err
		}
		points[i] = Fig13Point{
			Nodes: n, RealACT: full.ACT,
			FullEval: full.Eval, SDTEval: sdt.Eval, SimEval: sim.Eval,
			SDTFactor: float64(sdt.Eval) / float64(full.Eval),
			SimFactor: float64(sim.Eval) / float64(full.Eval),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig13Result{Points: points}, nil
}

// Format prints the Fig. 13 series.
func (r *Fig13Result) Format(w io.Writer) {
	writeHeader(w, "Fig. 13: evaluation times — full testbed vs simulator vs SDT (IMB Alltoall on Dragonfly)")
	fmt.Fprintf(w, "%6s %12s %14s %14s %14s %10s %10s\n",
		"nodes", "real ACT", "full eval", "SDT eval", "sim eval", "SDT/full", "sim/full")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6d %10.2fms %14s %14s %14s %9.2fx %9.1fx\n",
			p.Nodes,
			float64(p.RealACT)/float64(netsim.Millisecond),
			p.FullEval.Round(time.Microsecond),
			p.SDTEval.Round(time.Microsecond),
			p.SimEval.Round(time.Microsecond),
			p.SDTFactor, p.SimFactor)
	}
}
