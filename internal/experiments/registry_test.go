package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestRegistryOrder pins the presentation order sdtbench prints for
// -exp all.
func TestRegistryOrder(t *testing.T) {
	want := []string{"table1", "fig11", "fig12", "table2", "table3", "table4", "fig13", "isolation", "active", "tables", "loadgen-sweep", "loadgen-incast", "faults-sweep", "faults-flap", "shard-scale", "reconfig-sweep", "reconfig-under-load"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	e, ok := Lookup("table3")
	if !ok {
		t.Fatal("table3 not registered")
	}
	if e.Desc == "" || e.Run == nil {
		t.Fatalf("incomplete entry: %+v", e)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
}

// TestRegistryRunnerWritesTable runs the cheapest registered scenario
// set end to end through the registry path.
func TestRegistryRunnerWritesTable(t *testing.T) {
	e, ok := Lookup("table1")
	if !ok {
		t.Fatal("table1 not registered")
	}
	var buf bytes.Buffer
	if err := e.Run(t.Context(), Params{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Errorf("output missing the table header:\n%s", buf.String())
	}
}

// TestRegistryRunnerHonoursCancellation: a cancelled context aborts a
// registered sweep with the context's error.
func TestRegistryRunnerHonoursCancellation(t *testing.T) {
	e, ok := Lookup("fig11")
	if !ok {
		t.Fatal("fig11 not registered")
	}
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	var buf bytes.Buffer
	err := e.Run(ctx, Params{Reps: 1, Workers: 1}, &buf)
	if err == nil {
		t.Fatal("cancelled registry run returned nil error")
	}
}
