package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestRegistryOrder pins the presentation order sdtbench prints for
// -exp all.
func TestRegistryOrder(t *testing.T) {
	want := []string{"table1", "fig11", "fig12", "table2", "table3", "table4", "fig13", "isolation", "active", "tables", "loadgen-sweep", "loadgen-incast", "loadgen-sweep-xl", "cc-shootout", "faults-sweep", "faults-flap", "shard-scale", "reconfig-sweep", "reconfig-under-load"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	e, ok := Lookup("table3")
	if !ok {
		t.Fatal("table3 not registered")
	}
	if e.Desc == "" || e.Run == nil {
		t.Fatalf("incomplete entry: %+v", e)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
}

// TestSelect pins the -exp resolution rules: comma lists keep their
// order, "all" expands in presentation order, whitespace is trimmed,
// and unknown or empty names fail with the registry's valid-name list
// (the same self-answering UX as workload.ByName).
func TestSelect(t *testing.T) {
	got, err := Select("fig12,table3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "fig12" || got[1].Name != "table3" {
		t.Fatalf("Select(fig12,table3) = %v", got)
	}

	all, err := Select("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Fatalf("Select(all) returned %d entries, registry has %d", len(all), len(Names()))
	}
	for i, name := range Names() {
		if all[i].Name != name {
			t.Fatalf("Select(all)[%d] = %s, want %s", i, all[i].Name, name)
		}
	}

	trimmed, err := Select(" fig11 , table1 ")
	if err != nil {
		t.Fatalf("whitespace around names should be ignored: %v", err)
	}
	if len(trimmed) != 2 || trimmed[0].Name != "fig11" || trimmed[1].Name != "table1" {
		t.Fatalf("Select with spaces = %v", trimmed)
	}

	for _, bad := range []string{"nope", "fig12,nope", "fig12,,table3", "fig12,"} {
		_, err := Select(bad)
		if err == nil {
			t.Fatalf("Select(%q) succeeded", bad)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown scenario set") ||
			!strings.Contains(msg, "valid:") ||
			!strings.Contains(msg, "loadgen-sweep") ||
			!strings.Contains(msg, "all") {
			t.Fatalf("Select(%q) error lacks the valid-name list: %v", bad, err)
		}
	}
}

// TestRegistryRunnerWritesTable runs the cheapest registered scenario
// set end to end through the registry path.
func TestRegistryRunnerWritesTable(t *testing.T) {
	e, ok := Lookup("table1")
	if !ok {
		t.Fatal("table1 not registered")
	}
	var buf bytes.Buffer
	if err := e.Run(t.Context(), Params{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Errorf("output missing the table header:\n%s", buf.String())
	}
}

// TestRegistryRunnerHonoursCancellation: a cancelled context aborts a
// registered sweep with the context's error.
func TestRegistryRunnerHonoursCancellation(t *testing.T) {
	e, ok := Lookup("fig11")
	if !ok {
		t.Fatal("fig11 not registered")
	}
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	var buf bytes.Buffer
	err := e.Run(ctx, Params{Reps: 1, Workers: 1}, &buf)
	if err == nil {
		t.Fatal("cancelled registry run returned nil error")
	}
}
