package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

func init() {
	Register(30, "table2", "Table II: SDT vs other topology-projection methods",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := Table2(ctx, p.Zoo, p.Workers)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldZoo, FieldWorkers)
}

// Table2Row compares one TP method across the paper's workload set:
// the DC topologies (Fat-Tree k=4, Dragonfly(4,9,2), 4x4x4 Torus) and
// the 261 WAN maps of the Internet Topology Zoo.
type Table2Row struct {
	Method projection.Method
	// SwitchesNeeded per DC topology (-1 = not projectable on <=8).
	FatTree, Dragonfly, Torus int
	// HardwareUSD prices the hardware for the largest DC requirement.
	HardwareUSD float64
	// ZooCoverage counts zoo WANs projectable with 3 switches.
	ZooCoverage int
	// Reconfig is the modelled reconfiguration time for the Fat-Tree
	// deployment.
	Reconfig time.Duration
	// BandwidthFactor is usable fraction of port bandwidth.
	BandwidthFactor float64
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows    []Table2Row
	ZooSize int
}

// table2Methods is the TP-method row order of Table II.
func table2Methods() []projection.Method {
	return []projection.Method{
		projection.MethodSDT, projection.MethodSP, projection.MethodSPOS, projection.MethodTurboNet,
	}
}

// Table2 runs the scalability/cost/convenience comparison. zooSubset
// limits the zoo sweep for quick runs (0 = all 261). The Topology-Zoo
// projectability sweep (the dominant cost: 261 WAN maps x 4 methods)
// fans out one zoo graph per worker; coverage counts are identical at
// any worker count.
func Table2(ctx context.Context, zooSubset, workers int) (*Table2Result, error) {
	spec := projection.Commodity64("sw")
	zoo := topology.Zoo(42)
	if zooSubset > 0 && zooSubset < len(zoo) {
		zoo = zoo[:zooSubset]
	}
	ft := topology.FatTree(4)
	df := topology.Dragonfly(4, 9, 2, 1)
	torus := topology.Torus3D(4, 4, 4, 0)

	// Flow-table entries for the Fat-Tree deployment (SDT reconfig cost
	// driver): compute once from a real compile.
	entries, err := fatTreeEntries()
	if err != nil {
		return nil, err
	}

	// Zoo coverage sweep: each job owns one zoo graph (no shared state
	// between graphs) and checks it against every method.
	methods := table2Methods()
	coverage := make([]int, len(methods))
	covered := make([][]bool, len(zoo))
	err = core.ForEach(ctx, workers, len(zoo), func(i int) error {
		row := make([]bool, len(methods))
		for mi, m := range methods {
			row[mi] = projection.Projectable(zoo[i], spec, m, 3)
		}
		covered[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range covered {
		for mi, ok := range row {
			if ok {
				coverage[mi]++
			}
		}
	}

	res := &Table2Result{ZooSize: len(zoo)}
	for mi, m := range methods {
		row := Table2Row{Method: m, FatTree: -1, Dragonfly: -1, Torus: -1, BandwidthFactor: 1}
		var worst projection.Requirement
		for i, g := range []*topology.Graph{ft, df, torus} {
			req, err := projection.Requirements(g, spec, m, 8)
			if err != nil {
				continue
			}
			switch i {
			case 0:
				row.FatTree = req.Switches
			case 1:
				row.Dragonfly = req.Switches
			case 2:
				row.Torus = req.Switches
			}
			if req.Switches > worst.Switches {
				worst = req
			}
			row.BandwidthFactor = req.BandwidthFactor
		}
		row.HardwareUSD = costmodel.HardwareCost(worst)
		ftReq, err := projection.Requirements(ft, spec, m, 8)
		if err == nil {
			row.Reconfig = costmodel.ReconfigTime(ftReq, entries)
		}
		row.ZooCoverage = coverage[mi]
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// fatTreeEntries compiles the k=4 fat-tree once and returns the total
// entry count (the §VII-C figure).
func fatTreeEntries() (int, error) {
	g := topology.FatTree(4)
	switches := []projection.PhysicalSwitch{
		projection.Commodity64("a"), projection.Commodity64("b"), projection.Commodity64("c"),
	}
	cab, err := projection.PlanCabling(switches, []*topology.Graph{g}, partitionOpts())
	if err != nil {
		return 0, err
	}
	plan, err := projection.Project(g, cab, partitionOpts())
	if err != nil {
		return 0, err
	}
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		return 0, err
	}
	tables, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{})
	if err != nil {
		return 0, err
	}
	return projection.EntryCount(tables), nil
}

// Format prints Table II.
func (r *Table2Result) Format(w io.Writer) {
	writeHeader(w, "Table II: comparison between SDT and other TP methods")
	fmt.Fprintf(w, "%-14s %8s %10s %7s %12s %14s %12s %6s\n",
		"method", "FT(k=4)", "DF(4,9,2)", "Torus", "hardware $", "reconfig", "zoo cover", "bw")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %8s %10s %7s %12.0f %14s %8d/%d %6.2f\n",
			row.Method, swCount(row.FatTree), swCount(row.Dragonfly), swCount(row.Torus),
			row.HardwareUSD, row.Reconfig.Round(time.Millisecond),
			row.ZooCoverage, r.ZooSize, row.BandwidthFactor)
	}
}

func swCount(n int) string {
	if n < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d", n)
}
