package experiments

// The loadgen scenario sets: open-loop synthetic traffic (package
// loadgen) driven through the netsim flow-application layer, with flow
// completion times bucketed by telemetry.MeasureFCT. These are the
// testbed's first non-MPI workloads — datacenter-style Poisson flow
// arrivals swept over pattern × load grids — and everything is seeded,
// so rerunning with the same seed reproduces every byte of output.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func init() {
	Register(100, "loadgen-sweep", "loadgen: seeded open-loop FCT sweep, pattern x load grid on fat-tree/dragonfly/torus",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := LoadSweep(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldWorkers, FieldShards)
	Register(110, "loadgen-incast", "loadgen: incast N:1 fan-in sweep on fat-tree, FCT tail at the victim under PFC",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := LoadIncast(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldLoad, FieldWorkers, FieldShards)
}

// sweepBuckets are the FCT size-bucket boundaries of the loadgen
// tables: short (<10 kB), medium (<100 kB), long (>= 100 kB) — matched
// to the scaled web-search distribution the sweep offers.
func sweepBuckets() []int { return []int{10 * 1024, 100 * 1024} }

// idealBase is the zero-load latency floor the slowdown normalises
// against: NIC latency at both ends plus the shortest possible path
// (one switch, two links). Slowdown is measured against the minimum
// achievable FCT, so the base must not exceed any real path — longer
// routes simply show up as slowdown, as they should.
func idealBase(cfg netsim.Config) netsim.Time {
	return 2*cfg.HostLatency + cfg.SwitchLatency + 2*cfg.PropDelay
}

// LoadSweepCell is one (topology, pattern, load) grid point.
type LoadSweepCell struct {
	Topo    string
	Pattern string
	Load    float64
	Flows   int
	Drops   int64
	FCT     *telemetry.FCTReport
}

// LoadSweepResult is the full grid.
type LoadSweepResult struct {
	Seed  int64
	Cells []LoadSweepCell
}

// LoadSweep sweeps open-loop traffic over load 0.1→0.9 for three
// patterns (uniform, permutation, incast 8:1) on fat-tree, dragonfly
// and 2D torus — every cell an independent seeded schedule of
// heavy-tailed (scaled web-search) flows run through core.Sweep, with
// per-size-bucket FCT slowdown percentiles. Params: Seed (0 = 1)
// offsets every cell's schedule seed, Flows (0 = 160) sets the flow
// count per cell, Workers fans the grid out one simulation per worker.
func LoadSweep(ctx context.Context, p Params) (*LoadSweepResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 160
	}
	topos := []*topology.Graph{
		topology.FatTree(4),
		topology.Dragonfly(4, 9, 2, 1),
		topology.Torus2D(4, 4, 1),
	}
	patterns := []loadgen.Pattern{loadgen.Uniform(), loadgen.Permutation(), loadgen.Incast(8)}
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	cfg := netsim.DefaultConfig()
	sizes := loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/64)
	const ranks = 16

	res := &LoadSweepResult{Seed: seed}
	var jobs []core.Job
	for _, g := range topos {
		tb, err := core.PaperTestbed([]*topology.Graph{g})
		if err != nil {
			return nil, err
		}
		for _, pat := range patterns {
			for _, load := range loads {
				fs, err := loadgen.Spec{
					Ranks: ranks, Pattern: pat, Sizes: sizes,
					Load: load, Flows: flows,
					Seed:    seed + int64(len(res.Cells)),
					LinkBps: cfg.LinkBps,
				}.Generate()
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, LoadSweepCell{
					Topo: g.Name, Pattern: pat.Name(), Load: load, Flows: flows,
				})
				jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
					Topo: g, Flows: fs.Flows, Mode: core.FullTestbed,
				}})
			}
		}
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers), core.WithShards(p.Shards))
	if err != nil {
		return nil, err
	}
	for i := range res.Cells {
		res.Cells[i].Drops = results[i].Drops
		res.Cells[i].FCT = telemetry.MeasureFCT(jobs[i].Flows, cfg.LinkBps, idealBase(cfg), sweepBuckets())
	}
	return res, nil
}

// Format prints the sweep grid: one row per cell, slowdown p50/p99 per
// size bucket.
func (r *LoadSweepResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf("loadgen: open-loop FCT sweep (scaled web-search sizes, seed %d)", r.Seed))
	fmt.Fprintf(w, "%-16s %-12s %5s %6s %6s  %15s %15s %15s\n",
		"topology", "pattern", "load", "flows", "drops", "<10K p50/p99", "10-100K p50/p99", ">=100K p50/p99")
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(w, "%-16s %-12s %5.1f %6d %6d ", c.Topo, c.Pattern, c.Load, c.Flows, c.Drops)
		for _, b := range c.FCT.Buckets {
			if b.Count == 0 {
				fmt.Fprintf(w, " %15s", "-")
				continue
			}
			fmt.Fprintf(w, " %7.2f/%-7.2f", b.P50, b.P99)
		}
		if c.FCT.Completed < c.FCT.Total {
			fmt.Fprintf(w, "  (%d/%d completed)", c.FCT.Completed, c.FCT.Total)
		}
		fmt.Fprintln(w)
	}
}

// LoadIncastRow is one fan-in of the incast stress.
type LoadIncastRow struct {
	Fanin  int
	Flows  int
	P50FCT netsim.Time
	P99FCT netsim.Time
	P99    float64
	Pauses int64
	Drops  int64
}

// LoadIncastResult is the §VI-C-style incast study over loadgen
// schedules.
type LoadIncastResult struct {
	Seed int64
	Load float64
	Rows []LoadIncastRow
}

// LoadIncast sweeps incast fan-in N:1 ∈ {4, 8, 15} on the k=4
// fat-tree: fixed 64 kB flows arriving open-loop at the victim's link
// (Load, 0 = 0.8 of line rate), PFC on — the pattern whose pause
// cascades Fig. 12 measures, now with an FCT tail instead of aggregate
// bandwidth. Params: Seed, Flows (0 = 96 per fan-in), Load, Workers.
func LoadIncast(ctx context.Context, p Params) (*LoadIncastResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 96
	}
	load := p.Load
	if load == 0 {
		load = 0.8
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("loadgen-incast: load %g outside (0, 1]", load)
	}
	fanins := []int{4, 8, 15}
	g := topology.FatTree(4)
	cfg := netsim.DefaultConfig()
	tb, err := core.PaperTestbed([]*topology.Graph{g})
	if err != nil {
		return nil, err
	}
	var jobs []core.Job
	var sets []*loadgen.FlowSet
	for i, fanin := range fanins {
		fs, err := loadgen.Spec{
			Ranks: fanin + 1, Pattern: loadgen.Incast(fanin),
			Sizes: loadgen.FixedSize(64 * 1024),
			Load:  load, Flows: flows, Seed: seed + int64(i),
			LinkBps: cfg.LinkBps,
		}.Generate()
		if err != nil {
			return nil, err
		}
		sets = append(sets, fs)
		jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
			Topo: g, Flows: fs.Flows, Mode: core.FullTestbed,
		}})
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers), core.WithShards(p.Shards))
	if err != nil {
		return nil, err
	}
	res := &LoadIncastResult{Seed: seed, Load: load}
	for i, fanin := range fanins {
		rep := telemetry.MeasureFCT(sets[i].Flows, cfg.LinkBps, idealBase(cfg), nil)
		var row LoadIncastRow
		row.Fanin = fanin
		row.Flows = flows
		row.Pauses = results[i].Pauses
		row.Drops = results[i].Drops
		// All flows are FixedSize(64 kB): read the bucket that size
		// falls in rather than scanning for a non-empty one.
		for _, b := range rep.Buckets {
			if b.Lo <= 64*1024 && (b.Hi == 0 || 64*1024 < b.Hi) {
				row.P50FCT, row.P99FCT, row.P99 = b.P50FCT, b.P99FCT, b.P99
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format prints the incast FCT table.
func (r *LoadIncastResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf("loadgen: incast N:1 FCT tail, 64KB flows at %.0f%% victim load (fat-tree k=4, PFC, seed %d)",
		r.Load*100, r.Seed))
	fmt.Fprintf(w, "%6s %6s %12s %12s %9s %8s %6s\n",
		"fan-in", "flows", "p50 FCT", "p99 FCT", "p99 slow", "pauses", "drops")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d %6d %10.2fus %10.2fus %8.2fx %8d %6d\n",
			row.Fanin, row.Flows,
			float64(row.P50FCT)/float64(netsim.Microsecond),
			float64(row.P99FCT)/float64(netsim.Microsecond),
			row.P99, row.Pauses, row.Drops)
	}
}
