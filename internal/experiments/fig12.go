package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/routing"
)

func init() {
	Register(20, "fig12", "Fig. 12: incast bandwidth, PFC on/off x SDT/full testbed",
		func(ctx context.Context, p Params, w io.Writer) error {
			rs, err := Fig12Panels(ctx, p.Duration, p.Workers)
			if err != nil {
				return err
			}
			for _, r := range rs {
				r.Format(w)
			}
			return nil
		}, FieldDur, FieldWorkers)
}

// Fig12Flow is one sender's bandwidth series in the incast test.
type Fig12Flow struct {
	Node     int // 1-based node number as in the paper (target is node 4)
	Hops     int // host-to-host hops (paper's h)
	CongPts  int // congestion points on the path to the target (paper's cp)
	MeanGbps float64
	Samples  []netsim.GoodputSample
}

// Fig12Result is one panel of Fig. 12 (a mode x PFC setting).
type Fig12Result struct {
	Mode  core.Mode
	PFC   bool
	Flows []Fig12Flow
	// AggregateGbps is the receiver's total goodput.
	AggregateGbps float64
	Drops         int64
}

// fig12Panels is the panel order of cmd/sdtbench's fig12 output.
func fig12Panels() []struct {
	Mode core.Mode
	PFC  bool
} {
	return []struct {
		Mode core.Mode
		PFC  bool
	}{
		{core.SDT, true}, {core.FullTestbed, true},
		{core.SDT, false}, {core.FullTestbed, false},
	}
}

// Fig12Panels runs the four incast panels (PFC on/off x SDT/full
// testbed), one per worker, in the order sdtbench prints them
// (results are identical at any worker count).
func Fig12Panels(ctx context.Context, duration netsim.Time, workers int) ([]*Fig12Result, error) {
	panels := fig12Panels()
	out := make([]*Fig12Result, len(panels))
	err := core.ForEach(ctx, workers, len(panels), func(i int) error {
		r, err := Fig12(ctx, panels[i].Mode, panels[i].PFC, duration)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig12 runs the iperf3 incast of §VI-B2: every node sends TCP traffic
// to node 4 on the Fig. 10 chain, with PFC on or off, on the full
// testbed or SDT. duration is simulated time (the paper plots an ~8 s
// window; 1–2 s gives the same steady state). Fig12 drives the fabric
// directly (fixed-duration TCP, not a replayable trace), so it arms
// engine-loop cancellation itself via core.WatchCancel.
func Fig12(ctx context.Context, mode core.Mode, pfc bool, duration netsim.Time) (*Fig12Result, error) {
	if duration <= 0 {
		duration = 1 * netsim.Second
	}
	g := fig10Topology()
	full, sdtN, _, err := buildModeNet(g, routing.ShortestPath{})
	if err != nil {
		return nil, err
	}
	mk := full
	if mode == core.SDT {
		mk = sdtN
	}
	net, err := mk()
	if err != nil {
		return nil, err
	}
	net.Cfg.PFC = pfc
	// TCP needs lossy queues when PFC is off; with PFC on the switch
	// pauses instead of dropping (lossless iperf as in Fig. 12a/b).
	hosts := g.Hosts()
	target := hosts[3] // node 4
	conns := map[int]*netsim.TCPConn{}
	for i, h := range hosts {
		if h == target {
			continue
		}
		conns[i+1] = net.StartTCP(h, target, -1, nil)
	}
	// Sample each flow's receiver-side bytes every 100 ms.
	interval := duration / 10
	if interval <= 0 {
		interval = 100 * netsim.Millisecond
	}
	samples := map[int][]netsim.GoodputSample{}
	last := map[int]int64{}
	var tick func(at netsim.Time)
	tick = func(at netsim.Time) {
		net.Sim.At(at, func() {
			for node, c := range conns {
				d := c.RcvBytes - last[node]
				last[node] = c.RcvBytes
				samples[node] = append(samples[node], netsim.GoodputSample{
					At:   at,
					Gbps: float64(d*8) / interval.Seconds() / 1e9,
				})
			}
			if at+interval <= duration {
				tick(at + interval)
			}
		})
	}
	tick(interval)
	// Snapshot per-flow byte counts exactly at the measurement window's
	// end so means divide the right interval.
	final := map[int]int64{}
	net.Sim.At(duration, func() {
		for node, c := range conns {
			final[node] = c.RcvBytes
		}
	})
	release := core.WatchCancel(ctx, net.Sim)
	net.Sim.Run(duration + interval)
	release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Fig12Result{Mode: mode, PFC: pfc, Drops: net.TotalDrops}
	routes, _ := routing.ShortestPath{}.Compute(g)
	// Paths for hop/cp labelling.
	paths := map[int][]int{}
	for i, h := range hosts {
		if h == target {
			continue
		}
		p, err := routes.TracePath(h, target)
		if err != nil {
			return nil, err
		}
		paths[i+1] = p
	}
	var nodes []int
	for node := range conns {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		mean := float64(final[node]*8) / duration.Seconds() / 1e9
		res.Flows = append(res.Flows, Fig12Flow{
			Node:     node,
			Hops:     len(paths[node]) + 1, // switch hops + 2 host links - 1
			CongPts:  congPoints(paths, node),
			MeanGbps: mean,
			Samples:  samples[node],
		})
		res.AggregateGbps += mean
	}
	return res, nil
}

// congPoints counts switches on node's path where at least one other
// flow's path merges in — the paper's "cp" legend annotation.
func congPoints(paths map[int][]int, node int) int {
	mine := paths[node]
	onMine := map[int]int{}
	for i, sw := range mine {
		onMine[sw] = i
	}
	// A congestion point is a switch on my path where some other flow
	// enters (its path's first switch shared with mine).
	cps := map[int]bool{}
	for other, p := range paths {
		if other == node {
			continue
		}
		for _, sw := range p {
			if _, shared := onMine[sw]; shared {
				cps[sw] = true
				break
			}
		}
	}
	return len(cps)
}

// Format prints the per-node bandwidths like the Fig. 12 legends.
func (r *Fig12Result) Format(w io.Writer) {
	onoff := "off"
	if r.PFC {
		onoff = "on"
	}
	writeHeader(w, fmt.Sprintf("Fig. 12: incast bandwidth — %s (PFC %s)", r.Mode, onoff))
	for _, f := range r.Flows {
		fmt.Fprintf(w, "n%d(h:%d, cp:%d): %.2f Gbps\n", f.Node, f.Hops, f.CongPts, f.MeanGbps)
	}
	fmt.Fprintf(w, "aggregate: %.2f Gbps, drops: %d\n", r.AggregateGbps, r.Drops)
}
