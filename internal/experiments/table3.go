package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/routing"
	"repro/internal/topology"
)

func init() {
	Register(40, "table3", "Table III: routing strategies with machine-checked deadlock freedom",
		func(_ context.Context, _ Params, w io.Writer) error {
			r, err := Table3()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		})
}

// Table3Row is one topology's routing strategy and deadlock-avoidance
// scheme, verified live against the channel dependency graph.
type Table3Row struct {
	Topology     string
	Strategy     string
	Scheme       string // the paper's "Deadlock Avoidance" column
	Rules        int
	DeadlockFree bool
}

// Table3Result reproduces Table III with machine-checked deadlock
// freedom instead of citations.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 computes and verifies every Table III strategy.
func Table3() (*Table3Result, error) {
	cases := []struct {
		g      *topology.Graph
		name   string
		strat  routing.Strategy
		scheme string
	}{
		{topology.FatTree(4), "Fat-Tree", routing.FatTreeDFS{}, "No need (up-down)"},
		{topology.Dragonfly(4, 9, 2, 1), "Dragonfly", routing.DragonflyMinimal{}, "Changing VC"},
		{topology.Mesh2D(4, 4, 1), "2D-Mesh", routing.MeshXY{}, "By routing (X-Y)"},
		{topology.Mesh3D(3, 3, 3, 1), "3D-Mesh", routing.MeshXYZ{}, "By routing (X-Y-Z)"},
		{topology.Torus2D(5, 5, 1), "2D-Torus", routing.TorusClue{Dims: 2}, "By routing and changing VC"},
		{topology.Torus3D(4, 4, 4, 1), "3D-Torus", routing.TorusClue{Dims: 3}, "By routing and changing VC"},
	}
	res := &Table3Result{}
	for _, c := range cases {
		routes, err := c.strat.Compute(c.g)
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", c.name, err)
		}
		free := routing.VerifyDeadlockFree(routes) == nil
		res.Rows = append(res.Rows, Table3Row{
			Topology: c.name, Strategy: routes.Strategy, Scheme: c.scheme,
			Rules: len(routes.Rules), DeadlockFree: free,
		})
	}
	return res, nil
}

// Format prints Table III.
func (r *Table3Result) Format(w io.Writer) {
	writeHeader(w, "Table III: routing strategies and deadlock avoidance")
	fmt.Fprintf(w, "%-11s %-18s %-28s %8s %10s\n", "topology", "strategy", "deadlock avoidance", "rules", "CDG check")
	for _, row := range r.Rows {
		ok := "ACYCLIC"
		if !row.DeadlockFree {
			ok = "CYCLE!"
		}
		fmt.Fprintf(w, "%-11s %-18s %-28s %8d %10s\n", row.Topology, row.Strategy, row.Scheme, row.Rules, ok)
	}
}
