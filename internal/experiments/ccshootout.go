package experiments

// The cc-shootout scenario set: the three host congestion-control
// policies (DCQCN, Timely-style delay CC, pFabric-style size priority
// — see internal/netsim/cc.go) raced over the same seeded open-loop
// schedules, with and without a link fault, so their FCT tails and PFC
// pause behaviour are directly comparable cell by cell. Per-policy
// fabric configuration rides Scenario.SimConfig, so one registered set
// sweeps all three without touching the testbed default.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func init() {
	Register(117, "cc-shootout", "cc: DCQCN vs Timely vs pFabric, pattern x load x faults grid on fat-tree, FCT and pauses",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := CCShootout(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldCC, FieldWorkers, FieldShards)
}

// ccConfig returns the fabric configuration for one policy: DCQCN
// needs ECN marking switched on to receive its signal; Timely and
// pFabric run on the default lossless fabric with only the CC knob
// set.
func ccConfig(policy string) netsim.Config {
	cfg := netsim.DefaultConfig()
	cfg.CC = policy
	if policy == netsim.CCDCQCN {
		cfg.ECN = true
		cfg.DCQCN = true
	}
	return cfg
}

// CCShootoutCell is one (policy, pattern, load, faults) grid point.
type CCShootoutCell struct {
	CC      string
	Pattern string
	Load    float64
	Faults  int
	Flows   int
	// Results.
	Completed  int
	Incomplete int
	Lost       int64
	Drops      int64
	Pauses     int64
	Reconv     netsim.Time
	ReconvN    int
	P50, P99   float64 // FCT slowdown percentiles over completed flows
}

// CCShootoutResult is the full grid.
type CCShootoutResult struct {
	Seed  int64
	Cells []CCShootoutCell
}

// CCShootout races the CC policies over uniform, permutation and
// incast 8:1 traffic (scaled web-search sizes, 16 ranks) on the k=4
// fat-tree at loads {0.3, 0.7}, each cell with zero and one seeded
// core-link fault (same one-shot geometry as faults-sweep). Every cell
// reruns the identical seeded schedule, so the only difference between
// two rows of a (pattern, load, faults) block is the policy. Params:
// Seed (0 = 1), Flows (0 = 96 per cell), CC ("" = all three policies),
// Workers, Shards.
func CCShootout(ctx context.Context, p Params) (*CCShootoutResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 96
	}
	policies := netsim.CCPolicies()
	if p.CC != "" {
		ok := false
		for _, pol := range policies {
			if pol == p.CC {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("cc-shootout: unknown policy %q (valid: %v)", p.CC, policies)
		}
		policies = []string{p.CC}
	}
	patterns := []loadgen.Pattern{loadgen.Uniform(), loadgen.Permutation(), loadgen.Incast(8)}
	loads := []float64{0.3, 0.7}
	faultCounts := []int{0, 1}
	g := topology.FatTree(4)
	base := netsim.DefaultConfig()
	sizes := loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/64)
	const ranks = 16

	tb, err := core.PaperTestbed([]*topology.Graph{g})
	if err != nil {
		return nil, err
	}
	res := &CCShootoutResult{Seed: seed}
	var jobs []core.Job
	var flowSets []*loadgen.FlowSet
	for _, pat := range patterns {
		for _, load := range loads {
			for _, nf := range faultCounts {
				// One schedule and one fault draw per (pattern, load,
				// faults) block, replayed identically under every
				// policy: the block seed skips the per-policy index.
				blockSeed := seed + int64(len(res.Cells)/len(policies))
				for _, policy := range policies {
					fs, err := loadgen.Spec{
						Ranks: ranks, Pattern: pat, Sizes: sizes,
						Load: load, Flows: flows, Seed: blockSeed,
						LinkBps: base.LinkBps,
					}.Generate()
					if err != nil {
						return nil, err
					}
					var spec *faults.Spec
					if nf > 0 {
						if spec, err = oneShotLinkFaults(g, nf, blockSeed, fs); err != nil {
							return nil, err
						}
					}
					cfg := ccConfig(policy)
					res.Cells = append(res.Cells, CCShootoutCell{
						CC: policy, Pattern: pat.Name(), Load: load, Faults: nf, Flows: flows,
					})
					flowSets = append(flowSets, fs)
					jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
						Topo: g, Flows: fs.Flows, Mode: core.FullTestbed,
						SimConfig: &cfg, Faults: spec,
					}})
				}
			}
		}
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers), core.WithShards(p.Shards))
	if err != nil {
		return nil, err
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		r := results[i]
		rep := telemetry.MeasureFCT(flowSets[i].Flows, base.LinkBps, idealBase(base), []int{})
		c.Completed = rep.Completed
		c.Incomplete = r.Incomplete
		c.Lost = r.FaultDrops
		c.Drops = r.Drops
		c.Pauses = r.Pauses
		if len(rep.Buckets) > 0 && rep.Buckets[0].Count > 0 {
			c.P50, c.P99 = rep.Buckets[0].P50, rep.Buckets[0].P99
		}
		if r.Recovery != nil {
			c.Reconv, c.ReconvN = r.Recovery.MeanReconvergence()
		}
		// Headline per-policy metric: the p99 tail on the hardest
		// fault-free cell (incast at load 0.7).
		if c.Pattern == "incast-8" && c.Load == 0.7 && c.Faults == 0 {
			RecordMetric("cc_p99_"+c.CC, c.P99)
		}
	}
	return res, nil
}

// Format prints the shootout grid, one row per cell.
func (r *CCShootoutResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf("cc: DCQCN vs Timely vs pFabric (fat-tree k=4, scaled web-search sizes, seed %d)", r.Seed))
	fmt.Fprintf(w, "%-8s %-12s %5s %6s %6s %9s %6s %6s %8s %10s %8s %8s\n",
		"cc", "pattern", "load", "faults", "flows", "completed", "lost", "drops", "pauses", "reconv", "p50", "p99")
	for i := range r.Cells {
		c := &r.Cells[i]
		reconv := "-"
		if c.ReconvN > 0 {
			reconv = fmt.Sprintf("%.0fus", float64(c.Reconv)/float64(netsim.Microsecond))
		}
		fmt.Fprintf(w, "%-8s %-12s %5.1f %6d %6d %9d %6d %6d %8d %10s %7.2fx %7.2fx\n",
			c.CC, c.Pattern, c.Load, c.Faults, c.Flows, c.Completed,
			c.Lost, c.Drops, c.Pauses, reconv, c.P50, c.P99)
		if c.Incomplete > 0 {
			fmt.Fprintf(w, "%-8s   (%d flows incomplete)\n", "", c.Incomplete)
		}
	}
}
