package experiments

// The loadgen-sweep-xl scenario set: the flow-level fidelity mode
// (internal/flowsim) exercised at fabric sizes the packet engine
// cannot touch — fat-trees from 1k to 65k hosts, where a single
// packet-level cell would need billions of events but the fluid model
// finishes in ~flow-count work. The set also runs one packet-vs-flow
// pair on a small common fabric (the k=8 fat-tree, 128 hosts) with the
// same schedule, recording the wall-clock ratio as the flowsim_speedup
// metric benchguard gates: flow fidelity exists to be faster, and the
// trajectory enforces that it stays so.
//
// The XL testbed is built with no projected topologies on purpose: a
// 65k-host fat-tree does not fit any physical cluster, and the flow
// path needs only the testbed's fabric config — which is exactly the
// regime the fidelity knob exists for.

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func init() {
	Register(115, "loadgen-sweep-xl", "loadgen: flow-fidelity FCT sweep on XL fat-trees (1k-65k hosts), packet-vs-flow speedup on a 128-host reference",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := LoadSweepXL(ctx, p)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldSeed, FieldFlows, FieldWorkers)
}

// xlLoad is the fixed offered load of every XL cell: high enough that
// flows contend (rate recomputation does real work), low enough that
// the heavy-tailed schedule drains.
const xlLoad = 0.6

// LoadSweepXLCell is one (fat-tree size, pattern) grid point, run at
// flow fidelity.
type LoadSweepXLCell struct {
	Topo    string
	Hosts   int
	Pattern string
	Flows   int
	// Recomputes counts fair-share rate recomputations (the fluid
	// engine's event count) — deterministic per seed.
	Recomputes int64
	// Wall is machine-dependent (masked in goldens).
	Wall time.Duration
	FCT  *telemetry.FCTReport
}

// LoadSweepXLResult is the XL grid plus the packet-vs-flow reference
// pair.
type LoadSweepXLResult struct {
	Seed  int64
	Cells []LoadSweepXLCell
	// The common-fabric speedup pair: one schedule on SmallTopo run at
	// both fidelities. PacketWall/FlowWall/Speedup are wall-clock-
	// derived (masked in goldens, recorded as the flowsim_speedup
	// metric).
	SmallTopo  string
	SmallHosts int
	PacketWall time.Duration
	FlowWall   time.Duration
	Speedup    float64
}

// LoadSweepXL sweeps uniform and permutation schedules over fat-trees
// k ∈ {16, 36, 64} (1024, 11664 and 65536 hosts) at flow fidelity,
// then times one packet-vs-flow pair on the k=8 fat-tree. Params: Seed
// (0 = 1), Flows (0 = 2048) per cell, Workers fans the XL cells out
// one run per worker. The speedup pair always runs serially so its
// wall-clock ratio is clean.
func LoadSweepXL(ctx context.Context, p Params) (*LoadSweepXLResult, error) {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	flows := p.Flows
	if flows <= 0 {
		flows = 2048
	}
	cfg := netsim.DefaultConfig()
	sizes := loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/64)
	patterns := []loadgen.Pattern{loadgen.Uniform(), loadgen.Permutation()}
	const ranks = 64

	// One testbed serves both halves: it is planned for the small
	// reference fabric only, because the XL fabrics exist solely as
	// simulated graphs — a 65k-host fat-tree fits no physical cluster,
	// and the flow path reads nothing but the testbed's fabric config.
	small := topology.FatTree(8)
	tb, err := testbedSizedFor(small)
	if err != nil {
		return nil, err
	}
	res := &LoadSweepXLResult{Seed: seed}
	var jobs []core.Job
	for _, k := range []int{16, 36, 64} {
		g := topology.FatTree(k)
		nHosts := len(g.Hosts())
		for _, pat := range patterns {
			fs, err := loadgen.Spec{
				Ranks: ranks, Pattern: pat, Sizes: sizes,
				Load: xlLoad, Flows: flows,
				Seed:    seed + int64(len(res.Cells)),
				LinkBps: cfg.LinkBps,
			}.Generate()
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, LoadSweepXLCell{
				Topo: g.Name, Hosts: nHosts, Pattern: pat.Name(), Flows: flows,
			})
			jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
				Topo: g, Flows: fs.Flows, Mode: core.FullTestbed, Fidelity: core.Flow,
			}})
		}
	}
	results, err := core.Sweep(ctx, jobs, core.WithWorkers(p.Workers))
	if err != nil {
		return nil, err
	}
	xlWall := -1.0
	for i := range res.Cells {
		res.Cells[i].Recomputes = results[i].Events
		res.Cells[i].Wall = results[i].Wall
		res.Cells[i].FCT = telemetry.MeasureFCT(jobs[i].Flows, cfg.LinkBps, idealBase(cfg), sweepBuckets())
		if xlWall < 0 && res.Cells[i].Hosts >= 10000 && res.Cells[i].Pattern == loadgen.Uniform().Name() {
			// The acceptance record: the smallest >=10k-host fabric (the
			// k=36 fat-tree) at flow fidelity, to compare against the
			// 128-host packet wall.
			xlWall = float64(results[i].Wall.Microseconds()) / 1000
		}
	}
	if xlWall >= 0 {
		RecordMetric("flowsim_xl_wall_ms", xlWall)
	}

	// The speedup reference: the largest fabric both fidelities reach
	// comfortably, one seeded schedule run twice. The pair uses the
	// UNSCALED web-search distribution (mean ~0.5 MB): packet-level cost
	// grows with bytes × hops while fluid cost grows with flow count, so
	// realistic datacenter flow sizes are exactly where the fidelity
	// trade pays — and what the flowsim_speedup metric should price.
	gen := func() ([]netsim.Flow, error) {
		fs, err := loadgen.Spec{
			Ranks: 16, Pattern: loadgen.Uniform(), Sizes: loadgen.WebSearch(),
			Load: xlLoad, Flows: flows, Seed: seed, LinkBps: cfg.LinkBps,
		}.Generate()
		if err != nil {
			return nil, err
		}
		return fs.Flows, nil
	}
	pktFlows, err := gen()
	if err != nil {
		return nil, err
	}
	pkt, err := core.Run(ctx, tb, core.Scenario{Topo: small, Flows: pktFlows, Mode: core.FullTestbed})
	if err != nil {
		return nil, err
	}
	fluFlows, err := gen()
	if err != nil {
		return nil, err
	}
	flu, err := core.Run(ctx, tb, core.Scenario{
		Topo: small, Flows: fluFlows, Mode: core.FullTestbed, Fidelity: core.Flow,
	})
	if err != nil {
		return nil, err
	}
	res.SmallTopo = small.Name
	res.SmallHosts = len(small.Hosts())
	res.PacketWall = pkt.Wall
	res.FlowWall = flu.Wall
	if flu.Wall > 0 {
		res.Speedup = float64(pkt.Wall) / float64(flu.Wall)
	}
	RecordMetric("flowsim_speedup", res.Speedup)
	RecordMetric("packet_small_wall_ms", float64(pkt.Wall.Microseconds())/1000)
	return res, nil
}

// Format prints the XL grid — deterministic columns (hosts, flows,
// recomputes, FCT slowdowns) plus the masked wall column — and the
// packet-vs-flow speedup line.
func (r *LoadSweepXLResult) Format(w io.Writer) {
	writeHeader(w, fmt.Sprintf(
		"loadgen: XL flow-fidelity sweep (scaled web-search sizes, 64 ranks, load %.1f, seed %d)",
		xlLoad, r.Seed))
	fmt.Fprintf(w, "%-14s %6s %-12s %6s %10s  %15s %15s %15s %9s\n",
		"topology", "hosts", "pattern", "flows", "recomputes",
		"<10K p50/p99", "10-100K p50/p99", ">=100K p50/p99", "wall(ms)")
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(w, "%-14s %6d %-12s %6d %10d ", c.Topo, c.Hosts, c.Pattern, c.Flows, c.Recomputes)
		for _, b := range c.FCT.Buckets {
			if b.Count == 0 {
				fmt.Fprintf(w, " %15s", "-")
				continue
			}
			fmt.Fprintf(w, " %7.2f/%-7.2f", b.P50, b.P99)
		}
		fmt.Fprintf(w, " %9.1f\n", float64(c.Wall.Microseconds())/1000)
	}
	fmt.Fprintf(w, "%s (%d hosts, same schedule both fidelities): packet %.1fms flow %.1fms speedup %.1fx\n",
		r.SmallTopo, r.SmallHosts,
		float64(r.PacketWall.Microseconds())/1000,
		float64(r.FlowWall.Microseconds())/1000,
		r.Speedup)
}
