package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Table4Cell is one (application, topology) evaluation: ACT on SDT vs
// the simulator, the deviation, and the evaluation-time speedup — the
// paper's "Ax (B%)" cells.
type Table4Cell struct {
	App      string
	Topology string
	Ranks    int
	ACTSDT   netsim.Time
	ACTSim   netsim.Time
	// Deviation is |ACTSDT-ACTSim|/ACTSim (paper: <= 3%).
	Deviation float64
	// EvalSDT is deploy+ACT; EvalSim is the simulator's wall clock.
	EvalSDT time.Duration
	EvalSim time.Duration
	// Speedup = EvalSim / EvalSDT (paper: up to 2899x at their scale).
	Speedup float64
}

// Table4Result reproduces Table IV.
type Table4Result struct {
	Cells []Table4Cell
	// MaxDeviation is the headline ACT agreement (paper: max 3%).
	MaxDeviation float64
}

// table4Topologies are the §VI-D evaluation topologies.
func table4Topologies() []*topology.Graph {
	return []*topology.Graph{
		topology.Dragonfly(4, 9, 2, 1),
		topology.FatTree(4),
		topology.Torus2D(5, 5, 1),
		topology.Torus3D(4, 4, 4, 1),
	}
}

// Table4 runs the application sweep with `ranks` MPI ranks per run
// (the paper uses up to 32; smaller values preserve the comparison and
// run much faster). apps of nil means all Table IV applications.
func Table4(ranks int, apps []string) (*Table4Result, error) { return Table4Par(ranks, apps, 1) }

// Table4Par is Table4 with one (application, topology) cell per
// worker. Cells of one topology share a testbed whose SDT deployment
// is primed serially up front (deploying mutates the controller;
// afterwards it is read-only), so the deterministic columns (ACTs,
// deviation, SDT evaluation time) are identical at any worker count.
func Table4Par(ranks int, apps []string, workers int) (*Table4Result, error) {
	if ranks <= 0 {
		ranks = 16
	}
	if apps == nil {
		apps = workload.TableIVApps()
	}
	type cellJob struct {
		g   *topology.Graph
		tb  *core.Testbed
		app string
		n   int
	}
	var jobs []cellJob
	for _, g := range table4Topologies() {
		n := ranks
		if h := g.NumHosts(); n > h { // NumHosts also primes the lazy caches
			n = h
		}
		tb, err := testbedSizedFor(g)
		if err != nil {
			return nil, err
		}
		if err := tb.EnsureDeployed(g); err != nil {
			return nil, err
		}
		for _, app := range apps {
			jobs = append(jobs, cellJob{g: g, tb: tb, app: app, n: n})
		}
	}
	cells := make([]Table4Cell, len(jobs))
	err := core.ParallelFor(workers, len(jobs), func(i int) error {
		j := jobs[i]
		tb := j.tb
		tr, err := workload.ByName(j.app, j.n)
		if err != nil {
			return err
		}
		hosts := j.g.Hosts()[:j.n]
		sdt, err := tb.RunTrace(j.g, tr, hosts, core.SDT)
		if err != nil {
			return fmt.Errorf("table4: %s on %s (SDT): %w", j.app, j.g.Name, err)
		}
		sim, err := tb.RunTrace(j.g, tr, hosts, core.Simulator)
		if err != nil {
			return fmt.Errorf("table4: %s on %s (sim): %w", j.app, j.g.Name, err)
		}
		dev := math.Abs(float64(sdt.ACT-sim.ACT)) / float64(sim.ACT)
		cells[i] = Table4Cell{
			App: j.app, Topology: j.g.Name, Ranks: j.n,
			ACTSDT: sdt.ACT, ACTSim: sim.ACT, Deviation: dev,
			EvalSDT: sdt.Eval, EvalSim: sim.Eval,
			Speedup: float64(sim.Eval) / float64(sdt.Eval),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Cells: cells}
	for _, c := range cells {
		if c.Deviation > res.MaxDeviation {
			res.MaxDeviation = c.Deviation
		}
	}
	return res, nil
}

// Format prints Table IV.
func (r *Table4Result) Format(w io.Writer) {
	writeHeader(w, "Table IV: real application ACTs on SDT compared to simulator")
	fmt.Fprintf(w, "%-10s %-18s %6s %12s %12s %9s %12s %12s %9s\n",
		"app", "topology", "ranks", "ACT(SDT)", "ACT(sim)", "dev", "eval(SDT)", "eval(sim)", "speedup")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s %-18s %6d %11.2fms %11.2fms %9s %12s %12s %8.1fx\n",
			c.App, c.Topology, c.Ranks,
			float64(c.ACTSDT)/float64(netsim.Millisecond),
			float64(c.ACTSim)/float64(netsim.Millisecond),
			pct(c.Deviation),
			c.EvalSDT.Round(time.Millisecond), c.EvalSim.Round(time.Millisecond),
			c.Speedup)
	}
	fmt.Fprintf(w, "max ACT deviation: %s (paper: <=3%%)\n", pct(r.MaxDeviation))
}
