package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func init() {
	Register(50, "table4", "Table IV: application ACTs on SDT vs the simulator",
		func(ctx context.Context, p Params, w io.Writer) error {
			r, err := Table4(ctx, p.Ranks, nil, p.Workers, core.WithShards(p.Shards))
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		}, FieldRanks, FieldWorkers, FieldShards)
}

// Table4Cell is one (application, topology) evaluation: ACT on SDT vs
// the simulator, the deviation, and the evaluation-time speedup — the
// paper's "Ax (B%)" cells.
type Table4Cell struct {
	App      string
	Topology string
	Ranks    int
	ACTSDT   netsim.Time
	ACTSim   netsim.Time
	// Deviation is |ACTSDT-ACTSim|/ACTSim (paper: <= 3%).
	Deviation float64
	// EvalSDT is deploy+ACT; EvalSim is the simulator's wall clock.
	EvalSDT time.Duration
	EvalSim time.Duration
	// Speedup = EvalSim / EvalSDT (paper: up to 2899x at their scale).
	Speedup float64
}

// Table4Result reproduces Table IV.
type Table4Result struct {
	Cells []Table4Cell
	// MaxDeviation is the headline ACT agreement (paper: max 3%).
	MaxDeviation float64
}

// table4Topologies are the §VI-D evaluation topologies.
func table4Topologies() []*topology.Graph {
	return []*topology.Graph{
		topology.Dragonfly(4, 9, 2, 1),
		topology.FatTree(4),
		topology.Torus2D(5, 5, 1),
		topology.Torus3D(4, 4, 4, 1),
	}
}

// Table4 runs the application sweep with `ranks` MPI ranks per run
// (the paper uses up to 32; smaller values preserve the comparison and
// run much faster). apps of nil means all Table IV applications. Every
// (application, topology) cell contributes an SDT and a Simulator job
// to one core.Sweep — one simulation per worker; the per-topology
// testbeds' SDT deployments are primed serially by Sweep (deploying
// mutates the controller; afterwards it is read-only) — so the
// deterministic columns (ACTs, deviation, SDT evaluation time) are
// identical at any worker count.
// Trailing opts (e.g. core.WithShards) apply to every job of the
// sweep.
func Table4(ctx context.Context, ranks int, apps []string, workers int, opts ...core.Option) (*Table4Result, error) {
	if ranks <= 0 {
		ranks = 16
	}
	if apps == nil {
		apps = workload.TableIVApps()
	}
	type cell struct {
		g   *topology.Graph
		app string
		n   int
	}
	var cellsIn []cell
	var jobs []core.Job
	for _, g := range table4Topologies() {
		n := ranks
		if h := g.NumHosts(); n > h { // NumHosts also primes the lazy caches
			n = h
		}
		tb, err := testbedSizedFor(g)
		if err != nil {
			return nil, err
		}
		hosts := g.Hosts()[:n]
		for _, app := range apps {
			tr, err := workload.ByName(app, n)
			if err != nil {
				return nil, err
			}
			cellsIn = append(cellsIn, cell{g: g, app: app, n: n})
			for _, mode := range []core.Mode{core.SDT, core.Simulator} {
				jobs = append(jobs, core.Job{TB: tb, Scenario: core.Scenario{
					Topo: g, Trace: tr, Hosts: hosts, Mode: mode,
				}})
			}
		}
	}
	results, err := core.Sweep(ctx, jobs, append([]core.Option{core.WithWorkers(workers)}, opts...)...)
	if err != nil {
		return nil, err
	}
	cells := make([]Table4Cell, len(cellsIn))
	for i, c := range cellsIn {
		sdt, sim := results[2*i], results[2*i+1]
		dev := math.Abs(float64(sdt.ACT-sim.ACT)) / float64(sim.ACT)
		cells[i] = Table4Cell{
			App: c.app, Topology: c.g.Name, Ranks: c.n,
			ACTSDT: sdt.ACT, ACTSim: sim.ACT, Deviation: dev,
			EvalSDT: sdt.Eval, EvalSim: sim.Eval,
			Speedup: float64(sim.Eval) / float64(sdt.Eval),
		}
	}
	res := &Table4Result{Cells: cells}
	for _, c := range cells {
		if c.Deviation > res.MaxDeviation {
			res.MaxDeviation = c.Deviation
		}
	}
	return res, nil
}

// Format prints Table IV.
func (r *Table4Result) Format(w io.Writer) {
	writeHeader(w, "Table IV: real application ACTs on SDT compared to simulator")
	fmt.Fprintf(w, "%-10s %-18s %6s %12s %12s %9s %12s %12s %9s\n",
		"app", "topology", "ranks", "ACT(SDT)", "ACT(sim)", "dev", "eval(SDT)", "eval(sim)", "speedup")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s %-18s %6d %11.2fms %11.2fms %9s %12s %12s %8.1fx\n",
			c.App, c.Topology, c.Ranks,
			float64(c.ACTSDT)/float64(netsim.Millisecond),
			float64(c.ACTSim)/float64(netsim.Millisecond),
			pct(c.Deviation),
			c.EvalSDT.Round(time.Millisecond), c.EvalSim.Round(time.Millisecond),
			c.Speedup)
	}
	fmt.Fprintf(w, "max ACT deviation: %s (paper: <=3%%)\n", pct(r.MaxDeviation))
}
