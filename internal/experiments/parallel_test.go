package experiments

import (
	"testing"

	"repro/internal/netsim"
)

// TestFig11ParallelMatchesSerial is the load-bearing determinism check
// for the sweep fan-out: simulated RTTs must not depend on worker
// count.
func TestFig11ParallelMatchesSerial(t *testing.T) {
	serial, err := Fig11(t.Context(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig11(t.Context(), 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Points) != len(serial.Points) {
		t.Fatalf("points: %d vs %d", len(par.Points), len(serial.Points))
	}
	for i := range serial.Points {
		s, p := serial.Points[i], par.Points[i]
		if s != p {
			t.Errorf("msglen %d: serial %+v != parallel %+v", s.Bytes, s, p)
		}
	}
	if par.MaxOverhead != serial.MaxOverhead {
		t.Errorf("max overhead: %v vs %v", par.MaxOverhead, serial.MaxOverhead)
	}
}

func TestFig12PanelsParallelMatchesSerial(t *testing.T) {
	dur := 50 * netsim.Millisecond
	serial, err := Fig12Panels(t.Context(), dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig12Panels(t.Context(), dur, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.AggregateGbps != p.AggregateGbps || s.Drops != p.Drops || len(s.Flows) != len(p.Flows) {
			t.Errorf("panel %d (%s pfc=%v): serial agg=%v drops=%d, parallel agg=%v drops=%d",
				i, s.Mode, s.PFC, s.AggregateGbps, s.Drops, p.AggregateGbps, p.Drops)
		}
	}
}

func TestTable4ParallelMatchesSerial(t *testing.T) {
	apps := []string{"IMB"}
	serial, err := Table4(t.Context(), 6, apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table4(t.Context(), 6, apps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Cells) != len(serial.Cells) {
		t.Fatalf("cells: %d vs %d", len(par.Cells), len(serial.Cells))
	}
	for i := range serial.Cells {
		s, p := serial.Cells[i], par.Cells[i]
		// Wall-clock fields (EvalSim, Speedup) legitimately differ.
		if s.ACTSDT != p.ACTSDT || s.ACTSim != p.ACTSim ||
			s.Deviation != p.Deviation || s.EvalSDT != p.EvalSDT {
			t.Errorf("cell %s/%s: serial %+v != parallel %+v", s.App, s.Topology, s, p)
		}
	}
}

func TestFig13ParallelMatchesSerial(t *testing.T) {
	counts := []int{2, 4}
	serial, err := Fig13(t.Context(), counts, 32*1024, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig13(t.Context(), counts, 32*1024, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Points {
		s, p := serial.Points[i], par.Points[i]
		// SimEval/SimFactor are wall clock; the rest is deterministic.
		if s.RealACT != p.RealACT || s.FullEval != p.FullEval ||
			s.SDTEval != p.SDTEval || s.SDTFactor != p.SDTFactor {
			t.Errorf("nodes=%d: serial %+v != parallel %+v", s.Nodes, s, p)
		}
	}
}

func TestTable2ParallelMatchesSerial(t *testing.T) {
	serial, err := Table2(t.Context(), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table2(t.Context(), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Rows) != len(serial.Rows) {
		t.Fatalf("rows: %d vs %d", len(par.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != par.Rows[i] {
			t.Errorf("row %d: serial %+v != parallel %+v", i, serial.Rows[i], par.Rows[i])
		}
	}
}
