package faults

import (
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

func TestScheduleDeterminism(t *testing.T) {
	g := topology.FatTree(4)
	edges := CoreEdges(g)
	spec := &Spec{
		Events: []Event{{At: 5 * netsim.Microsecond, Kind: SwitchDown, Elem: g.Switches()[0]}},
		Flaps: []Flap{
			LinkFlap(edges[0], 200*netsim.Microsecond, 50*netsim.Microsecond),
			LinkFlap(edges[1], 300*netsim.Microsecond, 20*netsim.Microsecond),
			SwitchFlap(g.Switches()[1], netsim.Millisecond, 100*netsim.Microsecond),
		},
		Horizon: 5 * netsim.Millisecond,
		Seed:    42,
	}
	a, err := spec.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if Digest(a) != Digest(b) {
		t.Fatal("same spec produced different schedules")
	}
	if len(a) < 10 {
		t.Fatalf("expected a dense flap schedule, got %d events", len(a))
	}
	// Sorted by time.
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule out of order at %d: %v after %v", i, a[i], a[i-1])
		}
	}
	// Per element, events alternate down/up starting with down.
	state := map[string]Kind{}
	for _, ev := range a {
		key := ev.String()[strings.Index(ev.String(), " ")+1:]
		key = key[:strings.Index(key, " ")] // "e12" / "v3"
		prev, seen := state[key]
		switch ev.Kind {
		case LinkDown, SwitchDown:
			if seen && (prev == LinkDown || prev == SwitchDown) {
				t.Fatalf("double down for %s", key)
			}
		case LinkUp, SwitchUp:
			if !seen || (prev != LinkDown && prev != SwitchDown) {
				t.Fatalf("up without down for %s", key)
			}
		}
		state[key] = ev.Kind
	}
	// A different seed must produce a different flap schedule.
	spec2 := *spec
	spec2.Seed = 43
	c, err := spec2.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if Digest(a) == Digest(c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Horizon bounds every event.
	for _, ev := range c {
		if ev.At > spec.Horizon {
			t.Fatalf("event %v past horizon", ev)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	g := topology.FatTree(4)
	host := g.Hosts()[0]
	cases := []Spec{
		{Events: []Event{{At: 1, Kind: LinkDown, Elem: len(g.Edges)}}},
		{Events: []Event{{At: 1, Kind: SwitchDown, Elem: host}}},
		{Events: []Event{{At: -1, Kind: LinkDown, Elem: 0}}},
		{Events: []Event{{At: 1, Kind: Kind(99), Elem: 0}}},
		{Flaps: []Flap{LinkFlap(0, netsim.Millisecond, netsim.Microsecond)}}, // no horizon
		{Flaps: []Flap{LinkFlap(0, 0, netsim.Microsecond)}, Horizon: netsim.Millisecond},
		{Flaps: []Flap{{Link: 0, Switch: 0, MTBF: 1, MTTR: 1}}, Horizon: netsim.Millisecond},
	}
	for i, s := range cases {
		if _, err := s.Schedule(g); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	// The zero spec is valid and empty.
	var empty Spec
	sched, err := empty.Schedule(g)
	if err != nil || len(sched) != 0 {
		t.Fatalf("zero spec: sched=%v err=%v", sched, err)
	}
}

// TestScheduleRejectsSharedElements: element state is a boolean, not a
// reference count, so a flap may not share its element with another
// flap or with one-shot events — the earliest Up would restore an
// element another source still holds down.
func TestScheduleRejectsSharedElements(t *testing.T) {
	g := topology.FatTree(4)
	sw := g.Switches()[0]
	horizon := 10 * netsim.Millisecond
	conflicting := []Spec{
		{ // flap + one-shot on the same link
			Events:  []Event{{At: netsim.Millisecond, Kind: LinkDown, Elem: 0}},
			Flaps:   []Flap{LinkFlap(0, netsim.Millisecond, netsim.Microsecond)},
			Horizon: horizon,
		},
		{ // two flaps on the same link
			Flaps: []Flap{
				LinkFlap(1, netsim.Millisecond, netsim.Microsecond),
				LinkFlap(1, 2*netsim.Millisecond, netsim.Microsecond),
			},
			Horizon: horizon,
		},
		{ // flap + one-shot on the same switch
			Events:  []Event{{At: netsim.Millisecond, Kind: SwitchUp, Elem: sw}},
			Flaps:   []Flap{SwitchFlap(sw, netsim.Millisecond, netsim.Microsecond)},
			Horizon: horizon,
		},
	}
	for i, s := range conflicting {
		if _, err := s.Schedule(g); err == nil {
			t.Errorf("case %d: shared-element spec accepted", i)
		}
	}
	// Same ID across kinds is NOT a conflict (edge 0 and switch-vertex
	// 0 are different elements), nor are one-shot sequences on one
	// element, nor flaps on distinct elements.
	ok := Spec{
		Events: []Event{
			{At: netsim.Millisecond, Kind: LinkDown, Elem: 0},
			{At: 2 * netsim.Millisecond, Kind: LinkUp, Elem: 0},
		},
		Flaps: []Flap{
			SwitchFlap(sw, netsim.Millisecond, netsim.Microsecond),
			LinkFlap(1, netsim.Millisecond, netsim.Microsecond),
		},
		Horizon: horizon,
	}
	if _, err := ok.Schedule(g); err != nil {
		t.Fatalf("distinct-element spec rejected: %v", err)
	}
}

func TestPickCoreEdges(t *testing.T) {
	g := topology.FatTree(4)
	picked := PickCoreEdges(g, 4, 7)
	if len(picked) != 4 {
		t.Fatalf("got %d edges", len(picked))
	}
	seen := map[int]bool{}
	for _, e := range picked {
		if seen[e] {
			t.Fatalf("edge %d picked twice", e)
		}
		seen[e] = true
		edge := g.Edges[e]
		if g.Vertices[edge.A].Kind != topology.Switch || g.Vertices[edge.B].Kind != topology.Switch {
			t.Fatalf("edge %d is not switch-switch", e)
		}
	}
	again := PickCoreEdges(g, 4, 7)
	for i := range picked {
		if picked[i] != again[i] {
			t.Fatal("PickCoreEdges not deterministic")
		}
	}
	if got := PickCoreEdges(g, 1<<20, 7); len(got) != len(CoreEdges(g)) {
		t.Fatalf("overshoot clamp: got %d want %d", len(got), len(CoreEdges(g)))
	}
}

// TestBindDegradesFabric runs a tiny fabric with a cut link and checks
// the fault drops land and observers fire at the fault instant.
func TestBindDegradesFabric(t *testing.T) {
	g := topology.New("pair")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	h1 := g.AddHost("h1")
	h2 := g.AddHost("h2")
	g.Connect(s1, s2)
	g.Connect(s1, h1)
	g.Connect(s2, h2)
	core := g.EdgeBetween(s1, s2)

	build := func() *netsim.Network {
		cfg := netsim.DefaultConfig()
		net, err := netsim.NewNetwork(g, lookupFwd{g}, cfg, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}

	// Healthy run: the message arrives.
	net := build()
	done := false
	net.Host(h2).Recv(h1, 1, func() { done = true })
	net.Host(h1).Send(h2, 1, 32<<10)
	net.Sim.Run(0)
	if !done || net.FaultDrops != 0 {
		t.Fatalf("healthy: done=%v faultdrops=%d", done, net.FaultDrops)
	}

	// Cut the core link before any packet: everything fault-drops.
	net = build()
	var observed []Event
	sched, err := (&Spec{Events: []Event{{At: 0, Kind: LinkDown, Elem: core}}}).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	Bind(net, sched, ObserverFunc(func(n *netsim.Network, ev Event) {
		observed = append(observed, ev)
		if !n.LinkIsDown(core) {
			t.Error("observer ran before the state flip")
		}
	}))
	done = false
	net.Host(h2).Recv(h1, 1, func() { done = true })
	net.Host(h1).Send(h2, 1, 32<<10)
	net.Sim.Run(0)
	if done {
		t.Fatal("message delivered across a dead link")
	}
	if net.FaultDrops == 0 {
		t.Fatal("no fault drops counted")
	}
	if len(observed) != 1 || observed[0].Kind != LinkDown {
		t.Fatalf("observer saw %v", observed)
	}

	// Down then up before traffic: delivery works and the counters stay
	// clean.
	net = build()
	sched, err = (&Spec{Events: []Event{
		{At: 0, Kind: LinkDown, Elem: core},
		{At: netsim.Microsecond, Kind: LinkUp, Elem: core},
	}}).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	Bind(net, sched)
	done = false
	net.Host(h2).Recv(h1, 1, func() { done = true })
	net.Sim.At(2*netsim.Microsecond, func() { net.Host(h1).Send(h2, 1, 32<<10) })
	net.Sim.Run(0)
	if !done || net.FaultDrops != 0 {
		t.Fatalf("after recovery: done=%v faultdrops=%d", done, net.FaultDrops)
	}

	// Switch death drops everything too.
	net = build()
	sched, err = (&Spec{Events: []Event{{At: 0, Kind: SwitchDown, Elem: s2}}}).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	Bind(net, sched)
	done = false
	net.Host(h2).Recv(h1, 1, func() { done = true })
	net.Host(h1).Send(h2, 1, 32<<10)
	net.Sim.Run(0)
	if done {
		t.Fatal("message delivered through a dead switch")
	}
	if !net.SwitchIsDown(s2) {
		t.Fatal("switch not marked down")
	}
}

// lookupFwd is a minimal shortest-path forwarder for the tiny fixture.
type lookupFwd struct{ g *topology.Graph }

func (f lookupFwd) Forward(sw, inPort int, pkt *netsim.Packet) (int, int, netsim.Time, bool) {
	csr := f.g.CSR()
	// Destination attached here?
	if p := csr.PortTo(sw, pkt.Dst); p != 0 {
		return p, pkt.Tag, 0, true
	}
	// One switch hop toward the destination's switch.
	root := f.g.HostSwitch(pkt.Dst)
	if p := csr.PortTo(sw, root); p != 0 {
		return p, pkt.Tag, 0, true
	}
	return 0, 0, 0, false
}
