// Package faults synthesizes deterministic fault schedules — timed
// link and switch failures and recoveries — and executes them against
// a running netsim fabric.
//
// A Spec is a pure description: one-shot events at absolute simulated
// times plus MTBF/MTTR flap generators whose up/down intervals are
// exponential draws from the same SplitMix64 RNG the loadgen schedules
// use. Schedule(g) expands a spec into a validated, time-sorted event
// list that is byte-identical for equal (spec, topology) inputs across
// runs, platforms, and Go versions — the property the golden-output
// regression harness and the any-worker-count determinism tests pin.
//
// Bind arms a schedule on a network: at each event's simulated time the
// fabric state flips (netsim.Network.SetLinkDown/SetSwitchDown — dead
// elements drop traversing packets into Network.FaultDrops), then every
// registered Observer is notified inside the engine thread. The
// reactive repair path (controller.Rerouter) and the recovery metrics
// (telemetry.RecoveryTracker) are both observers; a spec with no
// observers still degrades the fabric.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Kind is the fault event type.
type Kind uint8

// Fault event kinds. Down events disable an element; Up events restore
// it. Elem is a logical edge ID for link events and a switch vertex ID
// for switch events.
const (
	LinkDown Kind = iota
	LinkUp
	SwitchDown
	SwitchUp
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault: at simulated time At, element Elem
// (edge ID for link kinds, switch vertex ID for switch kinds) changes
// state.
type Event struct {
	At   netsim.Time
	Kind Kind
	Elem int
}

// String renders the event for logs and digests.
func (e Event) String() string {
	unit := "e"
	if e.Kind == SwitchDown || e.Kind == SwitchUp {
		unit = "v"
	}
	return fmt.Sprintf("%s %s%d @%dus", e.Kind, unit, e.Elem,
		int64(e.At/netsim.Microsecond))
}

// Flap is a repeating failure process on one element: up-times are
// exponential with mean MTBF, outages exponential with mean MTTR.
// Exactly one of Link (edge ID) and Switch (vertex ID) is >= 0.
type Flap struct {
	Link   int
	Switch int
	MTBF   netsim.Time
	MTTR   netsim.Time
}

// LinkFlap builds a flap process on a logical edge.
func LinkFlap(edge int, mtbf, mttr netsim.Time) Flap {
	return Flap{Link: edge, Switch: -1, MTBF: mtbf, MTTR: mttr}
}

// SwitchFlap builds a flap process on a switch vertex.
func SwitchFlap(v int, mtbf, mttr netsim.Time) Flap {
	return Flap{Link: -1, Switch: v, MTBF: mtbf, MTTR: mttr}
}

// Spec describes one fault workload. The zero Spec is valid and empty
// (no faults). Equal specs expand to byte-identical schedules.
type Spec struct {
	// Events are one-shot faults at absolute simulated times.
	Events []Event
	// Flaps are repeating MTBF/MTTR failure processes, expanded up to
	// Horizon.
	Flaps []Flap
	// Horizon bounds flap expansion (required when Flaps is non-empty;
	// events past the horizon are not generated, so an element may end
	// the run down).
	Horizon netsim.Time
	// Seed drives the flap interval draws. Equal seeds reproduce equal
	// schedules.
	Seed int64
	// RepairLatency is the controller's detection + recompute + install
	// delay between a fault taking effect and the repaired routes going
	// live (0 = 500 µs, the reactive flow-setup round trip). Negative
	// disables repair: routes stay stale and traffic toward dead
	// elements keeps dropping.
	RepairLatency netsim.Time
}

// DefaultRepairLatency is the detection→install delay used when
// Spec.RepairLatency is zero.
const DefaultRepairLatency = 500 * netsim.Microsecond

// Repair resolves the spec's effective repair latency (< 0 = repair
// disabled).
func (s *Spec) Repair() netsim.Time {
	if s.RepairLatency == 0 {
		return DefaultRepairLatency
	}
	return s.RepairLatency
}

// flapSeed derives an independent RNG stream per flap index so one
// flap's draw count never perturbs another's schedule.
func flapSeed(seed int64, i int) int64 {
	return int64(uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15)
}

// Schedule validates the spec against a topology and expands it into
// the time-sorted event list Bind executes. Ties at equal times keep
// spec order: one-shot events first, then flap streams in declaration
// order.
func (s *Spec) Schedule(g *topology.Graph) ([]Event, error) {
	var out []Event
	for i, ev := range s.Events {
		if err := checkElem(g, ev.Kind, ev.Elem); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
		if ev.At < 0 {
			return nil, fmt.Errorf("faults: event %d: negative time %d", i, ev.At)
		}
		out = append(out, ev)
	}
	if len(s.Flaps) > 0 && s.Horizon <= 0 {
		return nil, fmt.Errorf("faults: flaps need a positive Horizon")
	}
	// An element's up/down state is a plain boolean, not a reference
	// count: two independent sources driving the same element would let
	// the earliest Up restore it while the other source still holds it
	// down. One-shot sequences on one element are fine (they are a
	// single ordered script); a flap must own its element exclusively.
	type target struct {
		link bool
		elem int
	}
	owned := map[target]bool{}
	for _, ev := range s.Events {
		owned[target{ev.Kind == LinkDown || ev.Kind == LinkUp, ev.Elem}] = true
	}
	for i, fl := range s.Flaps {
		tg := target{fl.Link >= 0, fl.Link}
		if !tg.link {
			tg.elem = fl.Switch
		}
		if owned[tg] {
			return nil, fmt.Errorf("faults: flap %d targets an element already driven by another event source", i)
		}
		owned[tg] = true
	}
	for i, fl := range s.Flaps {
		down, up := SwitchDown, SwitchUp
		elem := fl.Switch
		if fl.Link >= 0 && fl.Switch >= 0 {
			return nil, fmt.Errorf("faults: flap %d names both a link and a switch", i)
		}
		if fl.Link >= 0 {
			down, up, elem = LinkDown, LinkUp, fl.Link
		}
		if err := checkElem(g, down, elem); err != nil {
			return nil, fmt.Errorf("faults: flap %d: %w", i, err)
		}
		if fl.MTBF <= 0 || fl.MTTR <= 0 {
			return nil, fmt.Errorf("faults: flap %d: MTBF and MTTR must be positive", i)
		}
		rng := loadgen.NewRNG(flapSeed(s.Seed, i))
		t := netsim.Time(0)
		for {
			t += expDraw(rng, fl.MTBF)
			if t > s.Horizon {
				break
			}
			out = append(out, Event{At: t, Kind: down, Elem: elem})
			t += expDraw(rng, fl.MTTR)
			if t > s.Horizon {
				break
			}
			out = append(out, Event{At: t, Kind: up, Elem: elem})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out, nil
}

// expDraw samples an exponential interval with the given mean, floored
// at one picosecond so flap streams always advance.
func expDraw(rng *loadgen.RNG, mean netsim.Time) netsim.Time {
	d := netsim.Time(rng.Exp() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// checkElem validates an event target against the topology.
func checkElem(g *topology.Graph, k Kind, elem int) error {
	switch k {
	case LinkDown, LinkUp:
		if elem < 0 || elem >= len(g.Edges) {
			return fmt.Errorf("no edge %d in topology %q", elem, g.Name)
		}
	case SwitchDown, SwitchUp:
		if elem < 0 || elem >= len(g.Vertices) {
			return fmt.Errorf("no vertex %d in topology %q", elem, g.Name)
		}
		if g.Vertices[elem].Kind != topology.Switch {
			return fmt.Errorf("vertex %d in topology %q is not a switch", elem, g.Name)
		}
	default:
		return fmt.Errorf("unknown fault kind %d", k)
	}
	return nil
}

// Digest renders a schedule one event per line — the byte-stable form
// the determinism tests compare.
func Digest(sched []Event) string {
	var b []byte
	for _, ev := range sched {
		b = append(b, ev.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

// Observer is notified inside the engine thread immediately after a
// fault event has taken effect on the fabric.
type Observer interface {
	OnFault(net *netsim.Network, ev Event)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(net *netsim.Network, ev Event)

// OnFault implements Observer.
func (f ObserverFunc) OnFault(net *netsim.Network, ev Event) { f(net, ev) }

// Bind arms a schedule on a network: each event flips the fabric state
// at its simulated time and then notifies the observers in order. Call
// before the simulation runs.
func Bind(net *netsim.Network, sched []Event, obs ...Observer) {
	for _, ev := range sched {
		ev := ev
		net.Sim.At(ev.At, func() {
			apply(net, ev)
			for _, o := range obs {
				o.OnFault(net, ev)
			}
		})
	}
}

// apply flips one element's state.
func apply(net *netsim.Network, ev Event) {
	switch ev.Kind {
	case LinkDown:
		net.SetLinkDown(ev.Elem, true)
	case LinkUp:
		net.SetLinkDown(ev.Elem, false)
	case SwitchDown:
		net.SetSwitchDown(ev.Elem, true)
	case SwitchUp:
		net.SetSwitchDown(ev.Elem, false)
	}
}

// CoreEdges returns the logical edges joining two switches (host
// attachment links excluded) in edge-ID order — the candidate set for
// random link faults that leave every destination attached.
func CoreEdges(g *topology.Graph) []int {
	var out []int
	for _, e := range g.Edges {
		if g.Vertices[e.A].Kind == topology.Switch && g.Vertices[e.B].Kind == topology.Switch {
			out = append(out, e.ID)
		}
	}
	return out
}

// PickCoreEdges deterministically samples k distinct switch-switch
// edges using the seeded RNG (k is clamped to the candidate count).
func PickCoreEdges(g *topology.Graph, k int, seed int64) []int {
	cand := CoreEdges(g)
	rng := loadgen.NewRNG(seed)
	perm := rng.Perm(len(cand))
	if k > len(cand) {
		k = len(cand)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cand[perm[i]]
	}
	sort.Ints(out)
	return out
}
