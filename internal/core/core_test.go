package core

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestModeString(t *testing.T) {
	if FullTestbed.String() != "Full Testbed" || SDT.String() != "SDT" || Simulator.String() != "Simulator" {
		t.Error("mode names")
	}
}

func TestRunTraceAllModes(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Alltoall(8, 32*1024, 2)
	var acts []netsim.Time
	for _, mode := range []Mode{FullTestbed, SDT, Simulator} {
		res, err := tb.RunTrace(g, tr, nil, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.ACT <= 0 {
			t.Fatalf("%s: ACT = %v", mode, res.ACT)
		}
		if res.Drops != 0 {
			t.Errorf("%s: %d drops on lossless fabric", mode, res.Drops)
		}
		acts = append(acts, res.ACT)
		switch mode {
		case FullTestbed:
			if res.Eval != time.Duration(int64(res.ACT)/1000) {
				t.Errorf("full-testbed eval %v != ACT %v", res.Eval, res.ACT)
			}
		case SDT:
			if res.Deploy <= 0 {
				t.Error("SDT run has no deploy time")
			}
			if res.Eval <= time.Duration(int64(res.ACT)/1000) {
				t.Error("SDT eval must exceed bare ACT")
			}
		case Simulator:
			if res.Eval != res.Wall {
				t.Errorf("simulator eval %v != wall %v", res.Eval, res.Wall)
			}
		}
	}
	// Full testbed and simulator model identical fabrics -> same ACT;
	// SDT adds a small positive overhead.
	if acts[0] != acts[2] {
		t.Errorf("full %v != simulator %v ACT", acts[0], acts[2])
	}
	if acts[1] <= acts[0] {
		t.Errorf("SDT ACT %v <= full %v; projection overhead missing", acts[1], acts[0])
	}
	over := float64(acts[1]-acts[0]) / float64(acts[0])
	if over > 0.03 {
		t.Errorf("SDT ACT overhead %.4f too large", over)
	}
}

func TestRunTraceSDTReusesDeployment(t *testing.T) {
	g := topology.Line(4, 1)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Pingpong(1024, 5)
	hosts := g.Hosts()[:2]
	if _, err := tb.RunTrace(g, tr, hosts, SDT); err != nil {
		t.Fatal(err)
	}
	// Second run must reuse the deployment, not fail on "already deployed".
	if _, err := tb.RunTrace(g, tr, hosts, SDT); err != nil {
		t.Fatalf("second SDT run: %v", err)
	}
	if len(tb.Ctl.Deployments()) != 1 {
		t.Errorf("deployments = %d", len(tb.Ctl.Deployments()))
	}
}

func TestRunTraceRejectsTooManyRanks(t *testing.T) {
	g := topology.Line(2, 1)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Alltoall(8, 1024, 1)
	if _, err := tb.RunTrace(g, tr, nil, FullTestbed); err == nil {
		t.Error("8 ranks on 2 hosts accepted")
	}
}

func TestPickSpread(t *testing.T) {
	all := []int{10, 11, 12, 13, 14, 15, 16, 17}
	got := PickSpread(all, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != 10 || got[3] != 16 {
		t.Errorf("spread = %v", got)
	}
	// Determinism.
	again := PickSpread(all, 4)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("PickSpread not deterministic")
		}
	}
}

func TestNetworkModeWiring(t *testing.T) {
	g := topology.Torus2D(4, 4, 1)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	full, dep, err := tb.Network(g, nil, FullTestbed)
	if err != nil {
		t.Fatal(err)
	}
	if dep != nil {
		t.Error("full testbed returned a deployment")
	}
	if full == nil {
		t.Fatal("nil network")
	}
	sdtNet, dep, err := tb.Network(g, nil, SDT)
	if err != nil {
		t.Fatal(err)
	}
	if dep == nil {
		t.Fatal("SDT mode without deployment")
	}
	if sdtNet == nil {
		t.Fatal("nil network")
	}
	if err := dep.Plan.Check(); err != nil {
		t.Error(err)
	}
}
