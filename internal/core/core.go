// Package core orchestrates complete SDT experiments: it couples the
// controller-managed projection pipeline with the packet-level engine
// so the same workload can be evaluated the three ways the paper
// compares (§VI): on a full testbed, on SDT, and on a (slow) software
// simulator.
//
//   - FullTestbed: the logical topology simulated with one crossbar per
//     logical switch — the reference the paper measures SDT against.
//   - SDT: the logical topology projected onto physical switches; the
//     sub-switches share their host's crossbar and pay the projected
//     pipeline overhead; evaluation time additionally includes the
//     controller's deployment time.
//   - Simulator: identical network model, but the *evaluation time* is
//     the real wall-clock the event-driven engine burns — the quantity
//     Fig. 13 shows exploding with scale.
package core

import (
	"context"
	"time"

	"repro/internal/controller"
	"repro/internal/netsim"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Mode selects the evaluation platform.
type Mode int

const (
	// FullTestbed is the physically cabled reference.
	FullTestbed Mode = iota
	// SDT is the projected testbed.
	SDT
	// Simulator is the software-simulation baseline.
	Simulator
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case FullTestbed:
		return "Full Testbed"
	case SDT:
		return "SDT"
	default:
		return "Simulator"
	}
}

// Testbed is an SDT deployment ready to run experiments.
type Testbed struct {
	Switches []projection.PhysicalSwitch
	Ctl      *controller.Controller
	Cfg      netsim.Config
}

// NewTestbed plans cabling for the given topologies over the switches
// and returns a testbed (the paper's default is three H3C S6861s).
func NewTestbed(switches []projection.PhysicalSwitch, topos []*topology.Graph) (*Testbed, error) {
	ctl, err := controller.NewFromTopologies(switches, topos)
	if err != nil {
		return nil, err
	}
	return &Testbed{Switches: switches, Ctl: ctl, Cfg: netsim.DefaultConfig()}, nil
}

// PaperTestbed builds the paper's cluster: 3 H3C S6861 switches.
func PaperTestbed(topos []*topology.Graph) (*Testbed, error) {
	return NewTestbed([]projection.PhysicalSwitch{
		projection.H3CS6861("s6861-a"),
		projection.H3CS6861("s6861-b"),
		projection.H3CS6861("s6861-c"),
	}, topos)
}

// RunResult reports one workload execution.
type RunResult struct {
	Mode Mode
	// ACT is the application completion time in simulated (i.e.
	// physical) time.
	ACT netsim.Time
	// Wall is the wall-clock time the engine burned.
	Wall time.Duration
	// Deploy is the modelled topology deployment time (SDT only).
	Deploy time.Duration
	// Eval is the full evaluation time on this platform: ACT for the
	// full testbed, deploy+ACT for SDT, Wall for the simulator.
	Eval time.Duration
	// Fabric health counters.
	Drops, Pauses, EcnMarks int64
	Events                  int64

	// Fault-run results (zero / nil unless the scenario carried a
	// faults.Spec).
	//
	// FaultDrops counts packets lost to dead links and switches.
	FaultDrops int64
	// Incomplete counts open-loop flows that never finished (packet
	// loss is non-fatal for Flows scenarios under faults; ACT then
	// reports the last completed flow).
	Incomplete int
	// Recovery carries the per-fault repair and reconvergence metrics.
	Recovery *telemetry.Recovery
	// Reconfig carries the per-transition protocol telemetry for runs
	// whose scenario scheduled live topology transitions (nil
	// otherwise). FaultDrops and Incomplete above then count the drain
	// windows' losses.
	Reconfig *telemetry.ReconfigReport

	// Shards is the effective intra-run shard count the simulation
	// executed with: 1 for a serial run (including every automatic
	// fallback), K for a conservative parallel run. Counters above are
	// already merged across shards.
	Shards int
}

// Network builds the netsim fabric for a topology in the given mode,
// returning the network plus the SDT deployment when applicable. The
// caller drives traffic and runs the simulation.
func (tb *Testbed) Network(g *topology.Graph, strat routing.Strategy, mode Mode) (*netsim.Network, *controller.Deployment, error) {
	return tb.network(g, strat, mode, tb.Cfg)
}

// network is Network with an explicit fabric configuration — the
// WithSimConfig override path, which must not mutate tb.Cfg.
func (tb *Testbed) network(g *topology.Graph, strat routing.Strategy, mode Mode, cfg netsim.Config) (*netsim.Network, *controller.Deployment, error) {
	fwd, dep, crossbarOf, sdtExtra, err := tb.forwarder(g, strat, mode)
	if err != nil {
		return nil, nil, err
	}
	net, err := netsim.NewNetwork(g, fwd, cfg, crossbarOf, sdtExtra)
	if err != nil {
		return nil, nil, err
	}
	return net, dep, nil
}

// forwarder computes the compiled forwarding state for a run in the
// given mode: the primed route forwarder, plus — for SDT — the live
// deployment and its crossbar grouping. Both the serial and the
// sharded execution paths build fabrics over this one route
// computation, so route semantics cannot drift between them.
func (tb *Testbed) forwarder(g *topology.Graph, strat routing.Strategy, mode Mode) (netsim.RouteForwarder, *controller.Deployment, func(int) int, bool, error) {
	if strat == nil {
		strat = routing.ForTopology(g)
	}
	var routes *routing.Routes
	var crossbarOf func(int) int
	var dep *controller.Deployment
	sdtExtra := false
	if mode == SDT {
		// The deployment carries the compiled routes; computing them
		// from strat here would be discarded work on the sweep hot path.
		var err error
		if dep, err = tb.ensureDeployment(g, strat); err != nil {
			return netsim.RouteForwarder{}, nil, nil, false, err
		}
		crossbarOf = dep.Plan.CrossbarOf
		sdtExtra = true
		routes = dep.Routes
	} else {
		var err error
		if routes, err = strat.Compute(g); err != nil {
			return netsim.RouteForwarder{}, nil, nil, false, err
		}
	}
	// The route set may be shared across concurrent simulations (sweep
	// siblings, shard engines); make sure its lazy lookup index and
	// compiled FIB exist before any fabric starts forwarding. (No-op
	// for SDT: Deploy already primed.)
	routes.Prime()
	return netsim.NewRouteForwarder(routes), dep, crossbarOf, sdtExtra, nil
}

// ensureDeployment returns the live SDT deployment for g, deploying it
// first if needed. Deploying mutates the controller, so this must not
// run concurrently — RunBatch primes deployments serially before its
// fan-out.
func (tb *Testbed) ensureDeployment(g *topology.Graph, strat routing.Strategy) (*controller.Deployment, error) {
	if dep := tb.Ctl.Deployment(g.Name); dep != nil {
		return dep, nil
	}
	return tb.Ctl.Deploy(g, controller.Options{Strategy: strat})
}

// RunTrace executes a workload trace on topology g in the given mode.
// The trace's ranks are placed on the first len hosts (or the given
// subset), mirroring the paper's "randomly select the nodes but keep
// the same among all the evaluations".
//
// Deprecated: RunTrace is the positional, pre-context API. Use Run
// with a Scenario (and options) instead; RunTrace remains as a thin
// wrapper and produces identical results.
func (tb *Testbed) RunTrace(g *topology.Graph, tr *workload.Trace, hosts []int, mode Mode) (*RunResult, error) {
	return Run(context.Background(), tb, Scenario{Topo: g, Trace: tr, Hosts: hosts, Mode: mode})
}

// PickSpread deterministically selects n hosts spread across the list
// ("randomly select the nodes but keep the same among all the
// evaluations", §VI-D) — the placement Run uses when Scenario.Hosts is
// nil, exported so callers that must know the placement up front (e.g.
// faults-flap locating the incast victim's uplink) share one
// implementation. Asking for at least as many hosts as exist returns
// the whole list.
func PickSpread(all []int, n int) []int {
	if n >= len(all) {
		return all
	}
	out := make([]int, 0, n)
	step := float64(len(all)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, all[int(float64(i)*step)])
	}
	return out
}
