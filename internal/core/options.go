package core

// Functional options for Run and Sweep. A Scenario carries the
// experiment description (what to run, where, in which mode); options
// carry the per-invocation knobs — host placement overrides, routing
// strategy, sim-config overrides, observers, telemetry, deadlines, and
// sweep parallelism — so every caller (figure sweeps, CLIs, examples,
// downstream users) shares one composable execution surface.

import (
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Fidelity selects how faithfully a run simulates the fabric.
type Fidelity int

const (
	// Packet is full packet-level discrete-event simulation — every
	// packet traverses every queue. The default, and the reference the
	// flow-level mode is differentially tested against.
	Packet Fidelity = iota
	// Flow is the flow-level fluid fast path (internal/flowsim): flows
	// transmit at the max-min fair share of the compiled FIB paths they
	// cross, with rates recomputed at arrivals and completions. Run
	// cost scales with flows rather than bytes × hops, reaching fabric
	// sizes packet simulation cannot (~10k–100k hosts). Requires an
	// open-loop Flows scenario; Trace, Faults, Reconfig, and SDT mode
	// are rejected loudly, Shards and observers do not apply (the run
	// is serial and has no packet-level network to observe).
	Flow
)

// String names the fidelity level.
func (f Fidelity) String() string {
	if f == Flow {
		return "Flow"
	}
	return "Packet"
}

// Scenario is one complete workload description: which topology, which
// trace, which evaluation platform, and optionally which hosts,
// routing strategy, and fabric configuration. The zero values of the
// optional fields mean "the testbed's defaults": a deterministic host
// spread, the topology's Table III strategy, and the testbed's
// SimConfig.
type Scenario struct {
	Topo  *topology.Graph
	Trace *workload.Trace
	// Flows is the open-loop alternative to Trace: an absolute-time
	// flow schedule (e.g. a loadgen.FlowSet's flows) driven through the
	// netsim flow-application layer instead of rank programs. Flow
	// Src/Dst are rank indices mapped onto Hosts exactly like trace
	// ranks; per-flow completion results are written back into this
	// slice. Exactly one of Trace and Flows must be set.
	Flows []netsim.Flow
	Mode  Mode
	// Hosts places the trace's ranks (nil = deterministic spread over
	// the topology's hosts, the paper's "randomly select the nodes but
	// keep the same among all the evaluations").
	Hosts []int
	// Strategy computes the routes (nil = routing.ForTopology).
	Strategy routing.Strategy
	// SimConfig overrides the testbed's fabric configuration for this
	// run only (nil = use Testbed.Cfg).
	SimConfig *netsim.Config
	// Faults schedules link/switch failures (and recoveries) during
	// the run: the spec expands into a deterministic timed event list,
	// dead elements drop traversing packets, and — unless the spec
	// disables repair — a controller reroute patches the live FIB
	// around each outage after the modelled detection latency. The run
	// result then carries FaultDrops, Incomplete, and Recovery. Nil
	// (the default) changes nothing: a fault-free run is byte-identical
	// to one built before the fault subsystem existed.
	//
	// Packet loss is tolerated only for open-loop Flows scenarios
	// (incomplete flows are reported, not fatal); a Trace scenario that
	// loses a packet still fails with "did not complete", since
	// closed-loop replay cannot progress past a lost message.
	Faults *faults.Spec
	// Reconfig schedules live topology transitions during the run: each
	// one executes the staged drain→transition→reconverge protocol
	// (internal/reconfig) against a run-private projection allocation
	// and route clone — affected links drain with PFC unwind, the
	// target is projected/checked/compiled at the control plane with
	// abort-to-rollback on any failure, and the run result's Reconfig
	// report carries packets lost, reconvergence time, rule churn, and
	// the costmodel downtime/price columns. Nil (the default) changes
	// nothing: a transition-free run is byte-identical to one built
	// before the subsystem existed, and an empty spec schedules no
	// stages. Mutually exclusive with Faults (both swap the live route
	// set mid-run). Packet loss inside transition windows is tolerated
	// only for open-loop Flows scenarios, exactly as under Faults.
	Reconfig *reconfig.Spec
	// Shards splits this run across k parallel engines under the
	// conservative executor (internal/shard): the topology is
	// partitioned switch-wise and the shards advance in lock-step safe
	// windows one link propagation delay wide. 0 or 1 runs serially.
	// For a fixed shard count the output is byte-identical across
	// reruns and worker counts, and Shards=1 is byte-identical to the
	// serial engine; different shard counts are distinct deterministic
	// schedules (K is part of the determinism key). Runs that need
	// whole-fabric mutation or observation fall back to serial
	// automatically: fault injection, SDT projection (shared
	// crossbars), Tick observers (including WithTelemetry), and
	// zero-propagation-delay fabrics. WithShards overrides this field.
	Shards int
	// Fidelity selects packet-level simulation (the zero value) or the
	// flow-level fluid fast path — see the Fidelity constants for the
	// contract. WithFidelity overrides this field.
	Fidelity Fidelity
}

// Hooks observes one run's lifecycle. Any field may be nil. Tick fires
// every Period of simulated time while the workload is still running
// (Period <= 0 defaults to 1 ms); the final tick after the last rank
// finishes is delivered and then the ticker disarms so the event queue
// can drain.
type Hooks struct {
	// Start runs after the network is built, before traffic starts.
	Start func(net *netsim.Network, sc Scenario)
	// Tick runs periodically inside the simulation.
	Tick func(now netsim.Time, net *netsim.Network)
	// Period is the simulated-time interval between Tick calls.
	Period netsim.Time
	// Finish runs after a completed (not cancelled) simulation.
	Finish func(res *RunResult, net *netsim.Network)
}

// Option configures one Run or Sweep invocation.
type Option func(*runConfig)

// runConfig is the resolved option set.
type runConfig struct {
	hosts       []int
	strategy    routing.Strategy
	simCfg      *netsim.Config
	observers   []Hooks
	deadline    time.Time
	hasDeadline bool
	workers     int
	shards      int
	fidelity    Fidelity
	hasFidelity bool
}

// newRunConfig applies opts over the defaults (serial sweep, no
// overrides, no observers).
func newRunConfig(opts []Option) *runConfig {
	cfg := &runConfig{workers: 1}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// WithHosts overrides the scenario's rank placement.
func WithHosts(hosts []int) Option {
	return func(c *runConfig) { c.hosts = hosts }
}

// WithStrategy overrides the scenario's routing strategy.
func WithStrategy(s routing.Strategy) Option {
	return func(c *runConfig) { c.strategy = s }
}

// WithSimConfig overrides the fabric configuration for the run(s)
// without mutating the testbed's default.
func WithSimConfig(cfg netsim.Config) Option {
	return func(c *runConfig) { c.simCfg = &cfg }
}

// WithObserver attaches lifecycle hooks to every run of the
// invocation. Observers compose: each WithObserver adds another set.
func WithObserver(h Hooks) Option {
	return func(c *runConfig) { c.observers = append(c.observers, h) }
}

// WithTelemetry attaches a telemetry collector as a run observer: the
// collector samples the network's link counters every collector period
// of simulated time while the workload runs — replacing the manual
// Arm/Collect wiring. A collector is safe to share across the runs of
// a Sweep (it keeps per-network counter baselines and is
// mutex-guarded); its series are then a sweep-wide aggregate.
func WithTelemetry(col *telemetry.Collector) Option {
	return WithObserver(Hooks{
		Period: col.Period,
		Tick:   func(_ netsim.Time, net *netsim.Network) { col.Collect(net) },
		Finish: func(_ *RunResult, net *netsim.Network) { col.Detach(net) },
	})
}

// WithDeadline bounds the invocation in wall-clock time: past t the
// run is cancelled exactly as if the caller's context had expired
// (Run returns context.DeadlineExceeded).
func WithDeadline(t time.Time) Option {
	return func(c *runConfig) { c.deadline, c.hasDeadline = t, true }
}

// WithWorkers sets Sweep's fan-out: one simulation per worker.
// 0 means all cores, 1 (the default) runs serially. Run ignores it.
func WithWorkers(n int) Option {
	return func(c *runConfig) { c.workers = n }
}

// WithFidelity overrides the scenario's simulation fidelity for the
// run(s) — e.g. re-running a registered packet-level scenario at flow
// level for a scale sweep.
func WithFidelity(f Fidelity) Option {
	return func(c *runConfig) { c.fidelity, c.hasFidelity = f, true }
}

// WithShards runs each simulation of the invocation across k parallel
// shard engines under the conservative executor (see Scenario.Shards
// for the determinism contract and the serial-fallback conditions). 0
// defers to the scenario's Shards field; 1 forces serial. The
// effective shard count is capped at the topology's switch count.
// Intra-run sharding composes with WithWorkers: a sweep fans out
// simulations and each simulation may itself be sharded.
func WithShards(k int) Option {
	return func(c *runConfig) { c.shards = k }
}
