package core

import (
	"context"

	"repro/internal/par"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ParallelFor runs jobs 0..n-1 across `workers` goroutines, preserving
// nothing about order except that all started jobs complete before it
// returns. workers <= 0 means GOMAXPROCS; workers == 1 (or n < 2) runs
// serially on the calling goroutine. After a job fails, no further
// jobs are claimed; the lowest-index error observed is returned.
//
// Jobs must be independent: the experiment sweeps satisfy this by
// giving every simulation its own Network/engine and priming shared
// read-only structures (topologies, route sets, SDT deployments)
// before the fan-out.
//
// The implementation lives in the leaf package internal/par so the
// routing strategies can reuse the same pool for their per-destination
// route builds without an import cycle.
func ParallelFor(workers, n int, job func(i int) error) error {
	return par.For(workers, n, job)
}

// TraceJob is one independent workload execution for RunBatch.
type TraceJob struct {
	Topo  *topology.Graph
	Trace *workload.Trace
	// Hosts places the trace's ranks (nil = deterministic spread).
	Hosts []int
	Mode  Mode
}

// EnsureDeployed primes the SDT deployment for g, deploying with the
// topology's default routing strategy if absent — the one serial step
// SDT-mode runs need before they can execute concurrently (deploying
// mutates the controller; a live deployment is read-only).
func (tb *Testbed) EnsureDeployed(g *topology.Graph) error {
	_, err := tb.ensureDeployment(g, nil)
	return err
}

// RunBatch executes independent trace jobs one simulation per worker.
// Results are returned in job order.
//
// Deprecated: RunBatch is the pre-context batch API. Use Sweep, which
// adds context cancellation threaded into the engine loop; RunBatch
// remains as a thin wrapper and produces identical results.
func (tb *Testbed) RunBatch(jobs []TraceJob, workers int) ([]*RunResult, error) {
	sweep := make([]Job, len(jobs))
	for i, j := range jobs {
		sweep[i] = Job{TB: tb, Scenario: Scenario{Topo: j.Topo, Trace: j.Trace, Hosts: j.Hosts, Mode: j.Mode}}
	}
	return Sweep(context.Background(), sweep, WithWorkers(workers))
}
