package core

import (
	"repro/internal/par"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ParallelFor runs jobs 0..n-1 across `workers` goroutines, preserving
// nothing about order except that all started jobs complete before it
// returns. workers <= 0 means GOMAXPROCS; workers == 1 (or n < 2) runs
// serially on the calling goroutine. After a job fails, no further
// jobs are claimed; the lowest-index error observed is returned.
//
// Jobs must be independent: the experiment sweeps satisfy this by
// giving every simulation its own Network/engine and priming shared
// read-only structures (topologies, route sets, SDT deployments)
// before the fan-out.
//
// The implementation lives in the leaf package internal/par so the
// routing strategies can reuse the same pool for their per-destination
// route builds without an import cycle.
func ParallelFor(workers, n int, job func(i int) error) error {
	return par.For(workers, n, job)
}

// TraceJob is one independent workload execution for RunBatch.
type TraceJob struct {
	Topo  *topology.Graph
	Trace *workload.Trace
	// Hosts places the trace's ranks (nil = deterministic spread).
	Hosts []int
	Mode  Mode
}

// EnsureDeployed primes the SDT deployment for g, deploying with the
// topology's default routing strategy if absent — the one serial step
// SDT-mode runs need before they can execute concurrently (deploying
// mutates the controller; a live deployment is read-only).
func (tb *Testbed) EnsureDeployed(g *topology.Graph) error {
	_, err := tb.ensureDeployment(g, nil)
	return err
}

// RunBatch executes independent trace jobs one simulation per worker —
// the batch runner exported through the sdt facade for custom sweeps
// (the built-in figure/table sweeps use ParallelFor directly, with
// experiment-specific result shaping). Results are returned in job
// order.
//
// The controller is not concurrency-safe, so SDT deployments (and the
// lazy topology adjacency caches) are primed serially up front; the
// simulations themselves share only read-only state. Note that under
// workers > 1 the Wall/Eval fields of Simulator-mode results measure
// contended wall clock — use workers == 1 when reproducing Fig. 13's
// absolute evaluation times.
func (tb *Testbed) RunBatch(jobs []TraceJob, workers int) ([]*RunResult, error) {
	seen := map[*topology.Graph]bool{}
	for _, j := range jobs {
		if !seen[j.Topo] {
			seen[j.Topo] = true
			if err := j.Topo.Validate(); err != nil {
				return nil, err
			}
			j.Topo.Hosts() // build the lazy adjacency/kind caches
		}
		if j.Mode == SDT {
			if err := tb.EnsureDeployed(j.Topo); err != nil {
				return nil, err
			}
		}
	}
	out := make([]*RunResult, len(jobs))
	err := ParallelFor(workers, len(jobs), func(i int) error {
		res, err := tb.RunTrace(jobs[i].Topo, jobs[i].Trace, jobs[i].Hosts, jobs[i].Mode)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
