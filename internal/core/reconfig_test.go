package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/projection"
	"repro/internal/reconfig"
	"repro/internal/topology"
)

// reconfigFixture builds a testbed cabled for both a fat-tree and a
// torus, a seeded uniform flow schedule on the fat-tree, and a spec
// transitioning to the torus across the middle of the injection window.
func reconfigFixture(t *testing.T, seed int64) (*Testbed, *topology.Graph, *loadgen.FlowSet, *reconfig.Spec) {
	t.Helper()
	g := topology.FatTree(4)
	target := topology.Torus2D(4, 4, 1)
	tb, err := PaperTestbed([]*topology.Graph{g, target})
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.DefaultConfig()
	fs, err := loadgen.Spec{
		Ranks: 16, Pattern: loadgen.Uniform(), Sizes: loadgen.FixedSize(64 << 10),
		Load: 0.5, Flows: 200, Seed: seed, LinkBps: cfg.LinkBps,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	window := fs.Flows[len(fs.Flows)-1].Start
	spec := &reconfig.Spec{
		Transitions: []reconfig.Transition{{
			At: window / 2, Target: target,
			Drain: window / 8, Install: window / 8,
		}},
		PatchLatency: window / 32,
	}
	return tb, g, fs, spec
}

// reconfigDigest renders every determinism-relevant field of a
// reconfiguration run result.
func reconfigDigest(res *RunResult) string {
	s := fmt.Sprintf("act=%d drops=%d faultdrops=%d incomplete=%d pauses=%d events=%d\n",
		res.ACT, res.Drops, res.FaultDrops, res.Incomplete, res.Pauses, res.Events)
	if res.Reconfig != nil {
		for i := range res.Reconfig.Transitions {
			e := &res.Reconfig.Transitions[i]
			s += fmt.Sprintf("%s rej=%t com=%t drain=%d links=%d patch=%d pchurn=%d decide=%d restore=%d rchurn=%d deliv=%d lost=%d entries=%d rt=%d hw=%.0f\n",
				e.Desc, e.Rejected, e.Committed, e.DrainAt, e.DrainedLinks, e.PatchAt, e.PatchChurn,
				e.DecisionAt, e.RestoreAt, e.RestoreChurn, e.FirstDeliveryAfter, e.PacketsLost(),
				e.Entries, int64(e.ReconfigTime), e.HardwareCost)
		}
	}
	return s
}

// TestReconfigRunDeterministic: equal seeds reproduce every byte of a
// reconfiguration run — ACT, drain-window losses, per-transition
// protocol timestamps, churn, cost columns, and per-flow completions.
func TestReconfigRunDeterministic(t *testing.T) {
	var digests []string
	var flowEnds [][]netsim.Time
	for rep := 0; rep < 2; rep++ {
		tb, g, fs, spec := reconfigFixture(t, 7)
		res, err := Run(context.Background(), tb, Scenario{Topo: g, Flows: fs.Flows, Reconfig: spec})
		if err != nil {
			t.Fatal(err)
		}
		if res.FaultDrops == 0 {
			t.Fatal("drain dropped nothing; the transition missed the traffic")
		}
		if res.Reconfig == nil || len(res.Reconfig.Transitions) != 1 {
			t.Fatalf("reconfig report = %+v", res.Reconfig)
		}
		e := &res.Reconfig.Transitions[0]
		if !e.Committed || e.Rejected {
			t.Fatalf("transition did not commit: %+v", e)
		}
		if e.PacketsLost() <= 0 || e.TotalChurn() == 0 {
			t.Fatalf("degradation not measured: lost=%d churn=%d", e.PacketsLost(), e.TotalChurn())
		}
		if e.Reconvergence() <= 0 {
			t.Fatalf("no reconvergence measured: %d", e.Reconvergence())
		}
		if e.Entries <= 0 || e.ReconfigTime <= 0 || e.HardwareCost <= 0 {
			t.Fatalf("cost columns missing: %+v", e)
		}
		digests = append(digests, reconfigDigest(res))
		ends := make([]netsim.Time, len(fs.Flows))
		for i := range fs.Flows {
			ends[i] = fs.Flows[i].End
		}
		flowEnds = append(flowEnds, ends)
	}
	if digests[0] != digests[1] {
		t.Fatalf("reconfig runs diverged:\n%s\nvs\n%s", digests[0], digests[1])
	}
	for i := range flowEnds[0] {
		if flowEnds[0][i] != flowEnds[1][i] {
			t.Fatalf("flow %d completion diverged: %d vs %d", i, flowEnds[0][i], flowEnds[1][i])
		}
	}
}

// TestReconfigSweepWorkerCountInvariant: the same reconfiguration jobs
// produce byte-identical results at any Sweep worker count.
func TestReconfigSweepWorkerCountInvariant(t *testing.T) {
	run := func(workers int) string {
		var out string
		var jobs []Job
		var sets []*loadgen.FlowSet
		for s := int64(1); s <= 3; s++ {
			tb, g, fs, spec := reconfigFixture(t, s)
			sets = append(sets, fs)
			jobs = append(jobs, Job{TB: tb, Scenario: Scenario{Topo: g, Flows: fs.Flows, Reconfig: spec}})
		}
		results, err := Sweep(context.Background(), jobs, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			out += reconfigDigest(res)
			for j := range sets[i].Flows {
				out += fmt.Sprintf("%d,", sets[i].Flows[j].End)
			}
			out += "\n"
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 3, 0} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

// TestReconfigShardSerialFallback: a scenario carrying a reconfig spec
// falls back to the serial engine no matter the requested shard count,
// and the result is byte-identical to an explicitly serial run — the
// protocol swaps whole-fabric routes, which the conservative executor's
// per-shard fabrics cannot express.
func TestReconfigShardSerialFallback(t *testing.T) {
	run := func(shards int) (*RunResult, string) {
		tb, g, fs, spec := reconfigFixture(t, 3)
		res, err := Run(context.Background(), tb,
			Scenario{Topo: g, Flows: fs.Flows, Reconfig: spec, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return res, reconfigDigest(res)
	}
	serialRes, serial := run(1)
	shardedRes, sharded := run(4)
	if serialRes.Shards != 1 || shardedRes.Shards != 1 {
		t.Fatalf("effective shards = %d / %d, want serial fallback", serialRes.Shards, shardedRes.Shards)
	}
	if sharded != serial {
		t.Fatalf("Shards=4 diverged from serial:\n%s\nvs\n%s", sharded, serial)
	}
}

// TestNoReconfigIdenticalToEmptySpec: a nil Reconfig field and an empty
// spec produce the same simulation byte-for-byte — the "no transitions
// => no behaviour change" contract.
func TestNoReconfigIdenticalToEmptySpec(t *testing.T) {
	run := func(spec *reconfig.Spec) (*RunResult, []netsim.Time) {
		tb, g, fs, _ := reconfigFixture(t, 5)
		res, err := Run(context.Background(), tb, Scenario{Topo: g, Flows: fs.Flows, Reconfig: spec})
		if err != nil {
			t.Fatal(err)
		}
		ends := make([]netsim.Time, len(fs.Flows))
		for i := range fs.Flows {
			ends[i] = fs.Flows[i].End
		}
		return res, ends
	}
	plain, plainEnds := run(nil)
	empty, emptyEnds := run(&reconfig.Spec{})
	if plain.ACT != empty.ACT || plain.Drops != empty.Drops || plain.Events != empty.Events {
		t.Fatalf("empty reconfig spec changed the run: %+v vs %+v", plain, empty)
	}
	for i := range plainEnds {
		if plainEnds[i] != emptyEnds[i] {
			t.Fatalf("flow %d completion changed under an empty spec", i)
		}
	}
	if plain.Reconfig != nil {
		t.Fatal("nil spec grew a reconfig report")
	}
	if empty.Reconfig == nil || len(empty.Reconfig.Transitions) != 0 {
		t.Fatalf("empty spec report = %+v", empty.Reconfig)
	}
	if plain.FaultDrops != 0 || empty.FaultDrops != 0 {
		t.Fatal("transition-free runs counted drain drops")
	}
}

// TestReconfigRollbackUnderTraffic: an injected Plan.Check-stage
// failure rolls the transition back mid-run — the run completes on the
// old topology, every drained link is back up, and the report carries
// the rollback reason.
func TestReconfigRollbackUnderTraffic(t *testing.T) {
	tb, g, fs, spec := reconfigFixture(t, 7)
	injected := errors.New("injected plan-check failure")
	spec.Transitions[0].Validate = func(*projection.Plan) error { return injected }
	var downAfter int
	res, err := Run(context.Background(), tb,
		Scenario{Topo: g, Flows: fs.Flows, Reconfig: spec},
		WithObserver(Hooks{Finish: func(_ *RunResult, net *netsim.Network) {
			for eid := range g.Edges {
				if net.LinkIsDown(eid) {
					downAfter++
				}
			}
		}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfig == nil || len(res.Reconfig.Transitions) != 1 {
		t.Fatalf("reconfig report = %+v", res.Reconfig)
	}
	e := &res.Reconfig.Transitions[0]
	if e.Committed || e.Rejected || !strings.Contains(e.Reason, "injected") {
		t.Fatalf("rollback not recorded: %+v", e)
	}
	if e.DrainedLinks == 0 || res.FaultDrops == 0 {
		t.Fatal("rollback fixture drained nothing")
	}
	if downAfter != 0 {
		t.Fatalf("%d links still down after rollback", downAfter)
	}
	// Open-loop flows that lost a packet in the drain window never
	// finish (no retransmit); the run itself still completes, reporting
	// them — losing every flow would mean the fabric never recovered.
	if res.ACT <= 0 || res.Incomplete >= len(fs.Flows) {
		t.Fatalf("run did not recover: act=%d incomplete=%d/%d", res.ACT, res.Incomplete, len(fs.Flows))
	}
	if res.Reconfig.Incomplete != res.Incomplete {
		t.Fatalf("report incomplete %d != run incomplete %d", res.Reconfig.Incomplete, res.Incomplete)
	}
}

// TestFaultsReconfigMutuallyExclusive: both subsystems swap the live
// route set mid-run, so a scenario carrying both is rejected up front.
func TestFaultsReconfigMutuallyExclusive(t *testing.T) {
	tb, g, fs, spec := reconfigFixture(t, 1)
	_, err := Run(context.Background(), tb, Scenario{
		Topo: g, Flows: fs.Flows, Reconfig: spec, Faults: &faults.Spec{},
	})
	if err == nil || !strings.Contains(err.Error(), "cannot carry both") {
		t.Fatalf("err = %v", err)
	}
}
