package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/topology"
	"repro/internal/workload"
)

func TestParallelForRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [40]int32
		err := ParallelFor(workers, len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ParallelFor(4, 20, func(i int) error {
		switch i {
		case 3:
			return errA
		case 17:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

// TestRunBatchMatchesSerialRuns checks that the batch runner produces
// the same deterministic results as direct serial RunTrace calls, at
// several worker counts and across all three modes.
func TestRunBatchMatchesSerialRuns(t *testing.T) {
	g := topology.FatTree(4)
	tr := workload.Alltoall(6, 32*1024, 2)
	jobs := []TraceJob{
		{Topo: g, Trace: tr, Mode: FullTestbed},
		{Topo: g, Trace: tr, Mode: SDT},
		{Topo: g, Trace: tr, Mode: Simulator},
		{Topo: g, Trace: tr, Mode: SDT},
	}
	mk := func() *Testbed {
		tb, err := PaperTestbed([]*topology.Graph{g})
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	var want []*RunResult
	tbRef := mk()
	for _, j := range jobs {
		r, err := tbRef.RunTrace(j.Topo, j.Trace, j.Hosts, j.Mode)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	for _, workers := range []int{1, 4} {
		got, err := mk().RunBatch(jobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range got {
			if got[i].ACT != want[i].ACT || got[i].Mode != want[i].Mode ||
				got[i].Drops != want[i].Drops || got[i].Deploy != want[i].Deploy ||
				got[i].Events != want[i].Events {
				t.Errorf("workers=%d job %d: got %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
