package core

// Run and Sweep: the context-aware execution surface. Run executes one
// Scenario on a Testbed; Sweep executes a batch of (Testbed, Scenario)
// jobs one simulation per worker. Both thread cancellation into the
// engine's event loop — a cancelled context stops a simulation within
// one engine.StopStride of events, not merely between jobs.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/controller"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/reconfig"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Run executes one scenario on the testbed. The context cancels
// cooperatively: the engine's run loop polls a stop flag every
// engine.StopStride events, so cancellation lands mid-simulation and
// Run returns ctx.Err(). Options override the corresponding scenario
// fields.
//
// Cancellation contract: a cancelled Run returns (nil, ctx.Err()) —
// never a partial RunResult. A simulation stopped at an arbitrary
// event-stride boundary has internally inconsistent counters (packets
// mid-flight, trackers mid-window), so no RunResult is synthesized
// from it; per-flow progress a caller owns (Scenario.Flows completion
// fields) is still as the engine left it. Pinned by
// TestCancelContract.
func Run(ctx context.Context, tb *Testbed, sc Scenario, opts ...Option) (*RunResult, error) {
	return runScenario(ctx, tb, sc, newRunConfig(opts))
}

// Job is one Sweep entry: a scenario bound to the testbed that runs
// it. Jobs in one sweep may target different testbeds (e.g. Table IV
// sizes a testbed per topology).
type Job struct {
	TB *Testbed
	Scenario
}

// Sweep executes independent jobs one simulation per worker
// (WithWorkers) and returns results in job order. It subsumes
// RunBatch: SDT deployments and the lazy topology caches are primed
// serially up front (deploying mutates the controller; a live
// deployment is read-only), after which the simulations share only
// read-only state. Cancelling the context stops in-flight simulations
// mid-run and prevents new jobs from starting; Sweep then returns
// ctx.Err(). As with RunBatch, Simulator-mode Wall/Eval columns
// measure contended wall clock when workers > 1.
//
// Cancellation contract: when Sweep returns an error after jobs have
// started — cancellation included — it returns the PARTIAL results
// slice alongside the error: out[i] is non-nil exactly for the jobs
// that completed before the failure, nil for jobs that were cancelled
// mid-run or never started. Callers that only want all-or-nothing keep
// ignoring the slice on error; callers like a draining service salvage
// the completed entries. A Sweep that fails validation before starting
// any job returns (nil, err). Pinned by TestCancelContract.
func Sweep(ctx context.Context, jobs []Job, opts ...Option) ([]*RunResult, error) {
	cfg := newRunConfig(opts)
	seen := map[*topology.Graph]bool{}
	for _, j := range jobs {
		if j.TB == nil {
			return nil, errors.New("core: sweep job without a testbed")
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !seen[j.Topo] {
			seen[j.Topo] = true
			if j.Topo == nil {
				return nil, errors.New("core: sweep job without a topology")
			}
			if err := j.Topo.Validate(); err != nil {
				return nil, err
			}
			j.Topo.Hosts() // build the lazy adjacency/kind caches
		}
		if j.Mode == SDT {
			strat := j.Strategy
			if cfg.strategy != nil {
				strat = cfg.strategy
			}
			if _, err := j.TB.ensureDeployment(j.Topo, strat); err != nil {
				return nil, err
			}
		}
	}
	out := make([]*RunResult, len(jobs))
	err := ForEach(ctx, cfg.workers, len(jobs), func(i int) error {
		res, err := runScenario(ctx, jobs[i].TB, jobs[i].Scenario, cfg)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	// Partial results survive an error: ForEach has joined every started
	// worker by now, so the slice is quiescent and out[i] != nil marks
	// exactly the completed jobs.
	return out, err
}

// ForEach is ParallelFor with cooperative cancellation: once ctx ends
// no further job starts, and the context's error is returned. Jobs
// already running are responsible for observing ctx themselves (Run
// does, via the engine stop flag).
func ForEach(ctx context.Context, workers, n int, job func(i int) error) error {
	if ctx == nil || ctx.Done() == nil {
		return ParallelFor(workers, n, job)
	}
	return ParallelFor(workers, n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return job(i)
	})
}

// WatchCancel arms cooperative cancellation of a simulation on ctx:
// the engine's run loop stops within engine.StopStride events of the
// context ending. The returned release func detaches the watcher and
// must be called once the run returns (typically via defer). Callers
// driving netsim directly (rather than through Run) use this to get
// the same mid-simulation cancellation.
func WatchCancel(ctx context.Context, sim *netsim.Sim) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	var flag atomic.Bool
	sim.SetStop(&flag, 0)
	stop := watchFlag(ctx, &flag)
	return func() {
		stop()
		sim.SetStop(nil, 0)
	}
}

// watchFlag raises flag when ctx ends; the returned func retires the
// watcher goroutine.
func watchFlag(ctx context.Context, flag *atomic.Bool) func() {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			flag.Store(true)
		case <-done:
		}
	}()
	return func() { close(done) }
}

// effectiveShards resolves the shard count one run executes with: the
// WithShards override, else the scenario's Shards field, clamped to
// the topology's switch count, and forced to 1 (serial) whenever the
// scenario needs whole-fabric mutation or mid-run observation that the
// conservative executor cannot shard:
//
//   - fault injection (SetLinkDown/SetSwitchDown touch links across
//     shards, and the rerouter patches shared forwarding state mid-run),
//   - live reconfiguration (transitions drain links across shards and
//     swap the shared route set mid-run, exactly like faults),
//   - SDT projection (sub-switches share physical crossbars),
//   - Tick observers, WithTelemetry included (they read cross-shard
//     state at simulated times the other shards haven't reached),
//   - zero propagation delay (no lookahead, no safe window).
func effectiveShards(sc Scenario, cfg *runConfig, simCfg netsim.Config, g *topology.Graph) int {
	k := cfg.shards
	if k == 0 {
		k = sc.Shards
	}
	if k < 1 {
		k = 1
	}
	if sw := len(g.Switches()); k > sw {
		k = sw
	}
	if k == 1 {
		return 1
	}
	if sc.Faults != nil || sc.Reconfig != nil || sc.Mode == SDT || simCfg.PropDelay <= 0 {
		return 1
	}
	for _, h := range cfg.observers {
		if h.Tick != nil {
			return 1
		}
	}
	return k
}

// scenarioWorkload names a scenario's workload and derives its rank
// count: the trace's declared Ranks, or one past the highest rank a
// flow schedule references.
func scenarioWorkload(sc Scenario) (name string, ranks int) {
	if sc.Trace != nil {
		return sc.Trace.Name, sc.Trace.Ranks
	}
	for i := range sc.Flows {
		f := &sc.Flows[i]
		if f.Src >= ranks {
			ranks = f.Src + 1
		}
		if f.Dst >= ranks {
			ranks = f.Dst + 1
		}
	}
	return fmt.Sprintf("flows[%d]", len(sc.Flows)), ranks
}

// runScenario is the one execution path under Run, Sweep, and the
// deprecated RunTrace/RunBatch wrappers.
func runScenario(ctx context.Context, tb *Testbed, sc Scenario, cfg *runConfig) (*RunResult, error) {
	// Options override scenario fields.
	if cfg.hosts != nil {
		sc.Hosts = cfg.hosts
	}
	if cfg.strategy != nil {
		sc.Strategy = cfg.strategy
	}
	if cfg.simCfg != nil {
		sc.SimConfig = cfg.simCfg
	}
	if cfg.hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cfg.deadline)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, tr := sc.Topo, sc.Trace
	if g == nil || (tr == nil && sc.Flows == nil) {
		return nil, errors.New("core: scenario needs a Topo and a Trace or Flows")
	}
	if tr != nil && sc.Flows != nil {
		return nil, errors.New("core: scenario cannot carry both a Trace and Flows")
	}
	if sc.Faults != nil && sc.Reconfig != nil {
		// Both subsystems clone and swap the live route set mid-run;
		// their patches would silently overwrite each other.
		return nil, errors.New("core: scenario cannot carry both Faults and Reconfig")
	}
	name, ranks := scenarioWorkload(sc)
	hosts := sc.Hosts
	if hosts == nil {
		all := g.Hosts()
		if len(all) < ranks {
			return nil, fmt.Errorf("core: topology %q has %d hosts, workload needs %d", g.Name, len(all), ranks)
		}
		hosts = PickSpread(all, ranks)
	}
	if len(hosts) < ranks {
		return nil, fmt.Errorf("core: %d hosts for %d ranks", len(hosts), ranks)
	}
	simCfg := tb.Cfg
	if sc.SimConfig != nil {
		simCfg = *sc.SimConfig
	}
	if cfg.hasFidelity {
		sc.Fidelity = cfg.fidelity
	}
	if sc.Fidelity == Flow {
		return runFlowScenario(ctx, sc, cfg, hosts[:ranks], simCfg)
	}
	shards := effectiveShards(sc, cfg, simCfg, g)
	var (
		net *netsim.Network
		dep *controller.Deployment
		ex  *shard.Executor
		err error
	)
	if shards > 1 {
		// Conservative parallel path: one fabric, K engines. The
		// forwarder comes from the same route computation the serial
		// path uses, so both paths forward identically.
		fwd, _, _, _, ferr := tb.forwarder(g, sc.Strategy, sc.Mode)
		if ferr != nil {
			return nil, ferr
		}
		if ex, err = shard.New(g, fwd, simCfg, shards, shard.Options{}); err != nil {
			return nil, err
		}
		net = ex.Primary()
	} else if net, dep, err = tb.network(g, sc.Strategy, sc.Mode, simCfg); err != nil {
		return nil, err
	}
	var app interface {
		Start()
		ACT() netsim.Time
	}
	if tr != nil {
		app = netsim.NewApp(net, hosts, tr.Programs, nil)
	} else {
		app = netsim.NewFlowApp(net, hosts[:ranks], sc.Flows, nil)
	}
	tracker, err := armFaults(net, sc, g)
	if err != nil {
		return nil, err
	}
	rcTracker, err := armReconfig(net, sc, g, tb)
	if err != nil {
		return nil, err
	}
	for _, h := range cfg.observers {
		if h.Start != nil {
			h.Start(net, sc)
		}
	}
	armTicks(net, app, cfg.observers)
	var release func()
	if ex != nil {
		var flag atomic.Bool
		ex.SetStop(&flag)
		if ctx != nil && ctx.Done() != nil {
			release = watchFlag(ctx, &flag)
		} else {
			release = func() {}
		}
	} else {
		release = WatchCancel(ctx, net.Sim)
	}
	wallStart := time.Now()
	app.Start()
	if ex != nil {
		ex.Run()
	} else {
		net.Sim.Run(0)
	}
	release()
	wall := time.Since(wallStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Merge fabric counters (a serial run is the K=1 merge).
	var drops, pauses, ecn, faultDrops, events int64
	nets := []*netsim.Network{net}
	if ex != nil {
		nets = ex.Nets
	}
	for _, sn := range nets {
		drops += sn.TotalDrops
		pauses += sn.PausesSent
		ecn += sn.EcnMarks
		faultDrops += sn.FaultDrops
		events += sn.Sim.Events()
	}
	act := app.ACT()
	incomplete := 0
	if act < 0 {
		fa, isFlows := app.(*netsim.FlowApp)
		if (sc.Faults == nil && sc.Reconfig == nil) || !isFlows {
			return nil, fmt.Errorf("core: %s on %s (%s) did not complete: drops=%d faultdrops=%d",
				name, g.Name, sc.Mode, drops, faultDrops)
		}
		// Open-loop flows under faults or reconfiguration: packet loss
		// is a result, not an error. ACT degrades to the last completed
		// flow.
		act = fa.LastCompletion()
		incomplete = fa.Outstanding()
	}
	res := &RunResult{
		Mode: sc.Mode, ACT: act, Wall: wall,
		Drops: drops, Pauses: pauses, EcnMarks: ecn,
		Events: events, FaultDrops: faultDrops, Incomplete: incomplete,
		Shards: shards,
	}
	if tracker != nil {
		res.Recovery = tracker.Report(incomplete)
	}
	if rcTracker != nil {
		res.Reconfig = rcTracker.ReconfigReport(incomplete)
	}
	switch sc.Mode {
	case FullTestbed:
		res.Eval = time.Duration(int64(act) / 1000) // ps -> ns
	case SDT:
		if dep != nil {
			res.Deploy = dep.DeployTime
		}
		res.Eval = time.Duration(int64(act)/1000) + res.Deploy
	case Simulator:
		res.Eval = wall
	}
	for _, h := range cfg.observers {
		if h.Finish != nil {
			h.Finish(res, net)
		}
	}
	return res, nil
}

// armFaults expands and binds the scenario's fault schedule, if any:
// the fabric degrades at each event, a Rerouter patches a run-private
// clone of the route set after the spec's repair latency, and a
// RecoveryTracker stamps fault/repair/reconvergence times. Returns nil
// when the scenario carries no faults.
func armFaults(net *netsim.Network, sc Scenario, g *topology.Graph) (*telemetry.RecoveryTracker, error) {
	if sc.Faults == nil {
		return nil, nil
	}
	sched, err := sc.Faults.Schedule(g)
	if err != nil {
		return nil, err
	}
	tracker := telemetry.NewRecoveryTracker(net)
	obs := []faults.Observer{faults.ObserverFunc(func(n *netsim.Network, ev faults.Event) {
		tracker.Fault(n.Sim.Now(), ev.String())
	})}
	if lat := sc.Faults.Repair(); lat >= 0 {
		if rf, ok := net.Fwd.(netsim.RouteForwarder); ok {
			// Repairs mutate the route set mid-run; give this run its
			// own copy so SDT deployments and sweep siblings sharing
			// the original stay untouched.
			live := rf.Routes.Clone()
			live.Prime()
			net.Fwd = netsim.NewRouteForwarder(live)
			rr := controller.NewRerouter(g, live, lat)
			rr.OnRepair = func(rep controller.Repair) { tracker.Repaired(rep.At, rep.RulesChanged) }
			obs = append(obs, rr)
		}
	}
	faults.Bind(net, sched, obs...)
	return tracker, nil
}

// armReconfig builds and binds the scenario's reconfiguration
// schedule, if any: a Reconfigurer over a run-private projection
// allocation (drawn from the testbed controller's cabling) and a
// run-private clone of the route set, with a RecoveryTracker wired to
// every stage hook so the run result carries the per-transition
// protocol telemetry. Returns nil when the scenario schedules no
// transitions.
func armReconfig(net *netsim.Network, sc Scenario, g *topology.Graph, tb *Testbed) (*telemetry.RecoveryTracker, error) {
	if sc.Reconfig == nil {
		return nil, nil
	}
	rf, ok := net.Fwd.(netsim.RouteForwarder)
	if !ok {
		return nil, errors.New("core: reconfiguration needs a route-forwarded fabric")
	}
	// Patch and restore mutate the route set mid-run; give this run its
	// own copy so SDT deployments and sweep siblings sharing the
	// original stay untouched (same contract as armFaults).
	live := rf.Routes.Clone()
	live.Prime()
	net.Fwd = netsim.NewRouteForwarder(live)
	rc, err := reconfig.New(g, tb.Ctl.Cabling, live, sc.Reconfig, partition.Options{})
	if err != nil {
		return nil, err
	}
	tracker := telemetry.NewRecoveryTracker(net)
	// rec maps the reconfigurer's stage index to the tracker's record
	// index (rejected stages record out of band, so they differ).
	rec := make([]int, len(rc.Stages))
	rc.OnDrain = func(now netsim.Time, i int, drained []int) {
		rec[i] = tracker.TransitionDrain(now, rc.Stages[i].Desc, len(drained))
	}
	rc.OnReject = func(now netsim.Time, i int, reason string) {
		tracker.TransitionReject(now, rc.Stages[i].Desc, reason)
	}
	rc.OnPatch = func(now netsim.Time, i int, churn int) {
		tracker.TransitionPatch(rec[i], now, churn)
	}
	rc.OnCommit = func(now netsim.Time, i int, entries int, reconfigTime time.Duration, hwCost float64) {
		tracker.TransitionCommit(rec[i], now, entries, reconfigTime, hwCost)
	}
	rc.OnRollback = func(now netsim.Time, i int, reason string) {
		tracker.TransitionRollback(rec[i], now, reason)
	}
	rc.OnRestore = func(now netsim.Time, i int, churn int) {
		tracker.TransitionRestore(rec[i], now, churn)
	}
	rc.Bind(net)
	return tracker, nil
}

// armTicks schedules each observer's periodic Tick inside the
// simulation. A tick chain re-arms itself only while the workload is
// incomplete AND the event queue holds something beyond the other
// chains' next ticks: once the last rank finishes — or the fabric goes
// quiescent with the workload stuck (drops with nothing left to
// retransmit) — the chains disarm, the queue drains, and Run(0)
// returns, so observers never mask the did-not-complete error with an
// infinite self-rescheduling timer.
func armTicks(net *netsim.Network, app interface{ ACT() netsim.Time }, observers []Hooks) {
	type ticker struct {
		fn     func(now netsim.Time, net *netsim.Network)
		period netsim.Time
	}
	var tickers []ticker
	for _, h := range observers {
		if h.Tick == nil {
			continue
		}
		period := h.Period
		if period <= 0 {
			period = netsim.Millisecond
		}
		tickers = append(tickers, ticker{fn: h.Tick, period: period})
	}
	// active counts still-armed chains. While a chain executes, every
	// other live chain has exactly one pending tick event, so
	// Pending() < active means the ticks are the only future — the
	// simulation is done or wedged either way.
	active := len(tickers)
	for _, tk := range tickers {
		tk := tk
		var arm func(at netsim.Time)
		arm = func(at netsim.Time) {
			net.Sim.At(at, func() {
				tk.fn(at, net)
				if app.ACT() >= 0 || net.Sim.Pending() < active {
					active--
					return
				}
				arm(at + tk.period)
			})
		}
		arm(tk.period)
	}
}
