package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// An open-loop flow scenario must run through Run like a trace does:
// every flow completes, results land in the caller's slice, and the
// same seed reproduces identical FCTs.
func TestRunFlowsScenario(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() []netsim.Flow {
		return loadgen.Spec{
			Ranks: 8, Pattern: loadgen.Permutation(), Sizes: loadgen.FixedSize(32 * 1024),
			Load: 0.4, Flows: 60, Seed: 5,
		}.MustGenerate().Flows
	}
	flows := gen()
	res, err := Run(context.Background(), tb, Scenario{Topo: g, Flows: flows, Mode: FullTestbed})
	if err != nil {
		t.Fatal(err)
	}
	if res.ACT <= 0 {
		t.Fatalf("ACT = %v", res.ACT)
	}
	var last netsim.Time
	for i := range flows {
		f := &flows[i]
		if !f.Completed {
			t.Fatalf("flow %d incomplete", i)
		}
		if f.FCT() <= 0 {
			t.Fatalf("flow %d FCT %v", i, f.FCT())
		}
		if f.End < f.Start {
			t.Fatalf("flow %d ends before it starts", i)
		}
		if f.End > last {
			last = f.End
		}
	}
	if last != res.ACT {
		t.Fatalf("ACT %v != last completion %v", res.ACT, last)
	}

	flows2 := gen()
	if _, err := Run(context.Background(), tb, Scenario{Topo: g, Flows: flows2, Mode: FullTestbed}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flows, flows2) {
		t.Fatal("same seed produced different flow results")
	}
}

// The same schedule must complete identically whether run live through
// the flow app or compiled into a trace — same injection model, same
// fabric — with the trace replay reporting the same ACT.
func TestFlowsVsCompiledTrace(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	fs := loadgen.Spec{
		Ranks: 8, Pattern: loadgen.Uniform(), Sizes: loadgen.FixedSize(16 * 1024),
		Load: 0.3, Flows: 40, Seed: 11,
	}.MustGenerate()
	live, err := Run(context.Background(), tb, Scenario{Topo: g, Flows: fs.Flows, Mode: FullTestbed})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Run(context.Background(), tb, Scenario{Topo: g, Trace: fs.Trace(), Mode: FullTestbed})
	if err != nil {
		t.Fatal(err)
	}
	// Trace replay finishes when the last rank's last op retires; the
	// flow app when the last flow delivers. Both see the same packets,
	// so ACTs agree exactly.
	if live.ACT != replay.ACT {
		t.Fatalf("live ACT %v != compiled-trace ACT %v", live.ACT, replay.ACT)
	}
}

// Scenario validation: a trace and flows together is an error, as is
// neither.
func TestScenarioExclusivity(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), tb, Scenario{Topo: g}); err == nil {
		t.Fatal("scenario without workload ran")
	}
	tr := workload.Pingpong(1024, 1)
	fl := []netsim.Flow{{Src: 0, Dst: 1, Bytes: 64, Tag: 0}}
	if _, err := Run(context.Background(), tb, Scenario{Topo: g, Trace: tr, Flows: fl}); err == nil {
		t.Fatal("scenario with both Trace and Flows ran")
	}
}

// Flow scenarios must respect cancellation like trace scenarios do.
func TestFlowsCancellation(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	flows := loadgen.Spec{
		Ranks: 16, Sizes: loadgen.FixedSize(1 << 20), Load: 0.9, Flows: 400, Seed: 3,
	}.MustGenerate().Flows
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tb, Scenario{Topo: g, Flows: flows, Mode: FullTestbed}); err != context.Canceled {
		t.Fatalf("cancelled run returned %v", err)
	}
}
