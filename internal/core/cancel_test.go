package core

// The cancellation contract (documented on Run and Sweep): a cancelled
// Run never returns a partial RunResult, while an errored Sweep — be
// the cause a context or a job failure — returns the partial results
// slice with non-nil entries exactly at the completed jobs. Before
// this contract was pinned, callers had to infer partial-result
// behaviour from ctx.Err(); the service layer's drain path relies on
// the slice to salvage finished work.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestCancelContractRun: a cancelled Run returns (nil, ctx.Err()),
// never a half-populated RunResult.
func TestCancelContractRun(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Run(ctx, tb, Scenario{Topo: g, Trace: workload.Alltoall(8, 256*1024, 8), Mode: Simulator},
		WithObserver(Hooks{
			Period: 100 * netsim.Microsecond,
			Tick: func(netsim.Time, *netsim.Network) {
				cancel()
				// Let the watcher goroutine raise the engine stop flag
				// before the next stride check.
				time.Sleep(20 * time.Millisecond)
			},
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled Run returned a partial result: %+v", res)
	}
}

// TestCancelContractSweep: a sweep cancelled mid-batch returns the
// partial slice — completed jobs keep their results, the cancelled and
// never-started jobs stay nil.
func TestCancelContractSweep(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Alltoall(4, 16*1024, 2)
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{TB: tb, Scenario: Scenario{Topo: g, Trace: tr, Mode: Simulator}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 2 // cancel while the third job is starting
	started := 0
	out, err := Sweep(ctx, jobs, WithWorkers(1), WithObserver(Hooks{
		Start: func(*netsim.Network, Scenario) {
			if started++; started == cancelAt+1 {
				cancel()
				time.Sleep(20 * time.Millisecond)
			}
		},
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("partial slice has %d entries, want %d", len(out), len(jobs))
	}
	for i, r := range out {
		if i < cancelAt && r == nil {
			t.Errorf("job %d completed before the cancel but its result is nil", i)
		}
		if i >= cancelAt && r != nil {
			t.Errorf("job %d ran after the cancel yet has a result", i)
		}
	}
}

// TestCancelContractSweepError: a non-context job failure surfaces the
// same partial-results shape.
func TestCancelContractSweepError(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Alltoall(4, 16*1024, 2)
	jobs := []Job{
		{TB: tb, Scenario: Scenario{Topo: g, Trace: tr, Mode: Simulator}},
		{TB: tb, Scenario: Scenario{Topo: g, Trace: tr, Mode: Simulator}},
		{TB: tb, Scenario: Scenario{Topo: g, Mode: Simulator}}, // no workload: fails
		{TB: tb, Scenario: Scenario{Topo: g, Trace: tr, Mode: Simulator}},
	}
	out, err := Sweep(context.Background(), jobs, WithWorkers(1))
	if err == nil {
		t.Fatal("sweep with an invalid job succeeded")
	}
	if len(out) != len(jobs) {
		t.Fatalf("partial slice has %d entries, want %d", len(out), len(jobs))
	}
	if out[0] == nil || out[1] == nil {
		t.Error("jobs before the failure lost their results")
	}
	if out[2] != nil || out[3] != nil {
		t.Error("failed or unstarted jobs carry results")
	}
	// Preflight failures (no job ran) keep returning a nil slice.
	if out2, err2 := Sweep(context.Background(), []Job{{}}); err2 == nil || out2 != nil {
		t.Errorf("preflight failure: out=%v err=%v, want nil slice + error", out2, err2)
	}
}
