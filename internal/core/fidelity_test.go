package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/reconfig"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

func fidelityFixture(t *testing.T) (*topology.Graph, *Testbed, func() []netsim.Flow) {
	t.Helper()
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() []netsim.Flow {
		return loadgen.Spec{
			Ranks: 8, Pattern: loadgen.Permutation(), Sizes: loadgen.FixedSize(32 * 1024),
			Load: 0.4, Flows: 60, Seed: 5,
		}.MustGenerate().Flows
	}
	return g, tb, gen
}

// TestFlowFidelityRun: a Flow-fidelity scenario completes, writes every
// flow's result fields, reports serial execution, and reruns
// byte-identically.
func TestFlowFidelityRun(t *testing.T) {
	g, tb, gen := fidelityFixture(t)
	flows := gen()
	res, err := Run(context.Background(), tb, Scenario{
		Topo: g, Flows: flows, Mode: FullTestbed, Fidelity: Flow,
		Shards: 4, // must be ignored, not rejected
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ACT <= 0 {
		t.Fatalf("ACT = %v", res.ACT)
	}
	if res.Shards != 1 {
		t.Fatalf("flow fidelity reported Shards = %d, want 1", res.Shards)
	}
	if res.Events <= 0 {
		t.Fatalf("Events (rate recomputes) = %d, want > 0", res.Events)
	}
	var last netsim.Time
	for i := range flows {
		if !flows[i].Completed {
			t.Fatalf("flow %d incomplete", i)
		}
		if flows[i].FCT() <= 0 {
			t.Fatalf("flow %d FCT %v", i, flows[i].FCT())
		}
		if flows[i].End > last {
			last = flows[i].End
		}
	}
	if last != res.ACT {
		t.Fatalf("ACT %v != last completion %v", res.ACT, last)
	}

	flows2 := gen()
	if _, err := Run(context.Background(), tb, Scenario{
		Topo: g, Flows: flows2, Mode: FullTestbed, Fidelity: Flow,
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flows, flows2) {
		t.Fatal("same seed produced different flow-fidelity results")
	}
}

// TestWithFidelityOverride: the option overrides the scenario field in
// both directions.
func TestWithFidelityOverride(t *testing.T) {
	g, tb, gen := fidelityFixture(t)
	// Packet scenario forced to Flow: the Trace rejection proves the
	// flow path ran.
	tr := workload.Pingpong(1024, 1)
	_, err := Run(context.Background(), tb, Scenario{Topo: g, Trace: tr}, WithFidelity(Flow))
	if err == nil || !strings.Contains(err.Error(), "flow fidelity requires an open-loop Flows scenario") {
		t.Fatalf("WithFidelity(Flow) on a trace: err = %v", err)
	}
	// Flow scenario forced back to Packet runs the packet engine
	// (drops/pauses counters exist only there; just assert success).
	flows := gen()
	res, err := Run(context.Background(), tb, Scenario{
		Topo: g, Flows: flows, Mode: FullTestbed, Fidelity: Flow,
	}, WithFidelity(Packet))
	if err != nil {
		t.Fatal(err)
	}
	if res.ACT <= 0 {
		t.Fatal("packet-override run did not complete")
	}
}

// TestFlowFidelityValidation pins the loud failures: everything the
// fluid model cannot express is an error, not a silent degradation.
func TestFlowFidelityValidation(t *testing.T) {
	g, tb, gen := fidelityFixture(t)
	tr := workload.Pingpong(1024, 1)
	cases := []struct {
		name string
		sc   Scenario
		opts []Option
		want string
	}{
		{"trace", Scenario{Topo: g, Trace: tr, Fidelity: Flow}, nil,
			"flow fidelity requires an open-loop Flows scenario"},
		{"faults", Scenario{Topo: g, Flows: gen(), Fidelity: Flow,
			Faults: &faults.Spec{}}, nil,
			"flow fidelity cannot inject faults"},
		{"reconfig", Scenario{Topo: g, Flows: gen(), Fidelity: Flow,
			Reconfig: &reconfig.Spec{}}, nil,
			"flow fidelity cannot reconfigure"},
		{"sdt", Scenario{Topo: g, Flows: gen(), Mode: SDT, Fidelity: Flow}, nil,
			"flow fidelity does not model SDT"},
		{"observer", Scenario{Topo: g, Flows: gen(), Fidelity: Flow}, []Option{
			WithTelemetry(telemetry.NewCollector(g, netsim.Millisecond, 0))},
			"flow fidelity supports no observers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(context.Background(), tb, tc.sc, tc.opts...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestFlowFidelitySweep: flow-fidelity jobs run under Sweep at any
// worker count with results identical to serial Run.
func TestFlowFidelitySweep(t *testing.T) {
	g, tb, gen := fidelityFixture(t)
	mkJobs := func() ([]Job, [][]netsim.Flow) {
		var jobs []Job
		var flowSets [][]netsim.Flow
		for i := 0; i < 4; i++ {
			flows := gen()
			flowSets = append(flowSets, flows)
			jobs = append(jobs, Job{TB: tb, Scenario: Scenario{
				Topo: g, Flows: flows, Mode: Simulator, Fidelity: Flow,
			}})
		}
		return jobs, flowSets
	}
	serialJobs, serialFlows := mkJobs()
	serial, err := Sweep(context.Background(), serialJobs)
	if err != nil {
		t.Fatal(err)
	}
	parJobs, parFlows := mkJobs()
	par, err := Sweep(context.Background(), parJobs, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].ACT != par[i].ACT {
			t.Fatalf("job %d: serial ACT %v != parallel %v", i, serial[i].ACT, par[i].ACT)
		}
		if !reflect.DeepEqual(serialFlows[i], parFlows[i]) {
			t.Fatalf("job %d: flow results diverged across worker counts", i)
		}
	}
}

// TestFlowFidelityCancellation: the (nil, ctx.Err()) contract holds on
// the flow path too.
func TestFlowFidelityCancellation(t *testing.T) {
	g, tb, gen := fidelityFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, tb, Scenario{Topo: g, Flows: gen(), Fidelity: Flow})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled flow-fidelity Run returned a partial result")
	}
}
