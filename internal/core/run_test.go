package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestRunMatchesRunTrace pins the compatibility contract: the
// deprecated RunTrace wrapper and the Scenario-based Run produce
// identical results in every mode.
func TestRunMatchesRunTrace(t *testing.T) {
	g := topology.FatTree(4)
	tr := workload.Alltoall(6, 32*1024, 2)
	mk := func() *Testbed {
		tb, err := PaperTestbed([]*topology.Graph{g})
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	tbA, tbB := mk(), mk()
	for _, mode := range []Mode{FullTestbed, SDT, Simulator} {
		old, err := tbA.RunTrace(g, tr, nil, mode)
		if err != nil {
			t.Fatal(err)
		}
		now, err := Run(context.Background(), tbB, Scenario{Topo: g, Trace: tr, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if old.ACT != now.ACT || old.Drops != now.Drops || old.Deploy != now.Deploy ||
			old.Events != now.Events || old.EcnMarks != now.EcnMarks || old.Pauses != now.Pauses {
			t.Errorf("%s: RunTrace %+v != Run %+v", mode, old, now)
		}
	}
}

// TestRunCancelledBeforeStart: a context that is already done yields
// ctx.Err() without simulating anything.
func TestRunCancelledBeforeStart(t *testing.T) {
	g := topology.Line(4, 1)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(ctx, tb, Scenario{Topo: g, Trace: workload.Pingpong(1024, 5), Mode: Simulator})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCancelMidSimulation cancels deterministically from inside the
// simulation (an observer tick) and checks that the run returns
// ctx.Err() with the engine reporting a stopped (not drained) run —
// i.e. cancellation landed mid-simulation. The precise
// stops-within-one-stride bound is pinned deterministically in
// internal/engine's TestRunStopsWithinStride; here the flag is raised
// by the watcher goroutine, so the test sleeps briefly after cancel to
// let it land.
func TestRunCancelMidSimulation(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	// A workload big enough that it cannot finish within one stride of
	// the first tick.
	tr := workload.Alltoall(8, 256*1024, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var net *netsim.Network
	cancelled := false
	_, err = Run(ctx, tb, Scenario{Topo: g, Trace: tr, Mode: Simulator},
		WithObserver(Hooks{
			Start:  func(n *netsim.Network, _ Scenario) { net = n },
			Period: 100 * netsim.Microsecond,
			Tick: func(_ netsim.Time, n *netsim.Network) {
				if !cancelled {
					cancelled = true
					cancel()
					// Give the watcher goroutine time to raise the stop
					// flag before the engine's next stride check.
					time.Sleep(50 * time.Millisecond)
				}
			},
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !cancelled {
		t.Fatal("observer tick never fired")
	}
	if !net.Sim.Stopped() {
		t.Error("engine does not report a stopped run (cancellation did not land mid-simulation)")
	}
	if net.Sim.Pending() == 0 {
		t.Error("event queue drained; the run completed instead of being cancelled")
	}
}

// TestSweepCancelled: cancelling a sweep from inside a job's run stops
// the whole sweep with ctx.Err(); exercised at several worker counts
// (CI runs this package under -race, covering the concurrent path).
func TestSweepCancelled(t *testing.T) {
	g := topology.FatTree(4)
	tr := workload.Alltoall(8, 128*1024, 4)
	for _, workers := range []int{1, 4} {
		tb, err := PaperTestbed([]*topology.Graph{g})
		if err != nil {
			t.Fatal(err)
		}
		jobs := make([]Job, 16)
		for i := range jobs {
			jobs[i] = Job{TB: tb, Scenario: Scenario{Topo: g, Trace: tr, Mode: Simulator}}
		}
		ctx, cancel := context.WithCancel(context.Background())
		// The observer runs in every worker's simulation concurrently;
		// cancel is safe to call from all of them.
		_, err = Sweep(ctx, jobs,
			WithWorkers(workers),
			WithObserver(Hooks{
				Period: 100 * netsim.Microsecond,
				Tick:   func(netsim.Time, *netsim.Network) { cancel() },
			}))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestSweepMatchesRunBatch pins that the deprecated batch API and
// Sweep agree result for result.
func TestSweepMatchesRunBatch(t *testing.T) {
	g := topology.Torus2D(4, 4, 1)
	tr := workload.Alltoall(4, 16*1024, 2)
	mk := func() *Testbed {
		tb, err := PaperTestbed([]*topology.Graph{g})
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	batchTB, sweepTB := mk(), mk()
	traceJobs := []TraceJob{
		{Topo: g, Trace: tr, Mode: FullTestbed},
		{Topo: g, Trace: tr, Mode: SDT},
	}
	old, err := batchTB.RunBatch(traceJobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{TB: sweepTB, Scenario: Scenario{Topo: g, Trace: tr, Mode: FullTestbed}},
		{TB: sweepTB, Scenario: Scenario{Topo: g, Trace: tr, Mode: SDT}},
	}
	now, err := Sweep(context.Background(), jobs, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range old {
		if old[i].ACT != now[i].ACT || old[i].Events != now[i].Events || old[i].Deploy != now[i].Deploy {
			t.Errorf("job %d: RunBatch %+v != Sweep %+v", i, old[i], now[i])
		}
	}
}

// TestRunSimConfigOverride: WithSimConfig applies to one run without
// mutating the testbed's default.
func TestRunSimConfigOverride(t *testing.T) {
	g := topology.Line(8, 1)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Pingpong(4096, 10)
	base, err := Run(context.Background(), tb, Scenario{Topo: g, Trace: tr, Mode: Simulator})
	if err != nil {
		t.Fatal(err)
	}
	slow := tb.Cfg
	slow.CutThrough = false
	over, err := Run(context.Background(), tb, Scenario{Topo: g, Trace: tr, Mode: Simulator},
		WithSimConfig(slow))
	if err != nil {
		t.Fatal(err)
	}
	if over.ACT <= base.ACT {
		t.Errorf("store-and-forward ACT %v <= cut-through ACT %v", over.ACT, base.ACT)
	}
	if !tb.Cfg.CutThrough {
		t.Error("WithSimConfig mutated the testbed default")
	}
	again, err := Run(context.Background(), tb, Scenario{Topo: g, Trace: tr, Mode: Simulator})
	if err != nil {
		t.Fatal(err)
	}
	if again.ACT != base.ACT {
		t.Errorf("config override leaked: %v != %v", again.ACT, base.ACT)
	}
}

// TestRunTelemetryObserver: WithTelemetry samples the fabric during
// the run without the manual Arm/Collect wiring.
func TestRunTelemetryObserver(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(g, 50*netsim.Microsecond, 0)
	res, err := Run(context.Background(), tb, Scenario{
		Topo: g, Trace: workload.Alltoall(8, 64*1024, 4), Mode: Simulator,
	}, WithTelemetry(col))
	if err != nil {
		t.Fatal(err)
	}
	if res.ACT <= 0 {
		t.Fatalf("ACT = %v", res.ACT)
	}
	if col.Epochs() == 0 {
		t.Error("telemetry collector took no samples during the run")
	}
	if len(col.Series()) == 0 {
		t.Error("telemetry collector recorded no link series")
	}
}

// TestRunStuckWorkloadWithObserverStillErrors: a workload that can
// never complete (a receive nobody answers) must return the
// did-not-complete error even with observers attached — the tick
// chains disarm once the fabric is quiescent instead of rescheduling
// themselves forever.
func TestRunStuckWorkloadWithObserverStillErrors(t *testing.T) {
	g := topology.Line(4, 1)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	stuck := &workload.Trace{
		Name:  "stuck",
		Ranks: 2,
		Programs: [][]netsim.Op{
			{{Kind: netsim.OpRecv, Peer: 1, MTag: 7}}, // rank 1 never sends tag 7
			{{Kind: netsim.OpCompute, Dur: netsim.Microsecond}},
		},
	}
	ticks := 0
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), tb, Scenario{Topo: g, Trace: stuck, Mode: Simulator},
			WithObserver(Hooks{
				Period: 10 * netsim.Microsecond,
				Tick:   func(netsim.Time, *netsim.Network) { ticks++ },
			}))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "did not complete") {
			t.Fatalf("err = %v, want did-not-complete", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung on a stuck workload with an observer attached")
	}
	if ticks == 0 {
		t.Error("observer never ticked")
	}
	if ticks > 10 {
		t.Errorf("observer ticked %d times on a quiescent fabric; chains did not disarm", ticks)
	}
}

// TestSweepSharedTelemetryCollector: one collector shared across a
// sweep's runs — including concurrent ones (this package runs under
// -race in CI) — aggregates cleanly: per-network baselines keep the
// cumulative-counter deltas non-negative even though each fresh
// network restarts its counters at zero.
func TestSweepSharedTelemetryCollector(t *testing.T) {
	g := topology.FatTree(4)
	tr := workload.Alltoall(6, 32*1024, 2)
	for _, workers := range []int{1, 4} {
		tb, err := PaperTestbed([]*topology.Graph{g})
		if err != nil {
			t.Fatal(err)
		}
		col := telemetry.NewCollector(g, 50*netsim.Microsecond, 0)
		jobs := make([]Job, 4)
		for i := range jobs {
			jobs[i] = Job{TB: tb, Scenario: Scenario{Topo: g, Trace: tr, Mode: Simulator}}
		}
		if _, err := Sweep(context.Background(), jobs, WithWorkers(workers), WithTelemetry(col)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if col.Epochs() == 0 {
			t.Fatalf("workers=%d: no samples", workers)
		}
		for _, s := range col.Series() {
			for _, b := range s.Bytes {
				if b < 0 {
					t.Fatalf("workers=%d: negative delta %d on edge %d (baseline leaked across runs)",
						workers, b, s.EdgeID)
				}
			}
		}
	}
}

// TestPickSpreadOverflow is the regression test for the n > len(all)
// panic: asking for more hosts than exist returns the whole list.
func TestPickSpreadOverflow(t *testing.T) {
	all := []int{3, 5, 7}
	for _, n := range []int{3, 4, 100} {
		got := PickSpread(all, n)
		if len(got) != len(all) {
			t.Fatalf("PickSpread(%v, %d) = %v, want the whole list", all, n, got)
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("PickSpread(%v, %d) = %v", all, n, got)
			}
		}
	}
}
