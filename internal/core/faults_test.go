package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// faultFixture builds a fat-tree testbed with a seeded uniform flow
// schedule and a one-link outage covering the middle half of the
// injection window.
func faultFixture(t *testing.T, seed int64) (*Testbed, *topology.Graph, *loadgen.FlowSet, *faults.Spec) {
	t.Helper()
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.DefaultConfig()
	fs, err := loadgen.Spec{
		Ranks: 16, Pattern: loadgen.Uniform(), Sizes: loadgen.FixedSize(64 << 10),
		Load: 0.5, Flows: 200, Seed: seed, LinkBps: cfg.LinkBps,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	window := fs.Flows[len(fs.Flows)-1].Start
	spec := &faults.Spec{RepairLatency: window / 16}
	// Several links at once so some carried traffic is guaranteed to be
	// in flight when the cut lands.
	for _, link := range faults.PickCoreEdges(g, 4, seed) {
		spec.Events = append(spec.Events,
			faults.Event{At: window / 4, Kind: faults.LinkDown, Elem: link},
			faults.Event{At: 3 * window / 4, Kind: faults.LinkUp, Elem: link},
		)
	}
	return tb, g, fs, spec
}

// recoveryDigest renders every determinism-relevant field of a fault
// run result.
func recoveryDigest(res *RunResult) string {
	s := fmt.Sprintf("act=%d drops=%d faultdrops=%d incomplete=%d pauses=%d events=%d\n",
		res.ACT, res.Drops, res.FaultDrops, res.Incomplete, res.Pauses, res.Events)
	if res.Recovery != nil {
		for _, e := range res.Recovery.Events {
			s += fmt.Sprintf("%s repair=%d deliv=%d churn=%d\n",
				e.Desc, e.RepairAt, e.FirstDeliveryAfter, e.RulesChanged)
		}
	}
	return s
}

// TestFaultRunDeterministic: equal seeds reproduce every byte of a
// fault run — ACT, loss counters, per-fault repair and reconvergence
// times, churn, and per-flow completions.
func TestFaultRunDeterministic(t *testing.T) {
	var digests []string
	var flowEnds [][]netsim.Time
	for rep := 0; rep < 2; rep++ {
		tb, g, fs, spec := faultFixture(t, 7)
		res, err := Run(context.Background(), tb, Scenario{Topo: g, Flows: fs.Flows, Faults: spec})
		if err != nil {
			t.Fatal(err)
		}
		if res.FaultDrops == 0 {
			t.Fatal("fixture produced no fault drops; the outage missed the traffic")
		}
		if res.Recovery == nil || len(res.Recovery.Events) != len(spec.Events) {
			t.Fatalf("recovery = %+v", res.Recovery)
		}
		if mean, n := res.Recovery.MeanReconvergence(); n == 0 || mean <= 0 {
			t.Fatalf("no reconvergence measured: mean=%v n=%d", mean, n)
		}
		if res.Recovery.TotalChurn() == 0 {
			t.Fatal("repair churned no rules")
		}
		digests = append(digests, recoveryDigest(res))
		ends := make([]netsim.Time, len(fs.Flows))
		for i := range fs.Flows {
			ends[i] = fs.Flows[i].End
		}
		flowEnds = append(flowEnds, ends)
	}
	if digests[0] != digests[1] {
		t.Fatalf("fault runs diverged:\n%s\nvs\n%s", digests[0], digests[1])
	}
	for i := range flowEnds[0] {
		if flowEnds[0][i] != flowEnds[1][i] {
			t.Fatalf("flow %d completion diverged: %d vs %d", i, flowEnds[0][i], flowEnds[1][i])
		}
	}
}

// TestFaultSweepWorkerCountInvariant: the same fault jobs produce
// byte-identical results at any Sweep worker count.
func TestFaultSweepWorkerCountInvariant(t *testing.T) {
	run := func(workers int) string {
		var out string
		tb, g, _, _ := faultFixture(t, 1)
		var jobs []Job
		var sets []*loadgen.FlowSet
		for s := int64(1); s <= 3; s++ {
			_, _, fs, spec := faultFixture(t, s)
			sets = append(sets, fs)
			jobs = append(jobs, Job{TB: tb, Scenario: Scenario{Topo: g, Flows: fs.Flows, Faults: spec}})
		}
		results, err := Sweep(context.Background(), jobs, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			out += recoveryDigest(res)
			for j := range sets[i].Flows {
				out += fmt.Sprintf("%d,", sets[i].Flows[j].End)
			}
			out += "\n"
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 3, 0} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

// TestNoFaultsIdenticalToEmptySpec: a nil Faults field and an empty
// spec produce the same simulation byte-for-byte (same ACT, drops,
// event count, flow completions) — the "no faults => no behaviour
// change" contract, mechanically: an empty schedule binds no events
// and the cloned route set compiles to an identical FIB.
func TestNoFaultsIdenticalToEmptySpec(t *testing.T) {
	run := func(spec *faults.Spec) (*RunResult, []netsim.Time) {
		tb, g, fs, _ := faultFixture(t, 5)
		res, err := Run(context.Background(), tb, Scenario{Topo: g, Flows: fs.Flows, Faults: spec})
		if err != nil {
			t.Fatal(err)
		}
		ends := make([]netsim.Time, len(fs.Flows))
		for i := range fs.Flows {
			ends[i] = fs.Flows[i].End
		}
		return res, ends
	}
	plain, plainEnds := run(nil)
	empty, emptyEnds := run(&faults.Spec{})
	if plain.ACT != empty.ACT || plain.Drops != empty.Drops || plain.Events != empty.Events {
		t.Fatalf("empty fault spec changed the run: %+v vs %+v", plain, empty)
	}
	for i := range plainEnds {
		if plainEnds[i] != emptyEnds[i] {
			t.Fatalf("flow %d completion changed under an empty spec", i)
		}
	}
	if plain.Recovery != nil {
		t.Fatal("nil spec grew a recovery report")
	}
	if empty.Recovery == nil || len(empty.Recovery.Events) != 0 {
		t.Fatalf("empty spec recovery = %+v", empty.Recovery)
	}
	if plain.FaultDrops != 0 || empty.FaultDrops != 0 {
		t.Fatal("healthy runs counted fault drops")
	}
}

// TestFaultStormCancellation: a run under a dense flap storm cancels
// mid-simulation like any other (run with -race in CI: the watcher
// goroutine races the engine only through the atomic stop flag).
func TestFaultStormCancellation(t *testing.T) {
	g := topology.FatTree(4)
	tb, err := PaperTestbed([]*topology.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.DefaultConfig()
	fs, err := loadgen.Spec{
		Ranks: 16, Pattern: loadgen.Uniform(), Sizes: loadgen.FixedSize(256 << 10),
		Load: 0.9, Flows: 5000, Seed: 2, LinkBps: cfg.LinkBps,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// A storm: every core edge flapping fast for the whole window.
	spec := &faults.Spec{
		Horizon: fs.Flows[len(fs.Flows)-1].Start,
		Seed:    2,
	}
	for _, e := range faults.PickCoreEdges(g, 8, 2) {
		spec.Flaps = append(spec.Flaps,
			faults.LinkFlap(e, 100*netsim.Microsecond, 50*netsim.Microsecond))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelled := false
	_, err = Run(ctx, tb, Scenario{Topo: g, Flows: fs.Flows, Faults: spec},
		WithObserver(Hooks{
			Period: 50 * netsim.Microsecond,
			Tick: func(_ netsim.Time, _ *netsim.Network) {
				if !cancelled {
					cancelled = true
					cancel()
					time.Sleep(10 * time.Millisecond)
				}
			},
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !cancelled {
		t.Fatal("tick never fired")
	}
}
