package core

// The flow-level fidelity path: runScenario branches here when a
// scenario selects Fidelity: Flow, handing the open-loop schedule to
// internal/flowsim's fluid engine instead of building a packet-level
// fabric. The scenario surface stays identical — same Scenario, same
// RunResult, same FCT result fields on the Flows slice — which is what
// lets the differential harness and telemetry.MeasureFCT treat the two
// fidelities interchangeably.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/flowsim"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

// runFlowScenario executes one Flow-fidelity scenario. hosts is the
// resolved rank placement (hosts[i] = vertex of rank i). The fluid
// model cannot honour packet-level machinery, and silently degrading
// would corrupt comparisons, so everything it cannot express fails
// loudly: closed-loop traces, fault schedules, live reconfiguration,
// SDT projection, and observers. Shards are ignored (the fluid event
// loop is inherently serial); the result reports Shards: 1.
func runFlowScenario(ctx context.Context, sc Scenario, cfg *runConfig, hosts []int, simCfg netsim.Config) (*RunResult, error) {
	if sc.Trace != nil {
		return nil, errors.New("core: flow fidelity requires an open-loop Flows scenario, not a Trace (closed-loop replay has no fluid equivalent)")
	}
	if sc.Faults != nil {
		return nil, errors.New("core: flow fidelity cannot inject faults (packet loss has no fluid equivalent); run at packet fidelity")
	}
	if sc.Reconfig != nil {
		return nil, errors.New("core: flow fidelity cannot reconfigure topology mid-run; run at packet fidelity")
	}
	if sc.Mode == SDT {
		return nil, errors.New("core: flow fidelity does not model SDT projection (crossbar sharing and per-hop overhead are packet-level); use FullTestbed or Simulator mode")
	}
	if len(cfg.observers) > 0 {
		return nil, errors.New("core: flow fidelity supports no observers (there is no packet-level network to observe)")
	}
	strat := sc.Strategy
	if strat == nil {
		strat = routing.ForTopology(sc.Topo)
	}
	routes, err := flowRoutes(sc.Topo, strat, hosts, sc.Flows)
	if err != nil {
		return nil, err
	}
	wallStart := time.Now()
	res, err := flowsim.Run(ctx, sc.Topo, routes, simCfg, hosts, sc.Flows)
	if err != nil {
		return nil, err
	}
	wall := time.Since(wallStart)
	out := &RunResult{
		Mode:   sc.Mode,
		ACT:    res.ACT,
		Wall:   wall,
		Events: res.Recomputes,
		Shards: 1,
	}
	switch sc.Mode {
	case FullTestbed:
		out.Eval = time.Duration(int64(res.ACT) / 1000) // ps -> ns
	default: // Simulator
		out.Eval = wall
	}
	return out, nil
}

// flowRoutes computes the route set a flow-level run resolves paths
// over. Every Table III strategy supports per-destination subset
// computation (routing.DstComputer), and a fluid run only needs rules
// toward hosts that actually receive traffic — on a 10k-host fat-tree
// the full route set alone would dwarf the simulation, so the subset
// computation is what makes XL fabrics tractable. Strategies outside
// the interface fall back to a full compute.
func flowRoutes(g *topology.Graph, strat routing.Strategy, hosts []int, flows []netsim.Flow) (*routing.Routes, error) {
	dc, ok := strat.(routing.DstComputer)
	if !ok {
		return strat.Compute(g)
	}
	seen := make(map[int]bool, len(hosts))
	dsts := make([]int, 0, len(hosts))
	for i := range flows {
		d := flows[i].Dst
		// Out-of-range ranks fall through to flowsim's validation,
		// which names the offending flow.
		if d >= 0 && d < len(hosts) && !seen[d] {
			seen[d] = true
			dsts = append(dsts, hosts[d])
		}
	}
	routes, err := dc.ComputeFor(g, dsts)
	if err != nil {
		return nil, fmt.Errorf("core: flow-fidelity route subset: %w", err)
	}
	return routes, nil
}
