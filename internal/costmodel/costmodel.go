// Package costmodel prices the Topology Projection methods of Table II
// and models their reconfiguration times, using the figures the paper
// cites: a 320-port MEMS optical switch costs more than $100k and
// carries only 160 LC-LC fibres (§III-C); TurboNet needs a Tofino P4
// switch and a time-consuming recompile; SP needs a human moving
// cables; SDT needs only flow-table updates.
package costmodel

import (
	"time"

	"repro/internal/projection"
)

// Hardware prices (USD), extrapolated from market prices as the paper
// does for Table II.
const (
	// PriceOpenFlowSwitch is a commodity 64x10G OpenFlow switch.
	PriceOpenFlowSwitch = 6000.0
	// PriceP4Switch is a Tofino-class programmable switch (TurboNet).
	PriceP4Switch = 14000.0
	// PriceOpticalSwitch320 is the 320-port MEMS optical switch
	// (§III-C: "more than $100k").
	PriceOpticalSwitch320 = 110000.0
	// PriceOpticalPort is the marginal per-port optical cost used when
	// sizing smaller/larger optical switches.
	PriceOpticalPort = PriceOpticalSwitch320 / 320
	// PriceCable is one DAC/fibre cable.
	PriceCable = 12.0
)

// Reconfiguration time constants.
const (
	// ManualPerCable is the human time to unplug/replug and verify one
	// cable during an SP reconfiguration.
	ManualPerCable = 45 * time.Second
	// OpticalSwitchTime is the MEMS reconfiguration delay (§II-A1:
	// "about 100ms") plus control overhead.
	OpticalSwitchTime = 150 * time.Millisecond
	// P4Recompile is TurboNet's P4 program recompile + load.
	P4Recompile = 5 * time.Minute
	// ControllerBase is the SDT controller's fixed planning cost per
	// deployment (partitioning, projection, route computation).
	ControllerBase = 100 * time.Millisecond
	// FlowModTime is the install time per flow-table entry with batched
	// OpenFlow flow-mods (~12k mods/s, typical for commodity switches).
	FlowModTime = 80 * time.Microsecond
)

// HardwareCost prices the hardware a requirement implies.
func HardwareCost(req projection.Requirement) float64 {
	switch req.Method {
	case projection.MethodTurboNet:
		return float64(req.Switches) * PriceP4Switch
	case projection.MethodSPOS:
		return float64(req.Switches)*PriceOpenFlowSwitch +
			float64(req.OpticalPorts)*PriceOpticalPort +
			float64(req.OpticalPorts)*PriceCable // patch fibres
	default: // SDT, SP
		return float64(req.Switches) * PriceOpenFlowSwitch
	}
}

// ReconfigTime models the time from "configuration placed" until "the
// network is available" (Table II's metric). entries is the flow-table
// entry count the new topology needs (SDT/SP-OS install them; SP and
// TurboNet dominate on other terms).
func ReconfigTime(req projection.Requirement, entries int) time.Duration {
	flowInstall := ControllerBase + time.Duration(entries)*FlowModTime
	switch req.Method {
	case projection.MethodSP:
		return time.Duration(req.ManualCables)*ManualPerCable + flowInstall
	case projection.MethodSPOS:
		return OpticalSwitchTime + flowInstall
	case projection.MethodTurboNet:
		return P4Recompile
	default: // SDT
		return flowInstall
	}
}

// Rating is a 3-level qualitative score used in Table I.
type Rating int

// Ratings, low to high.
const (
	Low Rating = iota
	Medium
	High
)

func (r Rating) String() string {
	switch r {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	default:
		return "High"
	}
}

// ToolRow is one column of Table I (comparison of network evaluation
// tools for various topologies).
type ToolRow struct {
	Tool        string
	Price       Rating
	Manpower    Rating
	Reconfig    string // Easy / Medium / Hard
	Scalability Rating
	Efficiency  Rating
}

// Table1 reproduces the paper's Table I verbatim: the qualitative
// rubric motivating SDT.
func Table1() []ToolRow {
	return []ToolRow{
		{"Simulator", Low, Low, "Easy", Low, Low},
		{"Emulator", Medium, Low, "Medium", Medium, Medium},
		{"Testbed", High, High, "Hard", High, High},
		{"SDT", Medium, Low, "Easy", High, High},
	}
}
