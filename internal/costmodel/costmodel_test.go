package costmodel

import (
	"testing"
	"time"

	"repro/internal/projection"
)

func TestHardwareCostOrdering(t *testing.T) {
	// For the same switch count, SP-OS must cost far more than SDT
	// (optical switch), and TurboNet more than SDT (P4 silicon).
	sdt := projection.Requirement{Method: projection.MethodSDT, Switches: 3}
	sp := projection.Requirement{Method: projection.MethodSP, Switches: 3, ManualCables: 48}
	spos := projection.Requirement{Method: projection.MethodSPOS, Switches: 3, OpticalPorts: 3 * 64}
	tn := projection.Requirement{Method: projection.MethodTurboNet, Switches: 3}

	cSDT, cSP, cSPOS, cTN := HardwareCost(sdt), HardwareCost(sp), HardwareCost(spos), HardwareCost(tn)
	if cSDT != cSP {
		t.Errorf("SDT %0.f != SP %0.f: same switches, same price", cSDT, cSP)
	}
	if cSPOS <= 2*cSDT {
		t.Errorf("SP-OS cost %.0f not dominated by optics (SDT %.0f)", cSPOS, cSDT)
	}
	if cTN <= cSDT {
		t.Errorf("TurboNet %.0f should exceed SDT %.0f", cTN, cSDT)
	}
}

func TestReconfigTimeOrdering(t *testing.T) {
	// Table II ordering: SDT fastest (or comparable to SP-OS), SP-OS
	// adds optics, TurboNet recompiles for minutes, SP is manual labour.
	entries := 300
	sdt := ReconfigTime(projection.Requirement{Method: projection.MethodSDT}, entries)
	spos := ReconfigTime(projection.Requirement{Method: projection.MethodSPOS}, entries)
	tn := ReconfigTime(projection.Requirement{Method: projection.MethodTurboNet}, entries)
	sp := ReconfigTime(projection.Requirement{Method: projection.MethodSP, ManualCables: 48}, entries)

	if !(sdt < spos && spos < tn && tn < sp) {
		t.Errorf("ordering violated: SDT=%v SP-OS=%v TurboNet=%v SP=%v", sdt, spos, tn, sp)
	}
	if sdt > 2*time.Second {
		t.Errorf("SDT reconfig = %v, should be subsecond-ish", sdt)
	}
	if sp < 30*time.Minute {
		t.Errorf("SP manual reconfig = %v, should be tens of minutes", sp)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4", len(rows))
	}
	byTool := map[string]ToolRow{}
	for _, r := range rows {
		byTool[r.Tool] = r
	}
	sdt := byTool["SDT"]
	if sdt.Price != Medium || sdt.Manpower != Low || sdt.Reconfig != "Easy" ||
		sdt.Scalability != High || sdt.Efficiency != High {
		t.Errorf("SDT row diverges from the paper: %+v", sdt)
	}
	tb := byTool["Testbed"]
	if tb.Price != High || tb.Reconfig != "Hard" {
		t.Errorf("Testbed row diverges: %+v", tb)
	}
	if Low.String() != "Low" || Medium.String() != "Medium" || High.String() != "High" {
		t.Error("Rating strings")
	}
}

// TestReconfigTimeBoundaries pins the exact arithmetic at the entry
// boundaries the reconfiguration subsystem leans on: zero entries is
// pure controller overhead, each extra entry adds exactly one flow-mod,
// and TurboNet's recompile ignores entries entirely.
func TestReconfigTimeBoundaries(t *testing.T) {
	sdt := projection.Requirement{Method: projection.MethodSDT}
	if got := ReconfigTime(sdt, 0); got != ControllerBase {
		t.Errorf("SDT at 0 entries = %v, want the bare controller base %v", got, ControllerBase)
	}
	if got := ReconfigTime(sdt, 1); got != ControllerBase+FlowModTime {
		t.Errorf("SDT at 1 entry = %v, want base+%v", got, FlowModTime)
	}
	if d := ReconfigTime(sdt, 1001) - ReconfigTime(sdt, 1000); d != FlowModTime {
		t.Errorf("per-entry marginal cost = %v, want %v", d, FlowModTime)
	}
	// TurboNet's recompile dominates regardless of entries.
	tn := projection.Requirement{Method: projection.MethodTurboNet}
	if ReconfigTime(tn, 0) != ReconfigTime(tn, 1<<20) {
		t.Error("TurboNet reconfig time depends on entries")
	}
	// SP with no cables to move degenerates to the flow install.
	sp := projection.Requirement{Method: projection.MethodSP}
	if got := ReconfigTime(sp, 10); got != ReconfigTime(sdt, 10) {
		t.Errorf("cable-free SP = %v, want the SDT install %v", got, ReconfigTime(sdt, 10))
	}
}

// TestZeroRequirement pins the zero value: no hardware costs nothing,
// and its reconfiguration is the SDT controller base (Method's zero
// value is MethodSDT).
func TestZeroRequirement(t *testing.T) {
	var req projection.Requirement
	if got := HardwareCost(req); got != 0 {
		t.Errorf("zero requirement costs $%.0f, want $0", got)
	}
	if got := ReconfigTime(req, 0); got != ControllerBase {
		t.Errorf("zero requirement reconfig = %v, want %v", got, ControllerBase)
	}
}

// TestHardwareCostArithmetic pins the per-method price formulas against
// the published constants, so a Table II regeneration cannot drift
// silently.
func TestHardwareCostArithmetic(t *testing.T) {
	cases := []struct {
		name string
		req  projection.Requirement
		want float64
	}{
		{"SDT 3 switches", projection.Requirement{Method: projection.MethodSDT, Switches: 3}, 3 * PriceOpenFlowSwitch},
		{"SP ignores cables in price", projection.Requirement{Method: projection.MethodSP, Switches: 2, ManualCables: 99}, 2 * PriceOpenFlowSwitch},
		{"TurboNet P4 silicon", projection.Requirement{Method: projection.MethodTurboNet, Switches: 2}, 2 * PriceP4Switch},
		{"SP-OS optics + fibres", projection.Requirement{Method: projection.MethodSPOS, Switches: 1, OpticalPorts: 64},
			PriceOpenFlowSwitch + 64*PriceOpticalPort + 64*PriceCable},
	}
	for _, tc := range cases {
		if got := HardwareCost(tc.req); got != tc.want {
			t.Errorf("%s: $%.2f, want $%.2f", tc.name, got, tc.want)
		}
	}
	// The paper's headline figure: a full 320-port MEMS switch prices
	// above $100k on its own.
	if 320*PriceOpticalPort < 100_000 {
		t.Error("320 optical ports price under the paper's >$100k citation")
	}
}

// TestTable1Table2Consistency: the qualitative Table I rubric must
// agree with the quantitative model — SDT is priced Medium because its
// hardware cost sits strictly between the simulator's (free) and a
// dedicated testbed's per-node build-out, and its "Easy" reconfig must
// be the fastest physical method at any entry count.
func TestTable1Table2Consistency(t *testing.T) {
	byTool := map[string]ToolRow{}
	for _, r := range Table1() {
		byTool[r.Tool] = r
	}
	if byTool["SDT"].Reconfig != "Easy" || byTool["Testbed"].Reconfig != "Hard" {
		t.Fatalf("Table I reconfig ratings moved: %+v", byTool)
	}
	for _, entries := range []int{0, 300, 10_000} {
		sdt := ReconfigTime(projection.Requirement{Method: projection.MethodSDT}, entries)
		spos := ReconfigTime(projection.Requirement{Method: projection.MethodSPOS}, entries)
		tn := ReconfigTime(projection.Requirement{Method: projection.MethodTurboNet}, entries)
		sp := ReconfigTime(projection.Requirement{Method: projection.MethodSP, ManualCables: 8}, entries)
		if !(sdt < spos && sdt < tn && sdt < sp) {
			t.Errorf("entries=%d: SDT (%v) is not the fastest (SP-OS %v, TurboNet %v, SP %v) — Table I calls it Easy",
				entries, sdt, spos, tn, sp)
		}
	}
	// Price rubric: 3 OpenFlow switches (the paper's deployment) must
	// undercut 3 P4 switches and any optical build-out.
	sdtCost := HardwareCost(projection.Requirement{Method: projection.MethodSDT, Switches: 3})
	tnCost := HardwareCost(projection.Requirement{Method: projection.MethodTurboNet, Switches: 3})
	sposCost := HardwareCost(projection.Requirement{Method: projection.MethodSPOS, Switches: 3, OpticalPorts: 192})
	if !(sdtCost < tnCost && sdtCost < sposCost) {
		t.Errorf("price rubric violated: SDT $%.0f vs TurboNet $%.0f, SP-OS $%.0f", sdtCost, tnCost, sposCost)
	}
}
