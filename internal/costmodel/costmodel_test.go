package costmodel

import (
	"testing"
	"time"

	"repro/internal/projection"
)

func TestHardwareCostOrdering(t *testing.T) {
	// For the same switch count, SP-OS must cost far more than SDT
	// (optical switch), and TurboNet more than SDT (P4 silicon).
	sdt := projection.Requirement{Method: projection.MethodSDT, Switches: 3}
	sp := projection.Requirement{Method: projection.MethodSP, Switches: 3, ManualCables: 48}
	spos := projection.Requirement{Method: projection.MethodSPOS, Switches: 3, OpticalPorts: 3 * 64}
	tn := projection.Requirement{Method: projection.MethodTurboNet, Switches: 3}

	cSDT, cSP, cSPOS, cTN := HardwareCost(sdt), HardwareCost(sp), HardwareCost(spos), HardwareCost(tn)
	if cSDT != cSP {
		t.Errorf("SDT %0.f != SP %0.f: same switches, same price", cSDT, cSP)
	}
	if cSPOS <= 2*cSDT {
		t.Errorf("SP-OS cost %.0f not dominated by optics (SDT %.0f)", cSPOS, cSDT)
	}
	if cTN <= cSDT {
		t.Errorf("TurboNet %.0f should exceed SDT %.0f", cTN, cSDT)
	}
}

func TestReconfigTimeOrdering(t *testing.T) {
	// Table II ordering: SDT fastest (or comparable to SP-OS), SP-OS
	// adds optics, TurboNet recompiles for minutes, SP is manual labour.
	entries := 300
	sdt := ReconfigTime(projection.Requirement{Method: projection.MethodSDT}, entries)
	spos := ReconfigTime(projection.Requirement{Method: projection.MethodSPOS}, entries)
	tn := ReconfigTime(projection.Requirement{Method: projection.MethodTurboNet}, entries)
	sp := ReconfigTime(projection.Requirement{Method: projection.MethodSP, ManualCables: 48}, entries)

	if !(sdt < spos && spos < tn && tn < sp) {
		t.Errorf("ordering violated: SDT=%v SP-OS=%v TurboNet=%v SP=%v", sdt, spos, tn, sp)
	}
	if sdt > 2*time.Second {
		t.Errorf("SDT reconfig = %v, should be subsecond-ish", sdt)
	}
	if sp < 30*time.Minute {
		t.Errorf("SP manual reconfig = %v, should be tens of minutes", sp)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4", len(rows))
	}
	byTool := map[string]ToolRow{}
	for _, r := range rows {
		byTool[r.Tool] = r
	}
	sdt := byTool["SDT"]
	if sdt.Price != Medium || sdt.Manpower != Low || sdt.Reconfig != "Easy" ||
		sdt.Scalability != High || sdt.Efficiency != High {
		t.Errorf("SDT row diverges from the paper: %+v", sdt)
	}
	tb := byTool["Testbed"]
	if tb.Price != High || tb.Reconfig != "Hard" {
		t.Errorf("Testbed row diverges: %+v", tb)
	}
	if Low.String() != "Low" || Medium.String() != "Medium" || High.String() != "High" {
		t.Error("Rating strings")
	}
}
