package openflow

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchCovers(t *testing.T) {
	cases := []struct {
		m    Match
		p    PacketMeta
		want bool
	}{
		{MatchAll, PacketMeta{InPort: 3, SrcHost: 9, DstHost: 4, Tag: 2, Proto: 6}, true},
		{Match{InPort: 1, SrcHost: Any, DstHost: Any, Tag: Any}, PacketMeta{InPort: 1}, true},
		{Match{InPort: 1, SrcHost: Any, DstHost: Any, Tag: Any}, PacketMeta{InPort: 2}, false},
		{Match{SrcHost: 5, DstHost: Any, Tag: Any}, PacketMeta{SrcHost: 5}, true},
		{Match{SrcHost: 5, DstHost: Any, Tag: Any}, PacketMeta{SrcHost: 6}, false},
		{Match{SrcHost: Any, DstHost: 7, Tag: Any}, PacketMeta{DstHost: 7}, true},
		{Match{SrcHost: Any, DstHost: 7, Tag: Any}, PacketMeta{DstHost: 8}, false},
		{Match{SrcHost: Any, DstHost: Any, Tag: 1}, PacketMeta{Tag: 1}, true},
		{Match{SrcHost: Any, DstHost: Any, Tag: 1}, PacketMeta{Tag: 0}, false},
		{Match{SrcHost: Any, DstHost: Any, Tag: Any, Proto: 17}, PacketMeta{Proto: 17}, true},
		{Match{SrcHost: Any, DstHost: Any, Tag: Any, Proto: 17}, PacketMeta{Proto: 6}, false},
	}
	for i, c := range cases {
		if got := c.m.Covers(c.p); got != c.want {
			t.Errorf("case %d: Covers(%v, %v) = %v, want %v", i, c.m, c.p, got, c.want)
		}
	}
}

func TestTablePriorityOrder(t *testing.T) {
	var tbl Table
	lo := FlowEntry{Priority: 1, Match: MatchAll, Actions: []Action{{Type: Drop}}}
	hi := FlowEntry{Priority: 10, Match: Match{InPort: 1, SrcHost: Any, DstHost: Any, Tag: Any}, Actions: []Action{{Type: Output, Port: 2}}}
	if err := tbl.Add(lo); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(hi); err != nil {
		t.Fatal(err)
	}
	e := tbl.Lookup(PacketMeta{InPort: 1})
	if e == nil || e.Priority != 10 {
		t.Fatalf("lookup chose %v, want the priority-10 entry", e)
	}
	e = tbl.Lookup(PacketMeta{InPort: 2})
	if e == nil || e.Priority != 1 {
		t.Fatalf("lookup chose %v, want the catch-all", e)
	}
}

func TestTableStableTieBreak(t *testing.T) {
	var tbl Table
	a := FlowEntry{Priority: 5, Match: MatchAll, Actions: []Action{{Type: Output, Port: 1}}}
	b := FlowEntry{Priority: 5, Match: MatchAll, Actions: []Action{{Type: Output, Port: 2}}}
	_ = tbl.Add(a)
	_ = tbl.Add(b)
	e := tbl.Lookup(PacketMeta{})
	if e.Actions[0].Port != 1 {
		t.Errorf("tie broke to port %d, want earliest-installed (1)", e.Actions[0].Port)
	}
}

func TestTableCapacity(t *testing.T) {
	tbl := Table{Capacity: 2, owner: "sw1"}
	for i := 0; i < 2; i++ {
		if err := tbl.Add(FlowEntry{Priority: i, Match: MatchAll}); err != nil {
			t.Fatal(err)
		}
	}
	err := tbl.Add(FlowEntry{Priority: 9, Match: MatchAll})
	var full *ErrTableFull
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	if full.Capacity != 2 || full.Switch != "sw1" {
		t.Errorf("ErrTableFull fields = %+v", full)
	}
	if tbl.Free() != 0 {
		t.Errorf("Free = %d, want 0", tbl.Free())
	}
}

func TestRemoveCookie(t *testing.T) {
	var tbl Table
	for i := 0; i < 5; i++ {
		cookie := uint64(i % 2)
		_ = tbl.Add(FlowEntry{Priority: i, Match: MatchAll, Cookie: cookie})
	}
	removed := tbl.RemoveCookie(0)
	if removed != 3 {
		t.Errorf("removed = %d, want 3", removed)
	}
	if tbl.Len() != 2 {
		t.Errorf("len = %d, want 2", tbl.Len())
	}
	for _, e := range tbl.Entries() {
		if e.Cookie != 1 {
			t.Errorf("entry with cookie %d survived", e.Cookie)
		}
	}
}

func TestSwitchProcessForwardAndCount(t *testing.T) {
	sw := NewSwitch("s1", 8, 0)
	err := sw.Table.Add(FlowEntry{
		Priority: 10,
		Match:    Match{InPort: 1, SrcHost: Any, DstHost: 42, Tag: Any},
		Actions:  []Action{{Type: Output, Port: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd := sw.Process(PacketMeta{InPort: 1, DstHost: 42, Tag: 0, Bytes: 1500})
	if !fwd.Matched || fwd.Dropped || fwd.OutPort != 5 {
		t.Fatalf("fwd = %+v, want output 5", fwd)
	}
	if sw.Ports[1].RxPackets != 1 || sw.Ports[1].RxBytes != 1500 {
		t.Errorf("rx counters = %+v", sw.Ports[1])
	}
	if sw.Ports[5].TxPackets != 1 || sw.Ports[5].TxBytes != 1500 {
		t.Errorf("tx counters = %+v", sw.Ports[5])
	}
	entry := sw.Table.Entries()[0]
	if entry.Packets != 1 || entry.Bytes != 1500 {
		t.Errorf("entry counters = %d/%d", entry.Packets, entry.Bytes)
	}
}

func TestSwitchTableMissDrops(t *testing.T) {
	sw := NewSwitch("s1", 4, 0)
	fwd := sw.Process(PacketMeta{InPort: 2, DstHost: 9, Bytes: 100})
	if fwd.Matched || fwd.OutPort != 0 {
		t.Fatalf("miss produced forwarding %+v", fwd)
	}
	if sw.Ports[2].Drops != 1 {
		t.Errorf("drop counter = %d, want 1", sw.Ports[2].Drops)
	}
}

func TestSetTagAction(t *testing.T) {
	sw := NewSwitch("s1", 4, 0)
	_ = sw.Table.Add(FlowEntry{
		Priority: 5,
		Match:    Match{InPort: 1, SrcHost: Any, DstHost: Any, Tag: 0},
		Actions:  []Action{{Type: SetTag, Tag: 1}, {Type: Output, Port: 3}},
	})
	fwd := sw.Process(PacketMeta{InPort: 1, Tag: 0, Bytes: 64})
	if fwd.Tag != 1 || fwd.OutPort != 3 {
		t.Fatalf("fwd = %+v, want tag 1 out 3", fwd)
	}
}

func TestDropAction(t *testing.T) {
	sw := NewSwitch("s1", 4, 0)
	_ = sw.Table.Add(FlowEntry{Priority: 5, Match: MatchAll, Actions: []Action{{Type: Drop}}})
	fwd := sw.Process(PacketMeta{InPort: 1, Bytes: 64})
	if !fwd.Matched || !fwd.Dropped {
		t.Fatalf("fwd = %+v, want matched drop", fwd)
	}
	if sw.Ports[1].TxPackets != 0 {
		t.Error("dropped packet counted as transmitted")
	}
}

func TestEntryWithoutOutputDrops(t *testing.T) {
	sw := NewSwitch("s1", 4, 0)
	_ = sw.Table.Add(FlowEntry{Priority: 5, Match: MatchAll, Actions: []Action{{Type: SetTag, Tag: 7}}})
	fwd := sw.Process(PacketMeta{InPort: 1})
	if !fwd.Dropped {
		t.Error("entry with no Output action must drop")
	}
}

func TestResetCounters(t *testing.T) {
	sw := NewSwitch("s1", 4, 0)
	_ = sw.Table.Add(FlowEntry{Priority: 1, Match: MatchAll, Actions: []Action{{Type: Output, Port: 2}}})
	sw.Process(PacketMeta{InPort: 1, Bytes: 10})
	sw.ResetCounters()
	if sw.Ports[1].RxPackets != 0 || sw.Table.Entries()[0].Packets != 0 {
		t.Error("counters not reset")
	}
}

func TestDumpAndStrings(t *testing.T) {
	sw := NewSwitch("s1", 4, 100)
	_ = sw.Table.Add(FlowEntry{
		Priority: 3,
		Match:    Match{InPort: 2, SrcHost: 1, DstHost: 9, Tag: 0, Proto: 6},
		Actions:  []Action{{Type: SetTag, Tag: 1}, {Type: Output, Port: 4}},
	})
	d := sw.Dump()
	for _, want := range []string{"switch s1", "in:2", "dst:9", "set_tag:1", "output:4", "prio=3"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	if MatchAll.String() != "*" {
		t.Errorf("MatchAll string = %q", MatchAll.String())
	}
	if (Action{Type: Drop}).String() != "drop" {
		t.Error("drop action string")
	}
}

// Property: Lookup always returns an entry whose priority is maximal
// among covering entries.
func TestQuickLookupIsMaxPriority(t *testing.T) {
	f := func(prios []uint8, inPort uint8) bool {
		var tbl Table
		for _, p := range prios {
			m := MatchAll
			if p%3 == 0 {
				m.InPort = int(p%4) + 1
			}
			_ = tbl.Add(FlowEntry{Priority: int(p), Match: m})
		}
		pkt := PacketMeta{InPort: int(inPort%4) + 1}
		got := tbl.Lookup(pkt)
		best := -1
		for _, e := range tbl.Entries() {
			if e.Match.Covers(pkt) && e.Priority > best {
				best = e.Priority
			}
		}
		if best == -1 {
			return got == nil
		}
		return got != nil && got.Priority == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: wildcard monotonicity — if a fully specified match covers a
// packet, widening any field to Any still covers it.
func TestQuickWildcardMonotone(t *testing.T) {
	f := func(in, src, dst, tag uint8) bool {
		p := PacketMeta{InPort: int(in)%8 + 1, SrcHost: int(src), DstHost: int(dst), Tag: int(tag) % 4}
		exact := Match{InPort: p.InPort, SrcHost: p.SrcHost, DstHost: p.DstHost, Tag: p.Tag}
		if !exact.Covers(p) {
			return false
		}
		widened := []Match{
			{InPort: 0, SrcHost: p.SrcHost, DstHost: p.DstHost, Tag: p.Tag},
			{InPort: p.InPort, SrcHost: Any, DstHost: p.DstHost, Tag: p.Tag},
			{InPort: p.InPort, SrcHost: p.SrcHost, DstHost: Any, Tag: p.Tag},
			{InPort: p.InPort, SrcHost: p.SrcHost, DstHost: p.DstHost, Tag: Any},
		}
		for _, w := range widened {
			if !w.Covers(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	var tbl Table
	for i := 0; i < 300; i++ {
		_ = tbl.Add(FlowEntry{
			Priority: 10,
			Match:    Match{InPort: i%32 + 1, SrcHost: Any, DstHost: i, Tag: Any},
			Actions:  []Action{{Type: Output, Port: i%32 + 1}},
		})
	}
	// Query an installed (in-port, dst) combination.
	pkt := PacketMeta{InPort: 250%32 + 1, DstHost: 250, Bytes: 1500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.Lookup(pkt) == nil {
			b.Fatal("miss")
		}
	}
}
