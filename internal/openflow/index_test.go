package openflow

import (
	"math/rand"
	"testing"
)

// linearLookup is the pre-index reference semantics: first covering
// entry in match order (priority desc, install order asc).
func linearLookup(t *Table, p PacketMeta) *FlowEntry {
	for _, e := range t.Entries() {
		if e.Match.Covers(p) {
			return e
		}
	}
	return nil
}

// TestIndexedLookupMatchesLinearScan differentially tests the dst-
// bucketed lookup against the linear reference over randomized tables
// mixing concrete and wildcard destinations, priorities, in-ports, and
// tags — including mutations (RemoveCookie) between probe rounds.
func TestIndexedLookupMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tab := &Table{}
		nEntries := 1 + rng.Intn(40)
		for i := 0; i < nEntries; i++ {
			m := Match{SrcHost: Any, DstHost: Any, Tag: Any}
			if rng.Intn(3) > 0 {
				m.DstHost = rng.Intn(6)
			}
			if rng.Intn(3) == 0 {
				m.InPort = 1 + rng.Intn(4)
			}
			if rng.Intn(3) == 0 {
				m.Tag = rng.Intn(3)
			}
			err := tab.Add(FlowEntry{
				Priority: rng.Intn(5),
				Match:    m,
				Actions:  []Action{{Type: Output, Port: 1}},
				Cookie:   uint64(rng.Intn(3)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		probe := func() {
			for dst := -1; dst < 7; dst++ {
				for inPort := 0; inPort <= 4; inPort++ {
					for tag := 0; tag < 3; tag++ {
						p := PacketMeta{InPort: inPort, SrcHost: 0, DstHost: dst, Tag: tag}
						want := linearLookup(tab, p)
						if got := tab.Lookup(p); got != want {
							t.Fatalf("trial %d: Lookup(%+v) = %v, want %v", trial, p, got, want)
						}
					}
				}
			}
		}
		probe()
		// Mutate and re-probe: the index must follow RemoveCookie.
		tab.RemoveCookie(uint64(rng.Intn(3)))
		probe()
		tab.Clear()
		if got := tab.Lookup(PacketMeta{DstHost: 1}); got != nil {
			t.Fatalf("lookup on cleared table = %v", got)
		}
	}
}

// TestIndexedLookupPriorityAcrossBuckets pins the merge order: a
// higher-priority dst-wildcard entry must beat a lower-priority exact
// entry, and install order breaks priority ties exactly as before.
func TestIndexedLookupPriorityAcrossBuckets(t *testing.T) {
	tab := &Table{}
	exact := FlowEntry{Priority: 1, Match: Match{SrcHost: Any, DstHost: 5, Tag: Any},
		Actions: []Action{{Type: Output, Port: 1}}}
	wild := FlowEntry{Priority: 2, Match: Match{SrcHost: Any, DstHost: Any, Tag: Any},
		Actions: []Action{{Type: Output, Port: 2}}}
	if err := tab.Add(exact); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(wild); err != nil {
		t.Fatal(err)
	}
	got := tab.Lookup(PacketMeta{DstHost: 5, SrcHost: 0})
	if got == nil || got.Actions[0].Port != 2 {
		t.Fatalf("high-priority wildcard should win, got %v", got)
	}
	// Equal priority: first-installed wins, regardless of bucket.
	tab2 := &Table{}
	wild.Priority = 1
	if err := tab2.Add(wild); err != nil {
		t.Fatal(err)
	}
	if err := tab2.Add(exact); err != nil {
		t.Fatal(err)
	}
	got = tab2.Lookup(PacketMeta{DstHost: 5, SrcHost: 0})
	if got == nil || got.Actions[0].Port != 2 {
		t.Fatalf("first-installed tie-break broken, got %v", got)
	}
}
