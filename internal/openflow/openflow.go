// Package openflow is the commodity-OpenFlow-switch substrate SDT
// projects onto.
//
// It models exactly the switch features the paper's prototype depends
// on (§V, §VII-B): priority-ordered flow tables with wildcardable
// matches on ingress port and packet header fields, output/set-tag/drop
// actions, a bounded table capacity (§VII-C's key resource), and
// per-port counters for the Network Monitor module. The flow tables
// both restrict forwarding to sub-switch domains (the essence of SDT's
// Link Projection) and realise routing strategies.
package openflow

import (
	"fmt"
	"sort"
	"strings"
)

// Any is the wildcard value for match fields.
const Any = -1

// Match selects packets. Fields set to Any match everything; InPort 0
// means any ingress port (ports are numbered from 1).
type Match struct {
	InPort  int // physical ingress port; 0 = any
	SrcHost int // source endpoint ID; Any = wildcard
	DstHost int // destination endpoint ID; Any = wildcard
	Tag     int // VLAN-style tag carrying the virtual channel; Any = wildcard
	Proto   int // protocol/traffic class; 0 = any
}

// MatchAll is the fully wildcarded match.
var MatchAll = Match{InPort: 0, SrcHost: Any, DstHost: Any, Tag: Any, Proto: 0}

// Covers reports whether m matches packet metadata p.
func (m Match) Covers(p PacketMeta) bool {
	if m.InPort != 0 && m.InPort != p.InPort {
		return false
	}
	if m.SrcHost != Any && m.SrcHost != p.SrcHost {
		return false
	}
	if m.DstHost != Any && m.DstHost != p.DstHost {
		return false
	}
	if m.Tag != Any && m.Tag != p.Tag {
		return false
	}
	if m.Proto != 0 && m.Proto != p.Proto {
		return false
	}
	return true
}

// String renders the match compactly for dumps.
func (m Match) String() string {
	var parts []string
	if m.InPort != 0 {
		parts = append(parts, fmt.Sprintf("in:%d", m.InPort))
	}
	if m.SrcHost != Any {
		parts = append(parts, fmt.Sprintf("src:%d", m.SrcHost))
	}
	if m.DstHost != Any {
		parts = append(parts, fmt.Sprintf("dst:%d", m.DstHost))
	}
	if m.Tag != Any {
		parts = append(parts, fmt.Sprintf("tag:%d", m.Tag))
	}
	if m.Proto != 0 {
		parts = append(parts, fmt.Sprintf("proto:%d", m.Proto))
	}
	if len(parts) == 0 {
		return "*"
	}
	return strings.Join(parts, ",")
}

// ActionType enumerates flow actions.
type ActionType int

const (
	// Output forwards the packet out of Action.Port.
	Output ActionType = iota
	// SetTag rewrites the packet tag (used for VC transitions) and is
	// followed by further actions in the same entry.
	SetTag
	// Drop discards the packet.
	Drop
)

// Action is one element of an entry's action list.
type Action struct {
	Type ActionType
	Port int // for Output
	Tag  int // for SetTag
}

func (a Action) String() string {
	switch a.Type {
	case Output:
		return fmt.Sprintf("output:%d", a.Port)
	case SetTag:
		return fmt.Sprintf("set_tag:%d", a.Tag)
	default:
		return "drop"
	}
}

// FlowEntry is one row of a flow table. Higher Priority wins; among
// equal priorities the earliest-installed entry wins (stable order).
type FlowEntry struct {
	Priority int
	Match    Match
	Actions  []Action
	Cookie   uint64 // controller-assigned grouping ID (per logical topology)

	// Counters, maintained by Switch.Process.
	Packets uint64
	Bytes   uint64

	seq int // install order for stable tie-breaking
}

func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.String()
	}
	return fmt.Sprintf("prio=%d match=[%s] actions=[%s]", e.Priority, e.Match, strings.Join(acts, ","))
}

// ErrTableFull is returned when an install would exceed capacity —
// §VII-C's failure mode the controller must check for.
type ErrTableFull struct {
	Switch   string
	Capacity int
}

func (e *ErrTableFull) Error() string {
	return fmt.Sprintf("openflow: switch %s flow table full (capacity %d)", e.Switch, e.Capacity)
}

// Table is a capacity-bounded, priority-ordered flow table.
//
// Lookup runs on an exact-match index: entries with a concrete DstHost
// live in per-destination buckets, fully dst-wildcarded entries in a
// shared fallback list, both in match order. A lookup merge-scans its
// destination's bucket against the fallback list by (priority, seq)
// instead of scanning every installed entry — the SDT substrate
// installs per-(dst, sub-switch) entries almost exclusively, so the
// scan shrinks from O(table) to O(rules for this destination).
type Table struct {
	Capacity int // 0 = unlimited
	entries  []*FlowEntry
	nextSeq  int
	owner    string

	// Lookup index, rebuilt lazily after mutations: byDst buckets
	// entries by Match.DstHost; wild holds the DstHost==Any entries.
	// Both keep the entries slice's match order.
	byDst    map[int][]*FlowEntry
	wild     []*FlowEntry
	idxDirty bool
}

// Len reports the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Free reports remaining capacity (MaxInt if unlimited).
func (t *Table) Free() int {
	if t.Capacity == 0 {
		return int(^uint(0) >> 1)
	}
	return t.Capacity - len(t.entries)
}

// Add installs an entry, keeping priority order. It fails with
// *ErrTableFull when capacity is exhausted.
func (t *Table) Add(e FlowEntry) error {
	if t.Capacity > 0 && len(t.entries) >= t.Capacity {
		return &ErrTableFull{Switch: t.owner, Capacity: t.Capacity}
	}
	e.seq = t.nextSeq
	t.nextSeq++
	ne := e
	t.entries = append(t.entries, &ne)
	sort.SliceStable(t.entries, func(i, j int) bool {
		return before(t.entries[i], t.entries[j])
	})
	t.idxDirty = true
	return nil
}

// RemoveCookie deletes all entries with the given cookie and returns
// how many were removed. The controller uses cookies to tear down one
// logical topology without disturbing others sharing the switch.
func (t *Table) RemoveCookie(cookie uint64) int {
	kept := t.entries[:0]
	removed := 0
	for _, e := range t.entries {
		if e.Cookie == cookie {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	t.idxDirty = true
	return removed
}

// Clear removes all entries.
func (t *Table) Clear() {
	t.entries = nil
	t.byDst = nil
	t.wild = nil
	t.idxDirty = false
}

// Prime eagerly (re)builds the lookup index. Lookup otherwise builds
// it lazily on first use after a mutation, which makes a first Lookup
// a write: a Table shared read-only across goroutines must be Primed
// after its last Add/RemoveCookie — the controller does this at deploy
// time — exactly like routing.Routes.Prime. (The pre-index linear-scan
// Lookup was safe for concurrent readers; the index is not, without
// this.)
func (t *Table) Prime() {
	if t.idxDirty || (t.byDst == nil && t.entries != nil) {
		t.buildIndex()
	}
}

// buildIndex rebuilds the dst buckets from the (already match-ordered)
// entries slice.
func (t *Table) buildIndex() {
	t.byDst = make(map[int][]*FlowEntry)
	t.wild = t.wild[:0]
	for _, e := range t.entries {
		if e.Match.DstHost == Any {
			t.wild = append(t.wild, e)
		} else {
			t.byDst[e.Match.DstHost] = append(t.byDst[e.Match.DstHost], e)
		}
	}
	t.idxDirty = false
}

// before is THE match-order comparator — higher priority first, then
// install order — shared by Add's sort and Lookup's bucket merge so
// the two orderings cannot drift apart.
func before(a, b *FlowEntry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

// Lookup returns the highest-priority entry covering p, or nil. Only
// the packet destination's bucket and the dst-wildcard fallback list
// are scanned — an entry for any other destination cannot cover p — in
// their merged match order, so the result is identical to a linear
// scan of the full table. Lookup performs no allocation once the index
// exists; the first call after a mutation rebuilds it (see Prime for
// the concurrent-sharing contract).
func (t *Table) Lookup(p PacketMeta) *FlowEntry {
	t.Prime()
	bucket := t.byDst[p.DstHost]
	wild := t.wild
	bi, wi := 0, 0
	for bi < len(bucket) || wi < len(wild) {
		var e *FlowEntry
		if wi >= len(wild) || (bi < len(bucket) && before(bucket[bi], wild[wi])) {
			e = bucket[bi]
			bi++
		} else {
			e = wild[wi]
			wi++
		}
		if e.Match.Covers(p) {
			return e
		}
	}
	return nil
}

// Entries returns the installed entries in match order (highest
// priority first). The slice is shared; callers must not mutate it.
func (t *Table) Entries() []*FlowEntry { return t.entries }

// PacketMeta is the header metadata a switch matches on.
type PacketMeta struct {
	InPort  int
	SrcHost int
	DstHost int
	Tag     int
	Proto   int
	Bytes   int
}

// PortCounter accumulates per-port statistics for the Network Monitor.
type PortCounter struct {
	RxPackets, TxPackets uint64
	RxBytes, TxBytes     uint64
	Drops                uint64
}

// Forwarding is the result of processing a packet.
type Forwarding struct {
	Matched bool
	Dropped bool
	OutPort int
	Tag     int // possibly rewritten
}

// Switch is an OpenFlow switch: numbered ports 1..NumPorts, one flow
// table, per-port counters.
type Switch struct {
	ID       string
	NumPorts int
	Table    Table
	Ports    []PortCounter // index 0 unused; 1..NumPorts
}

// NewSwitch builds a switch with the given port count and flow table
// capacity (0 = unlimited).
func NewSwitch(id string, ports, tableCap int) *Switch {
	s := &Switch{ID: id, NumPorts: ports, Ports: make([]PortCounter, ports+1)}
	s.Table.Capacity = tableCap
	s.Table.owner = id
	return s
}

// Process runs the table pipeline on one packet: counts it on the
// ingress port, finds the matching entry, applies SetTag actions, and
// returns the forwarding decision. Unmatched packets are dropped (the
// default table-miss behaviour the SDT prototype installs, preserving
// hardware isolation between co-hosted topologies).
func (s *Switch) Process(p PacketMeta) Forwarding {
	if p.InPort >= 1 && p.InPort <= s.NumPorts {
		s.Ports[p.InPort].RxPackets++
		s.Ports[p.InPort].RxBytes += uint64(p.Bytes)
	}
	e := s.Table.Lookup(p)
	if e == nil {
		if p.InPort >= 1 && p.InPort <= s.NumPorts {
			s.Ports[p.InPort].Drops++
		}
		return Forwarding{}
	}
	e.Packets++
	e.Bytes += uint64(p.Bytes)
	fwd := Forwarding{Matched: true, Tag: p.Tag, OutPort: 0}
	for _, a := range e.Actions {
		switch a.Type {
		case SetTag:
			fwd.Tag = a.Tag
		case Output:
			fwd.OutPort = a.Port
		case Drop:
			fwd.Dropped = true
		}
	}
	if fwd.OutPort >= 1 && fwd.OutPort <= s.NumPorts && !fwd.Dropped {
		s.Ports[fwd.OutPort].TxPackets++
		s.Ports[fwd.OutPort].TxBytes += uint64(p.Bytes)
	}
	if fwd.OutPort == 0 {
		fwd.Dropped = true
	}
	return fwd
}

// ResetCounters zeroes port and entry counters (telemetry epoch).
func (s *Switch) ResetCounters() {
	for i := range s.Ports {
		s.Ports[i] = PortCounter{}
	}
	for _, e := range s.Table.Entries() {
		e.Packets, e.Bytes = 0, 0
	}
}

// Dump renders the flow table for debugging and the sdtctl CLI.
func (s *Switch) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %s (%d ports, %d/%d entries)\n", s.ID, s.NumPorts, s.Table.Len(), s.Table.Capacity)
	for _, e := range s.Table.Entries() {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
