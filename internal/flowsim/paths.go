package flowsim

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

// maxFIBVertices caps the fabric size that compiles a dense FIB for
// path walking. FIB memory grows as vertices² (one slot per
// (switch, dst) pair over the full vertex range), which passes a
// gigabyte somewhere above 10k hosts; larger fabrics walk the
// map-indexed Routes.Lookup instead — the same rules, just without the
// dense compilation, and path resolution is a one-time cost per
// (src, dst) pair rather than a per-packet hot path.
const maxFIBVertices = 4096

// pathInfo is one resolved host-to-host route through the fabric.
type pathInfo struct {
	// links are the directed links the flow occupies, source host NIC
	// through delivery: 2*edge+0 when traversed from Edge.A, 2*edge+1
	// from Edge.B. Both directions of a full-duplex cable carry
	// independent capacity, exactly as in the packet engine.
	links []int32
	// base is the zero-load one-way latency in picoseconds beyond
	// payload serialisation: host NIC latency at both ends, switch
	// pipeline latency and (cut-through) header re-serialisation per
	// hop, propagation per link.
	base float64
}

// walker resolves and caches host-to-host paths by walking the
// compiled forwarding state hop by hop — the exact rules the packet
// engine forwards with, so flow-level and packet-level runs cannot
// disagree about which links a flow crosses.
type walker struct {
	g       *topology.Graph
	forward func(sw, inPort, dst, tag int) (outPort, newTag int, ok bool)
	ports   map[int]map[int]int32 // switch → out port → edge id, built per visited switch
	cache   map[[2]int]*pathInfo
	hdrSer  float64 // header serialisation time in ps (cut-through per-hop cost)
	hostLat float64
	swLat   float64
	propLat float64
	cut     bool
}

func newWalker(g *topology.Graph, routes *routing.Routes, cfg *netsim.Config) *walker {
	w := &walker{
		g:       g,
		ports:   map[int]map[int]int32{},
		cache:   map[[2]int]*pathInfo{},
		hdrSer:  float64(cfg.HeaderBytes*8) / cfg.LinkBps * float64(netsim.Second),
		hostLat: float64(cfg.HostLatency),
		swLat:   float64(cfg.SwitchLatency),
		propLat: float64(cfg.PropDelay),
		cut:     cfg.CutThrough,
	}
	if len(g.Vertices) <= maxFIBVertices {
		fib := routes.FIB()
		w.forward = fib.Forward
	} else {
		// Lookup builds its rule index lazily on first use; the engine
		// runs serially, so the lazy build is safe here.
		w.forward = func(sw, inPort, dst, tag int) (int, int, bool) {
			r := routes.Lookup(sw, inPort, dst, tag)
			if r == nil {
				return 0, 0, false
			}
			if r.NewTag >= 0 {
				tag = r.NewTag
			}
			return r.OutPort, tag, true
		}
	}
	return w
}

// dirLink is the directed-link id for traversing edge eid out of vertex
// `from`.
func (w *walker) dirLink(eid int32, from int) int32 {
	if w.g.Edges[eid].A == from {
		return 2 * eid
	}
	return 2*eid + 1
}

// edgeAt finds the edge behind a switch's logical out port.
func (w *walker) edgeAt(sw, port int) int32 {
	m, ok := w.ports[sw]
	if !ok {
		m = make(map[int]int32)
		for _, eid := range w.g.IncidentEdges(sw) {
			m[w.g.Edges[eid].PortAt(sw)] = int32(eid)
		}
		w.ports[sw] = m
	}
	if eid, ok := m[port]; ok {
		return eid
	}
	return -1
}

// path resolves (and caches) the route from host src to host dst.
func (w *walker) path(src, dst int) (*pathInfo, error) {
	if p, ok := w.cache[[2]int{src, dst}]; ok {
		return p, nil
	}
	g := w.g
	cur := g.HostSwitch(src)
	if cur < 0 {
		return nil, fmt.Errorf("flowsim: host %d has no switch", src)
	}
	up := g.EdgeBetween(src, cur)
	if up < 0 {
		return nil, fmt.Errorf("flowsim: host %d detached from switch %d", src, cur)
	}
	links := []int32{w.dirLink(int32(up), src)}
	inPort := g.Edges[up].PortAt(cur)
	tag := 0
	nsw := 0
	for {
		if nsw > len(g.Vertices) {
			return nil, fmt.Errorf("flowsim: path %d->%d exceeds %d hops (routing loop?)", src, dst, nsw)
		}
		nsw++
		out, newTag, ok := w.forward(cur, inPort, dst, tag)
		if !ok {
			return nil, fmt.Errorf("flowsim: no route on switch %d for dst %d tag %d", cur, dst, tag)
		}
		tag = newTag
		eid := w.edgeAt(cur, out)
		if eid < 0 {
			return nil, fmt.Errorf("flowsim: switch %d out port %d dangling", cur, out)
		}
		e := g.Edges[eid]
		nxt := e.Other(cur)
		links = append(links, w.dirLink(eid, cur))
		if nxt == dst {
			break
		}
		if g.Vertices[nxt].Kind != topology.Switch {
			return nil, fmt.Errorf("flowsim: path %d->%d delivered to wrong host %d", src, dst, nxt)
		}
		inPort = e.PortAt(nxt)
		cur = nxt
	}
	base := 2*w.hostLat + float64(nsw)*w.swLat + float64(len(links))*w.propLat
	if w.cut {
		// Cut-through forwards once the header has arrived: each switch
		// hop re-serialises only the header.
		base += float64(nsw) * w.hdrSer
	}
	p := &pathInfo{links: links, base: base}
	w.cache[[2]int{src, dst}] = p
	return p, nil
}
