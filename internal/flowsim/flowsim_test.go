package flowsim

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

// lineFixture computes routes and rank hosts for Line(n, hostsPer).
func lineFixture(t *testing.T, n, hostsPer int) (*topology.Graph, *routing.Routes, []int) {
	t.Helper()
	g := topology.Line(n, hostsPer)
	r, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, r, g.Hosts()
}

// payloadCap returns the engine's effective payload capacity in bytes
// per picosecond for cfg.
func payloadCap(cfg netsim.Config) float64 {
	return cfg.LinkBps / 8 / float64(netsim.Second) * float64(cfg.MTU) / float64(cfg.MTU+cfg.HeaderBytes)
}

// lineBase replicates the walker's zero-load latency for a Line path
// crossing nsw switches and nLinks links.
func lineBase(cfg netsim.Config, nsw, nLinks int) float64 {
	base := 2*float64(cfg.HostLatency) + float64(nsw)*float64(cfg.SwitchLatency) + float64(nLinks)*float64(cfg.PropDelay)
	if cfg.CutThrough {
		base += float64(nsw) * float64(cfg.HeaderBytes*8) / cfg.LinkBps * float64(netsim.Second)
	}
	return base
}

func wantTime(t *testing.T, got netsim.Time, want float64, what string) {
	t.Helper()
	if d := math.Abs(float64(got) - want); d > 2 {
		t.Errorf("%s = %d ps, want %.0f ps (off by %.0f)", what, got, want, d)
	}
}

func TestSingleFlowIdealFCT(t *testing.T) {
	g, r, hosts := lineFixture(t, 2, 1)
	cfg := netsim.DefaultConfig()
	flows := []netsim.Flow{{Src: 0, Dst: 1, Bytes: 1 << 20, Tag: 0}}
	res, err := Run(context.Background(), g, r, cfg, hosts, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || !flows[0].Completed {
		t.Fatalf("flow did not complete: %+v", res)
	}
	want := float64(flows[0].Bytes)/payloadCap(cfg) + lineBase(cfg, 2, 3)
	wantTime(t, flows[0].End, want, "single-flow End")
	if res.ACT != flows[0].End {
		t.Errorf("ACT = %d, want last completion %d", res.ACT, flows[0].End)
	}
	if res.Pairs != 1 {
		t.Errorf("Pairs = %d, want 1", res.Pairs)
	}
}

func TestBottleneckSharing(t *testing.T) {
	// Two sources on sw0 send to one destination on sw1: both flows
	// share the sw0->sw1 link and the delivery link, so each runs at
	// half capacity and they finish together.
	g, r, hosts := lineFixture(t, 2, 2)
	cfg := netsim.DefaultConfig()
	const bytes = 1 << 20
	flows := []netsim.Flow{
		{Src: 0, Dst: 2, Bytes: bytes, Tag: 0},
		{Src: 1, Dst: 2, Bytes: bytes, Tag: 1},
	}
	res, err := Run(context.Background(), g, r, cfg, hosts, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d of 2", res.Completed)
	}
	want := 2*bytes/payloadCap(cfg) + lineBase(cfg, 2, 3)
	wantTime(t, flows[0].End, want, "shared flow 0 End")
	wantTime(t, flows[1].End, want, "shared flow 1 End")
}

func TestStaggeredArrivalRates(t *testing.T) {
	// Flow A (2X bytes) starts alone at full rate; flow B (X bytes)
	// arrives exactly when A has X left, and they split the bottleneck:
	// both finish at 3X/C.
	g, r, hosts := lineFixture(t, 2, 2)
	cfg := netsim.DefaultConfig()
	const x = 1 << 20
	c := payloadCap(cfg)
	tArrive := netsim.Time(math.Round(float64(x) / c))
	flows := []netsim.Flow{
		{Src: 0, Dst: 2, Bytes: 2 * x, Tag: 0},
		{Src: 1, Dst: 2, Bytes: x, Tag: 1, Start: tArrive},
	}
	if _, err := Run(context.Background(), g, r, cfg, hosts, flows); err != nil {
		t.Fatal(err)
	}
	base := lineBase(cfg, 2, 3)
	wantTime(t, flows[0].End, 3*float64(x)/c+base, "flow A End")
	wantTime(t, flows[1].End, 3*float64(x)/c+base, "flow B End")
}

func TestPairSerialisation(t *testing.T) {
	// Two concurrent flows between the same (src, dst) pair serialise
	// like the RoCE queue pair: the second starts transmitting when the
	// first finishes.
	g, r, hosts := lineFixture(t, 2, 1)
	cfg := netsim.DefaultConfig()
	const bytes = 1 << 20
	flows := []netsim.Flow{
		{Src: 0, Dst: 1, Bytes: bytes, Tag: 0},
		{Src: 0, Dst: 1, Bytes: bytes, Tag: 1},
	}
	res, err := Run(context.Background(), g, r, cfg, hosts, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 1 {
		t.Fatalf("Pairs = %d, want 1", res.Pairs)
	}
	c := payloadCap(cfg)
	base := lineBase(cfg, 2, 3)
	wantTime(t, flows[0].End, float64(bytes)/c+base, "first flow End")
	wantTime(t, flows[1].End, 2*float64(bytes)/c+base, "queued flow End")
}

func TestFairShareMaxMinAsymmetric(t *testing.T) {
	// f0 crosses both links, f1 only link 0, f2 and f3 only link 1.
	// Link 1 (three flows) is the tighter bottleneck: f0, f2, f3 freeze
	// at C/3; f1 then takes the rest of link 0 (2C/3).
	const c = 3.0
	caps := []float64{c, c}
	links := [][]int32{{0, 1}, {0}, {1}, {1}}
	rates := make([]float64, 4)
	fairShare(caps, links, rates)
	want := []float64{c / 3, 2 * c / 3, c / 3, c / 3}
	for i, w := range want {
		if math.Abs(rates[i]-w) > 1e-9 {
			t.Errorf("rate[%d] = %g, want %g", i, rates[i], w)
		}
	}
}

func TestFairShareZeroCapacityLink(t *testing.T) {
	caps := []float64{0, 1}
	links := [][]int32{{0, 1}, {1}}
	rates := make([]float64, 2)
	fairShare(caps, links, rates)
	if rates[0] != 0 {
		t.Errorf("flow through zero-cap link got rate %g", rates[0])
	}
	if math.Abs(rates[1]-1) > 1e-9 {
		t.Errorf("unconstrained flow got %g, want 1", rates[1])
	}
}

func TestRunDeterminism(t *testing.T) {
	g, r, hosts := lineFixture(t, 4, 2)
	cfg := netsim.DefaultConfig()
	mk := func() []netsim.Flow {
		var flows []netsim.Flow
		for i := 0; i < 32; i++ {
			flows = append(flows, netsim.Flow{
				Src:   i % len(hosts),
				Dst:   (i + 3) % len(hosts),
				Bytes: 10000 + 7777*i,
				Start: netsim.Time(i%5) * netsim.Microsecond,
				Tag:   i,
			})
		}
		return flows
	}
	a, b := mk(), mk()
	ra, err := Run(context.Background(), g, r, cfg, hosts, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(context.Background(), g, r, cfg, hosts, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.ACT != rb.ACT || ra.Recomputes != rb.Recomputes {
		t.Fatalf("reruns diverged: %+v vs %+v", ra, rb)
	}
	for i := range a {
		if a[i].End != b[i].End || a[i].Completed != b[i].Completed {
			t.Fatalf("flow %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunValidation(t *testing.T) {
	g, r, hosts := lineFixture(t, 2, 1)
	cfg := netsim.DefaultConfig()
	cases := []struct {
		name  string
		flows []netsim.Flow
		want  string
	}{
		{"rank out of range", []netsim.Flow{{Src: 0, Dst: 9, Bytes: 1}}, "rank out of range"},
		{"self send", []netsim.Flow{{Src: 1, Dst: 1, Bytes: 1}}, "sends to itself"},
		{"negative size", []netsim.Flow{{Src: 0, Dst: 1, Bytes: -5}}, "negative size"},
		{"duplicate", []netsim.Flow{
			{Src: 0, Dst: 1, Bytes: 1, Tag: 7},
			{Src: 0, Dst: 1, Bytes: 2, Tag: 7},
		}, "duplicate flow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(context.Background(), g, r, cfg, hosts, tc.flows)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	if _, err := Run(context.Background(), g, nil, cfg, hosts, nil); err == nil {
		t.Error("nil routes accepted")
	}
	bad := cfg
	bad.LinkBps = 0
	if _, err := Run(context.Background(), g, r, bad, hosts, nil); err == nil {
		t.Error("zero-bandwidth config accepted")
	}
}

func TestRunCancellation(t *testing.T) {
	g, r, hosts := lineFixture(t, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	flows := []netsim.Flow{{Src: 0, Dst: 1, Bytes: 1 << 20}}
	if _, err := Run(ctx, g, r, netsim.DefaultConfig(), hosts, flows); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestZeroByteFlowCompletesAtArrival(t *testing.T) {
	g, r, hosts := lineFixture(t, 2, 1)
	cfg := netsim.DefaultConfig()
	flows := []netsim.Flow{{Src: 0, Dst: 1, Bytes: 0, Start: netsim.Microsecond}}
	res, err := Run(context.Background(), g, r, cfg, hosts, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatal("zero-byte flow did not complete")
	}
	wantTime(t, flows[0].End, float64(netsim.Microsecond)+lineBase(cfg, 2, 3), "zero-byte End")
}

func TestEmptySchedule(t *testing.T) {
	g, r, hosts := lineFixture(t, 2, 1)
	res, err := Run(context.Background(), g, r, netsim.DefaultConfig(), hosts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ACT != 0 || res.Completed != 0 {
		t.Fatalf("empty schedule: %+v", res)
	}
}

// TestSubsetRoutesSufficient pins the DstComputer integration: a route
// set computed only for the destinations the schedule references
// produces the same completions as the full route set.
func TestSubsetRoutesSufficient(t *testing.T) {
	g := topology.FatTree(4)
	hosts := g.Hosts()
	cfg := netsim.DefaultConfig()
	flows := []netsim.Flow{
		{Src: 0, Dst: 5, Bytes: 1 << 18, Tag: 0},
		{Src: 3, Dst: 5, Bytes: 1 << 18, Tag: 1},
		{Src: 7, Dst: 12, Bytes: 1 << 18, Tag: 2},
	}
	full, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := routing.FatTreeDFS{}.ComputeFor(g, []int{hosts[5], hosts[12]})
	if err != nil {
		t.Fatal(err)
	}
	fullFlows := append([]netsim.Flow(nil), flows...)
	if _, err := Run(context.Background(), g, full, cfg, hosts, fullFlows); err != nil {
		t.Fatal(err)
	}
	subFlows := append([]netsim.Flow(nil), flows...)
	if _, err := Run(context.Background(), g, sub, cfg, hosts, subFlows); err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if fullFlows[i].End != subFlows[i].End {
			t.Errorf("flow %d: full %d vs subset %d", i, fullFlows[i].End, subFlows[i].End)
		}
	}
}
