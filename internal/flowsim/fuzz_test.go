package flowsim

import (
	"math"
	"testing"
)

// FuzzFairShare pins the rate-allocation invariants of the fluid
// engine's core: for arbitrary link capacities and flow→link
// memberships, the progressive-filling allocation must (1) keep every
// link at or under capacity, (2) assign only finite non-negative rates,
// and (3) be max-min fair — every flow has a saturated bottleneck link
// on which no other flow gets a strictly larger rate, i.e. no flow can
// be sped up without slowing down a flow that is no faster.
func FuzzFairShare(f *testing.F) {
	f.Add(uint8(2), uint8(4), int64(1))
	f.Add(uint8(1), uint8(1), int64(42))
	f.Add(uint8(8), uint8(16), int64(7))
	f.Add(uint8(3), uint8(9), int64(-12345))
	f.Fuzz(func(t *testing.T, nLinks, nFlows uint8, seed int64) {
		nL := int(nLinks)%16 + 1
		nF := int(nFlows)%32 + 1
		// Deterministic xorshift stream from the seed.
		s := uint64(seed)*2654435761 + 1
		next := func() uint64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return s
		}
		caps := make([]float64, nL)
		for l := range caps {
			switch next() % 8 {
			case 0:
				caps[l] = 0 // dead link
			default:
				caps[l] = float64(next()%1000+1) / 10
			}
		}
		links := make([][]int32, nF)
		for fi := range links {
			pathLen := int(next()%uint64(nL)) + 1
			used := map[int32]bool{}
			for len(links[fi]) < pathLen {
				l := int32(next() % uint64(nL))
				if !used[l] {
					used[l] = true
					links[fi] = append(links[fi], l)
				}
			}
		}
		rates := make([]float64, nF)
		fairShare(caps, links, rates)

		const eps = 1e-6
		load := make([]float64, nL)
		for fi, ls := range links {
			r := rates[fi]
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				t.Fatalf("flow %d: invalid rate %g", fi, r)
			}
			for _, l := range ls {
				load[l] += r
			}
		}
		for l := range caps {
			if load[l] > caps[l]*(1+eps)+eps {
				t.Fatalf("link %d over capacity: load %g > cap %g", l, load[l], caps[l])
			}
		}
		// Max-min: every flow is limited by some saturated link where it
		// is among the fastest flows — the increase/decrease exchange
		// argument needs exactly this witness.
		for fi, ls := range links {
			bottleneck := false
			for _, l := range ls {
				if load[l] < caps[l]*(1-eps)-eps {
					continue // link has headroom, not a bottleneck
				}
				maxOn := 0.0
				for fj, ls2 := range links {
					for _, l2 := range ls2 {
						if l2 == l && rates[fj] > maxOn {
							maxOn = rates[fj]
						}
					}
				}
				if rates[fi] >= maxOn*(1-eps)-eps {
					bottleneck = true
					break
				}
			}
			if !bottleneck {
				t.Fatalf("flow %d (rate %g) has no bottleneck link: rates=%v caps=%v links=%v",
					fi, rates[fi], rates, caps, links)
			}
		}
	})
}
